// Umbrella header: the whole SenseDroid public API.
//
// Applications that want the full stack include this; libraries that
// depend on one layer should include that layer's headers directly (each
// src/<module>/ is a separate static library).
#pragma once

// Observability: metrics registry, span tracer, run reports, flight
// recorder, health/SLO engine, live telemetry endpoint.
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"

// Linear algebra + sparsifying bases (eq. 2).
#include "linalg/basis.h"
#include "linalg/decomposition.h"
#include "linalg/matrix.h"
#include "linalg/random.h"
#include "linalg/vector_ops.h"

// Compressive sensing core (eqs. 4-14, Fig. 6).
#include "cs/basis_pursuit.h"
#include "cs/chs.h"
#include "cs/error_model.h"
#include "cs/greedy_variants.h"
#include "cs/least_squares.h"
#include "cs/measurement.h"
#include "cs/omp.h"
#include "cs/simplex.h"
#include "cs/spatiotemporal.h"

// Spatial fields and zones (eq. 1, Fig. 5).
#include "field/generators.h"
#include "field/sparsity.h"
#include "field/spatial_field.h"
#include "field/traces.h"
#include "field/zones.h"

// Simulation substrates.
#include "sim/energy.h"
#include "sim/event_sim.h"
#include "sim/geometry.h"
#include "sim/mobility.h"
#include "sim/radio.h"

// Sensors, probes, fusion (Fig. 3).
#include "sensing/fusion.h"
#include "sensing/probe.h"
#include "sensing/sensor.h"
#include "sensing/signals.h"

// Context processing (IsDriving / IsIndoor / activity / group).
#include "context/activity.h"
#include "context/context_engine.h"
#include "context/group_context.h"
#include "context/is_driving.h"
#include "context/is_indoor.h"

// Middleware services (Fig. 2).
#include "middleware/broker.h"
#include "middleware/collaboration.h"
#include "middleware/datastore.h"
#include "middleware/discovery.h"
#include "middleware/node.h"
#include "middleware/privacy.h"
#include "middleware/pubsub.h"
#include "middleware/query.h"
#include "middleware/reputation.h"
#include "middleware/thin_client.h"
#include "middleware/wire.h"

// Hierarchy tiers (Fig. 1).
#include "hierarchy/adaptive.h"
#include "hierarchy/campaign.h"
#include "hierarchy/localcloud.h"
#include "hierarchy/nanocloud.h"
#include "hierarchy/publiccloud.h"

// Section 5 extensions.
#include "incentives/auction.h"
#include "incentives/participant.h"
#include "incentives/recruitment.h"
#include "scheduling/adaptive_sampling.h"
#include "scheduling/multi_radio.h"
#include "scheduling/node_selection.h"

// Baselines.
#include "baselines/cdg_luo.h"
#include "baselines/dense_gathering.h"
#include "baselines/interpolation.h"
#include "baselines/solo_sensing.h"
