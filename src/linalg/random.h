// Deterministic randomness for the whole stack.  Every stochastic choice
// in SenseDroid — which M of the N nodes a broker telemeters (Section 3),
// sensor noise draws, mobility — flows through this Rng so that every
// experiment in EXPERIMENTS.md is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace sensedroid::linalg {

/// Small, fast, deterministic PRNG (xoshiro256** core) with the sampling
/// helpers the CS stack needs.  Copyable; copies continue independently.
class Rng {
 public:
  /// Seeds the generator; equal seeds give identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be positive.
  std::size_t uniform_index(std::size_t n);

  /// Standard normal via Marsaglia polar method.
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed draw with the given rate (> 0).
  double exponential(double rate);

  /// k distinct indices sampled uniformly from [0, n), sorted ascending —
  /// the broker's random spatial sampling of sensor locations L (Fig. 2).
  /// Throws std::invalid_argument if k > n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Vector of n iid standard normals.
  Vector gaussian_vector(std::size_t n);

  /// Derives an independent child stream (for per-node generators).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace sensedroid::linalg
