#include "linalg/updatable_lu.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sensedroid::linalg {

namespace {
// Relative singularity threshold: a U diagonal below this fraction of the
// largest diagonal means the basis is not trustworthy for triangular
// solves.  Loose enough that honest near-degenerate simplex bases pass,
// tight enough that a genuinely dependent column trips refactorization.
constexpr double kRelSingular = 1e-12;
}  // namespace

UpdatableLU::UpdatableLU(std::size_t n) : n_(n) {
  l0_.resize(n * n);
  perm0_.resize(n);
  u_.resize(n * n);
  ops_.reserve(4 * n);
  pos_of_slot_.resize(n);
  slot_of_pos_.resize(n);
  work_.resize(n);
}

double UpdatableLU::stability_floor() const noexcept {
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    max_diag = std::max(max_diag, std::abs(u_[i * n_ + i]));
  }
  return kRelSingular * std::max(max_diag, 1.0);
}

double UpdatableLU::diag_ratio() const noexcept {
  if (n_ == 0 || !valid_) return 0.0;
  double lo = std::abs(u_[0]);
  double hi = lo;
  for (std::size_t i = 1; i < n_; ++i) {
    const double d = std::abs(u_[i * n_ + i]);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return hi > 0.0 ? lo / hi : 0.0;
}

bool UpdatableLU::factor(const Matrix& basis) {
  if (basis.rows() != n_ || basis.cols() != n_) {
    throw std::invalid_argument("UpdatableLU::factor: shape mismatch");
  }
  valid_ = false;
  updates_ = 0;
  ops_.clear();
  for (std::size_t s = 0; s < n_; ++s) {
    pos_of_slot_[s] = static_cast<std::uint32_t>(s);
    slot_of_pos_[s] = static_cast<std::uint32_t>(s);
  }

  // Working copy: after elimination, multipliers live below the diagonal
  // (copied into l0_) and U above/on it (copied into u_).
  std::copy(basis.data().begin(), basis.data().end(), l0_.begin());
  double scale = 0.0;
  for (const double v : l0_) scale = std::max(scale, std::abs(v));
  const double tiny = kRelSingular * std::max(scale, 1.0);

  for (std::size_t k = 0; k < n_; ++k) {
    std::size_t piv = k;
    double best = std::abs(l0_[k * n_ + k]);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double v = std::abs(l0_[i * n_ + k]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (!(best > tiny)) return false;  // singular (or NaN) pivot column
    perm0_[k] = static_cast<std::uint32_t>(piv);
    if (piv != k) {
      for (std::size_t c = 0; c < n_; ++c) {
        std::swap(l0_[k * n_ + c], l0_[piv * n_ + c]);
      }
    }
    const double inv = 1.0 / l0_[k * n_ + k];
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double m = l0_[i * n_ + k] * inv;
      l0_[i * n_ + k] = m;  // multiplier stored in place
      if (m == 0.0) continue;
      const double* __restrict rk = l0_.data() + k * n_;
      double* __restrict ri = l0_.data() + i * n_;
      for (std::size_t c = k + 1; c < n_; ++c) ri[c] -= m * rk[c];
    }
  }

  // Split: U into u_, zeros below its diagonal; multipliers stay in l0_.
  for (std::size_t i = 0; i < n_; ++i) {
    double* __restrict ui = u_.data() + i * n_;
    const double* __restrict li = l0_.data() + i * n_;
    for (std::size_t c = 0; c < i; ++c) ui[c] = 0.0;
    for (std::size_t c = i; c < n_; ++c) ui[c] = li[c];
  }
  valid_ = true;
  return true;
}

bool UpdatableLU::eliminate_hessenberg(std::size_t from) {
  // Columns [from, n-2] carry one subdiagonal each after the shift; kill
  // them with a 2x2 transform on rows (q, q+1), interchanging first when
  // the subdiagonal dominates (Bartels-Golub pivoting — keeps every
  // multiplier bounded by 1).  Each transform is recorded as one
  // composed RowOp so solves replay a branchless stream.
  for (std::size_t q = from; q + 1 < n_; ++q) {
    double* __restrict rq = u_.data() + q * n_;
    double* __restrict rq1 = u_.data() + (q + 1) * n_;
    const double diag = rq[q];
    const double sub = rq1[q];
    if (sub == 0.0) continue;
    if (std::abs(sub) > std::abs(diag)) {
      // Interchange, then eliminate: new rows are (old q+1, old q - m *
      // old q+1) with m = diag / sub.
      const double m = diag / sub;
      for (std::size_t c = q; c < n_; ++c) {
        const double vq = rq[c];
        const double vq1 = rq1[c];
        rq[c] = vq1;
        rq1[c] = vq - m * vq1;
      }
      rq1[q] = 0.0;
      ops_.push_back({static_cast<std::uint32_t>(q), 0.0, 1.0, 1.0, -m});
    } else {
      if (diag == 0.0) return false;  // both entries vanished: singular
      const double m = sub / diag;
      for (std::size_t c = q; c < n_; ++c) rq1[c] -= m * rq[c];
      rq1[q] = 0.0;
      ops_.push_back({static_cast<std::uint32_t>(q), 1.0, 0.0, -m, 1.0});
    }
  }
  const double floor = stability_floor();
  for (std::size_t q = from; q < n_; ++q) {
    if (!(std::abs(u_[q * n_ + q]) > floor)) return false;
  }
  return true;
}

// Shared head of ftran and the update's spike computation: v <- L~^{-1} v
// where L~ is the initial permuted unit-lower factor followed by the
// recorded 2x2 row transforms.
void UpdatableLU::lower_solve_inplace(double* __restrict v) const {
  // Stored multipliers are post-interchange (LAPACK convention), so the
  // whole permutation applies before the unit-lower solve.
  for (std::size_t k = 0; k < n_; ++k) {
    const std::uint32_t p = perm0_[k];
    if (p != k) std::swap(v[k], v[p]);
  }
  // Forward substitution in dot form: row i of l0_ is contiguous.
  for (std::size_t i = 1; i < n_; ++i) {
    const double* __restrict li = l0_.data() + i * n_;
    double s = 0.0;
    for (std::size_t k = 0; k < i; ++k) s += li[k] * v[k];
    v[i] -= s;
  }
  for (const RowOp& op : ops_) {
    const double vq = v[op.q];
    const double vq1 = v[op.q + 1];
    v[op.q] = op.a * vq + op.b * vq1;
    v[op.q + 1] = op.c * vq + op.d * vq1;
  }
}

bool UpdatableLU::replace_column(std::size_t slot,
                                 std::span<const double> col) {
  if (!valid_) {
    throw std::logic_error("UpdatableLU::replace_column: invalid factors");
  }
  if (slot >= n_) {
    throw std::invalid_argument("UpdatableLU::replace_column: bad slot");
  }
  if (col.size() != n_) {
    throw std::invalid_argument(
        "UpdatableLU::replace_column: length mismatch");
  }

  // Spike = L~^{-1} col.
  double* __restrict v = work_.data();
  std::copy(col.begin(), col.end(), v);
  lower_solve_inplace(v);

  // Delete the leaving column's position, shift the tail left, append the
  // spike as the last column.
  const std::size_t p = pos_of_slot_[slot];
  for (std::size_t i = 0; i < n_; ++i) {
    double* __restrict ri = u_.data() + i * n_;
    for (std::size_t q = p; q + 1 < n_; ++q) ri[q] = ri[q + 1];
    ri[n_ - 1] = v[i];
  }
  for (std::size_t s = 0; s < n_; ++s) {
    if (pos_of_slot_[s] > p) --pos_of_slot_[s];
  }
  pos_of_slot_[slot] = static_cast<std::uint32_t>(n_ - 1);
  for (std::size_t s = 0; s < n_; ++s) {
    slot_of_pos_[pos_of_slot_[s]] = static_cast<std::uint32_t>(s);
  }

  ++updates_;
  if (!eliminate_hessenberg(p)) {
    valid_ = false;
    return false;
  }
  return true;
}

void UpdatableLU::ftran(std::span<const double> b,
                        std::span<double> x) const {
  if (!valid_) throw std::logic_error("UpdatableLU::ftran: invalid factors");
  if (b.size() != n_ || x.size() != n_) {
    throw std::invalid_argument("UpdatableLU::ftran: length mismatch");
  }
  double* __restrict v = work_.data();
  std::copy(b.begin(), b.end(), v);
  lower_solve_inplace(v);
  // Back-substitution against U (dot form, contiguous rows), then scatter
  // from position order to slot order.
  for (std::size_t ii = n_; ii-- > 0;) {
    const double* __restrict ri = u_.data() + ii * n_;
    double s = v[ii];
    for (std::size_t c = ii + 1; c < n_; ++c) s -= ri[c] * v[c];
    v[ii] = s / ri[ii];
  }
  for (std::size_t q = 0; q < n_; ++q) x[slot_of_pos_[q]] = v[q];
}

void UpdatableLU::btran(std::span<const double> b,
                        std::span<double> x) const {
  if (!valid_) throw std::logic_error("UpdatableLU::btran: invalid factors");
  if (b.size() != n_ || x.size() != n_) {
    throw std::invalid_argument("UpdatableLU::btran: length mismatch");
  }
  // Gather into position order, solve U^T z = b_pos, replay the
  // transposed operation log in reverse, then L0^{-T} and the initial
  // permutation in reverse.  Both triangular solves run in saxpy form so
  // the inner loops walk contiguous rows of the row-major factors.
  double* __restrict v = work_.data();
  for (std::size_t q = 0; q < n_; ++q) v[q] = b[slot_of_pos_[q]];
  for (std::size_t q = 0; q < n_; ++q) {
    const double* __restrict rq = u_.data() + q * n_;
    const double vq = v[q] / rq[q];
    v[q] = vq;
    if (vq != 0.0) {
      for (std::size_t j = q + 1; j < n_; ++j) v[j] -= rq[j] * vq;
    }
  }
  for (std::size_t oi = ops_.size(); oi-- > 0;) {
    const RowOp& op = ops_[oi];
    const double vq = v[op.q];
    const double vq1 = v[op.q + 1];
    v[op.q] = op.a * vq + op.c * vq1;
    v[op.q + 1] = op.b * vq + op.d * vq1;
  }
  for (std::size_t k = n_; k-- > 0;) {
    const double* __restrict lk = l0_.data() + k * n_;
    const double vk = v[k];
    if (vk != 0.0) {
      for (std::size_t i = 0; i < k; ++i) v[i] -= lk[i] * vk;
    }
  }
  for (std::size_t k = n_; k-- > 0;) {
    const std::uint32_t p = perm0_[k];
    if (p != k) std::swap(v[k], v[p]);
  }
  std::copy(v, v + n_, x.begin());
}

}  // namespace sensedroid::linalg
