#include "linalg/updatable_qr.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.h"

namespace sensedroid::linalg {

namespace {
constexpr std::size_t tri_offset(std::size_t j) { return j * (j + 1) / 2; }

// Four independent accumulation chains: the refit loops are latency-bound
// on the single-chain scalar reduction (~4 cycles per element at m = 30),
// not on throughput.  The reassociation is fixed, so results stay
// deterministic run-to-run.
double dot4(const double* __restrict a, const double* __restrict b,
            std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

double norm4(const double* v, std::size_t n) {
  return std::sqrt(dot4(v, v, n));
}
}  // namespace

UpdatableQR::UpdatableQR(std::size_t rows, std::size_t capacity)
    : rows_(rows) {
  // Pre-size to capacity so the hot append path never touches vector
  // bookkeeping; size_ alone tracks the live prefix.
  const std::size_t cap = std::min(capacity, rows);
  q_.resize(cap * rows_);
  r_.resize(tri_offset(cap));
  work_.resize(rows_);
  h_.resize(cap);
}

bool UpdatableQR::append_column(std::span<const double> col, double dep_tol) {
  if (col.size() != rows_) {
    throw std::invalid_argument("UpdatableQR::append_column: length mismatch");
  }
  if (size_ >= rows_) return false;  // already a full basis of R^m
  if ((size_ + 1) * rows_ > q_.size()) {
    q_.resize((size_ + 1) * rows_);
    r_.resize(tri_offset(size_ + 1));
    h_.resize(size_ + 1);
  }

  // Classical Gram-Schmidt with selective reorthogonalization (CGS2 /
  // DGKS): one round forms all projections h = Q^T w from the same w —
  // k independent dots instead of MGS's serialized project-subtract
  // chain — then subtracts Q h; a second round runs only when the first
  // cancelled more than half the mass, which is when a single round can
  // leave a non-negligible component along Q.  Two CGS rounds are as
  // orthogonal as two MGS passes ("twice is enough").
  double* w = work_.data();
  std::copy(col.begin(), col.end(), w);
  const double col_norm = norm4(w, rows_);

  double* rcol = r_.data() + tri_offset(size_);
  for (std::size_t i = 0; i <= size_; ++i) rcol[i] = 0.0;
  double w_norm = col_norm;
  double* h = h_.data();
  for (int round = 0; round < 2 && size_ > 0; ++round) {
    const double before = w_norm;
    for (std::size_t j = 0; j < size_; ++j) {
      h[j] = dot4(q_.data() + j * rows_, w, rows_);
    }
    for (std::size_t j = 0; j < size_; ++j) {
      const double* __restrict qj = q_.data() + j * rows_;
      const double hj = h[j];
      rcol[j] += hj;
      for (std::size_t i = 0; i < rows_; ++i) w[i] -= hj * qj[i];
    }
    w_norm = norm4(w, rows_);
    if (w_norm > 0.5 * before) break;  // little cancellation: orthogonal enough
  }
  if (!(w_norm > dep_tol * std::max(col_norm, 1e-300))) {
    // Reject.  rcol scribbles past the live triangle are harmless: every
    // accessor bounds by size_, and the next append rewrites the column.
    return false;
  }
  rcol[size_] = w_norm;
  double* qk = q_.data() + size_ * rows_;
  const double inv = 1.0 / w_norm;
  for (std::size_t i = 0; i < rows_; ++i) qk[i] = w[i] * inv;
  ++size_;
  return true;
}

void UpdatableQR::remove_last() {
  if (size_ == 0) {
    throw std::logic_error("UpdatableQR::remove_last: empty factorization");
  }
  --size_;  // storage beyond the live prefix is inert until re-appended
}

Vector UpdatableQR::solve(std::span<const double> y) const {
  if (y.size() != rows_) {
    throw std::invalid_argument("UpdatableQR::solve: length mismatch");
  }
  Vector qty(size_);
  for (std::size_t j = 0; j < size_; ++j) {
    qty[j] = dot4(q_.data() + j * rows_, y.data(), rows_);
  }
  return solve_from_qty(qty);
}

Vector UpdatableQR::solve_from_qty(std::span<const double> qty) const {
  if (qty.size() != size_) {
    throw std::invalid_argument("UpdatableQR::solve_from_qty: length");
  }
  Vector x(qty.begin(), qty.end());
  for (std::size_t ii = size_; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < size_; ++j) {
      x[ii] -= r_[tri_offset(j) + ii] * x[j];
    }
    x[ii] /= r_[tri_offset(ii) + ii];
  }
  return x;
}

std::span<const double> UpdatableQR::q_column(std::size_t j) const {
  if (j >= size_) throw std::out_of_range("UpdatableQR::q_column");
  return {q_.data() + j * rows_, rows_};
}

double UpdatableQR::r(std::size_t i, std::size_t j) const {
  if (j >= size_ || i > j) throw std::out_of_range("UpdatableQR::r");
  return r_[tri_offset(j) + i];
}

SupportQrCache::SupportQrCache(const Matrix& a)
    : a_(&a), qr_(a.rows(), std::min(a.rows(), a.cols())), col_buf_(a.rows()) {
  cols_.reserve(std::min(a.rows(), a.cols()));
}

std::size_t SupportQrCache::common_prefix(
    std::span<const std::size_t> support) const {
  std::size_t lcp = 0;
  while (lcp < cols_.size() && lcp < support.size() &&
         cols_[lcp] == support[lcp]) {
    ++lcp;
  }
  return lcp;
}

bool SupportQrCache::refit(std::span<const std::size_t> support,
                           double dep_tol) {
  const std::size_t lcp = common_prefix(support);
  while (qr_.size() > lcp) {
    qr_.remove_last();
    cols_.pop_back();
  }
  reused_ = lcp;
  for (std::size_t i = lcp; i < support.size(); ++i) {
    a_->col_into(support[i], col_buf_);
    if (!qr_.append_column(col_buf_, dep_tol)) {
      qr_.clear();
      cols_.clear();
      return false;
    }
    cols_.push_back(support[i]);
  }
  return true;
}

}  // namespace sensedroid::linalg
