// Matrix factorizations used by the CS solvers:
//  - Householder QR     -> least-squares / OLS (eq. 11)
//  - Cholesky           -> GLS whitening and SPD solves (eq. 12)
//  - Jacobi eigenvalues -> PCA bases from prior traces, condition numbers
//  - One-sided Jacobi SVD -> pseudo-inverse (eq. 6) and kappa for the
//    conditioning error term epsilon_c of Section 4.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "linalg/matrix.h"

namespace sensedroid::linalg {

/// Householder QR factorization A = Q R of an m x n matrix, m >= n.
/// Stores Q implicitly as Householder reflectors; supports solving
/// least-squares problems min ||A x - b||_2 without forming Q.
class QR {
 public:
  /// Factorizes A.  Throws std::invalid_argument if A.rows() < A.cols().
  explicit QR(const Matrix& a);

  /// Solves min ||A x - b||_2; throws std::invalid_argument on size
  /// mismatch, std::runtime_error if A is numerically rank-deficient.
  Vector solve(std::span<const double> b) const;

  /// True when all |R(i,i)| exceed `tol * max|R(i,i)|`.
  bool full_rank(double tol = 1e-12) const noexcept;

  /// min |R(i,i)| / max |R(i,i)| — cheap conditioning proxy.
  double diag_ratio() const noexcept;

  const Matrix& packed() const noexcept { return qr_; }

 private:
  Matrix qr_;     // R in the upper triangle, reflectors below.
  Vector tau_;    // Householder scalar factors.
  void apply_qt(std::span<double> b) const;  // b := Q^T b
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
class Cholesky {
 public:
  /// Factorizes A.  Throws std::runtime_error if A is not SPD (within
  /// numerical tolerance) and std::invalid_argument if A is not square.
  explicit Cholesky(const Matrix& a);

  /// Solves A x = b.
  Vector solve(std::span<const double> b) const;

  /// Solves L y = b (forward substitution only).
  Vector forward(std::span<const double> b) const;

  /// The lower-triangular factor L.
  const Matrix& lower() const noexcept { return l_; }

 private:
  Matrix l_;
};

/// Result of a symmetric eigen-decomposition: A = V diag(w) V^T with
/// eigenvalues sorted descending and eigenvectors as columns of V.
struct EigenResult {
  Vector eigenvalues;
  Matrix eigenvectors;
};

/// Cyclic Jacobi eigen-decomposition of a symmetric matrix.
/// Throws std::invalid_argument if A is not square.
EigenResult jacobi_eigen(const Matrix& a, double tol = 1e-12,
                         std::size_t max_sweeps = 64);

/// Thin SVD A = U diag(s) V^T via one-sided Jacobi; singular values sorted
/// descending.  Works for any m >= 1, n >= 1 (transposes internally if
/// m < n would hurt convergence is NOT done; callers pass tall or square).
struct SvdResult {
  Matrix u;   // m x n
  Vector s;   // n
  Matrix v;   // n x n
};
SvdResult jacobi_svd(const Matrix& a, double tol = 1e-12,
                     std::size_t max_sweeps = 64);

/// Moore-Penrose pseudo-inverse via SVD with relative cutoff `rcond`
/// (eq. 6's dagger operator for possibly ill-conditioned Phi_K).
Matrix pseudo_inverse(const Matrix& a, double rcond = 1e-12);

/// 2-norm condition number kappa(A) = s_max / s_min (infinity if singular
/// to working precision).  Feeds the epsilon_c conditioning error term.
double condition_number(const Matrix& a);

/// Solves a general square system A x = b by partial-pivot LU.
/// Throws std::runtime_error if A is singular to working precision.
Vector lu_solve(const Matrix& a, std::span<const double> b);

/// Gram-Schmidt orthonormalization of the columns of A (modified GS,
/// two passes).  Returns a matrix whose columns span the same space.
/// Columns that are numerically dependent are dropped; the optional
/// output reports how many survive.
Matrix orthonormalize_columns(const Matrix& a, double tol = 1e-10,
                              std::size_t* rank_out = nullptr);

}  // namespace sensedroid::linalg
