// SenseDroid linear-algebra substrate: dense row-major matrix.
//
// This is the foundation every compressive-sensing routine in the paper
// builds on (eqs. 2-14).  It is deliberately a small, fully-owned dense
// implementation: field maps in a NanoCloud are a few thousand grid points
// at most, so dense O(N^2) storage and O(N^3) factorizations are the right
// tool, and owning the code lets the broker run identical numerics on every
// tier of the hierarchy.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace sensedroid::linalg {

/// Dense column vector of doubles.  Kept as a plain std::vector so that
/// sensor buffers, field vectorizations (eq. 1) and coefficient vectors
/// interoperate without copies.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// Invariant: data_.size() == rows_ * cols_ at all times; a default-
/// constructed matrix is the valid 0x0 matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill` (default 0).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists; all rows must have
  /// equal length.  Throws std::invalid_argument on ragged input.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// The n x n identity matrix.
  static Matrix identity(std::size_t n);

  /// Builds a matrix from its dimensions and a flat row-major buffer.
  /// Throws std::invalid_argument if buffer size != rows*cols.
  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::span<const double> row_major);

  /// Builds an n x n diagonal matrix from `diag`.
  static Matrix diagonal(std::span<const double> diag);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Row r as a span over contiguous storage.
  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies column c into a new vector.
  Vector col(std::size_t c) const;

  /// Flat row-major storage.
  std::span<const double> data() const noexcept { return data_; }
  std::span<double> data() noexcept { return data_; }

  Matrix transpose() const;

  /// Matrix product; throws std::invalid_argument on dimension mismatch.
  Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product; throws std::invalid_argument on mismatch.
  Vector operator*(std::span<const double> v) const;

  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix operator*(double s) const;
  Matrix& operator*=(double s);

  bool operator==(const Matrix& rhs) const = default;

  /// A^T * v without forming the transpose.
  Vector transpose_times(std::span<const double> v) const;

  /// A^T * v into a caller-owned buffer of size cols() — the hot-loop
  /// form used by the greedy solvers (no allocation per call).  Throws
  /// std::invalid_argument on size mismatch.
  void transpose_times_into(std::span<const double> v,
                            std::span<double> out) const;

  /// Copies column c into a caller-owned buffer of size rows().
  void col_into(std::size_t c, std::span<double> out) const;

  /// Squared Euclidean norm of every column into a caller-owned buffer of
  /// size cols(), in one blocked sweep over the matrix.  Throws
  /// std::invalid_argument on size mismatch.
  void col_sqnorms_into(std::span<double> out) const;

  /// Fused A^T * v and column squared norms in a single sweep over the
  /// matrix — the two outputs share one pass of memory traffic, which is
  /// what the greedy solvers' first iteration is bound by.  Equivalent to
  /// transpose_times_into(v, out) followed by col_sqnorms_into(sqnorms).
  void transpose_times_sqnorms_into(std::span<const double> v,
                                    std::span<double> out,
                                    std::span<double> sqnorms) const;

  /// Gram matrix A^T A (cols x cols), computed directly.
  Matrix gram() const;

  /// Selects the given rows, in order, into a new matrix (eq. 7: rows of
  /// Phi_K at sensor locations L).  Throws std::out_of_range on bad index.
  Matrix select_rows(std::span<const std::size_t> idx) const;

  /// Selects the given columns, in order (eq. 5: the K support columns J).
  Matrix select_cols(std::span<const std::size_t> idx) const;

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

  /// Maximum absolute element.
  double max_abs() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Scalar * matrix.
inline Matrix operator*(double s, const Matrix& m) { return m * s; }

/// True when a and b have equal shape and match elementwise within tol.
bool approx_equal(const Matrix& a, const Matrix& b, double tol = 1e-12);

}  // namespace sensedroid::linalg
