#include "linalg/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sensedroid::linalg {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = n;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return static_cast<std::size_t>(x % bound);
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * f;
  has_cached_gaussian_ = true;
  return u * f;
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument("exponential: rate must be positive");
  }
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument(
        "sample_without_replacement: k must not exceed n");
  }
  // Floyd's algorithm: O(k) expected insertions, exact uniformity.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = uniform_index(j + 1);
    if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
      chosen.push_back(t);
    } else {
      chosen.push_back(j);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[uniform_index(i)]);
  }
  return p;
}

Vector Rng::gaussian_vector(std::size_t n) {
  Vector v(n);
  for (double& x : v) x = gaussian();
  return v;
}

Rng Rng::fork() noexcept { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

}  // namespace sensedroid::linalg
