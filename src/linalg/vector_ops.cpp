#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sensedroid::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm1(std::span<const double> v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += std::abs(x);
  return acc;
}

double norm_inf(std::span<const double> v) noexcept {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

std::size_t norm0(std::span<const double> v, double tol) noexcept {
  std::size_t n = 0;
  for (double x : v) {
    if (std::abs(x) > tol) ++n;
  }
  return n;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("axpy: size mismatch");
  }
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("subtract: size mismatch");
  }
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("add: size mismatch");
  }
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector scaled(std::span<const double> v, double s) {
  Vector out(v.begin(), v.end());
  for (double& x : out) x *= s;
  return out;
}

double rmse(std::span<const double> estimate, std::span<const double> truth) {
  if (estimate.size() != truth.size()) {
    throw std::invalid_argument("rmse: size mismatch");
  }
  if (estimate.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < estimate.size(); ++i) {
    const double d = estimate[i] - truth[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(estimate.size()));
}

double nrmse(std::span<const double> estimate, std::span<const double> truth) {
  const double e = rmse(estimate, truth);
  if (truth.empty()) return e;
  const double denom =
      norm2(truth) / std::sqrt(static_cast<double>(truth.size()));
  return denom > 0.0 ? e / denom : e;
}

double relative_error(std::span<const double> estimate,
                      std::span<const double> truth) {
  const double diff = norm2(subtract(estimate, truth));
  const double denom = norm2(truth);
  return denom > 0.0 ? diff / denom : diff;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (a.empty()) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double mean(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double variance(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

std::vector<std::size_t> top_k_by_magnitude(std::span<const double> v,
                                            std::size_t k) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  k = std::min(k, v.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return std::abs(v[a]) > std::abs(v[b]);
                    });
  idx.resize(k);
  return idx;
}

Vector hard_threshold(std::span<const double> v, std::size_t k) {
  Vector out(v.size(), 0.0);
  for (std::size_t i : top_k_by_magnitude(v, k)) out[i] = v[i];
  return out;
}

}  // namespace sensedroid::linalg
