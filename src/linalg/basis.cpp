#include "linalg/basis.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/decomposition.h"
#include "linalg/random.h"
#include "linalg/vector_ops.h"

namespace sensedroid::linalg {

std::string to_string(BasisKind kind) {
  switch (kind) {
    case BasisKind::kIdentity: return "identity";
    case BasisKind::kDct: return "dct";
    case BasisKind::kHaar: return "haar";
    case BasisKind::kGaussian: return "gaussian";
    case BasisKind::kPca: return "pca";
  }
  return "unknown";
}

Matrix dct_basis(std::size_t n) {
  if (n == 0) throw std::invalid_argument("dct_basis: n must be positive");
  Matrix phi(n, n);
  const double scale0 = std::sqrt(1.0 / static_cast<double>(n));
  const double scale = std::sqrt(2.0 / static_cast<double>(n));
  // Synthesis matrix: x[m] = sum_k phi(m,k) alpha[k]; columns are cosines.
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t k = 0; k < n; ++k) {
      const double c = k == 0 ? scale0 : scale;
      phi(m, k) = c * std::cos(std::numbers::pi *
                               (2.0 * static_cast<double>(m) + 1.0) *
                               static_cast<double>(k) /
                               (2.0 * static_cast<double>(n)));
    }
  }
  return phi;
}

Matrix haar_basis(std::size_t n) {
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("haar_basis: n must be a power of two");
  }
  Matrix phi(n, n);
  const double root_n = std::sqrt(static_cast<double>(n));
  // Column 0: the scaling function.
  for (std::size_t m = 0; m < n; ++m) phi(m, 0) = 1.0 / root_n;
  // Wavelets psi_{j,k}: scale j has 2^j wavelets of support n / 2^j.
  std::size_t col = 1;
  for (std::size_t scale = 1; scale < n; scale *= 2) {
    const std::size_t support = n / scale;
    const double amp = std::sqrt(static_cast<double>(scale) /
                                 static_cast<double>(n));
    for (std::size_t k = 0; k < scale; ++k, ++col) {
      const std::size_t start = k * support;
      for (std::size_t m = 0; m < support / 2; ++m) {
        phi(start + m, col) = amp;
        phi(start + support / 2 + m, col) = -amp;
      }
    }
  }
  return phi;
}

Matrix identity_basis(std::size_t n) { return Matrix::identity(n); }

Matrix kronecker(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double aij = a(i, j);
      if (aij == 0.0) continue;
      for (std::size_t k = 0; k < b.rows(); ++k) {
        for (std::size_t l = 0; l < b.cols(); ++l) {
          out(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
        }
      }
    }
  }
  return out;
}

Matrix dct2_basis(std::size_t width, std::size_t height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("dct2_basis: dimensions must be positive");
  }
  // Column stacking puts the row index (height) in the fast dimension, so
  // the height-DCT is the inner factor of the Kronecker product.
  return kronecker(dct_basis(width), dct_basis(height));
}

Matrix gaussian_basis(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.gaussian();
  }
  std::size_t rank = 0;
  Matrix q = orthonormalize_columns(g, 1e-10, &rank);
  // A random Gaussian square matrix is full rank with probability 1, but
  // guard against the measure-zero event by re-drawing.
  while (rank < n) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.gaussian();
    }
    q = orthonormalize_columns(g, 1e-10, &rank);
  }
  return q;
}

Matrix pca_basis(const Matrix& traces) {
  if (traces.rows() == 0 || traces.cols() == 0) {
    throw std::invalid_argument("pca_basis: empty trace matrix");
  }
  const std::size_t t = traces.rows();
  const std::size_t n = traces.cols();
  // Mean-remove across traces.
  Matrix centered = traces;
  for (std::size_t j = 0; j < n; ++j) {
    double m = 0.0;
    for (std::size_t i = 0; i < t; ++i) m += traces(i, j);
    m /= static_cast<double>(t);
    for (std::size_t i = 0; i < t; ++i) centered(i, j) -= m;
  }
  // Covariance C = X^T X / T (N x N) and its eigenvectors.
  Matrix cov = centered.gram();
  cov *= 1.0 / static_cast<double>(t);
  EigenResult eig = jacobi_eigen(cov);

  // Keep directions carrying real variance, then complete to a full
  // orthonormal N x N basis so downstream code can treat it like DCT.
  const double total =
      std::max(1e-300, std::abs(eig.eigenvalues.empty()
                                    ? 0.0
                                    : eig.eigenvalues.front()));
  std::size_t keep = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (eig.eigenvalues[i] > 1e-12 * total) ++keep;
  }
  if (keep == 0) keep = 1;

  Matrix combined(n, n + keep);
  for (std::size_t j = 0; j < keep; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      combined(i, j) = eig.eigenvectors(i, j);
    }
  }
  // Append the identity; Gram-Schmidt keeps the principal directions first
  // and fills the remaining dimensions from the spikes.
  for (std::size_t j = 0; j < n; ++j) combined(j, keep + j) = 1.0;
  std::size_t rank = 0;
  Matrix full = orthonormalize_columns(combined, 1e-10, &rank);
  if (rank != n) {
    throw std::runtime_error("pca_basis: failed to complete basis");
  }
  return full;
}

Matrix make_basis(BasisKind kind, std::size_t n, std::uint64_t seed) {
  switch (kind) {
    case BasisKind::kIdentity: return identity_basis(n);
    case BasisKind::kDct: return dct_basis(n);
    case BasisKind::kHaar: return haar_basis(n);
    case BasisKind::kGaussian: return gaussian_basis(n, seed);
    case BasisKind::kPca:
      throw std::invalid_argument(
          "make_basis: PCA basis requires traces; call pca_basis()");
  }
  throw std::invalid_argument("make_basis: unknown kind");
}

Vector analyze(const Matrix& basis, std::span<const double> x) {
  return basis.transpose_times(x);
}

Vector synthesize(const Matrix& basis, std::span<const double> alpha) {
  return basis * alpha;
}

std::size_t effective_sparsity(const Matrix& basis, std::span<const double> x,
                               double tol) {
  const Vector alpha = analyze(basis, x);
  const double full = norm2(alpha);
  if (full == 0.0) return 0;
  // Binary search would need a monotone predicate; the K-term error is
  // monotone non-increasing in K, so it applies.
  std::size_t lo = 0, hi = alpha.size();
  auto err_at = [&](std::size_t k) {
    const Vector thr = hard_threshold(alpha, k);
    return norm2(subtract(thr, alpha)) / full;
  };
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (err_at(mid) <= tol) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool is_orthonormal(const Matrix& b, double tol) {
  if (b.rows() != b.cols()) return false;
  const Matrix g = b.gram();
  const Matrix i = Matrix::identity(b.cols());
  return approx_equal(g, i, tol);
}

}  // namespace sensedroid::linalg
