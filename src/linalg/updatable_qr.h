// Incremental thin-QR factorization for growing/shrinking column sets.
//
// The greedy CS solvers (eq. 13) extend their support by one atom per
// iteration and occasionally retract the last pick.  Refactorizing from
// scratch makes each refit O(m k^2) and the whole solve O(m k^3); this
// engine keeps an explicit thin Q (m x k, orthonormal columns) and a
// packed upper-triangular R so that
//
//   append_column  — orthogonalize one new column against Q:   O(m k)
//   remove_last    — drop the last column of Q and R:          O(1)
//   solve          — Q^T y then back-substitution:             O(m k + k^2)
//
// Orthogonalization is classical Gram-Schmidt with selective
// reorthogonalization (CGS2, the DGKS "twice is enough" criterion): each
// round forms all projections Q^T w from the same w — k independent dot
// products, throughput-bound, where modified Gram-Schmidt serializes a
// project-subtract chain — and a second round runs only when the first
// cancels more than half of the column's mass.  This keeps Q orthonormal
// to ~machine epsilon at condition numbers where a single CGS round
// drifts badly — the solvers rely on this to match a from-scratch
// Householder QR to ~1e-14 — while the well-conditioned common case pays
// for a single round.
//
// Contract notes:
//  - append_column returns false (and leaves the factorization
//    untouched) when the new column is numerically dependent on the
//    current ones; callers fall back to a dense/ridge path.
//  - remove_last is exact only because the *last* column leaves: R stays
//    upper-triangular by construction, no Givens downdating needed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace sensedroid::linalg {

class UpdatableQR {
 public:
  /// Factorization over columns of length `rows`; `capacity` columns are
  /// preallocated so appends up to that count never allocate.
  explicit UpdatableQR(std::size_t rows, std::size_t capacity = 0);

  std::size_t rows() const noexcept { return rows_; }

  /// Number of columns currently factored (k).
  std::size_t size() const noexcept { return size_; }

  /// Extends the factorization with one column (length rows()).  Returns
  /// false without changing state when the column's component orthogonal
  /// to the current span has norm <= dep_tol * ||col|| (numerically
  /// dependent, or rows() exhausted).  Throws std::invalid_argument on a
  /// length mismatch.
  bool append_column(std::span<const double> col, double dep_tol = 1e-12);

  /// Removes the most recently appended column.  No-op precondition:
  /// size() > 0 (throws std::logic_error otherwise).
  void remove_last();

  /// Resets to the empty factorization, keeping allocated capacity.
  void clear() noexcept { size_ = 0; }

  /// Least-squares coefficients x minimizing ||A x - y|| against the
  /// cached factors, where A is the appended column set.  O(mk + k^2).
  Vector solve(std::span<const double> y) const;

  /// Back-substitution only: solves R x = qty where qty = Q^T y has
  /// already been formed (the OMP loop maintains it incrementally).
  Vector solve_from_qty(std::span<const double> qty) const;

  /// j-th orthonormal basis column of Q (valid until the next append or
  /// remove_last).
  std::span<const double> q_column(std::size_t j) const;

  /// R(i, j) for i <= j < size().
  double r(std::size_t i, std::size_t j) const;

 private:
  std::size_t rows_ = 0;
  std::size_t size_ = 0;
  std::vector<double> q_;     // column-major, size_ columns of length rows_
  std::vector<double> r_;     // packed upper triangle: col j at j*(j+1)/2
  std::vector<double> work_;  // scratch column for orthogonalization
  std::vector<double> h_;     // scratch projections (one round of Q^T w)
};

/// Least-squares refit cache over the columns of a fixed dictionary.
///
/// Greedy solvers refit against supports that mostly grow monotonically
/// (OMP appends one atom; CoSaMP/CHS re-sort but share long prefixes).
/// refit() downdates the factorization to the longest common prefix of
/// the previous and requested supports and appends only the new tail, so
/// an OMP-style monotone sequence costs O(m k) per step instead of a
/// fresh O(m k^2) factorization.
///
/// Bypass conditions — refit() returns false and clears the cache when a
/// requested column is numerically dependent on the columns before it;
/// callers then use the dense (Householder QR / ridge) path for that
/// support.  The dictionary must outlive the cache.
class SupportQrCache {
 public:
  explicit SupportQrCache(const Matrix& a);

  /// Makes the factorization match exactly the given columns of the
  /// dictionary, reusing the longest common prefix with the previous
  /// call.  False = numerically dependent column encountered (cache
  /// cleared; use the dense fallback).
  bool refit(std::span<const std::size_t> support, double dep_tol = 1e-12);

  /// Length of the longest common prefix between `support` and the
  /// currently factored column list — what refit() would reuse.  Callers
  /// with wildly changing supports (CoSaMP's merged candidate sets) use
  /// this to decide whether the incremental path beats a dense refactor.
  std::size_t common_prefix(std::span<const std::size_t> support) const;

  /// Coefficients for the support passed to the last successful refit().
  Vector solve(std::span<const double> y) const { return qr_.solve(y); }

  const UpdatableQR& qr() const noexcept { return qr_; }

  /// Columns reused (prefix length) by the last refit — instrumentation.
  std::size_t reused_columns() const noexcept { return reused_; }

 private:
  const Matrix* a_;
  UpdatableQR qr_;
  std::vector<std::size_t> cols_;
  Vector col_buf_;
  std::size_t reused_ = 0;
};

}  // namespace sensedroid::linalg
