// Updatable LU factorization of a square basis matrix — the engine room
// of the revised simplex (DESIGN.md §11).
//
// A simplex basis B (m x m, one column per basic variable "slot") changes
// by exactly one column per pivot.  Refactorizing densely makes every
// pivot O(m^3); this class keeps B = L~ U where
//
//   - L~ is the product of the initial partial-pivot LU's L and the
//     elementary row operations recorded by later updates (never formed
//     explicitly — solves replay the operation log), and
//   - U is an explicit dense upper triangle, maintained in place.
//
// replace_column is the Bartels-Golub update: the incoming column is
// forward-solved into a spike, the outgoing column's slot is deleted from
// U (columns shift left, leaving an upper Hessenberg band), the spike is
// appended as the last column, and the subdiagonal is re-eliminated by
// row operations with row-interchange pivoting.  Cost O(m^2) worst case,
// O(m (m - p)) when the leaving column sits at position p.
//
//   factor          — dense partial-pivot LU of a fresh basis:  O(m^3)
//   replace_column  — Bartels-Golub column swap:                O(m^2)
//   ftran           — solve B x = b  (entering-column / RHS):   O(m^2)
//   btran           — solve B^T x = b (duals / pivot rows):     O(m^2)
//
// Contract notes:
//  - factor and replace_column return false when the result would be
//    numerically singular (tiny U diagonal); the factorization is then
//    unusable until the next successful factor().  The simplex driver
//    responds by refactorizing from the true basis columns.
//  - The operation log grows by at most 2(m-1) entries per update;
//    callers bound solve cost by refactorizing every few dozen updates
//    (SimplexOptions::refactor_interval) — the classic fill/stability
//    policy, surfaced through updates_since_factor().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace sensedroid::linalg {

class UpdatableLU {
 public:
  /// Factorization of an n x n basis; all storage is preallocated here so
  /// the per-pivot paths never allocate.
  explicit UpdatableLU(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// True between a successful factor() and the first failed update.
  bool valid() const noexcept { return valid_; }

  /// Column replacements applied since the last factor().
  std::size_t updates_since_factor() const noexcept { return updates_; }

  /// Factorizes the basis whose column `s` is `basis.col(s)` (slot order).
  /// Returns false when the basis is singular to working precision; the
  /// factorization is invalid until the next successful call.  Throws
  /// std::invalid_argument when `basis` is not n x n.
  bool factor(const Matrix& basis);

  /// Bartels-Golub update: basis slot `slot` is replaced by `col`.
  /// Returns false (factorization invalid, caller must refactor) when the
  /// updated U would be numerically singular.  Throws
  /// std::invalid_argument on a bad slot or length, std::logic_error when
  /// called on an invalid factorization.
  bool replace_column(std::size_t slot, std::span<const double> col);

  /// Solves B x = b (FTRAN).  x and b are length n; aliasing allowed.
  void ftran(std::span<const double> b, std::span<double> x) const;

  /// Solves B^T x = b (BTRAN).  x and b are length n; aliasing allowed.
  void btran(std::span<const double> b, std::span<double> x) const;

  /// min |U(i,i)| / max |U(i,i)| — cheap conditioning probe of the
  /// current factors.
  double diag_ratio() const noexcept;

 private:
  // One recorded elementary operation on the adjacent row pair (q, q+1):
  // [v_q; v_q+1] <- [[a, b], [c, d]] [v_q; v_q+1].  A plain elimination is
  // [[1, 0], [-m, 1]]; elimination after a stabilizing interchange is
  // [[0, 1], [1, -m]].  Storing the composed 2x2 (instead of tagged
  // swap/axpy ops) makes the replay a branchless stream — the op log is
  // the hot path of every FTRAN/BTRAN between refactorizations.
  struct RowOp {
    std::uint32_t q;
    double a, b, c, d;
  };

  double stability_floor() const noexcept;
  bool eliminate_hessenberg(std::size_t from);
  void lower_solve_inplace(double* v) const;

  std::size_t n_ = 0;
  bool valid_ = false;
  std::size_t updates_ = 0;
  std::vector<double> l0_;             // initial LU multipliers, row-major
  std::vector<std::uint32_t> perm0_;   // initial partial-pivot row swaps
  std::vector<double> u_;              // current U, row-major dense
  std::vector<RowOp> ops_;             // post-L0 row operations, in order
  std::vector<std::uint32_t> pos_of_slot_;
  std::vector<std::uint32_t> slot_of_pos_;
  mutable std::vector<double> work_;   // solve scratch (position order)
};

}  // namespace sensedroid::linalg
