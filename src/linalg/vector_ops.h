// Free functions on dense vectors: norms, inner products, and the error
// metrics used throughout the paper's reconstruction experiments (Fig. 4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace sensedroid::linalg {

/// Inner product <a, b>; throws std::invalid_argument on size mismatch.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean (L2) norm.
double norm2(std::span<const double> v) noexcept;

/// L1 norm: sum of absolute values (the objective of eq. 9).
double norm1(std::span<const double> v) noexcept;

/// L-infinity norm: max absolute value.
double norm_inf(std::span<const double> v) noexcept;

/// "L0 norm" of the paper (eq. 8): number of entries with |x| > tol.
std::size_t norm0(std::span<const double> v, double tol = 1e-12) noexcept;

/// y += alpha * x; throws std::invalid_argument on size mismatch.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Elementwise a - b.
Vector subtract(std::span<const double> a, std::span<const double> b);

/// Elementwise a + b.
Vector add(std::span<const double> a, std::span<const double> b);

/// Elementwise scale.
Vector scaled(std::span<const double> v, double s);

/// Root-mean-square error between a reconstruction and ground truth.
double rmse(std::span<const double> estimate, std::span<const double> truth);

/// RMSE normalized by the RMS of the truth: the "reconstruction error"
/// metric of Fig. 4 (0 = perfect; 1 = as large as the signal itself).
/// Returns rmse when the truth is identically zero.
double nrmse(std::span<const double> estimate, std::span<const double> truth);

/// Relative L2 error ||e - t||_2 / ||t||_2 (returns ||e||_2 if ||t|| = 0).
double relative_error(std::span<const double> estimate,
                      std::span<const double> truth);

/// Sample Pearson correlation coefficient; 0 when either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Arithmetic mean (0 for empty input).
double mean(std::span<const double> v) noexcept;

/// Population variance (0 for empty input).
double variance(std::span<const double> v) noexcept;

/// Indices of the k largest |v[i]|, in descending magnitude order.
std::vector<std::size_t> top_k_by_magnitude(std::span<const double> v,
                                            std::size_t k);

/// Keeps the k largest-magnitude entries of v and zeroes the rest
/// (hard-thresholding used when forming K-sparse approximations, eq. 5).
Vector hard_threshold(std::span<const double> v, std::size_t k);

}  // namespace sensedroid::linalg
