#include "linalg/decomposition.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "linalg/vector_ops.h"

namespace sensedroid::linalg {

// ---------------------------------------------------------------- QR ----

QR::QR(const Matrix& a) : qr_(a), tau_(a.cols(), 0.0) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) {
    throw std::invalid_argument("QR: requires rows >= cols");
  }
  // Reflector application: s_j = v . a_j, then a_j += (v_k^-1 * -s_j) v.
  // Two layouts, chosen per step by the trailing-block width:
  //  - wide blocks use two row-major sweeps (gather s = v^T A, then a
  //    rank-1 update) whose inner loops walk contiguous rows and
  //    vectorize well;
  //  - narrow blocks use the classic column-at-a-time pass, which wins
  //    when a whole trailing row fits in a couple of cache lines and the
  //    sweep's extra pass over `s` is pure overhead (~6% on 30x10).
  // Both paths perform the identical per-(i,j) floating-point operations
  // in the same accumulation order, so results are bit-identical; the
  // gate is purely a memory-access-pattern choice.
  constexpr std::size_t kRowSweepMinWidth = 16;
  Vector s(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    if (qr_(k, k) < 0.0) norm = -norm;
    for (std::size_t i = k; i < m; ++i) qr_(i, k) /= norm;
    qr_(k, k) += 1.0;
    tau_[k] = qr_(k, k);
    const double inv = -1.0 / qr_(k, k);
    if (n - k - 1 >= kRowSweepMinWidth) {
      std::fill(s.begin() + static_cast<std::ptrdiff_t>(k) + 1, s.end(), 0.0);
      for (std::size_t i = k; i < m; ++i) {
        const double vik = qr_(i, k);
        const double* __restrict row = &qr_(i, 0);
        for (std::size_t j = k + 1; j < n; ++j) s[j] += vik * row[j];
      }
      for (std::size_t j = k + 1; j < n; ++j) s[j] *= inv;
      for (std::size_t i = k; i < m; ++i) {
        const double vik = qr_(i, k);
        double* __restrict row = &qr_(i, 0);
        for (std::size_t j = k + 1; j < n; ++j) row[j] += s[j] * vik;
      }
    } else {
      for (std::size_t j = k + 1; j < n; ++j) {
        double sj = 0.0;
        for (std::size_t i = k; i < m; ++i) sj += qr_(i, k) * qr_(i, j);
        sj *= inv;
        for (std::size_t i = k; i < m; ++i) qr_(i, j) += sj * qr_(i, k);
      }
    }
    // Store R(k,k); the reflector occupies the column below it.
    qr_(k, k) = -norm;
    // Re-normalize reflector storage: v(k) implicitly = 1 after division by
    // the stored head; we keep v in rows k+1..m-1 scaled by the head value.
    const double head = tau_[k];
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= head;
    tau_[k] = head;
  }
}

void QR::apply_qt(std::span<double> b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    // v = [1, qr_(k+1..m-1, k)], H = I - tau v v^T.
    double s = b[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * b[i];
    s *= tau_[k];
    b[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) b[i] -= s * qr_(i, k);
  }
}

Vector QR::solve(std::span<const double> b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (b.size() != m) {
    throw std::invalid_argument("QR::solve: size mismatch");
  }
  if (!full_rank()) {
    throw std::runtime_error("QR::solve: numerically rank-deficient");
  }
  Vector y(b.begin(), b.end());
  apply_qt(y);
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= qr_(ii, j) * x[j];
    x[ii] = s / qr_(ii, ii);
  }
  return x;
}

bool QR::full_rank(double tol) const noexcept {
  double maxd = 0.0;
  for (std::size_t i = 0; i < qr_.cols(); ++i) {
    maxd = std::max(maxd, std::abs(qr_(i, i)));
  }
  if (maxd == 0.0) return false;
  for (std::size_t i = 0; i < qr_.cols(); ++i) {
    if (std::abs(qr_(i, i)) <= tol * maxd) return false;
  }
  return true;
}

double QR::diag_ratio() const noexcept {
  if (qr_.cols() == 0) return 0.0;
  double mind = std::numeric_limits<double>::infinity();
  double maxd = 0.0;
  for (std::size_t i = 0; i < qr_.cols(); ++i) {
    const double d = std::abs(qr_(i, i));
    mind = std::min(mind, d);
    maxd = std::max(maxd, d);
  }
  return maxd > 0.0 ? mind / maxd : 0.0;
}

// ---------------------------------------------------------- Cholesky ----

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (s <= 0.0) {
          throw std::runtime_error("Cholesky: matrix not positive definite");
        }
        l_(i, i) = std::sqrt(s);
      } else {
        l_(i, j) = s / l_(j, j);
      }
    }
  }
}

Vector Cholesky::forward(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  if (b.size() != n) {
    throw std::invalid_argument("Cholesky::forward: size mismatch");
  }
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

Vector Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  Vector y = forward(b);
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

// ------------------------------------------------------- Jacobi eigen ----

EigenResult jacobi_eigen(const Matrix& a_in, double tol,
                         std::size_t max_sweeps) {
  if (a_in.rows() != a_in.cols()) {
    throw std::invalid_argument("jacobi_eigen: matrix must be square");
  }
  const std::size_t n = a_in.rows();
  Matrix a = a_in;
  Matrix v = Matrix::identity(n);
  const double scale = std::max(a.max_abs(), 1e-300);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    }
    if (std::sqrt(off) <= tol * scale * static_cast<double>(n)) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= tol * scale) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenResult res;
  res.eigenvalues.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.eigenvalues[i] = a(i, i);
  // Sort descending, permuting eigenvectors to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return res.eigenvalues[x] > res.eigenvalues[y];
  });
  Vector sorted_w(n);
  Matrix sorted_v(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_w[j] = res.eigenvalues[order[j]];
    for (std::size_t i = 0; i < n; ++i) sorted_v(i, j) = v(i, order[j]);
  }
  res.eigenvalues = std::move(sorted_w);
  res.eigenvectors = std::move(sorted_v);
  return res;
}

// --------------------------------------------------------- Jacobi SVD ----

SvdResult jacobi_svd(const Matrix& a, double tol, std::size_t max_sweeps) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix u = a;                       // columns rotated in place
  Matrix v = Matrix::identity(n);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          app += u(i, p) * u(i, p);
          aqq += u(i, q) * u(i, q);
          apq += u(i, p) * u(i, q);
        }
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        converged = false;
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t i = 0; i < m; ++i) {
          const double uip = u(i, p);
          const double uiq = u(i, q);
          u(i, p) = c * uip - s * uiq;
          u(i, q) = s * uip + c * uiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
    if (converged) break;
  }

  SvdResult res;
  res.s.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += u(i, j) * u(i, j);
    res.s[j] = std::sqrt(norm);
  }
  // Sort descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return res.s[x] > res.s[y]; });
  Matrix us(m, n);
  Matrix vs(n, n);
  Vector ss(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    ss[j] = res.s[src];
    const double inv = ss[j] > 0.0 ? 1.0 / ss[j] : 0.0;
    for (std::size_t i = 0; i < m; ++i) us(i, j) = u(i, src) * inv;
    for (std::size_t i = 0; i < n; ++i) vs(i, j) = v(i, src);
  }
  res.u = std::move(us);
  res.s = std::move(ss);
  res.v = std::move(vs);
  return res;
}

Matrix pseudo_inverse(const Matrix& a, double rcond) {
  // For wide matrices pinv(A) = pinv(A^T)^T keeps the SVD tall.
  if (a.rows() < a.cols()) {
    return pseudo_inverse(a.transpose(), rcond).transpose();
  }
  const SvdResult svd = jacobi_svd(a);
  const double cutoff = rcond * (svd.s.empty() ? 0.0 : svd.s.front());
  // pinv = V diag(1/s) U^T.
  const std::size_t n = a.cols();
  Matrix vsinv(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const double inv = svd.s[j] > cutoff ? 1.0 / svd.s[j] : 0.0;
    for (std::size_t i = 0; i < n; ++i) vsinv(i, j) = svd.v(i, j) * inv;
  }
  return vsinv * svd.u.transpose();
}

double condition_number(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) return 0.0;
  const Matrix& tall = a;
  const SvdResult svd =
      a.rows() >= a.cols() ? jacobi_svd(tall) : jacobi_svd(a.transpose());
  const double smax = svd.s.front();
  const double smin = svd.s.back();
  if (smin <= smax * 1e-300 || smin == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return smax / smin;
}

Vector lu_solve(const Matrix& a, std::span<const double> b) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("lu_solve: matrix must be square");
  }
  const std::size_t n = a.rows();
  if (b.size() != n) {
    throw std::invalid_argument("lu_solve: size mismatch");
  }
  Matrix lu = a;
  Vector x(b.begin(), b.end());
  std::vector<std::size_t> piv(n);
  std::iota(piv.begin(), piv.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(lu(i, k)) > std::abs(lu(p, k))) p = i;
    }
    if (std::abs(lu(p, k)) < 1e-300) {
      throw std::runtime_error("lu_solve: singular matrix");
    }
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(p, j), lu(k, j));
      std::swap(x[p], x[k]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu(i, k) /= lu(k, k);
      const double f = lu(i, k);
      if (f == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= f * lu(k, j);
      x[i] -= f * x[k];
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu(ii, j) * x[j];
    x[ii] /= lu(ii, ii);
  }
  return x;
}

Matrix orthonormalize_columns(const Matrix& a, double tol,
                              std::size_t* rank_out) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  std::vector<Vector> basis;
  basis.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    Vector v = a.col(j);
    const double orig = norm2(v);
    // Two-pass modified Gram-Schmidt for numerical stability.
    for (int pass = 0; pass < 2; ++pass) {
      for (const Vector& q : basis) {
        const double proj = dot(v, q);
        axpy(-proj, q, v);
      }
    }
    const double nrm = norm2(v);
    if (nrm <= tol * std::max(orig, 1.0)) continue;  // dependent column
    for (double& x : v) x /= nrm;
    basis.push_back(std::move(v));
  }
  Matrix q(m, basis.size());
  for (std::size_t j = 0; j < basis.size(); ++j) {
    for (std::size_t i = 0; i < m; ++i) q(i, j) = basis[j][i];
  }
  if (rank_out != nullptr) *rank_out = basis.size();
  return q;
}

}  // namespace sensedroid::linalg
