#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace sensedroid::linalg {

namespace {

// Blocked saxpy sweep for A^T v: out[c] += sum over a block of rows of
// a(r, c) * v[r], streaming the matrix row-contiguously (one pass per
// 8 input rows, with 4/2/1-row tail blocks so short remainders do not
// degenerate into one full output sweep per row).  Straight-line, no
// zero-skip: 0 * NaN must stay NaN.
//
// The intrinsic path exists because with runtime strides the
// autovectorizer peels/epilogues each strip, which costs ~20% on the
// m=30, n=256 Fig. 4 regime where this kernel is the single largest
// term of an OMP solve.  256-bit vectors are deliberate: 512-bit FMA
// throttles the clock on the build machines this was tuned on.
#if defined(__AVX2__) && defined(__FMA__)
void saxpy_sweep(const double* __restrict d, const double* __restrict v,
                 double* __restrict o, std::size_t rows, std::size_t cols) {
  std::size_t r = 0;
  for (; r + 8 <= rows; r += 8) {
    const double* p = d + r * cols;
    const __m256d v0 = _mm256_set1_pd(v[r]), v1 = _mm256_set1_pd(v[r + 1]),
                  v2 = _mm256_set1_pd(v[r + 2]), v3 = _mm256_set1_pd(v[r + 3]),
                  v4 = _mm256_set1_pd(v[r + 4]), v5 = _mm256_set1_pd(v[r + 5]),
                  v6 = _mm256_set1_pd(v[r + 6]), v7 = _mm256_set1_pd(v[r + 7]);
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      // Two accumulator chains per tile: a single chain of 8 dependent
      // FMAs is latency-bound (~4 cycles each), not load-bound.
      __m256d acc0 = _mm256_loadu_pd(o + c);
      __m256d acc1 = _mm256_setzero_pd();
      acc0 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(p + c), acc0);
      acc1 = _mm256_fmadd_pd(v1, _mm256_loadu_pd(p + c + cols), acc1);
      acc0 = _mm256_fmadd_pd(v2, _mm256_loadu_pd(p + c + 2 * cols), acc0);
      acc1 = _mm256_fmadd_pd(v3, _mm256_loadu_pd(p + c + 3 * cols), acc1);
      acc0 = _mm256_fmadd_pd(v4, _mm256_loadu_pd(p + c + 4 * cols), acc0);
      acc1 = _mm256_fmadd_pd(v5, _mm256_loadu_pd(p + c + 5 * cols), acc1);
      acc0 = _mm256_fmadd_pd(v6, _mm256_loadu_pd(p + c + 6 * cols), acc0);
      acc1 = _mm256_fmadd_pd(v7, _mm256_loadu_pd(p + c + 7 * cols), acc1);
      _mm256_storeu_pd(o + c, _mm256_add_pd(acc0, acc1));
    }
    for (; c < cols; ++c) {
      o[c] += p[c] * v[r] + p[c + cols] * v[r + 1] +
              p[c + 2 * cols] * v[r + 2] + p[c + 3 * cols] * v[r + 3] +
              p[c + 4 * cols] * v[r + 4] + p[c + 5 * cols] * v[r + 5] +
              p[c + 6 * cols] * v[r + 6] + p[c + 7 * cols] * v[r + 7];
    }
  }
  for (; r + 4 <= rows; r += 4) {
    const double* p = d + r * cols;
    const __m256d v0 = _mm256_set1_pd(v[r]), v1 = _mm256_set1_pd(v[r + 1]),
                  v2 = _mm256_set1_pd(v[r + 2]), v3 = _mm256_set1_pd(v[r + 3]);
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      __m256d acc0 = _mm256_loadu_pd(o + c);
      __m256d acc1 = _mm256_setzero_pd();
      acc0 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(p + c), acc0);
      acc1 = _mm256_fmadd_pd(v1, _mm256_loadu_pd(p + c + cols), acc1);
      acc0 = _mm256_fmadd_pd(v2, _mm256_loadu_pd(p + c + 2 * cols), acc0);
      acc1 = _mm256_fmadd_pd(v3, _mm256_loadu_pd(p + c + 3 * cols), acc1);
      _mm256_storeu_pd(o + c, _mm256_add_pd(acc0, acc1));
    }
    for (; c < cols; ++c) {
      o[c] += p[c] * v[r] + p[c + cols] * v[r + 1] +
              p[c + 2 * cols] * v[r + 2] + p[c + 3 * cols] * v[r + 3];
    }
  }
  for (; r + 2 <= rows; r += 2) {
    const double* p = d + r * cols;
    const __m256d v0 = _mm256_set1_pd(v[r]), v1 = _mm256_set1_pd(v[r + 1]);
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      __m256d acc = _mm256_loadu_pd(o + c);
      acc = _mm256_fmadd_pd(v0, _mm256_loadu_pd(p + c), acc);
      acc = _mm256_fmadd_pd(v1, _mm256_loadu_pd(p + c + cols), acc);
      _mm256_storeu_pd(o + c, acc);
    }
    for (; c < cols; ++c) o[c] += p[c] * v[r] + p[c + cols] * v[r + 1];
  }
  for (; r < rows; ++r) {
    const double* p = d + r * cols;
    const __m256d vr = _mm256_set1_pd(v[r]);
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      _mm256_storeu_pd(o + c, _mm256_fmadd_pd(vr, _mm256_loadu_pd(p + c),
                                              _mm256_loadu_pd(o + c)));
    }
    for (; c < cols; ++c) o[c] += p[c] * v[r];
  }
}
#else
void saxpy_sweep(const double* __restrict d, const double* __restrict v,
                 double* __restrict o, std::size_t rows, std::size_t cols) {
  std::size_t r = 0;
  for (; r + 8 <= rows; r += 8) {
    const double* __restrict p0 = d + r * cols;
    const double v0 = v[r], v1 = v[r + 1], v2 = v[r + 2], v3 = v[r + 3];
    const double v4 = v[r + 4], v5 = v[r + 5], v6 = v[r + 6], v7 = v[r + 7];
    for (std::size_t c = 0; c < cols; ++c) {
      o[c] += p0[c] * v0 + p0[c + cols] * v1 + p0[c + 2 * cols] * v2 +
              p0[c + 3 * cols] * v3 + p0[c + 4 * cols] * v4 +
              p0[c + 5 * cols] * v5 + p0[c + 6 * cols] * v6 +
              p0[c + 7 * cols] * v7;
    }
  }
  for (; r + 4 <= rows; r += 4) {
    const double* __restrict p0 = d + r * cols;
    const double v0 = v[r], v1 = v[r + 1], v2 = v[r + 2], v3 = v[r + 3];
    for (std::size_t c = 0; c < cols; ++c) {
      o[c] += p0[c] * v0 + p0[c + cols] * v1 + p0[c + 2 * cols] * v2 +
              p0[c + 3 * cols] * v3;
    }
  }
  for (; r + 2 <= rows; r += 2) {
    const double* __restrict p0 = d + r * cols;
    const double v0 = v[r], v1 = v[r + 1];
    for (std::size_t c = 0; c < cols; ++c) {
      o[c] += p0[c] * v0 + p0[c + cols] * v1;
    }
  }
  for (; r < rows; ++r) {
    const double* __restrict row = d + r * cols;
    const double vr = v[r];
    for (std::size_t c = 0; c < cols; ++c) o[c] += row[c] * vr;
  }
}
#endif

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(std::size_t rows, std::size_t cols,
                         std::span<const double> row_major) {
  if (row_major.size() != rows * cols) {
    throw std::invalid_argument("Matrix::from_rows: buffer size mismatch");
  }
  Matrix m(rows, cols);
  std::copy(row_major.begin(), row_major.end(), m.data_.begin());
  return m;
}

Matrix Matrix::diagonal(std::span<const double> diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Vector Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::operator*: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  const std::size_t p = rhs.cols_;
  // i-k-j loop order keeps both reads and writes streaming row-major;
  // the k-dimension is blocked 4-wide so each sweep of the output row
  // folds four rhs rows in one pass.  Straight-line (no zero-skip): a
  // 0 * NaN product must poison the output, and a branch per element
  // costs more than the multiply it saves.
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* __restrict ai = data_.data() + i * cols_;
    double* __restrict oo = out.data_.data() + i * p;
    std::size_t k = 0;
    for (; k + 4 <= cols_; k += 4) {
      const double a0 = ai[k], a1 = ai[k + 1], a2 = ai[k + 2],
                   a3 = ai[k + 3];
      const double* __restrict r0 = rhs.data_.data() + k * p;
      for (std::size_t j = 0; j < p; ++j) {
        oo[j] += a0 * r0[j] + a1 * r0[j + p] + a2 * r0[j + 2 * p] +
                 a3 * r0[j + 3 * p];
      }
    }
    for (; k < cols_; ++k) {
      const double a = ai[k];
      const double* __restrict rr = rhs.data_.data() + k * p;
      for (std::size_t j = 0; j < p; ++j) oo[j] += a * rr[j];
    }
  }
  return out;
}

Vector Matrix::operator*(std::span<const double> v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::operator*(vec): dimension mismatch");
  }
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector Matrix::transpose_times(std::span<const double> v) const {
  Vector out(cols_, 0.0);
  transpose_times_into(v, out);
  return out;
}

void Matrix::transpose_times_into(std::span<const double> v,
                                  std::span<double> out) const {
  if (v.size() != rows_) {
    throw std::invalid_argument("Matrix::transpose_times: dimension mismatch");
  }
  if (out.size() != cols_) {
    throw std::invalid_argument("Matrix::transpose_times_into: out size");
  }
  std::fill(out.begin(), out.end(), 0.0);
  saxpy_sweep(data_.data(), v.data(), out.data(), rows_, cols_);
}

void Matrix::transpose_times_sqnorms_into(std::span<const double> v,
                                          std::span<double> out,
                                          std::span<double> sqnorms) const {
  if (v.size() != rows_) {
    throw std::invalid_argument("Matrix::transpose_times: dimension mismatch");
  }
  if (out.size() != cols_ || sqnorms.size() != cols_) {
    throw std::invalid_argument(
        "Matrix::transpose_times_sqnorms_into: out size");
  }
  std::fill(out.begin(), out.end(), 0.0);
  std::fill(sqnorms.begin(), sqnorms.end(), 0.0);
  double* __restrict o = out.data();
  double* __restrict s = sqnorms.data();
  const double* __restrict d = data_.data();
  std::size_t r = 0;
  for (; r + 4 <= rows_; r += 4) {
    const double* __restrict p0 = d + r * cols_;
    const double v0 = v[r], v1 = v[r + 1], v2 = v[r + 2], v3 = v[r + 3];
    for (std::size_t c = 0; c < cols_; ++c) {
      const double a0 = p0[c], a1 = p0[c + cols_];
      const double a2 = p0[c + 2 * cols_], a3 = p0[c + 3 * cols_];
      o[c] += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
      s[c] += a0 * a0 + a1 * a1 + a2 * a2 + a3 * a3;
    }
  }
  for (; r < rows_; ++r) {
    const double* __restrict p0 = d + r * cols_;
    const double vr = v[r];
    for (std::size_t c = 0; c < cols_; ++c) {
      const double a0 = p0[c];
      o[c] += a0 * vr;
      s[c] += a0 * a0;
    }
  }
}

void Matrix::col_sqnorms_into(std::span<double> out) const {
  if (out.size() != cols_) {
    throw std::invalid_argument("Matrix::col_sqnorms_into: out size");
  }
  std::fill(out.begin(), out.end(), 0.0);
  // Same blocked-sweep structure as transpose_times_into: the naive
  // row-at-a-time accumulation re-reads out[] once per row, which at
  // m = 30 costs more than the matrix itself.
  double* __restrict o = out.data();
  const double* __restrict d = data_.data();
  std::size_t r = 0;
  for (; r + 8 <= rows_; r += 8) {
    const double* __restrict p0 = d + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) {
      o[c] += p0[c] * p0[c] + p0[c + cols_] * p0[c + cols_] +
              p0[c + 2 * cols_] * p0[c + 2 * cols_] +
              p0[c + 3 * cols_] * p0[c + 3 * cols_] +
              p0[c + 4 * cols_] * p0[c + 4 * cols_] +
              p0[c + 5 * cols_] * p0[c + 5 * cols_] +
              p0[c + 6 * cols_] * p0[c + 6 * cols_] +
              p0[c + 7 * cols_] * p0[c + 7 * cols_];
    }
  }
  for (; r + 2 <= rows_; r += 2) {
    const double* __restrict p0 = d + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) {
      o[c] += p0[c] * p0[c] + p0[c + cols_] * p0[c + cols_];
    }
  }
  for (; r < rows_; ++r) {
    const double* __restrict row = d + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) o[c] += row[c] * row[c];
  }
}

void Matrix::col_into(std::size_t c, std::span<double> out) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col_into");
  if (out.size() != rows_) {
    throw std::invalid_argument("Matrix::col_into: out size");
  }
  const double* src = data_.data() + c;
  for (std::size_t r = 0; r < rows_; ++r) out[r] = src[r * cols_];
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  // Upper-triangle rank-1 accumulation per input row, straight-line:
  // the old `a == 0.0` skip silently masked NaN/Inf entries (0 * NaN
  // never reached the sum) and paid a branch per element.
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* __restrict row = data_.data() + r * cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = row[i];
      double* __restrict gi = g.data_.data() + i * cols_;
      for (std::size_t j = i; j < cols_; ++j) gi[j] += a * row[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Matrix Matrix::select_rows(std::span<const std::size_t> idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t r = 0; r < idx.size(); ++r) {
    if (idx[r] >= rows_) throw std::out_of_range("Matrix::select_rows");
    auto src = row(idx[r]);
    std::copy(src.begin(), src.end(), out.row(r).begin());
  }
  return out;
}

Matrix Matrix::select_cols(std::span<const std::size_t> idx) const {
  Matrix out(rows_, idx.size());
  for (std::size_t c = 0; c < idx.size(); ++c) {
    if (idx[c] >= cols_) throw std::out_of_range("Matrix::select_cols");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_;
    double* dst = out.data_.data() + r * idx.size();
    for (std::size_t c = 0; c < idx.size(); ++c) dst[c] = src[idx[c]];
  }
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::abs(a(i, j) - b(i, j)) > tol) return false;
    }
  }
  return true;
}

}  // namespace sensedroid::linalg
