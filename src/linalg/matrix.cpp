#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sensedroid::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(std::size_t rows, std::size_t cols,
                         std::span<const double> row_major) {
  if (row_major.size() != rows * cols) {
    throw std::invalid_argument("Matrix::from_rows: buffer size mismatch");
  }
  Matrix m(rows, cols);
  std::copy(row_major.begin(), row_major.end(), m.data_.begin());
  return m;
}

Matrix Matrix::diagonal(std::span<const double> diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Vector Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col");
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::operator*: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  // i-k-j loop order keeps both reads and writes streaming row-major.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* rr = rhs.data_.data() + k * rhs.cols_;
      double* oo = out.data_.data() + i * rhs.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) oo[j] += a * rr[j];
    }
  }
  return out;
}

Vector Matrix::operator*(std::span<const double> v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::operator*(vec): dimension mismatch");
  }
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector Matrix::transpose_times(std::span<const double> v) const {
  if (v.size() != rows_) {
    throw std::invalid_argument("Matrix::transpose_times: dimension mismatch");
  }
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) out[c] += row[c] * vr;
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = data_.data() + r * cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = row[i];
      if (a == 0.0) continue;
      double* gi = g.data_.data() + i * cols_;
      for (std::size_t j = i; j < cols_; ++j) gi[j] += a * row[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Matrix Matrix::select_rows(std::span<const std::size_t> idx) const {
  Matrix out(idx.size(), cols_);
  for (std::size_t r = 0; r < idx.size(); ++r) {
    if (idx[r] >= rows_) throw std::out_of_range("Matrix::select_rows");
    auto src = row(idx[r]);
    std::copy(src.begin(), src.end(), out.row(r).begin());
  }
  return out;
}

Matrix Matrix::select_cols(std::span<const std::size_t> idx) const {
  Matrix out(rows_, idx.size());
  for (std::size_t c = 0; c < idx.size(); ++c) {
    if (idx[c] >= cols_) throw std::out_of_range("Matrix::select_cols");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_;
    double* dst = out.data_.data() + r * idx.size();
    for (std::size_t c = 0; c < idx.size(); ++c) dst[c] = src[idx[c]];
  }
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

bool approx_equal(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (std::abs(a(i, j) - b(i, j)) > tol) return false;
    }
  }
  return true;
}

}  // namespace sensedroid::linalg
