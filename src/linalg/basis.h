// Orthonormal sparsifying bases Phi (eq. 2).  The paper calls out FFT/DCT
// explicitly and additionally motivates exploiting "prior available data of
// different regions" — that is the PCA (Karhunen-Loeve) basis built from a
// trace matrix of historical fields.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "linalg/matrix.h"

namespace sensedroid::linalg {

/// The family of sparsifying bases SenseDroid brokers can deploy per zone.
enum class BasisKind : std::uint8_t {
  kIdentity,   ///< spike basis — signals sparse in the sample domain
  kDct,        ///< DCT-II, the workhorse for smooth spatial fields
  kHaar,       ///< Haar wavelet — piecewise-constant fields, fire fronts
  kGaussian,   ///< orthonormalized Gaussian random basis
  kPca,        ///< data-driven basis from prior traces (needs training data)
};

/// Human-readable name ("dct", "haar", ...).
std::string to_string(BasisKind kind);

/// N x N orthonormal DCT-II matrix: Phi[k][n] = c(k) cos(pi (2n+1) k / 2N).
/// Columns of the *transpose* synthesize; we return the synthesis matrix,
/// i.e. x = Phi * alpha reconstructs from DCT coefficients.
Matrix dct_basis(std::size_t n);

/// N x N orthonormal Haar wavelet synthesis matrix.  Throws
/// std::invalid_argument unless n is a power of two (callers pad).
Matrix haar_basis(std::size_t n);

/// N x N identity (spike) basis.
Matrix identity_basis(std::size_t n);

/// N x N orthonormalized Gaussian random basis, deterministic in `seed`.
Matrix gaussian_basis(std::size_t n, std::uint64_t seed);

/// Kronecker product A (x) B: the (i*rowsB + k, j*colsB + l) entry is
/// A(i,j) * B(k,l).  Used to assemble separable 2-D bases.
Matrix kronecker(const Matrix& a, const Matrix& b);

/// Separable 2-D DCT synthesis basis for a width x height field under the
/// eq.-1 column stacking (x[k] = f[k mod H, k / H]): columns are outer
/// products of 1-D DCT atoms, i.e. kron(dct_W, dct_H).  Smooth physical
/// fields are far sparser here than in the 1-D DCT of the stacked vector,
/// which ignores the 2-D neighborhood structure.
Matrix dct2_basis(std::size_t width, std::size_t height);

/// Data-driven PCA basis from a trace matrix X (T traces x N grid points),
/// the paper's "prior available data" Gamma = {x_1..x_T}: columns are the
/// principal directions of the (mean-removed) traces, padded with an
/// orthonormal completion so the result is a full N x N orthonormal basis.
/// Throws std::invalid_argument when X has no rows or columns.
Matrix pca_basis(const Matrix& traces);

/// Factory dispatching on kind; PCA is not constructible here (needs
/// traces) and throws std::invalid_argument.
Matrix make_basis(BasisKind kind, std::size_t n, std::uint64_t seed = 0);

/// Forward transform alpha = Phi^T x for an orthonormal basis.
Vector analyze(const Matrix& basis, std::span<const double> x);

/// Inverse transform x = Phi alpha.
Vector synthesize(const Matrix& basis, std::span<const double> alpha);

/// Measures how compressible x is in the basis: the smallest K such that
/// the best K-term approximation achieves relative L2 error <= tol.
std::size_t effective_sparsity(const Matrix& basis, std::span<const double> x,
                               double tol = 0.05);

/// True when B^T B == I within `tol` (orthonormality check used by tests
/// and by brokers validating a freshly trained PCA basis).
bool is_orthonormal(const Matrix& b, double tol = 1e-9);

}  // namespace sensedroid::linalg
