// Synthetic time-series generators — the stand-ins for live phone sensors
// (DESIGN.md substitution table).  Each generator produces signals with
// the spectral structure its real counterpart exhibits, plus ground-truth
// labels so context classifiers can be scored:
//   - accelerometer: idle (gravity + jitter), walking (~2 Hz gait),
//     driving (engine + road vibration, Fig. 4's subject signal);
//   - GPS fix quality and WiFi AP visibility over an indoor/outdoor day
//     schedule (the 'IsIndoor' experiment, E7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/random.h"

namespace sensedroid::sensing {

using linalg::Rng;
using linalg::Vector;

/// Ground-truth activity of the phone's carrier.
enum class Activity : std::uint8_t {
  kIdle,
  kWalking,
  kDriving,
};

/// Human-readable name.
std::string to_string(Activity a);

/// Accelerometer magnitude trace (gravity-removed, m/s^2) of `n` samples
/// at `rate_hz` for one activity.  Deterministic in rng.
///  - idle: tiny wideband jitter;
///  - walking: dominant gait harmonic near 2 Hz, amplitude ~2;
///  - driving: engine hum (20-30 Hz aliased per rate) + road noise +
///    occasional bumps.  All three are compressible in DCT.
Vector accelerometer_trace(Activity activity, std::size_t n, double rate_hz,
                           Rng& rng);

/// A labeled multi-segment accelerometer day: consecutive segments of
/// random activities, each `segment_len` samples.
struct LabeledTrace {
  Vector samples;
  std::vector<Activity> labels;  ///< one label per sample
};
LabeledTrace labeled_activity_trace(std::size_t segments,
                                    std::size_t segment_len, double rate_hz,
                                    Rng& rng);

/// Indoor/outdoor schedule over a day: alternating stays, true = indoor.
/// `mean_stay` samples per stay (exponential); deterministic in rng.
std::vector<bool> indoor_schedule(std::size_t n, double mean_stay, Rng& rng);

/// GPS fix quality (0..1, ~SNR proxy) along an indoor schedule: high
/// outdoors (~0.9), collapses indoors (~0.1), with noise.  The jump
/// structure is what makes it Haar/DCT-compressible.
Vector gps_quality_trace(const std::vector<bool>& indoor, Rng& rng);

/// Visible WiFi AP count along an indoor schedule: high indoors (~8),
/// low outdoors (~1.5).  Counts are noisy but non-negative.
Vector wifi_count_trace(const std::vector<bool>& indoor, Rng& rng);

/// Ambient temperature series with a diurnal cycle + weather noise.
Vector temperature_trace(std::size_t n, double rate_hz, Rng& rng,
                         double mean_c = 22.0, double swing_c = 4.0);

/// Sound pressure level (dB) trace: quiet floor with event bursts.
Vector microphone_spl_trace(std::size_t n, Rng& rng,
                            double quiet_db = 35.0, double burst_db = 75.0,
                            double burst_prob = 0.02);

}  // namespace sensedroid::sensing
