// Fusion virtual sensors (Fig. 3): "fuse these physical sensor
// measurements to construct more meaningful sensors (e.g. orientation,
// compass and inclinometer sensors)".
//
// Implements the standard tilt formulas (pitch/roll from gravity,
// tilt-compensated magnetic heading) plus a complementary filter that
// blends gyroscope integration with the absolute accel/mag estimates.
#pragma once

#include <cstddef>

namespace sensedroid::sensing {

/// A 3-axis sample in the device frame (x right, y forward, z up).
struct TriAxial {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// Euler attitude in radians.
struct Orientation {
  double pitch = 0.0;  ///< rotation about x, positive nose-up
  double roll = 0.0;   ///< rotation about y
  double yaw = 0.0;    ///< heading, [0, 2*pi), 0 = magnetic north
};

/// Pitch and roll from a gravity (accelerometer) vector.  The vector need
/// not be normalized; a zero vector yields zero angles.
Orientation attitude_from_gravity(const TriAxial& accel);

/// Tilt-compensated compass heading in [0, 2*pi) from gravity + magnetic
/// field.  Falls back to 0 when the horizontal field component vanishes
/// (magnetic pole / bad reading).
double tilt_compensated_heading(const TriAxial& accel, const TriAxial& mag);

/// Inclination of the device z-axis from the vertical, [0, pi].
double inclination(const TriAxial& accel);

/// Complementary attitude filter: integrates gyro rates and corrects the
/// drift with the accel/mag absolute attitude at weight (1 - alpha).
class ComplementaryFilter {
 public:
  /// alpha in [0, 1): gyro trust per update (0.98 typical).  Throws
  /// std::invalid_argument outside the range.
  explicit ComplementaryFilter(double alpha = 0.98);

  /// Feeds one sample set: gyro rates (rad/s), accel, mag, over dt
  /// seconds (dt >= 0).  Returns the updated attitude estimate.
  Orientation update(const TriAxial& gyro_rate, const TriAxial& accel,
                     const TriAxial& mag, double dt);

  Orientation current() const noexcept { return state_; }

  /// Resets to the attitude implied by one accel/mag pair.
  void reset(const TriAxial& accel, const TriAxial& mag);

 private:
  double alpha_;
  Orientation state_;
  bool initialized_ = false;
};

}  // namespace sensedroid::sensing
