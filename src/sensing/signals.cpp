#include "sensing/signals.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sensedroid::sensing {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

std::string to_string(Activity a) {
  switch (a) {
    case Activity::kIdle: return "idle";
    case Activity::kWalking: return "walking";
    case Activity::kDriving: return "driving";
  }
  return "unknown";
}

Vector accelerometer_trace(Activity activity, std::size_t n, double rate_hz,
                           Rng& rng) {
  if (rate_hz <= 0.0) {
    throw std::invalid_argument("accelerometer_trace: rate must be positive");
  }
  Vector x(n, 0.0);
  const double dt = 1.0 / rate_hz;
  switch (activity) {
    case Activity::kIdle: {
      for (std::size_t i = 0; i < n; ++i) x[i] = rng.gaussian(0.0, 0.03);
      break;
    }
    case Activity::kWalking: {
      const double gait_hz = rng.uniform(1.6, 2.2);
      const double phase = rng.uniform(0.0, kTwoPi);
      const double amp = rng.uniform(1.5, 2.5);
      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) * dt;
        x[i] = amp * std::sin(kTwoPi * gait_hz * t + phase) +
               0.4 * amp * std::sin(kTwoPi * 2.0 * gait_hz * t + 2.0 * phase) +
               rng.gaussian(0.0, 0.1);
      }
      break;
    }
    case Activity::kDriving: {
      const double engine_hz = rng.uniform(18.0, 28.0);
      const double road_hz = rng.uniform(3.0, 6.0);
      const double phase = rng.uniform(0.0, kTwoPi);
      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) * dt;
        x[i] = 0.6 * std::sin(kTwoPi * engine_hz * t + phase) +
               0.8 * std::sin(kTwoPi * road_hz * t) +
               rng.gaussian(0.0, 0.15);
        if (rng.bernoulli(0.01)) x[i] += rng.uniform(1.0, 3.0);  // pothole
      }
      break;
    }
  }
  return x;
}

LabeledTrace labeled_activity_trace(std::size_t segments,
                                    std::size_t segment_len, double rate_hz,
                                    Rng& rng) {
  LabeledTrace out;
  out.samples.reserve(segments * segment_len);
  out.labels.reserve(segments * segment_len);
  constexpr Activity kAll[] = {Activity::kIdle, Activity::kWalking,
                               Activity::kDriving};
  for (std::size_t s = 0; s < segments; ++s) {
    const Activity a = kAll[rng.uniform_index(3)];
    const Vector seg = accelerometer_trace(a, segment_len, rate_hz, rng);
    out.samples.insert(out.samples.end(), seg.begin(), seg.end());
    out.labels.insert(out.labels.end(), segment_len, a);
  }
  return out;
}

std::vector<bool> indoor_schedule(std::size_t n, double mean_stay, Rng& rng) {
  if (mean_stay <= 0.0) {
    throw std::invalid_argument("indoor_schedule: mean_stay must be positive");
  }
  std::vector<bool> indoor(n, false);
  bool state = rng.bernoulli(0.5);
  std::size_t i = 0;
  while (i < n) {
    const auto stay = static_cast<std::size_t>(
        std::max(1.0, rng.exponential(1.0 / mean_stay)));
    for (std::size_t j = 0; j < stay && i < n; ++j, ++i) indoor[i] = state;
    state = !state;
  }
  return indoor;
}

Vector gps_quality_trace(const std::vector<bool>& indoor, Rng& rng) {
  Vector q(indoor.size());
  for (std::size_t i = 0; i < indoor.size(); ++i) {
    const double base = indoor[i] ? 0.1 : 0.9;
    q[i] = std::clamp(base + rng.gaussian(0.0, 0.05), 0.0, 1.0);
  }
  return q;
}

Vector wifi_count_trace(const std::vector<bool>& indoor, Rng& rng) {
  Vector c(indoor.size());
  for (std::size_t i = 0; i < indoor.size(); ++i) {
    const double base = indoor[i] ? 8.0 : 1.5;
    c[i] = std::max(0.0, base + rng.gaussian(0.0, 1.0));
  }
  return c;
}

Vector temperature_trace(std::size_t n, double rate_hz, Rng& rng,
                         double mean_c, double swing_c) {
  if (rate_hz <= 0.0) {
    throw std::invalid_argument("temperature_trace: rate must be positive");
  }
  Vector t(n);
  const double day_s = 86400.0;
  double weather = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ts = static_cast<double>(i) / rate_hz;
    weather = 0.999 * weather + rng.gaussian(0.0, 0.02);  // slow AR(1)
    t[i] = mean_c +
           swing_c * std::sin(kTwoPi * ts / day_s - std::numbers::pi / 2.0) +
           weather;
  }
  return t;
}

Vector microphone_spl_trace(std::size_t n, Rng& rng, double quiet_db,
                            double burst_db, double burst_prob) {
  Vector spl(n);
  double burst_left = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (burst_left <= 0.0 && rng.bernoulli(burst_prob)) {
      burst_left = rng.uniform(3.0, 12.0);  // burst length in samples
    }
    const double base = burst_left > 0.0 ? burst_db : quiet_db;
    if (burst_left > 0.0) burst_left -= 1.0;
    spl[i] = base + rng.gaussian(0.0, 2.0);
  }
  return spl;
}

}  // namespace sensedroid::sensing
