// Configurable sensing probes — the paper's sensing API surface:
// "SenseDroid enables and provides data capture from different sensors ...
// by providing configurable sensing probes.  The user can configure the
// sensing probes and sampling techniques through a sensing API."
//
// A probe owns a sampling schedule over a window of `window` samples:
//   kContinuous — read every sample (the traditional baseline);
//   kUniform    — read every k-th sample (duty cycling);
//   kCompressive— read m random samples of the window (the paper's
//                 temporal compressive sampling).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cs/measurement.h"
#include "sensing/sensor.h"
#include "sim/energy.h"

namespace sensedroid::sensing {

enum class SamplingMode : std::uint8_t {
  kContinuous,
  kUniform,
  kCompressive,
};

/// Human-readable name.
std::string to_string(SamplingMode mode);

/// Probe configuration, validated by SensingProbe's constructor.
struct ProbeConfig {
  SamplingMode mode = SamplingMode::kContinuous;
  std::size_t window = 256;   ///< samples per acquisition window
  std::size_t budget = 256;   ///< samples actually read (modes != continuous)
  std::uint64_t seed = 0;     ///< randomization seed for kCompressive
};

/// One acquisition window's worth of samples.
struct SampleBatch {
  std::vector<std::size_t> indices;  ///< which window positions were read
  linalg::Vector values;             ///< the (noisy) readings
  double energy_j = 0.0;             ///< sensing energy spent on the batch
  std::size_t window = 0;            ///< full window length

  /// The batch as a cs::Measurement for reconstruction: the probe's
  /// schedule becomes the plan, the sensor's sigma becomes the noise model.
  cs::Measurement to_measurement(double sensor_sigma) const;
};

/// Samples a SimulatedSensor according to a config.
class SensingProbe {
 public:
  /// Throws std::invalid_argument when budget > window or window == 0.
  SensingProbe(SimulatedSensor sensor, const ProbeConfig& config);

  const ProbeConfig& config() const noexcept { return config_; }
  const SimulatedSensor& sensor() const noexcept { return sensor_; }

  /// Acquires one window starting at absolute sample `start`, charging
  /// `meter` for each read.  Each call with kCompressive mode draws a
  /// fresh random schedule.
  SampleBatch acquire(std::size_t start, sim::EnergyMeter* meter = nullptr);

  /// Energy one window costs under this config (sensing only).
  double window_energy_j() const noexcept;

 private:
  SimulatedSensor sensor_;
  ProbeConfig config_;
  linalg::Rng schedule_rng_;
};

}  // namespace sensedroid::sensing
