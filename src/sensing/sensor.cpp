#include "sensing/sensor.h"

#include <stdexcept>
#include <utility>

namespace sensedroid::sensing {

std::string to_string(SensorKind kind) {
  switch (kind) {
    case SensorKind::kAccelerometer: return "accelerometer";
    case SensorKind::kGyroscope: return "gyroscope";
    case SensorKind::kMagnetometer: return "magnetometer";
    case SensorKind::kGps: return "gps";
    case SensorKind::kWifiScanner: return "wifi-scanner";
    case SensorKind::kMicrophone: return "microphone";
    case SensorKind::kTemperature: return "temperature";
    case SensorKind::kLight: return "light";
    case SensorKind::kBarometer: return "barometer";
  }
  return "unknown";
}

double sample_cost_j(SensorKind kind) {
  const auto& c = sim::SensingCosts::defaults();
  switch (kind) {
    case SensorKind::kAccelerometer: return c.accelerometer_j;
    case SensorKind::kGyroscope: return c.gyroscope_j;
    case SensorKind::kMagnetometer: return c.accelerometer_j;  // comparable
    case SensorKind::kGps: return c.gps_j;
    case SensorKind::kWifiScanner: return c.wifi_scan_j;
    case SensorKind::kMicrophone: return c.microphone_j;
    case SensorKind::kTemperature: return c.temperature_j;
    case SensorKind::kLight: return c.light_j;
    case SensorKind::kBarometer: return c.temperature_j;  // comparable
  }
  return 0.0;
}

double tier_noise_factor(QualityTier tier) noexcept {
  switch (tier) {
    case QualityTier::kFlagship: return 0.5;
    case QualityTier::kMidrange: return 1.0;
    case QualityTier::kBudget: return 2.5;
  }
  return 1.0;
}

double nominal_noise_sigma(SensorKind kind) noexcept {
  switch (kind) {
    case SensorKind::kAccelerometer: return 0.05;  // m/s^2
    case SensorKind::kGyroscope: return 0.01;      // rad/s
    case SensorKind::kMagnetometer: return 0.5;    // uT
    case SensorKind::kGps: return 0.05;            // quality units
    case SensorKind::kWifiScanner: return 0.5;     // AP count
    case SensorKind::kMicrophone: return 1.5;      // dB
    case SensorKind::kTemperature: return 0.2;     // deg C
    case SensorKind::kLight: return 10.0;          // lux
    case SensorKind::kBarometer: return 0.1;       // hPa
  }
  return 0.1;
}

SimulatedSensor::SimulatedSensor(SensorKind kind, QualityTier tier,
                                 std::function<double(std::size_t)> truth,
                                 std::uint64_t noise_seed)
    : kind_(kind),
      tier_(tier),
      truth_(std::move(truth)),
      sigma_(nominal_noise_sigma(kind) * tier_noise_factor(tier)),
      noise_rng_(noise_seed ^ (static_cast<std::uint64_t>(kind) << 32)) {
  if (!truth_) {
    throw std::invalid_argument("SimulatedSensor: empty truth function");
  }
}

double SimulatedSensor::read(std::size_t index, sim::EnergyMeter* meter) {
  if (meter != nullptr) {
    meter->add(sim::EnergyCategory::kSensing, sample_cost_j(kind_));
  }
  double v = truth_(index) + noise_rng_.gaussian(0.0, sigma_);
  if (hook_) v = hook_(index, v);
  return v;
}

}  // namespace sensedroid::sensing
