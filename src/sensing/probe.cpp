#include "sensing/probe.h"

#include <stdexcept>
#include <utility>

namespace sensedroid::sensing {

std::string to_string(SamplingMode mode) {
  switch (mode) {
    case SamplingMode::kContinuous: return "continuous";
    case SamplingMode::kUniform: return "uniform";
    case SamplingMode::kCompressive: return "compressive";
  }
  return "unknown";
}

cs::Measurement SampleBatch::to_measurement(double sensor_sigma) const {
  auto plan = cs::MeasurementPlan::from_indices(window, indices);
  auto noise = cs::SensorNoise::homogeneous(indices.size(), sensor_sigma);
  return cs::Measurement{std::move(plan), values, std::move(noise)};
}

SensingProbe::SensingProbe(SimulatedSensor sensor, const ProbeConfig& config)
    : sensor_(std::move(sensor)),
      config_(config),
      schedule_rng_(config.seed ^ 0x5eed5eedULL) {
  if (config.window == 0) {
    throw std::invalid_argument("SensingProbe: window must be positive");
  }
  if (config.budget == 0 || config.budget > config.window) {
    throw std::invalid_argument(
        "SensingProbe: budget must be in [1, window]");
  }
}

SampleBatch SensingProbe::acquire(std::size_t start,
                                  sim::EnergyMeter* meter) {
  SampleBatch batch;
  batch.window = config_.window;
  switch (config_.mode) {
    case SamplingMode::kContinuous: {
      batch.indices.resize(config_.window);
      for (std::size_t i = 0; i < config_.window; ++i) batch.indices[i] = i;
      break;
    }
    case SamplingMode::kUniform: {
      const auto plan =
          cs::MeasurementPlan::uniform_grid(config_.window, config_.budget);
      batch.indices.assign(plan.indices().begin(), plan.indices().end());
      break;
    }
    case SamplingMode::kCompressive: {
      batch.indices = schedule_rng_.sample_without_replacement(
          config_.window, config_.budget);
      break;
    }
  }
  sim::EnergyMeter local;
  batch.values.reserve(batch.indices.size());
  for (std::size_t idx : batch.indices) {
    batch.values.push_back(sensor_.read(start + idx, &local));
  }
  batch.energy_j = local.total_j();
  if (meter != nullptr) *meter += local;
  return batch;
}

double SensingProbe::window_energy_j() const noexcept {
  const std::size_t reads = config_.mode == SamplingMode::kContinuous
                                ? config_.window
                                : config_.budget;
  return static_cast<double>(reads) * sample_cost_j(sensor_.kind());
}

}  // namespace sensedroid::sensing
