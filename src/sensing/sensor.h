// Physical-sensor abstraction (Fig. 3, left column).
//
// A SimulatedSensor binds a sensor kind to a ground-truth signal source
// and a quality tier: reading it returns truth + tier-dependent noise and
// charges the per-sample energy cost.  Heterogeneous tiers across the
// fleet are what make the GLS path (eq. 12) matter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "linalg/random.h"
#include "sim/energy.h"

namespace sensedroid::sensing {

using linalg::Rng;

/// The phone sensors SenseDroid exposes probes for (Fig. 3).
enum class SensorKind : std::uint8_t {
  kAccelerometer,
  kGyroscope,
  kMagnetometer,
  kGps,
  kWifiScanner,
  kMicrophone,
  kTemperature,
  kLight,
  kBarometer,
};
inline constexpr std::size_t kSensorKindCount = 9;

/// Human-readable name ("accelerometer", ...).
std::string to_string(SensorKind kind);

/// Per-sample energy cost of a sensor kind (J), from
/// sim::SensingCosts::defaults().
double sample_cost_j(SensorKind kind);

/// Manufacturing quality tier of a phone's sensor package; maps to a
/// noise multiplier (flagship ~0.5x, budget ~2.5x of nominal sigma).
enum class QualityTier : std::uint8_t {
  kFlagship,
  kMidrange,
  kBudget,
};

/// Noise multiplier for a tier.
double tier_noise_factor(QualityTier tier) noexcept;

/// Nominal (midrange) noise sigma of a sensor kind in its natural unit.
double nominal_noise_sigma(SensorKind kind) noexcept;

/// One simulated physical sensor on one device.
class SimulatedSensor {
 public:
  /// Post-read transform applied to every read() result — the seam fault
  /// injection uses to model stuck-at, drifting, or spiking hardware
  /// without this layer knowing about fault plans.  Receives the sample
  /// index and the clean (truth + noise) value; returns what the device
  /// actually reports.
  using ReadHook = std::function<double(std::size_t index, double value)>;

  /// `truth` maps a sample index to the ground-truth value.  Throws
  /// std::invalid_argument when truth is empty.
  SimulatedSensor(SensorKind kind, QualityTier tier,
                  std::function<double(std::size_t)> truth,
                  std::uint64_t noise_seed = 0);

  SensorKind kind() const noexcept { return kind_; }
  QualityTier tier() const noexcept { return tier_; }

  /// Effective noise standard deviation of this unit (nominal x tier).
  double noise_sigma() const noexcept { return sigma_; }

  /// Reads sample `index`: truth(index) + N(0, sigma), then the read
  /// hook when installed.  Charges the sensing cost to `meter` when
  /// provided (a faulty sensor still burns the joules).
  double read(std::size_t index, sim::EnergyMeter* meter = nullptr);

  /// Installs (or clears, with an empty function) the read hook.
  void set_read_hook(ReadHook hook) { hook_ = std::move(hook); }
  bool has_read_hook() const noexcept { return static_cast<bool>(hook_); }

  /// Ground truth without noise or cost (for scoring).
  double truth(std::size_t index) const { return truth_(index); }

 private:
  SensorKind kind_;
  QualityTier tier_;
  std::function<double(std::size_t)> truth_;
  double sigma_;
  Rng noise_rng_;
  ReadHook hook_;
};

}  // namespace sensedroid::sensing
