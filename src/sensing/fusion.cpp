#include "sensing/fusion.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace sensedroid::sensing {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

double wrap_heading(double h) {
  h = std::fmod(h, kTwoPi);
  if (h < 0.0) h += kTwoPi;
  return h;
}

// Shortest signed angular difference a - b in (-pi, pi].
double angle_diff(double a, double b) {
  double d = std::fmod(a - b, kTwoPi);
  if (d > std::numbers::pi) d -= kTwoPi;
  if (d <= -std::numbers::pi) d += kTwoPi;
  return d;
}

}  // namespace

Orientation attitude_from_gravity(const TriAxial& accel) {
  Orientation o;
  const double norm =
      std::sqrt(accel.x * accel.x + accel.y * accel.y + accel.z * accel.z);
  if (norm == 0.0) return o;
  // Device z up: at rest accel = (0, 0, g).  Pitch about x from y/z,
  // roll about y from x.
  o.pitch = std::atan2(accel.y, accel.z);
  o.roll = std::atan2(-accel.x,
                      std::sqrt(accel.y * accel.y + accel.z * accel.z));
  return o;
}

double tilt_compensated_heading(const TriAxial& accel, const TriAxial& mag) {
  const Orientation o = attitude_from_gravity(accel);
  const double cp = std::cos(o.pitch), sp = std::sin(o.pitch);
  const double cr = std::cos(o.roll), sr = std::sin(o.roll);
  // De-rotate the magnetic vector into the horizontal plane.
  const double mx = mag.x * cr + mag.z * sr;
  const double my = mag.x * sr * sp + mag.y * cp - mag.z * cr * sp;
  if (mx == 0.0 && my == 0.0) return 0.0;
  return wrap_heading(std::atan2(-my, mx) + kTwoPi);
}

double inclination(const TriAxial& accel) {
  const double norm =
      std::sqrt(accel.x * accel.x + accel.y * accel.y + accel.z * accel.z);
  if (norm == 0.0) return 0.0;
  const double c = accel.z / norm;
  return std::acos(std::clamp(c, -1.0, 1.0));
}

ComplementaryFilter::ComplementaryFilter(double alpha) : alpha_(alpha) {
  if (alpha < 0.0 || alpha >= 1.0) {
    throw std::invalid_argument("ComplementaryFilter: alpha must be [0, 1)");
  }
}

void ComplementaryFilter::reset(const TriAxial& accel, const TriAxial& mag) {
  state_ = attitude_from_gravity(accel);
  state_.yaw = tilt_compensated_heading(accel, mag);
  initialized_ = true;
}

Orientation ComplementaryFilter::update(const TriAxial& gyro_rate,
                                        const TriAxial& accel,
                                        const TriAxial& mag, double dt) {
  if (dt < 0.0) {
    throw std::invalid_argument("ComplementaryFilter::update: negative dt");
  }
  if (!initialized_) {
    reset(accel, mag);
    return state_;
  }
  // Gyro prediction.
  Orientation pred = state_;
  pred.pitch += gyro_rate.x * dt;
  pred.roll += gyro_rate.y * dt;
  pred.yaw = wrap_heading(pred.yaw + gyro_rate.z * dt);
  // Absolute correction.
  const Orientation abs = attitude_from_gravity(accel);
  const double abs_yaw = tilt_compensated_heading(accel, mag);
  state_.pitch = alpha_ * pred.pitch + (1.0 - alpha_) * abs.pitch;
  state_.roll = alpha_ * pred.roll + (1.0 - alpha_) * abs.roll;
  state_.yaw = wrap_heading(pred.yaw +
                            (1.0 - alpha_) * angle_diff(abs_yaw, pred.yaw));
  return state_;
}

}  // namespace sensedroid::sensing
