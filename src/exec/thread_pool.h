// A fixed-size worker pool: plain std::thread workers pulling from one
// locked queue, futures for results, nothing beyond the standard
// library.  This is the execution substrate of DESIGN.md §9 — zone
// gathers and per-signal CHS solves are CPU-bound and independent, so a
// campaign's wall clock should scale with cores while every *logical*
// outcome stays identical to the 1-worker run (the determinism burden is
// carried by the campaign runner's seeding and reduction, not the pool;
// the pool promises only execution, not order).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace sensedroid::exec {

/// Fixed-size thread pool.  Construction spawns the workers; destruction
/// (or shutdown()) finishes every already-queued task, then joins.
/// submit() is thread-safe and may be called from worker threads (tasks
/// may spawn subtasks), but a task must never block on a future of a
/// task queued *behind* it on a 1-worker pool — the runner's fan-out /
/// join structure never does.
class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 picks std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t workers = 0);

  /// shutdown(), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Number of tasks accepted but not yet finished (queued + running).
  std::size_t pending() const;

  /// Queues `fn` and returns the future of its result.  An exception
  /// thrown by the task is captured and rethrown from future::get() —
  /// the pool itself never dies to a task failure.  Throws
  /// std::runtime_error when called after shutdown().
  ///
  /// Trace propagation: the submitter's obs::TraceContext is captured
  /// here and adopted for the task's duration, so spans the task opens
  /// nest under the span that was live at submit() time instead of
  /// starting disconnected roots on the worker thread.  Costs a
  /// thread-local read when tracing is detached.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task, ctx = obs::TraceContext::current()] {
      obs::ScopedTraceContext adopt(ctx);
      (*task)();
    });
    return fut;
  }

  /// Stops accepting work, drains the queue, joins every worker.
  /// Idempotent; safe to call with tasks still queued (they run first).
  void shutdown();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t in_flight_ = 0;  // popped but not yet finished
  bool stopping_ = false;
};

}  // namespace sensedroid::exec
