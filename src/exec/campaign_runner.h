// Deterministic parallel campaign execution (DESIGN.md §9).
//
// A LocalCloud round is embarrassingly parallel — each zone's gather is
// an independent NanoCloud simulation — but the sequential driver
// threads ONE Rng through the zones and lets every zone hammer the same
// global metrics registry, so naively fanning it out changes results
// with worker count.  The runner restores determinism with three rules:
//
//   1. Seeding: per-zone Rng streams are forked from the campaign Rng
//      sequentially, in zone order, BEFORE fan-out.  Zone z's stream is
//      a pure function of (campaign rng state, z) — never of scheduling.
//   2. Isolation: each zone task binds a private MetricsRegistry shard
//      (obs::ScopedMetricShard), so no floating-point accumulator is
//      shared across concurrently running zones.  The fault injector's
//      streams are already keyed per zone / per node (fault.h).
//   3. Reduction: after ALL tasks complete, shards are merged into the
//      process registry and results are folded into the RegionalResult
//      in ascending zone order — the same floating-point addition order
//      every time.
//
// Headline invariant (enforced by tests/test_exec.cpp): a campaign run
// with 1 worker and with N workers from the same seed produces
// byte-identical deterministic RunReports
// (RunReport::from_registry(reg, name, /*include_wall_clock=*/false)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cs/chs.h"
#include "exec/thread_pool.h"
#include "hierarchy/localcloud.h"

namespace sensedroid::exec {

/// Drives one LocalCloud's rounds through a ThreadPool, one task per
/// zone.  Non-owning: the cloud and pool must outlive the runner.  The
/// runner is the only writer to the cloud while a round is in flight —
/// zones never touch each other's NanoCloud state, which is what makes
/// the per-zone fan-out sound.
class ParallelCampaignRunner {
 public:
  ParallelCampaignRunner(hierarchy::LocalCloud& cloud, ThreadPool& pool)
      : cloud_(&cloud), pool_(&pool) {}

  /// Parallel equivalent of LocalCloud::gather: advances the fault
  /// round, forks per-zone Rng streams in zone order, fans the zone
  /// gathers across the pool, and reduces in zone order.  `decisions`
  /// must cover zone ids 0..Z-1 exactly (throws std::invalid_argument).
  ///
  /// NOTE the streams differ from LocalCloud::gather's (which threads
  /// one Rng sequentially through the zones), so runner results are not
  /// comparable sample-for-sample with the sequential driver — only
  /// with other runner runs, where they are worker-count-invariant.
  /// A zone task that throws is rethrown here after every other zone of
  /// the round has finished (first zone in index order wins).
  hierarchy::RegionalResult run_round(
      const std::vector<hierarchy::ZoneDecision>& decisions,
      linalg::Rng& rng);

  /// Uniform budget per zone, like LocalCloud::gather_uniform.
  hierarchy::RegionalResult run_round_uniform(
      std::size_t measurements_per_zone, linalg::Rng& rng);

  std::size_t zone_count() const noexcept { return cloud_->zone_count(); }
  std::size_t worker_count() const noexcept { return pool_->worker_count(); }

 private:
  hierarchy::LocalCloud* cloud_;
  ThreadPool* pool_;
};

/// Fans independent CHS reconstructions (one per signal, shared basis
/// and options) across the pool; results and metric shards are reduced
/// in signal-index order, so the output — and the deterministic metrics
/// view — is identical at any worker count.  Signal i's solve must not
/// depend on signal j's (chs_reconstruct is stateless, so it doesn't).
/// A solve that throws is rethrown after the batch completes.
std::vector<cs::ChsResult> chs_reconstruct_batch(
    ThreadPool& pool, const linalg::Matrix& basis,
    std::span<const cs::Measurement> signals, const cs::ChsOptions& opts);

}  // namespace sensedroid::exec
