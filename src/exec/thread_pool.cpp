#include "exec/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace sensedroid::exec {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second caller (e.g. destructor after explicit shutdown): workers
      // are already joined or being joined by the first caller.
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();  // packaged_task: exceptions land in the task's future
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
  }
}

}  // namespace sensedroid::exec
