#include "exec/campaign_runner.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "field/spatial_field.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::exec {

namespace {

// Shards are only worth paying for when there is a process registry to
// merge them into; detached runs skip the isolation machinery entirely.
bool observed() { return obs::registry() != nullptr; }

}  // namespace

hierarchy::RegionalResult ParallelCampaignRunner::run_round(
    const std::vector<hierarchy::ZoneDecision>& decisions,
    linalg::Rng& rng) {
  hierarchy::LocalCloud& cloud = *cloud_;
  const std::size_t z = cloud.zone_count();
  if (decisions.size() != z) {
    throw std::invalid_argument("run_round: decision count mismatch");
  }
  std::vector<std::size_t> budget(z, 0);
  std::vector<bool> seen(z, false);
  for (const auto& d : decisions) {
    if (d.zone_id >= z || seen[d.zone_id]) {
      throw std::invalid_argument("run_round: bad zone ids");
    }
    seen[d.zone_id] = true;
    budget[d.zone_id] = std::max<std::size_t>(d.measurements, 1);
  }

  obs::ScopedSpan span("exec.runner.round");

  // One regional round = one fault round, advanced on the driver thread
  // before any zone task exists (begin_round must not race in-round
  // queries — fault.h's one threading caveat).
  if (z > 0 && cloud.nanocloud(0).config().injector != nullptr) {
    cloud.nanocloud(0).config().injector->begin_round();
  }

  // Rule 1 (seeding): fork per-zone streams sequentially in zone order.
  // The campaign Rng advances by exactly Z draws per round no matter how
  // the zones are later scheduled.
  std::vector<linalg::Rng> forks;
  forks.reserve(z);
  for (std::size_t id = 0; id < z; ++id) forks.push_back(rng.fork());

  struct ZoneOutcome {
    hierarchy::GatherResult result;
    std::unique_ptr<obs::MetricsRegistry> shard;
    std::unique_ptr<obs::TraceLog> trace_shard;
  };
  const bool shard_metrics = observed();
  const bool shard_traces = obs::trace() != nullptr;
  // The round span's id: shard merging re-parents each zone's spans
  // under it, so the merged tree nests zone work inside the round at any
  // worker count.
  const std::uint64_t round_span = obs::TraceContext::current().parent;

  std::vector<std::future<ZoneOutcome>> futures;
  futures.reserve(z);
  for (std::size_t id = 0; id < z; ++id) {
    futures.push_back(pool_->submit([this, id, shard_metrics, shard_traces,
                                     &forks, m = budget[id]] {
      ZoneOutcome out;
      // Rule 2 (isolation): this zone's counters/histograms/spans land
      // in private shards; nothing floating-point is shared mid-round.
      std::optional<obs::ScopedMetricShard> bind;
      if (shard_metrics) {
        out.shard = std::make_unique<obs::MetricsRegistry>();
        bind.emplace(out.shard.get());
      }
      std::optional<obs::ScopedTraceShard> bind_trace;
      if (shard_traces) {
        // Binding the shard also isolates this thread's trace context,
        // so the submitter's main-log span ids cannot leak in as
        // parents: shard roots stay unparented and merge_from
        // re-parents them under the round span.
        out.trace_shard = std::make_unique<obs::TraceLog>();
        bind_trace.emplace(out.trace_shard.get());
      }
      const auto t0 = std::chrono::steady_clock::now();
      out.result = cloud_->nanocloud(id).gather(m, forks[id]);
      if (shard_metrics) {
        const auto dt = std::chrono::steady_clock::now() - t0;
        obs::observe("hier.zone.gather_us",
                     {{"zone", std::to_string(id)}},
                     std::chrono::duration<double, std::micro>(dt).count());
      }
      return out;
    }));
  }

  // Barrier BEFORE any get(): every task references `forks` and `budget`
  // on this stack frame, so nothing may be propagated (and this frame
  // unwound) until all of them have finished.
  for (auto& f : futures) f.wait();

  std::vector<ZoneOutcome> outcomes;
  outcomes.reserve(z);
  for (auto& f : futures) outcomes.push_back(f.get());  // rethrows, id order

  // Rule 3 (reduction): merge shards, then fold results, both in
  // ascending zone order — fixed floating-point addition order (and, for
  // traces, fixed id/parent/depth assignment).
  if (obs::MetricsRegistry* base = obs::registry()) {
    for (const ZoneOutcome& o : outcomes) {
      if (o.shard) base->merge_from(*o.shard);
    }
  }
  if (obs::TraceLog* log = obs::trace()) {
    for (const ZoneOutcome& o : outcomes) {
      if (o.trace_shard) log->merge_from(*o.trace_shard, round_span);
    }
  }

  hierarchy::RegionalResult out;
  out.reconstruction = field::SpatialField(cloud.grid().field_width(),
                                           cloud.grid().field_height());
  out.zone_nrmse.resize(z, 0.0);
  const sim::LinkModel& uplink = cloud.uplink_link();
  for (std::size_t id = 0; id < z; ++id) {
    const hierarchy::GatherResult& res = outcomes[id].result;
    hierarchy::emit_zone_series(static_cast<std::uint32_t>(id), res);
    out.total_measurements += res.m_used;
    out.node_energy_j += res.node_energy_j;
    out.stats += res.stats;
    out.zone_nrmse[id] = res.nrmse;
    if (res.failed_over) ++out.failovers;
    if (res.degraded) ++out.degraded_zones;
    out.outliers_rejected += res.outliers_rejected;
    cloud.grid().insert(out.reconstruction, id, res.reconstruction);

    // Uplink: the NC broker ships its support coefficients to the head
    // (32 B header + 16 B per coefficient, as in LocalCloud::gather).
    const std::size_t bytes = 32 + 16 * res.support_size;
    out.uplink_bytes += bytes;
    out.uplink_energy_j += uplink.tx_energy_j(bytes) +
                           uplink.rx_energy_j(bytes);
  }
  out.nrmse = field::field_nrmse(out.reconstruction, cloud.truth());
  if (obs::attached()) {
    // Same rollup series as the sequential driver, so RunReports from
    // either path read identically, plus the runner's own accounting.
    obs::add_counter("hier.localcloud.rounds");
    obs::add_counter("hier.localcloud.zones_gathered",
                     static_cast<double>(z));
    obs::add_counter("hier.localcloud.uplink_bytes",
                     static_cast<double>(out.uplink_bytes));
    obs::observe("hier.localcloud.nrmse", out.nrmse);
    obs::add_counter("exec.runner.rounds");
    obs::add_counter("exec.runner.zone_tasks", static_cast<double>(z));
    // Deliberately NO worker-count gauge: worker count is environment,
    // not campaign data, and emitting it would break the byte-identical
    // invariant the runner exists to provide.
  }
  return out;
}

hierarchy::RegionalResult ParallelCampaignRunner::run_round_uniform(
    std::size_t measurements_per_zone, linalg::Rng& rng) {
  std::vector<hierarchy::ZoneDecision> decisions(cloud_->zone_count());
  for (std::size_t id = 0; id < decisions.size(); ++id) {
    decisions[id].zone_id = id;
    decisions[id].measurements = measurements_per_zone;
  }
  return run_round(decisions, rng);
}

std::vector<cs::ChsResult> chs_reconstruct_batch(
    ThreadPool& pool, const linalg::Matrix& basis,
    std::span<const cs::Measurement> signals, const cs::ChsOptions& opts) {
  struct SignalOutcome {
    cs::ChsResult result;
    std::unique_ptr<obs::MetricsRegistry> shard;
  };
  const bool shard_metrics = observed();

  std::vector<std::future<SignalOutcome>> futures;
  futures.reserve(signals.size());
  for (std::size_t i = 0; i < signals.size(); ++i) {
    futures.push_back(pool.submit([&basis, &signals, &opts, shard_metrics,
                                   i] {
      SignalOutcome out;
      std::optional<obs::ScopedMetricShard> bind;
      if (shard_metrics) {
        out.shard = std::make_unique<obs::MetricsRegistry>();
        bind.emplace(out.shard.get());
      }
      out.result = cs::chs_reconstruct(basis, signals[i], opts);
      return out;
    }));
  }
  for (auto& f : futures) f.wait();  // barrier before any rethrow

  std::vector<cs::ChsResult> results;
  results.reserve(signals.size());
  obs::MetricsRegistry* base = obs::registry();
  for (auto& f : futures) {
    SignalOutcome out = f.get();  // rethrows in signal-index order
    if (base != nullptr && out.shard) base->merge_from(*out.shard);
    results.push_back(std::move(out.result));
  }
  return results;
}

}  // namespace sensedroid::exec
