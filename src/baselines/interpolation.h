// Non-CS spatial reconstruction baselines: classical scattered-data
// interpolation.  The compressive pipeline has to beat these to justify
// its machinery — if inverse-distance weighting from the same M samples
// matches CHS, the basis bought nothing (experiment E18).
#pragma once

#include <cstddef>
#include <span>

#include "field/spatial_field.h"

namespace sensedroid::baselines {

/// Inverse-distance-weighted reconstruction of a width x height field
/// from samples at column-stacked indices `locations` (power = 2).
/// Throws std::invalid_argument on size/shape mismatches.
field::SpatialField idw_reconstruct(std::span<const double> values,
                                    std::span<const std::size_t> locations,
                                    std::size_t width, std::size_t height);

/// Gaussian radial-basis-function interpolation: solves the M x M kernel
/// system Phi w = v with phi(r) = exp(-(r/scale)^2) and evaluates on the
/// grid.  `scale` <= 0 picks the mean nearest-neighbor spacing.  A small
/// ridge (1e-8) keeps the kernel matrix well-posed.
field::SpatialField rbf_reconstruct(std::span<const double> values,
                                    std::span<const std::size_t> locations,
                                    std::size_t width, std::size_t height,
                                    double scale = 0.0);

}  // namespace sensedroid::baselines
