#include "baselines/dense_gathering.h"

namespace sensedroid::baselines {

DenseGatherResult dense_gather(const field::SpatialField& truth, double sigma,
                               Rng& rng) {
  DenseGatherResult out;
  out.reconstruction = truth;
  if (sigma > 0.0) {
    for (double& v : out.reconstruction.flat()) {
      v += rng.gaussian(0.0, sigma);
    }
  }
  out.nrmse = field::field_nrmse(out.reconstruction, truth);
  out.measurements = truth.size();
  return out;
}

}  // namespace sensedroid::baselines
