#include "baselines/cdg_luo.h"

#include <algorithm>
#include <stdexcept>

#include "cs/measurement.h"

namespace sensedroid::baselines {

GlobalGatherResult cdg_global_gather(const field::SpatialField& truth,
                                     std::size_t m, linalg::BasisKind basis,
                                     double sigma, Rng& rng,
                                     const cs::ChsOptions& chs) {
  const std::size_t n = truth.size();
  if (m == 0 || m > n) {
    throw std::invalid_argument("cdg_global_gather: need 1 <= m <= N");
  }
  const auto phi = linalg::make_basis(basis, n, rng.next_u64());
  auto plan = cs::MeasurementPlan::random(n, m, rng);
  auto noise = cs::SensorNoise::homogeneous(m, sigma);
  const auto x = truth.vectorize();
  const auto meas = cs::measure(x, std::move(plan), std::move(noise), rng);
  const auto res = cs::chs_reconstruct(phi, meas, chs);

  GlobalGatherResult out;
  out.reconstruction = field::SpatialField::from_vector(
      truth.width(), truth.height(), res.reconstruction);
  out.nrmse = field::field_nrmse(out.reconstruction, truth);
  out.measurements = m;
  return out;
}

std::size_t chain_transmissions_naive(std::size_t n) noexcept {
  return n * (n + 1) / 2;
}

std::size_t chain_transmissions_cdg(std::size_t n, std::size_t m) noexcept {
  return n * m;
}

std::size_t chain_transmissions_hybrid(std::size_t n,
                                       std::size_t m) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 1; i <= n; ++i) total += std::min(i, m);
  return total;
}

std::size_t star_transmissions_dense(std::size_t n) noexcept { return n; }

std::size_t star_transmissions_compressive(std::size_t m) noexcept {
  return 2 * m;  // command + reply per telemetered node
}

}  // namespace sensedroid::baselines
