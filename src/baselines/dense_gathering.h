// Dense (non-compressive) gathering baseline: every grid point with a
// sensor reports its raw reading.  Ground truth for "what accuracy would
// we get if we just collected everything" and the cost anchor the
// compressive schemes are measured against.
#pragma once

#include <cstddef>

#include "field/spatial_field.h"
#include "linalg/random.h"

namespace sensedroid::baselines {

using linalg::Rng;

/// Result of one dense round.
struct DenseGatherResult {
  field::SpatialField reconstruction;  ///< raw noisy readings on the grid
  double nrmse = 0.0;
  std::size_t measurements = 0;        ///< == field size
};

/// Reads every grid point once with iid sensor noise `sigma`.
DenseGatherResult dense_gather(const field::SpatialField& truth, double sigma,
                               Rng& rng);

}  // namespace sensedroid::baselines
