// The Luo et al. compressive-data-gathering baseline (Section 2): global
// constant sparsity, a single basis for the whole field, and a uniform
// compression threshold "across the network regardless of the data field
// characteristics" — exactly what the hierarchical scheme improves on.
//
// Also provides the transmission-count models of the CDG argument:
// chain-relay WSNs cost O(N^2) messages naively and O(NM) under CDG,
// while a mobile NanoCloud star costs N and M respectively (the broker is
// one hop away — the "redundant leaf transmissions" critique of [14]).
#pragma once

#include <cstddef>

#include "cs/chs.h"
#include "field/spatial_field.h"
#include "linalg/basis.h"
#include "linalg/random.h"

namespace sensedroid::baselines {

using linalg::Rng;

/// Result of a flat (non-hierarchical) global gathering round.
struct GlobalGatherResult {
  field::SpatialField reconstruction;
  double nrmse = 0.0;
  std::size_t measurements = 0;
};

/// Luo-style global compressive gathering: M uniform-random samples over
/// the WHOLE field, one global basis, one global reconstruction.  Sensor
/// noise is iid with `sigma`.  Throws std::invalid_argument when m == 0
/// or m > field size.
GlobalGatherResult cdg_global_gather(const field::SpatialField& truth,
                                     std::size_t m, linalg::BasisKind basis,
                                     double sigma, Rng& rng,
                                     const cs::ChsOptions& chs = {});

// ---- transmission-count models -----------------------------------------

/// Chain WSN, naive relay: node i forwards i readings; total N(N+1)/2.
std::size_t chain_transmissions_naive(std::size_t n) noexcept;

/// Chain WSN under CDG: every node sends exactly M projection partials.
std::size_t chain_transmissions_cdg(std::size_t n, std::size_t m) noexcept;

/// Chain WSN under hybrid CDG (Luo's refinement): node i sends
/// min(i, M) values; leaves stop padding.
std::size_t chain_transmissions_hybrid(std::size_t n,
                                       std::size_t m) noexcept;

/// Mobile NanoCloud star, dense: every node reports once.
std::size_t star_transmissions_dense(std::size_t n) noexcept;

/// Mobile NanoCloud star, compressive: only the M telemetered nodes
/// report (plus M commands from the broker).
std::size_t star_transmissions_compressive(std::size_t m) noexcept;

}  // namespace sensedroid::baselines
