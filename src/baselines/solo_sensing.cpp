#include "baselines/solo_sensing.h"

#include <stdexcept>

namespace sensedroid::baselines {

CollaborationComparison compare_collaboration(
    const CollaborationScenario& scenario) {
  if (scenario.n_users == 0 || scenario.samples_needed == 0) {
    throw std::invalid_argument(
        "compare_collaboration: users and samples must be positive");
  }
  const double per_sample = sensing::sample_cost_j(scenario.sensor);
  const std::size_t m = scenario.m_collaborative == 0
                            ? scenario.samples_needed
                            : scenario.m_collaborative;

  CollaborationComparison out;
  // Solo: every user takes every sample themselves; nothing is shared.
  out.solo_energy_j = static_cast<double>(scenario.n_users) *
                      static_cast<double>(scenario.samples_needed) *
                      per_sample;

  // Collaborative: m nodes each take one reading and ship it; the broker
  // broadcasts one result every user receives.
  const auto& link = scenario.link;
  const double sensing_j = static_cast<double>(m) * per_sample;
  const double telemetry_j =
      static_cast<double>(m) *
      (link.tx_energy_j(scenario.reading_bytes) +       // node reply
       link.rx_energy_j(scenario.reading_bytes) +       // broker receives
       link.tx_energy_j(32) + link.rx_energy_j(32));    // broker command
  const double broadcast_j =
      link.tx_energy_j(scenario.result_bytes) +
      static_cast<double>(scenario.n_users) *
          link.rx_energy_j(scenario.result_bytes);
  out.collab_energy_j = sensing_j + telemetry_j + broadcast_j;

  out.savings_fraction =
      out.solo_energy_j > 0.0
          ? 1.0 - out.collab_energy_j / out.solo_energy_j
          : 0.0;
  return out;
}

}  // namespace sensedroid::baselines
