// The non-collaborative baseline for experiment E4: every user who wants
// the information senses it independently.  Collaboration via the broker
// amortizes the sensing cost across the NanoCloud — "collaborative
// sensing can achieve over 80% power savings compared to traditional
// sensing without collaborations" (Section 5, citing Sheng et al.).
#pragma once

#include <cstddef>

#include "sensing/sensor.h"
#include "sim/radio.h"

namespace sensedroid::baselines {

/// Scenario parameters for the comparison.
struct CollaborationScenario {
  std::size_t n_users = 50;        ///< phones wanting the field estimate
  std::size_t samples_needed = 64; ///< sensor samples a solo user takes
  std::size_t m_collaborative = 0; ///< broker's compressive budget;
                                   ///< 0 = same as samples_needed
  sensing::SensorKind sensor = sensing::SensorKind::kGps;
  sim::LinkModel link = sim::LinkModel::of(sim::RadioKind::kWiFi);
  std::size_t reading_bytes = 32;  ///< per telemetered reading message
  std::size_t result_bytes = 512;  ///< broadcast reconstruction summary
};

/// Energy accounting of the two strategies.
struct CollaborationComparison {
  double solo_energy_j = 0.0;    ///< total fleet energy, everyone alone
  double collab_energy_j = 0.0;  ///< total fleet energy, via the broker
  double savings_fraction = 0.0; ///< 1 - collab/solo
};

/// Computes both strategies' total fleet energy:
///  - solo: n_users x samples_needed sensor reads, no radio;
///  - collaborative: m sensor reads once, m command+reply exchanges, one
///    result broadcast received by every user.
/// Throws std::invalid_argument on a zero-user or zero-sample scenario.
CollaborationComparison compare_collaboration(
    const CollaborationScenario& scenario);

}  // namespace sensedroid::baselines
