#include "baselines/interpolation.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/decomposition.h"
#include "linalg/matrix.h"

namespace sensedroid::baselines {

namespace {

struct GridPoint {
  double i;
  double j;
};

GridPoint coord(std::size_t k, std::size_t height) {
  return {static_cast<double>(k % height),
          static_cast<double>(k / height)};
}

double dist2(const GridPoint& a, const GridPoint& b) {
  const double di = a.i - b.i;
  const double dj = a.j - b.j;
  return di * di + dj * dj;
}

void validate(std::span<const double> values,
              std::span<const std::size_t> locations, std::size_t width,
              std::size_t height) {
  if (values.size() != locations.size() || values.empty()) {
    throw std::invalid_argument("interpolation: bad sample set");
  }
  for (std::size_t l : locations) {
    if (l >= width * height) {
      throw std::invalid_argument("interpolation: location out of range");
    }
  }
}

}  // namespace

field::SpatialField idw_reconstruct(std::span<const double> values,
                                    std::span<const std::size_t> locations,
                                    std::size_t width, std::size_t height) {
  validate(values, locations, width, height);
  field::SpatialField out(width, height);
  const std::size_t n = width * height;
  for (std::size_t g = 0; g < n; ++g) {
    const GridPoint p = coord(g, height);
    double wsum = 0.0, acc = 0.0;
    bool exact = false;
    for (std::size_t s = 0; s < values.size(); ++s) {
      const double d2 = dist2(p, coord(locations[s], height));
      if (d2 <= 1e-12) {
        out.flat()[g] = values[s];
        exact = true;
        break;
      }
      const double w = 1.0 / d2;
      acc += w * values[s];
      wsum += w;
    }
    if (!exact) out.flat()[g] = acc / wsum;
  }
  return out;
}

field::SpatialField rbf_reconstruct(std::span<const double> values,
                                    std::span<const std::size_t> locations,
                                    std::size_t width, std::size_t height,
                                    double scale) {
  validate(values, locations, width, height);
  const std::size_t m = values.size();

  if (scale <= 0.0) {
    // 2x the uniform-density spacing sqrt(area / M): wide enough that
    // neighboring kernels overlap (narrow Gaussians spike at the samples
    // and collapse between them), narrow enough to stay well-conditioned.
    // (Mean nearest-neighbor spacing under-estimates the needed width for
    // clustered random sample sets.)
    const double area = static_cast<double>(width) *
                        static_cast<double>(height);
    scale = std::max(2.0 * std::sqrt(area / static_cast<double>(m)), 1.0);
  }
  const double inv_s2 = 1.0 / (scale * scale);

  // Kernel system (SPD up to ties; ridge keeps it solvable).
  linalg::Matrix k(m, m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      k(r, c) = std::exp(-dist2(coord(locations[r], height),
                                coord(locations[c], height)) *
                         inv_s2);
    }
    k(r, r) += 1e-8;
  }
  linalg::Cholesky chol(k);
  const linalg::Vector w = chol.solve(values);

  field::SpatialField out(width, height);
  const std::size_t n = width * height;
  for (std::size_t g = 0; g < n; ++g) {
    const GridPoint p = coord(g, height);
    double acc = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      acc += w[s] *
             std::exp(-dist2(p, coord(locations[s], height)) * inv_s2);
    }
    out.flat()[g] = acc;
  }
  return out;
}

}  // namespace sensedroid::baselines
