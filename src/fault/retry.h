// Resilience policy for broker gather rounds: bounded retries with
// exponential backoff and decorrelated jitter, a per-round deadline in
// sim::EventSim virtual seconds, and an energy-aware skip that stops
// retrying nodes whose battery is nearly flat.
//
// The default policy (max_attempts = 1) reproduces the seed broker's
// one-shot behavior exactly — no extra Rng draws, no extra virtual time
// — so existing experiments are unchanged until a campaign opts in.
#pragma once

#include <cstddef>

#include "linalg/random.h"

namespace sensedroid::fault {

struct RetryPolicy {
  /// Total command attempts per node per round (1 = no retry).
  std::size_t max_attempts = 1;
  /// First-retry backoff floor in virtual seconds.
  double base_backoff_s = 0.02;
  /// Backoff ceiling in virtual seconds.
  double max_backoff_s = 1.0;
  /// Per-round deadline in virtual seconds; once a round's accumulated
  /// transfer + backoff time crosses it, remaining nodes/retries are
  /// skipped (counted as deadline skips).  0 = no deadline.
  double round_deadline_s = 0.0;
  /// Energy-aware skip: retries (never first attempts) are withheld from
  /// nodes whose battery state of charge is below this fraction —
  /// re-telemetering a dying phone wastes its last joules.
  double min_retry_soc = 0.0;

  bool retries_enabled() const noexcept { return max_attempts > 1; }

  /// Next backoff via decorrelated jitter: uniform in
  /// [base, max(base, 3 * prev)], capped at max_backoff_s.  Pass the
  /// previous backoff (0 on the first retry).  Draws exactly one uniform
  /// from `rng`.
  double next_backoff_s(double prev, linalg::Rng& rng) const;

  /// Throws std::invalid_argument on nonsensical settings.
  void validate() const;
};

}  // namespace sensedroid::fault
