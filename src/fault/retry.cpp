#include "fault/retry.h"

#include <algorithm>
#include <stdexcept>

namespace sensedroid::fault {

double RetryPolicy::next_backoff_s(double prev, linalg::Rng& rng) const {
  const double hi = std::max(base_backoff_s,
                             3.0 * (prev > 0.0 ? prev : base_backoff_s));
  return std::min(max_backoff_s, rng.uniform(base_backoff_s, hi));
}

void RetryPolicy::validate() const {
  if (max_attempts == 0) {
    throw std::invalid_argument("RetryPolicy: max_attempts must be >= 1");
  }
  if (base_backoff_s < 0.0 || max_backoff_s < base_backoff_s) {
    throw std::invalid_argument(
        "RetryPolicy: need 0 <= base_backoff_s <= max_backoff_s");
  }
  if (round_deadline_s < 0.0) {
    throw std::invalid_argument("RetryPolicy: round_deadline_s must be >= 0");
  }
  if (min_retry_soc < 0.0 || min_retry_soc > 1.0) {
    throw std::invalid_argument("RetryPolicy: min_retry_soc must be in [0, 1]");
  }
}

}  // namespace sensedroid::fault
