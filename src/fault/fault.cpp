#include "fault/fault.h"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace sensedroid::fault {

namespace {

void check_prob(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                " must be in [0, 1]");
  }
}

// SplitMix64 finalizer: derives a per-node seed from (plan seed, node id,
// purpose salt) so every per-node stream is independent and reproducible
// no matter which nodes exist or in which order they are queried.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

constexpr std::uint64_t kChurnSalt = 0x636875726eULL;   // "churn"
constexpr std::uint64_t kSensorSalt = 0x73656e73ULL;    // "sens"
constexpr std::uint64_t kLinkSalt = 0x6c696e6bULL;      // "link"

}  // namespace

double GilbertElliott::bad_occupancy() const noexcept {
  const double denom = p_good_to_bad + p_bad_to_good;
  return denom > 0.0 ? p_good_to_bad / denom : 0.0;
}

double GilbertElliott::mean_loss() const noexcept {
  const double pi_bad = bad_occupancy();
  return pi_bad * loss_bad + (1.0 - pi_bad) * loss_good;
}

void FaultPlan::validate() const {
  check_prob(link.p_good_to_bad, "link.p_good_to_bad");
  check_prob(link.p_bad_to_good, "link.p_bad_to_good");
  check_prob(link.loss_good, "link.loss_good");
  check_prob(link.loss_bad, "link.loss_bad");
  check_prob(churn.leave_prob, "churn.leave_prob");
  check_prob(churn.rejoin_prob, "churn.rejoin_prob");
  check_prob(sensors.stuck_fraction, "sensors.stuck_fraction");
  check_prob(sensors.drift_fraction, "sensors.drift_fraction");
  check_prob(sensors.spike_prob, "sensors.spike_prob");
  if (sensors.stuck_fraction + sensors.drift_fraction > 1.0) {
    throw std::invalid_argument(
        "FaultPlan: stuck_fraction + drift_fraction must be <= 1");
  }
  if (sensors.spike_sigmas < 0.0) {
    throw std::invalid_argument("FaultPlan: spike_sigmas must be >= 0");
  }
  for (const CrashWindow& w : broker_crashes) {
    if (w.from_round > w.to_round) {
      throw std::invalid_argument("FaultPlan: inverted crash window");
    }
  }
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
}

void FaultInjector::begin_round() {
  const std::size_t round =
      round_.fetch_add(1, std::memory_order_relaxed) + 1;
  obs::add_counter("fault.injector.rounds");
  // Crash windows are tallied when they cover the new round so the
  // injected count reflects outages even if nobody gathers that zone.
  for (const CrashWindow& w : plan_.broker_crashes) {
    if (round >= w.from_round && round <= w.to_round) {
      std::lock_guard<std::mutex> lock(mu_);
      ++tally_.crashed_broker_rounds;
      obs::add_counter("fault.broker.crashed_rounds");
      obs::fr_record(obs::FrEvent::kFaultBrokerCrash, w.zone,
                     static_cast<double>(round));
    }
  }
}

bool FaultInjector::link_attempt_drops(std::uint32_t zone) {
  if (!plan_.link.enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, created] = links_.try_emplace(
      zone, LinkState{Rng(mix(plan_.seed, mix(kLinkSalt, zone))), false});
  LinkState& st = it->second;
  // Advance the zone's two-state chain, then draw the state's loss.
  if (st.bad) {
    if (st.rng.bernoulli(plan_.link.p_bad_to_good)) st.bad = false;
  } else {
    if (st.rng.bernoulli(plan_.link.p_good_to_bad)) {
      st.bad = true;
      ++tally_.link_bursts;
      obs::add_counter("fault.link.bursts");
    }
  }
  const double loss = st.bad ? plan_.link.loss_bad : plan_.link.loss_good;
  const bool drop = st.rng.bernoulli(loss);
  if (drop) {
    ++tally_.link_drops;
    obs::add_counter("fault.link.drops");
    obs::fr_record(obs::FrEvent::kFaultLinkDrop, zone,
                   st.bad ? 1.0 : 0.0);
  }
  return drop;
}

bool FaultInjector::link_in_bad_state(std::uint32_t zone) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = links_.find(zone);
  return it != links_.end() && it->second.bad;
}

bool FaultInjector::node_present(std::uint32_t node) {
  if (!plan_.churn.enabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, created] = churn_.try_emplace(
      node, ChurnState{Rng(mix(plan_.seed, mix(kChurnSalt, node))), 0, true});
  ChurnState& st = it->second;
  // Lazily advance the node's private chain up to the current round: one
  // draw per round per node, independent of query order or count.
  const std::size_t round = round_.load(std::memory_order_relaxed);
  while (st.round < round) {
    ++st.round;
    if (st.present) {
      if (st.rng.bernoulli(plan_.churn.leave_prob)) {
        st.present = false;
        ++tally_.churn_leaves;
        obs::add_counter("fault.churn.leaves");
      }
    } else {
      if (st.rng.bernoulli(plan_.churn.rejoin_prob)) {
        st.present = true;
        ++tally_.churn_rejoins;
        obs::add_counter("fault.churn.rejoins");
      }
    }
  }
  if (!st.present) {
    ++tally_.churn_absences;
    obs::add_counter("fault.churn.absent");
    obs::fr_record(obs::FrEvent::kFaultChurnAbsent, node);
  }
  return st.present;
}

bool FaultInjector::broker_down(std::uint32_t zone) const noexcept {
  const std::size_t round = round_.load(std::memory_order_relaxed);
  for (const CrashWindow& w : plan_.broker_crashes) {
    if (w.zone == zone && round >= w.from_round && round <= w.to_round) {
      return true;
    }
  }
  return false;
}

FaultInjector::Tally FaultInjector::tally() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tally_;
}

sensing::SimulatedSensor::ReadHook FaultInjector::sensor_hook(
    std::uint32_t node, double sigma) {
  if (!plan_.sensors.enabled()) return {};

  // Per-node defect assignment from a private stream: one uniform decides
  // stuck / drift / healthy, so the assignment is stable per (seed, node).
  Rng rng(mix(plan_.seed, mix(kSensorSalt, node)));
  const double u = rng.uniform();
  const bool stuck = u < plan_.sensors.stuck_fraction;
  const bool drift =
      !stuck &&
      u < plan_.sensors.stuck_fraction + plan_.sensors.drift_fraction;
  if (stuck || drift) {
    std::lock_guard<std::mutex> lock(mu_);
    if (stuck) {
      ++tally_.stuck_nodes;
      obs::add_counter("fault.sensor.stuck_nodes");
    } else {
      ++tally_.drift_nodes;
      obs::add_counter("fault.sensor.drift_nodes");
    }
  }
  if (!stuck && !drift && plan_.sensors.spike_prob <= 0.0) return {};

  struct HookState {
    Rng rng;
    bool stuck = false;
    bool has_frozen = false;
    double frozen = 0.0;
    double drift_step = 0.0;
    double drift_offset = 0.0;
    double spike_prob = 0.0;
    double spike_mag = 0.0;
  };
  auto st = std::make_shared<HookState>();
  st->rng = rng;  // continues the per-node stream past the assignment draw
  st->stuck = stuck;
  st->drift_step = drift ? plan_.sensors.drift_per_read : 0.0;
  st->spike_prob = plan_.sensors.spike_prob;
  // Spikes scale with the unit's noise sigma so they are outliers for any
  // sensor kind; a floor keeps them visible on near-exact sensors.
  st->spike_mag =
      plan_.sensors.spike_sigmas * std::max(sigma, 1e-3);

  // The HookState itself needs no lock: a node is read only inside its
  // own zone's gather task, and the campaign runner joins all tasks
  // between rounds, so accesses are sequenced even when the zone migrates
  // across workers.  Only the shared tally crosses zones.
  return [st, node, this](std::size_t /*index*/, double value) {
    if (st->stuck) {
      if (!st->has_frozen) {
        st->has_frozen = true;
        st->frozen = value;
      }
      value = st->frozen;
    } else if (st->drift_step != 0.0) {
      st->drift_offset += st->drift_step;
      value += st->drift_offset;
    }
    if (st->spike_prob > 0.0 && st->rng.bernoulli(st->spike_prob)) {
      // Sign alternates deterministically with the stream.
      const double sign = st->rng.bernoulli(0.5) ? 1.0 : -1.0;
      value += sign * st->spike_mag;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++tally_.sensor_spikes;
      }
      obs::add_counter("fault.sensor.spikes");
      obs::fr_record(obs::FrEvent::kFaultSensorSpike, node,
                     sign * st->spike_mag);
    }
    return value;
  };
}

}  // namespace sensedroid::fault
