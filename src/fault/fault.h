// Deterministic, seeded fault injection for the crowdsensing substrate.
//
// The paper's premise is that crowdsensed phones are an *unreliable*
// platform — "the number of nodes ... can change dynamically", radios
// drop, sensors misbehave — so every resilience claim needs a way to
// provoke those failures reproducibly.  A FaultPlan describes what goes
// wrong (bursty link loss, node churn, sensor defects, broker crashes,
// undersized batteries); a FaultInjector executes the plan from one seed
// so that the same campaign replayed with the same plan produces
// bit-identical GatherStats and reconstruction error.
//
// The injector draws all of its randomness from private streams derived
// from FaultPlan::seed — never from the campaign Rng — so attaching a
// benign (all-knobs-zero) injector leaves every existing experiment
// bit-identical to running with no injector at all.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "linalg/random.h"
#include "sensing/sensor.h"

namespace sensedroid::fault {

using linalg::Rng;

/// Two-state Gilbert–Elliott burst-loss process: the link alternates
/// between a good state (near-lossless) and a bad state (deep fade) with
/// per-attempt transition probabilities.  Layered *on top of* the
/// distance loss of sim::LinkModel: an attempt must survive both.
struct GilbertElliott {
  double p_good_to_bad = 0.0;  ///< per-attempt P(good -> bad)
  double p_bad_to_good = 0.25; ///< per-attempt P(bad -> good)
  double loss_good = 0.0;      ///< forced-drop probability in good state
  double loss_bad = 0.0;       ///< forced-drop probability in bad state

  bool enabled() const noexcept {
    return p_good_to_bad > 0.0 && (loss_bad > 0.0 || loss_good > 0.0);
  }
  /// Stationary fraction of attempts spent in the bad state.
  double bad_occupancy() const noexcept;
  /// Long-run average forced-drop probability of the chain.
  double mean_loss() const noexcept;
};

/// Node churn: every round each present node leaves with `leave_prob`
/// and each absent node rejoins with `rejoin_prob`, giving geometric
/// leave/rejoin windows.  Absent nodes never hear broker commands.
struct ChurnPlan {
  double leave_prob = 0.0;
  double rejoin_prob = 0.25;

  bool enabled() const noexcept { return leave_prob > 0.0; }
};

/// Sensor defects applied at SimulatedSensor read time (via the sensor's
/// read hook).  Stuck-at and drift are *per-node* afflictions assigned
/// deterministically from the plan seed; spikes strike any reading.
struct SensorFaultPlan {
  double stuck_fraction = 0.0;  ///< nodes whose sensor freezes at first read
  double drift_fraction = 0.0;  ///< nodes whose sensor accumulates bias
  double drift_per_read = 0.0;  ///< bias added per read on drifting nodes
  double spike_prob = 0.0;      ///< per-reading outlier probability
  double spike_sigmas = 8.0;    ///< spike magnitude in units of sensor sigma

  bool enabled() const noexcept {
    return stuck_fraction > 0.0 || drift_fraction > 0.0 || spike_prob > 0.0;
  }
};

/// A scheduled broker outage: zone `zone`'s broker is down for rounds
/// [from_round, to_round] inclusive.  Rounds are 1-based and advanced by
/// the campaign driver via FaultInjector::begin_round().
struct CrashWindow {
  std::uint32_t zone = 0;
  std::size_t from_round = 0;
  std::size_t to_round = 0;
};

/// Battery sabotage: when capacity_override_j >= 0, every phone in a
/// cloud built against this injector gets that capacity instead of the
/// configured one (infrastructure backfill sensors are mains-powered and
/// unaffected).  This is how the old ad-hoc battery-death scenarios are
/// expressed as a plan.
struct BatteryPlan {
  double capacity_override_j = -1.0;

  bool enabled() const noexcept { return capacity_override_j >= 0.0; }
};

/// The full fault schedule of one campaign.  Plain data: copy it, diff
/// it, replay it.
struct FaultPlan {
  std::uint64_t seed = 1;
  GilbertElliott link;
  ChurnPlan churn;
  SensorFaultPlan sensors;
  std::vector<CrashWindow> broker_crashes;
  BatteryPlan battery;

  /// Throws std::invalid_argument when any probability is outside [0, 1]
  /// or a crash window is inverted.
  void validate() const;
};

/// Executes a FaultPlan.  Thread-safe: one injector may be shared by
/// every zone of a parallel campaign — all mutable state sits behind one
/// mutex, and sensor hooks lock it for their tally updates.  The
/// injector must outlive every cloud, broker, and sensor hook built
/// against it.
///
/// Determinism contract: given the same plan (seed included) and the
/// same per-stream sequence of calls, every method returns the same
/// answers.  Every random stream is keyed by its consumer — churn per
/// (seed, node), sensor defects per (seed, node), link bursts per
/// (seed, zone) — so answers never depend on the order in which zones
/// or nodes are processed, which is what lets N worker threads replay a
/// 1-thread campaign bit-identically (DESIGN.md §9).  All randomness
/// comes from streams derived from plan.seed; the campaign Rng is never
/// touched, so a disabled injector is behaviorally invisible.
///
/// begin_round() is the one exception: it must be called from the
/// campaign driver thread between rounds, never concurrently with
/// in-round queries.
class FaultInjector {
 public:
  /// Validates and adopts the plan.
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Current campaign round; 0 until the first begin_round().
  std::size_t current_round() const noexcept {
    return round_.load(std::memory_order_relaxed);
  }

  /// Advances to the next round (rounds are 1-based).  Called by the
  /// campaign driver once per gathering round; churn and crash windows
  /// evolve at round granularity.
  void begin_round();

  /// One transmission attempt through zone `zone`'s bursty channel:
  /// advances that zone's private Gilbert–Elliott chain one step and
  /// returns true when the burst process forces a drop.  Callers layer
  /// this on LinkModel's distance loss (forced drops replace the
  /// distance draw).  No-op returning false when the plan's link faults
  /// are disabled.  Zone radio environments fade independently, so each
  /// zone owns a chain seeded per (plan seed, zone) — the zone's drop
  /// sequence is a pure function of its own attempt count, untouched by
  /// how other zones' gathers are scheduled across workers.
  bool link_attempt_drops(std::uint32_t zone = 0);

  /// True while zone `zone`'s GE chain sits in the bad (deep-fade)
  /// state (false before its first attempt).
  bool link_in_bad_state(std::uint32_t zone = 0) const;

  /// Whether `node` is churned in during the current round.  A node's
  /// presence is fixed for the round and deterministic per (seed, node,
  /// round) regardless of how often or in what order nodes are queried.
  bool node_present(std::uint32_t node);

  /// Whether zone `zone`'s broker is inside a scheduled crash window
  /// this round.
  bool broker_down(std::uint32_t zone) const noexcept;

  /// Builds the read-time fault hook for node `node`'s sensor (stuck-at,
  /// drift, spikes per the plan); returns an empty function when the
  /// node draws no defect and spikes are off.  Install the result with
  /// SimulatedSensor::set_read_hook.  `sigma` scales spike magnitude.
  sensing::SimulatedSensor::ReadHook sensor_hook(std::uint32_t node,
                                                 double sigma);

  /// Running tally of every fault this injector has forced — the
  /// "injected" side of the injected-vs-recovered report.
  struct Tally {
    std::size_t link_drops = 0;      ///< GE forced transmission drops
    std::size_t link_bursts = 0;     ///< good -> bad transitions
    std::size_t churn_leaves = 0;
    std::size_t churn_rejoins = 0;
    std::size_t churn_absences = 0;  ///< commands addressed to absent nodes
    std::size_t sensor_spikes = 0;
    std::size_t stuck_nodes = 0;
    std::size_t drift_nodes = 0;
    std::size_t crashed_broker_rounds = 0;

    std::size_t total_injected() const noexcept {
      return link_drops + churn_absences + sensor_spikes +
             crashed_broker_rounds;
    }
  };
  /// Snapshot by value: workers may still be appending to the live tally.
  Tally tally() const;

 private:
  struct ChurnState {
    Rng rng;
    std::size_t round = 0;  ///< last round the chain was advanced to
    bool present = true;
  };
  struct LinkState {
    Rng rng;
    bool bad = false;
  };

  FaultPlan plan_;
  std::atomic<std::size_t> round_{0};
  mutable std::mutex mu_;  // guards links_, churn_, tally_
  std::map<std::uint32_t, LinkState> links_;
  std::map<std::uint32_t, ChurnState> churn_;
  Tally tally_;
};

}  // namespace sensedroid::fault
