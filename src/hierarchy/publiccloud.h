// The public-cloud tier (Fig. 1): "the head broker in the LCs in turn
// communicate with other LCs and the public cloud in the next hierarchy."
// The PublicCloud assembles regional reconstructions into the global
// field and answers application queries over it — the "sense-making"
// output of the whole stack.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "field/spatial_field.h"
#include "hierarchy/localcloud.h"

namespace sensedroid::hierarchy {

/// Placement of one LocalCloud's region inside the global field.
struct RegionPlacement {
  std::size_t i0 = 0;  ///< top row of the region in the global grid
  std::size_t j0 = 0;  ///< left column
};

/// Global assembly + query tier.
class PublicCloud {
 public:
  /// `width` x `height` global grid.  Throws on zero dimensions.
  PublicCloud(std::size_t width, std::size_t height);

  /// Integrates a regional reconstruction at its placement; overlapping
  /// uploads overwrite (latest wins).  Throws std::out_of_range when the
  /// region does not fit.
  void integrate(const RegionPlacement& where,
                 const field::SpatialField& regional,
                 double timestamp = 0.0);

  std::size_t regions_integrated() const noexcept { return integrated_; }
  double last_update_time() const noexcept { return last_update_; }

  /// The assembled global field (cells never covered remain 0).
  const field::SpatialField& global_field() const noexcept { return field_; }

  /// Point query; throws std::out_of_range outside the grid.
  double value_at(std::size_t i, std::size_t j) const;

  /// Mean over a rectangle; throws std::out_of_range when it doesn't fit.
  double region_mean(std::size_t i0, std::size_t j0, std::size_t w,
                     std::size_t h) const;

  /// Cells (as (i, j) + value) exceeding a threshold — the "areas of most
  /// impact" a disaster-response application asks for.
  struct HotSpot {
    std::size_t i;
    std::size_t j;
    double value;
  };
  std::vector<HotSpot> cells_above(double threshold) const;

 private:
  field::SpatialField field_;
  std::size_t integrated_ = 0;
  double last_update_ = 0.0;
};

}  // namespace sensedroid::hierarchy
