#include "hierarchy/campaign.h"

#include <stdexcept>

namespace sensedroid::hierarchy {

SensingCampaign::SensingCampaign(NanoCloud& cloud, sim::Simulator& sim,
                                 const Config& config)
    : cloud_(cloud), sim_(sim), config_(config) {
  if (config.rounds == 0) {
    throw std::invalid_argument("SensingCampaign: rounds must be positive");
  }
  if (config.period_s <= 0.0) {
    throw std::invalid_argument("SensingCampaign: period must be positive");
  }
  if (config.initial_budget == 0) {
    throw std::invalid_argument("SensingCampaign: budget must be positive");
  }
}

std::vector<RoundReport> SensingCampaign::run(linalg::Rng& rng) {
  std::vector<RoundReport> reports;
  reports.reserve(config_.rounds);

  // Shared controller state across the scheduled closures.
  auto sampler_params = config_.sampler;
  sampler_params.m_initial = config_.initial_budget;
  if (sampler_params.m_max < sampler_params.m_initial) {
    sampler_params.m_max = sampler_params.m_initial;
  }
  if (sampler_params.m_min > sampler_params.m_initial) {
    sampler_params.m_min = 1;
  }
  scheduling::AdaptiveSampler sampler(sampler_params);

  for (std::size_t r = 0; r < config_.rounds; ++r) {
    sim_.schedule_at(
        static_cast<double>(r) * config_.period_s, [this, &reports,
                                                    &sampler, &rng] {
          const std::size_t budget =
              config_.adaptive ? sampler.budget() : config_.initial_budget;
          const auto res = cloud_.gather(budget, rng);
          if (config_.adaptive) sampler.observe(res.nrmse);
          reports.push_back(RoundReport{sim_.now(), budget, res.m_used,
                                        res.nrmse,
                                        cloud_.total_node_energy_j()});
        });
  }
  sim_.run();
  return reports;
}

}  // namespace sensedroid::hierarchy
