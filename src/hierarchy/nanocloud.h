// The NanoCloud (Figs. 1-2): "mobile nodes connected to a central head or
// a broker ... the broker performs stochastic (random) spatial sampling in
// various nodes" — one NC covers one zone of the spatial field.
//
// In the simulation each grid cell of the zone is covered by a phone with
// probability `coverage` (crowds are not everywhere); infrastructure
// sensors can back-fill cells the crowd misses, per Section 3's fallback.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "cs/chs.h"
#include "fault/fault.h"
#include "fault/retry.h"
#include "field/spatial_field.h"
#include "linalg/basis.h"
#include "linalg/random.h"
#include "middleware/broker.h"
#include "middleware/node.h"

namespace sensedroid::hierarchy {

using linalg::Rng;

/// Construction parameters of one NanoCloud.
struct NanoCloudConfig {
  /// Probability a grid cell hosts a phone.
  double coverage = 0.9;
  /// Physical size of one grid cell in meters (node positions).  The
  /// default keeps even a 16x16 zone well inside one WiFi cell so the
  /// broker reaches every node reliably.
  double cell_m = 5.0;
  /// Sensor type the cloud gathers.
  sensing::SensorKind sensor = sensing::SensorKind::kTemperature;
  /// Sparsifying basis for reconstruction.
  linalg::BasisKind basis = linalg::BasisKind::kDct;
  /// For kDct: use the separable 2-D DCT of the zone (kron of the 1-D
  /// DCTs) and 2-D-aware residual interpolation.  Physical fields are
  /// 2-D smooth, so this is strictly better than the 1-D DCT of the
  /// stacked vector; disable only for ablation.
  bool separable_2d = true;
  /// Reconstruction options.  Defaults: linear Upsilon interpolation —
  /// physical spatial fields are smooth, and pre-smoothing the residual
  /// makes atom selection reliable even at tiny budgets — and GLS refit
  /// because phone fleets are heterogeneous.
  cs::ChsOptions chs{.interpolation = cs::Interpolation::kLinear,
                     .refit = cs::Refit::kGls};
  /// Add infrastructure sensors on cells without phone coverage.
  bool infrastructure_backfill = false;
  /// Battery capacity per phone in joules (default: 2014-era handset).
  /// Small values let tests exercise mid-round battery death.
  double battery_capacity_j = 36000.0;
  /// Fraction of phones whose owners opt out of sharing entirely
  /// (Section 5 privacy posture); they exist but refuse every command.
  double opt_out_fraction = 0.0;
  /// Zone identity for fault scheduling (CrashWindow::zone); LocalCloud
  /// assigns each member NC its zone index.
  std::uint32_t zone_id = 0;
  /// Non-owning fault injector; when set, the broker layers its link
  /// bursts/churn onto the radio, phone sensors get its defect hooks
  /// (infrastructure backfill stays healthy — it is maintained hardware),
  /// batteries honor its capacity override, and gather() fails over to a
  /// promoted member when the injector crashes this zone's broker.  Must
  /// outlive the cloud.  nullptr = no faults (seed behavior).
  fault::FaultInjector* injector = nullptr;
  /// Retry/timeout/energy-skip policy for every gather round.
  fault::RetryPolicy retry{};
  /// Top-up: when replies fall short of the requested m, gather() asks up
  /// to this many extra mini-rounds of replacement cells (fresh covered
  /// cells not yet commanded this round).  0 = off (seed behavior).
  std::size_t topup_rounds = 0;
};

/// Outcome of one gathering round.
struct GatherResult {
  field::SpatialField reconstruction;
  double nrmse = 0.0;                ///< against the ground-truth zone
  std::size_t m_requested = 0;       ///< plan size the broker asked for
  std::size_t m_used = 0;            ///< readings that actually arrived
  middleware::GatherStats stats;     ///< radio/energy accounting
  double node_energy_j = 0.0;        ///< summed phone energy this round
  std::size_t support_size = 0;      ///< |J| of the CHS solution
  std::size_t outliers_rejected = 0; ///< readings screened by MAD
  bool failed_over = false;          ///< round ran through a stand-in broker
  bool degraded = false;             ///< failover or MAD screening engaged
};

/// One NanoCloud over one ground-truth zone.
class NanoCloud {
 public:
  /// Builds the broker, phones (quality tiers drawn uniformly), and
  /// optional infrastructure sensors.  `truth` is the zone's field; the
  /// cloud does NOT own or mutate it.  Throws std::invalid_argument for
  /// empty zones or coverage outside [0, 1].
  NanoCloud(const field::SpatialField& truth, const NanoCloudConfig& config,
            Rng& rng);

  std::size_t grid_points() const noexcept { return truth_->size(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t covered_cells() const noexcept { return covered_.size(); }
  middleware::Broker& broker() noexcept { return broker_; }
  const NanoCloudConfig& config() const noexcept { return config_; }

  /// Runs one compressive gathering round with a budget of `m` readings:
  /// the broker randomly selects m covered cells, telemeters their nodes,
  /// and CHS-reconstructs the zone.  m is clamped to the covered-cell
  /// count.  Throws std::invalid_argument when m == 0.
  GatherResult gather(std::size_t m, Rng& rng);

  /// Dense baseline round: every covered cell reports (no compression);
  /// missing cells are filled by interpolation of the measured ones.
  GatherResult gather_dense(Rng& rng);

  /// Total energy drawn by all member phones so far.
  double total_node_energy_j() const noexcept;

 private:
  /// Telemeters the nodes on `cells` through `head`, accumulating stats
  /// and node energy into `out`.
  std::vector<middleware::Reading> collect_cells(
      middleware::Broker& head, const std::vector<std::size_t>& cells,
      Rng& rng, GatherResult& out);

  /// CHS (or dense-interpolation) reconstruction from gathered readings.
  GatherResult reconstruct_readings(
      const std::vector<middleware::Reading>& readings, GatherResult out,
      bool compressive);

  /// Elects the first live, present, willing member as stand-in head
  /// when the injector has crashed this zone's broker; charges the
  /// election broadcast to `out`.  nullptr when nobody can take over.
  middleware::MobileNode* elect_standin(GatherResult& out);

  const field::SpatialField* truth_;
  NanoCloudConfig config_;
  middleware::Broker broker_;
  std::vector<middleware::MobileNode> nodes_;
  std::vector<std::size_t> covered_;          ///< cells with a node
  std::vector<std::size_t> cell_to_node_;     ///< cell -> index or npos
  linalg::Matrix basis_;
};

}  // namespace sensedroid::hierarchy
