#include "hierarchy/nanocloud.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "cs/measurement.h"
#include "linalg/vector_ops.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::hierarchy {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
constexpr middleware::NodeId kBrokerId = 1'000'000;
}  // namespace

NanoCloud::NanoCloud(const field::SpatialField& truth,
                     const NanoCloudConfig& config, Rng& rng)
    : truth_(&truth),
      config_(config),
      broker_(kBrokerId,
              {truth.width() * config.cell_m / 2.0,
               truth.height() * config.cell_m / 2.0}),
      basis_(config.basis == linalg::BasisKind::kDct && config.separable_2d
                 ? linalg::dct2_basis(truth.width(), truth.height())
                 : linalg::make_basis(config.basis, truth.size(),
                                      rng.next_u64())) {
  if (config_.basis == linalg::BasisKind::kDct && config_.separable_2d) {
    config_.chs.grid_height = truth.height();
  }
  if (truth.size() == 0) {
    throw std::invalid_argument("NanoCloud: empty zone");
  }
  if (config.coverage < 0.0 || config.coverage > 1.0) {
    throw std::invalid_argument("NanoCloud: coverage must be in [0, 1]");
  }
  if (config.opt_out_fraction < 0.0 || config.opt_out_fraction > 1.0) {
    throw std::invalid_argument(
        "NanoCloud: opt_out_fraction must be in [0, 1]");
  }
  if (config.battery_capacity_j < 0.0) {
    throw std::invalid_argument("NanoCloud: negative battery capacity");
  }
  broker_.set_retry_policy(config_.retry);  // validates; throws when bad
  broker_.set_fault_injector(config_.injector, config_.zone_id);

  // Battery sabotage applies to phones only: backfill sensors are
  // mains-powered infrastructure.
  const bool battery_sabotage = config_.injector != nullptr &&
                                config_.injector->plan().battery.enabled();

  cell_to_node_.assign(truth.size(), kNpos);
  const auto flat = truth.flat();
  constexpr sensing::QualityTier kTiers[] = {sensing::QualityTier::kFlagship,
                                             sensing::QualityTier::kMidrange,
                                             sensing::QualityTier::kBudget};
  middleware::NodeId next_id = 1;

  for (std::size_t cell = 0; cell < truth.size(); ++cell) {
    const bool phone_here = rng.bernoulli(config.coverage);
    const bool backfill = !phone_here && config.infrastructure_backfill;
    if (!phone_here && !backfill) continue;

    const auto coord = truth.coord_of(cell);
    const sim::Point pos{
        (static_cast<double>(coord.j) + 0.5) * config.cell_m,
        (static_cast<double>(coord.i) + 0.5) * config.cell_m};
    const double capacity_j =
        (battery_sabotage && !backfill)
            ? config_.injector->plan().battery.capacity_override_j
            : config.battery_capacity_j;
    middleware::MobileNode node(next_id++, pos,
                                sim::LinkModel::of(sim::RadioKind::kWiFi),
                                sim::Battery(capacity_j));
    if (!backfill && rng.bernoulli(config.opt_out_fraction)) {
      node.policy().set_opted_out(true);
    }
    // Infrastructure sensors are wired and flagship-grade; phones draw a
    // random quality tier.
    const auto tier = backfill ? sensing::QualityTier::kFlagship
                               : kTiers[rng.uniform_index(3)];
    const double value = flat[cell];
    sensing::SimulatedSensor sensor(
        config.sensor, tier, [value](std::size_t) { return value; },
        rng.next_u64());
    // Phone sensors can be defective (stuck/drifting/spiking) per the
    // fault plan; maintained infrastructure hardware stays healthy.
    if (!backfill && config_.injector != nullptr) {
      auto hook = config_.injector->sensor_hook(node.id(),
                                                sensor.noise_sigma());
      if (hook) sensor.set_read_hook(std::move(hook));
    }
    node.add_sensor(std::move(sensor));
    broker_.enroll(node);
    cell_to_node_[cell] = nodes_.size();
    covered_.push_back(cell);
    nodes_.push_back(std::move(node));
  }
}

GatherResult NanoCloud::gather(std::size_t m, Rng& rng) {
  if (m == 0) {
    throw std::invalid_argument("NanoCloud::gather: m must be positive");
  }
  obs::ScopedSpan span("hier.nanocloud.gather");
  m = std::min(m, covered_.size());
  // Random spatial sampling over covered cells.
  std::vector<std::size_t> picked_idx =
      rng.sample_without_replacement(covered_.size(), m);
  std::vector<std::size_t> cells;
  cells.reserve(m);
  for (std::size_t i : picked_idx) cells.push_back(covered_[i]);

  GatherResult out;
  out.m_requested = m;

  // Failover: when the fault plan has crashed this zone's broker, a
  // member node is promoted to stand-in head for the round.
  middleware::Broker* head = &broker_;
  std::optional<middleware::Broker> standin;
  if (config_.injector != nullptr &&
      config_.injector->broker_down(config_.zone_id)) {
    middleware::MobileNode* promoted = elect_standin(out);
    if (promoted == nullptr) {
      // Nobody can take over: the round is lost entirely.
      return reconstruct_readings({}, std::move(out), /*compressive=*/true);
    }
    standin.emplace(kBrokerId + promoted->id(), promoted->position(),
                    promoted->link());
    standin->set_retry_policy(config_.retry);
    standin->set_fault_injector(config_.injector, config_.zone_id);
    head = &*standin;
    out.failed_over = true;
    out.degraded = true;
  }

  auto readings = collect_cells(*head, cells, rng, out);

  // Top-up: replace silent cells with fresh covered cells until the
  // budget is met, the round allowance runs out, or the pool drains.
  if (config_.topup_rounds > 0 && readings.size() < m) {
    std::vector<char> tried(covered_.size(), 0);
    for (std::size_t i : picked_idx) tried[i] = 1;
    for (std::size_t round = 0;
         round < config_.topup_rounds && readings.size() < m; ++round) {
      std::vector<std::size_t> pool;
      for (std::size_t i = 0; i < covered_.size(); ++i) {
        if (!tried[i]) pool.push_back(i);
      }
      if (pool.empty()) break;
      const std::size_t deficit =
          std::min(m - readings.size(), pool.size());
      std::vector<std::size_t> extra_sel =
          rng.sample_without_replacement(pool.size(), deficit);
      std::vector<std::size_t> extra_cells;
      extra_cells.reserve(deficit);
      for (std::size_t j : extra_sel) {
        tried[pool[j]] = 1;
        extra_cells.push_back(covered_[pool[j]]);
      }
      const auto extra = collect_cells(*head, extra_cells, rng, out);
      out.stats.topup_requests += extra_cells.size();
      out.stats.topup_replies += extra.size();
      obs::fr_record(obs::FrEvent::kTopup, config_.zone_id,
                     static_cast<double>(extra.size()));
      if (obs::attached()) {
        obs::add_counter("mw.topup.requests",
                         static_cast<double>(extra_cells.size()));
        obs::add_counter("mw.topup.replies",
                         static_cast<double>(extra.size()));
      }
      readings.insert(readings.end(), extra.begin(), extra.end());
    }
  }

  return reconstruct_readings(readings, std::move(out),
                              /*compressive=*/true);
}

GatherResult NanoCloud::gather_dense(Rng& rng) {
  obs::ScopedSpan span("hier.nanocloud.gather");
  GatherResult out;
  out.m_requested = covered_.size();
  const auto readings = collect_cells(broker_, covered_, rng, out);
  return reconstruct_readings(readings, std::move(out),
                              /*compressive=*/false);
}

std::vector<middleware::Reading> NanoCloud::collect_cells(
    middleware::Broker& head, const std::vector<std::size_t>& cells,
    Rng& rng, GatherResult& out) {
  std::vector<middleware::MobileNode*> targets;
  targets.reserve(cells.size());
  for (std::size_t cell : cells) {
    targets.push_back(&nodes_[cell_to_node_[cell]]);
  }
  const double node_energy_before = total_node_energy_j();
  auto readings = head.collect(targets, config_.sensor,
                               /*sample_index=*/0, rng, &out.stats);
  out.node_energy_j += total_node_energy_j() - node_energy_before;
  out.m_used += readings.size();
  if (obs::attached()) {
    obs::add_counter("hier.nanocloud.nodes_commanded",
                     static_cast<double>(cells.size()));
    obs::add_counter("hier.nanocloud.replies",
                     static_cast<double>(readings.size()));
  }
  return readings;
}

middleware::MobileNode* NanoCloud::elect_standin(GatherResult& out) {
  for (auto& cand : nodes_) {
    if (cand.policy().opted_out()) continue;
    if (cand.battery().depleted()) continue;
    if (config_.injector != nullptr &&
        !config_.injector->node_present(cand.id())) {
      continue;
    }
    // Election broadcast: the stand-in announces itself to every member
    // (one command-sized frame each) before the round proceeds.
    const std::size_t announce = nodes_.size();
    for (std::size_t j = 0; j < announce; ++j) {
      cand.pay_tx(middleware::Broker::kCommandBytes);
    }
    out.stats.bytes_transferred +=
        middleware::Broker::kCommandBytes * announce;
    if (obs::attached()) obs::add_counter("fault.failover.promotions");
    obs::fr_record(obs::FrEvent::kFailover, config_.zone_id,
                   static_cast<double>(cand.id()));
    return &cand;
  }
  return nullptr;  // every member is gone, dead, or opted out
}

GatherResult NanoCloud::reconstruct_readings(
    const std::vector<middleware::Reading>& readings, GatherResult out,
    bool compressive) {
  if (obs::attached()) obs::add_counter("hier.nanocloud.rounds");

  // Build the measurement from the cells whose readings survived.
  // Readings come back in command order; map node -> cell.
  std::vector<std::size_t> got_cells;
  linalg::Vector values;
  linalg::Vector sigmas;
  got_cells.reserve(readings.size());
  for (const auto& r : readings) {
    // Node ids were assigned in covered-cell order starting at 1.
    const std::size_t node_idx = r.node - 1;
    got_cells.push_back(covered_[node_idx]);
    values.push_back(r.value);
    sigmas.push_back(r.sigma);
  }
  // Sort jointly by cell index (MeasurementPlan requires ascending).
  std::vector<std::size_t> order(got_cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return got_cells[a] < got_cells[b];
  });
  std::vector<std::size_t> sorted_cells(order.size());
  linalg::Vector sorted_values(order.size());
  linalg::Vector sorted_sigmas(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted_cells[i] = got_cells[order[i]];
    sorted_values[i] = values[order[i]];
    sorted_sigmas[i] = sigmas[order[i]];
  }

  const std::size_t n = truth_->size();
  if (sorted_cells.empty()) {
    out.reconstruction = field::SpatialField(truth_->width(),
                                             truth_->height());
    out.nrmse = field::field_nrmse(out.reconstruction, *truth_);
    return out;
  }

  auto plan = cs::MeasurementPlan::from_indices(n, sorted_cells);
  cs::Measurement meas{std::move(plan), std::move(sorted_values),
                       cs::SensorNoise{std::move(sorted_sigmas)}};

  linalg::Vector full;
  if (compressive) {
    const auto res = cs::chs_reconstruct(basis_, meas, config_.chs);
    full = res.reconstruction;
    out.support_size = res.support.size();
    out.outliers_rejected = res.outliers_rejected;
    if (res.degraded) out.degraded = true;
  } else {
    // Dense baseline: no model, just interpolate the raw readings onto
    // the grid.
    full = cs::interpolate_to_grid(meas.values, meas.plan.indices(), n,
                                   cs::Interpolation::kLinear);
    out.support_size = meas.values.size();
  }
  out.reconstruction =
      field::SpatialField::from_vector(truth_->width(), truth_->height(),
                                       full);
  out.nrmse = field::field_nrmse(out.reconstruction, *truth_);
  obs::observe("hier.nanocloud.nrmse", out.nrmse);
  return out;
}

double NanoCloud::total_node_energy_j() const noexcept {
  double total = 0.0;
  for (const auto& n : nodes_) total += n.meter().total_j();
  return total;
}

}  // namespace sensedroid::hierarchy
