#include "hierarchy/localcloud.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::hierarchy {

LocalCloud::LocalCloud(const field::SpatialField& truth,
                       const field::ZoneGrid& grid,
                       const NanoCloudConfig& nc_config, Rng& rng,
                       sim::LinkModel uplink)
    : truth_(&truth), grid_(grid), uplink_(uplink) {
  if (truth.width() != grid.field_width() ||
      truth.height() != grid.field_height()) {
    throw std::invalid_argument("LocalCloud: grid/field shape mismatch");
  }
  clouds_.reserve(grid.zone_count());
  zone_truths_.reserve(grid.zone_count());
  for (std::size_t id = 0; id < grid.zone_count(); ++id) {
    zone_truths_.push_back(grid.extract(truth, id));
  }
  for (std::size_t id = 0; id < grid.zone_count(); ++id) {
    NanoCloudConfig zone_config = nc_config;
    zone_config.zone_id = static_cast<std::uint32_t>(id);
    clouds_.emplace_back(zone_truths_[id], zone_config, rng);
  }
}

RegionalResult LocalCloud::gather(const std::vector<ZoneDecision>& decisions,
                                  Rng& rng) {
  if (decisions.size() != clouds_.size()) {
    throw std::invalid_argument("LocalCloud::gather: decision count mismatch");
  }
  std::vector<std::size_t> budget(clouds_.size(), 0);
  std::vector<bool> seen(clouds_.size(), false);
  for (const auto& d : decisions) {
    if (d.zone_id >= clouds_.size() || seen[d.zone_id]) {
      throw std::invalid_argument("LocalCloud::gather: bad zone ids");
    }
    seen[d.zone_id] = true;
    budget[d.zone_id] = d.measurements;
  }

  obs::ScopedSpan span("hier.localcloud.gather");
  RegionalResult out;
  out.reconstruction =
      field::SpatialField(grid_.field_width(), grid_.field_height());
  out.zone_nrmse.resize(clouds_.size(), 0.0);

  // One regional round = one fault round: churn and crash windows evolve
  // here, not per zone, so every zone sees the same fault epoch.
  if (!clouds_.empty() && clouds_.front().config().injector != nullptr) {
    clouds_.front().config().injector->begin_round();
  }

  for (std::size_t id = 0; id < clouds_.size(); ++id) {
    const auto t0 = std::chrono::steady_clock::now();
    auto res = clouds_[id].gather(std::max<std::size_t>(budget[id], 1), rng);
    if (obs::attached()) {
      const auto dt = std::chrono::steady_clock::now() - t0;
      obs::observe("hier.zone.gather_us",
                   {{"zone", std::to_string(id)}},
                   std::chrono::duration<double, std::micro>(dt).count());
    }
    emit_zone_series(static_cast<std::uint32_t>(id), res);
    out.total_measurements += res.m_used;
    out.node_energy_j += res.node_energy_j;
    out.stats += res.stats;
    out.zone_nrmse[id] = res.nrmse;
    if (res.failed_over) ++out.failovers;
    if (res.degraded) ++out.degraded_zones;
    out.outliers_rejected += res.outliers_rejected;
    grid_.insert(out.reconstruction, id, res.reconstruction);

    // Uplink: the NC broker ships its support coefficients to the head.
    const std::size_t bytes = 32 + 16 * res.support_size;
    out.uplink_bytes += bytes;
    out.uplink_energy_j +=
        uplink_.tx_energy_j(bytes) + uplink_.rx_energy_j(bytes);
  }
  out.nrmse = field::field_nrmse(out.reconstruction, *truth_);
  if (obs::attached()) {
    obs::add_counter("hier.localcloud.rounds");
    obs::add_counter("hier.localcloud.zones_gathered",
                     static_cast<double>(clouds_.size()));
    obs::add_counter("hier.localcloud.uplink_bytes",
                     static_cast<double>(out.uplink_bytes));
    obs::observe("hier.localcloud.nrmse", out.nrmse);
  }
  return out;
}

RegionalResult LocalCloud::gather_uniform(std::size_t measurements_per_zone,
                                          Rng& rng) {
  std::vector<ZoneDecision> decisions(clouds_.size());
  for (std::size_t id = 0; id < clouds_.size(); ++id) {
    decisions[id].zone_id = id;
    decisions[id].measurements = measurements_per_zone;
  }
  return gather(decisions, rng);
}

void emit_zone_series(std::uint32_t zone, const GatherResult& res) noexcept {
  if (!obs::attached()) return;
  const obs::Labels l{{"zone", std::to_string(zone)}};
  obs::add_counter("hier.zone.rounds", l, 1.0);
  obs::add_counter("hier.zone.replies", l,
                   static_cast<double>(res.m_used));
  obs::add_counter("hier.zone.requested", l,
                   static_cast<double>(res.m_requested));
  obs::add_counter("hier.zone.energy_j", l,
                   res.node_energy_j + res.stats.broker_energy_j);
  obs::set_gauge("hier.zone.nrmse", l, res.nrmse);
  if (res.degraded) obs::add_counter("hier.zone.degraded_rounds", l, 1.0);
  if (res.failed_over) obs::add_counter("hier.zone.failovers", l, 1.0);
  if (res.stats.radio_failures > 0) {
    obs::add_counter("hier.zone.radio_failures", l,
                     static_cast<double>(res.stats.radio_failures));
  }
  if (res.stats.retries > 0) {
    obs::add_counter("hier.zone.retries", l,
                     static_cast<double>(res.stats.retries));
  }
  if (res.stats.retry_recovered > 0) {
    obs::add_counter("hier.zone.recovered", l,
                     static_cast<double>(res.stats.retry_recovered));
  }
}

}  // namespace sensedroid::hierarchy
