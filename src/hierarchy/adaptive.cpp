#include "hierarchy/adaptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sensedroid::hierarchy {

namespace {

std::vector<ZoneDecision> decide(const std::vector<std::size_t>& sparsity,
                                 const field::ZoneGrid& grid,
                                 const std::vector<ZonePolicy>& policies,
                                 double c) {
  if (!policies.empty() && policies.size() != grid.zone_count()) {
    throw std::invalid_argument("decide_budgets: policy count mismatch");
  }
  std::vector<ZoneDecision> out(grid.zone_count());
  for (std::size_t id = 0; id < grid.zone_count(); ++id) {
    const ZonePolicy policy = policies.empty() ? ZonePolicy{} : policies[id];
    if (policy.criticality < 0.0) {
      throw std::invalid_argument("decide_budgets: negative criticality");
    }
    const std::size_t n = grid.zone(id).size();
    const std::size_t base =
        field::measurements_for_sparsity(sparsity[id], n, c);
    auto m = static_cast<std::size_t>(
        std::ceil(static_cast<double>(base) * policy.criticality));
    m = std::clamp<std::size_t>(m, 1, n);
    out[id] = ZoneDecision{
        id, sparsity[id], m,
        static_cast<double>(m) / static_cast<double>(n)};
  }
  return out;
}

}  // namespace

std::vector<ZoneDecision> decide_budgets_live(
    const field::SpatialField& f, const field::ZoneGrid& grid,
    linalg::BasisKind basis, const std::vector<ZonePolicy>& policies,
    double c) {
  std::vector<std::size_t> sparsity(grid.zone_count());
  for (std::size_t id = 0; id < grid.zone_count(); ++id) {
    const double tol =
        policies.empty() ? ZonePolicy{}.accuracy_tol
                         : policies[id].accuracy_tol;
    sparsity[id] = field::field_sparsity(grid.extract(f, id), basis, tol);
  }
  return decide(sparsity, grid, policies, c);
}

std::vector<ZoneDecision> decide_budgets_from_traces(
    const std::vector<field::TraceSet>& zone_traces,
    const field::ZoneGrid& grid, linalg::BasisKind basis,
    const std::vector<ZonePolicy>& policies, double c) {
  if (zone_traces.size() != grid.zone_count()) {
    throw std::invalid_argument(
        "decide_budgets_from_traces: trace-set count mismatch");
  }
  std::vector<std::size_t> sparsity(grid.zone_count());
  for (std::size_t id = 0; id < grid.zone_count(); ++id) {
    const double tol =
        policies.empty() ? ZonePolicy{}.accuracy_tol
                         : policies[id].accuracy_tol;
    sparsity[id] = field::sparsity_from_traces(zone_traces[id], basis, tol);
  }
  return decide(sparsity, grid, policies, c);
}

std::size_t total_measurements(const std::vector<ZoneDecision>& decisions) {
  std::size_t total = 0;
  for (const auto& d : decisions) total += d.measurements;
  return total;
}

}  // namespace sensedroid::hierarchy
