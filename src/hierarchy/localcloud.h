// The LocalCloud (Fig. 1): a head broker federating the NanoClouds of its
// region.  "This hierarchy allows the nodes to collaborate through the
// broker ... and concatenate the results of the NCs for the local
// region."  The head receives each NC's reconstruction summary (support
// coefficients, not raw samples) and stitches the regional field.
#pragma once

#include <cstddef>
#include <vector>

#include "field/zones.h"
#include "hierarchy/adaptive.h"
#include "hierarchy/nanocloud.h"
#include "sim/radio.h"

namespace sensedroid::hierarchy {

/// Aggregated accounting of one regional gathering round.
struct RegionalResult {
  field::SpatialField reconstruction;   ///< stitched regional field
  double nrmse = 0.0;                   ///< against regional ground truth
  std::size_t total_measurements = 0;   ///< phone readings taken
  std::size_t uplink_bytes = 0;         ///< NC broker -> head traffic
  double uplink_energy_j = 0.0;         ///< radio energy of those uplinks
  double node_energy_j = 0.0;           ///< summed phone energy
  middleware::GatherStats stats;        ///< summed NC gather stats
  std::vector<double> zone_nrmse;       ///< per-zone error map (Fig. 5)
  std::size_t failovers = 0;            ///< zones served by a stand-in broker
  std::size_t degraded_zones = 0;       ///< zones flagged degraded this round
  std::size_t outliers_rejected = 0;    ///< readings screened by MAD, summed
};

/// A LocalCloud over a regional ground-truth field partitioned by a
/// ZoneGrid, one NanoCloud per zone.
class LocalCloud {
 public:
  /// Builds one NC per zone.  `truth` must outlive the cloud.  Each zone's
  /// NanoCloud gets `nc_config` with zone_id overridden to its zone index,
  /// so a FaultPlan CrashWindow targets zones by that index.
  LocalCloud(const field::SpatialField& truth, const field::ZoneGrid& grid,
             const NanoCloudConfig& nc_config, Rng& rng,
             sim::LinkModel uplink = sim::LinkModel::of(sim::RadioKind::kWiFi));

  std::size_t zone_count() const noexcept { return clouds_.size(); }
  NanoCloud& nanocloud(std::size_t id) { return clouds_.at(id); }
  const field::ZoneGrid& grid() const noexcept { return grid_; }
  /// Regional ground truth (what gather() scores nrmse against).
  const field::SpatialField& truth() const noexcept { return *truth_; }
  /// NC-broker -> head uplink radio model (for external drivers like the
  /// parallel campaign runner that replicate gather()'s merge phase).
  const sim::LinkModel& uplink_link() const noexcept { return uplink_; }

  /// Gathers every zone with its decided budget and stitches the region.
  /// `decisions` must have one entry per zone (any order is accepted but
  /// ids must cover 0..Z-1 exactly); throws std::invalid_argument
  /// otherwise.  Uplink traffic models each NC broker shipping its
  /// support coefficients (16 B per coefficient: index + value) plus a
  /// 32 B header to the head broker.  When the NC config carries a fault
  /// injector, each regional round advances it one fault round
  /// (FaultInjector::begin_round) before gathering — standalone NanoCloud
  /// drivers must advance the injector themselves.
  RegionalResult gather(const std::vector<ZoneDecision>& decisions, Rng& rng);

  /// Convenience: uniform budget per zone (the Luo-style non-adaptive
  /// configuration at equal total cost).
  RegionalResult gather_uniform(std::size_t measurements_per_zone, Rng& rng);

 private:
  const field::SpatialField* truth_;
  field::ZoneGrid grid_;
  // Zone ground truths are materialized before the NanoClouds because each
  // NC keeps a pointer to its zone; the vector is fully reserved up front
  // so those pointers stay stable.
  std::vector<field::SpatialField> zone_truths_;
  std::vector<NanoCloud> clouds_;
  sim::LinkModel uplink_;
};

/// Emits one zone's health-input series (counters `hier.zone.rounds` /
/// `degraded_rounds` / `failovers` / `radio_failures` / `retries` /
/// `recovered` / `replies` / `requested` / `energy_j`, gauge
/// `hier.zone.nrmse`), all labelled `{zone="<id>"}` — the inputs
/// obs::HealthEngine scores.  No-op when detached.  Called from the
/// zone-order reduction loops of both gather paths (sequential and
/// ParallelCampaignRunner) so reports from either path stay identical;
/// flag-like series (degraded/failovers/radio_failures/retries/
/// recovered) only appear once nonzero, keeping un-faulted runs' metric
/// set unchanged.
void emit_zone_series(std::uint32_t zone, const GatherResult& res) noexcept;

}  // namespace sensedroid::hierarchy
