// Adaptive per-zone compression control (Fig. 5): "Based on the type of
// sensing field, the signal sparsity, accuracy requirement, the middleware
// broker decides the compression ratio during data aggregation in each
// zone."  Also covers the key-benefit bullets of Section 1: per-region
// sparsity levels, multi-resolution thresholds by size and importance.
#pragma once

#include <cstddef>
#include <vector>

#include "field/sparsity.h"
#include "field/traces.h"
#include "field/zones.h"

namespace sensedroid::hierarchy {

/// Importance weighting of one zone — criticality > 1 buys more samples
/// ("ability to analyze a region with more emphasis based on criticality
/// or knowledge of events").
struct ZonePolicy {
  double criticality = 1.0;        ///< >= 0; multiplies the sample budget
  double accuracy_tol = 0.05;      ///< sparsity-estimation tolerance
};

/// Decision per zone.
struct ZoneDecision {
  std::size_t zone_id = 0;
  std::size_t sparsity = 0;        ///< estimated K_z
  std::size_t measurements = 0;    ///< decided M_z
  double compression_ratio = 0.0;  ///< M_z / N_z
};

/// Decides M_z = clamp(criticality * c * K_z * log N_z) per zone from the
/// *live* field (oracle sparsity — an upper bound used for analysis).
/// `policies` may be empty (all defaults) or one entry per zone; any other
/// size throws std::invalid_argument.
std::vector<ZoneDecision> decide_budgets_live(
    const field::SpatialField& f, const field::ZoneGrid& grid,
    linalg::BasisKind basis, const std::vector<ZonePolicy>& policies = {},
    double c = 1.5);

/// Decides budgets from historical traces per zone (the deployable path:
/// "often prior available data about the local regions can be exploited").
/// `zone_traces[id]` holds that zone's history; throws when counts
/// mismatch or any trace set is empty.
std::vector<ZoneDecision> decide_budgets_from_traces(
    const std::vector<field::TraceSet>& zone_traces,
    const field::ZoneGrid& grid, linalg::BasisKind basis,
    const std::vector<ZonePolicy>& policies = {}, double c = 1.5);

/// Total measurements across a decision set.
std::size_t total_measurements(const std::vector<ZoneDecision>& decisions);

}  // namespace sensedroid::hierarchy
