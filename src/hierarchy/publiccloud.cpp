#include "hierarchy/publiccloud.h"

#include <stdexcept>

namespace sensedroid::hierarchy {

PublicCloud::PublicCloud(std::size_t width, std::size_t height)
    : field_(width, height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("PublicCloud: zero dimensions");
  }
}

void PublicCloud::integrate(const RegionPlacement& where,
                            const field::SpatialField& regional,
                            double timestamp) {
  field_.insert(where.i0, where.j0, regional);  // throws if it doesn't fit
  ++integrated_;
  last_update_ = timestamp;
}

double PublicCloud::value_at(std::size_t i, std::size_t j) const {
  return field_.at(i, j);
}

double PublicCloud::region_mean(std::size_t i0, std::size_t j0,
                                std::size_t w, std::size_t h) const {
  return field_.extract(i0, j0, w, h).mean();
}

std::vector<PublicCloud::HotSpot> PublicCloud::cells_above(
    double threshold) const {
  std::vector<HotSpot> out;
  for (std::size_t j = 0; j < field_.width(); ++j) {
    for (std::size_t i = 0; i < field_.height(); ++i) {
      if (field_(i, j) > threshold) out.push_back(HotSpot{i, j, field_(i, j)});
    }
  }
  return out;
}

}  // namespace sensedroid::hierarchy
