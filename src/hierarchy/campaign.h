// Continuous sensing campaigns: the paper's applications monitor fields
// over time ("continuous monitoring can largely drain the battery",
// Section 5), so gathering is not one round but a schedule of rounds on
// the discrete-event simulator, with the budget optionally controlled by
// the adaptive sampler between rounds.
#pragma once

#include <cstddef>
#include <vector>

#include "hierarchy/nanocloud.h"
#include "scheduling/adaptive_sampling.h"
#include "sim/event_sim.h"

namespace sensedroid::hierarchy {

/// One round's outcome within a campaign.
struct RoundReport {
  double time_s = 0.0;
  std::size_t budget = 0;        ///< measurements requested
  std::size_t m_used = 0;        ///< readings that arrived
  double nrmse = 0.0;
  double fleet_energy_j = 0.0;   ///< cumulative phone energy so far
};

/// Periodic gathering over one NanoCloud.
class SensingCampaign {
 public:
  struct Config {
    double period_s = 60.0;
    std::size_t rounds = 10;
    std::size_t initial_budget = 32;
    /// When true, the budget follows an AdaptiveSampler fed with each
    /// round's NRMSE; otherwise it stays fixed at initial_budget.
    bool adaptive = false;
    scheduling::AdaptiveSampler::Params sampler{};
  };

  /// `cloud` and `sim` must outlive the campaign.  Throws
  /// std::invalid_argument for zero rounds or non-positive period.
  SensingCampaign(NanoCloud& cloud, sim::Simulator& sim,
                  const Config& config);

  /// Schedules all rounds and runs the simulator to completion.
  /// Returns per-round reports in time order.
  std::vector<RoundReport> run(linalg::Rng& rng);

 private:
  NanoCloud& cloud_;
  sim::Simulator& sim_;
  Config config_;
};

}  // namespace sensedroid::hierarchy
