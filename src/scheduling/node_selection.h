// Broker-side node-selection strategies (Section 5: "Research in the
// direction of sensor scheduling, adaptive sampling, and compressive
// sampling and their novel combinations within the framework provide new
// research opportunities for energy-efficiency.")
//
// The broker must choose WHICH m of its candidate nodes to telemeter each
// round.  Pure random sampling (the CS-theoretic default) ignores battery
// state and hammers unlucky phones; battery-aware and round-robin
// variants spread the load — experiment E14 measures the fleet-lifetime
// consequences.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/random.h"

namespace sensedroid::scheduling {

using linalg::Rng;

/// What the broker knows about each candidate when selecting.
struct Candidate {
  std::uint32_t id = 0;
  double state_of_charge = 1.0;  ///< battery SoC in [0, 1]
  double reputation = 1.0;       ///< data-quality weight
  std::uint64_t times_selected = 0;
};

enum class SelectionPolicy : std::uint8_t {
  kRandom,              ///< uniform random (CS default)
  kBatteryAware,        ///< probability proportional to SoC
  kRoundRobin,          ///< least-recently-selected first
  kReputationWeighted,  ///< probability proportional to reputation
};

/// Human-readable name.
std::string to_string(SelectionPolicy policy);

/// Picks m distinct candidates per the policy.  m is clamped to the
/// candidate count; candidates with a dead battery (SoC <= 0) are never
/// selected.  Returns indices into `candidates`, sorted ascending.
/// Random/weighted draws consume `rng`.
std::vector<std::size_t> select_nodes(std::vector<Candidate>& candidates,
                                      std::size_t m, SelectionPolicy policy,
                                      Rng& rng);

}  // namespace sensedroid::scheduling
