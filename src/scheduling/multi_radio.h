// Multi-radio link selection (Section 5, "Heterogeneity in Mobile
// Cloud"): "support for more power efficient networks like Bluetooth can
// be considered to support the nanocloud architecture."  A node carrying
// several radios picks per message: the cheapest radio that reaches the
// destination within the application's latency tolerance.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/radio.h"

namespace sensedroid::scheduling {

/// One message's delivery requirements.
struct MessageRequirements {
  std::size_t bytes = 64;
  double distance_m = 10.0;
  double max_latency_s = 1.0;      ///< transfer must fit within this
  double min_reliability = 0.5;    ///< required delivery probability
};

/// Decision + predicted cost of the chosen radio.
struct RadioChoice {
  sim::RadioKind kind = sim::RadioKind::kWiFi;
  double energy_j = 0.0;        ///< sender-side energy
  double latency_s = 0.0;       ///< predicted transfer time
  double reliability = 0.0;     ///< predicted delivery probability
};

/// Picks the minimum-TX-energy radio among `radios` that satisfies the
/// requirements; nullopt when none qualifies (caller falls back to
/// store-and-forward).  Ties resolve toward lower latency.
std::optional<RadioChoice> choose_radio(
    const std::vector<sim::LinkModel>& radios,
    const MessageRequirements& req);

/// The standard phone radio set: Bluetooth + WiFi + GSM.
std::vector<sim::LinkModel> standard_phone_radios();

}  // namespace sensedroid::scheduling
