#include "scheduling/adaptive_sampling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sensedroid::scheduling {

AdaptiveSampler::AdaptiveSampler(const Params& params)
    : params_(params), m_(params.m_initial) {
  if (params.m_min == 0 || params.m_min > params.m_max ||
      params.m_initial < params.m_min || params.m_initial > params.m_max) {
    throw std::invalid_argument("AdaptiveSampler: inconsistent budgets");
  }
  if (params.grow <= 1.0 || params.target_error <= 0.0 ||
      params.deadband < 0.0 || params.deadband >= 1.0) {
    throw std::invalid_argument("AdaptiveSampler: bad control parameters");
  }
}

std::size_t AdaptiveSampler::observe(double error) {
  if (error < 0.0) {
    throw std::invalid_argument("AdaptiveSampler::observe: negative error");
  }
  if (error > params_.target_error) {
    const auto grown = static_cast<std::size_t>(
        std::ceil(static_cast<double>(m_) * params_.grow));
    m_ = std::min(grown, params_.m_max);
  } else if (error < params_.target_error * (1.0 - params_.deadband)) {
    m_ = m_ > params_.m_min + params_.shrink ? m_ - params_.shrink
                                             : params_.m_min;
  }
  return m_;
}

HysteresisDutyCycler::HysteresisDutyCycler(const Params& params)
    : params_(params) {
  if (params.lower < 0.0 || params.lower >= params.upper ||
      params.upper > 1.0) {
    throw std::invalid_argument(
        "HysteresisDutyCycler: need 0 <= lower < upper <= 1");
  }
}

bool HysteresisDutyCycler::update(double confidence) {
  if (confidence < params_.lower) {
    on_ = true;
    streak_ = 0;
  } else if (confidence > params_.upper) {
    if (on_) {
      ++streak_;
      if (streak_ >= params_.on_streak) {
        on_ = false;
        streak_ = 0;
      }
    }
  } else {
    streak_ = 0;  // inside the hysteresis band: hold state
  }
  return on_;
}

}  // namespace sensedroid::scheduling
