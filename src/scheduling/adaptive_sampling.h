// Adaptive sampling controllers (Section 5): tune the per-window
// measurement budget to the observed reconstruction quality, and duty-
// cycle expensive sensors with hysteresis so confident contexts shut
// them off (the ACE/RAPS-style schemes the paper cites).
#pragma once

#include <cstddef>

namespace sensedroid::scheduling {

/// Multiplicative-increase / additive-decrease budget controller: when
/// the observed error exceeds the target, the budget grows by `grow`
/// (fast recovery); when it is comfortably below, the budget shrinks by
/// `shrink` samples (cautious saving).
class AdaptiveSampler {
 public:
  struct Params {
    std::size_t m_min = 8;
    std::size_t m_max = 256;
    std::size_t m_initial = 64;
    double target_error = 0.1;   ///< NRMSE the application tolerates
    double deadband = 0.2;       ///< shrink only below target*(1-deadband)
    double grow = 1.5;           ///< multiplicative increase factor
    std::size_t shrink = 4;      ///< additive decrease (samples)
  };

  /// Throws std::invalid_argument on an inconsistent parameter set
  /// (m_min > m_max, initial outside the range, grow <= 1, ...).
  explicit AdaptiveSampler(const Params& params);

  /// Current budget for the next window.
  std::size_t budget() const noexcept { return m_; }

  /// Feeds the error observed with the current budget; returns the new
  /// budget.  Errors must be >= 0.
  std::size_t observe(double error);

 private:
  Params params_;
  std::size_t m_;
};

/// Hysteresis duty-cycler for an expensive sensor gated by a confidence
/// score: the sensor turns OFF when the score stays above `upper` for
/// `on_streak` updates and back ON as soon as it dips below `lower`.
/// The two-threshold gap prevents flapping at the boundary.
class HysteresisDutyCycler {
 public:
  struct Params {
    double lower = 0.4;
    double upper = 0.8;
    std::size_t on_streak = 3;
  };

  /// Throws std::invalid_argument unless 0 <= lower < upper <= 1.
  explicit HysteresisDutyCycler(const Params& params);

  /// Feeds one confidence observation; returns whether the sensor should
  /// be ON for the next window.
  bool update(double confidence);

  bool is_on() const noexcept { return on_; }

 private:
  Params params_;
  bool on_ = true;
  std::size_t streak_ = 0;
};

}  // namespace sensedroid::scheduling
