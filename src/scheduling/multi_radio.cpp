#include "scheduling/multi_radio.h"

namespace sensedroid::scheduling {

std::optional<RadioChoice> choose_radio(
    const std::vector<sim::LinkModel>& radios,
    const MessageRequirements& req) {
  std::optional<RadioChoice> best;
  for (const auto& link : radios) {
    const double reliability = link.delivery_probability(req.distance_m);
    if (reliability < req.min_reliability) continue;
    const double latency = link.transfer_time_s(req.bytes);
    if (latency > req.max_latency_s) continue;
    const double energy = link.tx_energy_j(req.bytes);
    const bool better =
        !best.has_value() || energy < best->energy_j ||
        (energy == best->energy_j && latency < best->latency_s);
    if (better) {
      best = RadioChoice{link.kind, energy, latency, reliability};
    }
  }
  return best;
}

std::vector<sim::LinkModel> standard_phone_radios() {
  return {sim::LinkModel::of(sim::RadioKind::kBluetooth),
          sim::LinkModel::of(sim::RadioKind::kWiFi),
          sim::LinkModel::of(sim::RadioKind::kGsm)};
}

}  // namespace sensedroid::scheduling
