#include "scheduling/node_selection.h"

#include <algorithm>
#include <numeric>

namespace sensedroid::scheduling {

std::string to_string(SelectionPolicy policy) {
  switch (policy) {
    case SelectionPolicy::kRandom: return "random";
    case SelectionPolicy::kBatteryAware: return "battery-aware";
    case SelectionPolicy::kRoundRobin: return "round-robin";
    case SelectionPolicy::kReputationWeighted: return "reputation";
  }
  return "unknown";
}

namespace {

// Weighted sampling without replacement by repeated draws over the
// remaining mass (populations are NanoCloud-sized, so O(m*n) is fine).
std::vector<std::size_t> weighted_sample(const std::vector<double>& weight,
                                         std::size_t m, Rng& rng) {
  std::vector<std::size_t> chosen;
  std::vector<double> w = weight;
  for (std::size_t pick = 0; pick < m; ++pick) {
    const double total = std::accumulate(w.begin(), w.end(), 0.0);
    if (total <= 0.0) break;
    double target = rng.uniform(0.0, total);
    std::size_t idx = w.size() - 1;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (w[i] <= 0.0) continue;
      if (target < w[i]) {
        idx = i;
        break;
      }
      target -= w[i];
    }
    chosen.push_back(idx);
    w[idx] = 0.0;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace

std::vector<std::size_t> select_nodes(std::vector<Candidate>& candidates,
                                      std::size_t m, SelectionPolicy policy,
                                      Rng& rng) {
  // Eligible = alive.
  std::vector<std::size_t> alive;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].state_of_charge > 0.0) alive.push_back(i);
  }
  m = std::min(m, alive.size());
  if (m == 0) return {};

  std::vector<std::size_t> chosen;
  switch (policy) {
    case SelectionPolicy::kRandom: {
      const auto pick = rng.sample_without_replacement(alive.size(), m);
      for (std::size_t p : pick) chosen.push_back(alive[p]);
      break;
    }
    case SelectionPolicy::kBatteryAware: {
      std::vector<double> w(alive.size());
      for (std::size_t i = 0; i < alive.size(); ++i) {
        // Squared SoC: strongly avoid nearly-empty phones.
        const double soc = candidates[alive[i]].state_of_charge;
        w[i] = soc * soc;
      }
      for (std::size_t p : weighted_sample(w, m, rng)) {
        chosen.push_back(alive[p]);
      }
      break;
    }
    case SelectionPolicy::kRoundRobin: {
      std::vector<std::size_t> order = alive;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return candidates[a].times_selected <
                                candidates[b].times_selected;
                       });
      order.resize(m);
      chosen = std::move(order);
      break;
    }
    case SelectionPolicy::kReputationWeighted: {
      std::vector<double> w(alive.size());
      for (std::size_t i = 0; i < alive.size(); ++i) {
        w[i] = std::max(candidates[alive[i]].reputation, 1e-6);
      }
      for (std::size_t p : weighted_sample(w, m, rng)) {
        chosen.push_back(alive[p]);
      }
      break;
    }
  }
  std::sort(chosen.begin(), chosen.end());
  for (std::size_t i : chosen) ++candidates[i].times_selected;
  return chosen;
}

}  // namespace sensedroid::scheduling
