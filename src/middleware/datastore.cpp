#include "middleware/datastore.h"

#include <stdexcept>

namespace sensedroid::middleware {

bool RecordFilter::matches(const Record& r) const noexcept {
  if (node.has_value() && r.node != *node) return false;
  if (sensor.has_value() && r.sensor != *sensor) return false;
  if (r.timestamp < t_min || r.timestamp > t_max) return false;
  if (value_min.has_value() && r.value < *value_min) return false;
  if (value_max.has_value() && r.value > *value_max) return false;
  return true;
}

DataStore::DataStore(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("DataStore: capacity must be positive");
  }
}

void DataStore::insert(const Record& r) {
  if (records_.size() == capacity_) {
    records_.pop_front();
    ++evicted_;
  }
  records_.push_back(r);
}

std::vector<Record> DataStore::query(const RecordFilter& filter) const {
  std::vector<Record> out;
  for (const Record& r : records_) {
    if (filter.matches(r)) out.push_back(r);
  }
  return out;
}

std::size_t DataStore::count(const RecordFilter& filter) const {
  std::size_t n = 0;
  for (const Record& r : records_) {
    if (filter.matches(r)) ++n;
  }
  return n;
}

std::optional<Record> DataStore::latest(const RecordFilter& filter) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (filter.matches(*it)) return *it;
  }
  return std::nullopt;
}

std::optional<double> DataStore::mean_value(const RecordFilter& filter) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const Record& r : records_) {
    if (filter.matches(r)) {
      sum += r.value;
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

void DataStore::for_each(const RecordFilter& filter,
                         const std::function<void(const Record&)>& fn) const {
  for (const Record& r : records_) {
    if (filter.matches(r)) fn(r);
  }
}

}  // namespace sensedroid::middleware
