#include "middleware/reputation.h"

#include <algorithm>
#include <cmath>

namespace sensedroid::middleware {

ReputationTracker::ReputationTracker() : ReputationTracker(Params{}) {}

ReputationTracker::ReputationTracker(const Params& params)
    : params_(params) {}

double ReputationTracker::update(NodeId node, double reading,
                                 double consensus, double sigma) {
  const double s = std::max(sigma, 1e-6);
  const double z = std::abs(reading - consensus) / s;
  // Consistency of this single observation: 1 at z=0, 0.5 at z=tolerance,
  // -> 0 as z grows (logistic in z/tolerance).
  const double consistency =
      1.0 / (1.0 + std::pow(z / params_.tolerance, 2.0));
  auto [it, inserted] = scores_.try_emplace(node, 1.0);
  it->second = params_.memory * it->second +
               (1.0 - params_.memory) * consistency;
  return it->second;
}

double ReputationTracker::score(NodeId node) const {
  const auto it = scores_.find(node);
  return it == scores_.end() ? 1.0 : it->second;
}

std::vector<NodeId> ReputationTracker::flagged() const {
  std::vector<NodeId> out;
  for (const auto& [node, s] : scores_) {
    if (s < params_.flag_threshold) out.push_back(node);
  }
  std::sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
    const double sa = scores_.at(a);
    const double sb = scores_.at(b);
    return sa < sb || (sa == sb && a < b);
  });
  return out;
}

}  // namespace sensedroid::middleware
