#include "middleware/query.h"

#include <algorithm>
#include <utility>

namespace sensedroid::middleware {

QueryService::QueryService(DataStore& store) : store_(store) {}

std::vector<Record> QueryService::query(const RecordFilter& filter) const {
  return store_.query(filter);
}

std::size_t QueryService::count(const RecordFilter& filter) const {
  return store_.count(filter);
}

std::optional<double> QueryService::mean(const RecordFilter& filter) const {
  return store_.mean_value(filter);
}

std::optional<Record> QueryService::latest(const RecordFilter& filter) const {
  return store_.latest(filter);
}

QueryService::ContinuousId QueryService::subscribe(const RecordFilter& filter,
                                                   Handler handler) {
  continuous_.push_back(Continuous{next_id_, filter, std::move(handler)});
  return next_id_++;
}

bool QueryService::unsubscribe(ContinuousId id) {
  const auto it =
      std::find_if(continuous_.begin(), continuous_.end(),
                   [&](const Continuous& c) { return c.id == id; });
  if (it == continuous_.end()) return false;
  continuous_.erase(it);
  return true;
}

std::size_t QueryService::ingest(const Record& r) {
  store_.insert(r);
  std::size_t notified = 0;
  // Snapshot handlers so one may unsubscribe during delivery.
  std::vector<Handler> to_run;
  for (const Continuous& c : continuous_) {
    if (c.filter.matches(r)) to_run.push_back(c.handler);
  }
  for (const auto& h : to_run) {
    h(r);
    ++notified;
  }
  return notified;
}

}  // namespace sensedroid::middleware
