// Topic-based publish/subscribe bus — the "Communication and
// Collaboration" library of SenseDroid: dissemination of collective
// information among mobile nodes through the broker (Fig. 2) supports
// both client-server and peer-to-peer topologies; a shared bus per
// NanoCloud models the broker-relayed case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "linalg/matrix.h"
#include "middleware/datastore.h"

namespace sensedroid::middleware {

/// Message payloads the middleware moves: scalar telemetry, whole sample
/// vectors (compressive batches), text (control), or a sensor record.
using Payload = std::variant<double, linalg::Vector, std::string, Record>;

struct Message {
  std::string topic;
  NodeId sender = 0;
  double timestamp = 0.0;
  Payload payload;
};

/// Approximate wire size of a message in bytes (for radio cost
/// accounting): header of 24 B + payload.
std::size_t wire_size(const Message& msg) noexcept;

/// Synchronous topic bus with exact-topic and prefix subscriptions.
class PubSubBus {
 public:
  using Handler = std::function<void(const Message&)>;
  using SubscriptionId = std::uint64_t;

  /// Subscribes to an exact topic.  Returns an id for unsubscribe.
  SubscriptionId subscribe(const std::string& topic, Handler handler);

  /// Subscribes to every topic starting with `prefix` ("sensor/" style
  /// hierarchical filters).
  SubscriptionId subscribe_prefix(const std::string& prefix, Handler handler);

  /// Removes a subscription; returns false for unknown ids.
  bool unsubscribe(SubscriptionId id);

  /// Delivers synchronously to all matching subscribers (subscription
  /// order).  Returns the number of handlers invoked.
  std::size_t publish(const Message& msg);

  std::size_t subscription_count() const noexcept { return subs_.size(); }
  std::size_t published_count() const noexcept { return published_; }

 private:
  struct Sub {
    SubscriptionId id;
    std::string key;
    bool prefix;
    Handler handler;
  };
  std::vector<Sub> subs_;
  SubscriptionId next_id_ = 1;
  std::size_t published_ = 0;
};

}  // namespace sensedroid::middleware
