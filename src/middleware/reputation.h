// Data-quality reputation: the broker can score each phone by how well
// its readings agree with the reconstructed field at its location — the
// reconstruction is the crowd's consensus, so persistent disagreement
// marks a faulty or malicious sensor.  The scores feed the reputation-
// weighted node selection (scheduling::SelectionPolicy::kReputationWeighted)
// and recruitment (incentives::recruit_greedy), closing the quality loop.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "middleware/datastore.h"

namespace sensedroid::middleware {

/// Exponential-moving-average consistency tracker.
class ReputationTracker {
 public:
  struct Params {
    /// EMA factor: weight of history per update (0.9 = slow to forgive).
    double memory = 0.9;
    /// Disagreements are normalized by the declared sensor sigma; a
    /// residual of `tolerance` sigmas scores 0.5.
    double tolerance = 3.0;
    /// Score below which a node is flagged as suspect.
    double flag_threshold = 0.3;
  };

  ReputationTracker();
  explicit ReputationTracker(const Params& params);

  /// Feeds one observation: the node reported `reading` where the
  /// consensus reconstruction says `consensus`, with declared noise
  /// `sigma` (> 0; clamped to a small floor otherwise).  Returns the
  /// node's updated score in [0, 1].
  double update(NodeId node, double reading, double consensus, double sigma);

  /// Current score; unseen nodes start at 1 (benefit of the doubt).
  double score(NodeId node) const;

  /// Nodes currently below the flag threshold, ascending by score.
  std::vector<NodeId> flagged() const;

  std::size_t observed_nodes() const noexcept { return scores_.size(); }

 private:
  Params params_;
  std::unordered_map<NodeId, double> scores_;
};

}  // namespace sensedroid::middleware
