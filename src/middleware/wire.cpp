#include "middleware/wire.h"

#include <array>
#include <cstring>
#include <stdexcept>

namespace sensedroid::middleware {

namespace {

// Byte-at-a-time CRC-32 with a lazily built table.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

// Bounds-checked reader over the frame.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  bool ok() const noexcept { return ok_; }
  std::size_t pos() const noexcept { return pos_; }

  std::uint8_t u8() { return ok_ && need(1) ? data_[pos_++] : fail(); }
  std::uint16_t u16() {
    if (!ok_ || !need(2)) return fail();
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!ok_ || !need(4)) return fail();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  double f64() {
    if (!ok_ || !need(8)) {
      fail();
      return 0.0;
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str(std::size_t len) {
    if (!ok_ || !need(len)) {
      fail();
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

 private:
  bool need(std::size_t n) const noexcept {
    return pos_ + n <= data_.size();
  }
  std::uint8_t fail() {
    ok_ = false;
    return 0;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  const auto& table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_message(const Message& msg) {
  if (msg.topic.size() > 0xFFFF) {
    throw std::invalid_argument("encode_message: topic too long");
  }
  std::vector<std::uint8_t> out;
  out.reserve(64 + msg.topic.size());
  put_u16(out, static_cast<std::uint16_t>(msg.topic.size()));
  out.insert(out.end(), msg.topic.begin(), msg.topic.end());
  put_u32(out, msg.sender);
  put_f64(out, msg.timestamp);

  struct Visitor {
    std::vector<std::uint8_t>& out;
    void operator()(double v) const {
      out.push_back(0);
      put_f64(out, v);
    }
    void operator()(const linalg::Vector& v) const {
      out.push_back(1);
      put_u32(out, static_cast<std::uint32_t>(v.size()));
      for (double x : v) put_f64(out, x);
    }
    void operator()(const std::string& s) const {
      out.push_back(2);
      put_u32(out, static_cast<std::uint32_t>(s.size()));
      out.insert(out.end(), s.begin(), s.end());
    }
    void operator()(const Record& r) const {
      out.push_back(3);
      put_u32(out, r.node);
      out.push_back(static_cast<std::uint8_t>(r.sensor));
      put_f64(out, r.timestamp);
      put_f64(out, r.value);
    }
  };
  std::visit(Visitor{out}, msg.payload);

  put_u32(out, crc32(out));
  return out;
}

std::optional<Message> decode_message(std::span<const std::uint8_t> frame) {
  if (frame.size() < kMinFrameBytes || frame.size() > kMaxFrameBytes) {
    return std::nullopt;
  }
  const std::size_t body_len = frame.size() - 4;
  // Verify the trailer first: cheap rejection of corrupt frames.
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(frame[body_len + i]) << (8 * i);
  }
  if (crc32(frame.first(body_len)) != stored) return std::nullopt;

  Reader r(frame.first(body_len));
  Message msg;
  const std::uint16_t topic_len = r.u16();
  msg.topic = r.str(topic_len);
  msg.sender = r.u32();
  msg.timestamp = r.f64();
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case 0:
      msg.payload = r.f64();
      break;
    case 1: {
      const std::uint32_t count = r.u32();
      // Guard: the remaining bytes must actually hold `count` doubles.
      if (!r.ok() || body_len - r.pos() < 8ull * count) return std::nullopt;
      linalg::Vector v(count);
      for (auto& x : v) x = r.f64();
      msg.payload = std::move(v);
      break;
    }
    case 2: {
      const std::uint32_t len = r.u32();
      if (!r.ok() || body_len - r.pos() < len) return std::nullopt;
      msg.payload = r.str(len);
      break;
    }
    case 3: {
      Record rec;
      rec.node = r.u32();
      const std::uint8_t sensor = r.u8();
      if (sensor >= sensing::kSensorKindCount) return std::nullopt;
      rec.sensor = static_cast<sensing::SensorKind>(sensor);
      rec.timestamp = r.f64();
      rec.value = r.f64();
      msg.payload = rec;
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.ok() || r.pos() != body_len) return std::nullopt;
  return msg;
}

}  // namespace sensedroid::middleware
