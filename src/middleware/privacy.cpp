#include "middleware/privacy.h"

#include <cmath>
#include <stdexcept>

namespace sensedroid::middleware {

PrivacyPolicy::PrivacyPolicy() { allowed_.fill(true); }

PrivacyPolicy PrivacyPolicy::opt_out() {
  PrivacyPolicy p;
  p.allowed_.fill(false);
  p.opted_out_ = true;
  return p;
}

void PrivacyPolicy::set_sensor_allowed(sensing::SensorKind kind,
                                       bool allowed) {
  allowed_[static_cast<std::size_t>(kind)] = allowed;
}

bool PrivacyPolicy::sensor_allowed(sensing::SensorKind kind) const {
  return !opted_out_ && allowed_[static_cast<std::size_t>(kind)];
}

void PrivacyPolicy::set_location_granularity_m(double g) {
  if (g < 0.0) {
    throw std::invalid_argument(
        "PrivacyPolicy: granularity must be non-negative");
  }
  granularity_m_ = g;
}

std::optional<Record> PrivacyPolicy::filter(const Record& r) const {
  if (!sensor_allowed(r.sensor)) return std::nullopt;
  return r;
}

sim::Point PrivacyPolicy::blur(const sim::Point& p) const noexcept {
  if (granularity_m_ <= 0.0) return p;
  return {std::round(p.x / granularity_m_) * granularity_m_,
          std::round(p.y / granularity_m_) * granularity_m_};
}

}  // namespace sensedroid::middleware
