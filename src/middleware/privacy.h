// Privacy regulation (Section 5): "transparency, full user control ...
// User can fully set or control their preferences, enable or disable
// features, control of the type of sensors and parameter that can be
// shared ... In the worst case, the user can opt-out".
#pragma once

#include <array>
#include <optional>

#include "middleware/datastore.h"
#include "sensing/sensor.h"
#include "sim/geometry.h"

namespace sensedroid::middleware {

/// Per-user sharing policy, applied at the node boundary before anything
/// leaves the device.
class PrivacyPolicy {
 public:
  /// Default policy: share everything (the user opted in at install).
  PrivacyPolicy();

  /// Fully opted-out policy: shares nothing.
  static PrivacyPolicy opt_out();

  /// Enables/disables sharing of one sensor kind.
  void set_sensor_allowed(sensing::SensorKind kind, bool allowed);
  bool sensor_allowed(sensing::SensorKind kind) const;

  /// Spatial granularity: positions shared outward are snapped to a grid
  /// of this size in meters (0 = exact).  Throws on negative.
  void set_location_granularity_m(double g);
  double location_granularity_m() const noexcept { return granularity_m_; }

  /// Global opt-out switch.
  void set_opted_out(bool v) noexcept { opted_out_ = v; }
  bool opted_out() const noexcept { return opted_out_; }

  /// Applies the policy to an outgoing record: nullopt when the record
  /// must not leave the device.
  std::optional<Record> filter(const Record& r) const;

  /// Applies the location granularity to a position.
  sim::Point blur(const sim::Point& p) const noexcept;

 private:
  std::array<bool, sensing::kSensorKindCount> allowed_{};
  double granularity_m_ = 0.0;
  bool opted_out_ = false;
};

}  // namespace sensedroid::middleware
