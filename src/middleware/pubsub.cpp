#include "middleware/pubsub.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace sensedroid::middleware {

std::size_t wire_size(const Message& msg) noexcept {
  constexpr std::size_t kHeader = 24;
  struct Visitor {
    std::size_t operator()(double) const noexcept { return 8; }
    std::size_t operator()(const linalg::Vector& v) const noexcept {
      return 8 * v.size();
    }
    std::size_t operator()(const std::string& s) const noexcept {
      return s.size();
    }
    std::size_t operator()(const Record&) const noexcept {
      return sizeof(Record);
    }
  };
  return kHeader + msg.topic.size() + std::visit(Visitor{}, msg.payload);
}

PubSubBus::SubscriptionId PubSubBus::subscribe(const std::string& topic,
                                               Handler handler) {
  subs_.push_back(Sub{next_id_, topic, false, std::move(handler)});
  return next_id_++;
}

PubSubBus::SubscriptionId PubSubBus::subscribe_prefix(
    const std::string& prefix, Handler handler) {
  subs_.push_back(Sub{next_id_, prefix, true, std::move(handler)});
  return next_id_++;
}

bool PubSubBus::unsubscribe(SubscriptionId id) {
  const auto it = std::find_if(subs_.begin(), subs_.end(),
                               [&](const Sub& s) { return s.id == id; });
  if (it == subs_.end()) return false;
  subs_.erase(it);
  return true;
}

std::size_t PubSubBus::publish(const Message& msg) {
  ++published_;
  std::size_t delivered = 0;
  // Copy matching handlers first so handlers may (un)subscribe safely.
  std::vector<Handler> to_run;
  for (const Sub& s : subs_) {
    const bool match =
        s.prefix ? msg.topic.compare(0, s.key.size(), s.key) == 0
                 : msg.topic == s.key;
    if (match) to_run.push_back(s.handler);
  }
  if (obs::attached()) {
    obs::add_counter("mw.pubsub.published");
    obs::add_counter("mw.pubsub.bytes",
                     static_cast<double>(wire_size(msg)));
    obs::observe("mw.pubsub.fanout", static_cast<double>(to_run.size()));
    obs::set_gauge("mw.pubsub.subscriptions",
                   static_cast<double>(subs_.size()));
  }
  for (const auto& h : to_run) {
    h(msg);
    ++delivered;
  }
  obs::add_counter("mw.pubsub.delivered", static_cast<double>(delivered));
  return delivered;
}

}  // namespace sensedroid::middleware
