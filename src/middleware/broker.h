// The NanoCloud broker (Fig. 2): orchestrates the nodes of its cloud —
// discovery, measurement telemetry, logging, query, and dissemination.
//
// "The broker performs stochastic (random) spatial sampling in various
// nodes ... the broker initiates these measurements by commanding and
// telemetering the selected nodes with the sensor."
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/random.h"
#include "middleware/datastore.h"
#include "middleware/discovery.h"
#include "middleware/node.h"
#include "middleware/pubsub.h"
#include "middleware/query.h"
#include "sim/radio.h"

namespace sensedroid::middleware {

/// Message/energy accounting of one gathering round.
struct GatherStats {
  std::size_t commands_sent = 0;
  std::size_t replies_received = 0;
  std::size_t radio_failures = 0;   ///< lost commands or replies
  std::size_t node_refusals = 0;    ///< privacy/battery/absent-sensor
  std::size_t bytes_transferred = 0;
  double broker_energy_j = 0.0;     ///< broker-side radio energy

  GatherStats& operator+=(const GatherStats& rhs) noexcept;
};

/// One successful reading in a round.
struct Reading {
  NodeId node = 0;
  double value = 0.0;
  double sigma = 0.0;  ///< reporting sensor's noise sigma (for GLS)
};

/// Broker of one NanoCloud.  Owns the cloud-local middleware services.
class Broker {
 public:
  static constexpr std::size_t kCommandBytes = 32;
  static constexpr std::size_t kReplyBytes = 32;

  Broker(NodeId id, sim::Point position,
         sim::LinkModel link = sim::LinkModel::of(sim::RadioKind::kWiFi));

  NodeId id() const noexcept { return id_; }
  const sim::Point& position() const noexcept { return position_; }
  void set_position(const sim::Point& p) noexcept { position_ = p; }

  ServiceRegistry& registry() noexcept { return registry_; }
  const ServiceRegistry& registry() const noexcept { return registry_; }
  DataStore& store() noexcept { return store_; }
  QueryService& queries() noexcept { return queries_; }
  PubSubBus& bus() noexcept { return bus_; }
  const sim::EnergyMeter& meter() const noexcept { return meter_; }

  /// Registers a node into this cloud (honors the node's privacy policy;
  /// opted-out nodes are silently skipped).  Returns whether registered.
  bool enroll(const MobileNode& node);

  /// Commands each listed node to measure `kind` at `sample_index` over
  /// the radio: command TX -> node, reply TX -> broker, with
  /// distance-dependent loss on both legs.  Readings that survive are
  /// returned in node order; stats accumulate into `stats` when provided.
  std::vector<Reading> collect(std::span<MobileNode*> nodes,
                               sensing::SensorKind kind,
                               std::size_t sample_index,
                               linalg::Rng& rng,
                               GatherStats* stats = nullptr,
                               double timestamp = 0.0);

  /// Publishes each reading on topic "sensor/<kind>" for pub/sub
  /// collaborators.  (Continuous queries already fired during collect(),
  /// which ingests every reading into the store/query service.)
  void disseminate(std::span<const Reading> readings,
                   sensing::SensorKind kind, double timestamp);

 private:
  NodeId id_;
  sim::Point position_;
  sim::LinkModel link_;
  ServiceRegistry registry_;
  DataStore store_;
  QueryService queries_;
  PubSubBus bus_;
  sim::EnergyMeter meter_;
};

}  // namespace sensedroid::middleware
