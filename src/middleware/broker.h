// The NanoCloud broker (Fig. 2): orchestrates the nodes of its cloud —
// discovery, measurement telemetry, logging, query, and dissemination.
//
// "The broker performs stochastic (random) spatial sampling in various
// nodes ... the broker initiates these measurements by commanding and
// telemetering the selected nodes with the sensor."
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fault/retry.h"
#include "linalg/random.h"
#include "middleware/datastore.h"
#include "middleware/discovery.h"
#include "middleware/node.h"
#include "middleware/pubsub.h"
#include "middleware/query.h"
#include "sim/radio.h"

namespace sensedroid::fault {
class FaultInjector;
}  // namespace sensedroid::fault

namespace sensedroid::sim {
class Simulator;
}  // namespace sensedroid::sim

namespace sensedroid::middleware {

/// Message/energy accounting of one gathering round.
///
/// Every field must be accumulated by operator+= — a static_assert in
/// broker.cpp pins sizeof(GatherStats) so adding a field without
/// extending the accumulator fails the build instead of silently
/// dropping counts.
struct GatherStats {
  std::size_t commands_sent = 0;
  std::size_t replies_received = 0;
  std::size_t radio_failures = 0;   ///< lost commands or replies
  std::size_t node_refusals = 0;    ///< privacy/battery/absent-sensor
  std::size_t retries = 0;          ///< command attempts beyond the first
  std::size_t retry_recovered = 0;  ///< readings obtained on a retry
  std::size_t deadline_skips = 0;   ///< nodes/retries dropped by the deadline
  std::size_t battery_skips = 0;    ///< retries withheld from low-SoC nodes
  std::size_t topup_requests = 0;   ///< replacement cells commanded by top-up
  std::size_t topup_replies = 0;    ///< readings recovered by top-up
  std::size_t bytes_transferred = 0;
  double broker_energy_j = 0.0;     ///< broker-side radio energy

  GatherStats& operator+=(const GatherStats& rhs) noexcept;
};

/// One successful reading in a round.
struct Reading {
  NodeId node = 0;
  double value = 0.0;
  double sigma = 0.0;  ///< reporting sensor's noise sigma (for GLS)
};

/// Broker of one NanoCloud.  Owns the cloud-local middleware services.
class Broker {
 public:
  static constexpr std::size_t kCommandBytes = 32;
  static constexpr std::size_t kReplyBytes = 32;

  Broker(NodeId id, sim::Point position,
         sim::LinkModel link = sim::LinkModel::of(sim::RadioKind::kWiFi));

  NodeId id() const noexcept { return id_; }
  const sim::Point& position() const noexcept { return position_; }
  void set_position(const sim::Point& p) noexcept { position_ = p; }

  ServiceRegistry& registry() noexcept { return registry_; }
  const ServiceRegistry& registry() const noexcept { return registry_; }
  DataStore& store() noexcept { return store_; }
  QueryService& queries() noexcept { return queries_; }
  PubSubBus& bus() noexcept { return bus_; }
  const sim::EnergyMeter& meter() const noexcept { return meter_; }

  /// Registers a node into this cloud (honors the node's privacy policy;
  /// opted-out nodes are silently skipped).  Returns whether registered.
  bool enroll(const MobileNode& node);

  /// Commands each listed node to measure `kind` at `sample_index` over
  /// the radio: command TX -> node, reply TX -> broker, with
  /// distance-dependent loss on both legs.  Readings that survive are
  /// returned in node order; stats accumulate into `stats` when provided.
  std::vector<Reading> collect(std::span<MobileNode*> nodes,
                               sensing::SensorKind kind,
                               std::size_t sample_index,
                               linalg::Rng& rng,
                               GatherStats* stats = nullptr,
                               double timestamp = 0.0);

  /// Publishes each reading on topic "sensor/<kind>" for pub/sub
  /// collaborators.  (Continuous queries already fired during collect(),
  /// which ingests every reading into the store/query service.)
  void disseminate(std::span<const Reading> readings,
                   sensing::SensorKind kind, double timestamp);

  /// Retry/timeout policy applied by collect().  The default (one
  /// attempt, no deadline) is the seed's one-shot behavior.  Throws
  /// std::invalid_argument on an invalid policy.
  void set_retry_policy(const fault::RetryPolicy& policy);
  const fault::RetryPolicy& retry_policy() const noexcept { return retry_; }

  /// Attaches (or detaches, with nullptr) a fault injector: collect()
  /// then layers its bursty-link drops and churn absences onto the
  /// distance loss.  `zone` selects which of the injector's per-zone
  /// link chains this broker's radio traffic advances (NanoCloud passes
  /// its zone_id).  Non-owning; the injector must outlive the broker.
  void set_fault_injector(fault::FaultInjector* injector,
                          std::uint32_t zone = 0) noexcept {
    injector_ = injector;
    fault_zone_ = zone;
  }
  fault::FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Optional event-sim clock: when set, collect() advances it by the
  /// round's accumulated virtual duration (transfer times + retry
  /// backoff), so campaign timelines include resilience overhead.
  void set_simulator(sim::Simulator* sim) noexcept { sim_ = sim; }

  /// Virtual seconds consumed by the most recent collect() round.
  double last_round_virtual_s() const noexcept { return last_round_s_; }

 private:
  NodeId id_;
  sim::Point position_;
  sim::LinkModel link_;
  ServiceRegistry registry_;
  DataStore store_;
  QueryService queries_;
  PubSubBus bus_;
  sim::EnergyMeter meter_;
  fault::RetryPolicy retry_;
  fault::FaultInjector* injector_ = nullptr;
  std::uint32_t fault_zone_ = 0;
  sim::Simulator* sim_ = nullptr;
  double last_round_s_ = 0.0;
};

}  // namespace sensedroid::middleware
