#include "middleware/node.h"

#include <utility>

namespace sensedroid::middleware {

MobileNode::MobileNode(NodeId id, sim::Point position, sim::LinkModel link,
                       sim::Battery battery)
    : id_(id),
      position_(position),
      link_(link),
      battery_(battery) {}

void MobileNode::add_sensor(sensing::SimulatedSensor sensor) {
  sensors_.insert_or_assign(sensor.kind(), std::move(sensor));
}

bool MobileNode::has_sensor(sensing::SensorKind kind) const noexcept {
  return sensors_.contains(kind);
}

std::optional<double> MobileNode::sensor_sigma(
    sensing::SensorKind kind) const {
  const auto it = sensors_.find(kind);
  if (it == sensors_.end()) return std::nullopt;
  return it->second.noise_sigma();
}

std::optional<NodeCapabilities> MobileNode::advertise() const {
  if (policy_.opted_out()) return std::nullopt;
  NodeCapabilities caps;
  caps.node = id_;
  caps.position = policy_.blur(position_);
  for (const auto& [kind, sensor] : sensors_) {
    if (!policy_.sensor_allowed(kind)) continue;
    caps.sensors.push_back(kind);
    caps.noise_sigma[kind] = sensor.noise_sigma();
  }
  if (caps.sensors.empty()) return std::nullopt;
  return caps;
}

std::optional<double> MobileNode::measure(sensing::SensorKind kind,
                                          std::size_t sample_index) {
  if (!policy_.sensor_allowed(kind)) return std::nullopt;
  const auto it = sensors_.find(kind);
  if (it == sensors_.end()) return std::nullopt;
  const double cost = sensing::sample_cost_j(kind);
  if (!battery_.draw(cost)) return std::nullopt;
  return it->second.read(sample_index, &meter_);
}

bool MobileNode::pay_tx(std::size_t bytes) {
  const double e = link_.tx_energy_j(bytes);
  meter_.add(sim::EnergyCategory::kTx, e);
  return battery_.draw(e);
}

bool MobileNode::pay_rx(std::size_t bytes) {
  const double e = link_.rx_energy_j(bytes);
  meter_.add(sim::EnergyCategory::kRx, e);
  return battery_.draw(e);
}

}  // namespace sensedroid::middleware
