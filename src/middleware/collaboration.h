// Sensor sharing (Section 1): collaboration lets users "obtain missing
// sensing information when specific sensors are not available in their
// own devices", and multiple readings beat one — "multiple temperature
// sensor readings in a space would be more reliable than a single
// reading."
//
// The SensorSharingService answers a node's question "what is <quantity>
// here?" from the broker's recent record log: an inverse-distance-
// weighted average of the k nearest fresh readings, with a reliability
// score that grows with corroboration.
#pragma once

#include <cstddef>
#include <optional>

#include "middleware/broker.h"
#include "sim/geometry.h"

namespace sensedroid::middleware {

/// A reading synthesized from neighbors' contributions.
struct BorrowedReading {
  double value = 0.0;
  std::size_t contributors = 0;  ///< readings blended in
  double reliability = 0.0;      ///< 1 - 1/(1+contributors): more is better
  double newest_timestamp = 0.0;
};

/// Query service over a broker's store + registry.
class SensorSharingService {
 public:
  struct Params {
    std::size_t k_nearest = 3;   ///< readings to blend
    double max_age_s = 300.0;    ///< ignore stale records
    double max_range_m = 200.0;  ///< ignore readings from far away
  };

  /// `broker` must outlive the service.  (Two overloads rather than a
  /// default argument: a nested aggregate's NSDMIs are not usable in a
  /// default argument inside the enclosing class.)
  explicit SensorSharingService(Broker& broker);
  SensorSharingService(Broker& broker, const Params& params);

  /// Synthesizes a reading of `kind` at `where` at time `now` from the
  /// freshest record of each of the k nearest reporting nodes.  Returns
  /// nullopt when no fresh, in-range reading exists (the caller should
  /// fall back to infrastructure or its own sensor).
  std::optional<BorrowedReading> borrow(sensing::SensorKind kind,
                                        const sim::Point& where,
                                        double now) const;

 private:
  Broker& broker_;
  Params params_;
};

}  // namespace sensedroid::middleware
