// Wire serialization for broker <-> node messages.  The radio models
// charge per byte, so the byte layout is load-bearing: this codec defines
// it, and a CRC-32 trailer catches the corruption a lossy link can
// deliver past the MAC layer.
//
// Format (little-endian):
//   [u16 topic_len][topic bytes][u32 sender][f64 timestamp]
//   [u8 payload_tag][payload...][u32 crc32 over everything before it]
// Payload encodings: 0 = f64 scalar; 1 = u32 count + f64s (vector);
// 2 = u32 len + bytes (string); 3 = Record (u32 node, u8 sensor,
// f64 timestamp, f64 value).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "middleware/pubsub.h"

namespace sensedroid::middleware {

/// Decode-side frame envelope: the smallest well-formed frame is an
/// empty-topic message with an empty vector/string payload (2 + 4 + 8 +
/// 1 + 4 body bytes + 4 CRC); anything shorter is truncation.  The upper
/// bound rejects absurd length claims before any allocation — honest
/// traffic in this system is tens of bytes.
inline constexpr std::size_t kMinFrameBytes = 23;
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// CRC-32 (IEEE 802.3 polynomial) of a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// Serializes a message; the result's size is the exact wire footprint.
/// Throws std::invalid_argument when the topic exceeds 65535 bytes.
std::vector<std::uint8_t> encode_message(const Message& msg);

/// Parses a frame; returns nullopt when the frame is outside the
/// [kMinFrameBytes, kMaxFrameBytes] envelope, truncated, malformed, or
/// fails the CRC — the caller treats it as a radio loss.  Never throws
/// and never fabricates a message from corrupt bytes: every multi-byte
/// read is bounds-checked and the CRC is verified before parsing.
std::optional<Message> decode_message(std::span<const std::uint8_t> frame);

}  // namespace sensedroid::middleware
