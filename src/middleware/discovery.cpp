#include "middleware/discovery.h"

#include <algorithm>

namespace sensedroid::middleware {

namespace {
bool has_kind(const NodeCapabilities& caps, sensing::SensorKind kind) {
  return std::find(caps.sensors.begin(), caps.sensors.end(), kind) !=
         caps.sensors.end();
}
}  // namespace

void ServiceRegistry::join(const NodeCapabilities& caps) {
  nodes_[caps.node] = caps;
}

bool ServiceRegistry::leave(NodeId node) { return nodes_.erase(node) == 1; }

bool ServiceRegistry::update_position(NodeId node, const sim::Point& p) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return false;
  it->second.position = p;
  return true;
}

std::optional<NodeCapabilities> ServiceRegistry::find(NodeId node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeCapabilities> ServiceRegistry::with_sensor(
    sensing::SensorKind kind, std::optional<sim::Point> near) const {
  std::vector<NodeCapabilities> out;
  for (const auto& [id, caps] : nodes_) {
    if (has_kind(caps, kind)) out.push_back(caps);
  }
  if (near.has_value()) {
    std::sort(out.begin(), out.end(),
              [&](const NodeCapabilities& a, const NodeCapabilities& b) {
                const double da = sim::distance(a.position, *near);
                const double db = sim::distance(b.position, *near);
                return da < db || (da == db && a.node < b.node);
              });
  } else {
    std::sort(out.begin(), out.end(),
              [](const NodeCapabilities& a, const NodeCapabilities& b) {
                return a.node < b.node;
              });
  }
  return out;
}

std::vector<NodeCapabilities> ServiceRegistry::with_sensor_in_range(
    sensing::SensorKind kind, const sim::Point& center,
    double radius_m) const {
  auto all = with_sensor(kind, center);
  std::erase_if(all, [&](const NodeCapabilities& c) {
    return sim::distance(c.position, center) > radius_m;
  });
  return all;
}

std::vector<NodeCapabilities> ServiceRegistry::infrastructure_with(
    sensing::SensorKind kind) const {
  std::vector<NodeCapabilities> out;
  for (const auto& [id, caps] : nodes_) {
    if (caps.infrastructure && has_kind(caps, kind)) out.push_back(caps);
  }
  std::sort(out.begin(), out.end(),
            [](const NodeCapabilities& a, const NodeCapabilities& b) {
              return a.node < b.node;
            });
  return out;
}

}  // namespace sensedroid::middleware
