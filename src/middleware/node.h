// The mobile node ("thin client", Fig. 2): a phone participating in a
// NanoCloud.  Owns its sensors, battery, energy meter, privacy policy,
// and radio; answers the broker's measurement commands.
#pragma once

#include <cstddef>
#include <map>
#include <optional>

#include "middleware/discovery.h"
#include "middleware/privacy.h"
#include "sensing/sensor.h"
#include "sim/energy.h"
#include "sim/geometry.h"
#include "sim/radio.h"

namespace sensedroid::middleware {

class MobileNode {
 public:
  /// Creates a node with a radio and battery; sensors are added after.
  MobileNode(NodeId id, sim::Point position,
             sim::LinkModel link = sim::LinkModel::of(sim::RadioKind::kWiFi),
             sim::Battery battery = sim::Battery{});

  NodeId id() const noexcept { return id_; }
  const sim::Point& position() const noexcept { return position_; }
  void set_position(const sim::Point& p) noexcept { position_ = p; }

  const sim::LinkModel& link() const noexcept { return link_; }
  const sim::Battery& battery() const noexcept { return battery_; }
  const sim::EnergyMeter& meter() const noexcept { return meter_; }
  sim::EnergyMeter& meter() noexcept { return meter_; }

  PrivacyPolicy& policy() noexcept { return policy_; }
  const PrivacyPolicy& policy() const noexcept { return policy_; }

  /// Installs (or replaces) a sensor of the sensor's kind.
  void add_sensor(sensing::SimulatedSensor sensor);

  bool has_sensor(sensing::SensorKind kind) const noexcept;

  /// Noise sigma of an installed sensor; nullopt when absent.
  std::optional<double> sensor_sigma(sensing::SensorKind kind) const;

  /// What this node advertises to a broker — honors the privacy policy
  /// (disallowed sensors are omitted, position is blurred); nullopt when
  /// the user opted out entirely.
  std::optional<NodeCapabilities> advertise() const;

  /// Executes a measurement command locally: samples the sensor at
  /// `sample_index`, charging battery and meter.  Returns nullopt when the
  /// sensor is absent, the policy forbids sharing it, or the battery is
  /// dead.
  std::optional<double> measure(sensing::SensorKind kind,
                                std::size_t sample_index);

  /// Charges radio TX/RX energy for `bytes` to battery and meter; returns
  /// false when the battery died paying for it.
  bool pay_tx(std::size_t bytes);
  bool pay_rx(std::size_t bytes);

 private:
  NodeId id_;
  sim::Point position_;
  sim::LinkModel link_;
  sim::Battery battery_;
  sim::EnergyMeter meter_;
  PrivacyPolicy policy_;
  std::map<sensing::SensorKind, sensing::SimulatedSensor> sensors_;
};

}  // namespace sensedroid::middleware
