// Data logging and retrieval ("interface to a light weight database such
// as SQLite for data logging and efficient sensor data processing and
// storing").  The storage engine is an in-memory table with predicate
// queries and ring-buffer retention — the API surface the paper describes,
// minus the on-disk format (DESIGN.md substitution table).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "sensing/sensor.h"

namespace sensedroid::middleware {

/// Identifier of a mobile node within a deployment.
using NodeId = std::uint32_t;

/// One logged sensor reading.
struct Record {
  NodeId node = 0;
  sensing::SensorKind sensor = sensing::SensorKind::kAccelerometer;
  double timestamp = 0.0;  ///< simulation seconds
  double value = 0.0;
};

/// Declarative record filter: unset fields match everything.
struct RecordFilter {
  std::optional<NodeId> node;
  std::optional<sensing::SensorKind> sensor;
  double t_min = -std::numeric_limits<double>::infinity();
  double t_max = std::numeric_limits<double>::infinity();
  std::optional<double> value_min;
  std::optional<double> value_max;

  bool matches(const Record& r) const noexcept;
};

/// Bounded in-memory record log.
class DataStore {
 public:
  /// `capacity` caps retained records; the oldest are evicted first
  /// (ring-buffer retention).  Throws std::invalid_argument when 0.
  explicit DataStore(std::size_t capacity = 100000);

  /// Appends a record, evicting the oldest when full.
  void insert(const Record& r);

  std::size_t size() const noexcept { return records_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t evicted() const noexcept { return evicted_; }

  /// All records matching a filter, in insertion order.
  std::vector<Record> query(const RecordFilter& filter) const;

  /// Count matching without materializing.
  std::size_t count(const RecordFilter& filter) const;

  /// Most recent record matching the filter, if any.
  std::optional<Record> latest(const RecordFilter& filter) const;

  /// Mean value over matching records (nullopt when none match).
  std::optional<double> mean_value(const RecordFilter& filter) const;

  /// Applies `fn` to every matching record (streaming scan).
  void for_each(const RecordFilter& filter,
                const std::function<void(const Record&)>& fn) const;

  void clear() noexcept { records_.clear(); }

 private:
  std::size_t capacity_;
  std::size_t evicted_ = 0;
  std::deque<Record> records_;
};

}  // namespace sensedroid::middleware
