// Service and capability discovery: the broker learns which nodes carry
// which sensors (and their quality) so it can select the M measurement
// nodes for a round — or fall back to infrastructure sensors when "there
// are not enough sensors in the mobile nodes" (Section 3).
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "middleware/datastore.h"
#include "sensing/sensor.h"
#include "sim/geometry.h"

namespace sensedroid::middleware {

/// What a node advertises on joining a NanoCloud.
struct NodeCapabilities {
  NodeId node = 0;
  sim::Point position;  ///< possibly privacy-blurred
  std::vector<sensing::SensorKind> sensors;
  std::unordered_map<sensing::SensorKind, double> noise_sigma;
  bool infrastructure = false;  ///< fixed in-situ sensor, not a phone
};

/// The broker-side registry.
class ServiceRegistry {
 public:
  /// Registers or refreshes a node's advertisement.
  void join(const NodeCapabilities& caps);

  /// Removes a node; returns false when unknown.
  bool leave(NodeId node);

  /// Updates a node's position (mobility refresh); false when unknown.
  bool update_position(NodeId node, const sim::Point& p);

  std::size_t size() const noexcept { return nodes_.size(); }
  std::optional<NodeCapabilities> find(NodeId node) const;

  /// All nodes advertising a sensor kind, nearest-first to `near` when
  /// provided.
  std::vector<NodeCapabilities> with_sensor(
      sensing::SensorKind kind,
      std::optional<sim::Point> near = std::nullopt) const;

  /// Nodes advertising a sensor within `radius_m` of a point.
  std::vector<NodeCapabilities> with_sensor_in_range(
      sensing::SensorKind kind, const sim::Point& center,
      double radius_m) const;

  /// All registered infrastructure sensors with the kind.
  std::vector<NodeCapabilities> infrastructure_with(
      sensing::SensorKind kind) const;

 private:
  std::unordered_map<NodeId, NodeCapabilities> nodes_;
};

}  // namespace sensedroid::middleware
