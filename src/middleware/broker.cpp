#include "middleware/broker.h"

#include "fault/fault.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_sim.h"

namespace sensedroid::middleware {

// Tripwire for the accumulator below: adding a GatherStats field without
// teaching operator+= about it would silently drop per-round counts.
// When this fires, extend operator+= (and the obs counters in collect())
// first, then update the expected size.
static_assert(sizeof(GatherStats) ==
                  11 * sizeof(std::size_t) + sizeof(double),
              "GatherStats changed: update operator+= and collect() metrics");

GatherStats& GatherStats::operator+=(const GatherStats& rhs) noexcept {
  commands_sent += rhs.commands_sent;
  replies_received += rhs.replies_received;
  radio_failures += rhs.radio_failures;
  node_refusals += rhs.node_refusals;
  retries += rhs.retries;
  retry_recovered += rhs.retry_recovered;
  deadline_skips += rhs.deadline_skips;
  battery_skips += rhs.battery_skips;
  topup_requests += rhs.topup_requests;
  topup_replies += rhs.topup_replies;
  bytes_transferred += rhs.bytes_transferred;
  broker_energy_j += rhs.broker_energy_j;
  return *this;
}

Broker::Broker(NodeId id, sim::Point position, sim::LinkModel link)
    : id_(id), position_(position), link_(link), queries_(store_) {}

void Broker::set_retry_policy(const fault::RetryPolicy& policy) {
  policy.validate();
  retry_ = policy;
}

bool Broker::enroll(const MobileNode& node) {
  const auto caps = node.advertise();
  if (!caps.has_value()) return false;
  registry_.join(*caps);
  return true;
}

std::vector<Reading> Broker::collect(std::span<MobileNode*> nodes,
                                     sensing::SensorKind kind,
                                     std::size_t sample_index,
                                     linalg::Rng& rng, GatherStats* stats,
                                     double timestamp) {
  obs::ScopedSpan span("mw.broker.collect");
  GatherStats local;
  std::vector<Reading> readings;
  readings.reserve(nodes.size());
  // Policies are immutable during a round (set_retry_policy between
  // rounds only), so hoist every field into locals once: the loop below
  // must not observe a torn/half-updated policy, and the hoisted copies
  // make that contract explicit instead of re-reading `retry_` per
  // attempt.
  const fault::RetryPolicy policy = retry_;
  const double deadline = policy.round_deadline_s;
  const std::size_t max_attempts = policy.max_attempts;
  const double min_retry_soc = policy.min_retry_soc;
  double elapsed_s = 0.0;  // virtual time this round: transfers + backoff

  for (MobileNode* node : nodes) {
    if (node == nullptr) continue;
    if (deadline > 0.0 && elapsed_s >= deadline) {
      // Round budget exhausted: remaining nodes go untelemetered rather
      // than blowing the campaign's timing contract.
      ++local.deadline_skips;
      continue;
    }
    const double dist = sim::distance(position_, node->position());
    // Churned-out nodes never hear the command; presence is fixed for
    // the round, so retries against an absent node are futile but cheap
    // honesty — the broker cannot know why nobody answered.
    const bool present =
        injector_ == nullptr || injector_->node_present(node->id());

    double backoff = 0.0;
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) {
        if (node->battery().state_of_charge() < min_retry_soc) {
          ++local.battery_skips;
          break;
        }
        backoff = policy.next_backoff_s(backoff, rng);
        elapsed_s += backoff;
        if (deadline > 0.0 && elapsed_s >= deadline) {
          ++local.deadline_skips;
          break;
        }
        ++local.retries;
        obs::fr_record(obs::FrEvent::kRetryAttempt, node->id(),
                       static_cast<double>(attempt));
      }

      // Command leg: broker TX, node RX.
      ++local.commands_sent;
      const double cmd_e = link_.tx_energy_j(kCommandBytes);
      meter_.add(sim::EnergyCategory::kTx, cmd_e);
      local.broker_energy_j += cmd_e;
      local.bytes_transferred += kCommandBytes;
      elapsed_s += link_.transfer_time_s(kCommandBytes);
      // A burst-forced drop replaces the distance draw (the channel is
      // gone regardless of geometry); otherwise the usual distance loss
      // applies, so a benign injector changes no Rng stream.
      const bool cmd_burst_drop =
          injector_ != nullptr && injector_->link_attempt_drops(fault_zone_);
      if (cmd_burst_drop || !present || !link_.delivery_succeeds(dist, rng)) {
        ++local.radio_failures;
        continue;  // next attempt, if any
      }
      node->pay_rx(kCommandBytes);

      // Local measurement on the node.  Refusals (privacy, missing
      // sensor, dead battery) are permanent — retrying cannot help.
      const auto value = node->measure(kind, sample_index);
      if (!value.has_value()) {
        ++local.node_refusals;
        break;
      }

      // Reply leg: node TX, broker RX.
      node->pay_tx(kReplyBytes);
      local.bytes_transferred += kReplyBytes;
      elapsed_s += node->link().transfer_time_s(kReplyBytes);
      const bool reply_burst_drop =
          injector_ != nullptr && injector_->link_attempt_drops(fault_zone_);
      if (reply_burst_drop || !node->link().delivery_succeeds(dist, rng)) {
        ++local.radio_failures;
        continue;
      }
      const double rx_e = link_.rx_energy_j(kReplyBytes);
      meter_.add(sim::EnergyCategory::kRx, rx_e);
      local.broker_energy_j += rx_e;

      ++local.replies_received;
      if (attempt > 0) {
        ++local.retry_recovered;
        obs::fr_record(obs::FrEvent::kRetryRecovered, node->id());
      }
      readings.push_back(Reading{
          node->id(), *value, node->sensor_sigma(kind).value_or(0.0)});
      // Ingest through the query service so standing filters fire as data
      // arrives (and the record lands in the store).
      queries_.ingest(Record{node->id(), kind, timestamp, *value});
      break;
    }
  }

  last_round_s_ = elapsed_s;
  if (sim_ != nullptr) {
    // Book the round's virtual duration onto the campaign clock.
    sim_->run_until(sim_->now() + elapsed_s);
  }

  if (stats != nullptr) *stats += local;
  if (obs::attached()) {
    obs::add_counter("mw.broker.collect_rounds");
    obs::add_counter("mw.broker.commands_sent",
                     static_cast<double>(local.commands_sent));
    obs::add_counter("mw.broker.replies_received",
                     static_cast<double>(local.replies_received));
    obs::add_counter("mw.broker.radio_failures",
                     static_cast<double>(local.radio_failures));
    obs::add_counter("mw.broker.node_refusals",
                     static_cast<double>(local.node_refusals));
    obs::add_counter("mw.broker.bytes",
                     static_cast<double>(local.bytes_transferred));
    // Retry/deadline series only appear once resilience is in play, so
    // un-faulted runs export the exact seed metric set.
    if (local.retries > 0) {
      obs::add_counter("mw.retry.attempts",
                       static_cast<double>(local.retries));
    }
    if (local.retry_recovered > 0) {
      obs::add_counter("mw.retry.recovered",
                       static_cast<double>(local.retry_recovered));
    }
    if (local.deadline_skips > 0) {
      obs::add_counter("mw.retry.deadline_skips",
                       static_cast<double>(local.deadline_skips));
    }
    if (local.battery_skips > 0) {
      obs::add_counter("mw.retry.battery_skips",
                       static_cast<double>(local.battery_skips));
    }
    // Store depth doubles as the broker's ingest-queue gauge: every
    // reading lands there before dissemination drains downstream.
    obs::set_gauge("mw.broker.queue_depth",
                   static_cast<double>(store_.size()));
  }
  return readings;
}

void Broker::disseminate(std::span<const Reading> readings,
                         sensing::SensorKind kind, double timestamp) {
  // Collection already ingested the records into the store/queries; here
  // they fan out to pub/sub collaborators ("dissemination of collective
  // information", Fig. 2).
  for (const Reading& r : readings) {
    const Record rec{r.node, kind, timestamp, r.value};
    bus_.publish(Message{"sensor/" + sensing::to_string(kind), r.node,
                         timestamp, rec});
  }
}

}  // namespace sensedroid::middleware
