#include "middleware/broker.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::middleware {

GatherStats& GatherStats::operator+=(const GatherStats& rhs) noexcept {
  commands_sent += rhs.commands_sent;
  replies_received += rhs.replies_received;
  radio_failures += rhs.radio_failures;
  node_refusals += rhs.node_refusals;
  bytes_transferred += rhs.bytes_transferred;
  broker_energy_j += rhs.broker_energy_j;
  return *this;
}

Broker::Broker(NodeId id, sim::Point position, sim::LinkModel link)
    : id_(id), position_(position), link_(link), queries_(store_) {}

bool Broker::enroll(const MobileNode& node) {
  const auto caps = node.advertise();
  if (!caps.has_value()) return false;
  registry_.join(*caps);
  return true;
}

std::vector<Reading> Broker::collect(std::span<MobileNode*> nodes,
                                     sensing::SensorKind kind,
                                     std::size_t sample_index,
                                     linalg::Rng& rng, GatherStats* stats,
                                     double timestamp) {
  obs::ScopedSpan span("mw.broker.collect");
  GatherStats local;
  std::vector<Reading> readings;
  readings.reserve(nodes.size());

  for (MobileNode* node : nodes) {
    if (node == nullptr) continue;
    const double dist = sim::distance(position_, node->position());

    // Command leg: broker TX, node RX.
    ++local.commands_sent;
    const double cmd_e = link_.tx_energy_j(kCommandBytes);
    meter_.add(sim::EnergyCategory::kTx, cmd_e);
    local.broker_energy_j += cmd_e;
    local.bytes_transferred += kCommandBytes;
    if (!link_.delivery_succeeds(dist, rng)) {
      ++local.radio_failures;
      continue;
    }
    node->pay_rx(kCommandBytes);

    // Local measurement on the node.
    const auto value = node->measure(kind, sample_index);
    if (!value.has_value()) {
      ++local.node_refusals;
      continue;
    }

    // Reply leg: node TX, broker RX.
    node->pay_tx(kReplyBytes);
    local.bytes_transferred += kReplyBytes;
    if (!node->link().delivery_succeeds(dist, rng)) {
      ++local.radio_failures;
      continue;
    }
    const double rx_e = link_.rx_energy_j(kReplyBytes);
    meter_.add(sim::EnergyCategory::kRx, rx_e);
    local.broker_energy_j += rx_e;

    ++local.replies_received;
    readings.push_back(Reading{
        node->id(), *value, node->sensor_sigma(kind).value_or(0.0)});
    // Ingest through the query service so standing filters fire as data
    // arrives (and the record lands in the store).
    queries_.ingest(Record{node->id(), kind, timestamp, *value});
  }

  if (stats != nullptr) *stats += local;
  if (obs::attached()) {
    obs::add_counter("mw.broker.collect_rounds");
    obs::add_counter("mw.broker.commands_sent",
                     static_cast<double>(local.commands_sent));
    obs::add_counter("mw.broker.replies_received",
                     static_cast<double>(local.replies_received));
    obs::add_counter("mw.broker.radio_failures",
                     static_cast<double>(local.radio_failures));
    obs::add_counter("mw.broker.node_refusals",
                     static_cast<double>(local.node_refusals));
    obs::add_counter("mw.broker.bytes",
                     static_cast<double>(local.bytes_transferred));
    // Store depth doubles as the broker's ingest-queue gauge: every
    // reading lands there before dissemination drains downstream.
    obs::set_gauge("mw.broker.queue_depth",
                   static_cast<double>(store_.size()));
  }
  return readings;
}

void Broker::disseminate(std::span<const Reading> readings,
                         sensing::SensorKind kind, double timestamp) {
  // Collection already ingested the records into the store/queries; here
  // they fan out to pub/sub collaborators ("dissemination of collective
  // information", Fig. 2).
  for (const Reading& r : readings) {
    const Record rec{r.node, kind, timestamp, r.value};
    bus_.publish(Message{"sensor/" + sensing::to_string(kind), r.node,
                         timestamp, rec});
  }
}

}  // namespace sensedroid::middleware
