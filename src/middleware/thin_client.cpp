#include "middleware/thin_client.h"

#include "linalg/random.h"

namespace sensedroid::middleware {

ThinClient::ThinClient(MobileNode& node) : node_(node) {}

std::optional<std::vector<std::uint8_t>> ThinClient::handle(
    std::span<const std::uint8_t> frame, double now) {
  const auto cmd = decode_message(frame);
  if (!cmd.has_value()) return std::nullopt;  // corrupt frame
  // Radio RX cost of the command itself.
  if (!node_.pay_rx(frame.size())) {
    ++refused_;
    return std::nullopt;  // battery died receiving
  }
  const auto reply = execute(*cmd, now);
  if (!reply.has_value()) {
    ++refused_;
    return std::nullopt;
  }
  ++handled_;
  auto encoded = encode_message(*reply);
  if (!node_.pay_tx(encoded.size())) {
    ++refused_;
    return std::nullopt;  // battery died transmitting
  }
  return encoded;
}

std::optional<Message> ThinClient::execute(const Message& cmd, double now) {
  if (cmd.topic == "cmd/measure") {
    const auto* rec = std::get_if<Record>(&cmd.payload);
    if (rec == nullptr) return std::nullopt;
    const auto sample_index = static_cast<std::size_t>(rec->timestamp);
    const auto value = node_.measure(rec->sensor, sample_index);
    if (!value.has_value()) return std::nullopt;
    return Message{"sensor/" + sensing::to_string(rec->sensor), node_.id(),
                   now, Record{node_.id(), rec->sensor, now, *value}};
  }
  if (cmd.topic == "cmd/advertise") {
    const auto caps = node_.advertise();
    if (!caps.has_value()) return std::nullopt;
    linalg::Vector kinds;
    kinds.reserve(caps->sensors.size());
    for (auto k : caps->sensors) {
      kinds.push_back(static_cast<double>(k));
    }
    return Message{"node/capabilities", node_.id(), now, std::move(kinds)};
  }
  if (cmd.topic == "cmd/window") {
    const auto* rec = std::get_if<Record>(&cmd.payload);
    if (rec == nullptr) return std::nullopt;
    const auto window = static_cast<std::size_t>(rec->timestamp);
    const auto budget = static_cast<std::size_t>(rec->value);
    if (window == 0 || budget == 0 || budget > window) return std::nullopt;
    // Compressive schedule seeded by node id + time for reproducibility.
    linalg::Rng rng(node_.id() * 1315423911ull +
                    static_cast<std::uint64_t>(now * 1000.0));
    const auto indices = rng.sample_without_replacement(window, budget);
    linalg::Vector out;
    out.reserve(2 * budget);
    for (std::size_t idx : indices) {
      const auto v = node_.measure(rec->sensor, idx);
      if (!v.has_value()) return std::nullopt;
      out.push_back(static_cast<double>(idx));
      out.push_back(*v);
    }
    return Message{"window/" + sensing::to_string(rec->sensor), node_.id(),
                   now, std::move(out)};
  }
  return std::nullopt;  // unknown command
}

std::vector<std::uint8_t> make_measure_command(sensing::SensorKind kind,
                                               std::size_t sample_index) {
  return encode_message(
      {"cmd/measure", 0, 0.0,
       Record{0, kind, static_cast<double>(sample_index), 0.0}});
}

std::vector<std::uint8_t> make_advertise_command() {
  return encode_message({"cmd/advertise", 0, 0.0, 0.0});
}

std::vector<std::uint8_t> make_window_command(sensing::SensorKind kind,
                                              std::size_t window,
                                              std::size_t budget) {
  return encode_message({"cmd/window", 0, 0.0,
                         Record{0, kind, static_cast<double>(window),
                                static_cast<double>(budget)}});
}

}  // namespace sensedroid::middleware
