// On-demand query and filtering ("SenseDroid supports on-demand query and
// filtering functionality from different participating users.  Filtering
// helps deliver only the relevant information to collaborating users.")
//
// Two forms:
//   - one-shot queries against the broker's DataStore (history), and
//   - continuous queries: a standing RecordFilter + callback that sees
//     only matching records as they arrive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "middleware/datastore.h"

namespace sensedroid::middleware {

/// Standing-query service layered on a DataStore.
class QueryService {
 public:
  using ContinuousId = std::uint64_t;
  using Handler = std::function<void(const Record&)>;

  /// `store` must outlive the service.
  explicit QueryService(DataStore& store);

  /// One-shot history query.
  std::vector<Record> query(const RecordFilter& filter) const;

  /// Aggregate forms.
  std::size_t count(const RecordFilter& filter) const;
  std::optional<double> mean(const RecordFilter& filter) const;
  std::optional<Record> latest(const RecordFilter& filter) const;

  /// Registers a continuous query; `handler` fires for each future record
  /// matching `filter`.
  ContinuousId subscribe(const RecordFilter& filter, Handler handler);

  /// Cancels a continuous query; false when unknown.
  bool unsubscribe(ContinuousId id);

  /// Ingests a record: stores it and fans it out to matching continuous
  /// queries.  Returns the number of continuous handlers notified.
  std::size_t ingest(const Record& r);

  std::size_t continuous_count() const noexcept { return continuous_.size(); }

 private:
  struct Continuous {
    ContinuousId id;
    RecordFilter filter;
    Handler handler;
  };
  DataStore& store_;
  std::vector<Continuous> continuous_;
  ContinuousId next_id_ = 1;
};

}  // namespace sensedroid::middleware
