// The node-side middleware stack of Fig. 2 ("mobile nodes with thin
// client"): receives encoded broker commands over the radio, executes
// them against the local node (measure a sensor, report capabilities,
// run a compressive probe window), and returns encoded replies.
//
// Command protocol (topics):
//   cmd/measure   — payload Record{sensor, timestamp=sample_index}:
//                   reply sensor/<kind> with the reading;
//   cmd/advertise — reply node/capabilities with a vector
//                   [sensor kinds...] the policy allows;
//   cmd/window    — payload Record{sensor, value=budget,
//                   timestamp=window}: acquire a compressive window of
//                   the sensor and reply with the sampled values.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "middleware/node.h"
#include "middleware/wire.h"

namespace sensedroid::middleware {

/// Node-side command executor.
class ThinClient {
 public:
  /// `node` must outlive the client.
  explicit ThinClient(MobileNode& node);

  /// Handles one encoded command frame end to end: decode (CRC included),
  /// execute, encode the reply.  Returns nullopt when the frame is
  /// corrupt, the command unknown, or the node refuses (privacy,
  /// battery, missing sensor) — the broker sees a radio-equivalent loss.
  std::optional<std::vector<std::uint8_t>> handle(
      std::span<const std::uint8_t> frame, double now);

  std::size_t commands_handled() const noexcept { return handled_; }
  std::size_t commands_refused() const noexcept { return refused_; }

 private:
  std::optional<Message> execute(const Message& cmd, double now);

  MobileNode& node_;
  std::size_t handled_ = 0;
  std::size_t refused_ = 0;
};

/// Broker-side helpers producing the command frames ThinClient consumes.
std::vector<std::uint8_t> make_measure_command(sensing::SensorKind kind,
                                               std::size_t sample_index);
std::vector<std::uint8_t> make_advertise_command();
std::vector<std::uint8_t> make_window_command(sensing::SensorKind kind,
                                              std::size_t window,
                                              std::size_t budget);

}  // namespace sensedroid::middleware
