#include "middleware/collaboration.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

namespace sensedroid::middleware {

SensorSharingService::SensorSharingService(Broker& broker)
    : SensorSharingService(broker, Params{}) {}

SensorSharingService::SensorSharingService(Broker& broker,
                                           const Params& params)
    : broker_(broker), params_(params) {}

std::optional<BorrowedReading> SensorSharingService::borrow(
    sensing::SensorKind kind, const sim::Point& where, double now) const {
  // Freshest record per reporting node within the age window.
  RecordFilter fresh;
  fresh.sensor = kind;
  fresh.t_min = now - params_.max_age_s;
  fresh.t_max = now;
  std::unordered_map<NodeId, Record> latest;
  broker_.store().for_each(fresh, [&](const Record& r) {
    auto [it, inserted] = latest.try_emplace(r.node, r);
    if (!inserted && r.timestamp > it->second.timestamp) it->second = r;
  });
  if (latest.empty()) return std::nullopt;

  // Rank by distance using the registry's last-known positions; nodes the
  // registry no longer knows are skipped (they left the cloud).
  struct Scored {
    double dist;
    Record record;
  };
  std::vector<Scored> in_range;
  for (const auto& [node, record] : latest) {
    const auto caps = broker_.registry().find(node);
    if (!caps.has_value()) continue;
    const double d = sim::distance(caps->position, where);
    if (d <= params_.max_range_m) in_range.push_back({d, record});
  }
  if (in_range.empty()) return std::nullopt;
  std::sort(in_range.begin(), in_range.end(),
            [](const Scored& a, const Scored& b) {
              return a.dist < b.dist ||
                     (a.dist == b.dist && a.record.node < b.record.node);
            });
  if (in_range.size() > params_.k_nearest) {
    in_range.resize(params_.k_nearest);
  }

  // Inverse-distance-weighted blend.
  BorrowedReading out;
  double weight_sum = 0.0;
  for (const auto& s : in_range) {
    const double w = 1.0 / (1.0 + s.dist);
    out.value += w * s.record.value;
    weight_sum += w;
    out.newest_timestamp =
        std::max(out.newest_timestamp, s.record.timestamp);
  }
  out.value /= weight_sum;
  out.contributors = in_range.size();
  out.reliability =
      1.0 - 1.0 / (1.0 + static_cast<double>(out.contributors));
  return out;
}

}  // namespace sensedroid::middleware
