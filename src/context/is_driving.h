// The 'IsDriving' computational virtual sensor (Fig. 3 / Fig. 4): detects
// vehicular motion from a (compressively sampled) accelerometer window.
// "Fig. 4 shows the reconstruction accuracy of an accelerometer signal of
// 256 samples from just 30 random samples in determining the 'IsDriving'
// context" — bench/fig4_reconstruction regenerates that curve through
// this detector's pipeline.
#pragma once

#include <cstddef>

#include "context/activity.h"
#include "context/context_engine.h"
#include "sensing/probe.h"

namespace sensedroid::context {

/// Result of one detection window.
struct DrivingDecision {
  bool is_driving = false;
  sensing::Activity classified = sensing::Activity::kIdle;
  double sensing_energy_j = 0.0;
  std::size_t samples_used = 0;
};

/// Detects driving from accelerometer windows fed through a ContextEngine.
class IsDrivingDetector {
 public:
  /// `rate_hz` = accelerometer rate.  Throws when <= 0.
  explicit IsDrivingDetector(double rate_hz,
                             const ActivityThresholds& thr = {});

  /// Decides from one (continuous or compressive) batch.
  DrivingDecision decide(const sensing::SampleBatch& batch,
                         double sensor_sigma);

 private:
  ContextEngine engine_;
  ActivityThresholds thresholds_;
};

}  // namespace sensedroid::context
