#include "context/activity.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace sensedroid::context {

sensing::Activity classify_activity(const WindowFeatures& f,
                                    const ActivityThresholds& thr) {
  if (f.variance < thr.idle_variance) return sensing::Activity::kIdle;
  return f.dominant_freq_hz <= thr.walking_max_freq_hz
             ? sensing::Activity::kWalking
             : sensing::Activity::kDriving;
}

double activity_accuracy(const sensing::LabeledTrace& trace,
                         std::size_t window, double rate_hz,
                         const ActivityThresholds& thr) {
  if (window == 0 || trace.samples.size() < window) {
    throw std::invalid_argument("activity_accuracy: trace shorter than window");
  }
  const std::size_t n_windows = trace.samples.size() / window;
  std::size_t correct = 0;
  for (std::size_t w = 0; w < n_windows; ++w) {
    const std::span<const double> seg(trace.samples.data() + w * window,
                                      window);
    // Majority ground-truth label over the segment.
    std::array<std::size_t, 3> votes{};
    for (std::size_t i = 0; i < window; ++i) {
      votes[static_cast<std::size_t>(trace.labels[w * window + i])]++;
    }
    const auto majority = static_cast<sensing::Activity>(
        std::distance(votes.begin(),
                      std::max_element(votes.begin(), votes.end())));
    const auto predicted =
        classify_activity(extract_features(seg, rate_hz), thr);
    if (predicted == majority) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n_windows);
}

}  // namespace sensedroid::context
