#include "context/group_context.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sensedroid::context {

double group_stress_quotient(std::span<const double> member_stress) {
  if (member_stress.empty()) {
    throw std::invalid_argument("group_stress_quotient: empty group");
  }
  double sum = 0.0;
  double worst = 0.0;
  for (double s : member_stress) {
    if (s < 0.0 || s > 1.0) {
      throw std::invalid_argument(
          "group_stress_quotient: stress must be in [0, 1]");
    }
    sum += s;
    worst = std::max(worst, s);
  }
  const double mean = sum / static_cast<double>(member_stress.size());
  // 70% shared mood, 30% the most stressed member.
  return std::clamp(0.7 * mean + 0.3 * worst, 0.0, 1.0);
}

double family_health_indicator(std::span<const MemberDay> family) {
  if (family.empty()) {
    throw std::invalid_argument("family_health_indicator: empty family");
  }
  double total = 0.0;
  for (const MemberDay& m : family) {
    const double activity = std::min(m.active_minutes / 45.0, 1.0);
    const double sleep = std::min(m.sleep_hours / 8.0, 1.0);
    const double stress = std::clamp(m.stress_level, 0.0, 1.0);
    const double exposure = std::clamp(m.pollutant_exposure, 0.0, 1.0);
    const double score =
        100.0 * (0.35 * activity + 0.35 * sleep + 0.20 * (1.0 - stress) +
                 0.10 * (1.0 - exposure));
    total += score;
  }
  return total / static_cast<double>(family.size());
}

bool majority_context(const std::vector<bool>& member_flags) {
  if (member_flags.empty()) {
    throw std::invalid_argument("majority_context: empty group");
  }
  std::size_t yes = 0;
  for (bool f : member_flags) {
    if (f) ++yes;
  }
  return 2 * yes > member_flags.size();
}

double context_agreement(const std::vector<bool>& member_flags) {
  if (member_flags.empty()) {
    throw std::invalid_argument("context_agreement: empty group");
  }
  std::size_t yes = 0;
  for (bool f : member_flags) {
    if (f) ++yes;
  }
  const std::size_t majority = std::max(yes, member_flags.size() - yes);
  return static_cast<double>(majority) /
         static_cast<double>(member_flags.size());
}

}  // namespace sensedroid::context
