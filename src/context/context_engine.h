// Compressive context processing (Section 3): "SenseDroid employs
// compressive sensing in the temporal dimension to exploit the temporal
// correlation in the sensor measurements to achieve energy efficient
// context determination."
//
// The engine turns a compressive SampleBatch into a full reconstructed
// window (CHS over a DCT basis) plus the feature vector context
// classifiers consume.  Bases are cached per window length because
// building an N x N DCT is the expensive step.
#pragma once

#include <cstddef>
#include <map>

#include "cs/chs.h"
#include "linalg/matrix.h"
#include "sensing/probe.h"

namespace sensedroid::context {

using linalg::Vector;

/// Scalar features of one signal window.
struct WindowFeatures {
  double mean = 0.0;
  double variance = 0.0;
  double dominant_freq_hz = 0.0;  ///< frequency of the largest AC DCT atom
  double band_energy_low = 0.0;   ///< spectrum energy below 1 Hz
  double band_energy_mid = 0.0;   ///< 1..5 Hz (gait band)
  double band_energy_high = 0.0;  ///< above 5 Hz (vibration band)
  double zero_crossing_rate = 0.0;
};

/// Extracts features from a full window sampled at `rate_hz`.  Throws
/// std::invalid_argument on empty input or non-positive rate.
WindowFeatures extract_features(std::span<const double> window,
                                double rate_hz);

/// One reconstructed acquisition window.
struct ContextWindow {
  Vector reconstruction;   ///< full window estimate
  WindowFeatures features;
  double sensing_energy_j = 0.0;
  std::size_t samples_used = 0;  ///< measurements actually taken
};

/// Reconstructs contexts from (possibly compressive) probe batches.
class ContextEngine {
 public:
  /// `rate_hz` is the probe's nominal sampling rate (for feature
  /// frequencies).  Throws std::invalid_argument when <= 0.
  explicit ContextEngine(double rate_hz);

  /// Processes one batch: continuous batches pass through, compressive /
  /// uniform batches are CHS-reconstructed in a DCT basis first.
  ContextWindow process(const sensing::SampleBatch& batch,
                        double sensor_sigma);

  double rate_hz() const noexcept { return rate_hz_; }

 private:
  const linalg::Matrix& basis_for(std::size_t n);

  double rate_hz_;
  std::map<std::size_t, linalg::Matrix> basis_cache_;
};

}  // namespace sensedroid::context
