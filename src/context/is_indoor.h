// The 'IsIndoor' computational virtual sensor (Section 3): "we use
// compressive sampling instead of continuous uniform measurement of the
// GPS and WiFi to derive the 'IsIndoor' flag with similar accuracy while
// saving energy consumption.  This 'IsIndoor' flag spatial field can be
// used, for instance, during an earthquake to assess the potential
// dangers to human life."
//
// Detection fuses two cues: GPS fix quality collapses indoors, visible
// WiFi AP count rises indoors.  Under compressive sampling both signals
// are acquired at a fraction of the window and CHS-reconstructed before
// thresholding; experiment E7 sweeps the budget and reports the
// accuracy/energy trade.
#pragma once

#include <cstddef>
#include <vector>

#include "context/context_engine.h"
#include "linalg/matrix.h"
#include "sensing/probe.h"

namespace sensedroid::context {

/// Fusion thresholds: indoor when a weighted score of (1 - gps_quality)
/// and normalized wifi count crosses 0.5.
struct IndoorThresholds {
  double gps_weight = 0.6;
  double wifi_weight = 0.4;
  double wifi_norm = 8.0;  ///< AP count treated as "fully indoor"
};

/// Per-sample indoor decision from full GPS-quality and WiFi-count
/// windows (sizes must match; throws std::invalid_argument otherwise).
std::vector<bool> indoor_flags(std::span<const double> gps_quality,
                               std::span<const double> wifi_count,
                               const IndoorThresholds& thr = {});

/// Result of evaluating a detection strategy over one day trace.
struct IndoorEvaluation {
  double accuracy = 0.0;        ///< fraction of samples correctly flagged
  double sensing_energy_j = 0.0;
  std::size_t gps_samples = 0;
  std::size_t wifi_samples = 0;
};

/// Runs the detector over one indoor/outdoor day: acquires GPS and WiFi
/// through the given probes window by window, reconstructs when the
/// probes are compressive, fuses, and scores against the ground-truth
/// schedule.  Both probes must share the window length; the schedule
/// length is truncated to whole windows.
IndoorEvaluation evaluate_indoor_detector(
    const std::vector<bool>& truth_schedule, sensing::SensingProbe& gps_probe,
    sensing::SensingProbe& wifi_probe, const IndoorThresholds& thr = {});

}  // namespace sensedroid::context
