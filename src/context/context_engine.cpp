#include "context/context_engine.h"

#include <cmath>
#include <stdexcept>

#include "linalg/basis.h"
#include "linalg/vector_ops.h"

namespace sensedroid::context {

WindowFeatures extract_features(std::span<const double> window,
                                double rate_hz) {
  if (window.empty()) {
    throw std::invalid_argument("extract_features: empty window");
  }
  if (rate_hz <= 0.0) {
    throw std::invalid_argument("extract_features: rate must be positive");
  }
  WindowFeatures f;
  f.mean = linalg::mean(window);
  f.variance = linalg::variance(window);

  // Spectral features via the orthonormal DCT: atom k of an N-window at
  // rate fs corresponds to frequency k * fs / (2N).
  const std::size_t n = window.size();
  const auto& basis = linalg::dct_basis(n);
  const Vector alpha = basis.transpose_times(window);
  const double hz_per_bin = rate_hz / (2.0 * static_cast<double>(n));

  double best_mag = 0.0;
  for (std::size_t k = 1; k < n; ++k) {  // skip DC for dominant frequency
    const double freq = static_cast<double>(k) * hz_per_bin;
    const double e = alpha[k] * alpha[k];
    if (std::abs(alpha[k]) > best_mag) {
      best_mag = std::abs(alpha[k]);
      f.dominant_freq_hz = freq;
    }
    if (freq < 1.0) {
      f.band_energy_low += e;
    } else if (freq < 5.0) {
      f.band_energy_mid += e;
    } else {
      f.band_energy_high += e;
    }
  }

  std::size_t crossings = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const double a = window[i - 1] - f.mean;
    const double b = window[i] - f.mean;
    if ((a < 0.0 && b >= 0.0) || (a >= 0.0 && b < 0.0)) ++crossings;
  }
  f.zero_crossing_rate =
      static_cast<double>(crossings) / static_cast<double>(n);
  return f;
}

ContextEngine::ContextEngine(double rate_hz) : rate_hz_(rate_hz) {
  if (rate_hz <= 0.0) {
    throw std::invalid_argument("ContextEngine: rate must be positive");
  }
}

const linalg::Matrix& ContextEngine::basis_for(std::size_t n) {
  auto it = basis_cache_.find(n);
  if (it == basis_cache_.end()) {
    it = basis_cache_.emplace(n, linalg::dct_basis(n)).first;
  }
  return it->second;
}

ContextWindow ContextEngine::process(const sensing::SampleBatch& batch,
                                     double sensor_sigma) {
  ContextWindow out;
  out.sensing_energy_j = batch.energy_j;
  out.samples_used = batch.indices.size();

  if (batch.indices.size() == batch.window) {
    // Continuous acquisition: the batch is the window.
    out.reconstruction = batch.values;
  } else {
    const auto meas = batch.to_measurement(sensor_sigma);
    cs::ChsOptions opts;
    opts.refit = sensor_sigma > 0.0 ? cs::Refit::kGls : cs::Refit::kOls;
    const auto res = cs::chs_reconstruct(basis_for(batch.window), meas, opts);
    out.reconstruction = res.reconstruction;
  }
  out.features = extract_features(out.reconstruction, rate_hz_);
  return out;
}

}  // namespace sensedroid::context
