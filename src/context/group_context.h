// Group context determination (Section 1 and the middleware feature list:
// "shared sensing and context are used to determine group context,
// behavior, and preferences").  Implements the paper's named examples:
// combined stress quotient and the family health indicator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sensedroid::context {

/// One member's daily wellness summary (from their local contexts).
struct MemberDay {
  double stress_level = 0.0;    ///< 0 (calm) .. 1 (max stress)
  double active_minutes = 0.0;  ///< walking/exercise minutes
  double sleep_hours = 0.0;
  double pollutant_exposure = 0.0;  ///< 0 .. 1 normalized dose
};

/// Combined stress quotient of a group: mean stress amplified by the
/// worst member (a stressed member stresses the family).  Range [0, 1].
/// Throws std::invalid_argument when the group is empty or a level is
/// outside [0, 1].
double group_stress_quotient(std::span<const double> member_stress);

/// Family health indicator in [0, 100]: rewards activity (target 45
/// min/day) and sleep (target 8 h), penalizes stress and exposure.
/// Throws std::invalid_argument on an empty family.
double family_health_indicator(std::span<const MemberDay> family);

/// Majority boolean context over group members (ties -> false); e.g. "is
/// the group indoors".  Takes a vector<bool> because that is what the
/// per-member flag pipelines produce (and span<const bool> cannot view
/// the packed representation).  Throws std::invalid_argument when empty.
bool majority_context(const std::vector<bool>& member_flags);

/// Fraction of members agreeing with the majority — a confidence measure
/// for group decisions.
double context_agreement(const std::vector<bool>& member_flags);

}  // namespace sensedroid::context
