// Activity recognition from accelerometer windows (the UbiFit-style
// "activity modeling to infer people's activities" of Section 1).
// A transparent threshold classifier over the WindowFeatures bands: idle
// is quiet, walking concentrates energy in the 1-5 Hz gait band, driving
// in the >5 Hz vibration band.
#pragma once

#include "context/context_engine.h"
#include "sensing/signals.h"

namespace sensedroid::context {

/// Classifier thresholds; defaults are calibrated for the synthetic
/// accelerometer regimes of sensing::accelerometer_trace: human gait
/// keeps its dominant harmonic under ~2.2 Hz, vehicular road/engine
/// vibration sits at 3 Hz and above.
struct ActivityThresholds {
  double idle_variance = 0.05;        ///< below: idle
  double walking_max_freq_hz = 2.9;   ///< dominant freq above: driving
};

/// Classifies one feature vector.
sensing::Activity classify_activity(const WindowFeatures& f,
                                    const ActivityThresholds& thr = {});

/// Fraction of windows of a labeled trace classified correctly when the
/// trace is cut into `window` -sample segments (majority label per
/// segment is the ground truth).  Throws std::invalid_argument when the
/// trace is shorter than one window.
double activity_accuracy(const sensing::LabeledTrace& trace,
                         std::size_t window, double rate_hz,
                         const ActivityThresholds& thr = {});

}  // namespace sensedroid::context
