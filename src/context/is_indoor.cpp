#include "context/is_indoor.h"

#include <algorithm>
#include <stdexcept>

#include "cs/chs.h"
#include "linalg/basis.h"

namespace sensedroid::context {

std::vector<bool> indoor_flags(std::span<const double> gps_quality,
                               std::span<const double> wifi_count,
                               const IndoorThresholds& thr) {
  if (gps_quality.size() != wifi_count.size()) {
    throw std::invalid_argument("indoor_flags: size mismatch");
  }
  std::vector<bool> flags(gps_quality.size());
  for (std::size_t i = 0; i < flags.size(); ++i) {
    const double gps_term =
        1.0 - std::clamp(gps_quality[i], 0.0, 1.0);  // weak fix -> indoor
    const double wifi_term =
        std::clamp(wifi_count[i] / thr.wifi_norm, 0.0, 1.0);
    const double score =
        thr.gps_weight * gps_term + thr.wifi_weight * wifi_term;
    flags[i] = score > 0.5;
  }
  return flags;
}

IndoorEvaluation evaluate_indoor_detector(
    const std::vector<bool>& truth_schedule, sensing::SensingProbe& gps_probe,
    sensing::SensingProbe& wifi_probe, const IndoorThresholds& thr) {
  const std::size_t window = gps_probe.config().window;
  if (wifi_probe.config().window != window) {
    throw std::invalid_argument(
        "evaluate_indoor_detector: probes must share a window length");
  }
  const std::size_t n_windows = truth_schedule.size() / window;
  if (n_windows == 0) {
    throw std::invalid_argument(
        "evaluate_indoor_detector: schedule shorter than one window");
  }

  const auto basis = linalg::dct_basis(window);
  auto reconstruct = [&](const sensing::SampleBatch& batch,
                         double sigma) -> linalg::Vector {
    if (batch.indices.size() == batch.window) return batch.values;
    const auto meas = batch.to_measurement(sigma);
    return cs::chs_reconstruct(basis, meas).reconstruction;
  };

  IndoorEvaluation ev;
  std::size_t correct = 0;
  for (std::size_t w = 0; w < n_windows; ++w) {
    const std::size_t start = w * window;
    auto gps_batch = gps_probe.acquire(start);
    auto wifi_batch = wifi_probe.acquire(start);
    ev.sensing_energy_j += gps_batch.energy_j + wifi_batch.energy_j;
    ev.gps_samples += gps_batch.indices.size();
    ev.wifi_samples += wifi_batch.indices.size();

    const auto gps_full =
        reconstruct(gps_batch, gps_probe.sensor().noise_sigma());
    const auto wifi_full =
        reconstruct(wifi_batch, wifi_probe.sensor().noise_sigma());
    const auto flags = indoor_flags(gps_full, wifi_full, thr);
    for (std::size_t i = 0; i < window; ++i) {
      if (flags[i] == truth_schedule[start + i]) ++correct;
    }
  }
  ev.accuracy = static_cast<double>(correct) /
                static_cast<double>(n_windows * window);
  return ev;
}

}  // namespace sensedroid::context
