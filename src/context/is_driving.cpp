#include "context/is_driving.h"

namespace sensedroid::context {

IsDrivingDetector::IsDrivingDetector(double rate_hz,
                                     const ActivityThresholds& thr)
    : engine_(rate_hz), thresholds_(thr) {}

DrivingDecision IsDrivingDetector::decide(const sensing::SampleBatch& batch,
                                          double sensor_sigma) {
  const ContextWindow w = engine_.process(batch, sensor_sigma);
  DrivingDecision d;
  d.classified = classify_activity(w.features, thresholds_);
  d.is_driving = d.classified == sensing::Activity::kDriving;
  d.sensing_energy_j = w.sensing_energy_j;
  d.samples_used = w.samples_used;
  return d;
}

}  // namespace sensedroid::context
