// Auction-based incentive mechanisms (Section 5's citations):
//   - sealed-bid second-price procurement auction [Danezis et al.]:
//     truthful — bidding the true cost is a dominant strategy;
//   - RADP-VPC reverse auction with virtual participation credit
//     [Lee & Hoh]: keeps losing bidders engaged by crediting them, which
//     stabilizes participation over repeated rounds;
//   - fixed-price posting, the naive baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "incentives/participant.h"

namespace sensedroid::incentives {

/// Outcome of one procurement round.
struct AuctionRound {
  std::vector<std::uint32_t> winners;  ///< participant ids selected
  double total_payment = 0.0;          ///< platform spend this round
  double price_per_reading = 0.0;      ///< average payment per winner
};

/// Sealed-bid (k+1)-price reverse auction: the k lowest bids win and each
/// winner is paid the (k+1)-th lowest bid (uniform clearing price).  With
/// fewer than k+1 bidders the reserve price clears.  Truthful for
/// single-minded bidders.  Bids must be parallel to `bids`' participants.
/// Throws std::invalid_argument when k == 0.
AuctionRound second_price_auction(const std::vector<double>& bids,
                                  std::size_t k, double reserve_price);

/// RADP-VPC state: repeated reverse auctions with Virtual Participation
/// Credit.  Losers earn `vpc` credit per lost round, subtracted from
/// their effective bid in future rounds; winning resets the credit.
/// Participants whose cumulative utility stays below `dropout_utility`
/// for `patience` consecutive losing rounds deactivate — the phenomenon
/// VPC exists to prevent.
class RadpVpc {
 public:
  struct Params {
    std::size_t k = 10;            ///< readings bought per round
    double vpc = 0.1;              ///< credit per losing round
    double dropout_utility = 0.0;  ///< leave when utility stuck <= this
    std::size_t patience = 3;      ///< losing rounds tolerated
    double reserve_price = 1e9;    ///< max clearing price
  };

  explicit RadpVpc(const Params& params);

  /// Runs one round over the population: active participants bid
  /// true_cost - credit (not below 0), k lowest effective bids win at the
  /// uniform (k+1)-th price, winners are paid and charged their true
  /// cost, losers accrue credit and may drop out.  Returns the round
  /// outcome; mutates the population's accounts and activity.
  AuctionRound run_round(std::vector<Participant>& population);

  std::size_t rounds_run() const noexcept { return rounds_; }

 private:
  Params params_;
  std::vector<double> credit_;        // indexed by participant id
  std::vector<std::size_t> lost_streak_;
  std::size_t rounds_ = 0;
};

/// Fixed-price posting: everyone with true_cost <= price participates and
/// is paid `price`; the platform takes at most k of them (lowest ids —
/// arrival order).  The baseline both papers improve on.
AuctionRound fixed_price_round(std::vector<Participant>& population,
                               double price, std::size_t k);

}  // namespace sensedroid::incentives
