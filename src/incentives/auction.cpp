#include "incentives/auction.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sensedroid::incentives {

AuctionRound second_price_auction(const std::vector<double>& bids,
                                  std::size_t k, double reserve_price) {
  if (k == 0) {
    throw std::invalid_argument("second_price_auction: k must be positive");
  }
  AuctionRound round;
  if (bids.empty()) return round;

  std::vector<std::size_t> order(bids.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return bids[a] < bids[b] || (bids[a] == bids[b] && a < b);
  });

  const std::size_t winners = std::min(k, bids.size());
  // Uniform clearing price: the first losing bid, or the reserve when
  // everyone wins.
  const double clearing = winners < bids.size()
                              ? std::min(bids[order[winners]], reserve_price)
                              : reserve_price;
  for (std::size_t i = 0; i < winners; ++i) {
    if (bids[order[i]] > reserve_price) break;  // nobody under reserve left
    round.winners.push_back(static_cast<std::uint32_t>(order[i]));
    round.total_payment += clearing;
  }
  if (!round.winners.empty()) {
    round.price_per_reading =
        round.total_payment / static_cast<double>(round.winners.size());
  }
  return round;
}

RadpVpc::RadpVpc(const Params& params) : params_(params) {
  if (params.k == 0) {
    throw std::invalid_argument("RadpVpc: k must be positive");
  }
}

AuctionRound RadpVpc::run_round(std::vector<Participant>& population) {
  if (credit_.size() < population.size()) {
    credit_.resize(population.size(), 0.0);
    lost_streak_.resize(population.size(), 0);
  }
  ++rounds_;

  // Effective bids of active participants.
  std::vector<std::size_t> index;  // population index of each bid
  std::vector<double> bids;
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (!population[i].active) continue;
    index.push_back(i);
    bids.push_back(std::max(0.0, population[i].true_cost - credit_[i]));
  }

  AuctionRound outcome =
      second_price_auction(bids, params_.k, params_.reserve_price);

  // Settle accounts: winners are paid the clearing price and pay their
  // true cost; losers accrue credit and may drop out.
  std::vector<bool> won(index.size(), false);
  for (std::uint32_t bid_pos : outcome.winners) won[bid_pos] = true;
  std::vector<std::uint32_t> winner_ids;
  for (std::size_t b = 0; b < index.size(); ++b) {
    Participant& p = population[index[b]];
    if (won[b]) {
      p.earned += outcome.price_per_reading;
      p.spent += p.true_cost;
      credit_[index[b]] = 0.0;
      lost_streak_[index[b]] = 0;
      winner_ids.push_back(p.id);
    } else {
      credit_[index[b]] += params_.vpc;
      ++lost_streak_[index[b]];
      if (lost_streak_[index[b]] >= params_.patience &&
          p.utility() <= params_.dropout_utility) {
        p.active = false;
      }
    }
  }
  outcome.winners = std::move(winner_ids);  // report participant ids
  return outcome;
}

AuctionRound fixed_price_round(std::vector<Participant>& population,
                               double price, std::size_t k) {
  if (k == 0) {
    throw std::invalid_argument("fixed_price_round: k must be positive");
  }
  AuctionRound round;
  for (Participant& p : population) {
    if (round.winners.size() >= k) break;
    if (!p.active || p.true_cost > price) continue;
    p.earned += price;
    p.spent += p.true_cost;
    round.winners.push_back(p.id);
    round.total_payment += price;
  }
  if (!round.winners.empty()) {
    round.price_per_reading =
        round.total_payment / static_cast<double>(round.winners.size());
  }
  return round;
}

}  // namespace sensedroid::incentives
