#include "incentives/recruitment.h"

#include <algorithm>
#include <stdexcept>

namespace sensedroid::incentives {

std::size_t CoverageGrid::cell_of(const sim::Point& p) const noexcept {
  const sim::Point q = region.clamp(p);
  const double fx = region.width() > 0.0
                        ? (q.x - region.x0) / region.width()
                        : 0.0;
  const double fy = region.height() > 0.0
                        ? (q.y - region.y0) / region.height()
                        : 0.0;
  const std::size_t c = std::min(cols - 1, static_cast<std::size_t>(
                                               fx * static_cast<double>(cols)));
  const std::size_t r = std::min(rows - 1, static_cast<std::size_t>(
                                               fy * static_cast<double>(rows)));
  return r * cols + c;
}

RecruitmentResult recruit_greedy(const std::vector<Participant>& population,
                                 const CoverageGrid& grid, double budget) {
  if (grid.cell_count() == 0) {
    throw std::invalid_argument("recruit_greedy: empty grid");
  }
  RecruitmentResult result;
  std::vector<bool> covered(grid.cell_count(), false);
  std::vector<bool> taken(population.size(), false);
  double remaining = budget;

  while (true) {
    std::size_t best = population.size();
    double best_score = 0.0;
    for (std::size_t i = 0; i < population.size(); ++i) {
      const Participant& p = population[i];
      if (taken[i] || !p.active || p.true_cost > remaining) continue;
      const std::size_t cell = grid.cell_of(p.position);
      const double gain = covered[cell] ? 0.1 : 1.0;  // density still helps
      const double score =
          gain * p.reputation / std::max(p.true_cost, 1e-9);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == population.size()) break;
    taken[best] = true;
    remaining -= population[best].true_cost;
    result.total_cost += population[best].true_cost;
    result.selected.push_back(population[best].id);
    covered[grid.cell_of(population[best].position)] = true;
  }
  for (bool c : covered) {
    if (c) ++result.cells_covered;
  }
  return result;
}

RecruitmentResult recruit_arrival_order(
    const std::vector<Participant>& population, const CoverageGrid& grid,
    double budget) {
  if (grid.cell_count() == 0) {
    throw std::invalid_argument("recruit_arrival_order: empty grid");
  }
  RecruitmentResult result;
  std::vector<bool> covered(grid.cell_count(), false);
  double remaining = budget;
  for (const Participant& p : population) {
    if (!p.active || p.true_cost > remaining) continue;
    remaining -= p.true_cost;
    result.total_cost += p.true_cost;
    result.selected.push_back(p.id);
    covered[grid.cell_of(p.position)] = true;
  }
  for (bool c : covered) {
    if (c) ++result.cells_covered;
  }
  return result;
}

}  // namespace sensedroid::incentives
