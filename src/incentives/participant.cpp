#include "incentives/participant.h"

#include <stdexcept>

namespace sensedroid::incentives {

std::vector<Participant> make_population(std::size_t n, double cost_lo,
                                         double cost_hi,
                                         const sim::Rect& region, Rng& rng) {
  if (cost_lo < 0.0 || cost_hi < cost_lo) {
    throw std::invalid_argument("make_population: need 0 <= lo <= hi");
  }
  std::vector<Participant> pop(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop[i].id = static_cast<std::uint32_t>(i);
    pop[i].true_cost = rng.uniform(cost_lo, cost_hi);
    pop[i].position = {rng.uniform(region.x0, region.x1),
                       rng.uniform(region.y0, region.y1)};
    pop[i].reputation = rng.uniform(0.5, 1.0);
  }
  return pop;
}

}  // namespace sensedroid::incentives
