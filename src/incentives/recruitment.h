// Coverage-aware recruitment (Section 5, citing Reddy et al.:
// "selecting well-suited participants for sensing services within
// recruitment frameworks").  Given a zone grid over the deployment region
// and a budget, pick participants maximizing cell coverage weighted by
// reputation — a classic greedy max-coverage heuristic with its (1-1/e)
// guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "incentives/participant.h"

namespace sensedroid::incentives {

/// Result of a recruitment pass.
struct RecruitmentResult {
  std::vector<std::uint32_t> selected;  ///< participant ids, pick order
  double total_cost = 0.0;              ///< sum of selected true costs
  std::size_t cells_covered = 0;        ///< distinct grid cells reached
};

/// Partition of the region into rows x cols recruitment cells.
struct CoverageGrid {
  sim::Rect region;
  std::size_t rows = 1;
  std::size_t cols = 1;

  std::size_t cell_count() const noexcept { return rows * cols; }
  /// Cell index of a position (clamped into the region).
  std::size_t cell_of(const sim::Point& p) const noexcept;
};

/// Greedy reputation-weighted max-coverage under a cost budget: each step
/// picks the active participant with the best (new-cells * reputation /
/// cost) ratio until the budget or coverage is exhausted.  Throws
/// std::invalid_argument when the grid has no cells.
RecruitmentResult recruit_greedy(const std::vector<Participant>& population,
                                 const CoverageGrid& grid, double budget);

/// Baseline: recruit in arrival (id) order until the budget runs out.
RecruitmentResult recruit_arrival_order(
    const std::vector<Participant>& population, const CoverageGrid& grid,
    double budget);

}  // namespace sensedroid::incentives
