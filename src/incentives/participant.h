// Participant model for incentive mechanisms (Section 5: "Incentive
// mechanism to motivate participation and collaboration is an important
// aspect that needs to be researched to bring desirable economic
// properties and appropriate utility in the collaboration framework.")
//
// A participant has a private per-reading cost (battery wear, data plan,
// attention), a position (for coverage-aware recruitment), and a running
// account of payments received — the platform never observes the true
// cost, only bids.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/random.h"
#include "sim/geometry.h"

namespace sensedroid::incentives {

using linalg::Rng;

/// One crowd member eligible to sense.
struct Participant {
  std::uint32_t id = 0;
  double true_cost = 1.0;     ///< private valuation per reading
  sim::Point position;        ///< for coverage-aware recruitment
  double reputation = 1.0;    ///< data-quality track record, [0, 1]
  bool active = true;         ///< still willing to participate
  double earned = 0.0;        ///< cumulative payments
  double spent = 0.0;         ///< cumulative true cost incurred

  /// Net utility so far (what keeps the participant around).
  double utility() const noexcept { return earned - spent; }
};

/// Population generator: costs uniform in [cost_lo, cost_hi], positions
/// uniform in `region`, reputations in [0.5, 1].  Deterministic in rng.
std::vector<Participant> make_population(std::size_t n, double cost_lo,
                                         double cost_hi,
                                         const sim::Rect& region, Rng& rng);

}  // namespace sensedroid::incentives
