// Two-dimensional spatial field maps f[i,j] (Section 4).
//
// A field is the quantity a NanoCloud senses over its zone: temperature,
// pollutant concentration, the 'IsIndoor' danger flag during an
// earthquake, traffic intensity from 'IsDriving' contexts.  Reconstruction
// treats it as the length-N vector of eq. 1 (column stacking); this class
// owns that mapping and its inverse.
//
// Note on eq. 1: the paper prints x[k] = f[k mod H, floor(k/W)], which is
// internally inconsistent for W != H (k ranges over W*H but floor(k/W)
// would need to index columns when k mod H indexes rows).  We implement
// the column stacking it describes in prose — x[k] = f[k mod H,
// floor(k/H)] — which is a bijection for all W, H.
#pragma once

#include <cstddef>
#include <span>

#include "linalg/matrix.h"

namespace sensedroid::field {

using linalg::Vector;

/// Dense H x W field map.  Row index i in [0, H), column index j in
/// [0, W); N = W*H grid points.
class SpatialField {
 public:
  SpatialField() = default;

  /// Creates a width x height field filled with `fill`.
  SpatialField(std::size_t width, std::size_t height, double fill = 0.0);

  /// Rebuilds a field from its eq.-1 vectorization.  Throws
  /// std::invalid_argument if x.size() != width*height.
  static SpatialField from_vector(std::size_t width, std::size_t height,
                                  std::span<const double> x);

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }
  std::size_t size() const noexcept { return data_.size(); }  ///< N = W*H

  /// Element access, row i (0..H), column j (0..W); unchecked.
  double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[j * height_ + i];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[j * height_ + i];
  }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  /// Eq. 1: the column-stacked vector view (storage is already
  /// column-major, so this is a copy of the flat buffer).
  Vector vectorize() const { return data_; }

  /// Direct span over the column-stacked storage.
  std::span<const double> flat() const noexcept { return data_; }
  std::span<double> flat() noexcept { return data_; }

  /// Grid point index of (i, j) in the vectorization: k = j*H + i.
  std::size_t index_of(std::size_t i, std::size_t j) const noexcept {
    return j * height_ + i;
  }

  /// Inverse of index_of.
  struct Coord {
    std::size_t i;  ///< row
    std::size_t j;  ///< column
  };
  Coord coord_of(std::size_t k) const noexcept {
    return {k % height_, k / height_};
  }

  /// Copies the rectangle [i0, i0+h) x [j0, j0+w) into a new field.
  /// Throws std::out_of_range when the rectangle does not fit.
  SpatialField extract(std::size_t i0, std::size_t j0, std::size_t w,
                       std::size_t h) const;

  /// Writes `patch` back at (i0, j0); throws std::out_of_range if it does
  /// not fit.
  void insert(std::size_t i0, std::size_t j0, const SpatialField& patch);

  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;

  SpatialField& operator+=(const SpatialField& rhs);
  SpatialField& operator-=(const SpatialField& rhs);
  SpatialField& operator*=(double s) noexcept;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  Vector data_;  // column-major: data_[j*H + i]
};

/// NRMSE between two equally-shaped fields (the per-zone error metric of
/// experiments E2/E10).  Throws std::invalid_argument on shape mismatch.
double field_nrmse(const SpatialField& estimate, const SpatialField& truth);

}  // namespace sensedroid::field
