#include "field/traces.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "field/generators.h"

namespace sensedroid::field {

void TraceSet::add(SpatialField snapshot) {
  if (!traces_.empty() &&
      (snapshot.width() != traces_.front().width() ||
       snapshot.height() != traces_.front().height())) {
    throw std::invalid_argument("TraceSet::add: shape mismatch");
  }
  traces_.push_back(std::move(snapshot));
}

Matrix TraceSet::to_matrix() const {
  if (traces_.empty()) {
    throw std::logic_error("TraceSet::to_matrix: no traces");
  }
  const std::size_t n = field_size();
  Matrix x(traces_.size(), n);
  for (std::size_t t = 0; t < traces_.size(); ++t) {
    const auto flat = traces_[t].flat();
    std::copy(flat.begin(), flat.end(), x.row(t).begin());
  }
  return x;
}

TraceSet evolving_plume_traces(std::size_t width, std::size_t height,
                               std::size_t n_sources, std::size_t steps,
                               Rng& rng, double drift, double amp_jitter) {
  std::vector<GaussianSource> sources(n_sources);
  const double w = static_cast<double>(width);
  const double h = static_cast<double>(height);
  for (auto& s : sources) {
    s.ci = rng.uniform(0.0, h);
    s.cj = rng.uniform(0.0, w);
    s.sigma = rng.uniform(w / 10.0, w / 4.0);
    s.amplitude = rng.uniform(0.5, 2.0);
  }
  TraceSet set;
  for (std::size_t t = 0; t < steps; ++t) {
    set.add(gaussian_plume_field(width, height, sources, 0.0));
    for (auto& s : sources) {
      s.ci = std::clamp(s.ci + rng.gaussian(0.0, drift), 0.0, h - 1.0);
      s.cj = std::clamp(s.cj + rng.gaussian(0.0, drift), 0.0, w - 1.0);
      s.amplitude =
          std::max(0.1, s.amplitude * (1.0 + rng.gaussian(0.0, amp_jitter)));
    }
  }
  return set;
}

}  // namespace sensedroid::field
