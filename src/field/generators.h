// Synthetic field generators — the stand-ins for the physical phenomena
// the paper's scenarios sense (DESIGN.md substitution table).  Each
// produces fields with the sparsity structure its scenario exhibits:
// smooth diffuse plumes (temperature/pollutant), sharp fire fronts
// (piecewise constant, Haar-sparse), urban gradients, and exactly-sparse
// fields for controlled CS experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "field/spatial_field.h"
#include "linalg/random.h"

namespace sensedroid::field {

using linalg::Rng;

/// One Gaussian source: a bump of `amplitude` centered at (ci, cj) with
/// spatial scale `sigma` (grid units).
struct GaussianSource {
  double ci = 0.0;
  double cj = 0.0;
  double sigma = 1.0;
  double amplitude = 1.0;
};

/// Superposition of Gaussian sources on a `width` x `height` grid plus a
/// constant `ambient` level — diffuse plumes (heat, pollutants).
SpatialField gaussian_plume_field(std::size_t width, std::size_t height,
                                  std::span<const GaussianSource> sources,
                                  double ambient = 0.0);

/// Random smooth field: `n_sources` bumps with amplitude in [0.5, 2],
/// sigma in [width/10, width/4], placed uniformly.  Deterministic in rng.
SpatialField random_plume_field(std::size_t width, std::size_t height,
                                std::size_t n_sources, Rng& rng,
                                double ambient = 0.0);

/// Fire-front field: `burning` ellipse regions at `intensity` over a cool
/// ambient, with a smooth decay rim of `rim` cells.  Piecewise-constant
/// structure (Haar-sparse) with a small smooth transition.
struct FireRegion {
  double ci = 0.0;       ///< center row
  double cj = 0.0;       ///< center column
  double radius_i = 1.0; ///< vertical semi-axis
  double radius_j = 1.0; ///< horizontal semi-axis
  double intensity = 1.0;
};
SpatialField fire_front_field(std::size_t width, std::size_t height,
                              std::span<const FireRegion> regions,
                              double ambient = 20.0, double rim = 2.0);

/// Urban temperature: large-scale gradient (heat island) + per-block
/// variation + `n_hotspots` localized sources.
SpatialField urban_temperature_field(std::size_t width, std::size_t height,
                                     Rng& rng, std::size_t n_hotspots = 4);

/// Field that is exactly k-sparse in the 2-D DCT basis of its
/// vectorization, amplitudes in [1, 3] with random signs, support limited
/// to the lowest `low_fraction` of coefficients (smooth-physical default).
SpatialField sparse_dct_field(std::size_t width, std::size_t height,
                              std::size_t k, Rng& rng,
                              double low_fraction = 0.25);

/// Spatially inhomogeneous field for the local-vs-global experiment (E2):
/// quadrants with very different detail levels — one flat, one smooth,
/// one busy, one with a sharp front — so a single global sparsity level
/// fits none of them well.
SpatialField quadrant_contrast_field(std::size_t width, std::size_t height,
                                     Rng& rng);

/// Additive iid Gaussian sensor-floor noise over a whole field.
void add_noise(SpatialField& f, double sigma, Rng& rng);

}  // namespace sensedroid::field
