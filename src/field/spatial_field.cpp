#include "field/spatial_field.h"

#include <algorithm>
#include <stdexcept>

#include "linalg/vector_ops.h"

namespace sensedroid::field {

SpatialField::SpatialField(std::size_t width, std::size_t height, double fill)
    : width_(width), height_(height), data_(width * height, fill) {}

SpatialField SpatialField::from_vector(std::size_t width, std::size_t height,
                                       std::span<const double> x) {
  if (x.size() != width * height) {
    throw std::invalid_argument("SpatialField::from_vector: size mismatch");
  }
  SpatialField f(width, height);
  std::copy(x.begin(), x.end(), f.data_.begin());
  return f;
}

double& SpatialField::at(std::size_t i, std::size_t j) {
  if (i >= height_ || j >= width_) {
    throw std::out_of_range("SpatialField::at");
  }
  return (*this)(i, j);
}

double SpatialField::at(std::size_t i, std::size_t j) const {
  if (i >= height_ || j >= width_) {
    throw std::out_of_range("SpatialField::at");
  }
  return (*this)(i, j);
}

SpatialField SpatialField::extract(std::size_t i0, std::size_t j0,
                                   std::size_t w, std::size_t h) const {
  if (i0 + h > height_ || j0 + w > width_) {
    throw std::out_of_range("SpatialField::extract: rectangle out of range");
  }
  SpatialField out(w, h);
  for (std::size_t j = 0; j < w; ++j) {
    for (std::size_t i = 0; i < h; ++i) {
      out(i, j) = (*this)(i0 + i, j0 + j);
    }
  }
  return out;
}

void SpatialField::insert(std::size_t i0, std::size_t j0,
                          const SpatialField& patch) {
  if (i0 + patch.height() > height_ || j0 + patch.width() > width_) {
    throw std::out_of_range("SpatialField::insert: patch out of range");
  }
  for (std::size_t j = 0; j < patch.width(); ++j) {
    for (std::size_t i = 0; i < patch.height(); ++i) {
      (*this)(i0 + i, j0 + j) = patch(i, j);
    }
  }
}

double SpatialField::min() const noexcept {
  return data_.empty() ? 0.0 : *std::min_element(data_.begin(), data_.end());
}

double SpatialField::max() const noexcept {
  return data_.empty() ? 0.0 : *std::max_element(data_.begin(), data_.end());
}

double SpatialField::mean() const noexcept { return linalg::mean(data_); }

SpatialField& SpatialField::operator+=(const SpatialField& rhs) {
  if (rhs.width_ != width_ || rhs.height_ != height_) {
    throw std::invalid_argument("SpatialField::operator+=: shape mismatch");
  }
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
  return *this;
}

SpatialField& SpatialField::operator-=(const SpatialField& rhs) {
  if (rhs.width_ != width_ || rhs.height_ != height_) {
    throw std::invalid_argument("SpatialField::operator-=: shape mismatch");
  }
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
  return *this;
}

SpatialField& SpatialField::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

double field_nrmse(const SpatialField& estimate, const SpatialField& truth) {
  if (estimate.width() != truth.width() ||
      estimate.height() != truth.height()) {
    throw std::invalid_argument("field_nrmse: shape mismatch");
  }
  return linalg::nrmse(estimate.flat(), truth.flat());
}

}  // namespace sensedroid::field
