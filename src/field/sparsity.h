// Local sparsity estimation and measurement budgeting (Section 3).
//
// "The number of random observations from any region should correspond to
// the local spatio-temporal sparsity as well as the NC size instead of the
// global sparsity."  These routines compute per-zone effective sparsity
// (from the live field or from prior traces) and turn it into per-zone
// measurement budgets M_z ~ O(K_z log N_z) — the hierarchy's core lever
// over Luo-style global schemes.
#pragma once

#include <cstddef>
#include <vector>

#include "field/spatial_field.h"
#include "field/traces.h"
#include "field/zones.h"
#include "linalg/basis.h"

namespace sensedroid::field {

/// Effective sparsity of one field in a basis kind: the smallest K whose
/// best-K approximation reaches relative error <= tol.  (Builds the basis
/// internally; PCA is not supported here — use sparsity_from_traces.)
std::size_t field_sparsity(const SpatialField& f, linalg::BasisKind kind,
                           double tol = 0.05);

/// Per-zone effective sparsity of a field under a zone grid.
std::vector<std::size_t> zone_sparsities(const SpatialField& f,
                                         const ZoneGrid& grid,
                                         linalg::BasisKind kind,
                                         double tol = 0.05);

/// Sparsity estimate for a zone from historical traces: the maximum
/// effective sparsity over the trace set (a conservative prior).  Throws
/// std::logic_error when traces are empty.
std::size_t sparsity_from_traces(const TraceSet& traces,
                                 linalg::BasisKind kind, double tol = 0.05);

/// The paper's measurement rule M = O(K log N): returns
/// ceil(c * max(K,1) * log(max(N,2))) clamped to [K+1, N] so the refit
/// stays overdetermined and never exceeds the zone size.
std::size_t measurements_for_sparsity(std::size_t k, std::size_t n,
                                      double c = 1.5);

/// Allocation of a global measurement budget across zones.
struct ZoneBudget {
  std::size_t zone_id = 0;
  std::size_t measurements = 0;
};

/// Splits `total_budget` across zones proportionally to K_z * log(N_z)
/// (adaptively, Section 3) with a floor of `min_per_zone`, never exceeding
/// any zone's size.  If the floors alone exceed the budget the floors win
/// (the budget is a target, coverage is a correctness requirement).
std::vector<ZoneBudget> allocate_budget(
    const std::vector<std::size_t>& zone_sparsity,
    const std::vector<std::size_t>& zone_sizes, std::size_t total_budget,
    std::size_t min_per_zone = 4);

/// Uniform (Luo-style, global-sparsity) allocation: the same fraction of
/// every zone is sampled regardless of its local detail.
std::vector<ZoneBudget> allocate_uniform(
    const std::vector<std::size_t>& zone_sizes, std::size_t total_budget,
    std::size_t min_per_zone = 4);

}  // namespace sensedroid::field
