#include "field/generators.h"

#include <algorithm>
#include <cmath>

#include "linalg/basis.h"

namespace sensedroid::field {

SpatialField gaussian_plume_field(std::size_t width, std::size_t height,
                                  std::span<const GaussianSource> sources,
                                  double ambient) {
  SpatialField f(width, height, ambient);
  for (const auto& s : sources) {
    const double inv2s2 = 1.0 / (2.0 * s.sigma * s.sigma);
    for (std::size_t j = 0; j < width; ++j) {
      for (std::size_t i = 0; i < height; ++i) {
        const double di = static_cast<double>(i) - s.ci;
        const double dj = static_cast<double>(j) - s.cj;
        f(i, j) += s.amplitude * std::exp(-(di * di + dj * dj) * inv2s2);
      }
    }
  }
  return f;
}

SpatialField random_plume_field(std::size_t width, std::size_t height,
                                std::size_t n_sources, Rng& rng,
                                double ambient) {
  std::vector<GaussianSource> sources(n_sources);
  const double w = static_cast<double>(width);
  const double h = static_cast<double>(height);
  for (auto& s : sources) {
    s.ci = rng.uniform(0.0, h);
    s.cj = rng.uniform(0.0, w);
    s.sigma = rng.uniform(w / 10.0, w / 4.0);
    s.amplitude = rng.uniform(0.5, 2.0);
  }
  return gaussian_plume_field(width, height, sources, ambient);
}

SpatialField fire_front_field(std::size_t width, std::size_t height,
                              std::span<const FireRegion> regions,
                              double ambient, double rim) {
  SpatialField f(width, height, ambient);
  for (const auto& r : regions) {
    for (std::size_t j = 0; j < width; ++j) {
      for (std::size_t i = 0; i < height; ++i) {
        const double di = (static_cast<double>(i) - r.ci) / r.radius_i;
        const double dj = (static_cast<double>(j) - r.cj) / r.radius_j;
        const double d = std::sqrt(di * di + dj * dj);
        double contribution = 0.0;
        if (d <= 1.0) {
          contribution = r.intensity;
        } else if (rim > 0.0) {
          // Distance past the ellipse boundary in (approximate) cells.
          const double past =
              (d - 1.0) * std::min(r.radius_i, r.radius_j);
          if (past < rim) contribution = r.intensity * (1.0 - past / rim);
        }
        f(i, j) = std::max(f(i, j), ambient + contribution);
      }
    }
  }
  return f;
}

SpatialField urban_temperature_field(std::size_t width, std::size_t height,
                                     Rng& rng, std::size_t n_hotspots) {
  SpatialField f(width, height);
  const double w = static_cast<double>(width);
  const double h = static_cast<double>(height);
  // Heat-island gradient peaking at a random downtown location.
  const double di0 = rng.uniform(0.3 * h, 0.7 * h);
  const double dj0 = rng.uniform(0.3 * w, 0.7 * w);
  const double diag = std::sqrt(w * w + h * h);
  for (std::size_t j = 0; j < width; ++j) {
    for (std::size_t i = 0; i < height; ++i) {
      const double d = std::hypot(static_cast<double>(i) - di0,
                                  static_cast<double>(j) - dj0);
      f(i, j) = 24.0 + 6.0 * (1.0 - d / diag);
    }
  }
  // Localized hotspots (industrial blocks, parking lots).
  std::vector<GaussianSource> spots(n_hotspots);
  for (auto& s : spots) {
    s.ci = rng.uniform(0.0, h);
    s.cj = rng.uniform(0.0, w);
    s.sigma = rng.uniform(w / 16.0, w / 8.0);
    s.amplitude = rng.uniform(1.0, 3.0);
  }
  auto bumps = gaussian_plume_field(width, height, spots, 0.0);
  f += bumps;
  return f;
}

SpatialField sparse_dct_field(std::size_t width, std::size_t height,
                              std::size_t k, Rng& rng,
                              double low_fraction) {
  const std::size_t n = width * height;
  auto basis = linalg::dct_basis(n);
  linalg::Vector alpha(n, 0.0);
  const std::size_t pool = std::max<std::size_t>(
      1, static_cast<std::size_t>(low_fraction * static_cast<double>(n)));
  for (std::size_t j : rng.sample_without_replacement(std::min(pool, n),
                                                      std::min(k, pool))) {
    alpha[j] = rng.uniform(1.0, 3.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
  }
  const auto x = linalg::synthesize(basis, alpha);
  return SpatialField::from_vector(width, height, x);
}

SpatialField quadrant_contrast_field(std::size_t width, std::size_t height,
                                     Rng& rng) {
  SpatialField f(width, height);
  const std::size_t hw = width / 2;
  const std::size_t hh = height / 2;
  // Quadrant 1 (top-left): flat.
  for (std::size_t j = 0; j < hw; ++j) {
    for (std::size_t i = 0; i < hh; ++i) f(i, j) = 1.0;
  }
  // Quadrant 2 (top-right): single smooth bump.
  {
    GaussianSource s{static_cast<double>(hh) / 2.0,
                     static_cast<double>(hw) + static_cast<double>(hw) / 2.0,
                     static_cast<double>(hw) / 4.0, 2.0};
    auto bump = gaussian_plume_field(width, height, {&s, 1}, 0.0);
    for (std::size_t j = hw; j < width; ++j) {
      for (std::size_t i = 0; i < hh; ++i) f(i, j) = 1.0 + bump(i, j);
    }
  }
  // Quadrant 3 (bottom-left): busy — several small bumps.
  {
    std::vector<GaussianSource> spots(6);
    for (auto& s : spots) {
      s.ci = rng.uniform(static_cast<double>(hh), static_cast<double>(height));
      s.cj = rng.uniform(0.0, static_cast<double>(hw));
      s.sigma = rng.uniform(static_cast<double>(width) / 24.0,
                            static_cast<double>(width) / 12.0);
      s.amplitude = rng.uniform(0.8, 2.0);
    }
    auto busy = gaussian_plume_field(width, height, spots, 0.0);
    for (std::size_t j = 0; j < hw; ++j) {
      for (std::size_t i = hh; i < height; ++i) f(i, j) = 1.0 + busy(i, j);
    }
  }
  // Quadrant 4 (bottom-right): sharp diagonal front.
  for (std::size_t j = hw; j < width; ++j) {
    for (std::size_t i = hh; i < height; ++i) {
      f(i, j) = (i - hh) + (j - hw) < (height - hh) ? 4.0 : 0.5;
    }
  }
  return f;
}

void add_noise(SpatialField& f, double sigma, Rng& rng) {
  if (sigma <= 0.0) return;
  for (double& x : f.flat()) x += rng.gaussian(0.0, sigma);
}

}  // namespace sensedroid::field
