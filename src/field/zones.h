// Zone decomposition (Fig. 5): "the total spatial field area is subdivided
// into zones and each zone is covered by the mobile local cloud".  A
// ZoneGrid partitions a W x H field into a rows x cols lattice of
// rectangular zones; each zone is what one LocalCloud reconstructs, and
// the full field is re-stitched from the per-zone results.
#pragma once

#include <cstddef>
#include <vector>

#include "field/spatial_field.h"

namespace sensedroid::field {

/// One rectangular zone of the lattice.
struct Zone {
  std::size_t id = 0;   ///< row-major zone index
  std::size_t i0 = 0;   ///< top row of the zone in the parent field
  std::size_t j0 = 0;   ///< left column
  std::size_t width = 0;
  std::size_t height = 0;

  std::size_t size() const noexcept { return width * height; }
};

/// Rectangular partition of a field into rows x cols zones.  When the
/// field dimensions do not divide evenly, the last row/column of zones
/// absorbs the remainder, so zones tile the field exactly.
class ZoneGrid {
 public:
  /// Throws std::invalid_argument when rows/cols are zero or exceed the
  /// field dimensions.
  ZoneGrid(std::size_t field_width, std::size_t field_height,
           std::size_t rows, std::size_t cols);

  std::size_t zone_count() const noexcept { return zones_.size(); }
  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t field_width() const noexcept { return field_width_; }
  std::size_t field_height() const noexcept { return field_height_; }

  const Zone& zone(std::size_t id) const { return zones_.at(id); }
  const std::vector<Zone>& zones() const noexcept { return zones_; }

  /// The zone containing grid cell (i, j); throws std::out_of_range.
  const Zone& zone_at(std::size_t i, std::size_t j) const;

  /// Copies a zone's rectangle out of the parent field.  Throws
  /// std::invalid_argument when the field shape does not match the grid.
  SpatialField extract(const SpatialField& f, std::size_t id) const;

  /// Writes a reconstructed zone back into the stitched output field.
  void insert(SpatialField& f, std::size_t id,
              const SpatialField& patch) const;

 private:
  std::size_t field_width_, field_height_, rows_, cols_;
  std::vector<Zone> zones_;
};

/// Stitches per-zone fields into one full field; patches[id] must match
/// zone id's shape.  Throws std::invalid_argument on count mismatch.
SpatialField stitch(const ZoneGrid& grid,
                    const std::vector<SpatialField>& patches);

}  // namespace sensedroid::field
