#include "field/sparsity.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sensedroid::field {

std::size_t field_sparsity(const SpatialField& f, linalg::BasisKind kind,
                           double tol) {
  const auto basis = linalg::make_basis(kind, f.size());
  return linalg::effective_sparsity(basis, f.flat(), tol);
}

std::vector<std::size_t> zone_sparsities(const SpatialField& f,
                                         const ZoneGrid& grid,
                                         linalg::BasisKind kind, double tol) {
  std::vector<std::size_t> out(grid.zone_count());
  for (std::size_t id = 0; id < grid.zone_count(); ++id) {
    out[id] = field_sparsity(grid.extract(f, id), kind, tol);
  }
  return out;
}

std::size_t sparsity_from_traces(const TraceSet& traces,
                                 linalg::BasisKind kind, double tol) {
  if (traces.empty()) {
    throw std::logic_error("sparsity_from_traces: no traces");
  }
  const auto basis = linalg::make_basis(kind, traces.field_size());
  std::size_t worst = 0;
  for (std::size_t t = 0; t < traces.count(); ++t) {
    worst = std::max(
        worst, linalg::effective_sparsity(basis, traces.at(t).flat(), tol));
  }
  return worst;
}

std::size_t measurements_for_sparsity(std::size_t k, std::size_t n,
                                      double c) {
  if (n == 0) return 0;
  const double keff = static_cast<double>(std::max<std::size_t>(k, 1));
  const double logn = std::log(static_cast<double>(std::max<std::size_t>(n, 2)));
  const auto m = static_cast<std::size_t>(std::ceil(c * keff * logn));
  return std::clamp(m, std::min(k + 1, n), n);
}

std::vector<ZoneBudget> allocate_budget(
    const std::vector<std::size_t>& zone_sparsity,
    const std::vector<std::size_t>& zone_sizes, std::size_t total_budget,
    std::size_t min_per_zone) {
  if (zone_sparsity.size() != zone_sizes.size()) {
    throw std::invalid_argument("allocate_budget: size mismatch");
  }
  const std::size_t z = zone_sizes.size();
  std::vector<ZoneBudget> out(z);
  // Demand weight per zone: K_z * log(N_z).
  std::vector<double> weight(z);
  double total_weight = 0.0;
  for (std::size_t i = 0; i < z; ++i) {
    const double k = static_cast<double>(std::max<std::size_t>(
        zone_sparsity[i], 1));
    weight[i] = k * std::log(static_cast<double>(
                        std::max<std::size_t>(zone_sizes[i], 2)));
    total_weight += weight[i];
  }
  for (std::size_t i = 0; i < z; ++i) {
    const double share =
        total_weight > 0.0
            ? static_cast<double>(total_budget) * weight[i] / total_weight
            : 0.0;
    std::size_t m = static_cast<std::size_t>(std::llround(share));
    m = std::max(m, std::min(min_per_zone, zone_sizes[i]));
    m = std::min(m, zone_sizes[i]);
    out[i] = ZoneBudget{i, m};
  }
  return out;
}

std::vector<ZoneBudget> allocate_uniform(
    const std::vector<std::size_t>& zone_sizes, std::size_t total_budget,
    std::size_t min_per_zone) {
  const std::size_t z = zone_sizes.size();
  std::vector<ZoneBudget> out(z);
  const std::size_t total_cells =
      std::accumulate(zone_sizes.begin(), zone_sizes.end(), std::size_t{0});
  for (std::size_t i = 0; i < z; ++i) {
    const double share =
        total_cells > 0
            ? static_cast<double>(total_budget) *
                  static_cast<double>(zone_sizes[i]) /
                  static_cast<double>(total_cells)
            : 0.0;
    std::size_t m = static_cast<std::size_t>(std::llround(share));
    m = std::max(m, std::min(min_per_zone, zone_sizes[i]));
    m = std::min(m, zone_sizes[i]);
    out[i] = ZoneBudget{i, m};
  }
  return out;
}

}  // namespace sensedroid::field
