// Prior-data trace sets Gamma = {x_1, ..., x_T} (Section 4): historical
// snapshots of a zone's field, stacked as the T x N matrix X the paper
// uses to train data-driven (PCA) bases and estimate local sparsity.
#pragma once

#include <cstddef>
#include <vector>

#include "field/spatial_field.h"
#include "linalg/matrix.h"
#include "linalg/random.h"

namespace sensedroid::field {

using linalg::Matrix;
using linalg::Rng;

/// A time-ordered set of equally-shaped field snapshots.
class TraceSet {
 public:
  TraceSet() = default;

  /// Appends a snapshot; all snapshots must share one shape.  Throws
  /// std::invalid_argument on mismatch.
  void add(SpatialField snapshot);

  std::size_t count() const noexcept { return traces_.size(); }
  bool empty() const noexcept { return traces_.empty(); }
  std::size_t field_size() const noexcept {
    return traces_.empty() ? 0 : traces_.front().size();
  }

  const SpatialField& at(std::size_t t) const { return traces_.at(t); }

  /// The T x N matrix X of Section 4 (each row one vectorized snapshot).
  /// Throws std::logic_error when empty.
  Matrix to_matrix() const;

 private:
  std::vector<SpatialField> traces_;
};

/// Generates T snapshots of a slowly evolving plume field: sources drift
/// by a random walk of `drift` cells per step and amplitudes wander by
/// `amp_jitter` — the "prior available data about the local regions" a
/// broker trains its basis on.
TraceSet evolving_plume_traces(std::size_t width, std::size_t height,
                               std::size_t n_sources, std::size_t steps,
                               Rng& rng, double drift = 1.0,
                               double amp_jitter = 0.05);

}  // namespace sensedroid::field
