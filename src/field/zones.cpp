#include "field/zones.h"

#include <stdexcept>

namespace sensedroid::field {

ZoneGrid::ZoneGrid(std::size_t field_width, std::size_t field_height,
                   std::size_t rows, std::size_t cols)
    : field_width_(field_width),
      field_height_(field_height),
      rows_(rows),
      cols_(cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("ZoneGrid: rows/cols must be positive");
  }
  if (rows > field_height || cols > field_width) {
    throw std::invalid_argument("ZoneGrid: more zones than grid cells");
  }
  const std::size_t zh = field_height / rows;
  const std::size_t zw = field_width / cols;
  zones_.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      Zone z;
      z.id = r * cols + c;
      z.i0 = r * zh;
      z.j0 = c * zw;
      // Last row/column absorbs the remainder so zones tile exactly.
      z.height = r + 1 == rows ? field_height - z.i0 : zh;
      z.width = c + 1 == cols ? field_width - z.j0 : zw;
      zones_.push_back(z);
    }
  }
}

const Zone& ZoneGrid::zone_at(std::size_t i, std::size_t j) const {
  if (i >= field_height_ || j >= field_width_) {
    throw std::out_of_range("ZoneGrid::zone_at");
  }
  const std::size_t zh = field_height_ / rows_;
  const std::size_t zw = field_width_ / cols_;
  const std::size_t r = std::min(i / zh, rows_ - 1);
  const std::size_t c = std::min(j / zw, cols_ - 1);
  return zones_[r * cols_ + c];
}

SpatialField ZoneGrid::extract(const SpatialField& f, std::size_t id) const {
  if (f.width() != field_width_ || f.height() != field_height_) {
    throw std::invalid_argument("ZoneGrid::extract: field shape mismatch");
  }
  const Zone& z = zone(id);
  return f.extract(z.i0, z.j0, z.width, z.height);
}

void ZoneGrid::insert(SpatialField& f, std::size_t id,
                      const SpatialField& patch) const {
  if (f.width() != field_width_ || f.height() != field_height_) {
    throw std::invalid_argument("ZoneGrid::insert: field shape mismatch");
  }
  const Zone& z = zone(id);
  if (patch.width() != z.width || patch.height() != z.height) {
    throw std::invalid_argument("ZoneGrid::insert: patch shape mismatch");
  }
  f.insert(z.i0, z.j0, patch);
}

SpatialField stitch(const ZoneGrid& grid,
                    const std::vector<SpatialField>& patches) {
  if (patches.size() != grid.zone_count()) {
    throw std::invalid_argument("stitch: patch count mismatch");
  }
  SpatialField out(grid.field_width(), grid.field_height());
  for (std::size_t id = 0; id < patches.size(); ++id) {
    grid.insert(out, id, patches[id]);
  }
  return out;
}

}  // namespace sensedroid::field
