// RunReport: a structured per-campaign summary snapshotted from a
// MetricsRegistry — the numbers the paper argues about (energy J, radio
// bytes, messages, solver iterations, residuals, reconstruction error)
// in one JSON-serializable record, so BENCH_*.json trajectories can be
// captured run over run.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace sensedroid::obs {

/// Summary statistics of one histogram series inside a report.
struct HistSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Per-campaign rollup of the well-known metric names (README.md table)
/// plus the full registry export for everything else.
struct RunReport {
  /// Version of the JSON layout emitted by to_json().  Bump on any
  /// key rename/removal or semantic change so downstream tooling
  /// (check_regression.py, dashboards) can gate on compatibility; pure
  /// key additions keep the version.
  static constexpr int kSchemaVersion = 1;

  std::string campaign;

  // sim layer — where the joules and bytes went.
  double energy_total_j = 0.0;
  double energy_tx_j = 0.0;
  double energy_rx_j = 0.0;
  double energy_sensing_j = 0.0;
  double energy_compute_j = 0.0;
  double radio_tx_bytes = 0.0;
  double radio_rx_bytes = 0.0;
  double radio_attempts = 0.0;
  double radio_drops = 0.0;
  double sim_events = 0.0;

  // middleware layer — message traffic.
  double broker_rounds = 0.0;
  double broker_commands = 0.0;
  double broker_replies = 0.0;
  double broker_failures = 0.0;
  double broker_bytes = 0.0;
  double pubsub_published = 0.0;
  double pubsub_delivered = 0.0;

  // cs layer — solver work.
  double omp_solves = 0.0;
  double omp_iterations = 0.0;
  double chs_solves = 0.0;
  double chs_iterations = 0.0;
  double simplex_solves = 0.0;
  double simplex_pivots = 0.0;
  HistSummary chs_residual;   ///< cs.chs.residual_rel
  HistSummary chs_solve_us;   ///< cs.chs.solve_us
  HistSummary omp_solve_us;   ///< cs.omp.solve_us

  // hierarchy layer — campaign shape.
  double gather_rounds = 0.0;
  double nodes_commanded = 0.0;
  double zones_gathered = 0.0;
  double uplink_bytes = 0.0;

  // fault layer — injected faults vs recovery actions.  All zero when no
  // injector/retry policy is in play.
  double fault_link_drops = 0.0;       ///< fault.link.drops
  double fault_link_bursts = 0.0;      ///< fault.link.bursts
  double fault_churn_absences = 0.0;   ///< fault.churn.absent
  double fault_sensor_spikes = 0.0;    ///< fault.sensor.spikes
  double fault_crashed_rounds = 0.0;   ///< fault.broker.crashed_rounds
  double failover_promotions = 0.0;    ///< fault.failover.promotions
  double retry_attempts = 0.0;         ///< mw.retry.attempts
  double retry_recovered = 0.0;        ///< mw.retry.recovered
  double topup_requests = 0.0;         ///< mw.topup.requests
  double topup_replies = 0.0;          ///< mw.topup.replies
  double outliers_rejected = 0.0;      ///< cs.chs.outliers_rejected

  /// epsilon = epsilon_a + epsilon_c + epsilon_m: set by the campaign
  /// driver, which is the only place ground truth exists.  < 0 = unset.
  double reconstruction_error = -1.0;

  /// Full registry export (the "everything else" escape hatch).
  std::string metrics_json;

  /// Snapshots `reg` into a report.  The registry is not modified.
  static RunReport from_registry(const MetricsRegistry& reg,
                                 std::string campaign);

  /// As above; with `include_wall_clock == false` every wall-clock
  /// timing series (`*_us` histograms, chs/omp solve-time summaries) is
  /// dropped.  That view is the object of the execution engine's
  /// determinism invariant: for the same seed it is byte-identical no
  /// matter how many worker threads ran the campaign (DESIGN.md §9).
  static RunReport from_registry(const MetricsRegistry& reg,
                                 std::string campaign,
                                 bool include_wall_clock);

  /// Structured JSON: {"campaign":...,"sim":{...},"middleware":{...},
  /// "cs":{...},"hierarchy":{...},"reconstruction_error":...,
  /// "metrics":{...full registry...}}.
  std::string to_json() const;

  /// Short human-readable multi-line summary for terminals.
  std::string summary() const;
};

/// Writes `report.to_json()` to the path in $SENSEDROID_REPORT when set
/// (appending "\n"), else to stdout.  Returns true on success.  Lets
/// every bench emit a machine-readable trajectory without flag plumbing.
bool write_report(const RunReport& report);

}  // namespace sensedroid::obs
