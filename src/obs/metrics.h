// Observability core: a thread-safe metrics registry (counters, gauges,
// fixed-bucket histograms) addressable by name + labels, with JSON and
// Prometheus-text exporters.
//
// MOSDEN/GSN-style operability requirement: a crowdsensing middleware
// must expose its own runtime behaviour (throughput, queue depths,
// per-node load) to be tunable at scale.  Every hot layer of the stack
// reports here through the free functions at the bottom of this header;
// they are null-sinks (a single relaxed atomic pointer load + branch)
// until a registry is attached, so instrumentation costs nothing in
// un-observed runs.
//
// Metric naming convention (see README.md for the full table):
//   <layer>.<component>.<measure>   e.g. cs.omp.iterations,
//   mw.broker.published, sim.radio.tx_bytes, hier.nanocloud.rounds.
// Unit suffixes: _j (joules), _bytes, _us (microseconds), _rel
// (dimensionless ratio).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sensedroid::obs {

/// Label set attached to a metric instance.  Kept sorted by key inside
/// the registry so `{a=1,b=2}` and `{b=2,a=1}` address the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value (message counts, joules, bytes).
class Counter {
 public:
  /// Adds `v` (callers pass >= 0; not enforced — the registry is a
  /// measurement instrument, not a validator).  Lock-free.
  void add(double v) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
    }
  }
  void inc() noexcept { add(1.0); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time value (queue depth, pending events, state of charge).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram for non-negative measures (latencies, sizes,
/// residuals).  Buckets are cumulative-upper-bound style (Prometheus
/// `le` semantics); quantiles are estimated by linear interpolation
/// inside the bucket that crosses the target rank.
class Histogram {
 public:
  /// Default bounds: 1/2.5/5 mantissas over decades 1e-9 .. 1e9 — wide
  /// enough for microsecond timings, byte counts, and relative residuals
  /// without per-metric tuning (~2x worst-case quantile error per bucket).
  static std::vector<double> default_bounds();

  explicit Histogram(std::vector<double> bounds = default_bounds());

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double min() const noexcept;  ///< +inf when empty
  double max() const noexcept;  ///< -inf when empty
  double mean() const noexcept {
    const auto c = count();
    return c == 0 ? 0.0 : sum() / static_cast<double>(c);
  }

  /// Quantile estimate for q in [0, 1]; 0 when empty.  Clamped to the
  /// observed [min, max] so bucket interpolation never overshoots.
  double quantile(double q) const noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Folds another histogram's exported state into this one (shard
  /// merging).  When `bounds` matches this histogram's bounds the merge
  /// is exact (bucket-wise); otherwise each foreign bucket is re-binned
  /// at its upper bound (overflow at `max`).  `sum` is added once either
  /// way, so mean/sum stay exact and only quantiles are approximate on a
  /// bounds mismatch.
  void absorb(const std::vector<double>& bounds,
              const std::vector<std::uint64_t>& buckets, std::uint64_t count,
              double sum, double min, double max) noexcept;

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Thread-safe registry of named, labelled metrics.  Lookup takes a
/// mutex; the returned references stay valid until clear(), so hot code
/// may cache them.  Exports to JSON and to the Prometheus text format.
///
/// Cardinality guard: each metric *family* (same name, any label set) may
/// hold at most series_limit() series (default 10k — sized for one
/// `health.zone{id=...}` gauge per zone of a city-scale campaign).  A
/// creation attempt beyond the cap is counted in the
/// `obs.dropped_series{metric="<family>"}` counter and lands in an
/// unexported per-kind sink, so a runaway label (node ids, raw values)
/// degrades to a visible drop counter instead of unbounded map growth.
class MetricsRegistry {
 public:
  static constexpr std::size_t kDefaultSeriesLimit = 10000;

  MetricsRegistry();

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  /// `bounds` is only consulted on first creation of the series.
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       std::vector<double> bounds = {});

  /// Max label sets per metric family before new series are dropped.
  /// Clamped to >= 1.  Existing series are never evicted.
  void set_series_limit(std::size_t limit);
  std::size_t series_limit() const;
  /// Total series-creation attempts refused by the cardinality guard.
  double dropped_series() const;

  /// Monotone identity of this registry's series storage: unique per
  /// instance and re-drawn by clear().  A cached metric reference is
  /// valid exactly while the stamp it was taken under still matches —
  /// the validity token behind the helpers' thread-local fast path.
  std::uint64_t stamp() const noexcept {
    return stamp_.load(std::memory_order_relaxed);
  }

  /// Sum of every counter series whose metric name equals `name`
  /// (across all label sets); 0 when absent.
  double counter_sum(std::string_view name) const;
  /// Value of one counter series (exact name + labels); 0 when absent.
  double counter_value(std::string_view name, const Labels& labels = {}) const;
  /// Value of a gauge series (first label set registered); 0 when absent.
  double gauge_value(std::string_view name) const;
  /// Pointer to a histogram series by metric name (first label set
  /// registered); nullptr when absent.
  const Histogram* find_histogram(std::string_view name) const;

  std::size_t series_count() const;
  /// Drops every series.  Invalidates references handed out earlier.
  void clear();

  /// Folds every series of `other` into this registry: counters add,
  /// gauges take `other`'s value (last merge wins), histograms absorb
  /// bucket-wise.  Merging per-task shards into a base registry in a
  /// fixed order (e.g. zone index) yields bit-identical floating-point
  /// totals regardless of how many threads produced the shards — the
  /// determinism lever the parallel campaign runner relies on.
  void merge_from(const MetricsRegistry& other);

  /// {"counters":[...],"gauges":[...],"histograms":[...]}.  When
  /// `include_wall_clock` is false, series named `*_us` (wall-clock
  /// timings, inherently non-deterministic) are omitted — the export the
  /// byte-identical-replay contract is stated over.
  std::string to_json() const;
  std::string to_json(bool include_wall_clock) const;
  /// Prometheus text exposition format ('.' becomes '_' in names).
  std::string to_prometheus() const;

  /// One exported sample, shared by both exporters and RunReport.
  struct Sample {
    std::string name;
    Labels labels;
    char kind = 'c';  // 'c' counter, 'g' gauge, 'h' histogram
    double value = 0.0;          // counter/gauge
    std::uint64_t count = 0;     // histogram
    double sum = 0.0, min = 0.0, max = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;
  };
  std::vector<Sample> samples() const;

 private:
  template <class T>
  struct Series {
    std::string name;
    Labels labels;
    std::unique_ptr<T> metric;
  };
  template <class T>
  using SeriesMap = std::map<std::string, Series<T>, std::less<>>;

  /// True when family `name` may accept one more series; otherwise
  /// counts the drop.  Caller must hold mu_.
  bool admit_series_locked(std::string_view name);

  mutable std::mutex mu_;
  SeriesMap<Counter> counters_;
  SeriesMap<Gauge> gauges_;
  SeriesMap<Histogram> histograms_;
  std::map<std::string, std::size_t, std::less<>> family_counts_;
  std::size_t series_limit_ = kDefaultSeriesLimit;
  std::atomic<std::uint64_t> stamp_;
  // Cardinality-guard sinks: writes beyond the cap land here, invisible
  // to exports, so callers always get a usable reference back.
  Counter overflow_counter_;
  Gauge overflow_gauge_;
  std::unique_ptr<Histogram> overflow_histogram_;
};

// ---------------------------------------------------------------------
// Global attachment point.  Default: detached (all helpers no-ops).

/// Currently attached process-wide registry, or nullptr.
MetricsRegistry* registry() noexcept;
/// Attaches `r` as the process-wide sink (nullptr detaches).  Not
/// synchronized against in-flight helper calls on other threads beyond
/// the atomic pointer itself — attach before the workload starts.
void attach_registry(MetricsRegistry* r) noexcept;

/// Where this thread's helper calls land: the thread-local shard when a
/// ScopedMetricShard is live on this thread, else the process registry.
MetricsRegistry* sink() noexcept;
/// True when sink() is non-null.
bool attached() noexcept;

/// Redirects this thread's metric helpers into `shard` for the current
/// scope (restores the previous binding on destruction; nestable).  The
/// parallel campaign runner gives every zone task its own shard so hot
/// paths never contend on shared atomics, then merges the shards into
/// the base registry in zone order — making the merged floating-point
/// totals independent of worker count and scheduling.  Binding nullptr
/// restores process-registry routing for the scope.
class ScopedMetricShard {
 public:
  explicit ScopedMetricShard(MetricsRegistry* shard) noexcept;
  ~ScopedMetricShard();
  ScopedMetricShard(const ScopedMetricShard&) = delete;
  ScopedMetricShard& operator=(const ScopedMetricShard&) = delete;

 private:
  MetricsRegistry* prev_;
};

/// No-op when detached; swallows allocation failures (instrumentation
/// must never take down the host).
void add_counter(std::string_view name, double v = 1.0) noexcept;
void add_counter(std::string_view name, const Labels& labels,
                 double v) noexcept;
void set_gauge(std::string_view name, double v) noexcept;
void set_gauge(std::string_view name, const Labels& labels,
               double v) noexcept;
void observe(std::string_view name, double v) noexcept;
void observe(std::string_view name, const Labels& labels, double v) noexcept;

/// RAII timer: observes elapsed microseconds into histogram `name` on
/// destruction.  Captures nothing (not even the clock) when detached at
/// construction.  `name` must outlive the timer (pass a literal).
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name) noexcept
      : name_(name), active_(attached()) {
    if (active_) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!active_) return;
    const auto dt = std::chrono::steady_clock::now() - t0_;
    observe(name_, std::chrono::duration<double, std::micro>(dt).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string_view name_;
  bool active_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace sensedroid::obs
