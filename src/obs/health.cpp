#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string_view>

#include "obs/flight_recorder.h"

namespace sensedroid::obs {

namespace {

double clamp01(double v) noexcept {
  return std::clamp(std::isfinite(v) ? v : 0.0, 0.0, 1.0);
}

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

/// Raw per-zone inputs accumulated from the source registry's samples.
struct ZoneInputs {
  double rounds = 0.0;
  double degraded_rounds = 0.0;
  double retries = 0.0;
  double recovered = 0.0;
  double energy_j = 0.0;
  std::uint64_t gather_count = 0;
  std::uint64_t gather_over_slo = 0;
};

/// Parses the `zone` label; returns false when absent/non-numeric.
bool zone_of(const Labels& labels, std::uint32_t* zone) {
  for (const auto& [k, v] : labels) {
    if (k != "zone") continue;
    std::uint32_t id = 0;
    for (char c : v) {
      if (c < '0' || c > '9') return false;
      id = id * 10 + static_cast<std::uint32_t>(c - '0');
    }
    *zone = id;
    return !v.empty();
  }
  return false;
}

}  // namespace

HealthEngine::HealthEngine(const MetricsRegistry* source, HealthConfig config)
    : source_(source), config_(config) {}

const char* HealthEngine::verdict_for(double score) const noexcept {
  if (score < config_.unhealthy_below) return "unhealthy";
  if (score < config_.degraded_below) return "degraded";
  return "healthy";
}

std::vector<ZoneHealth> HealthEngine::evaluate() {
  std::map<std::uint32_t, ZoneInputs> zones;
  double fault_sum = 0.0;
  if (source_ != nullptr) {
    for (const MetricsRegistry::Sample& s : source_->samples()) {
      const std::string_view name = s.name;
      if (s.kind == 'c' && name.starts_with("fault.")) fault_sum += s.value;
      if (!name.starts_with("hier.zone.")) continue;
      std::uint32_t zone = 0;
      if (!zone_of(s.labels, &zone)) continue;
      ZoneInputs& in = zones[zone];
      if (name == "hier.zone.rounds") {
        in.rounds = s.value;
      } else if (name == "hier.zone.degraded_rounds") {
        in.degraded_rounds = s.value;
      } else if (name == "hier.zone.retries") {
        in.retries = s.value;
      } else if (name == "hier.zone.recovered") {
        in.recovered = s.value;
      } else if (name == "hier.zone.energy_j") {
        in.energy_j = s.value;
      } else if (name == "hier.zone.gather_us" && s.kind == 'h') {
        in.gather_count = s.count;
        // Observations above the SLO: total minus the cumulative count
        // of buckets whose upper bound is within the target.
        std::uint64_t within = 0;
        for (std::size_t b = 0; b < s.bounds.size(); ++b) {
          if (s.bounds[b] <= config_.latency_slo_us) {
            within += s.buckets[b];
          }
        }
        in.gather_over_slo = s.count > within ? s.count - within : 0;
      }
    }
  }

  std::vector<ZoneHealth> out;
  out.reserve(zones.size());
  double worst = 1.0;
  for (const auto& [zone, in] : zones) {
    ZoneHealth h;
    h.zone = zone;
    if (in.gather_count > 0 && config_.latency_allowed_fraction > 0.0) {
      const double violation = static_cast<double>(in.gather_over_slo) /
                               static_cast<double>(in.gather_count);
      h.latency = clamp01(1.0 - violation / config_.latency_allowed_fraction);
    }
    if (in.retries > 0.0) h.recovery = clamp01(in.recovered / in.retries);
    if (in.rounds > 0.0) {
      h.availability = clamp01(1.0 - in.degraded_rounds / in.rounds);
    }
    if (config_.energy_floor_j > 0.0) {
      h.energy = clamp01(1.0 - in.energy_j / config_.energy_floor_j);
    }
    h.score = clamp01(config_.w_latency * h.latency +
                      config_.w_recovery * h.recovery +
                      config_.w_availability * h.availability +
                      config_.w_energy * h.energy);
    h.verdict = verdict_for(h.score);
    worst = std::min(worst, h.score);
    out.push_back(h);

    gauges_.gauge("health.zone", {{"id", std::to_string(zone)}}).set(h.score);
  }
  gauges_.gauge("health.worst").set(worst);
  gauges_.gauge("health.zones").set(static_cast<double>(out.size()));

  bool dump = false;
  std::string path;
  {
    std::lock_guard<std::mutex> lk(mu_);
    last_ = out;
    worst_ = worst;
    if (!auto_dump_path_.empty() && fault_sum > last_fault_sum_) {
      dump = true;
      path = auto_dump_path_;
    }
    last_fault_sum_ = fault_sum;
  }
  if (dump) FlightRecorder::dump_to_file(path);
  return out;
}

double HealthEngine::worst_score() const {
  std::lock_guard<std::mutex> lk(mu_);
  return worst_;
}

const char* HealthEngine::verdict() const {
  std::lock_guard<std::mutex> lk(mu_);
  return verdict_for(worst_);
}

std::string HealthEngine::to_json() {
  const std::vector<ZoneHealth> zones = evaluate();
  double worst = 1.0;
  for (const ZoneHealth& z : zones) worst = std::min(worst, z.score);
  std::string out = "{\"verdict\":\"";
  out += verdict_for(worst);
  out += "\",\"worst\":" + num(worst) + ",\"zones\":[";
  for (std::size_t i = 0; i < zones.size(); ++i) {
    const ZoneHealth& z = zones[i];
    if (i > 0) out += ',';
    out += "{\"id\":" + std::to_string(z.zone) +
           ",\"score\":" + num(z.score) + ",\"latency\":" + num(z.latency) +
           ",\"recovery\":" + num(z.recovery) +
           ",\"availability\":" + num(z.availability) +
           ",\"energy\":" + num(z.energy) + ",\"verdict\":\"" + z.verdict +
           "\"}";
  }
  out += "]}";
  return out;
}

void HealthEngine::set_auto_dump(std::string path) {
  std::lock_guard<std::mutex> lk(mu_);
  auto_dump_path_ = std::move(path);
}

}  // namespace sensedroid::obs
