#include "obs/flight_recorder.h"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace sensedroid::obs {

namespace fr_detail {
std::atomic<bool> g_armed{false};
}  // namespace fr_detail

namespace {

// One ring per recording thread.  Slots are pairs of relaxed atomics so
// a dumper may read them while the owner thread writes (a torn
// meta/value pair is possible on a wrapped slot mid-dump — acceptable
// for diagnostics, and race-free as far as the language is concerned,
// which is what keeps the TSan twin quiet).  `head` is the count of
// events ever written; only the owner stores it (release, so a dumper's
// acquire load sees the slots the count covers).  `trim` lets reset()
// logically empty a ring without touching the owner's head.
struct Ring {
  explicit Ring(std::size_t capacity)
      : mask(capacity - 1), slots(new Slot[capacity]) {}

  struct Slot {
    std::atomic<std::uint64_t> meta{0};  // type:16 | spare:16 | arg:32
    std::atomic<double> value{0.0};
  };

  const std::uint64_t mask;  // capacity - 1 (capacity is a power of two)
  Slot* const slots;         // never freed: rings outlive their threads
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> trim{0};
};

// Lock-free registration table: fixed slots, monotonically claimed.
// No mutex anywhere on this path, so the crash handler can walk it.
constexpr std::size_t kMaxRings = 256;
std::atomic<Ring*> g_rings[kMaxRings];
std::atomic<std::size_t> g_ring_count{0};

std::atomic<std::size_t> g_ring_capacity{4096};

thread_local Ring* t_ring = nullptr;
thread_local bool t_ring_rejected = false;

Ring* register_ring() {
  const std::size_t idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxRings) return nullptr;
  Ring* r = new Ring(FlightRecorder::ring_capacity());
  g_rings[idx].store(r, std::memory_order_release);
  return r;
}

std::uint64_t pack_meta(FrEvent type, std::uint32_t arg) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(type))
          << 48) |
         static_cast<std::uint64_t>(arg);
}

// ------------------------------------------------------------------
// Async-signal-safe formatting for the crash-dump path: no stdio, no
// allocation, integers and fixed-point (6 decimals) only.

char* fmt_u64(char* p, std::uint64_t v) {
  char tmp[24];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) *p++ = tmp[--n];
  return p;
}

char* fmt_str(char* p, const char* s) {
  while (*s != '\0') *p++ = *s++;
  return p;
}

char* fmt_value(char* p, double v) {
  if (std::isnan(v)) return fmt_str(p, "0");
  if (v < 0) {
    *p++ = '-';
    v = -v;
  }
  if (v > 9.2e12) return fmt_str(p, "9.2e12");  // clamp to int64 range/1e6
  const std::uint64_t micros = static_cast<std::uint64_t>(v * 1e6 + 0.5);
  p = fmt_u64(p, micros / 1000000);
  *p++ = '.';
  std::uint64_t frac = micros % 1000000;
  char tmp[6];
  for (int i = 5; i >= 0; --i) {
    tmp[i] = static_cast<char>('0' + frac % 10);
    frac /= 10;
  }
  for (char c : tmp) *p++ = c;
  return p;
}

/// Writes one ring's retained events as JSONL into `fd` (signal path)
/// using only async-signal-safe calls.
void dump_ring_fd(int fd, std::size_t thread_idx, const Ring& ring) {
  const std::uint64_t h = ring.head.load(std::memory_order_acquire);
  const std::uint64_t cap = ring.mask + 1;
  const std::uint64_t lo =
      std::max(ring.trim.load(std::memory_order_relaxed),
               h > cap ? h - cap : 0);
  char line[256];
  for (std::uint64_t seq = lo; seq < h; ++seq) {
    const Ring::Slot& s = ring.slots[seq & ring.mask];
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    const double value = s.value.load(std::memory_order_relaxed);
    const auto type = static_cast<std::uint16_t>(meta >> 48);
    const auto arg = static_cast<std::uint32_t>(meta);
    char* p = line;
    p = fmt_str(p, "{\"thread\":");
    p = fmt_u64(p, thread_idx);
    p = fmt_str(p, ",\"seq\":");
    p = fmt_u64(p, seq);
    p = fmt_str(p, ",\"type\":\"");
    p = fmt_str(p, FlightRecorder::event_name(type).data());
    p = fmt_str(p, "\",\"arg\":");
    p = fmt_u64(p, arg);
    p = fmt_str(p, ",\"value\":");
    p = fmt_value(p, value);
    p = fmt_str(p, "}\n");
    ssize_t ignored = ::write(fd, line, static_cast<std::size_t>(p - line));
    (void)ignored;
  }
}

char g_crash_path[512] = {0};

void crash_handler(int sig) {
  const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd >= 0) {
    char hdr[64];
    char* p = fmt_str(hdr, "{\"crash_signal\":");
    p = fmt_u64(p, static_cast<std::uint64_t>(sig));
    p = fmt_str(p, "}\n");
    ssize_t ignored = ::write(fd, hdr, static_cast<std::size_t>(p - hdr));
    (void)ignored;
    const std::size_t n =
        std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
    for (std::size_t i = 0; i < n; ++i) {
      if (const Ring* r = g_rings[i].load(std::memory_order_acquire)) {
        dump_ring_fd(fd, i, *r);
      }
    }
    ::close(fd);
  }
  // Restore default disposition and re-raise so exit status/core dumps
  // behave as if the recorder were not installed.
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

namespace fr_detail {

void record_slow(FrEvent type, std::uint32_t arg, double value) noexcept {
  Ring* r = t_ring;
  if (r == nullptr) {
    if (t_ring_rejected) return;
    r = register_ring();
    if (r == nullptr) {
      t_ring_rejected = true;  // > kMaxRings threads: stop asking
      return;
    }
    t_ring = r;
  }
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  Ring::Slot& s = r->slots[h & r->mask];
  s.meta.store(pack_meta(type, arg), std::memory_order_relaxed);
  s.value.store(value, std::memory_order_relaxed);
  r->head.store(h + 1, std::memory_order_release);
}

}  // namespace fr_detail

void FlightRecorder::set_ring_capacity(std::size_t events) {
  events = std::clamp<std::size_t>(events, 64, std::size_t{1} << 20);
  // Round up to a power of two.
  std::size_t cap = 64;
  while (cap < events) cap <<= 1;
  g_ring_capacity.store(cap, std::memory_order_relaxed);
}

std::size_t FlightRecorder::ring_capacity() noexcept {
  return g_ring_capacity.load(std::memory_order_relaxed);
}

void FlightRecorder::arm() noexcept {
  fr_detail::g_armed.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disarm() noexcept {
  fr_detail::g_armed.store(false, std::memory_order_relaxed);
}

void FlightRecorder::reset() {
  const std::size_t n =
      std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
  for (std::size_t i = 0; i < n; ++i) {
    if (Ring* r = g_rings[i].load(std::memory_order_acquire)) {
      r->trim.store(r->head.load(std::memory_order_acquire),
                    std::memory_order_relaxed);
    }
  }
}

std::size_t FlightRecorder::event_count() {
  std::size_t total = 0;
  const std::size_t n =
      std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
  for (std::size_t i = 0; i < n; ++i) {
    if (const Ring* r = g_rings[i].load(std::memory_order_acquire)) {
      const std::uint64_t h = r->head.load(std::memory_order_acquire);
      const std::uint64_t cap = r->mask + 1;
      const std::uint64_t lo =
          std::max(r->trim.load(std::memory_order_relaxed),
                   h > cap ? h - cap : 0);
      total += static_cast<std::size_t>(h - lo);
    }
  }
  return total;
}

std::uint64_t FlightRecorder::total_recorded() {
  std::uint64_t total = 0;
  const std::size_t n =
      std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
  for (std::size_t i = 0; i < n; ++i) {
    if (const Ring* r = g_rings[i].load(std::memory_order_acquire)) {
      total += r->head.load(std::memory_order_acquire);
    }
  }
  return total;
}

std::string FlightRecorder::dump_jsonl() {
  std::string out;
  const std::size_t n =
      std::min(g_ring_count.load(std::memory_order_relaxed), kMaxRings);
  for (std::size_t i = 0; i < n; ++i) {
    const Ring* r = g_rings[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    const std::uint64_t cap = r->mask + 1;
    const std::uint64_t lo =
        std::max(r->trim.load(std::memory_order_relaxed),
                 h > cap ? h - cap : 0);
    for (std::uint64_t seq = lo; seq < h; ++seq) {
      const Ring::Slot& s = r->slots[seq & r->mask];
      const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
      const double value = s.value.load(std::memory_order_relaxed);
      out += "{\"thread\":" + std::to_string(i) +
             ",\"seq\":" + std::to_string(seq) + ",\"type\":\"" +
             std::string(event_name(static_cast<std::uint16_t>(meta >> 48))) +
             "\",\"arg\":" + std::to_string(static_cast<std::uint32_t>(meta)) +
             ",\"value\":" + num(value) + "}\n";
    }
  }
  return out;
}

bool FlightRecorder::dump_to_file(const std::string& path) {
  const std::string dump = dump_jsonl();
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(dump.data(), 1, dump.size(), f) == dump.size();
  return std::fclose(f) == 0 && ok;
}

void FlightRecorder::install_crash_dump(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(g_crash_path)) {
    g_crash_path[0] = '\0';
    std::signal(SIGSEGV, SIG_DFL);
    std::signal(SIGABRT, SIG_DFL);
    return;
  }
  std::memcpy(g_crash_path, path.c_str(), path.size() + 1);
  std::signal(SIGSEGV, crash_handler);
  std::signal(SIGABRT, crash_handler);
}

std::string_view FlightRecorder::event_name(std::uint16_t type) noexcept {
  switch (static_cast<FrEvent>(type)) {
    case FrEvent::kSolverIteration: return "solver_iteration";
    case FrEvent::kSolverSolve: return "solver_solve";
    case FrEvent::kRetryAttempt: return "retry_attempt";
    case FrEvent::kRetryRecovered: return "retry_recovered";
    case FrEvent::kFaultLinkDrop: return "fault_link_drop";
    case FrEvent::kFaultChurnAbsent: return "fault_churn_absent";
    case FrEvent::kFaultSensorSpike: return "fault_sensor_spike";
    case FrEvent::kFaultBrokerCrash: return "fault_broker_crash";
    case FrEvent::kFailover: return "failover";
    case FrEvent::kTopup: return "topup";
    case FrEvent::kMark: return "mark";
    default: return "unknown";
  }
}

}  // namespace sensedroid::obs
