// Lightweight span tracer: nested begin/end events recorded against
// both wall-clock and the discrete-event simulator's virtual time.
//
// The virtual clock is a process-global sample that `sim::Simulator`
// refreshes as events fire (obs cannot depend on sim — it sits below
// every layer), so spans opened inside simulated handlers carry the
// exact SimTime they executed at.  Dump with `TraceLog::to_jsonl()`:
// one JSON object per line, parent/depth fields reconstruct the tree.
//
// Like the metrics registry, tracing is a null-sink until a TraceLog is
// attached; `ScopedSpan` then costs one atomic load + branch.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sensedroid::obs {

/// One completed (or still-open) span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  int depth = 0;             ///< 0 = root
  std::string name;
  double wall_start_us = 0.0;  ///< steady-clock, relative to process start
  double wall_end_us = 0.0;    ///< 0 while open
  double virtual_start = 0.0;  ///< sim::SimTime seconds at begin
  double virtual_end = 0.0;
};

/// Append-only span log.  begin()/end() are thread-safe; nesting
/// (parent/depth) is tracked per thread, so spans opened and closed on
/// the same thread form a proper tree.
class TraceLog {
 public:
  /// Opens a span; returns its id (never 0).
  std::uint64_t begin(std::string_view name);
  /// Closes the span.  Unknown/already-closed ids are ignored.
  void end(std::uint64_t id);
  /// Records an instant event (zero-duration span).
  void instant(std::string_view name);

  std::size_t size() const;
  std::vector<SpanRecord> snapshot() const;
  /// One JSON object per line:
  /// {"id":1,"parent":0,"depth":0,"name":"...","wall_start_us":...,
  ///  "wall_end_us":...,"virtual_start":...,"virtual_end":...}
  std::string to_jsonl() const;
  void clear();

  /// Appends every span of `shard` to this log, assigning fresh ids and
  /// re-parenting the shard's root spans (parent == 0) under
  /// `parent_id` of THIS log (0 keeps them roots); depths shift
  /// accordingly.  Merging per-task shards in a fixed order (zone
  /// index) makes the merged log's structure — names, parents, depths,
  /// record order — identical at any worker count, mirroring what
  /// ScopedMetricShard + merge_from do for metrics.  `shard` must be
  /// quiescent (its task has joined).
  void merge_from(const TraceLog& shard, std::uint64_t parent_id = 0);

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;  // indexed by id - 1
  std::uint64_t next_id_ = 1;
};

/// Currently attached trace log, or nullptr (default).
TraceLog* trace() noexcept;
void attach_trace(TraceLog* t) noexcept;

/// Where this thread's spans land: the thread-local shard when a
/// ScopedTraceShard is live on this thread, else the attached log.
TraceLog* trace_sink() noexcept;

/// A propagation handle for cross-thread span nesting: captures "where
/// in the span tree this thread currently is" so work handed to another
/// thread (exec::ThreadPool::submit) can open spans that nest under the
/// submitter's span instead of starting a disconnected root.  The ids
/// refer to the log the capturing thread was writing to — adopt a
/// context only on threads writing to that same log (a thread bound to
/// its own shard should leave roots unparented and rely on
/// TraceLog::merge_from's re-parenting instead).
struct TraceContext {
  std::uint64_t parent = 0;  ///< innermost open span id; 0 = at root
  int depth = 0;             ///< depth a child span should record

  /// Snapshot of the calling thread's position (cheap: no locking).
  static TraceContext current() noexcept;
};

/// Redirects this thread's ScopedSpan/begin helpers into `shard` for the
/// current scope (restores the previous binding on destruction).  Also
/// stashes the thread's open-span stack and adopted TraceContext for the
/// scope — span ids are log-scoped, so spans already open against the
/// previous sink must not become parents of shard records.  Spans in
/// the shard therefore start at root; TraceLog::merge_from re-parents
/// them under the span the merger designates.  The parallel campaign
/// runner binds one shard per zone task and merges them into the main
/// log in zone order, so the trace tree is worker-count-invariant.
class ScopedTraceShard {
 public:
  explicit ScopedTraceShard(TraceLog* shard) noexcept;
  ~ScopedTraceShard();
  ScopedTraceShard(const ScopedTraceShard&) = delete;
  ScopedTraceShard& operator=(const ScopedTraceShard&) = delete;

 private:
  TraceLog* prev_;
  std::vector<std::uint64_t> prev_open_spans_;
  TraceContext prev_ctx_;
};

/// Adopts `ctx` as this thread's base for the scope: spans opened while
/// the thread's own span stack is empty take ctx.parent/ctx.depth.
/// Restores the previous base on destruction; nestable.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx) noexcept;
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

/// Latest virtual time sample.  `sim::Simulator` publishes `now()` here
/// as events fire; anything else (tests, custom loops) may too.
void set_virtual_now(double t) noexcept;
double virtual_now() noexcept;

/// RAII span against the attached TraceLog; inert when detached.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceLog* log_ = nullptr;
  std::uint64_t id_ = 0;
};

}  // namespace sensedroid::obs
