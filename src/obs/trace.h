// Lightweight span tracer: nested begin/end events recorded against
// both wall-clock and the discrete-event simulator's virtual time.
//
// The virtual clock is a process-global sample that `sim::Simulator`
// refreshes as events fire (obs cannot depend on sim — it sits below
// every layer), so spans opened inside simulated handlers carry the
// exact SimTime they executed at.  Dump with `TraceLog::to_jsonl()`:
// one JSON object per line, parent/depth fields reconstruct the tree.
//
// Like the metrics registry, tracing is a null-sink until a TraceLog is
// attached; `ScopedSpan` then costs one atomic load + branch.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sensedroid::obs {

/// One completed (or still-open) span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  int depth = 0;             ///< 0 = root
  std::string name;
  double wall_start_us = 0.0;  ///< steady-clock, relative to process start
  double wall_end_us = 0.0;    ///< 0 while open
  double virtual_start = 0.0;  ///< sim::SimTime seconds at begin
  double virtual_end = 0.0;
};

/// Append-only span log.  begin()/end() are thread-safe; nesting
/// (parent/depth) is tracked per thread, so spans opened and closed on
/// the same thread form a proper tree.
class TraceLog {
 public:
  /// Opens a span; returns its id (never 0).
  std::uint64_t begin(std::string_view name);
  /// Closes the span.  Unknown/already-closed ids are ignored.
  void end(std::uint64_t id);
  /// Records an instant event (zero-duration span).
  void instant(std::string_view name);

  std::size_t size() const;
  std::vector<SpanRecord> snapshot() const;
  /// One JSON object per line:
  /// {"id":1,"parent":0,"depth":0,"name":"...","wall_start_us":...,
  ///  "wall_end_us":...,"virtual_start":...,"virtual_end":...}
  std::string to_jsonl() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;  // indexed by id - 1
  std::uint64_t next_id_ = 1;
};

/// Currently attached trace log, or nullptr (default).
TraceLog* trace() noexcept;
void attach_trace(TraceLog* t) noexcept;

/// Latest virtual time sample.  `sim::Simulator` publishes `now()` here
/// as events fire; anything else (tests, custom loops) may too.
void set_virtual_now(double t) noexcept;
double virtual_now() noexcept;

/// RAII span against the attached TraceLog; inert when detached.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceLog* log_ = nullptr;
  std::uint64_t id_ = 0;
};

}  // namespace sensedroid::obs
