#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

namespace sensedroid::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Canonical series key: name{k="v",...} with labels sorted by key.
std::string series_key(std::string_view name, const Labels& labels) {
  if (labels.empty()) return std::string(name);
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) key += ',';
    key += sorted[i].first;
    key += "=\"";
    key += sorted[i].second;
    key += '"';
  }
  key += '}';
  return key;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no Infinity/NaN literals; clamp exporter output to numbers.
std::string json_number(double v) {
  if (std::isnan(v)) return "0";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string prom_name(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

/// Prometheus text-format label-value escaping: exactly backslash,
/// double-quote, and line-feed (the only escapes the spec defines —
/// json_escape's \uXXXX forms are NOT valid in the exposition format).
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prom_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += prom_name(labels[i].first);
    out += "=\"";
    out += prom_escape(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::atomic<MetricsRegistry*> g_registry{nullptr};

// Per-thread shard override (ScopedMetricShard).  Plain (non-atomic):
// only ever touched by its own thread.
thread_local MetricsRegistry* t_shard = nullptr;

}  // namespace

// ---------------------------------------------------------------------
// Histogram

std::vector<double> Histogram::default_bounds() {
  std::vector<double> b;
  b.reserve(57);
  for (int decade = -9; decade <= 9; ++decade) {
    const double base = std::pow(10.0, decade);
    b.push_back(base);
    b.push_back(2.5 * base);
    b.push_back(5.0 * base);
  }
  return b;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), min_(kInf), max_(-kInf) {
  if (bounds_.empty()) bounds_ = default_bounds();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const noexcept {
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::absorb(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& buckets,
                       std::uint64_t count, double sum, double min,
                       double max) noexcept {
  if (count == 0) return;
  if (bounds == bounds_ && buckets.size() == bounds_.size() + 1) {
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] != 0) {
        buckets_[i].fetch_add(buckets[i], std::memory_order_relaxed);
      }
    }
  } else {
    // Bounds mismatch: re-bin each foreign bucket at its upper bound
    // (overflow bucket lands at the foreign max).
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;
      const double v = i < bounds.size() ? bounds[i] : max;
      const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
      const auto idx = static_cast<std::size_t>(it - bounds_.begin());
      buckets_[idx].fetch_add(buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + sum,
                                     std::memory_order_relaxed)) {
  }
  atomic_min(min_, min);
  atomic_max(max_, max);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b <= bounds_.size(); ++b) {
    const std::uint64_t in_bucket =
        buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      // Linear interpolation inside the crossing bucket.
      const double lo =
          b == 0 ? std::min(min(), bounds_.front()) : bounds_[b - 1];
      const double hi = b < bounds_.size() ? bounds_[b] : max();
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      const double est = lo + frac * (hi - lo);
      return std::clamp(est, min(), max());
    }
    cum += in_bucket;
  }
  return max();
}

// ---------------------------------------------------------------------
// MetricsRegistry

namespace {
std::atomic<std::uint64_t> g_next_stamp{1};
}  // namespace

MetricsRegistry::MetricsRegistry()
    : stamp_(g_next_stamp.fetch_add(1, std::memory_order_relaxed)) {}

bool MetricsRegistry::admit_series_locked(std::string_view name) {
  // The drop counter itself must never be refused (and must not recurse
  // into the guard), so it is exempt by name.
  constexpr std::string_view kDropFamily = "obs.dropped_series";
  if (name == kDropFamily) return true;
  auto it = family_counts_.find(name);
  if (it == family_counts_.end()) {
    family_counts_.emplace(std::string(name), 1);
    return true;
  }
  if (it->second < series_limit_) {
    ++it->second;
    return true;
  }
  // Refused: count the drop under the offending family's label.  This
  // creates at most one extra series per family — bounded by the number
  // of families, not by the runaway label.
  const Labels drop_labels{{"metric", std::string(name)}};
  const std::string drop_key = series_key(kDropFamily, drop_labels);
  auto dit = counters_.find(drop_key);
  if (dit == counters_.end()) {
    dit = counters_
              .emplace(drop_key,
                       Series<Counter>{std::string(kDropFamily), drop_labels,
                                       std::make_unique<Counter>()})
              .first;
  }
  dit->second.metric->inc();
  return false;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  const Labels& labels) {
  const std::string key = series_key(name, labels);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    if (!admit_series_locked(name)) return overflow_counter_;
    it = counters_
             .emplace(key, Series<Counter>{std::string(name), labels,
                                           std::make_unique<Counter>()})
             .first;
  }
  return *it->second.metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  const std::string key = series_key(name, labels);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    if (!admit_series_locked(name)) return overflow_gauge_;
    it = gauges_
             .emplace(key, Series<Gauge>{std::string(name), labels,
                                         std::make_unique<Gauge>()})
             .first;
  }
  return *it->second.metric;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const Labels& labels,
                                      std::vector<double> bounds) {
  const std::string key = series_key(name, labels);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    if (!admit_series_locked(name)) {
      if (!overflow_histogram_) {
        overflow_histogram_ = std::make_unique<Histogram>();
      }
      return *overflow_histogram_;
    }
    auto metric = bounds.empty()
                      ? std::make_unique<Histogram>()
                      : std::make_unique<Histogram>(std::move(bounds));
    it = histograms_
             .emplace(key, Series<Histogram>{std::string(name), labels,
                                             std::move(metric)})
             .first;
  }
  return *it->second.metric;
}

void MetricsRegistry::set_series_limit(std::size_t limit) {
  std::lock_guard<std::mutex> lk(mu_);
  series_limit_ = std::max<std::size_t>(limit, 1);
}

std::size_t MetricsRegistry::series_limit() const {
  std::lock_guard<std::mutex> lk(mu_);
  return series_limit_;
}

double MetricsRegistry::dropped_series() const {
  return counter_sum("obs.dropped_series");
}

double MetricsRegistry::counter_sum(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  double total = 0.0;
  for (const auto& [key, s] : counters_) {
    if (s.name == name) total += s.metric->value();
  }
  return total;
}

double MetricsRegistry::counter_value(std::string_view name,
                                      const Labels& labels) const {
  const std::string key = series_key(name, labels);
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(key);
  return it == counters_.end() ? 0.0 : it->second.metric->value();
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, s] : gauges_) {
    if (s.name == name) return s.metric->value();
  }
  return 0.0;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, s] : histograms_) {
    if (s.name == name) return s.metric.get();
  }
  return nullptr;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  family_counts_.clear();
  // New stamp: invalidates every cached reference (helpers' thread-local
  // fast path included) taken before the clear.
  stamp_.store(g_next_stamp.fetch_add(1, std::memory_order_relaxed),
               std::memory_order_relaxed);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Snapshot first: samples() holds other's lock, our lookups hold ours,
  // never both at once — merge_from(self) or cross-merges cannot
  // deadlock.  samples() iterates sorted series maps, so the merge order
  // (and therefore every floating-point accumulation) is deterministic.
  for (const Sample& s : other.samples()) {
    switch (s.kind) {
      case 'c':
        counter(s.name, s.labels).add(s.value);
        break;
      case 'g':
        gauge(s.name, s.labels).set(s.value);
        break;
      case 'h':
        histogram(s.name, s.labels, s.bounds)
            .absorb(s.bounds, s.buckets, s.count, s.sum, s.min, s.max);
        break;
      default:
        break;
    }
  }
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, s] : counters_) {
    Sample smp;
    smp.name = s.name;
    smp.labels = s.labels;
    smp.kind = 'c';
    smp.value = s.metric->value();
    out.push_back(std::move(smp));
  }
  for (const auto& [key, s] : gauges_) {
    Sample smp;
    smp.name = s.name;
    smp.labels = s.labels;
    smp.kind = 'g';
    smp.value = s.metric->value();
    out.push_back(std::move(smp));
  }
  for (const auto& [key, s] : histograms_) {
    Sample smp;
    smp.name = s.name;
    smp.labels = s.labels;
    smp.kind = 'h';
    smp.count = s.metric->count();
    smp.sum = s.metric->sum();
    smp.min = smp.count ? s.metric->min() : 0.0;
    smp.max = smp.count ? s.metric->max() : 0.0;
    smp.p50 = s.metric->quantile(0.50);
    smp.p95 = s.metric->quantile(0.95);
    smp.p99 = s.metric->quantile(0.99);
    smp.bounds = s.metric->bounds();
    smp.buckets = s.metric->bucket_counts();
    out.push_back(std::move(smp));
  }
  return out;
}

std::string MetricsRegistry::to_json() const { return to_json(true); }

namespace {

/// Wall-clock timing series carry the unit suffix `_us` by convention;
/// they are the only inherently non-reproducible series in the registry.
bool is_wall_clock_series(std::string_view name) {
  return name.size() >= 3 && name.substr(name.size() - 3) == "_us";
}

}  // namespace

std::string MetricsRegistry::to_json(bool include_wall_clock) const {
  const auto all = samples();
  std::string counters, gauges, hists;
  for (const auto& s : all) {
    if (!include_wall_clock && is_wall_clock_series(s.name)) continue;
    std::string labels = "{";
    for (std::size_t i = 0; i < s.labels.size(); ++i) {
      if (i) labels += ',';
      labels += '"' + json_escape(s.labels[i].first) + "\":\"" +
                json_escape(s.labels[i].second) + '"';
    }
    labels += '}';
    if (s.kind == 'c' || s.kind == 'g') {
      std::string& dst = s.kind == 'c' ? counters : gauges;
      if (!dst.empty()) dst += ',';
      dst += "{\"name\":\"" + json_escape(s.name) + "\",\"labels\":" +
             labels + ",\"value\":" + json_number(s.value) + '}';
    } else {
      if (!hists.empty()) hists += ',';
      std::string buckets;
      // Emit only non-empty buckets: default histograms have 57 bounds
      // and dumping them all would swamp the export.
      for (std::size_t b = 0; b < s.buckets.size(); ++b) {
        if (s.buckets[b] == 0) continue;
        if (!buckets.empty()) buckets += ',';
        const double le = b < s.bounds.size()
                              ? s.bounds[b]
                              : std::numeric_limits<double>::infinity();
        buckets += "{\"le\":" + json_number(le) +
                   ",\"count\":" + std::to_string(s.buckets[b]) + '}';
      }
      hists += "{\"name\":\"" + json_escape(s.name) + "\",\"labels\":" +
               labels + ",\"count\":" + std::to_string(s.count) +
               ",\"sum\":" + json_number(s.sum) +
               ",\"min\":" + json_number(s.min) +
               ",\"max\":" + json_number(s.max) +
               ",\"p50\":" + json_number(s.p50) +
               ",\"p95\":" + json_number(s.p95) +
               ",\"p99\":" + json_number(s.p99) + ",\"buckets\":[" +
               buckets + "]}";
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + hists + "]}";
}

std::string MetricsRegistry::to_prometheus() const {
  const auto all = samples();
  std::string out;
  std::string last_typed;
  for (const auto& s : all) {
    const std::string name = prom_name(s.name);
    if (s.kind == 'c' || s.kind == 'g') {
      if (name != last_typed) {
        out += "# TYPE " + name +
               (s.kind == 'c' ? " counter\n" : " gauge\n");
        last_typed = name;
      }
      out += name + prom_labels(s.labels) + ' ' + prom_number(s.value) +
             '\n';
    } else {
      if (name != last_typed) {
        out += "# TYPE " + name + " histogram\n";
        last_typed = name;
      }
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < s.buckets.size(); ++b) {
        cum += s.buckets[b];
        if (s.buckets[b] == 0 && b + 1 != s.buckets.size()) continue;
        Labels le = s.labels;
        le.emplace_back(
            "le", b < s.bounds.size() ? prom_number(s.bounds[b]) : "+Inf");
        out += name + "_bucket" + prom_labels(le) + ' ' +
               std::to_string(cum) + '\n';
      }
      out += name + "_sum" + prom_labels(s.labels) + ' ' +
             prom_number(s.sum) + '\n';
      out += name + "_count" + prom_labels(s.labels) + ' ' +
             std::to_string(s.count) + '\n';
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Global attachment

MetricsRegistry* registry() noexcept {
  return g_registry.load(std::memory_order_acquire);
}

void attach_registry(MetricsRegistry* r) noexcept {
  g_registry.store(r, std::memory_order_release);
}

MetricsRegistry* sink() noexcept {
  MetricsRegistry* shard = t_shard;
  return shard != nullptr ? shard : registry();
}

bool attached() noexcept { return sink() != nullptr; }

ScopedMetricShard::ScopedMetricShard(MetricsRegistry* shard) noexcept
    : prev_(t_shard) {
  t_shard = shard;
}

ScopedMetricShard::~ScopedMetricShard() { t_shard = prev_; }

namespace {

// Thread-local fast path for the unlabeled helpers: a direct-mapped
// cache from metric name to the resolved metric pointer, validated by
// the owning registry's stamp.  The slow path (mutex + map lookup +
// series_key string build) costs ~150 ns, which at ~5 helper calls per
// 12 µs OMP solve is most of the armed-vs-detached overhead budget; a
// cache hit is a handful of compares.  Entries self-heal on any
// mismatch (different sink, cleared registry, colliding slot) by
// falling through to the slow path and overwriting the slot.
constexpr std::size_t kFastSlots = 64;      // power of two
constexpr std::size_t kFastNameCap = 47;    // names longer skip the cache

struct FastEntry {
  char name[kFastNameCap + 1];
  std::uint8_t len = 0;
  char kind = 0;  // 'c' counter, 'g' gauge, 'h' histogram
  const MetricsRegistry* reg = nullptr;
  std::uint64_t stamp = 0;
  void* metric = nullptr;
};

thread_local FastEntry t_fast[kFastSlots];

std::size_t fast_slot(std::string_view name, char kind) noexcept {
  // Helper call sites pass literals, so hashing the first/last bytes and
  // the length separates the real name population well.
  const std::size_t h = name.size() * 131 +
                        static_cast<unsigned char>(name.front()) * 31 +
                        static_cast<unsigned char>(name.back()) * 7 +
                        static_cast<unsigned char>(kind);
  return h & (kFastSlots - 1);
}

/// Returns the cached metric for (r, name, kind), or nullptr on miss.
void* fast_lookup(const MetricsRegistry* r, std::string_view name,
                  char kind) noexcept {
  if (name.empty() || name.size() > kFastNameCap) return nullptr;
  const FastEntry& e = t_fast[fast_slot(name, kind)];
  if (e.kind == kind && e.reg == r && e.len == name.size() &&
      e.stamp == r->stamp() &&
      std::memcmp(e.name, name.data(), name.size()) == 0) {
    return e.metric;
  }
  return nullptr;
}

void fast_store(const MetricsRegistry* r, std::string_view name, char kind,
                void* metric) noexcept {
  if (name.empty() || name.size() > kFastNameCap) return;
  FastEntry& e = t_fast[fast_slot(name, kind)];
  std::memcpy(e.name, name.data(), name.size());
  e.len = static_cast<std::uint8_t>(name.size());
  e.kind = kind;
  e.reg = r;
  e.stamp = r->stamp();
  e.metric = metric;
}

}  // namespace

void add_counter(std::string_view name, double v) noexcept {
  if (MetricsRegistry* r = sink()) {
    if (void* m = fast_lookup(r, name, 'c')) {
      static_cast<Counter*>(m)->add(v);
      return;
    }
    try {
      Counter& c = r->counter(name);
      fast_store(r, name, 'c', &c);
      c.add(v);
    } catch (...) {
    }
  }
}

void add_counter(std::string_view name, const Labels& labels,
                 double v) noexcept {
  if (MetricsRegistry* r = sink()) {
    try {
      r->counter(name, labels).add(v);
    } catch (...) {
    }
  }
}

void set_gauge(std::string_view name, double v) noexcept {
  if (MetricsRegistry* r = sink()) {
    if (void* m = fast_lookup(r, name, 'g')) {
      static_cast<Gauge*>(m)->set(v);
      return;
    }
    try {
      Gauge& g = r->gauge(name);
      fast_store(r, name, 'g', &g);
      g.set(v);
    } catch (...) {
    }
  }
}

void set_gauge(std::string_view name, const Labels& labels,
               double v) noexcept {
  if (MetricsRegistry* r = sink()) {
    try {
      r->gauge(name, labels).set(v);
    } catch (...) {
    }
  }
}

void observe(std::string_view name, double v) noexcept {
  if (MetricsRegistry* r = sink()) {
    if (void* m = fast_lookup(r, name, 'h')) {
      static_cast<Histogram*>(m)->observe(v);
      return;
    }
    try {
      Histogram& h = r->histogram(name);
      fast_store(r, name, 'h', &h);
      h.observe(v);
    } catch (...) {
    }
  }
}

void observe(std::string_view name, const Labels& labels,
             double v) noexcept {
  if (MetricsRegistry* r = sink()) {
    try {
      r->histogram(name, labels).observe(v);
    } catch (...) {
    }
  }
}

}  // namespace sensedroid::obs
