// TelemetryServer: a tiny epoll-driven HTTP/1.0 listener (standard
// library + POSIX sockets only) that exposes a RUNNING campaign's
// observability surface on loopback:
//
//   GET /metrics  Prometheus text: the campaign registry's export,
//                 followed by the health engine's gauge registry.
//   GET /healthz  HealthEngine verdict JSON; 200 when healthy/degraded,
//                 503 when any zone is unhealthy (load-balancer idiom).
//   GET /report   Live RunReport JSON (full view, wall-clock series
//                 included — the deterministic view is what the
//                 campaign itself writes at the end).
//   GET /spans    TraceLog JSONL snapshot.
//   GET /flight   Flight-recorder JSONL dump (does not reset rings).
//
// Determinism rules (DESIGN.md §12): every handler only READS the
// sources — registry/trace snapshots take their internal locks, health
// gauges live in the engine's own registry — so scraping mid-campaign
// cannot change a single deterministic byte of the campaign's RunReport.
//
// It is a diagnostics port, not a web server: one request per
// connection, requests served sequentially on one thread, 2 s socket
// timeouts so a stalled client cannot wedge the scrape loop for long.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::obs {

class HealthEngine;

/// Where each endpoint reads from.  Null members disable their
/// endpoints (404).  All pointees must outlive the server.
struct TelemetrySources {
  const MetricsRegistry* metrics = nullptr;  ///< /metrics, /report
  const TraceLog* traces = nullptr;          ///< /spans
  HealthEngine* health = nullptr;            ///< /healthz, /metrics tail
  std::string report_name = "live";          ///< campaign name in /report
};

class TelemetryServer {
 public:
  /// `port` 0 binds an ephemeral port (read it back via port()).  Binds
  /// loopback only — telemetry is host-local by design.
  explicit TelemetryServer(TelemetrySources sources, std::uint16_t port = 0);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds, listens, and spawns the serving thread.  Returns false (with
  /// no thread spawned) when the socket setup fails.  Idempotent while
  /// running.
  bool start();

  /// Stops accepting, joins the serving thread, closes the socket.
  /// Idempotent; also run by the destructor.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Bound port (valid after start() returned true).
  std::uint16_t port() const noexcept { return port_; }

  /// Total requests served (any status) — test/ops visibility.
  std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Builds the response body + status for `path` exactly as the socket
  /// surface would.  Public so tests can exercise routing without
  /// sockets; the server's own thread goes through this too.
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  Response handle(std::string_view path) const;

 private:
  void serve_loop();
  void handle_connection(int fd) const;

  TelemetrySources sources_;
  std::uint16_t requested_port_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop() pokes the epoll wait
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace sensedroid::obs
