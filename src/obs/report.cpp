#include "obs/report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sensedroid::obs {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

HistSummary summarize(const MetricsRegistry& reg, std::string_view name) {
  HistSummary out;
  if (const Histogram* h = reg.find_histogram(name)) {
    out.count = h->count();
    out.mean = h->mean();
    out.p50 = h->quantile(0.50);
    out.p95 = h->quantile(0.95);
    out.p99 = h->quantile(0.99);
    out.max = out.count ? h->max() : 0.0;
  }
  return out;
}

std::string hist_json(const HistSummary& h) {
  return "{\"count\":" + std::to_string(h.count) + ",\"mean\":" +
         num(h.mean) + ",\"p50\":" + num(h.p50) + ",\"p95\":" + num(h.p95) +
         ",\"p99\":" + num(h.p99) + ",\"max\":" + num(h.max) + '}';
}

std::string escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

RunReport RunReport::from_registry(const MetricsRegistry& reg,
                                   std::string campaign) {
  return from_registry(reg, std::move(campaign), /*include_wall_clock=*/true);
}

RunReport RunReport::from_registry(const MetricsRegistry& reg,
                                   std::string campaign,
                                   bool include_wall_clock) {
  RunReport r;
  r.campaign = std::move(campaign);

  r.energy_total_j = reg.counter_sum("sim.energy.joules");
  r.energy_tx_j = reg.counter_value("sim.energy.joules", {{"category", "tx"}});
  r.energy_rx_j = reg.counter_value("sim.energy.joules", {{"category", "rx"}});
  r.energy_sensing_j =
      reg.counter_value("sim.energy.joules", {{"category", "sensing"}});
  r.energy_compute_j =
      reg.counter_value("sim.energy.joules", {{"category", "compute"}});
  r.radio_tx_bytes = reg.counter_sum("sim.radio.tx_bytes");
  r.radio_rx_bytes = reg.counter_sum("sim.radio.rx_bytes");
  r.radio_attempts = reg.counter_sum("sim.radio.attempts");
  r.radio_drops = reg.counter_sum("sim.radio.drops");
  r.sim_events = reg.counter_sum("sim.events.executed");

  r.broker_rounds = reg.counter_sum("mw.broker.collect_rounds");
  r.broker_commands = reg.counter_sum("mw.broker.commands_sent");
  r.broker_replies = reg.counter_sum("mw.broker.replies_received");
  r.broker_failures = reg.counter_sum("mw.broker.radio_failures");
  r.broker_bytes = reg.counter_sum("mw.broker.bytes");
  r.pubsub_published = reg.counter_sum("mw.pubsub.published");
  r.pubsub_delivered = reg.counter_sum("mw.pubsub.delivered");

  r.omp_solves = reg.counter_sum("cs.omp.solves");
  r.omp_iterations = reg.counter_sum("cs.omp.iterations");
  r.chs_solves = reg.counter_sum("cs.chs.solves");
  r.chs_iterations = reg.counter_sum("cs.chs.iterations");
  r.simplex_solves = reg.counter_sum("cs.simplex.solves");
  r.simplex_pivots = reg.counter_sum("cs.simplex.pivots");
  r.chs_residual = summarize(reg, "cs.chs.residual_rel");
  if (include_wall_clock) {
    r.chs_solve_us = summarize(reg, "cs.chs.solve_us");
    r.omp_solve_us = summarize(reg, "cs.omp.solve_us");
  }

  r.gather_rounds = reg.counter_sum("hier.nanocloud.rounds");
  r.nodes_commanded = reg.counter_sum("hier.nanocloud.nodes_commanded");
  r.zones_gathered = reg.counter_sum("hier.localcloud.zones_gathered");
  r.uplink_bytes = reg.counter_sum("hier.localcloud.uplink_bytes");

  r.fault_link_drops = reg.counter_sum("fault.link.drops");
  r.fault_link_bursts = reg.counter_sum("fault.link.bursts");
  r.fault_churn_absences = reg.counter_sum("fault.churn.absent");
  r.fault_sensor_spikes = reg.counter_sum("fault.sensor.spikes");
  r.fault_crashed_rounds = reg.counter_sum("fault.broker.crashed_rounds");
  r.failover_promotions = reg.counter_sum("fault.failover.promotions");
  r.retry_attempts = reg.counter_sum("mw.retry.attempts");
  r.retry_recovered = reg.counter_sum("mw.retry.recovered");
  r.topup_requests = reg.counter_sum("mw.topup.requests");
  r.topup_replies = reg.counter_sum("mw.topup.replies");
  r.outliers_rejected = reg.counter_sum("cs.chs.outliers_rejected");

  r.metrics_json = reg.to_json(include_wall_clock);
  return r;
}

std::string RunReport::to_json() const {
  std::string out = "{\"schema_version\":" + std::to_string(kSchemaVersion) +
                    ",\"campaign\":\"" + escape(campaign) + "\"";
  out += ",\"sim\":{\"energy_total_j\":" + num(energy_total_j) +
         ",\"energy_tx_j\":" + num(energy_tx_j) +
         ",\"energy_rx_j\":" + num(energy_rx_j) +
         ",\"energy_sensing_j\":" + num(energy_sensing_j) +
         ",\"energy_compute_j\":" + num(energy_compute_j) +
         ",\"radio_tx_bytes\":" + num(radio_tx_bytes) +
         ",\"radio_rx_bytes\":" + num(radio_rx_bytes) +
         ",\"radio_attempts\":" + num(radio_attempts) +
         ",\"radio_drops\":" + num(radio_drops) +
         ",\"events_executed\":" + num(sim_events) + '}';
  out += ",\"middleware\":{\"broker_rounds\":" + num(broker_rounds) +
         ",\"commands_sent\":" + num(broker_commands) +
         ",\"replies_received\":" + num(broker_replies) +
         ",\"radio_failures\":" + num(broker_failures) +
         ",\"bytes\":" + num(broker_bytes) +
         ",\"published\":" + num(pubsub_published) +
         ",\"delivered\":" + num(pubsub_delivered) + '}';
  out += ",\"cs\":{\"omp_solves\":" + num(omp_solves) +
         ",\"omp_iterations\":" + num(omp_iterations) +
         ",\"chs_solves\":" + num(chs_solves) +
         ",\"chs_iterations\":" + num(chs_iterations) +
         ",\"simplex_solves\":" + num(simplex_solves) +
         ",\"simplex_pivots\":" + num(simplex_pivots) +
         ",\"chs_residual_rel\":" + hist_json(chs_residual) +
         ",\"chs_solve_us\":" + hist_json(chs_solve_us) +
         ",\"omp_solve_us\":" + hist_json(omp_solve_us) + '}';
  out += ",\"hierarchy\":{\"gather_rounds\":" + num(gather_rounds) +
         ",\"nodes_commanded\":" + num(nodes_commanded) +
         ",\"zones_gathered\":" + num(zones_gathered) +
         ",\"uplink_bytes\":" + num(uplink_bytes) + '}';
  out += ",\"fault\":{\"link_drops\":" + num(fault_link_drops) +
         ",\"link_bursts\":" + num(fault_link_bursts) +
         ",\"churn_absences\":" + num(fault_churn_absences) +
         ",\"sensor_spikes\":" + num(fault_sensor_spikes) +
         ",\"crashed_broker_rounds\":" + num(fault_crashed_rounds) +
         ",\"failover_promotions\":" + num(failover_promotions) +
         ",\"retry_attempts\":" + num(retry_attempts) +
         ",\"retry_recovered\":" + num(retry_recovered) +
         ",\"topup_requests\":" + num(topup_requests) +
         ",\"topup_replies\":" + num(topup_replies) +
         ",\"outliers_rejected\":" + num(outliers_rejected) + '}';
  out += ",\"reconstruction_error\":" + num(reconstruction_error);
  out += ",\"metrics\":" +
         (metrics_json.empty() ? std::string("{}") : metrics_json);
  out += '}';
  return out;
}

std::string RunReport::summary() const {
  std::ostringstream os;
  os.precision(4);
  os << "RunReport[" << campaign << "]\n"
     << "  sim:        " << energy_total_j << " J total ("
     << energy_tx_j << " tx, " << energy_rx_j << " rx, "
     << energy_sensing_j << " sensing), " << radio_tx_bytes
     << " B tx, " << radio_drops << "/" << radio_attempts
     << " radio drops\n"
     << "  middleware: " << broker_rounds << " rounds, "
     << broker_commands << " cmds, " << broker_replies << " replies, "
     << pubsub_published << " published / " << pubsub_delivered
     << " delivered\n"
     << "  cs:         chs " << chs_solves << " solves / "
     << chs_iterations << " iters (residual p50 " << chs_residual.p50
     << "), omp " << omp_solves << " solves / " << omp_iterations
     << " iters, simplex " << simplex_pivots << " pivots\n"
     << "  hierarchy:  " << gather_rounds << " gathers, "
     << nodes_commanded << " nodes commanded, " << zones_gathered
     << " zones, " << uplink_bytes << " uplink B\n";
  const double injected = fault_link_drops + fault_churn_absences +
                          fault_sensor_spikes + fault_crashed_rounds;
  const double recovered = retry_recovered + topup_replies +
                           failover_promotions + outliers_rejected;
  if (injected > 0.0 || recovered > 0.0 || retry_attempts > 0.0) {
    os << "  fault:      " << injected << " injected ("
       << fault_link_drops << " link drops, " << fault_churn_absences
       << " churn absences, " << fault_sensor_spikes << " spikes, "
       << fault_crashed_rounds << " crashed rounds) vs " << recovered
       << " recovered (" << retry_recovered << " by retry, "
       << topup_replies << " by top-up, " << failover_promotions
       << " failovers, " << outliers_rejected << " outliers screened)\n";
  }
  if (reconstruction_error >= 0.0) {
    os << "  reconstruction error: " << reconstruction_error << "\n";
  }
  return os.str();
}

bool write_report(const RunReport& report) {
  const std::string json = report.to_json();
  if (const char* path = std::getenv("SENSEDROID_REPORT")) {
    std::ofstream f(path, std::ios::app);
    if (!f) {
      std::fprintf(stderr, "sensedroid: cannot open SENSEDROID_REPORT=%s\n",
                   path);
      return false;
    }
    f << json << '\n';
    return static_cast<bool>(f);
  }
  std::fputs(json.c_str(), stdout);
  std::fputc('\n', stdout);
  return true;
}

}  // namespace sensedroid::obs
