#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>

namespace sensedroid::obs {

namespace {

std::atomic<TraceLog*> g_trace{nullptr};
std::atomic<double> g_virtual_now{0.0};

// Per-thread stack of open span ids: gives each begin() its parent and
// depth without a global ordering requirement across threads.
thread_local std::vector<std::uint64_t> t_open_spans;

double wall_us() noexcept {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string jsonl_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::uint64_t TraceLog::begin(std::string_view name) {
  SpanRecord rec;
  rec.name = std::string(name);
  rec.wall_start_us = wall_us();
  rec.virtual_start = virtual_now();
  rec.parent = t_open_spans.empty() ? 0 : t_open_spans.back();
  rec.depth = static_cast<int>(t_open_spans.size());
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lk(mu_);
    id = next_id_++;
    rec.id = id;
    spans_.push_back(std::move(rec));
  }
  t_open_spans.push_back(id);
  return id;
}

void TraceLog::end(std::uint64_t id) {
  // Unwind this thread's stack through the span (handles missed ends of
  // children — e.g. an exception skipped a manual end()).  Spans closed
  // from a different thread than they were opened on leave the opener's
  // stack alone.
  for (std::size_t i = t_open_spans.size(); i-- > 0;) {
    if (t_open_spans[i] == id) {
      t_open_spans.resize(i);
      break;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (id == 0 || id >= next_id_) return;
  SpanRecord& rec = spans_[id - 1];
  if (rec.wall_end_us != 0.0) return;  // already closed
  rec.wall_end_us = wall_us();
  rec.virtual_end = virtual_now();
}

void TraceLog::instant(std::string_view name) { end(begin(name)); }

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spans_.size();
}

std::vector<SpanRecord> TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spans_;
}

std::string TraceLog::to_jsonl() const {
  const auto spans = snapshot();
  std::string out;
  for (const auto& s : spans) {
    out += "{\"id\":" + std::to_string(s.id) +
           ",\"parent\":" + std::to_string(s.parent) +
           ",\"depth\":" + std::to_string(s.depth) + ",\"name\":\"" +
           jsonl_escape(s.name) + "\",\"wall_start_us\":" +
           num(s.wall_start_us) + ",\"wall_end_us\":" + num(s.wall_end_us) +
           ",\"virtual_start\":" + num(s.virtual_start) +
           ",\"virtual_end\":" + num(s.virtual_end) + "}\n";
  }
  return out;
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  spans_.clear();
  next_id_ = 1;
}

TraceLog* trace() noexcept { return g_trace.load(std::memory_order_acquire); }

void attach_trace(TraceLog* t) noexcept {
  g_trace.store(t, std::memory_order_release);
}

void set_virtual_now(double t) noexcept {
  g_virtual_now.store(t, std::memory_order_relaxed);
}

double virtual_now() noexcept {
  return g_virtual_now.load(std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(std::string_view name) noexcept {
  if (TraceLog* log = trace()) {
    try {
      id_ = log->begin(name);
      log_ = log;
    } catch (...) {
      log_ = nullptr;
    }
  }
}

ScopedSpan::~ScopedSpan() {
  if (log_ != nullptr) log_->end(id_);
}

}  // namespace sensedroid::obs
