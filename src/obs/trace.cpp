#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <sstream>

namespace sensedroid::obs {

namespace {

std::atomic<TraceLog*> g_trace{nullptr};
std::atomic<double> g_virtual_now{0.0};

// Per-thread stack of open span ids: gives each begin() its parent and
// depth without a global ordering requirement across threads.
thread_local std::vector<std::uint64_t> t_open_spans;

// Per-thread adopted base (ScopedTraceContext): what a span opened with
// an empty stack should use as parent/depth.  Default {0,0} = root.
thread_local TraceContext t_ctx_base;

// Per-thread sink override (ScopedTraceShard).
thread_local TraceLog* t_trace_shard = nullptr;

double wall_us() noexcept {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string jsonl_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::uint64_t TraceLog::begin(std::string_view name) {
  SpanRecord rec;
  rec.name = std::string(name);
  rec.wall_start_us = wall_us();
  rec.virtual_start = virtual_now();
  rec.parent = t_open_spans.empty() ? t_ctx_base.parent
                                    : t_open_spans.back();
  rec.depth = t_ctx_base.depth + static_cast<int>(t_open_spans.size());
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lk(mu_);
    id = next_id_++;
    rec.id = id;
    spans_.push_back(std::move(rec));
  }
  t_open_spans.push_back(id);
  return id;
}

void TraceLog::end(std::uint64_t id) {
  // Unwind this thread's stack through the span (handles missed ends of
  // children — e.g. an exception skipped a manual end()).  Spans closed
  // from a different thread than they were opened on leave the opener's
  // stack alone.
  for (std::size_t i = t_open_spans.size(); i-- > 0;) {
    if (t_open_spans[i] == id) {
      t_open_spans.resize(i);
      break;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (id == 0 || id >= next_id_) return;
  SpanRecord& rec = spans_[id - 1];
  if (rec.wall_end_us != 0.0) return;  // already closed
  rec.wall_end_us = wall_us();
  rec.virtual_end = virtual_now();
}

void TraceLog::instant(std::string_view name) { end(begin(name)); }

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spans_.size();
}

std::vector<SpanRecord> TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spans_;
}

std::string TraceLog::to_jsonl() const {
  const auto spans = snapshot();
  std::string out;
  for (const auto& s : spans) {
    out += "{\"id\":" + std::to_string(s.id) +
           ",\"parent\":" + std::to_string(s.parent) +
           ",\"depth\":" + std::to_string(s.depth) + ",\"name\":\"" +
           jsonl_escape(s.name) + "\",\"wall_start_us\":" +
           num(s.wall_start_us) + ",\"wall_end_us\":" + num(s.wall_end_us) +
           ",\"virtual_start\":" + num(s.virtual_start) +
           ",\"virtual_end\":" + num(s.virtual_end) + "}\n";
  }
  return out;
}

void TraceLog::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  spans_.clear();
  next_id_ = 1;
}

void TraceLog::merge_from(const TraceLog& shard, std::uint64_t parent_id) {
  const std::vector<SpanRecord> foreign = shard.snapshot();
  if (foreign.empty()) return;
  std::lock_guard<std::mutex> lk(mu_);
  int base_depth = 0;
  if (parent_id != 0 && parent_id < next_id_) {
    base_depth = spans_[parent_id - 1].depth + 1;
  }
  // Shard ids are dense 1..n, so a flat remap table suffices.
  std::vector<std::uint64_t> remap(foreign.size() + 1, 0);
  spans_.reserve(spans_.size() + foreign.size());
  for (const SpanRecord& src : foreign) {
    SpanRecord rec = src;
    rec.id = next_id_++;
    if (src.id < remap.size()) remap[src.id] = rec.id;
    if (src.parent == 0) {
      rec.parent = parent_id;
    } else if (src.parent < remap.size() && remap[src.parent] != 0) {
      rec.parent = remap[src.parent];
    } else {
      rec.parent = parent_id;  // dangling foreign parent: reattach
    }
    rec.depth = src.depth + base_depth;
    spans_.push_back(std::move(rec));
  }
}

TraceLog* trace() noexcept { return g_trace.load(std::memory_order_acquire); }

void attach_trace(TraceLog* t) noexcept {
  g_trace.store(t, std::memory_order_release);
}

TraceLog* trace_sink() noexcept {
  TraceLog* shard = t_trace_shard;
  return shard != nullptr ? shard : trace();
}

ScopedTraceShard::ScopedTraceShard(TraceLog* shard) noexcept
    : prev_(t_trace_shard) {
  t_trace_shard = shard;
  // Span ids are log-scoped, so the thread's open-span stack and
  // adopted base (which reference the *previous* sink's ids) must not
  // parent spans recorded into the shard: stash both and start at
  // root.  merge_from() later re-parents the shard's roots wherever
  // the merger says they belong.
  prev_open_spans_ = std::move(t_open_spans);
  t_open_spans.clear();
  prev_ctx_ = t_ctx_base;
  t_ctx_base = TraceContext{};
}

ScopedTraceShard::~ScopedTraceShard() {
  t_trace_shard = prev_;
  t_open_spans = std::move(prev_open_spans_);
  t_ctx_base = prev_ctx_;
}

TraceContext TraceContext::current() noexcept {
  if (t_open_spans.empty()) return t_ctx_base;
  return TraceContext{
      t_open_spans.back(),
      t_ctx_base.depth + static_cast<int>(t_open_spans.size())};
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx) noexcept
    : prev_(t_ctx_base) {
  t_ctx_base = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_ctx_base = prev_; }

void set_virtual_now(double t) noexcept {
  g_virtual_now.store(t, std::memory_order_relaxed);
}

double virtual_now() noexcept {
  return g_virtual_now.load(std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(std::string_view name) noexcept {
  if (TraceLog* log = trace_sink()) {
    try {
      id_ = log->begin(name);
      log_ = log;
    } catch (...) {
      log_ = nullptr;
    }
  }
}

ScopedSpan::~ScopedSpan() {
  if (log_ != nullptr) log_->end(id_);
}

}  // namespace sensedroid::obs
