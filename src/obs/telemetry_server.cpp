#include "obs/telemetry_server.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/report.h"

namespace sensedroid::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

void write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // timeout / client gone: drop the response
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

TelemetryServer::TelemetryServer(TelemetrySources sources, std::uint16_t port)
    : sources_(std::move(sources)), requested_port_(port) {}

TelemetryServer::~TelemetryServer() { stop(); }

bool TelemetryServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(requested_port_);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  const int wake = ::eventfd(0, EFD_CLOEXEC);
  if (wake < 0) {
    ::close(fd);
    return false;
  }

  listen_fd_ = fd;
  wake_fd_ = wake;
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void TelemetryServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  const std::uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_fd_);
  listen_fd_ = -1;
  wake_fd_ = -1;
}

void TelemetryServer::serve_loop() {
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(ep, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(ep, EPOLL_CTL_ADD, wake_fd_, &ev);

  while (running_.load(std::memory_order_acquire)) {
    epoll_event events[4];
    const int n = ::epoll_wait(ep, events, 4, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd != listen_fd_) continue;  // wake_fd: loop check
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) continue;
      timeval tv{2, 0};
      ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
      handle_connection(conn);
      ::close(conn);
      served_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ::close(ep);
}

void TelemetryServer::handle_connection(int fd) const {
  // Read until the header terminator (requests are a handful of bytes;
  // 8 KiB is the sanity cap, not a real limit).
  std::string req;
  char buf[1024];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // timeout or close before a full request: no reply owed
    }
    req.append(buf, static_cast<std::size_t>(n));
  }

  Response resp;
  const std::size_t line_end = req.find("\r\n");
  const std::string_view line =
      std::string_view(req).substr(0, line_end);
  if (!line.starts_with("GET ")) {
    resp = Response{405, "text/plain; charset=utf-8", "GET only\n"};
  } else {
    std::string_view path = line.substr(4);
    path = path.substr(0, path.find(' '));
    const std::size_t query = path.find('?');
    if (query != std::string_view::npos) path = path.substr(0, query);
    resp = handle(path);
  }

  std::string head = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                     status_text(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  write_all(fd, head);
  write_all(fd, resp.body);
}

TelemetryServer::Response TelemetryServer::handle(
    std::string_view path) const {
  if (path == "/metrics") {
    if (sources_.metrics == nullptr) {
      return {404, "text/plain; charset=utf-8", "no metrics source\n"};
    }
    std::string body = sources_.metrics->to_prometheus();
    if (sources_.health != nullptr) {
      sources_.health->evaluate();
      body += sources_.health->gauges().to_prometheus();
    }
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            std::move(body)};
  }
  if (path == "/healthz") {
    if (sources_.health == nullptr) {
      return {200, "application/json",
              "{\"verdict\":\"healthy\",\"worst\":1,\"zones\":[]}"};
    }
    std::string body = sources_.health->to_json();
    const int status =
        std::string_view(sources_.health->verdict()) == "unhealthy" ? 503
                                                                    : 200;
    return {status, "application/json", std::move(body)};
  }
  if (path == "/report") {
    if (sources_.metrics == nullptr) {
      return {404, "text/plain; charset=utf-8", "no metrics source\n"};
    }
    return {200, "application/json",
            RunReport::from_registry(*sources_.metrics, sources_.report_name,
                                     /*include_wall_clock=*/true)
                .to_json()};
  }
  if (path == "/spans") {
    if (sources_.traces == nullptr) {
      return {404, "text/plain; charset=utf-8", "no trace source\n"};
    }
    return {200, "application/jsonl", sources_.traces->to_jsonl()};
  }
  if (path == "/flight") {
    return {200, "application/jsonl", FlightRecorder::dump_jsonl()};
  }
  return {404, "text/plain; charset=utf-8", "unknown endpoint\n"};
}

}  // namespace sensedroid::obs
