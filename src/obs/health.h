// Per-zone health/SLO engine: turns the campaign's own counters and
// histograms (`hier.zone.*`, `fault.*`, `mw.retry.*`) into one score per
// zone in [0, 1] plus a process verdict — the /healthz answer.
//
// Score = 0.35 * latency + 0.25 * recovery + 0.25 * availability
//       + 0.15 * energy, each component in [0, 1]:
//
//   latency      1 - burn_rate, clamped.  burn_rate = (fraction of
//                `hier.zone.gather_us{zone=}` observations above
//                latency_slo_us) / latency_allowed_fraction — the
//                error-budget burn of a classic latency SLO.
//   recovery     retry_recovered / retries (1 when nothing retried):
//                how often resilience machinery actually rescued a
//                reading once it engaged.
//   availability 1 - degraded_rounds / rounds: fraction of rounds the
//                zone served without a degraded flag (failover or MAD
//                screening engaged).
//   energy       1 - spent_j / energy_floor_j, clamped (1 when no floor
//                is configured): remaining headroom before the zone's
//                energy budget is exhausted.
//
// Verdict per zone and overall (worst zone): "healthy" >= degraded_below,
// "degraded" >= unhealthy_below, else "unhealthy".
//
// Determinism: the engine only READS the campaign registry; its output
// gauges (`health.zone{id=}`, `health.worst`) land in an engine-private
// registry so a live telemetry server evaluating health mid-campaign
// cannot perturb the deterministic RunReport surface.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace sensedroid::obs {

/// Knobs of the health score.  Defaults are deliberately loose — they
/// flag genuinely troubled zones, not benign jitter.
struct HealthConfig {
  double latency_slo_us = 50'000.0;        ///< per-gather latency target
  double latency_allowed_fraction = 0.10;  ///< SLO error budget
  double energy_floor_j = 0.0;             ///< per-zone budget; 0 = off
  double unhealthy_below = 0.5;            ///< score verdict thresholds
  double degraded_below = 0.8;
  double w_latency = 0.35;
  double w_recovery = 0.25;
  double w_availability = 0.25;
  double w_energy = 0.15;
};

/// One zone's evaluated health.
struct ZoneHealth {
  std::uint32_t zone = 0;
  double score = 1.0;
  double latency = 1.0;
  double recovery = 1.0;
  double availability = 1.0;
  double energy = 1.0;
  const char* verdict = "healthy";
};

/// Reads `hier.zone.*` series from a source registry and publishes
/// `health.zone{id=}` gauges + an overall verdict.  All methods are
/// thread-safe; evaluate() is designed to be called from a telemetry
/// server thread while the campaign is writing the source registry.
class HealthEngine {
 public:
  explicit HealthEngine(const MetricsRegistry* source,
                        HealthConfig config = {});

  const HealthConfig& config() const noexcept { return config_; }

  /// Recomputes every zone's score from the source registry and updates
  /// the engine's gauge registry.  Returns the per-zone snapshot
  /// (ascending zone id).  Also triggers the flight-recorder auto-dump
  /// when the source's `fault.*` counters grew since the last call and
  /// an auto-dump path is set.
  std::vector<ZoneHealth> evaluate();

  /// Worst zone score of the last evaluate() (1.0 before the first).
  double worst_score() const;
  /// Overall verdict of the last evaluate(): "healthy" / "degraded" /
  /// "unhealthy" (worst zone decides).
  const char* verdict() const;

  /// {"verdict":"...","worst":...,"zones":[{...}]} — evaluates first,
  /// so the body is always current.  The /healthz payload.
  std::string to_json();

  /// Engine-owned registry holding `health.zone{id=}` / `health.worst`
  /// gauges — export alongside (never into) the campaign registry.
  MetricsRegistry& gauges() noexcept { return gauges_; }

  /// When non-empty: evaluate() appends a FlightRecorder dump to `path`
  /// whenever the summed `fault.*` counters grew since the last
  /// evaluation (the "fault section grew" dump trigger).
  void set_auto_dump(std::string path);

  /// Verdict string for a score under this config.
  const char* verdict_for(double score) const noexcept;

 private:
  const MetricsRegistry* source_;
  HealthConfig config_;
  MetricsRegistry gauges_;

  mutable std::mutex mu_;
  std::vector<ZoneHealth> last_;
  double worst_ = 1.0;
  std::string auto_dump_path_;
  double last_fault_sum_ = 0.0;
};

}  // namespace sensedroid::obs
