// Flight recorder: fixed-size, per-thread ring buffers of compact
// binary events that are nearly free while armed and zero-cost while
// detached — the "what were the last ~4k things each thread did"
// answer for a campaign that just crashed, stalled, or started
// injecting faults.
//
// Event sites (solver iterations, retry attempts, fault injections,
// broker failovers) call fr_record(); when disarmed that is one relaxed
// atomic load and a branch.  When armed it is a 16-byte store into a
// thread-owned ring plus a release bump of the ring head — no locks, no
// allocation, no cross-thread contention on the hot path (threads only
// share the registration list, touched once per thread lifetime).
//
// Rings overwrite oldest events (flight-recorder semantics: the *last*
// window before the incident is what matters).  Dumps happen on demand
// (FlightRecorder::dump_jsonl / the telemetry server), when the health
// engine sees the fault section grow (HealthEngine::set_auto_dump), or
// on SIGSEGV/SIGABRT via FlightRecorder::install_crash_dump — the one
// hook that turns "it died in the 7th hour of a campaign" into a
// readable tail of events.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace sensedroid::obs {

/// Compact event type tags.  Keep stable: dumps are read by tooling.
enum class FrEvent : std::uint16_t {
  kSolverIteration = 1,   ///< arg = iteration index, value = residual
  kSolverSolve = 2,       ///< arg = support size, value = residual norm
  kRetryAttempt = 3,      ///< arg = node id, value = attempt number
  kRetryRecovered = 4,    ///< arg = node id
  kFaultLinkDrop = 5,     ///< arg = zone id
  kFaultChurnAbsent = 6,  ///< arg = node id
  kFaultSensorSpike = 7,  ///< arg = node id, value = injected magnitude
  kFaultBrokerCrash = 8,  ///< arg = zone id, value = round
  kFailover = 9,          ///< arg = zone id, value = stand-in node id
  kTopup = 10,            ///< arg = zone id, value = replies recovered
  kMark = 11,             ///< free-form marker (tests, campaign phases)
};

/// One recorded event: 16 bytes, written by exactly one thread.
struct FrRecord {
  std::uint16_t type = 0;   ///< FrEvent
  std::uint16_t spare = 0;
  std::uint32_t arg = 0;    ///< id-like payload (zone, node, iteration)
  double value = 0.0;       ///< measure-like payload
};
static_assert(sizeof(FrRecord) == 16, "flight-recorder event grew");

namespace fr_detail {
extern std::atomic<bool> g_armed;
void record_slow(FrEvent type, std::uint32_t arg, double value) noexcept;
}  // namespace fr_detail

/// True while the recorder is armed.  One relaxed load.
inline bool fr_armed() noexcept {
  return fr_detail::g_armed.load(std::memory_order_relaxed);
}

/// Records an event into the calling thread's ring iff armed.
inline void fr_record(FrEvent type, std::uint32_t arg = 0,
                      double value = 0.0) noexcept {
  if (fr_armed()) fr_detail::record_slow(type, arg, value);
}

/// Process-wide control surface.  All static: rings belong to threads,
/// arming belongs to the process.
class FlightRecorder {
 public:
  /// Events each thread's ring retains (power of two; clamped to
  /// [64, 1<<20]).  Takes effect for rings created after the call.
  static void set_ring_capacity(std::size_t events);
  static std::size_t ring_capacity() noexcept;

  /// Starts recording.  Rings persist across arm/disarm cycles; arming
  /// does not clear them (use reset()).
  static void arm() noexcept;
  static void disarm() noexcept;

  /// Drops every registered ring's contents (events, not the rings).
  static void reset();

  /// Total events currently retained across all rings (<= capacity sum).
  static std::size_t event_count();
  /// Total events ever recorded (including overwritten ones).
  static std::uint64_t total_recorded();

  /// One JSON object per line, oldest-first within each thread:
  /// {"thread":3,"seq":41,"type":"solver_iteration","arg":7,"value":0.25}
  /// Thread order is registration order (deterministic per run shape,
  /// not across worker counts — the recorder is diagnostics, not part
  /// of the deterministic RunReport surface).
  static std::string dump_jsonl();

  /// Appends dump_jsonl() to `path`.  Returns false on I/O failure.
  static bool dump_to_file(const std::string& path);

  /// Installs SIGSEGV/SIGABRT handlers that append a best-effort dump
  /// to `path` (async-signal-safe formatting: integers and fixed-point
  /// values only), then re-raise the default disposition.  Pass empty
  /// to restore the default handlers.  Not thread-safe against itself;
  /// call once at startup.
  static void install_crash_dump(const std::string& path);

  /// Human-readable name for a type tag ("solver_iteration", ...).
  static std::string_view event_name(std::uint16_t type) noexcept;
};

}  // namespace sensedroid::obs
