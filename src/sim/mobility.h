// Node mobility models — the "high mobility" property that distinguishes
// mobile phone sensing from static WSNs (Section 2).
//
// RandomWaypoint: the standard MANET model — pick a target uniformly in
// the region, walk to it at a random speed, pause, repeat.
// PedestrianGrid: walkers constrained to a Manhattan street grid, for the
// urban sensing scenarios (Aquiba-style pedestrian collaboration).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/random.h"
#include "sim/geometry.h"

namespace sensedroid::sim {

using linalg::Rng;

/// Common interface: advance a walker's position in simulated time.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Current position.
  virtual Point position() const = 0;

  /// Advances by dt seconds (dt >= 0).
  virtual void step(double dt, Rng& rng) = 0;
};

/// Random-waypoint walker within a rectangle.
class RandomWaypoint final : public MobilityModel {
 public:
  struct Params {
    Rect region{0.0, 0.0, 100.0, 100.0};
    double min_speed_mps = 0.5;
    double max_speed_mps = 2.0;   ///< pedestrian range by default
    double pause_s = 5.0;         ///< dwell at each waypoint
  };

  /// Starts at a uniform random position with a fresh target.
  RandomWaypoint(const Params& params, Rng& rng);

  Point position() const override { return pos_; }
  void step(double dt, Rng& rng) override;

 private:
  void pick_target(Rng& rng);

  Params params_;
  Point pos_;
  Point target_;
  double speed_ = 1.0;
  double pause_left_ = 0.0;
};

/// Walker constrained to a Manhattan grid with `block_m`-sized blocks:
/// moves along streets, turning at intersections with equal probability
/// over the available directions (no immediate U-turns unless dead-ended).
class PedestrianGrid final : public MobilityModel {
 public:
  struct Params {
    Rect region{0.0, 0.0, 400.0, 400.0};
    double block_m = 80.0;
    double speed_mps = 1.4;  ///< typical walking speed
  };

  PedestrianGrid(const Params& params, Rng& rng);

  Point position() const override { return pos_; }
  void step(double dt, Rng& rng) override;

 private:
  struct Dir {
    int dx;
    int dy;
  };
  void choose_direction(Rng& rng);

  Params params_;
  Point pos_;       // always on a street (x or y multiple of block)
  Dir dir_{1, 0};
};

/// Convenience: N independent random-waypoint walkers stepped together.
class Crowd {
 public:
  Crowd(std::size_t n, const RandomWaypoint::Params& params, Rng& rng);

  std::size_t size() const noexcept { return walkers_.size(); }
  Point position(std::size_t i) const { return walkers_.at(i).position(); }
  void step(double dt, Rng& rng);

  /// Positions of all walkers.
  std::vector<Point> positions() const;

 private:
  std::vector<RandomWaypoint> walkers_;
};

}  // namespace sensedroid::sim
