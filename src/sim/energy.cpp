#include "sim/energy.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"

namespace sensedroid::sim {

std::string to_string(EnergyCategory c) {
  switch (c) {
    case EnergyCategory::kSensing: return "sensing";
    case EnergyCategory::kTx: return "tx";
    case EnergyCategory::kRx: return "rx";
    case EnergyCategory::kCompute: return "compute";
    case EnergyCategory::kIdle: return "idle";
  }
  return "unknown";
}

void EnergyMeter::add(EnergyCategory c, double joules) {
  if (joules < 0.0) {
    throw std::invalid_argument("EnergyMeter::add: negative energy");
  }
  by_cat_[static_cast<std::size_t>(c)] += joules;
  if (obs::attached()) {
    obs::add_counter("sim.energy.joules", {{"category", to_string(c)}},
                     joules);
  }
}

double EnergyMeter::total_j() const noexcept {
  double t = 0.0;
  for (double x : by_cat_) t += x;
  return t;
}

EnergyMeter& EnergyMeter::operator+=(const EnergyMeter& rhs) noexcept {
  for (std::size_t i = 0; i < kEnergyCategoryCount; ++i) {
    by_cat_[i] += rhs.by_cat_[i];
  }
  return *this;
}

Battery::Battery(double capacity_j) : capacity_j_(capacity_j) {
  if (capacity_j < 0.0) {
    throw std::invalid_argument("Battery: negative capacity");
  }
}

bool Battery::draw(double joules) {
  if (joules < 0.0) {
    throw std::invalid_argument("Battery::draw: negative draw");
  }
  if (joules > remaining_j()) {
    consumed_j_ = capacity_j_;
    obs::add_counter("sim.battery.depletions");
    return false;
  }
  consumed_j_ += joules;
  return true;
}

const SensingCosts& SensingCosts::defaults() noexcept {
  static const SensingCosts costs{};
  return costs;
}

}  // namespace sensedroid::sim
