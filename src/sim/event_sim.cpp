#include "sim/event_sim.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::sim {

std::uint64_t Simulator::schedule(SimTime delay, Handler fn) {
  if (delay < 0.0) {
    throw std::invalid_argument("Simulator::schedule: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::schedule_at(SimTime when, Handler fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool Simulator::cancel(std::uint64_t id) { return live_.erase(id) == 1; }

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (live_.erase(ev.id) == 0) continue;  // cancelled
    now_ = ev.time;
    ++executed_;
    // Publish virtual time so spans opened inside the handler carry the
    // SimTime they executed at (obs cannot depend on sim).
    obs::set_virtual_now(now_);
    if (obs::attached()) {
      obs::add_counter("sim.events.executed");
      obs::set_gauge("sim.events.pending", static_cast<double>(live_.size()));
    }
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (fire_next()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    if (fire_next()) ++n;
  }
  now_ = std::max(now_, until);
  return n;
}

std::size_t Simulator::step(std::size_t count) {
  std::size_t n = 0;
  for (; n < count; ++n) {
    if (!fire_next()) break;
  }
  return n;
}

}  // namespace sensedroid::sim
