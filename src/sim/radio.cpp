#include "sim/radio.h"

#include <algorithm>

#include "obs/metrics.h"

namespace sensedroid::sim {

std::string to_string(RadioKind kind) {
  switch (kind) {
    case RadioKind::kWiFi: return "wifi";
    case RadioKind::kBluetooth: return "bluetooth";
    case RadioKind::kGsm: return "gsm";
  }
  return "unknown";
}

LinkModel LinkModel::of(RadioKind kind) {
  switch (kind) {
    case RadioKind::kWiFi:
      return LinkModel{RadioKind::kWiFi, 100.0, 20e6, 0.002,
                       0.6e-6, 0.3e-6, 0.01};
    case RadioKind::kBluetooth:
      return LinkModel{RadioKind::kBluetooth, 10.0, 2e6, 0.015,
                       0.1e-6, 0.05e-6, 0.02};
    case RadioKind::kGsm:
      return LinkModel{RadioKind::kGsm, 10000.0, 1e6, 0.120,
                       2.5e-6, 1.0e-6, 0.02};
  }
  return LinkModel{};
}

double LinkModel::transfer_time_s(std::size_t bytes) const noexcept {
  return base_latency_s +
         8.0 * static_cast<double>(bytes) / bandwidth_bps;
}

double LinkModel::tx_energy_j(std::size_t bytes) const noexcept {
  if (obs::attached()) {
    obs::add_counter("sim.radio.tx_bytes", {{"radio", to_string(kind)}},
                     static_cast<double>(bytes));
  }
  return tx_energy_per_byte_j * static_cast<double>(bytes);
}

double LinkModel::rx_energy_j(std::size_t bytes) const noexcept {
  if (obs::attached()) {
    obs::add_counter("sim.radio.rx_bytes", {{"radio", to_string(kind)}},
                     static_cast<double>(bytes));
  }
  return rx_energy_per_byte_j * static_cast<double>(bytes);
}

double LinkModel::delivery_probability(double dist) const noexcept {
  // The range edge is inclusive: at dist == range_m the ramp below lands
  // on loss == 1 exactly, and anything at or past the edge never
  // delivers.  Spelled out as >= so the boundary is policy, not a
  // floating-point accident of the polynomial.
  if (dist >= range_m || range_m <= 0.0) return 0.0;
  const double frac = std::clamp(dist / range_m, 0.0, 1.0);
  // Loss stays near the base rate across most of the cell and ramps
  // sharply at the range edge (link-budget knee), matching measured
  // indoor/outdoor packet-delivery curves far better than a linear or
  // quadratic falloff.
  const double knee = frac * frac;
  const double edge = knee * knee * knee * knee;  // frac^8
  const double loss = base_loss + (1.0 - base_loss) * edge;
  return 1.0 - std::min(loss, 1.0);
}

bool LinkModel::delivery_succeeds(double dist, Rng& rng) const {
  const bool ok = rng.bernoulli(delivery_probability(dist));
  if (obs::attached()) {
    obs::add_counter("sim.radio.attempts", {{"radio", to_string(kind)}}, 1.0);
    if (!ok) {
      obs::add_counter("sim.radio.drops", {{"radio", to_string(kind)}}, 1.0);
    }
  }
  return ok;
}

}  // namespace sensedroid::sim
