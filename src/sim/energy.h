// Battery and energy accounting — the currency of every efficiency claim
// in the paper ("continuous monitoring can largely drain the battery",
// Section 5; the >80% collaborative saving of experiment E4).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sensedroid::sim {

/// Where a joule went.  Categories mirror the paper's cost discussion:
/// sampling the sensor, radio TX/RX, local computation, idle drain.
enum class EnergyCategory : std::uint8_t {
  kSensing = 0,
  kTx,
  kRx,
  kCompute,
  kIdle,
};
inline constexpr std::size_t kEnergyCategoryCount = 5;

/// Human-readable category name.
std::string to_string(EnergyCategory c);

/// Per-category energy tally for one node (or one aggregate).
class EnergyMeter {
 public:
  /// Adds `joules` (>= 0; throws std::invalid_argument otherwise).
  void add(EnergyCategory c, double joules);

  double total_j() const noexcept;
  double of(EnergyCategory c) const noexcept {
    return by_cat_[static_cast<std::size_t>(c)];
  }

  /// Merges another meter into this one (fleet aggregation).
  EnergyMeter& operator+=(const EnergyMeter& rhs) noexcept;

  void reset() noexcept { by_cat_.fill(0.0); }

 private:
  std::array<double, kEnergyCategoryCount> by_cat_{};
};

/// A phone battery: finite capacity, monotone drain.
class Battery {
 public:
  /// Default 10 Wh ~ a 2014-era smartphone (3.7 V x 2700 mAh).
  explicit Battery(double capacity_j = 36000.0);

  double capacity_j() const noexcept { return capacity_j_; }
  double consumed_j() const noexcept { return consumed_j_; }
  double remaining_j() const noexcept { return capacity_j_ - consumed_j_; }
  double state_of_charge() const noexcept {
    return capacity_j_ > 0.0 ? remaining_j() / capacity_j_ : 0.0;
  }
  bool depleted() const noexcept { return remaining_j() <= 0.0; }

  /// Draws `joules` (>= 0); returns false (and clamps at empty) when the
  /// battery cannot supply the full amount.
  bool draw(double joules);

 private:
  double capacity_j_;
  double consumed_j_ = 0.0;
};

/// Per-sample sensing costs (J) of the common phone sensors, order of
/// magnitude from the mobile-sensing energy literature: GPS is the
/// notorious hog (~0.35 J/fix), WiFi scans ~0.6 J, inertial sensors are
/// cheap (~0.3 mJ), microphone ~15 mJ per window.
struct SensingCosts {
  double accelerometer_j = 0.0003;
  double gyroscope_j = 0.0006;
  double microphone_j = 0.015;
  double gps_j = 0.35;
  double wifi_scan_j = 0.6;
  double temperature_j = 0.0002;
  double light_j = 0.0001;

  static const SensingCosts& defaults() noexcept;
};

}  // namespace sensedroid::sim
