#include "sim/mobility.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sensedroid::sim {

RandomWaypoint::RandomWaypoint(const Params& params, Rng& rng)
    : params_(params) {
  pos_ = {rng.uniform(params.region.x0, params.region.x1),
          rng.uniform(params.region.y0, params.region.y1)};
  pick_target(rng);
}

void RandomWaypoint::pick_target(Rng& rng) {
  target_ = {rng.uniform(params_.region.x0, params_.region.x1),
             rng.uniform(params_.region.y0, params_.region.y1)};
  speed_ = rng.uniform(params_.min_speed_mps, params_.max_speed_mps);
}

void RandomWaypoint::step(double dt, Rng& rng) {
  if (dt < 0.0) {
    throw std::invalid_argument("RandomWaypoint::step: negative dt");
  }
  while (dt > 0.0) {
    if (pause_left_ > 0.0) {
      const double wait = std::min(pause_left_, dt);
      pause_left_ -= wait;
      dt -= wait;
      continue;
    }
    const double dist_to_target = distance(pos_, target_);
    const double reachable = speed_ * dt;
    if (reachable >= dist_to_target) {
      // Arrive, start the pause, pick the next leg.
      pos_ = target_;
      dt -= speed_ > 0.0 ? dist_to_target / speed_ : dt;
      pause_left_ = params_.pause_s;
      pick_target(rng);
    } else {
      const double f = dist_to_target > 0.0 ? reachable / dist_to_target : 0.0;
      pos_ = pos_ + (target_ - pos_) * f;
      dt = 0.0;
    }
  }
}

PedestrianGrid::PedestrianGrid(const Params& params, Rng& rng)
    : params_(params) {
  // Start at a random intersection.
  const auto nx = static_cast<std::size_t>(
      std::max(1.0, params.region.width() / params.block_m));
  const auto ny = static_cast<std::size_t>(
      std::max(1.0, params.region.height() / params.block_m));
  pos_ = {params.region.x0 +
              static_cast<double>(rng.uniform_index(nx + 1)) * params.block_m,
          params.region.y0 +
              static_cast<double>(rng.uniform_index(ny + 1)) * params.block_m};
  pos_ = params.region.clamp(pos_);
  choose_direction(rng);
}

void PedestrianGrid::choose_direction(Rng& rng) {
  // Directions that stay inside the region; avoid an immediate U-turn
  // when any alternative exists.
  const Dir options[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  std::vector<Dir> valid;
  std::vector<Dir> non_uturn;
  for (const Dir& d : options) {
    const Point next{pos_.x + d.dx * params_.block_m,
                     pos_.y + d.dy * params_.block_m};
    if (!params_.region.contains(next)) continue;
    valid.push_back(d);
    if (d.dx != -dir_.dx || d.dy != -dir_.dy) non_uturn.push_back(d);
  }
  const auto& pool = non_uturn.empty() ? valid : non_uturn;
  if (pool.empty()) {
    dir_ = {-dir_.dx, -dir_.dy};  // dead end: turn around in place
    return;
  }
  dir_ = pool[rng.uniform_index(pool.size())];
}

void PedestrianGrid::step(double dt, Rng& rng) {
  if (dt < 0.0) {
    throw std::invalid_argument("PedestrianGrid::step: negative dt");
  }
  double remaining = params_.speed_mps * dt;
  while (remaining > 0.0) {
    // Distance to the next intersection along the current direction.
    double to_next;
    if (dir_.dx != 0) {
      const double cell = std::fmod(pos_.x - params_.region.x0,
                                    params_.block_m);
      to_next = dir_.dx > 0 ? params_.block_m - cell : cell;
    } else {
      const double cell = std::fmod(pos_.y - params_.region.y0,
                                    params_.block_m);
      to_next = dir_.dy > 0 ? params_.block_m - cell : cell;
    }
    if (to_next <= 1e-9) to_next = params_.block_m;  // exactly at a corner

    const double travel = std::min(remaining, to_next);
    pos_.x += dir_.dx * travel;
    pos_.y += dir_.dy * travel;
    pos_ = params_.region.clamp(pos_);
    remaining -= travel;
    if (travel >= to_next - 1e-9) choose_direction(rng);
  }
}

Crowd::Crowd(std::size_t n, const RandomWaypoint::Params& params, Rng& rng) {
  walkers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) walkers_.emplace_back(params, rng);
}

void Crowd::step(double dt, Rng& rng) {
  for (auto& w : walkers_) w.step(dt, rng);
}

std::vector<Point> Crowd::positions() const {
  std::vector<Point> out;
  out.reserve(walkers_.size());
  for (const auto& w : walkers_) out.push_back(w.position());
  return out;
}

}  // namespace sensedroid::sim
