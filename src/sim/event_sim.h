// Deterministic discrete-event simulation engine.
//
// Everything time-dependent in the reproduction — gathering rounds, radio
// transfer completions, duty-cycled probes, broker queue service — runs on
// this engine so that experiment timing is exact and repeatable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace sensedroid::sim {

/// Simulation time in seconds.
using SimTime = double;

/// Single-threaded event loop with a stable (time, insertion-order)
/// priority queue: events at equal times fire in schedule order, making
/// runs bit-reproducible.
class Simulator {
 public:
  using Handler = std::function<void()>;

  /// Current simulation time.
  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0; throws
  /// std::invalid_argument on negative delay).  Returns an event id that
  /// can be cancelled.
  std::uint64_t schedule(SimTime delay, Handler fn);

  /// Schedules at an absolute time (>= now; throws otherwise).
  std::uint64_t schedule_at(SimTime when, Handler fn);

  /// Cancels a pending event; returns false when the id already fired,
  /// was cancelled, or never existed.
  bool cancel(std::uint64_t id);

  /// Runs events until the queue drains.  Returns events executed.
  std::size_t run();

  /// Runs events with time <= until, then sets now() = until.
  /// Returns events executed.
  std::size_t run_until(SimTime until);

  /// Executes at most `n` events.  Returns events executed.
  std::size_t step(std::size_t n = 1);

  /// Events scheduled but neither fired nor cancelled.
  std::size_t pending() const noexcept { return live_.size(); }
  std::size_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-break: schedule order
    std::uint64_t id;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  bool fire_next();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;  // scheduled, not fired/cancelled
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t executed_ = 0;
};

}  // namespace sensedroid::sim
