// Radio link models for the heterogeneous connectivity the paper's
// NanoClouds use ("multiple networks like WiFi, GSM, bluetooth etc.",
// Fig. 2).
//
// The models are first-order but dimensionally honest: per-byte energy,
// bandwidth-limited transfer time, base latency, and a distance-dependent
// loss probability.  Experiments E3/E4/E9 need *relative* costs between
// technologies and between message counts, not RF fidelity (DESIGN.md
// substitution table).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "linalg/random.h"
#include "sim/geometry.h"

namespace sensedroid::sim {

using linalg::Rng;

enum class RadioKind : std::uint8_t {
  kWiFi,       ///< high bandwidth, moderate energy, ~100 m
  kBluetooth,  ///< low energy, low bandwidth, ~10 m (nanocloud links)
  kGsm,        ///< wide area, high latency and energy (uplink to cloud)
};

/// Human-readable name.
std::string to_string(RadioKind kind);

/// Link parameters.  Defaults per kind come from `LinkModel::of()`;
/// magnitudes follow the mobile-radio measurement literature (WiFi
/// ~0.6 uJ/B, BT ~0.1 uJ/B, cellular ~2.5 uJ/B; latencies 2 ms / 15 ms /
/// 120 ms; ranges 100 m / 10 m / 10 km).
struct LinkModel {
  RadioKind kind = RadioKind::kWiFi;
  double range_m = 100.0;
  double bandwidth_bps = 20e6;
  double base_latency_s = 0.002;
  double tx_energy_per_byte_j = 0.6e-6;
  double rx_energy_per_byte_j = 0.3e-6;
  double base_loss = 0.01;  ///< loss probability at zero distance

  /// The default model for a radio technology.
  static LinkModel of(RadioKind kind);

  /// Time to move `bytes` over the link (latency + serialization).
  double transfer_time_s(std::size_t bytes) const noexcept;

  /// Sender-side energy for `bytes`.
  double tx_energy_j(std::size_t bytes) const noexcept;

  /// Receiver-side energy for `bytes`.
  double rx_energy_j(std::size_t bytes) const noexcept;

  /// True when a transmission over `dist` meters succeeds.  Loss ramps
  /// from base_loss toward 1 along the frac^8 link-budget knee; the range
  /// edge is *inclusive* — delivery probability is exactly 0 at
  /// dist == range_m and everywhere beyond.  Always draws exactly one
  /// Bernoulli from `rng`, even in the hopeless region, so plans that
  /// include out-of-range nodes stay replayable.
  bool delivery_succeeds(double dist, Rng& rng) const;

  /// Probability of delivery at a distance (for analysis without a rng).
  /// Monotone non-increasing in dist; 0 for every dist >= range_m.
  double delivery_probability(double dist) const noexcept;
};

}  // namespace sensedroid::sim
