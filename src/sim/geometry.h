// Minimal planar geometry for node placement and mobility.
#pragma once

#include <cmath>

namespace sensedroid::sim {

/// A point (or displacement) in meters on the simulation plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point operator+(const Point& o) const noexcept { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const noexcept { return {x - o.x, y - o.y}; }
  Point operator*(double s) const noexcept { return {x * s, y * s}; }
  bool operator==(const Point& o) const noexcept = default;
};

inline double distance(const Point& a, const Point& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Axis-aligned rectangle [x0, x1] x [y0, y1] — the deployment region of a
/// NanoCloud or LocalCloud.
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  double width() const noexcept { return x1 - x0; }
  double height() const noexcept { return y1 - y0; }
  bool contains(const Point& p) const noexcept {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  Point clamp(const Point& p) const noexcept {
    return {p.x < x0 ? x0 : (p.x > x1 ? x1 : p.x),
            p.y < y0 ? y0 : (p.y > y1 ? y1 : p.y)};
  }
  Point center() const noexcept { return {(x0 + x1) / 2.0, (y0 + y1) / 2.0}; }
};

}  // namespace sensedroid::sim
