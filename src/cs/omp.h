// Orthogonal Matching Pursuit (Tropp & Gilbert), the solver the paper
// recommends for the sparse-regression form of reconstruction (eq. 13):
//   min ||y - A alpha||_2^2  s.t.  ||alpha||_0 <= K.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cs/cancel.h"
#include "linalg/matrix.h"

namespace sensedroid::cs {

using linalg::Matrix;
using linalg::Vector;

/// Knobs for OMP; defaults match the paper's usage (run to the sparsity
/// budget unless the residual dies first).
struct OmpOptions {
  std::size_t max_sparsity = 0;  ///< K; 0 means min(rows, cols)
  double residual_tol = 1e-9;    ///< stop when ||r||_2 <= tol * ||y||_2
  /// Stop early if adding the best new atom no longer reduces the
  /// residual meaningfully (guards against noise fitting).
  double min_improvement = 0.0;
  /// Cooperative cancellation, polled once per greedy iteration; the
  /// partial solution built so far is returned.  nullptr = never cancel.
  const CancelToken* cancel = nullptr;
};

/// Result of a greedy sparse solve.
struct SparseSolution {
  Vector coefficients;                ///< full-length alpha (N), zeros off-support
  std::vector<std::size_t> support;   ///< selected column indices J, in pick order
  double residual_norm = 0.0;         ///< final ||y - A alpha||_2
  /// Greedy iterations actually performed, including a final iteration
  /// whose atom was rejected by min_improvement — i.e. work done, not
  /// atoms kept.  Accepted atoms = support.size().
  std::size_t iterations = 0;
};

/// Solves eq. 13 greedily: pick the column most correlated with the
/// residual, refit all picked coefficients by least squares, repeat.
/// A is M x N with M <= N typically; y has size M.
/// Throws std::invalid_argument on size mismatch or empty inputs.
SparseSolution omp_solve(const Matrix& a, std::span<const double> y,
                         const OmpOptions& opts = {});

/// Reconstructs a full N-length signal from a sparse coefficient solution
/// in a given synthesis basis: x_hat = Phi alpha.
Vector reconstruct(const Matrix& basis, const SparseSolution& sol);

}  // namespace sensedroid::cs
