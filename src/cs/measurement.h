// Measurement operators and sensor-noise models (eqs. 4, 7, 14).
//
// A broker in a NanoCloud selects M of the N grid points (the sensor
// locations L), commands those nodes to measure, and receives
// x_S = x(L) + w where the noise w reflects the *heterogeneous* quality of
// the phones that happened to be there.  This module carries L, builds the
// row-selected basis Phi~ of eq. 7, and models w's covariance V for the
// GLS path of eq. 12.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/random.h"

namespace sensedroid::cs {

using linalg::Matrix;
using linalg::Rng;
using linalg::Vector;

/// Per-sensor noise description.  Diagonal covariance: entry i is the
/// noise variance of the sensor at location L[i].  (Phones do not share
/// noise sources, so off-diagonal terms are zero in practice; the GLS
/// solver nevertheless accepts a full V.)
struct SensorNoise {
  Vector stddev;  ///< per-measurement noise standard deviations

  /// Homogeneous noise: every sensor has the same stddev.
  static SensorNoise homogeneous(std::size_t m, double sigma);

  /// Heterogeneous noise: stddevs drawn uniformly from [lo, hi] — the
  /// phone-quality-tier model used in experiment E5.
  static SensorNoise heterogeneous(std::size_t m, double lo, double hi,
                                   Rng& rng);

  /// Diagonal covariance matrix V.
  Matrix covariance() const;

  /// Draws one noise realization w ~ N(0, diag(stddev^2)).
  Vector sample(Rng& rng) const;

  std::size_t size() const noexcept { return stddev.size(); }
};

/// The sampling plan of a gathering round: which grid points are measured.
/// Invariant: indices are sorted, distinct, and < n.
class MeasurementPlan {
 public:
  /// Uniform random plan: M distinct locations out of N (the broker's
  /// "stochastic spatial sampling", Fig. 2).  Throws if m > n.
  static MeasurementPlan random(std::size_t n, std::size_t m, Rng& rng);

  /// Deterministic plan from explicit sorted-unique indices; validates and
  /// throws std::invalid_argument on duplicates, disorder, or range.
  static MeasurementPlan from_indices(std::size_t n,
                                      std::vector<std::size_t> indices);

  /// Evenly spaced plan (the "continuous uniform measurement" baseline the
  /// paper contrasts compressive sampling against).
  static MeasurementPlan uniform_grid(std::size_t n, std::size_t m);

  std::size_t signal_size() const noexcept { return n_; }
  std::size_t measurement_count() const noexcept { return indices_.size(); }
  std::span<const std::size_t> indices() const noexcept { return indices_; }

  /// Extracts x(L) from a full signal; throws on size mismatch.
  Vector sample_signal(std::span<const double> x) const;

  /// Row-selects a basis: Phi~ = Phi(L, :) of eq. 7.
  Matrix select_rows(const Matrix& basis) const;

 private:
  MeasurementPlan(std::size_t n, std::vector<std::size_t> idx);
  std::size_t n_ = 0;
  std::vector<std::size_t> indices_;
};

/// One complete compressive measurement: the plan, the (noisy) samples,
/// and the noise model the broker assumes when reconstructing.
struct Measurement {
  MeasurementPlan plan;
  Vector values;      ///< x_S (+ w if noisy)
  SensorNoise noise;  ///< what the broker knows about sensor quality
};

/// Takes a measurement of a full signal under a plan and noise model
/// (eq. 14: x_s + w).  The rng draws the noise realization.
/// `plan` and `noise` are by-value on purpose: they are sink parameters,
/// moved into the returned Measurement (callers that keep their copy pass
/// it explicitly; the common path hands over a temporary for free).
Measurement measure(std::span<const double> x, MeasurementPlan plan,
                    SensorNoise noise, Rng& rng);

/// Noise-free measurement.
Measurement measure_exact(std::span<const double> x, MeasurementPlan plan);

}  // namespace sensedroid::cs
