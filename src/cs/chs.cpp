#include "cs/chs.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "cs/basis_pursuit.h"
#include "cs/least_squares.h"
#include "cs/solver.h"
#include "linalg/updatable_qr.h"
#include "linalg/vector_ops.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::cs {

using linalg::norm2;

Vector interpolate_to_grid(std::span<const double> values,
                           std::span<const std::size_t> locations,
                           std::size_t n, Interpolation kind) {
  if (values.size() != locations.size()) {
    throw std::invalid_argument("interpolate_to_grid: size mismatch");
  }
  Vector out(n, 0.0);
  if (values.empty()) return out;
  const std::size_t m = values.size();

  switch (kind) {
    case Interpolation::kZeroFill:
      for (std::size_t i = 0; i < m; ++i) out[locations[i]] = values[i];
      return out;

    case Interpolation::kNearest: {
      std::size_t j = 0;  // index of nearest-on-the-left sample
      for (std::size_t g = 0; g < n; ++g) {
        while (j + 1 < m && locations[j + 1] <= g) ++j;
        std::size_t pick = j;
        if (j + 1 < m) {
          const std::size_t dl = g >= locations[j] ? g - locations[j]
                                                   : locations[j] - g;
          const std::size_t dr = locations[j + 1] - g;
          if (dr < dl) pick = j + 1;
        }
        out[g] = values[pick];
      }
      return out;
    }

    case Interpolation::kLinear: {
      for (std::size_t g = 0; g < n; ++g) {
        if (g <= locations.front()) {
          out[g] = values.front();
        } else if (g >= locations.back()) {
          out[g] = values.back();
        } else {
          // Find the bracketing pair (locations sorted).
          const auto it =
              std::upper_bound(locations.begin(), locations.end(), g);
          const std::size_t hi = static_cast<std::size_t>(
              std::distance(locations.begin(), it));
          const std::size_t lo = hi - 1;
          const double t = static_cast<double>(g - locations[lo]) /
                           static_cast<double>(locations[hi] - locations[lo]);
          out[g] = (1.0 - t) * values[lo] + t * values[hi];
        }
      }
      return out;
    }
  }
  throw std::invalid_argument("interpolate_to_grid: unknown interpolation");
}

Vector interpolate_to_grid_2d(std::span<const double> values,
                              std::span<const std::size_t> locations,
                              std::size_t n, std::size_t height,
                              Interpolation kind) {
  if (values.size() != locations.size()) {
    throw std::invalid_argument("interpolate_to_grid_2d: size mismatch");
  }
  if (height == 0 || n % height != 0) {
    throw std::invalid_argument(
        "interpolate_to_grid_2d: height must divide n");
  }
  if (kind == Interpolation::kZeroFill || values.empty()) {
    return interpolate_to_grid(values, locations, n,
                               Interpolation::kZeroFill);
  }
  const std::size_t m = values.size();
  Vector out(n, 0.0);
  for (std::size_t g = 0; g < n; ++g) {
    const double gi = static_cast<double>(g % height);
    const double gj = static_cast<double>(g / height);
    if (kind == Interpolation::kNearest) {
      double best_d2 = 1e300;
      double best_v = 0.0;
      for (std::size_t s = 0; s < m; ++s) {
        const double di = static_cast<double>(locations[s] % height) - gi;
        const double dj = static_cast<double>(locations[s] / height) - gj;
        const double d2 = di * di + dj * dj;
        if (d2 < best_d2) {
          best_d2 = d2;
          best_v = values[s];
        }
      }
      out[g] = best_v;
    } else {  // kLinear: inverse-distance blend of the 4 nearest samples
      constexpr std::size_t kNeighbors = 4;
      std::array<double, kNeighbors> nd2;
      std::array<double, kNeighbors> nv;
      nd2.fill(1e300);
      nv.fill(0.0);
      for (std::size_t s = 0; s < m; ++s) {
        const double di = static_cast<double>(locations[s] % height) - gi;
        const double dj = static_cast<double>(locations[s] / height) - gj;
        double d2 = di * di + dj * dj;
        double v = values[s];
        // Insertion into the small sorted neighbor set.
        for (std::size_t r = 0; r < kNeighbors; ++r) {
          if (d2 < nd2[r]) {
            std::swap(d2, nd2[r]);
            std::swap(v, nv[r]);
          }
        }
      }
      if (nd2[0] <= 1e-12) {
        out[g] = nv[0];  // exactly on a sample
      } else {
        double wsum = 0.0, acc = 0.0;
        for (std::size_t r = 0; r < kNeighbors && nd2[r] < 1e300; ++r) {
          const double w = 1.0 / nd2[r];  // inverse squared distance
          acc += w * nv[r];
          wsum += w;
        }
        out[g] = wsum > 0.0 ? acc / wsum : 0.0;
      }
    }
  }
  return out;
}

namespace {

// Median of a scratch copy (nth_element mutates).
double median_of(Vector v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double med = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(), v.begin() + (mid - 1), v.begin() + mid);
    med = 0.5 * (med + v[mid - 1]);
  }
  return med;
}

// MAD screening (the robust-degrade path): drop readings far from the
// sample median before the refit sees them.  Returns nullopt when
// screening does not apply (too few samples, degenerate MAD, nothing
// rejected, or rejection would leave too little to solve on).
std::optional<Measurement> mad_screen(const Measurement& meas,
                                      double threshold,
                                      std::size_t* rejected) {
  constexpr std::size_t kMinSamples = 8;  // below this the median is noise
  constexpr std::size_t kMinKept = 4;     // enough rows left to refit
  const std::size_t m = meas.values.size();
  if (m < kMinSamples) return std::nullopt;

  const double med = median_of(meas.values);
  Vector dev(m);
  for (std::size_t i = 0; i < m; ++i) {
    dev[i] = std::abs(meas.values[i] - med);
  }
  const double mad = median_of(dev);
  if (mad <= 0.0) return std::nullopt;  // half the fleet agrees exactly

  const double cut = threshold * 1.4826 * mad;  // 1.4826: MAD -> sigma
  const auto locations = meas.plan.indices();
  const bool has_noise = meas.noise.size() == m;
  std::vector<std::size_t> kept_loc;
  Vector kept_val;
  Vector kept_sigma;
  for (std::size_t i = 0; i < m; ++i) {
    if (dev[i] > cut) continue;
    kept_loc.push_back(locations[i]);
    kept_val.push_back(meas.values[i]);
    if (has_noise) kept_sigma.push_back(meas.noise.stddev[i]);
  }
  if (kept_val.size() == m || kept_val.size() < kMinKept) return std::nullopt;

  *rejected = m - kept_val.size();
  auto plan = MeasurementPlan::from_indices(meas.plan.signal_size(),
                                            std::move(kept_loc));
  return Measurement{std::move(plan), std::move(kept_val),
                     SensorNoise{std::move(kept_sigma)}};
}

}  // namespace

ChsResult chs_reconstruct(const Matrix& basis, const Measurement& meas,
                          const ChsOptions& opts) {
  const std::size_t n = basis.rows();
  if (basis.cols() != n) {
    throw std::invalid_argument("chs_reconstruct: basis must be square");
  }
  if (meas.plan.signal_size() != n) {
    throw std::invalid_argument("chs_reconstruct: plan/basis size mismatch");
  }
  const std::size_t m = meas.plan.measurement_count();
  if (meas.values.size() != m) {
    throw std::invalid_argument("chs_reconstruct: measurement size mismatch");
  }
  if (opts.refit == Refit::kGls && meas.noise.size() != m) {
    throw std::invalid_argument("chs_reconstruct: noise model size mismatch");
  }

  if (opts.mad_threshold > 0.0) {
    std::size_t rejected = 0;
    if (auto screened = mad_screen(meas, opts.mad_threshold, &rejected)) {
      ChsOptions inner = opts;
      inner.mad_threshold = 0.0;  // screen once; recurse for the solve
      ChsResult res = chs_reconstruct(basis, *screened, inner);
      res.outliers_rejected = rejected;
      res.degraded = true;
      if (obs::attached()) {
        obs::add_counter("cs.chs.outliers_rejected",
                         static_cast<double>(rejected));
        obs::add_counter("cs.chs.degraded_solves");
      }
      return res;
    }
  }

  obs::ScopedSpan span("cs.chs.reconstruct");
  obs::ScopedTimer timer("cs.chs.solve_us");

  // Step (e)'s coefficient solver comes from the registry:
  // `refit_solver` names it directly, the legacy Refit enum maps through
  // as a shim.  Resolved once per call; the solver instance is stateless
  // and reentrant.  Rank-deficient supports still fall back to a lightly
  // regularized ridge fit instead of aborting the round.
  const std::unique_ptr<SparseSolver> refit =
      SolverRegistry::global().create(
          !opts.refit_solver.empty()
              ? std::string_view(opts.refit_solver)
              : std::string_view(opts.refit == Refit::kGls ? "gls" : "ols"));
  SolveContext refit_ctx;
  if (meas.noise.size() == m) refit_ctx.noise_stddev = meas.noise.stddev;
  refit_ctx.cancel = opts.cancel;

  const std::size_t k_budget = std::min(
      opts.max_support == 0 ? std::max<std::size_t>(m / 2, 1)
                            : opts.max_support,
      m);
  const auto locations = meas.plan.indices();
  const Matrix phi_rows = meas.plan.select_rows(basis);  // M x N

  // The support grows by sorted insertion each accepted batch and the
  // undo path retracts exactly the last batch, so successive refit
  // supports share long prefixes: route plain-OLS refits through the
  // incremental factorization cache (prefix reuse, O(mk) per new
  // column).  Weighted ("gls" with a noise model) or custom registry
  // solvers, and numerically dependent supports, take the dense path.
  linalg::SupportQrCache qr_cache(phi_rows);
  const bool cacheable = refit->name() == "ols";
  std::size_t cache_cols_reused = 0;
  // BP refits thread the previous round's optimal basis into the next
  // solve: the support only grows between accepted batches, so every
  // old basis column still exists in the new [phi_k, -phi_k] universe
  // and the old vertex stays primal feasible for the unchanged y — the
  // warm-started simplex skips phase 1 outright.  Basis ids are local
  // to each refit's support, so they are remapped through dictionary
  // column ids.  While the support is still too small to span y the LP
  // is infeasible; the ridge fallback covers those early rounds.
  const bool bp_refit =
      refit->name() == "bp" || refit->name() == "basis_pursuit";
  std::vector<std::size_t> bp_prev_support;
  std::vector<std::size_t> bp_prev_basis;
  const auto refit_fit = [&](const Matrix& phi_k,
                             const std::vector<std::size_t>& support) {
    if (bp_refit) {
      const std::size_t k = support.size();
      BasisPursuitOptions bo;
      bo.lp.cancel = opts.cancel;
      if (!bp_prev_basis.empty()) {
        const std::size_t kp = bp_prev_support.size();
        std::vector<std::size_t> warm;
        warm.reserve(bp_prev_basis.size());
        bool ok = true;
        for (const std::size_t id : bp_prev_basis) {
          if (id >= 2 * kp) {  // row artificial: position is preserved
            warm.push_back(2 * k + (id - 2 * kp));
            continue;
          }
          const std::size_t dict = bp_prev_support[id < kp ? id : id - kp];
          const auto it =
              std::lower_bound(support.begin(), support.end(), dict);
          if (it == support.end() || *it != dict) {
            ok = false;  // column left the support: cold start
            break;
          }
          const auto p = static_cast<std::size_t>(it - support.begin());
          warm.push_back(id < kp ? p : k + p);
        }
        if (ok) bo.lp.warm_basis = std::move(warm);
      }
      const BpSolution bp = bp_solve(phi_k, meas.values, bo);
      if (bp.status == LpStatus::kOptimal) {
        bp_prev_support = support;
        bp_prev_basis = bp.basis;
        if (obs::attached()) obs::add_counter("cs.chs.bp_refits");
        return bp.solution.coefficients;
      }
      bp_prev_support.clear();
      bp_prev_basis.clear();
      const double scale = std::max(phi_k.frobenius_norm(), 1e-12);
      return solve_ridge(phi_k, meas.values, 1e-8 * scale * scale);
    }
    if (cacheable && qr_cache.refit(support)) {
      cache_cols_reused += qr_cache.reused_columns();
      return qr_cache.solve(meas.values);
    }
    try {
      return refit->solve(phi_k, meas.values, refit_ctx).coefficients;
    } catch (const std::runtime_error&) {
      const double scale = std::max(phi_k.frobenius_norm(), 1e-12);
      return solve_ridge(phi_k, meas.values, 1e-8 * scale * scale);
    }
  };

  ChsResult res;
  res.coefficients.assign(n, 0.0);
  Vector residual = meas.values;  // e_r = x_S initially
  const double xs_norm = std::max(norm2(meas.values), 1e-300);
  double prev_res_norm = norm2(residual);
  std::vector<bool> in_support(n, false);
  Vector coef_on_support;

  // Warm start: seed the support with the caller's prior (deduplicated,
  // clipped to the budget) and refit once so the first iteration already
  // works on the warm residual.
  if (!opts.initial_support.empty()) {
    for (std::size_t j : opts.initial_support) {
      if (j >= n) {
        throw std::invalid_argument(
            "chs_reconstruct: initial support index out of range");
      }
      if (!in_support[j] && res.support.size() < k_budget) {
        in_support[j] = true;
        res.support.push_back(j);
      }
    }
    if (!res.support.empty()) {
      std::sort(res.support.begin(), res.support.end());
      const Matrix phi_k = phi_rows.select_cols(res.support);
      coef_on_support = refit_fit(phi_k, res.support);
      residual = linalg::subtract(meas.values, phi_k * coef_on_support);
      prev_res_norm = norm2(residual);
    }
  }

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    if (poll_cancelled(opts.cancel)) break;
    if (norm2(residual) <= opts.residual_tol * xs_norm) break;
    if (res.support.size() >= k_budget) break;
    ++res.iterations;

    // (a)+(b) Upsilon then analyze: residual onto the full grid, then
    // into the basis.  Zero-fill leaves e_full zero off the sampled
    // locations, so Phi^T e_full collapses to Phi_rows^T residual — the
    // sparsity is exploited explicitly here (M rows instead of N)
    // rather than by a data-dependent zero-skip inside the kernel.
    Vector alpha_r;
    if (opts.interpolation == Interpolation::kZeroFill) {
      alpha_r = phi_rows.transpose_times(residual);
    } else {
      const Vector e_full =
          opts.grid_height > 0
              ? interpolate_to_grid_2d(residual, locations, n,
                                       opts.grid_height, opts.interpolation)
              : interpolate_to_grid(residual, locations, n,
                                    opts.interpolation);
      alpha_r = basis.transpose_times(e_full);
    }

    // (c) pick significant, not-yet-selected coefficients.
    double max_mag = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_support[j]) max_mag = std::max(max_mag, std::abs(alpha_r[j]));
    }
    if (max_mag == 0.0) break;  // residual orthogonal to every new atom

    std::vector<std::size_t> candidates;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_support[j] &&
          std::abs(alpha_r[j]) >= opts.significance * max_mag) {
        candidates.push_back(j);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b) {
                return std::abs(alpha_r[a]) > std::abs(alpha_r[b]);
              });
    const std::size_t room = k_budget - res.support.size();
    const std::size_t take =
        std::min({candidates.size(), opts.coeffs_per_iter, room});
    if (take == 0) break;

    // (d) grow J (tentatively — rolled back if the batch buys nothing).
    const std::vector<std::size_t> prev_support = res.support;
    const Vector prev_coeffs = coef_on_support;
    for (std::size_t i = 0; i < take; ++i) {
      in_support[candidates[i]] = true;
      res.support.push_back(candidates[i]);
    }
    std::sort(res.support.begin(), res.support.end());

    // (e) refit on the support via the cache or the registry solver.
    const Matrix phi_k = phi_rows.select_cols(res.support);
    coef_on_support = refit_fit(phi_k, res.support);

    // (f) new measurement-domain residual.
    const Vector fitted = phi_k * coef_on_support;
    residual = linalg::subtract(meas.values, fitted);

    const double res_norm = norm2(residual);
    if (prev_res_norm - res_norm <
        opts.min_improvement * std::max(prev_res_norm, 1e-300)) {
      // The batch no longer reduces the residual meaningfully: undo it and
      // stop rather than fit sampling noise (Section 4's epsilon_c guard).
      for (std::size_t i = 0; i < take; ++i) {
        in_support[candidates[i]] = false;
      }
      res.support = prev_support;
      coef_on_support = prev_coeffs;
      if (!res.support.empty()) {
        const Matrix phi_prev = phi_rows.select_cols(res.support);
        residual = linalg::subtract(meas.values,
                                    phi_prev * coef_on_support);
      } else {
        residual = meas.values;
      }
      break;
    }
    prev_res_norm = res_norm;
    // Residual trajectory: one observation per accepted batch, relative
    // to ||x_S|| so campaigns of different scale share one histogram.
    obs::observe("cs.chs.residual_trajectory", res_norm / xs_norm);
  }

  for (std::size_t i = 0; i < res.support.size(); ++i) {
    res.coefficients[res.support[i]] = coef_on_support[i];
  }
  res.residual_norm = norm2(residual);
  obs::fr_record(obs::FrEvent::kSolverSolve,
                 static_cast<std::uint32_t>(res.support.size()),
                 res.residual_norm / xs_norm);
  if (obs::attached()) {
    obs::add_counter("cs.chs.solves");
    obs::add_counter("cs.chs.iterations",
                     static_cast<double>(res.iterations));
    if (cache_cols_reused > 0) {
      obs::add_counter("cs.chs.refit_cols_reused",
                       static_cast<double>(cache_cols_reused));
    }
    obs::observe("cs.chs.residual_rel", res.residual_norm / xs_norm);
    obs::observe("cs.chs.support_size",
                 static_cast<double>(res.support.size()));
  }

  // Step 4: x_hat = Phi_K alpha_K.
  res.reconstruction.assign(n, 0.0);
  for (std::size_t idx = 0; idx < res.support.size(); ++idx) {
    const std::size_t j = res.support[idx];
    const double c = coef_on_support[idx];
    for (std::size_t i = 0; i < n; ++i) {
      res.reconstruction[i] += basis(i, j) * c;
    }
  }
  return res;
}

}  // namespace sensedroid::cs
