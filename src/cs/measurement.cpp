#include "cs/measurement.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sensedroid::cs {

SensorNoise SensorNoise::homogeneous(std::size_t m, double sigma) {
  if (sigma < 0.0) {
    throw std::invalid_argument("SensorNoise: sigma must be non-negative");
  }
  return SensorNoise{Vector(m, sigma)};
}

SensorNoise SensorNoise::heterogeneous(std::size_t m, double lo, double hi,
                                       Rng& rng) {
  if (lo < 0.0 || hi < lo) {
    throw std::invalid_argument("SensorNoise: need 0 <= lo <= hi");
  }
  SensorNoise n;
  n.stddev.resize(m);
  for (double& s : n.stddev) s = rng.uniform(lo, hi);
  return n;
}

Matrix SensorNoise::covariance() const {
  Matrix v(stddev.size(), stddev.size());
  for (std::size_t i = 0; i < stddev.size(); ++i) {
    v(i, i) = stddev[i] * stddev[i];
  }
  return v;
}

Vector SensorNoise::sample(Rng& rng) const {
  Vector w(stddev.size());
  for (std::size_t i = 0; i < stddev.size(); ++i) {
    w[i] = stddev[i] > 0.0 ? rng.gaussian(0.0, stddev[i]) : 0.0;
  }
  return w;
}

MeasurementPlan::MeasurementPlan(std::size_t n, std::vector<std::size_t> idx)
    : n_(n), indices_(std::move(idx)) {}

MeasurementPlan MeasurementPlan::random(std::size_t n, std::size_t m,
                                        Rng& rng) {
  return MeasurementPlan(n, rng.sample_without_replacement(n, m));
}

MeasurementPlan MeasurementPlan::from_indices(
    std::size_t n, std::vector<std::size_t> indices) {
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= n) {
      throw std::invalid_argument("MeasurementPlan: index out of range");
    }
    if (i > 0 && indices[i] <= indices[i - 1]) {
      throw std::invalid_argument(
          "MeasurementPlan: indices must be strictly increasing");
    }
  }
  return MeasurementPlan(n, std::move(indices));
}

MeasurementPlan MeasurementPlan::uniform_grid(std::size_t n, std::size_t m) {
  if (m > n) {
    throw std::invalid_argument("MeasurementPlan: m must not exceed n");
  }
  std::vector<std::size_t> idx(m);
  for (std::size_t i = 0; i < m; ++i) {
    // Spread samples across [0, n) with even spacing, first at 0.
    idx[i] = m == 0 ? 0 : (i * n) / m;
  }
  // Even spacing can collide only when m > n, excluded above.
  return MeasurementPlan(n, std::move(idx));
}

Vector MeasurementPlan::sample_signal(std::span<const double> x) const {
  if (x.size() != n_) {
    throw std::invalid_argument("MeasurementPlan: signal size mismatch");
  }
  Vector out(indices_.size());
  for (std::size_t i = 0; i < indices_.size(); ++i) out[i] = x[indices_[i]];
  return out;
}

Matrix MeasurementPlan::select_rows(const Matrix& basis) const {
  if (basis.rows() != n_) {
    throw std::invalid_argument("MeasurementPlan: basis row count mismatch");
  }
  return basis.select_rows(indices_);
}

Measurement measure(std::span<const double> x, MeasurementPlan plan,
                    SensorNoise noise, Rng& rng) {
  if (noise.size() != plan.measurement_count()) {
    throw std::invalid_argument("measure: noise/plan size mismatch");
  }
  Vector values = plan.sample_signal(x);
  const Vector w = noise.sample(rng);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] += w[i];
  return Measurement{std::move(plan), std::move(values), std::move(noise)};
}

Measurement measure_exact(std::span<const double> x, MeasurementPlan plan) {
  Vector values = plan.sample_signal(x);
  SensorNoise none = SensorNoise::homogeneous(values.size(), 0.0);
  return Measurement{std::move(plan), std::move(values), std::move(none)};
}

}  // namespace sensedroid::cs
