#include "cs/spatiotemporal.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace sensedroid::cs {

SequentialReconstructor::SequentialReconstructor(Params params)
    : params_(std::move(params)) {}

ChsResult SequentialReconstructor::step(const Matrix& basis,
                                        const Measurement& meas) {
  ChsOptions opts = params_.chs;
  opts.initial_support = carried_;
  ChsResult res = chs_reconstruct(basis, meas, opts);
  ++frames_;

  // Decide what to carry into the next frame: the significant fraction
  // of this frame's solution.
  double max_mag = 0.0;
  for (std::size_t j : res.support) {
    max_mag = std::max(max_mag, std::abs(res.coefficients[j]));
  }
  carried_.clear();
  if (max_mag > 0.0) {
    // Strongest first so a carry cap keeps the best atoms.
    std::vector<std::size_t> by_strength = res.support;
    std::sort(by_strength.begin(), by_strength.end(),
              [&](std::size_t a, std::size_t b) {
                return std::abs(res.coefficients[a]) >
                       std::abs(res.coefficients[b]);
              });
    for (std::size_t j : by_strength) {
      if (std::abs(res.coefficients[j]) <
          params_.carry_significance * max_mag) {
        break;
      }
      carried_.push_back(j);
      if (params_.max_carry != 0 && carried_.size() >= params_.max_carry) {
        break;
      }
    }
  }
  return res;
}

}  // namespace sensedroid::cs
