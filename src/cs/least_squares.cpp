#include "cs/least_squares.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/decomposition.h"

namespace sensedroid::cs {

Vector solve_ols(const Matrix& a, std::span<const double> y) {
  linalg::QR qr(a);
  return qr.solve(y);
}

Vector solve_gls(const Matrix& a, std::span<const double> y,
                 const Matrix& v) {
  if (v.rows() != a.rows() || v.cols() != a.rows()) {
    throw std::invalid_argument("solve_gls: covariance shape mismatch");
  }
  if (y.size() != a.rows()) {
    throw std::invalid_argument("solve_gls: y size mismatch");
  }
  // Whitening transform: with V = L L^T, the GLS problem equals OLS on
  // L^{-1} A and L^{-1} y.
  linalg::Cholesky chol(v);
  Matrix wa(a.rows(), a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const Vector col = chol.forward(a.col(j));
    for (std::size_t i = 0; i < a.rows(); ++i) wa(i, j) = col[i];
  }
  const Vector wy = chol.forward(y);
  return solve_ols(wa, wy);
}

Vector solve_gls_diag(const Matrix& a, std::span<const double> y,
                      std::span<const double> stddev) {
  if (stddev.size() != a.rows() || y.size() != a.rows()) {
    throw std::invalid_argument("solve_gls_diag: size mismatch");
  }
  // Clamp zero noise to the smallest positive stddev so exact sensors get
  // the strongest finite weight instead of dividing by zero.
  double min_pos = std::numeric_limits<double>::infinity();
  for (double s : stddev) {
    if (s > 0.0) min_pos = std::min(min_pos, s);
  }
  if (!std::isfinite(min_pos)) {
    // All sensors exact: GLS degenerates to OLS.
    return solve_ols(a, y);
  }
  Matrix wa(a.rows(), a.cols());
  Vector wy(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double w = 1.0 / std::max(stddev[i], min_pos);
    for (std::size_t j = 0; j < a.cols(); ++j) wa(i, j) = a(i, j) * w;
    wy[i] = y[i] * w;
  }
  return solve_ols(wa, wy);
}

Vector solve_ridge(const Matrix& a, std::span<const double> y,
                   double lambda) {
  if (lambda < 0.0) {
    throw std::invalid_argument("solve_ridge: lambda must be >= 0");
  }
  if (y.size() != a.rows()) {
    throw std::invalid_argument("solve_ridge: y size mismatch");
  }
  Matrix normal = a.gram();
  for (std::size_t i = 0; i < normal.rows(); ++i) normal(i, i) += lambda;
  const Vector aty = a.transpose_times(y);
  linalg::Cholesky chol(normal);
  return chol.solve(aty);
}

}  // namespace sensedroid::cs
