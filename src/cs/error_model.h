// Section 4's error decomposition.  Total reconstruction error
//   epsilon = epsilon_a + epsilon_c + epsilon_m
// where, for a fixed measurement count M and support size K:
//   epsilon_a — approximation (truncation) error of the best K-term
//               representation; decreases in K;
//   epsilon_c — numerical conditioning error of inverting Phi~_K, which
//               grows as kappa(Phi~_K) degrades with K -> M;
//   epsilon_m — measurement-noise error propagated through the
//               pseudo-inverse.
// "We should pick an optimal K such that the sum is minimal" — that scan
// is optimal_k().
#pragma once

#include <cstddef>

#include "cs/measurement.h"
#include "linalg/matrix.h"

namespace sensedroid::cs {

/// Error terms for one (signal, plan, K) configuration, all in absolute
/// L2 units of the signal.
struct ErrorBreakdown {
  double approximation = 0.0;  ///< epsilon_a
  double conditioning = 0.0;   ///< epsilon_c
  double noise = 0.0;          ///< epsilon_m (expected value)
  double kappa = 0.0;          ///< kappa(Phi~_K) for diagnostics

  double total() const noexcept {
    return approximation + conditioning + noise;
  }
};

/// Decomposes the expected reconstruction error when the true signal `x`
/// is approximated on its best-K support in `basis`, measured at `plan`'s
/// locations with iid noise of standard deviation `sigma`.
///
///  - epsilon_a: ||x - Phi_K alpha_K*|| with alpha_K* the exact top-K
///    coefficients (pure truncation, no sampling involved);
///  - epsilon_c: extra error of the OLS refit from the M noise-free
///    samples relative to the truncated signal (ill-conditioning of
///    Phi~_K);
///  - epsilon_m: sigma * sqrt(trace((Phi~_K^T Phi~_K)^{-1})) — the
///    expected coefficient perturbation from noise, which equals the
///    signal-domain perturbation because Phi_K has orthonormal columns.
///
/// Throws std::invalid_argument on dimension mismatch, k == 0, or
/// k > measurement count.
ErrorBreakdown decompose_error(const Matrix& basis, std::span<const double> x,
                               const MeasurementPlan& plan, double sigma,
                               std::size_t k);

/// Result of scanning K for the minimum total error.
struct OptimalK {
  std::size_t k = 0;
  ErrorBreakdown breakdown;
};

/// Scans K = 1..plan.measurement_count() and returns the K minimizing the
/// predicted total error (ties resolved toward smaller K).
OptimalK optimal_k(const Matrix& basis, std::span<const double> x,
                   const MeasurementPlan& plan, double sigma);

}  // namespace sensedroid::cs
