// Overdetermined coefficient solvers of Section 4:
//   eq. 11 — ordinary least squares for homogeneous sensors,
//   eq. 12 — generalized least squares weighting by the inverse sensor
//            covariance V for heterogeneous phone populations.
#pragma once

#include <span>

#include "linalg/matrix.h"

namespace sensedroid::cs {

using linalg::Matrix;
using linalg::Vector;

/// OLS estimate alpha = (A^T A)^{-1} A^T y, computed via Householder QR
/// for numerical stability (the paper's eq. 11 with A = Phi~_K).
/// Requires rows >= cols; throws std::invalid_argument otherwise and
/// std::runtime_error on numerical rank deficiency.
Vector solve_ols(const Matrix& a, std::span<const double> y);

/// GLS estimate alpha = (A^T V^{-1} A)^{-1} A^T V^{-1} y (eq. 12).
/// Implemented by whitening: V = L L^T, solve the OLS problem on
/// (L^{-1} A, L^{-1} y).  V must be SPD with V.rows() == a.rows().
Vector solve_gls(const Matrix& a, std::span<const double> y, const Matrix& v);

/// GLS with a diagonal covariance given as per-measurement stddevs — the
/// common case for phone fleets; avoids the dense Cholesky.
/// Zero stddevs are clamped to the smallest positive stddev (exact sensors
/// get the highest finite weight) to keep the weighting well-defined.
Vector solve_gls_diag(const Matrix& a, std::span<const double> y,
                      std::span<const double> stddev);

/// Ridge-regularized least squares (A^T A + lambda I)^{-1} A^T y; the
/// fallback brokers use when Phi~_K is too ill-conditioned for plain OLS
/// (the epsilon_c regime of the error model).  lambda must be >= 0.
Vector solve_ridge(const Matrix& a, std::span<const double> y, double lambda);

}  // namespace sensedroid::cs
