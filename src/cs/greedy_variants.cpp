#include "cs/greedy_variants.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cs/least_squares.h"
#include "linalg/decomposition.h"
#include "linalg/random.h"
#include "linalg/vector_ops.h"

namespace sensedroid::cs {

using linalg::norm2;
using linalg::subtract;
using linalg::top_k_by_magnitude;

namespace {

// Residual y - A_S c for support S with coefficients c.
Vector residual_for(const Matrix& a, std::span<const double> y,
                    const std::vector<std::size_t>& support,
                    const Vector& coef) {
  Vector r(y.begin(), y.end());
  for (std::size_t s = 0; s < support.size(); ++s) {
    const double c = coef[s];
    if (c == 0.0) continue;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      r[i] -= a(i, support[s]) * c;
    }
  }
  return r;
}

Vector least_squares_or_ridge(const Matrix& a_sub,
                              std::span<const double> y) {
  try {
    return solve_ols(a_sub, y);
  } catch (const std::runtime_error&) {
    const double scale = std::max(a_sub.frobenius_norm(), 1e-12);
    return solve_ridge(a_sub, y, 1e-8 * scale * scale);
  }
}

}  // namespace

SparseSolution cosamp_solve(const Matrix& a, std::span<const double> y,
                            const CosampOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0 || y.size() != m) {
    throw std::invalid_argument("cosamp_solve: shape mismatch");
  }
  if (opts.sparsity == 0) {
    throw std::invalid_argument("cosamp_solve: sparsity must be positive");
  }
  const std::size_t k = std::min(opts.sparsity, std::min(m / 2, n));

  SparseSolution sol;
  sol.coefficients.assign(n, 0.0);
  std::vector<std::size_t> support;  // current S, sorted
  Vector coef;
  Vector r(y.begin(), y.end());
  const double y_norm = std::max(norm2(y), 1e-300);
  double best_res = norm2(r);
  std::vector<std::size_t> best_support;
  Vector best_coef;

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    if (poll_cancelled(opts.cancel)) break;
    if (norm2(r) <= opts.residual_tol * y_norm) break;
    ++sol.iterations;

    // Identify 2K largest correlations and merge with current support.
    const Vector proxy = a.transpose_times(r);
    auto candidates = top_k_by_magnitude(proxy, 2 * k);
    candidates.insert(candidates.end(), support.begin(), support.end());
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    // Least squares on the merged set cannot exceed M columns.
    if (candidates.size() > m) candidates.resize(m);

    const Matrix a_merged = a.select_cols(candidates);
    const Vector c_merged = least_squares_or_ridge(a_merged, y);

    // Prune back to the K strongest.
    const auto keep = top_k_by_magnitude(c_merged, k);
    std::vector<std::size_t> new_support(keep.size());
    for (std::size_t i = 0; i < keep.size(); ++i) {
      new_support[i] = candidates[keep[i]];
    }
    std::sort(new_support.begin(), new_support.end());
    const Matrix a_sub = a.select_cols(new_support);
    const Vector c_sub = least_squares_or_ridge(a_sub, y);

    support = std::move(new_support);
    coef = c_sub;
    r = residual_for(a, y, support, coef);

    const double res = norm2(r);
    if (res < best_res) {
      best_res = res;
      best_support = support;
      best_coef = coef;
    } else if (res > best_res * (1.0 + 1e-9) && it > 0) {
      break;  // stalled / oscillating: keep the best iterate
    }
  }

  if (!best_support.empty()) {
    support = best_support;
    coef = best_coef;
  }
  sol.support = support;
  for (std::size_t s = 0; s < support.size(); ++s) {
    sol.coefficients[support[s]] = coef[s];
  }
  sol.residual_norm = best_res;
  return sol;
}

SparseSolution iht_solve(const Matrix& a, std::span<const double> y,
                         const IhtOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0 || y.size() != m) {
    throw std::invalid_argument("iht_solve: shape mismatch");
  }
  if (opts.sparsity == 0) {
    throw std::invalid_argument("iht_solve: sparsity must be positive");
  }
  const std::size_t k = std::min(opts.sparsity, n);

  SparseSolution sol;
  Vector x(n, 0.0);
  const double y_norm = std::max(norm2(y), 1e-300);
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    if (poll_cancelled(opts.cancel)) break;
    const Vector ax = a * x;
    const Vector r = subtract(y, ax);
    if (norm2(r) <= opts.residual_tol * y_norm) break;
    ++sol.iterations;
    const Vector grad = a.transpose_times(r);

    double mu = opts.step;
    if (mu <= 0.0) {
      // Normalized IHT (Blumensath & Davies): the exact line-search step
      // for the gradient restricted to the working support — converges in
      // tens of iterations where a global-Lipschitz step crawls.
      std::vector<std::size_t> working;
      if (linalg::norm0(x) > 0) {
        for (std::size_t j = 0; j < n; ++j) {
          if (x[j] != 0.0) working.push_back(j);
        }
      } else {
        working = top_k_by_magnitude(grad, k);
      }
      Vector g_s(n, 0.0);
      for (std::size_t j : working) g_s[j] = grad[j];
      const double num = linalg::dot(g_s, g_s);
      const Vector ag = a * g_s;
      const double den = linalg::dot(ag, ag);
      mu = den > 1e-300 ? num / den : 1.0;
    }

    for (std::size_t j = 0; j < n; ++j) x[j] += mu * grad[j];
    x = linalg::hard_threshold(x, k);
  }

  sol.coefficients = x;
  for (std::size_t j = 0; j < n; ++j) {
    if (x[j] != 0.0) sol.support.push_back(j);
  }
  sol.residual_norm = norm2(subtract(y, a * x));
  return sol;
}

}  // namespace sensedroid::cs
