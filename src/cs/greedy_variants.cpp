#include "cs/greedy_variants.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cs/least_squares.h"
#include "linalg/decomposition.h"
#include "linalg/random.h"
#include "linalg/vector_ops.h"

namespace sensedroid::cs {

using linalg::norm2;
using linalg::subtract;
using linalg::top_k_by_magnitude;

namespace {

// Residual y - A_S c for support S with coefficients c.
Vector residual_for(const Matrix& a, std::span<const double> y,
                    const std::vector<std::size_t>& support,
                    const Vector& coef) {
  Vector r(y.begin(), y.end());
  for (std::size_t s = 0; s < support.size(); ++s) {
    const double c = coef[s];
    if (c == 0.0) continue;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      r[i] -= a(i, support[s]) * c;
    }
  }
  return r;
}

// A x for a structurally sparse x, synthesized from the nonzero columns
// only.  The dense kernels deliberately do not zero-skip (a masked
// 0 * NaN would hide poisoned entries), so sparsity must be explicit at
// call sites that hold a hard-thresholded iterate — IHT multiplies a
// k-sparse vector against the full dictionary every iteration, and the
// dense product would turn its O(m k) step into O(m n).
Vector sparse_times(const Matrix& a, const Vector& x) {
  Vector out(a.rows(), 0.0);
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double c = x[j];
    if (c == 0.0) continue;
    for (std::size_t i = 0; i < a.rows(); ++i) out[i] += a(i, j) * c;
  }
  return out;
}

Vector least_squares_or_ridge(const Matrix& a_sub,
                              std::span<const double> y) {
  try {
    // A square selection (CoSaMP's merged candidate set saturates at M
    // columns) has a zero-residual interpolant, so partial-pivot LU
    // returns the least-squares solution at a third of the Householder
    // flops with row-major-friendly access.  A singular selection throws
    // and lands on the same ridge fallback as the QR rank check.
    if (a_sub.rows() == a_sub.cols() && a_sub.rows() > 0) {
      return linalg::lu_solve(a_sub, y);
    }
    return solve_ols(a_sub, y);
  } catch (const std::runtime_error&) {
    const double scale = std::max(a_sub.frobenius_norm(), 1e-12);
    return solve_ridge(a_sub, y, 1e-8 * scale * scale);
  }
}

// The incremental factorization cache (linalg::SupportQrCache) is
// deliberately NOT used here.  Measured in the Fig. 4 regime (n=256,
// m=30, k=10): CoSaMP's supports churn wholesale between iterations —
// the merged candidate set saturates at M columns and the pruned set
// shares too short a sorted prefix with its predecessor — so every
// solve pays the MGS ladder seeding cost and reuses almost nothing
// (~6% slower end to end than the dense path).  IHT's debias refit is
// one-shot, where seeding is pure overhead.  The cache earns its keep
// in cs::chs, whose supports grow by sorted insertion.

}  // namespace

std::vector<std::size_t> clamp_candidates_by_proxy(
    std::vector<std::size_t> candidates, std::span<const double> proxy,
    std::size_t max_count) {
  if (candidates.size() <= max_count) return candidates;
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t lhs, std::size_t rhs) {
              const double pl = std::abs(proxy[lhs]);
              const double pr = std::abs(proxy[rhs]);
              if (pl != pr) return pl > pr;
              return lhs < rhs;
            });
  candidates.resize(max_count);
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

SparseSolution cosamp_solve(const Matrix& a, std::span<const double> y,
                            const CosampOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0 || y.size() != m) {
    throw std::invalid_argument("cosamp_solve: shape mismatch");
  }
  if (opts.sparsity == 0) {
    throw std::invalid_argument("cosamp_solve: sparsity must be positive");
  }
  const std::size_t k = std::min(opts.sparsity, std::min(m / 2, n));

  SparseSolution sol;
  sol.coefficients.assign(n, 0.0);
  std::vector<std::size_t> support;  // current S, sorted
  Vector coef;
  Vector r(y.begin(), y.end());
  const double y_norm = std::max(norm2(y), 1e-300);
  // Best iterate seen so far; starts at the zero solution so the
  // returned (support, coefficients, residual_norm) triple is always
  // self-consistent even when no iteration improves on it.
  double best_res = norm2(r);
  std::vector<std::size_t> best_support;
  Vector best_coef;

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    if (poll_cancelled(opts.cancel)) break;
    if (norm2(r) <= opts.residual_tol * y_norm) break;
    ++sol.iterations;

    // Identify 2K largest correlations and merge with current support.
    const Vector proxy = a.transpose_times(r);
    auto candidates = top_k_by_magnitude(proxy, 2 * k);
    candidates.insert(candidates.end(), support.begin(), support.end());
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    // Least squares on the merged set cannot exceed M columns; keep the
    // strongest correlations, not the lowest-numbered ones.
    candidates = clamp_candidates_by_proxy(std::move(candidates), proxy, m);

    const Vector c_merged = least_squares_or_ridge(a.select_cols(candidates), y);

    // Prune back to the K strongest.
    const auto keep = top_k_by_magnitude(c_merged, k);
    std::vector<std::size_t> new_support(keep.size());
    for (std::size_t i = 0; i < keep.size(); ++i) {
      new_support[i] = candidates[keep[i]];
    }
    std::sort(new_support.begin(), new_support.end());
    const Vector c_sub = least_squares_or_ridge(a.select_cols(new_support), y);

    support = std::move(new_support);
    coef = c_sub;
    r = residual_for(a, y, support, coef);

    const double res = norm2(r);
    if (res < best_res) {
      best_res = res;
      best_support = support;
      best_coef = coef;
    } else if (res > best_res * (1.0 + 1e-9) && it > 0) {
      break;  // stalled / oscillating: keep the best iterate
    }
  }

  // Return the best iterate unconditionally — an empty best_support
  // means the zero solution, whose residual is exactly best_res.
  sol.support = best_support;
  for (std::size_t s = 0; s < best_support.size(); ++s) {
    sol.coefficients[best_support[s]] = best_coef[s];
  }
  sol.residual_norm = best_res;
  return sol;
}

SparseSolution iht_solve(const Matrix& a, std::span<const double> y,
                         const IhtOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0 || y.size() != m) {
    throw std::invalid_argument("iht_solve: shape mismatch");
  }
  if (opts.sparsity == 0) {
    throw std::invalid_argument("iht_solve: sparsity must be positive");
  }
  const std::size_t k = std::min(opts.sparsity, n);

  SparseSolution sol;
  Vector x(n, 0.0);
  const double y_norm = std::max(norm2(y), 1e-300);
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    if (poll_cancelled(opts.cancel)) break;
    const Vector ax = sparse_times(a, x);  // x is k-sparse after thresholding
    const Vector r = subtract(y, ax);
    if (norm2(r) <= opts.residual_tol * y_norm) break;
    ++sol.iterations;
    const Vector grad = a.transpose_times(r);

    double mu = opts.step;
    if (mu <= 0.0) {
      // Normalized IHT (Blumensath & Davies): the exact line-search step
      // for the gradient restricted to the working support — converges in
      // tens of iterations where a global-Lipschitz step crawls.
      std::vector<std::size_t> working;
      if (linalg::norm0(x) > 0) {
        for (std::size_t j = 0; j < n; ++j) {
          if (x[j] != 0.0) working.push_back(j);
        }
      } else {
        working = top_k_by_magnitude(grad, k);
      }
      Vector g_s(n, 0.0);
      for (std::size_t j : working) g_s[j] = grad[j];
      const double num = linalg::dot(g_s, g_s);
      const Vector ag = sparse_times(a, g_s);  // g_s lives on the working set
      const double den = linalg::dot(ag, ag);
      mu = den > 1e-300 ? num / den : 1.0;
    }

    for (std::size_t j = 0; j < n; ++j) x[j] += mu * grad[j];
    x = linalg::hard_threshold(x, k);
  }

  sol.coefficients = x;
  for (std::size_t j = 0; j < n; ++j) {
    if (x[j] != 0.0) sol.support.push_back(j);
  }
  if (opts.debias && !sol.support.empty()) {
    // Hard thresholding biases surviving magnitudes toward zero; a final
    // least-squares refit on the selected support (same support, better
    // coefficients) removes the bias.  One-shot, so it takes the dense
    // path directly; ridge fallback on dependent columns.
    const Vector c = least_squares_or_ridge(a.select_cols(sol.support), y);
    for (std::size_t s = 0; s < sol.support.size(); ++s) {
      sol.coefficients[sol.support[s]] = c[s];
    }
  }
  sol.residual_norm = norm2(subtract(y, sparse_times(a, sol.coefficients)));
  return sol;
}

}  // namespace sensedroid::cs
