// Alternative greedy sparse solvers for eq. 13, complementing OMP:
//   - CoSaMP (Needell & Tropp): batched support selection (2K candidates
//     per iteration) with pruning back to K — more robust to noise than
//     one-atom-at-a-time OMP;
//   - IHT (Blumensath & Davies): iterative hard thresholding, a gradient
//     method x <- H_K(x + mu A^T (y - A x)) — cheapest per iteration.
// Used by the solver-ablation experiment (E17) to justify the default.
#pragma once

#include <cstddef>
#include <span>

#include "cs/cancel.h"
#include "cs/omp.h"

namespace sensedroid::cs {

struct CosampOptions {
  std::size_t sparsity = 1;         ///< target K (required, >= 1)
  std::size_t max_iterations = 50;
  double residual_tol = 1e-9;       ///< stop at ||r|| <= tol * ||y||
  /// Polled once per iteration; best-so-far solution is returned.
  const CancelToken* cancel = nullptr;
};

/// CoSaMP solve of min ||y - A alpha|| s.t. ||alpha||_0 <= K.
/// The returned (support, coefficients, residual_norm) triple is always
/// self-consistent: residual_norm is the norm of y - A * coefficients
/// for the best iterate found (the zero solution if nothing improved).
/// Throws std::invalid_argument on shape errors or K == 0.
SparseSolution cosamp_solve(const Matrix& a, std::span<const double> y,
                            const CosampOptions& opts);

/// Caps a candidate index set at max_count entries, keeping those with
/// the largest |proxy[index]| (ties broken toward the lower index so the
/// result is deterministic); the result is sorted ascending.  Exposed
/// for testing: this is the truncation CoSaMP applies when the merged
/// candidate set exceeds the measurement count M — truncating by index,
/// as a plain resize after an ascending sort would, silently favors
/// low-numbered dictionary columns over strong correlations.
std::vector<std::size_t> clamp_candidates_by_proxy(
    std::vector<std::size_t> candidates, std::span<const double> proxy,
    std::size_t max_count);

struct IhtOptions {
  std::size_t sparsity = 1;          ///< target K (required, >= 1)
  std::size_t max_iterations = 300;
  double residual_tol = 1e-9;
  /// Step size mu; 0 = automatic (1 / ||A||_2^2 estimated by power
  /// iteration), the guaranteed-stable choice.
  double step = 0.0;
  /// Debias the final iterate: refit the coefficients on the selected
  /// support by least squares (through the shared incremental
  /// factorization cache).  Hard thresholding biases magnitudes toward
  /// zero; the refit removes that bias without changing the support.
  bool debias = true;
  /// Polled once per iteration; best-so-far solution is returned.
  const CancelToken* cancel = nullptr;
};

/// Iterative hard thresholding solve of the same problem.
SparseSolution iht_solve(const Matrix& a, std::span<const double> y,
                         const IhtOptions& opts);

}  // namespace sensedroid::cs
