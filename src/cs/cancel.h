// Cooperative cancellation for solver loops.  Lives in its own header
// (below solver.h in the include graph) so every per-solver options
// struct can carry an optional token without pulling in the registry.
#pragma once

#include <atomic>

namespace sensedroid::cs {

/// Cooperative cancellation flag.  One writer (any thread) flips it; any
/// number of solver loops poll it between iterations and return their
/// current partial solution early.  Cancellation is best-effort: a
/// solver observes the token at iteration granularity (the simplex
/// engines poll once per pivot), never mid-factorization.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// True when `t` is set and has been cancelled — the one-line poll used
/// inside solver iteration loops (`if (poll_cancelled(opts.cancel)) break;`).
inline bool poll_cancelled(const CancelToken* t) noexcept {
  return t != nullptr && t->cancelled();
}

}  // namespace sensedroid::cs
