#include "cs/error_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cs/least_squares.h"
#include "linalg/decomposition.h"
#include "linalg/vector_ops.h"

namespace sensedroid::cs {

using linalg::norm2;
using linalg::subtract;

ErrorBreakdown decompose_error(const Matrix& basis, std::span<const double> x,
                               const MeasurementPlan& plan, double sigma,
                               std::size_t k) {
  const std::size_t n = basis.rows();
  if (basis.cols() != n || x.size() != n || plan.signal_size() != n) {
    throw std::invalid_argument("decompose_error: dimension mismatch");
  }
  const std::size_t m = plan.measurement_count();
  if (k == 0 || k > m) {
    throw std::invalid_argument("decompose_error: need 1 <= k <= M");
  }

  // Best-K support from the exact coefficients.
  const Vector alpha = basis.transpose_times(x);
  std::vector<std::size_t> support = linalg::top_k_by_magnitude(alpha, k);
  std::sort(support.begin(), support.end());

  ErrorBreakdown out;

  // epsilon_a: truncation error.  With an orthonormal basis this is the
  // L2 norm of the dropped coefficients.
  {
    double dropped = 0.0;
    std::vector<bool> kept(n, false);
    for (std::size_t j : support) kept[j] = true;
    for (std::size_t j = 0; j < n; ++j) {
      if (!kept[j]) dropped += alpha[j] * alpha[j];
    }
    out.approximation = std::sqrt(dropped);
  }

  // Sub-sampled basis on the support.
  const Matrix phi_k = plan.select_rows(basis).select_cols(support);
  out.kappa = linalg::condition_number(phi_k);

  // epsilon_c: refit from noise-free samples vs. the exact truncation.
  {
    const Vector xs = plan.sample_signal(x);
    Vector alpha_fit;
    if (std::isfinite(out.kappa)) {
      alpha_fit = solve_ols(phi_k, xs);
    } else {
      // Singular sampling: fall back to pinv so the term stays finite and
      // large rather than throwing.
      alpha_fit = linalg::pseudo_inverse(phi_k) * xs;
    }
    Vector alpha_true(k);
    for (std::size_t i = 0; i < k; ++i) alpha_true[i] = alpha[support[i]];
    // Orthonormal columns of Phi_K make coefficient error == signal error.
    out.conditioning = norm2(subtract(alpha_fit, alpha_true));
  }

  // epsilon_m: E||(Phi~_K)^dagger w|| = sigma sqrt(trace((Phi~_K^T
  // Phi~_K)^{-1})) for iid noise.
  if (sigma > 0.0) {
    const Matrix pinv = linalg::pseudo_inverse(phi_k);
    double trace = 0.0;
    for (std::size_t i = 0; i < pinv.rows(); ++i) {
      for (std::size_t j = 0; j < pinv.cols(); ++j) {
        trace += pinv(i, j) * pinv(i, j);
      }
    }
    out.noise = sigma * std::sqrt(trace);
  }

  return out;
}

OptimalK optimal_k(const Matrix& basis, std::span<const double> x,
                   const MeasurementPlan& plan, double sigma) {
  const std::size_t m = plan.measurement_count();
  if (m == 0) {
    throw std::invalid_argument("optimal_k: plan has no measurements");
  }
  OptimalK best;
  for (std::size_t k = 1; k <= m; ++k) {
    const ErrorBreakdown b = decompose_error(basis, x, plan, sigma, k);
    if (best.k == 0 || b.total() < best.breakdown.total()) {
      best.k = k;
      best.breakdown = b;
    }
  }
  return best;
}

}  // namespace sensedroid::cs
