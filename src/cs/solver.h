// The unified sparse-solver API of the execution engine (DESIGN.md §9).
//
// The free-function solver layer grew five signature shapes and five
// option structs (omp_solve, cosamp_solve, iht_solve, basis_pursuit,
// solve_ols/gls/ridge) — fine for bench code, hostile to a parallel
// runtime that wants to treat "a solver" as one schedulable, reentrant
// unit the way GSN treats a virtual sensor.  This header introduces:
//
//   - CancelToken     — cooperative cancellation shared across workers;
//   - SolveContext    — the one per-call parameter block (budgets,
//                       tolerances, noise model, metrics sink, token)
//                       that replaces the per-solver option structs at
//                       call sites;
//   - SparseSolver    — the polymorphic interface.  Implementations are
//                       STATELESS: solve() is const, touches no mutable
//                       statics, and keeps all scratch on the stack or
//                       in locals, so one instance may serve any number
//                       of threads concurrently;
//   - SolverRegistry  — name -> factory, so campaign configs and bench
//                       harnesses select solvers by string instead of
//                       hand-rolled switches.
//
// The original free functions remain the implementation layer and stay
// public; see README.md for the free-function -> registry-name table.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cs/cancel.h"
#include "cs/omp.h"
#include "linalg/matrix.h"

namespace sensedroid::obs {
class MetricsRegistry;
}  // namespace sensedroid::obs

namespace sensedroid::cs {

/// The single per-call parameter block of SparseSolver::solve.  Plain
/// aggregate with in-class defaults; zero-initialized means "solver
/// defaults" everywhere.  Fields a solver does not use are ignored
/// (e.g. `noise_stddev` by OMP, `sparsity` by OLS).
struct SolveContext {
  /// Sparsity budget K.  0 = solver default (OMP: min(M, N); CoSaMP and
  /// IHT reject 0 with std::invalid_argument — they are K-targeted by
  /// construction and have no sensible default).
  std::size_t sparsity = 0;
  /// Relative residual stop: ||r|| <= residual_tol * ||y||.  < 0 =
  /// solver default.
  double residual_tol = -1.0;
  /// Iteration cap.  0 = solver default.
  std::size_t max_iterations = 0;
  /// Per-measurement noise stddevs for weighted refits ("gls"); empty
  /// span = homogeneous/unknown noise (weighted solvers fall back to
  /// their unweighted form).
  std::span<const double> noise_stddev{};
  /// Tikhonov strength for "ridge"; <= 0 picks a scale-aware default of
  /// 1e-8 * ||A||_F^2.
  double ridge_lambda = 0.0;
  /// Metrics destination for this solve.  When non-null the solve runs
  /// under a ScopedMetricShard bound to it, so per-task shards capture
  /// solver counters without touching the process registry; nullptr
  /// inherits the caller's sink (thread shard or attached registry).
  obs::MetricsRegistry* metrics = nullptr;
  /// Cooperative cancellation; nullptr = not cancellable.
  const CancelToken* cancel = nullptr;
};

/// A reconstruction algorithm behind one uniform, reentrant signature.
///
/// Contract (enforced by test_exec registry round-trips and the TSan
/// suite): implementations hold no mutable state — solve() const, no
/// mutable statics, no caches — so a single instance may be shared by
/// every worker thread of a campaign.  Throws std::invalid_argument on
/// shape errors exactly like the underlying free functions.
class SparseSolver {
 public:
  virtual ~SparseSolver() = default;

  /// Registry name of this solver ("omp", "cosamp", ...).
  virtual std::string_view name() const noexcept = 0;

  /// Solves min ||y - A alpha|| under this algorithm's model (sparse
  /// greedy, L1, or least-squares refit) and returns the solution with
  /// support extracted.  `a` is M x N, `y` has length M.
  virtual SparseSolution solve(const linalg::Matrix& a,
                               std::span<const double> y,
                               const SolveContext& ctx) const = 0;
};

/// Name -> factory registry.  The process-wide instance (global()) comes
/// pre-loaded with every built-in solver; campaigns and tests may
/// register additional ones.  All methods are thread-safe; the registry
/// itself is the only intentional global in the solver layer and is
/// only mutated at registration time, never during a solve.
class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SparseSolver>()>;

  /// The process-wide registry, lazily initialized with the built-ins:
  ///   "omp"     -> omp_solve            (eq. 13 greedy; the default)
  ///   "cosamp"  -> cosamp_solve         (batched greedy, needs K)
  ///   "iht"     -> iht_solve            (normalized IHT, needs K)
  ///   "bp"      -> basis_pursuit        (eqs. 9-10 L1 via simplex)
  ///   "ols"     -> solve_ols            (eq. 11 refit)
  ///   "gls"     -> solve_gls_diag       (eq. 12 refit; noise_stddev)
  ///   "ridge"   -> solve_ridge          (conditioning fallback)
  /// plus aliases "niht" (iht) and "basis_pursuit" (bp).
  static SolverRegistry& global();

  /// Registers (or replaces) a factory under `name`.  Throws
  /// std::invalid_argument on an empty name or null factory.
  void register_solver(std::string name, Factory factory);

  /// Instantiates the named solver; throws std::invalid_argument for
  /// unknown names (message lists what is registered).
  std::unique_ptr<SparseSolver> create(std::string_view name) const;

  bool contains(std::string_view name) const;

  /// Registered names, sorted, aliases included.
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace sensedroid::cs
