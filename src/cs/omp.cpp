#include "cs/omp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/updatable_qr.h"
#include "linalg/vector_ops.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::cs {

using linalg::axpy;
using linalg::norm2;

namespace {

// Four independent chains: the scalar reduction is latency-bound at the
// m = 30 Fig. 4 regime.  Fixed reassociation, deterministic.
double dot4(const double* __restrict a, const double* __restrict b,
            std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return (s0 + s1) + (s2 + s3);
}

// argmax_j corr[j]^2 * sel[j] in three branch-free-ish passes: a
// vectorizable scale (sel[j] is the reciprocal *squared* column norm,
// or an exact 0.0 for picked / zero-norm columns, whose product is then
// an exact 0 — or NaN for an infinite correlation — and can never win),
// a four-chain max reduction, and a first-index-equal scan.  Comparing
// squared normalized correlations is argmax-equivalent to comparing
// |corr|/norm (squaring is monotone on non-negatives) but replaces a
// sqrt pass and a vdivpd per candidate (~16+ cycles per vector) with
// two vmulpd (1 cycle each); the scaled values differ from the naive
// guarded divide loop by a couple of ulps, so the greedy pick can only
// change on near-exact ties between distinct atoms — the equivalence
// tests against the old algorithm stay support-identical.
std::size_t argmax_scaled(const double* __restrict corr,
                          const double* __restrict sel,
                          double* __restrict val, std::size_t n,
                          double* best_val) {
  for (std::size_t j = 0; j < n; ++j) val[j] = corr[j] * corr[j] * sel[j];
  double b0 = 0.0, b1 = 0.0, b2 = 0.0, b3 = 0.0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    b0 = val[j] > b0 ? val[j] : b0;
    b1 = val[j + 1] > b1 ? val[j + 1] : b1;
    b2 = val[j + 2] > b2 ? val[j + 2] : b2;
    b3 = val[j + 3] > b3 ? val[j + 3] : b3;
  }
  for (; j < n; ++j) b0 = val[j] > b0 ? val[j] : b0;
  const double b01 = b0 > b1 ? b0 : b1;
  const double b23 = b2 > b3 ? b2 : b3;
  const double best = b01 > b23 ? b01 : b23;
  *best_val = best;
  if (!(best > 0.0)) return n;
  for (j = 0; j < n; ++j) {
    if (val[j] == best) return j;
  }
  return n;
}

}  // namespace

SparseSolution omp_solve(const Matrix& a, std::span<const double> y,
                         const OmpOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0) {
    throw std::invalid_argument("omp_solve: empty matrix");
  }
  if (y.size() != m) {
    throw std::invalid_argument("omp_solve: y size mismatch");
  }
  const std::size_t k_max =
      opts.max_sparsity == 0 ? std::min(m, n)
                             : std::min({opts.max_sparsity, m, n});
  obs::ScopedSpan span("cs.omp.solve");
  obs::ScopedTimer timer("cs.omp.solve_us");

  // One scratch block for the per-candidate arrays (correlations, the
  // argmax scratch, the eligibility scale) and the picked-column copy:
  // the Fig. 4 solve is short enough that per-vector malloc/free shows
  // up, and the four live regions never overlap.
  Vector scratch(3 * n + m);
  const std::span<double> corr(scratch.data(), n);
  const std::span<double> sel(scratch.data() + n, n);
  const std::span<double> val(scratch.data() + 2 * n, n);
  const std::span<double> col_buf(scratch.data() + 3 * n, m);

  // Column norms make the correlation scale-invariant even if a caller
  // passes a non-normalized dictionary.  The norms sweep is fused with
  // the first correlation pass (residual == y there), saving one full
  // traversal of the dictionary, and the argmax compares *squared*
  // normalized correlations, so only the reciprocal squared norm is
  // kept — no sqrt pass.  sel[] doubles as the argmax eligibility mask:
  // an exact 0.0 for zero-norm (and later picked) columns scales any
  // finite correlation down to an exact 0.
  a.transpose_times_sqnorms_into(y, corr, sel);
  bool have_corr = true;
  for (std::size_t j = 0; j < n; ++j) {
    sel[j] = sel[j] == 0.0 ? 0.0 : 1.0 / sel[j];
  }

  SparseSolution sol;
  sol.coefficients.assign(n, 0.0);
  Vector residual(y.begin(), y.end());
  const double y_norm = norm2(y);
  double prev_res = y_norm;
  double res = y_norm;

  // Incremental factorization of the support columns (the "orthogonal"
  // step).  Appending the picked column extends Q/R in O(mk); because
  // the new Q column q is orthonormal to the previous ones, the exact
  // least-squares residual updates in place as r -= (q.y) q, so each
  // greedy iteration is one correlation pass + O(mk) bookkeeping instead
  // of a from-scratch O(mk^2) QR.  Coefficients are recovered once at
  // the end by a single back-substitution against the maintained Q^T y.
  linalg::UpdatableQR qr(m, k_max);
  Vector qty;
  qty.reserve(k_max);

  while (sol.support.size() < k_max) {
    if (poll_cancelled(opts.cancel)) break;
    if (res <= opts.residual_tol * std::max(y_norm, 1e-300)) break;
    // Greedy step: column with the largest normalized correlation.  The
    // first iteration's correlations were fused with the norms sweep.
    if (!have_corr) a.transpose_times_into(residual, corr);
    have_corr = false;
    double best_val = 0.0;
    const std::size_t best =
        argmax_scaled(corr.data(), sel.data(), val.data(), n, &best_val);
    if (best == n) break;  // nothing left correlates

    a.col_into(best, col_buf);
    if (!qr.append_column(col_buf)) {
      // Numerically dependent on the support already picked: it cannot
      // reduce the residual, and no remaining candidate beat it, so the
      // pursuit has converged to the span it can reach.
      break;
    }
    sel[best] = 0.0;
    sol.support.push_back(best);
    ++sol.iterations;

    const auto q = qr.q_column(qr.size() - 1);
    const double qy = dot4(q.data(), y.data(), m);
    qty.push_back(qy);
    axpy(-qy, q, residual);
    res = norm2(residual);
    obs::fr_record(obs::FrEvent::kSolverIteration,
                   static_cast<std::uint32_t>(sol.iterations), res);

    if (opts.min_improvement > 0.0 &&
        prev_res - res < opts.min_improvement * std::max(y_norm, 1e-300)) {
      // The atom bought almost nothing: undo it (restore the residual
      // before the Q column disappears, then downdate) and stop.  Note
      // sol.iterations stays: the work was performed even though the
      // atom was rejected.
      axpy(qy, q, residual);
      qr.remove_last();
      qty.pop_back();
      sol.support.pop_back();
      res = norm2(residual);
      break;
    }
    prev_res = res;
  }

  const Vector coef_on_support = qr.solve_from_qty(qty);
  for (std::size_t i = 0; i < sol.support.size(); ++i) {
    sol.coefficients[sol.support[i]] = coef_on_support[i];
  }
  sol.residual_norm = res;
  obs::fr_record(obs::FrEvent::kSolverSolve,
                 static_cast<std::uint32_t>(sol.support.size()),
                 sol.residual_norm);
  if (obs::attached()) {
    obs::add_counter("cs.omp.solves");
    obs::add_counter("cs.omp.iterations",
                     static_cast<double>(sol.iterations));
    obs::add_counter("cs.omp.accepted_atoms",
                     static_cast<double>(sol.support.size()));
    obs::observe("cs.omp.residual_rel",
                 sol.residual_norm / std::max(y_norm, 1e-300));
  }
  return sol;
}

Vector reconstruct(const Matrix& basis, const SparseSolution& sol) {
  if (basis.cols() != sol.coefficients.size()) {
    throw std::invalid_argument("reconstruct: basis/coefficient mismatch");
  }
  // Exploit sparsity: synthesize from the support only.  Every support
  // atom participates, even with a zero coefficient — a NaN/Inf basis
  // entry on the support must reach the output, not be skip-masked.
  Vector x(basis.rows(), 0.0);
  for (std::size_t j : sol.support) {
    const double c = sol.coefficients[j];
    for (std::size_t i = 0; i < basis.rows(); ++i) x[i] += basis(i, j) * c;
  }
  return x;
}

}  // namespace sensedroid::cs
