#include "cs/omp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cs/least_squares.h"
#include "linalg/vector_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::cs {

using linalg::norm2;

SparseSolution omp_solve(const Matrix& a, std::span<const double> y,
                         const OmpOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0) {
    throw std::invalid_argument("omp_solve: empty matrix");
  }
  if (y.size() != m) {
    throw std::invalid_argument("omp_solve: y size mismatch");
  }
  const std::size_t k_max =
      opts.max_sparsity == 0 ? std::min(m, n)
                             : std::min({opts.max_sparsity, m, n});
  obs::ScopedSpan span("cs.omp.solve");
  obs::ScopedTimer timer("cs.omp.solve_us");

  // Precompute column norms so correlation is scale-invariant even if a
  // caller passes a non-normalized dictionary.
  Vector col_norm(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = a.row(i);
    for (std::size_t j = 0; j < n; ++j) col_norm[j] += row[j] * row[j];
  }
  for (double& c : col_norm) c = std::sqrt(c);

  SparseSolution sol;
  sol.coefficients.assign(n, 0.0);
  Vector residual(y.begin(), y.end());
  const double y_norm = norm2(y);
  double prev_res = y_norm;
  std::vector<bool> picked(n, false);
  Vector coef_on_support;

  while (sol.support.size() < k_max) {
    if (poll_cancelled(opts.cancel)) break;
    if (norm2(residual) <= opts.residual_tol * std::max(y_norm, 1e-300)) {
      break;
    }
    // Greedy step: column with the largest normalized correlation.
    const Vector corr = a.transpose_times(residual);
    std::size_t best = n;
    double best_val = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (picked[j] || col_norm[j] == 0.0) continue;
      const double v = std::abs(corr[j]) / col_norm[j];
      if (v > best_val) {
        best_val = v;
        best = j;
      }
    }
    if (best == n || best_val == 0.0) break;  // nothing left correlates

    picked[best] = true;
    sol.support.push_back(best);
    ++sol.iterations;

    // Refit all selected coefficients jointly (the "orthogonal" step).
    const Matrix a_sub = a.select_cols(sol.support);
    coef_on_support = solve_ols(a_sub, y);

    residual.assign(y.begin(), y.end());
    const Vector fitted = a_sub * coef_on_support;
    for (std::size_t i = 0; i < m; ++i) residual[i] -= fitted[i];

    const double res = norm2(residual);
    if (opts.min_improvement > 0.0 &&
        prev_res - res < opts.min_improvement * std::max(y_norm, 1e-300)) {
      // The atom bought almost nothing: undo it and stop.
      picked[best] = false;
      sol.support.pop_back();
      --sol.iterations;
      if (!sol.support.empty()) {
        const Matrix a_prev = a.select_cols(sol.support);
        coef_on_support = solve_ols(a_prev, y);
        residual.assign(y.begin(), y.end());
        const Vector f = a_prev * coef_on_support;
        for (std::size_t i = 0; i < m; ++i) residual[i] -= f[i];
      } else {
        coef_on_support.clear();
        residual.assign(y.begin(), y.end());
      }
      break;
    }
    prev_res = res;
  }

  for (std::size_t i = 0; i < sol.support.size(); ++i) {
    sol.coefficients[sol.support[i]] = coef_on_support[i];
  }
  sol.residual_norm = norm2(residual);
  if (obs::attached()) {
    obs::add_counter("cs.omp.solves");
    obs::add_counter("cs.omp.iterations",
                     static_cast<double>(sol.iterations));
    obs::observe("cs.omp.residual_rel",
                 sol.residual_norm / std::max(y_norm, 1e-300));
  }
  return sol;
}

Vector reconstruct(const Matrix& basis, const SparseSolution& sol) {
  if (basis.cols() != sol.coefficients.size()) {
    throw std::invalid_argument("reconstruct: basis/coefficient mismatch");
  }
  // Exploit sparsity: synthesize from the support only.
  Vector x(basis.rows(), 0.0);
  for (std::size_t j : sol.support) {
    const double c = sol.coefficients[j];
    if (c == 0.0) continue;
    for (std::size_t i = 0; i < basis.rows(); ++i) x[i] += basis(i, j) * c;
  }
  return x;
}

}  // namespace sensedroid::cs
