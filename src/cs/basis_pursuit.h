// L1-norm sparse recovery (eqs. 9-10): basis pursuit via linear
// programming.
//
// The paper introduces slack variables theta with -theta_i <= alpha_i <=
// theta_i and minimizes sum(theta) (eq. 10).  We solve the classic
// equivalent standard-form LP obtained by the positive/negative split
// alpha = u - v, u,v >= 0, min sum(u+v) s.t. A(u-v) = y: at any optimum at
// most one of u_i, v_i is nonzero, so sum(u_i + v_i) = |alpha_i| = theta_i
// — exactly the paper's objective, with M equality constraints instead of
// M + 2K.
#pragma once

#include <span>

#include "cs/omp.h"
#include "cs/simplex.h"
#include "linalg/matrix.h"

namespace sensedroid::cs {

struct BasisPursuitOptions {
  SimplexOptions lp;            ///< forwarded to the simplex engine
  double support_tol = 1e-7;    ///< |alpha_i| above this counts as support
};

/// Solves min ||alpha||_1 s.t. A alpha = y exactly (noise-free BP).
/// Returns the solution with support extracted; throws
/// std::invalid_argument on shape mismatch and std::runtime_error when the
/// LP reports infeasible/unbounded (cannot happen for consistent systems).
SparseSolution basis_pursuit(const Matrix& a, std::span<const double> y,
                             const BasisPursuitOptions& opts = {});

}  // namespace sensedroid::cs
