// L1-norm sparse recovery (eqs. 9-10): basis pursuit via linear
// programming.
//
// The paper introduces slack variables theta with -theta_i <= alpha_i <=
// theta_i and minimizes sum(theta) (eq. 10).  We solve the classic
// equivalent standard-form LP obtained by the positive/negative split
// alpha = u - v, u,v >= 0, min sum(u+v) s.t. A(u-v) = y: at any optimum at
// most one of u_i, v_i is nonzero, so sum(u_i + v_i) = |alpha_i| = theta_i
// — exactly the paper's objective, with M equality constraints instead of
// M + 2K.  The revised engine (default) never materializes the [A, -A]
// doubling; see simplex_solve_bp.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cs/omp.h"
#include "cs/simplex.h"
#include "linalg/matrix.h"

namespace sensedroid::cs {

struct BasisPursuitOptions {
  SimplexOptions lp;            ///< forwarded to the simplex engine
  double support_tol = 1e-7;    ///< |alpha_i| above this counts as support
};

/// Full basis-pursuit result: the recovered sparse solution plus the LP
/// status and final basis (ids as in simplex_solve_bp: column j < n is
/// +alpha_j, n + j is -alpha_j, 2n + r is row r's artificial).  Feed
/// `basis` into BasisPursuitOptions::lp.warm_basis to warm-start a
/// related solve — same y with a grown dictionary, or same dictionary
/// with an evolved y (both keep the old basis primal feasible).
struct BpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  SparseSolution solution;             ///< valid when status == kOptimal
  std::vector<std::size_t> basis;
  std::size_t iterations = 0;
};

/// Solves min ||alpha||_1 s.t. A alpha = y (noise-free BP) and reports
/// the LP status instead of throwing on non-optimal outcomes — the
/// building block for warm-started refit chains (cs::chs) and
/// cancellation-aware callers.  Throws std::invalid_argument on shape
/// mismatch only.
BpSolution bp_solve(const Matrix& a, std::span<const double> y,
                    const BasisPursuitOptions& opts = {});

/// Convenience wrapper around bp_solve: returns the sparse solution,
/// throws std::runtime_error when the LP reports anything but optimal
/// (cannot happen for consistent systems).
SparseSolution basis_pursuit(const Matrix& a, std::span<const double> y,
                             const BasisPursuitOptions& opts = {});

}  // namespace sensedroid::cs
