#include "cs/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::cs {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

// Dense tableau: rows 0..m-1 are constraints, row m is the (reduced) cost
// row.  Column layout: structural+artificial variables, last column = RHS.
class Tableau {
 public:
  Tableau(std::size_t m, std::size_t n_total)
      : m_(m), n_(n_total), t_((m + 1) * (n_total + 1), 0.0) {}

  double& at(std::size_t r, std::size_t c) { return t_[r * (n_ + 1) + c]; }
  double at(std::size_t r, std::size_t c) const {
    return t_[r * (n_ + 1) + c];
  }
  double& rhs(std::size_t r) { return at(r, n_); }
  double rhs(std::size_t r) const { return at(r, n_); }
  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double p = at(pr, pc);
    const double inv = 1.0 / p;
    for (std::size_t c = 0; c <= n_; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;
    for (std::size_t r = 0; r <= m_; ++r) {
      if (r == pr) continue;
      const double f = at(r, pc);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c <= n_; ++c) at(r, c) -= f * at(pr, c);
      at(r, pc) = 0.0;
    }
  }

 private:
  std::size_t m_, n_;
  std::vector<double> t_;
};

// Runs simplex iterations until optimal/unbounded/limit.  `allowed` marks
// columns eligible to enter the basis (used in phase 2 to freeze
// artificials out).  Uses Bland's rule: smallest-index entering column
// with negative reduced cost, smallest-index tie-break on the ratio test.
LpStatus iterate(Tableau& t, std::vector<std::size_t>& basis,
                 const std::vector<bool>& allowed, double tol,
                 std::size_t max_iters, std::size_t& iter_count) {
  const std::size_t m = t.rows();
  const std::size_t n = t.cols();
  for (; iter_count < max_iters; ++iter_count) {
    // Entering column: Bland — first allowed column with cost < -tol.
    std::size_t enter = n;
    for (std::size_t c = 0; c < n; ++c) {
      if (allowed[c] && t.at(m, c) < -tol) {
        enter = c;
        break;
      }
    }
    if (enter == n) return LpStatus::kOptimal;

    // Ratio test: min rhs/col over positive column entries; Bland
    // tie-break by basis variable index.
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      const double a = t.at(r, enter);
      if (a > tol) {
        const double ratio = t.rhs(r) / a;
        if (ratio < best_ratio - tol ||
            (std::abs(ratio - best_ratio) <= tol && leave < m &&
             basis[r] < basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m) return LpStatus::kUnbounded;

    t.pivot(leave, enter);
    basis[leave] = enter;
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

LpSolution simplex_solve(const LpProblem& problem,
                         const SimplexOptions& opts) {
  const std::size_t m = problem.a.rows();
  const std::size_t n = problem.a.cols();
  if (problem.b.size() != m) {
    throw std::invalid_argument("simplex_solve: b size mismatch");
  }
  if (problem.c.size() != n) {
    throw std::invalid_argument("simplex_solve: c size mismatch");
  }

  obs::ScopedSpan span("cs.simplex.solve");
  obs::ScopedTimer timer("cs.simplex.solve_us");

  const double tol = opts.tol;
  const std::size_t max_iters =
      opts.max_iterations != 0 ? opts.max_iterations
                               : 200 + 40 * (m + n);

  // Total columns: n structural + m artificial.
  Tableau t(m, n + m);
  std::vector<std::size_t> basis(m);
  for (std::size_t r = 0; r < m; ++r) {
    const double sign = problem.b[r] < 0.0 ? -1.0 : 1.0;
    for (std::size_t c = 0; c < n; ++c) {
      t.at(r, c) = sign * problem.a(r, c);
    }
    t.at(r, n + r) = 1.0;  // artificial
    t.rhs(r) = sign * problem.b[r];
    basis[r] = n + r;
  }

  LpSolution sol;
  // Records on every exit path (optimal, infeasible, iteration limit).
  struct Recorder {
    const LpSolution& s;
    ~Recorder() {
      if (!obs::attached()) return;
      obs::add_counter("cs.simplex.solves");
      obs::add_counter("cs.simplex.pivots",
                       static_cast<double>(s.iterations));
      obs::add_counter("cs.simplex.outcome", {{"status", to_string(s.status)}},
                       1.0);
    }
  } recorder{sol};

  // ---- Phase 1: minimize sum of artificials. ----
  // Cost row = -(sum of constraint rows) expresses the phase-1 reduced
  // costs with the artificial basis already priced out.
  for (std::size_t c = 0; c <= n + m; ++c) {
    double s = 0.0;
    for (std::size_t r = 0; r < m; ++r) s += t.at(r, c);
    t.at(m, c) = -s;
  }
  for (std::size_t r = 0; r < m; ++r) t.at(m, n + r) = 0.0;

  std::vector<bool> allow_all(n + m, true);
  sol.status = iterate(t, basis, allow_all, tol, max_iters, sol.iterations);
  if (sol.status == LpStatus::kIterationLimit) return sol;
  // Feasible iff the artificial sum reached ~0 (objective row RHS is
  // -(sum of artificials)).
  if (std::abs(t.rhs(m)) > 1e-6) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }

  // Drive any artificial still in the basis out (degenerate but possible).
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) continue;
    std::size_t enter = n;
    for (std::size_t c = 0; c < n; ++c) {
      if (std::abs(t.at(r, c)) > tol) {
        enter = c;
        break;
      }
    }
    if (enter < n) {
      t.pivot(r, enter);
      basis[r] = enter;
    }
    // If the whole row is zero the constraint was redundant; the
    // artificial stays basic at value 0, which is harmless.
  }

  // ---- Phase 2: original objective, artificials frozen. ----
  std::vector<bool> allow(n + m, false);
  for (std::size_t c = 0; c < n; ++c) allow[c] = true;
  for (std::size_t c = 0; c <= n + m; ++c) t.at(m, c) = 0.0;
  for (std::size_t c = 0; c < n; ++c) t.at(m, c) = problem.c[c];
  // Price out the current basis.
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] >= n) continue;
    const double cb = problem.c[basis[r]];
    if (cb == 0.0) continue;
    for (std::size_t c = 0; c <= n + m; ++c) {
      t.at(m, c) -= cb * t.at(r, c);
    }
  }

  sol.status = iterate(t, basis, allow, tol, max_iters, sol.iterations);
  if (sol.status != LpStatus::kOptimal) return sol;

  sol.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) sol.x[basis[r]] = t.rhs(r);
  }
  sol.objective = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    sol.objective += problem.c[c] * sol.x[c];
  }
  return sol;
}

}  // namespace sensedroid::cs
