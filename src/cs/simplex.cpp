#include "cs/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "linalg/updatable_lu.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sensedroid::cs {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal: return "optimal";
    case LpStatus::kInfeasible: return "infeasible";
    case LpStatus::kUnbounded: return "unbounded";
    case LpStatus::kIterationLimit: return "iteration-limit";
    case LpStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

// ------------------------------------------------------------------ tableau
// The original dense-tableau engine, kept verbatim as the equivalence
// oracle behind SimplexEngine::kTableau.

// Dense tableau: rows 0..m-1 are constraints, row m is the (reduced) cost
// row.  Column layout: structural+artificial variables, last column = RHS.
class Tableau {
 public:
  Tableau(std::size_t m, std::size_t n_total)
      : m_(m), n_(n_total), t_((m + 1) * (n_total + 1), 0.0) {}

  double& at(std::size_t r, std::size_t c) { return t_[r * (n_ + 1) + c]; }
  double at(std::size_t r, std::size_t c) const {
    return t_[r * (n_ + 1) + c];
  }
  double& rhs(std::size_t r) { return at(r, n_); }
  double rhs(std::size_t r) const { return at(r, n_); }
  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double p = at(pr, pc);
    const double inv = 1.0 / p;
    for (std::size_t c = 0; c <= n_; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;
    for (std::size_t r = 0; r <= m_; ++r) {
      if (r == pr) continue;
      const double f = at(r, pc);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c <= n_; ++c) at(r, c) -= f * at(pr, c);
      at(r, pc) = 0.0;
    }
  }

 private:
  std::size_t m_, n_;
  std::vector<double> t_;
};

// Runs simplex iterations until optimal/unbounded/limit.  `allowed` marks
// columns eligible to enter the basis (used in phase 2 to freeze
// artificials out).  Uses Bland's rule: smallest-index entering column
// with negative reduced cost, smallest-index tie-break on the ratio test.
LpStatus tableau_iterate(Tableau& t, std::vector<std::size_t>& basis,
                         const std::vector<bool>& allowed, double tol,
                         std::size_t max_iters, const CancelToken* cancel,
                         std::size_t& iter_count) {
  const std::size_t m = t.rows();
  const std::size_t n = t.cols();
  for (; iter_count < max_iters; ++iter_count) {
    if (poll_cancelled(cancel)) return LpStatus::kCancelled;
    // Entering column: Bland — first allowed column with cost < -tol.
    std::size_t enter = n;
    for (std::size_t c = 0; c < n; ++c) {
      if (allowed[c] && t.at(m, c) < -tol) {
        enter = c;
        break;
      }
    }
    if (enter == n) return LpStatus::kOptimal;

    // Ratio test: min rhs/col over positive column entries; Bland
    // tie-break by basis variable index.
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < m; ++r) {
      const double a = t.at(r, enter);
      if (a > tol) {
        const double ratio = t.rhs(r) / a;
        if (ratio < best_ratio - tol ||
            (std::abs(ratio - best_ratio) <= tol && leave < m &&
             basis[r] < basis[leave])) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave == m) return LpStatus::kUnbounded;

    t.pivot(leave, enter);
    basis[leave] = enter;
  }
  return LpStatus::kIterationLimit;
}

LpSolution tableau_solve(const Matrix& a, std::span<const double> b,
                         std::span<const double> c,
                         const SimplexOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const double tol = opts.tol;
  const std::size_t max_iters =
      opts.max_iterations != 0 ? opts.max_iterations : 200 + 40 * (m + n);

  // Total columns: n structural + m artificial.
  Tableau t(m, n + m);
  std::vector<std::size_t> basis(m);
  for (std::size_t r = 0; r < m; ++r) {
    const double sign = b[r] < 0.0 ? -1.0 : 1.0;
    for (std::size_t col = 0; col < n; ++col) {
      t.at(r, col) = sign * a(r, col);
    }
    t.at(r, n + r) = 1.0;  // artificial
    t.rhs(r) = sign * b[r];
    basis[r] = n + r;
  }

  LpSolution sol;
  // ---- Phase 1: minimize sum of artificials. ----
  // Cost row = -(sum of constraint rows) expresses the phase-1 reduced
  // costs with the artificial basis already priced out.
  for (std::size_t col = 0; col <= n + m; ++col) {
    double s = 0.0;
    for (std::size_t r = 0; r < m; ++r) s += t.at(r, col);
    t.at(m, col) = -s;
  }
  for (std::size_t r = 0; r < m; ++r) t.at(m, n + r) = 0.0;

  std::vector<bool> allow_all(n + m, true);
  sol.status = tableau_iterate(t, basis, allow_all, tol, max_iters,
                               opts.cancel, sol.iterations);
  sol.basis = basis;
  if (sol.status != LpStatus::kOptimal) return sol;
  // Feasible iff the artificial sum reached ~0 (objective row RHS is
  // -(sum of artificials)).
  if (std::abs(t.rhs(m)) > 1e-6) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }

  // Drive any artificial still in the basis out (degenerate but possible).
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) continue;
    std::size_t enter = n;
    for (std::size_t col = 0; col < n; ++col) {
      if (std::abs(t.at(r, col)) > tol) {
        enter = col;
        break;
      }
    }
    if (enter < n) {
      t.pivot(r, enter);
      basis[r] = enter;
    }
    // If the whole row is zero the constraint was redundant; the
    // artificial stays basic at value 0, which is harmless.
  }

  // ---- Phase 2: original objective, artificials frozen. ----
  std::vector<bool> allow(n + m, false);
  for (std::size_t col = 0; col < n; ++col) allow[col] = true;
  for (std::size_t col = 0; col <= n + m; ++col) t.at(m, col) = 0.0;
  for (std::size_t col = 0; col < n; ++col) t.at(m, col) = c[col];
  // Price out the current basis.
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] >= n) continue;
    const double cb = c[basis[r]];
    if (cb == 0.0) continue;
    for (std::size_t col = 0; col <= n + m; ++col) {
      t.at(m, col) -= cb * t.at(r, col);
    }
  }

  sol.status = tableau_iterate(t, basis, allow, tol, max_iters, opts.cancel,
                               sol.iterations);
  sol.basis = basis;
  if (sol.status != LpStatus::kOptimal) return sol;

  sol.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (basis[r] < n) sol.x[basis[r]] = t.rhs(r);
  }
  sol.objective = 0.0;
  for (std::size_t col = 0; col < n; ++col) {
    sol.objective += c[col] * sol.x[col];
  }
  return sol;
}

// ------------------------------------------------------------------ revised
//
// Column providers.  The engine only touches the constraint matrix
// through these four calls, so the BP provider can serve the 2n-wide
// [A, -A] universe from the m x n dictionary without ever forming it.

// Explicit columns of a general standard-form LP.
struct ExplicitColumns {
  const Matrix& a;
  std::span<const double> c;

  std::size_t rows() const { return a.rows(); }
  std::size_t nstruct() const { return a.cols(); }
  double cost(std::size_t j) const { return c[j]; }
  void col_into(std::size_t j, std::span<double> out) const {
    a.col_into(j, out);
  }
  /// out[j] = a_j . w for every structural column, one kernel sweep.
  void dots(std::span<const double> w, std::span<double> out) const {
    a.transpose_times_into(w, out);
  }
  void col_sqnorms(std::span<double> out) const { a.col_sqnorms_into(out); }
};

// The [A, -A] universe of basis pursuit: column j < n is +A_j, column
// n + j is -A_j, both with unit cost.  One A^T w sweep prices all 2n.
struct BpColumns {
  const Matrix& a;

  std::size_t rows() const { return a.rows(); }
  std::size_t nstruct() const { return 2 * a.cols(); }
  double cost(std::size_t) const { return 1.0; }
  void col_into(std::size_t j, std::span<double> out) const {
    const std::size_t n = a.cols();
    if (j < n) {
      a.col_into(j, out);
    } else {
      a.col_into(j - n, out);
      for (double& v : out) v = -v;
    }
  }
  void dots(std::span<const double> w, std::span<double> out) const {
    const std::size_t n = a.cols();
    a.transpose_times_into(w, out.subspan(0, n));
    for (std::size_t j = 0; j < n; ++j) out[n + j] = -out[j];
  }
  void col_sqnorms(std::span<double> out) const {
    const std::size_t n = a.cols();
    a.col_sqnorms_into(out.subspan(0, n));
    for (std::size_t j = 0; j < n; ++j) out[n + j] = out[j];
  }
  /// Dantzig entering choice specialized to the paired universe: with
  /// z_{n+j} = -z_j and both members at unit cost, the pair's best
  /// reduced cost is cost - |z_j|, and at most one member is eligible
  /// (the one matching sign(z_j)).  One A^T w sweep plus one |z| scan of
  /// n entries replaces the generic 2n reduced-cost pass — the generic
  /// scan was the single most expensive step of a BP pivot.  Ordering
  /// matches the generic scan (first strictly-best index wins), so this
  /// is a pure strength reduction, not a pricing change.
  /// The paired universe makes ANY nonsingular column selection a
  /// feasible starting basis: with B' = B D (D a diagonal of signs),
  /// x_B = D B^{-1} y = |B^{-1} y| >= 0 once every negative component
  /// swaps its column for the mirrored one.  Candidates are the m
  /// columns most correlated with y (ties to the lower index), so phase
  /// 1 is skipped outright and phase 2 opens near the l1 optimum.
  std::vector<std::size_t> crash_candidates(std::span<const double> b) const {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (n < m) return {};
    std::vector<double> z(n);
    a.transpose_times_into(b, z);
    std::vector<std::size_t> order(n);
    for (std::size_t j = 0; j < n; ++j) order[j] = j;
    std::partial_sort(order.begin(), order.begin() + m, order.end(),
                      [&](std::size_t l, std::size_t r) {
                        const double zl = std::abs(z[l]);
                        const double zr = std::abs(z[r]);
                        if (zl != zr) return zl > zr;
                        return l < r;
                      });
    order.resize(m);
    return order;
  }
  std::size_t mirror(std::size_t j) const {
    const std::size_t n = a.cols();
    return j < n ? j + n : j - n;
  }
  std::size_t dantzig_enter(std::span<const double> w, std::span<double> z,
                            const std::uint8_t* is_basic, bool phase1,
                            double tol) const {
    const std::size_t n = a.cols();
    a.transpose_times_into(w, z.subspan(0, n));
    double best = (phase1 ? 0.0 : 1.0) + tol;
    std::size_t enter = kNoIndex;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = std::abs(z[j]);
      if (v > best) {
        const std::size_t id = z[j] > 0.0 ? j : n + j;
        if (!is_basic[id]) {
          best = v;
          enter = id;
        }
      }
    }
    return enter;
  }
};

// Revised-simplex driver over a column provider.  Artificial variable r
// carries internal id nstruct() + r (exactly the exported basis-id
// convention), with column sign(b_r) * e_r so the all-artificial cold
// start is feasible at x = |b|.
template <typename Columns>
class RevisedSimplex {
 public:
  RevisedSimplex(const Columns& cols, std::span<const double> b,
                 const SimplexOptions& opts)
      : cols_(cols),
        b_(b),
        opts_(opts),
        m_(b.size()),
        ns_(cols.nstruct()),
        lu_(m_),
        basis_(m_),
        is_basic_(ns_, 0),
        xb_(m_, 0.0),
        cb_(m_, 0.0),
        w_(m_, 0.0),
        d_(m_, 0.0),
        colbuf_(m_, 0.0),
        rc_(ns_, 0.0) {
    art_sign_.resize(m_);
    for (std::size_t r = 0; r < m_; ++r) {
      art_sign_[r] = b_[r] < 0.0 ? -1.0 : 1.0;
    }
    bscale_ = 1.0;
    for (const double v : b_) bscale_ = std::max(bscale_, std::abs(v));
    feas_eps_ = 1e-7 * bscale_;
    max_iters_ = opts.max_iterations != 0 ? opts.max_iterations
                                          : 200 + 40 * (m_ + ns_);
  }

  LpSolution run() {
    LpSolution sol;
    if (m_ == 0) {
      sol.status = LpStatus::kOptimal;
      sol.x.assign(ns_, 0.0);
      return sol;
    }

    bool warm = try_warm_start();
    if (!warm && try_crash_start()) warm = true;
    if (!warm) cold_start();

    if (!warm) {
      const LpStatus p1 = iterate(/*phase1=*/true, sol.iterations);
      if (p1 != LpStatus::kOptimal) {
        sol.status = p1;
        export_basis(sol);
        return sol;
      }
      double infeas = 0.0;
      for (std::size_t r = 0; r < m_; ++r) {
        if (basis_[r] >= ns_) infeas += std::max(xb_[r], 0.0);
      }
      if (infeas > 1e-6 * bscale_) {
        sol.status = LpStatus::kInfeasible;
        export_basis(sol);
        return sol;
      }
      drive_out_artificials();
    }

    const LpStatus p2 = iterate(/*phase1=*/false, sol.iterations);
    sol.status = p2;
    export_basis(sol);
    if (p2 != LpStatus::kOptimal) return sol;

    sol.x.assign(ns_, 0.0);
    sol.objective = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < ns_) {
        const double v = std::max(xb_[r], 0.0);
        sol.x[basis_[r]] = v;
        sol.objective += cols_.cost(basis_[r]) * v;
      }
    }
    if (refactors_ > 0 && obs::attached()) {
      obs::add_counter("cs.simplex.refactorizations",
                       static_cast<double>(refactors_));
    }
    return sol;
  }

 private:
  void column_of(std::size_t id, std::span<double> out) const {
    if (id < ns_) {
      cols_.col_into(id, out);
    } else {
      std::fill(out.begin(), out.end(), 0.0);
      out[id - ns_] = art_sign_[id - ns_];
    }
  }

  // Builds the basis matrix from the current basis ids and refactorizes;
  // recomputes x_B from scratch.  False only when the basis is singular
  // to working precision (should not happen for a genuine simplex basis).
  bool refactorize() {
    Matrix bm(m_, m_);
    Vector col(m_);
    for (std::size_t s = 0; s < m_; ++s) {
      column_of(basis_[s], col);
      for (std::size_t i = 0; i < m_; ++i) bm(i, s) = col[i];
    }
    if (!lu_.factor(bm)) return false;
    ++refactors_;
    recompute_xb();
    return true;
  }

  void recompute_xb() {
    lu_.ftran(b_, xb_);
    for (double& v : xb_) {
      if (v < 0.0 && v > -feas_eps_) v = 0.0;
    }
  }

  void cold_start() {
    for (std::size_t r = 0; r < m_; ++r) basis_[r] = ns_ + r;
    std::fill(is_basic_.begin(), is_basic_.end(), 0);
    refactorize();  // diagonal of +/-1: cannot fail
  }

  // Accept the caller's basis when it is nonsingular, primal feasible,
  // and carries no artificial slack — then phase 1 is skipped outright.
  bool try_warm_start() {
    const auto& wb = opts_.warm_basis;
    if (wb.size() != m_) return false;
    std::vector<std::uint8_t> seen(ns_ + m_, 0);
    for (const std::size_t id : wb) {
      if (id >= ns_ + m_ || seen[id]) return false;
      seen[id] = 1;
    }
    std::copy(wb.begin(), wb.end(), basis_.begin());
    std::fill(is_basic_.begin(), is_basic_.end(), 0);
    for (const std::size_t id : wb) {
      if (id < ns_) is_basic_[id] = 1;
    }
    if (!refactorize()) return false;
    for (std::size_t r = 0; r < m_; ++r) {
      if (xb_[r] < 0.0) return false;  // primal infeasible for this b
      if (basis_[r] >= ns_ && xb_[r] > feas_eps_) return false;
    }
    if (obs::attached()) obs::add_counter("cs.simplex.warm_starts");
    return true;
  }

  // Column providers whose universe admits a direct feasible basis (the
  // BP pairing) expose crash_candidates/mirror; everyone else falls
  // through to the artificial phase-1 start.  On success the basis is
  // feasible by construction, so phase 1 is skipped like a warm start.
  bool try_crash_start() {
    if constexpr (requires {
                    cols_.crash_candidates(std::span<const double>{});
                    cols_.mirror(std::size_t{});
                  }) {
      const std::vector<std::size_t> ids = cols_.crash_candidates(b_);
      if (ids.size() != m_) return false;
      std::copy(ids.begin(), ids.end(), basis_.begin());
      std::fill(is_basic_.begin(), is_basic_.end(), 0);
      for (const std::size_t id : ids) is_basic_[id] = 1;
      if (!refactorize()) return false;  // cold_start() resets the state
      bool flipped = false;
      for (std::size_t r = 0; r < m_; ++r) {
        if (xb_[r] < 0.0) {
          is_basic_[basis_[r]] = 0;
          basis_[r] = cols_.mirror(basis_[r]);
          is_basic_[basis_[r]] = 1;
          flipped = true;
        }
      }
      if (flipped && !refactorize()) return false;
      for (std::size_t r = 0; r < m_; ++r) {
        if (xb_[r] < 0.0) return false;
      }
      if (obs::attached()) obs::add_counter("cs.simplex.crash_starts");
      return true;
    }
    return false;
  }

  // Entering-variable choice.  `bland` overrides the configured rule
  // while a degenerate streak lasts.
  std::size_t price(bool phase1, bool bland) {
    // Duals: w = B^{-T} c_B.
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t id = basis_[r];
      cb_[r] = phase1 ? (id >= ns_ ? 1.0 : 0.0)
                      : (id < ns_ ? cols_.cost(id) : 0.0);
    }
    lu_.btran(cb_, w_);
    const double tol = opts_.tol;
    if constexpr (requires {
                    cols_.dantzig_enter(std::span<const double>{},
                                        std::span<double>{},
                                        static_cast<const std::uint8_t*>(
                                            nullptr),
                                        true, 0.0);
                  }) {
      if (!bland && opts_.pricing == SimplexPricing::kDantzig) {
        return cols_.dantzig_enter(w_, rc_, is_basic_.data(), phase1, tol);
      }
    }
    cols_.dots(w_, rc_);  // rc_ holds a_j . w for now
    std::size_t enter = kNoIndex;
    double best = -tol;
    for (std::size_t j = 0; j < ns_; ++j) {
      if (is_basic_[j]) continue;
      const double rc = (phase1 ? 0.0 : cols_.cost(j)) - rc_[j];
      if (rc >= -tol) continue;
      if (bland) return j;  // smallest eligible index
      double score = rc;
      if (opts_.pricing == SimplexPricing::kSteepestEdge) {
        ensure_gammas();
        score = rc / gamma_[j];
      }
      if (score < best) {
        best = score;
        enter = j;
      }
    }
    return enter;
  }

  void ensure_gammas() {
    if (!gamma_.empty()) return;
    gamma_.assign(ns_, 0.0);
    cols_.col_sqnorms(gamma_);
    for (double& g : gamma_) g = std::sqrt(1.0 + g);
  }

  LpStatus iterate(bool phase1, std::size_t& iter_count) {
    const double tol = opts_.tol;
    bool bland = opts_.pricing == SimplexPricing::kBland;
    std::size_t degen_streak = 0;
    const std::size_t bland_trigger = 2 * m_ + 16;

    for (; iter_count < max_iters_; ++iter_count) {
      if (poll_cancelled(opts_.cancel)) return LpStatus::kCancelled;

      const bool bland_now = bland || degen_streak > bland_trigger;
      const std::size_t enter = price(phase1, bland_now);
      if (enter == kNoIndex) return LpStatus::kOptimal;

      cols_.col_into(enter, colbuf_);
      lu_.ftran(colbuf_, d_);

      // Ratio test.  Basic artificials are pinned at zero in phase 2:
      // any one the entering direction touches leaves immediately
      // (theta = 0), or the original equalities would be violated.
      std::size_t leave = kNoIndex;
      double best_ratio = std::numeric_limits<double>::infinity();
      double best_piv = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        const double di = d_[i];
        if (!phase1 && basis_[i] >= ns_ && std::abs(di) > tol) {
          if (best_ratio > 0.0 || std::abs(di) > std::abs(best_piv)) {
            best_ratio = 0.0;
            best_piv = di;
            leave = i;
          }
          continue;
        }
        if (di > tol) {
          const double ratio = std::max(xb_[i], 0.0) / di;
          const bool better =
              ratio < best_ratio - tol ||
              (ratio <= best_ratio + tol &&
               (bland_now ? (leave != kNoIndex && basis_[i] < basis_[leave])
                          : di > best_piv));
          if (leave == kNoIndex || better) {
            if (ratio < best_ratio) best_ratio = ratio;
            best_piv = di;
            leave = i;
          }
        }
      }
      if (leave == kNoIndex) return LpStatus::kUnbounded;

      const double theta = std::max(best_ratio, 0.0);
      if (theta > 0.0) {
        for (std::size_t i = 0; i < m_; ++i) xb_[i] -= theta * d_[i];
      }
      xb_[leave] = theta;
      const std::size_t old_id = basis_[leave];
      if (old_id < ns_) is_basic_[old_id] = 0;
      basis_[leave] = enter;
      is_basic_[enter] = 1;

      if (lu_.updates_since_factor() + 1 >= opts_.refactor_interval) {
        if (!refactorize()) return LpStatus::kIterationLimit;
      } else if (!lu_.replace_column(leave, colbuf_)) {
        // Unstable update: rebuild from the true basis columns.
        if (!refactorize()) return LpStatus::kIterationLimit;
      }

      if (theta <= tol) {
        ++degen_streak;  // Bland fallback arms after a long streak
      } else {
        degen_streak = 0;
      }
    }
    return LpStatus::kIterationLimit;
  }

  // Post-phase-1 cleanup: swap basic (zero-valued) artificials for any
  // structural column with a nonzero entry in that basis row.  One
  // B^{-T} e_r + one pricing-style sweep per stuck artificial; rows with
  // an all-zero structural row are redundant and keep their artificial.
  void drive_out_artificials() {
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < ns_) continue;
      std::fill(cb_.begin(), cb_.end(), 0.0);
      cb_[r] = 1.0;
      lu_.btran(cb_, w_);     // row r of B^{-1}, in constraint space
      cols_.dots(w_, rc_);    // entries of that row across all columns
      std::size_t enter = kNoIndex;
      double best = opts_.tol;
      for (std::size_t j = 0; j < ns_; ++j) {
        if (is_basic_[j]) continue;
        if (std::abs(rc_[j]) > best) {
          best = std::abs(rc_[j]);
          enter = j;
        }
      }
      if (enter == kNoIndex) continue;  // redundant constraint
      cols_.col_into(enter, colbuf_);
      basis_[r] = enter;
      is_basic_[enter] = 1;
      if (!lu_.replace_column(r, colbuf_)) {
        if (!refactorize()) continue;
      } else {
        recompute_xb();
      }
    }
  }

  void export_basis(LpSolution& sol) const { sol.basis = basis_; }

  const Columns& cols_;
  std::span<const double> b_;
  const SimplexOptions& opts_;
  std::size_t m_;
  std::size_t ns_;
  linalg::UpdatableLU lu_;
  std::vector<std::size_t> basis_;
  std::vector<std::uint8_t> is_basic_;
  Vector xb_, cb_, w_, d_, colbuf_, rc_;
  Vector art_sign_;
  Vector gamma_;  // steepest-edge reference weights, built on demand
  double bscale_ = 1.0;
  double feas_eps_ = 1e-7;
  std::size_t max_iters_ = 0;
  std::size_t refactors_ = 0;
};

// Records solve metrics on every exit path (optimal, infeasible, limit).
struct Recorder {
  const LpSolution& s;
  ~Recorder() {
    if (!obs::attached()) return;
    obs::add_counter("cs.simplex.solves");
    obs::add_counter("cs.simplex.pivots", static_cast<double>(s.iterations));
    obs::add_counter("cs.simplex.outcome", {{"status", to_string(s.status)}},
                     1.0);
  }
};

}  // namespace

LpSolution simplex_solve(const LpProblem& problem,
                         const SimplexOptions& opts) {
  const std::size_t m = problem.a.rows();
  const std::size_t n = problem.a.cols();
  if (problem.b.size() != m) {
    throw std::invalid_argument("simplex_solve: b size mismatch");
  }
  if (problem.c.size() != n) {
    throw std::invalid_argument("simplex_solve: c size mismatch");
  }

  obs::ScopedSpan span("cs.simplex.solve");
  obs::ScopedTimer timer("cs.simplex.solve_us");

  LpSolution sol;
  Recorder recorder{sol};
  if (opts.engine == SimplexEngine::kTableau) {
    sol = tableau_solve(problem.a, problem.b, problem.c, opts);
  } else {
    const ExplicitColumns cols{problem.a, problem.c};
    sol = RevisedSimplex<ExplicitColumns>(cols, problem.b, opts).run();
  }
  return sol;
}

LpSolution simplex_solve_bp(const Matrix& a, std::span<const double> y,
                            const SimplexOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (y.size() != m) {
    throw std::invalid_argument("simplex_solve_bp: y size mismatch");
  }

  obs::ScopedSpan span("cs.simplex.solve");
  obs::ScopedTimer timer("cs.simplex.solve_us");

  LpSolution sol;
  Recorder recorder{sol};
  if (opts.engine == SimplexEngine::kTableau) {
    // Oracle path: materialize [A, -A] and run the dense tableau.  Basis
    // ids already agree: structural < 2n, artificial 2n + r.
    Matrix wide(m, 2 * n);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        wide(r, c) = a(r, c);
        wide(r, n + c) = -a(r, c);
      }
    }
    const Vector ones(2 * n, 1.0);
    sol = tableau_solve(wide, y, ones, opts);
  } else {
    const BpColumns cols{a};
    sol = RevisedSimplex<BpColumns>(cols, y, opts).run();
  }
  return sol;
}

}  // namespace sensedroid::cs
