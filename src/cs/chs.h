// The paper's core reconstruction routine: "Compressive Heterogeneous
// Sensing" (Fig. 6).  Runs primarily in the brokers, and on nodes for
// temporal context processing.
//
// Per iteration:
//   (a) interpolate the residual from the M sensor locations onto the full
//       N-grid (the function Upsilon: R^M -> R^N),
//   (b) analyze it in the basis (alpha_r = Phi^dagger e_new; Phi
//       orthonormal, so the dagger is the transpose),
//   (c) add the most significant coefficient indices I to the support J,
//   (d) refit alpha_K on the support by OLS (homogeneous sensors, eq. 11)
//       or GLS (heterogeneous sensors, eq. 12),
//   (e) recompute the measurement-domain residual; stop when it is small,
//       the support budget is exhausted, or iterations run out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cs/cancel.h"
#include "cs/measurement.h"
#include "linalg/matrix.h"

namespace sensedroid::cs {

/// How Upsilon spreads the residual across unsampled grid points.
enum class Interpolation : std::uint8_t {
  kZeroFill,  ///< unsampled points get 0 (pure projection)
  kNearest,   ///< each grid point copies its nearest sampled residual
  kLinear,    ///< linear interpolation between neighboring sampled points
};

/// Coefficient solver for step (e).
///
/// DEPRECATED shim (DESIGN.md §9): kept so existing configs compile, but
/// new code should name the refit solver through
/// ChsOptions::refit_solver ("ols", "gls", or any registered name) —
/// the enum merely maps onto those two registry entries.
enum class Refit : std::uint8_t {
  kOls,  ///< eq. 11 — homogeneous sensors (registry name "ols")
  kGls,  ///< eq. 12 — weight by noise covariance (registry name "gls")
};

struct ChsOptions {
  /// K budget; 0 = half the measurement count.  Keeping K well below M
  /// preserves overdetermination of eq. 7 — at K == M the refit
  /// interpolates the samples exactly and the off-sample reconstruction
  /// is unconstrained (the epsilon_c blow-up of Section 4).
  std::size_t max_support = 0;
  std::size_t coeffs_per_iter = 4;   ///< |I| added per iteration
  std::size_t max_iterations = 64;
  double residual_tol = 1e-6;        ///< stop at ||e_r|| <= tol * ||x_S||
  /// Upsilon choice.  kZeroFill makes step (b) exact matched filtering
  /// (alpha_r = Phi~^T e_r, the OMP correlation step) and is robust for
  /// any spectrum; kNearest/kLinear pre-smooth the residual, which sharpens
  /// atom selection on smooth physical fields but aliases oscillatory ones.
  Interpolation interpolation = Interpolation::kZeroFill;
  /// Legacy refit selector; consulted only when `refit_solver` is empty.
  Refit refit = Refit::kOls;
  /// Registry name of the step-(e) refit solver (SolverRegistry::global());
  /// empty = derive from the legacy `refit` enum ("ols"/"gls").  The
  /// rank-deficiency fallback to "ridge" applies regardless of choice.
  std::string refit_solver;
  /// Significance threshold: a coefficient is eligible when its magnitude
  /// is at least this fraction of the current largest one.
  double significance = 0.1;
  /// Stop (and roll the last batch back) when a batch shrinks the
  /// residual by less than this relative factor — the noise-fitting guard.
  double min_improvement = 1e-3;
  /// Warm-start support: coefficient indices seeded into J before the
  /// first iteration (deduplicated, clipped to the budget).  Sequential
  /// spatio-temporal reconstruction passes the previous frame's support
  /// here — fields move slowly, so most of yesterday's atoms are still
  /// right.
  std::vector<std::size_t> initial_support;
  /// When > 0, the signal is the eq.-1 column stacking of a 2-D field of
  /// this height (width = N / grid_height) and Upsilon interpolates in
  /// 2-D: kNearest takes the Euclidean-nearest sample, kLinear an
  /// inverse-distance blend of nearby samples.  Must divide N.
  std::size_t grid_height = 0;
  /// Robust-degrade guard: when > 0, readings whose residual from the
  /// sample median exceeds mad_threshold * 1.4826 * MAD are screened out
  /// before the solve (spiking sensors would otherwise drag the OLS/GLS
  /// refit arbitrarily far).  Applied only with >= 8 measurements and a
  /// nonzero MAD; when anything is rejected the result is flagged
  /// degraded.  0 disables screening (seed behavior).  Typical: 4-6.
  double mad_threshold = 0.0;
  /// Cooperative cancellation, polled once per Fig. 6 iteration; the
  /// reconstruction built so far is returned.  nullptr = never cancel.
  const CancelToken* cancel = nullptr;
};

struct ChsResult {
  Vector reconstruction;              ///< x_hat = Phi_K alpha_K, length N
  Vector coefficients;                ///< full-length alpha (zeros off-support)
  std::vector<std::size_t> support;   ///< J, ascending
  double residual_norm = 0.0;         ///< final ||x_S - Phi~_K alpha_K||
  std::size_t iterations = 0;
  std::size_t outliers_rejected = 0;  ///< readings screened out by MAD
  bool degraded = false;              ///< solved on a screened subset
};

/// Runs the Fig. 6 loop.  `basis` is the N x N synthesis basis Phi;
/// `meas` carries the plan (locations L), values x_S, and the noise model
/// used when opts.refit == kGls.  Throws std::invalid_argument on
/// dimension mismatches.
ChsResult chs_reconstruct(const Matrix& basis, const Measurement& meas,
                          const ChsOptions& opts = {});

/// The interpolation operator Upsilon exposed for tests: spreads `values`
/// at sorted `locations` onto a length-n grid.
Vector interpolate_to_grid(std::span<const double> values,
                           std::span<const std::size_t> locations,
                           std::size_t n, Interpolation kind);

/// 2-D Upsilon over a column-stacked height x (n/height) field:
/// kZeroFill as in 1-D; kNearest copies the Euclidean-nearest sample;
/// kLinear blends the four nearest samples by inverse distance.
/// Throws std::invalid_argument when height does not divide n.
Vector interpolate_to_grid_2d(std::span<const double> values,
                              std::span<const std::size_t> locations,
                              std::size_t n, std::size_t height,
                              Interpolation kind);

}  // namespace sensedroid::cs
