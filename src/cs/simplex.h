// Two-phase primal simplex solvers for standard-form linear programs:
//
//     minimize    c^T x
//     subject to  A x = b,  x >= 0.
//
// Written from scratch because the paper's L1 reconstruction (eqs. 9-10)
// "can be re-formulated as a Linear Programming problem and solved
// efficiently"; this is that LP engine.  Two interchangeable engines:
//
//  - kRevised (default): revised simplex over an m x m LU-factorized
//    basis (linalg::UpdatableLU, Bartels-Golub column replacement,
//    periodic refactorization), Dantzig or static steepest-edge pricing
//    with an automatic Bland fallback after a degenerate-pivot streak,
//    and warm starting from an exported basis.  Per pivot: O(m^2) basis
//    work + one pricing sweep — the 2n-wide tableau is never formed.
//  - kTableau: the original dense tableau with Bland's rule, kept as the
//    slow-but-simple oracle for equivalence tests.
//
// simplex_solve_bp solves the basis-pursuit LP min 1^T [u; v] subject to
// [A, -A] [u; v] = y directly from the m x n dictionary: the +/- column
// pairing means the reduced costs of all 2n structural columns come from
// a single A^T w sweep through the fused kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cs/cancel.h"
#include "linalg/matrix.h"

namespace sensedroid::cs {

using linalg::Matrix;
using linalg::Vector;

/// A standard-form LP.  b may have any sign (rows are normalized
/// internally); x is implicitly constrained non-negative.
struct LpProblem {
  Matrix a;  ///< constraint matrix, M x N
  Vector b;  ///< right-hand side, length M
  Vector c;  ///< cost vector, length N
};

enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kCancelled,
};

/// Human-readable status name.
const char* to_string(LpStatus status);

/// Which pivoting machinery runs the solve.
enum class SimplexEngine : std::uint8_t {
  kRevised,  ///< LU-factorized basis, Dantzig/steepest-edge pricing
  kTableau,  ///< dense tableau, Bland's rule (the equivalence oracle)
};

/// Entering-variable rule of the revised engine (the tableau engine is
/// always Bland).  Every rule auto-falls-back to Bland after a streak of
/// degenerate pivots and returns to its own rule once progress resumes —
/// the anti-cycling guarantee without Bland's slow tail.
enum class SimplexPricing : std::uint8_t {
  kDantzig,       ///< most negative reduced cost
  kSteepestEdge,  ///< reduced cost scaled by 1/sqrt(1 + ||a_j||^2),
                  ///< static reference weights (computed once per solve)
  kBland,         ///< smallest eligible index (anti-cycling, slowest)
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  Vector x;                 ///< primal solution (valid when optimal)
  double objective = 0.0;   ///< c^T x at the solution
  std::size_t iterations = 0;
  /// Final basis, one column id per row slot: ids < N are structural,
  /// N + r is row r's artificial (possible only on redundant rows).
  /// Feed into SimplexOptions::warm_basis to warm-start a related solve.
  std::vector<std::size_t> basis;
};

struct SimplexOptions {
  std::size_t max_iterations = 0;  ///< 0 = auto (scales with problem size)
  double tol = 1e-9;               ///< pivot / feasibility tolerance
  SimplexEngine engine = SimplexEngine::kRevised;
  SimplexPricing pricing = SimplexPricing::kDantzig;
  /// Revised engine: refactorize the basis LU from scratch after this
  /// many Bartels-Golub updates (bounds operation-log fill; instability
  /// triggers refactorization regardless).  The default sits at the
  /// measured knee for sensing-sized bases (m ~ 30): shorter intervals
  /// waste O(m^3) refactorizations, longer ones drag every FTRAN/BTRAN
  /// through a deep operation log.
  std::size_t refactor_interval = 16;
  /// Starting basis for the revised engine (ids as in LpSolution::basis;
  /// empty = cold start).  Accepted when it is nonsingular and primal
  /// feasible for this b — then phase 1 is skipped entirely; otherwise
  /// the solve silently falls back to a cold start.
  std::vector<std::size_t> warm_basis;
  /// Cooperative cancellation, polled once per pivot (both engines);
  /// returns LpStatus::kCancelled.  nullptr = never cancel.
  const CancelToken* cancel = nullptr;
};

/// Solves the LP.  Throws std::invalid_argument on shape mismatches.
LpSolution simplex_solve(const LpProblem& problem,
                         const SimplexOptions& opts = {});

/// Solves the basis-pursuit LP min 1^T [u; v] s.t. [A, -A][u; v] = y with
/// u, v >= 0, where `a` is the m x n dictionary.  The returned x has
/// length 2n (u first, then v); basis ids live in [0, 2n + m).  The
/// revised engine prices all 2n columns from one A^T w sweep and never
/// materializes the doubled matrix; kTableau builds it explicitly (the
/// oracle).  Throws std::invalid_argument on shape mismatches.
LpSolution simplex_solve_bp(const Matrix& a, std::span<const double> y,
                            const SimplexOptions& opts = {});

}  // namespace sensedroid::cs
