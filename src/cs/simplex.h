// Two-phase primal simplex solver for standard-form linear programs:
//
//     minimize    c^T x
//     subject to  A x = b,  x >= 0.
//
// Written from scratch because the paper's L1 reconstruction (eqs. 9-10)
// "can be re-formulated as a Linear Programming problem and solved
// efficiently"; this is that LP engine.  Dense tableau with Bland's
// anti-cycling rule — problem sizes in a NanoCloud (M tens, N hundreds)
// keep the tableau small.
#pragma once

#include <cstddef>
#include <cstdint>

#include "linalg/matrix.h"

namespace sensedroid::cs {

using linalg::Matrix;
using linalg::Vector;

/// A standard-form LP.  b may have any sign (rows are normalized
/// internally); x is implicitly constrained non-negative.
struct LpProblem {
  Matrix a;  ///< constraint matrix, M x N
  Vector b;  ///< right-hand side, length M
  Vector c;  ///< cost vector, length N
};

enum class LpStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

/// Human-readable status name.
const char* to_string(LpStatus status);

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  Vector x;                 ///< primal solution (valid when optimal)
  double objective = 0.0;   ///< c^T x at the solution
  std::size_t iterations = 0;
};

struct SimplexOptions {
  std::size_t max_iterations = 0;  ///< 0 = auto (scales with problem size)
  double tol = 1e-9;               ///< pivot / feasibility tolerance
};

/// Solves the LP.  Throws std::invalid_argument on shape mismatches.
LpSolution simplex_solve(const LpProblem& problem,
                         const SimplexOptions& opts = {});

}  // namespace sensedroid::cs
