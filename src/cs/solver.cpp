#include "cs/solver.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "cs/basis_pursuit.h"
#include "cs/greedy_variants.h"
#include "cs/least_squares.h"
#include "linalg/vector_ops.h"
#include "obs/metrics.h"

namespace sensedroid::cs {

namespace {

using linalg::norm2;

// Every adapter routes metrics through the context's sink when one is
// given; a local optional because ScopedMetricShard is neither copyable
// nor movable.
struct SinkGuard {
  std::optional<obs::ScopedMetricShard> shard;
  explicit SinkGuard(const SolveContext& ctx) {
    if (ctx.metrics != nullptr) shard.emplace(ctx.metrics);
  }
};

// Wraps a dense least-squares coefficient vector as a full-support
// SparseSolution so the refit solvers fit the common interface.
SparseSolution full_support_solution(const Matrix& a,
                                     std::span<const double> y, Vector coef) {
  SparseSolution s;
  s.support.resize(a.cols());
  std::iota(s.support.begin(), s.support.end(), std::size_t{0});
  const Vector fitted = a * coef;
  Vector r(y.begin(), y.end());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= fitted[i];
  s.residual_norm = norm2(r);
  s.coefficients = std::move(coef);
  s.iterations = 1;
  return s;
}

class OmpSolver final : public SparseSolver {
 public:
  std::string_view name() const noexcept override { return "omp"; }
  SparseSolution solve(const Matrix& a, std::span<const double> y,
                       const SolveContext& ctx) const override {
    SinkGuard guard(ctx);
    OmpOptions o;
    o.max_sparsity = ctx.sparsity;  // 0 = min(M, N), OMP's own default
    if (ctx.residual_tol >= 0.0) o.residual_tol = ctx.residual_tol;
    // ctx.max_iterations is redundant for OMP (one atom per iteration,
    // already bounded by the sparsity budget) and is ignored.
    o.cancel = ctx.cancel;
    return omp_solve(a, y, o);
  }
};

class CosampSolver final : public SparseSolver {
 public:
  std::string_view name() const noexcept override { return "cosamp"; }
  SparseSolution solve(const Matrix& a, std::span<const double> y,
                       const SolveContext& ctx) const override {
    SinkGuard guard(ctx);
    CosampOptions o;
    o.sparsity = ctx.sparsity;  // 0 rejected by cosamp_solve (K-targeted)
    if (ctx.max_iterations) o.max_iterations = ctx.max_iterations;
    if (ctx.residual_tol >= 0.0) o.residual_tol = ctx.residual_tol;
    o.cancel = ctx.cancel;
    return cosamp_solve(a, y, o);
  }
};

class IhtSolver final : public SparseSolver {
 public:
  std::string_view name() const noexcept override { return "iht"; }
  SparseSolution solve(const Matrix& a, std::span<const double> y,
                       const SolveContext& ctx) const override {
    SinkGuard guard(ctx);
    IhtOptions o;
    o.sparsity = ctx.sparsity;  // 0 rejected by iht_solve (K-targeted)
    if (ctx.max_iterations) o.max_iterations = ctx.max_iterations;
    if (ctx.residual_tol >= 0.0) o.residual_tol = ctx.residual_tol;
    o.cancel = ctx.cancel;
    return iht_solve(a, y, o);
  }
};

class BasisPursuitSolver final : public SparseSolver {
 public:
  std::string_view name() const noexcept override { return "bp"; }
  SparseSolution solve(const Matrix& a, std::span<const double> y,
                       const SolveContext& ctx) const override {
    SinkGuard guard(ctx);
    BasisPursuitOptions o;
    if (ctx.max_iterations) o.lp.max_iterations = ctx.max_iterations;
    // The simplex engines poll the token once per pivot; a cancelled
    // solve yields the zero solution (residual = ||y||), same shape as
    // the other solvers' partial results.
    o.lp.cancel = ctx.cancel;
    BpSolution bp = bp_solve(a, y, o);
    if (bp.status == LpStatus::kCancelled) {
      SparseSolution s;
      s.coefficients.assign(a.cols(), 0.0);
      s.residual_norm = norm2(y);
      s.iterations = bp.iterations;
      return s;
    }
    if (bp.status != LpStatus::kOptimal) {
      throw std::runtime_error(std::string("bp solver: LP ") +
                               to_string(bp.status));
    }
    return std::move(bp.solution);
  }
};

class OlsSolver final : public SparseSolver {
 public:
  std::string_view name() const noexcept override { return "ols"; }
  SparseSolution solve(const Matrix& a, std::span<const double> y,
                       const SolveContext& ctx) const override {
    SinkGuard guard(ctx);
    return full_support_solution(a, y, solve_ols(a, y));
  }
};

class GlsSolver final : public SparseSolver {
 public:
  std::string_view name() const noexcept override { return "gls"; }
  SparseSolution solve(const Matrix& a, std::span<const double> y,
                       const SolveContext& ctx) const override {
    SinkGuard guard(ctx);
    // Degrades to OLS when no (or mismatched) noise model is supplied —
    // the homogeneous-fleet limit of eq. 12.
    Vector coef = ctx.noise_stddev.size() == a.rows()
                      ? solve_gls_diag(a, y, ctx.noise_stddev)
                      : solve_ols(a, y);
    return full_support_solution(a, y, std::move(coef));
  }
};

class RidgeSolver final : public SparseSolver {
 public:
  std::string_view name() const noexcept override { return "ridge"; }
  SparseSolution solve(const Matrix& a, std::span<const double> y,
                       const SolveContext& ctx) const override {
    SinkGuard guard(ctx);
    double lambda = ctx.ridge_lambda;
    if (lambda <= 0.0) {
      const double scale = std::max(a.frobenius_norm(), 1e-12);
      lambda = 1e-8 * scale * scale;
    }
    return full_support_solution(a, y, solve_ridge(a, y, lambda));
  }
};

}  // namespace

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry reg;
  static const bool initialized = [] {
    reg.register_solver("omp",
                        [] { return std::make_unique<OmpSolver>(); });
    reg.register_solver("cosamp",
                        [] { return std::make_unique<CosampSolver>(); });
    reg.register_solver("iht",
                        [] { return std::make_unique<IhtSolver>(); });
    reg.register_solver("niht",
                        [] { return std::make_unique<IhtSolver>(); });
    reg.register_solver("bp",
                        [] { return std::make_unique<BasisPursuitSolver>(); });
    reg.register_solver("basis_pursuit",
                        [] { return std::make_unique<BasisPursuitSolver>(); });
    reg.register_solver("ols",
                        [] { return std::make_unique<OlsSolver>(); });
    reg.register_solver("gls",
                        [] { return std::make_unique<GlsSolver>(); });
    reg.register_solver("ridge",
                        [] { return std::make_unique<RidgeSolver>(); });
    return true;
  }();
  (void)initialized;
  return reg;
}

void SolverRegistry::register_solver(std::string name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("SolverRegistry: empty solver name");
  }
  if (!factory) {
    throw std::invalid_argument("SolverRegistry: null factory for '" + name +
                                "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  factories_[std::move(name)] = std::move(factory);
}

std::unique_ptr<SparseSolver> SolverRegistry::create(
    std::string_view name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string msg = "SolverRegistry: unknown solver '";
      msg += name;
      msg += "' (registered:";
      for (const auto& [n, f] : factories_) {
        msg += ' ';
        msg += n;
      }
      msg += ')';
      throw std::invalid_argument(msg);
    }
    factory = it->second;  // copy so the call runs outside the lock
  }
  return factory();
}

bool SolverRegistry::contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> SolverRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(n);
  return out;
}

}  // namespace sensedroid::cs
