// Sequential spatio-temporal reconstruction (Section 3: the framework's
// "unique ability to jointly perform spatio-temporal compressive
// sensing").  Physical fields evolve slowly, so the support found at
// frame t-1 is an excellent prior for frame t: warm-starting the CHS
// loop with it converges in fewer iterations and survives smaller
// measurement budgets.
#pragma once

#include <cstddef>
#include <vector>

#include "cs/chs.h"

namespace sensedroid::cs {

/// Streaming reconstructor: carries the significant support from frame
/// to frame.
class SequentialReconstructor {
 public:
  struct Params {
    ChsOptions chs;              ///< base options for each frame
    /// Carry an atom forward only when |coefficient| is at least this
    /// fraction of the frame's largest — stale atoms age out.
    double carry_significance = 0.05;
    /// Cap on carried atoms (0 = no cap beyond the CHS budget).
    std::size_t max_carry = 0;
  };

  explicit SequentialReconstructor(Params params);

  /// Reconstructs one frame, warm-started by the previous frame's
  /// significant support; updates the carried state.
  ChsResult step(const Matrix& basis, const Measurement& meas);

  /// Forgets the carried support (scene change / relocation).
  void reset() noexcept { carried_.clear(); }

  std::span<const std::size_t> carried_support() const noexcept {
    return carried_;
  }
  std::size_t frames_processed() const noexcept { return frames_; }

 private:
  Params params_;
  std::vector<std::size_t> carried_;
  std::size_t frames_ = 0;
};

}  // namespace sensedroid::cs
