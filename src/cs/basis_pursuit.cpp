#include "cs/basis_pursuit.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "linalg/vector_ops.h"

namespace sensedroid::cs {

SparseSolution basis_pursuit(const Matrix& a, std::span<const double> y,
                             const BasisPursuitOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (y.size() != m) {
    throw std::invalid_argument("basis_pursuit: y size mismatch");
  }

  // Build min 1^T [u; v] s.t. [A, -A][u; v] = y, u,v >= 0.
  LpProblem lp;
  lp.a = Matrix(m, 2 * n);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      lp.a(r, c) = a(r, c);
      lp.a(r, n + c) = -a(r, c);
    }
  }
  lp.b.assign(y.begin(), y.end());
  lp.c.assign(2 * n, 1.0);

  const LpSolution lps = simplex_solve(lp, opts.lp);
  if (lps.status != LpStatus::kOptimal) {
    throw std::runtime_error(std::string("basis_pursuit: LP ") +
                             to_string(lps.status));
  }

  SparseSolution sol;
  sol.coefficients.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    sol.coefficients[i] = lps.x[i] - lps.x[n + i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(sol.coefficients[i]) > opts.support_tol) {
      sol.support.push_back(i);
    }
  }
  sol.iterations = lps.iterations;

  const Vector fitted = a * sol.coefficients;
  sol.residual_norm = linalg::norm2(linalg::subtract(fitted, y));
  return sol;
}

}  // namespace sensedroid::cs
