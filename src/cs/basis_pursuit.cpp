#include "cs/basis_pursuit.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "linalg/vector_ops.h"

namespace sensedroid::cs {

BpSolution bp_solve(const Matrix& a, std::span<const double> y,
                    const BasisPursuitOptions& opts) {
  const std::size_t n = a.cols();

  LpSolution lps = simplex_solve_bp(a, y, opts.lp);

  BpSolution out;
  out.status = lps.status;
  out.basis = std::move(lps.basis);
  out.iterations = lps.iterations;
  if (lps.status != LpStatus::kOptimal) return out;

  SparseSolution& sol = out.solution;
  sol.coefficients.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    sol.coefficients[i] = lps.x[i] - lps.x[n + i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(sol.coefficients[i]) > opts.support_tol) {
      sol.support.push_back(i);
    }
  }
  sol.iterations = lps.iterations;

  const Vector fitted = a * sol.coefficients;
  sol.residual_norm = linalg::norm2(linalg::subtract(fitted, y));
  return out;
}

SparseSolution basis_pursuit(const Matrix& a, std::span<const double> y,
                             const BasisPursuitOptions& opts) {
  BpSolution bp = bp_solve(a, y, opts);
  if (bp.status != LpStatus::kOptimal) {
    throw std::runtime_error(std::string("basis_pursuit: LP ") +
                             to_string(bp.status));
  }
  return std::move(bp.solution);
}

}  // namespace sensedroid::cs
