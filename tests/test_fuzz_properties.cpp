// Seeded randomized property sweeps ("fuzz-lite"): invariants checked
// over many random instances per suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "cs/greedy_variants.h"
#include "cs/omp.h"
#include "cs/simplex.h"
#include "field/spatial_field.h"
#include "incentives/auction.h"
#include "linalg/random.h"
#include "linalg/vector_ops.h"
#include "middleware/wire.h"

namespace sc = sensedroid::cs;
namespace sf = sensedroid::field;
namespace si = sensedroid::incentives;
namespace sl = sensedroid::linalg;
namespace mw = sensedroid::middleware;
namespace sn = sensedroid::sensing;

class SeededFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededFuzz, WireRoundTripArbitraryMessages) {
  sl::Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    mw::Message msg;
    const std::size_t topic_len = rng.uniform_index(40);
    for (std::size_t c = 0; c < topic_len; ++c) {
      msg.topic.push_back(static_cast<char>('a' + rng.uniform_index(26)));
    }
    msg.sender = static_cast<mw::NodeId>(rng.next_u64());
    msg.timestamp = rng.gaussian(0.0, 1e6);
    switch (rng.uniform_index(4)) {
      case 0:
        msg.payload = rng.gaussian(0.0, 1e9);
        break;
      case 1:
        msg.payload = rng.gaussian_vector(rng.uniform_index(50));
        break;
      case 2: {
        std::string s;
        const std::size_t len = rng.uniform_index(100);
        for (std::size_t c = 0; c < len; ++c) {
          s.push_back(static_cast<char>(rng.uniform_index(256)));
        }
        msg.payload = std::move(s);
        break;
      }
      default:
        msg.payload = mw::Record{
            static_cast<mw::NodeId>(rng.uniform_index(1000)),
            static_cast<sn::SensorKind>(
                rng.uniform_index(sn::kSensorKindCount)),
            rng.gaussian(0.0, 100.0), rng.gaussian(0.0, 100.0)};
    }
    const auto frame = mw::encode_message(msg);
    const auto back = mw::decode_message(frame);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->topic, msg.topic);
    EXPECT_EQ(back->sender, msg.sender);
    EXPECT_DOUBLE_EQ(back->timestamp, msg.timestamp);
    EXPECT_EQ(back->payload.index(), msg.payload.index());
  }
}

TEST_P(SeededFuzz, WireCorruptionCorpusNeverCrashesOrFabricates) {
  // Radio corruption model: truncations, bit flips, burst scrambles, and
  // random garbage.  decode_message must never crash and never return a
  // message from a damaged frame — the caller counts it as radio loss.
  sl::Rng rng(GetParam() ^ 0xfa017);
  for (int i = 0; i < 40; ++i) {
    mw::Message msg;
    msg.topic = "sensor/corrupt";
    msg.sender = static_cast<mw::NodeId>(rng.uniform_index(1000));
    msg.timestamp = rng.gaussian(0.0, 10.0);
    msg.payload = mw::Record{
        static_cast<mw::NodeId>(rng.uniform_index(1000)),
        static_cast<sn::SensorKind>(rng.uniform_index(sn::kSensorKindCount)),
        rng.gaussian(0.0, 100.0), rng.gaussian(0.0, 100.0)};
    auto frame = mw::encode_message(msg);
    const auto original = frame;

    switch (rng.uniform_index(4)) {
      case 0: {  // truncate anywhere
        frame.resize(rng.uniform_index(frame.size()));
        break;
      }
      case 1: {  // flip 1-4 random bits
        const std::size_t flips = 1 + rng.uniform_index(4);
        for (std::size_t f = 0; f < flips; ++f) {
          frame[rng.uniform_index(frame.size())] ^=
              static_cast<std::uint8_t>(1u << rng.uniform_index(8));
        }
        break;
      }
      case 2: {  // burst: scramble a contiguous run
        const std::size_t start = rng.uniform_index(frame.size());
        const std::size_t len =
            std::min(frame.size() - start, 1 + rng.uniform_index(8));
        for (std::size_t b = 0; b < len; ++b) {
          frame[start + b] =
              static_cast<std::uint8_t>(rng.uniform_index(256));
        }
        break;
      }
      default: {  // pure noise, no valid structure at all
        frame.assign(rng.uniform_index(64),
                     static_cast<std::uint8_t>(rng.uniform_index(256)));
        for (auto& b : frame) {
          b = static_cast<std::uint8_t>(rng.uniform_index(256));
        }
      }
    }
    // CRC-32 catches every <= 32-bit burst and all 1-4 bit flips, so no
    // corrupted variant may ever decode.  (Random re-scrambles can land
    // back on the original bytes — an undamaged frame decodes fine.)
    if (frame != original) {
      EXPECT_FALSE(mw::decode_message(frame).has_value());
    }
  }
}

TEST_P(SeededFuzz, AuctionClearingInvariants) {
  sl::Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 30; ++i) {
    const std::size_t n = 1 + rng.uniform_index(20);
    const std::size_t k = 1 + rng.uniform_index(10);
    const double reserve = rng.uniform(1.0, 10.0);
    std::vector<double> bids(n);
    for (auto& b : bids) b = rng.uniform(0.0, 12.0);
    const auto round = si::second_price_auction(bids, k, reserve);
    EXPECT_LE(round.winners.size(), std::min(k, n));
    // Every winner's own bid is at most the clearing price, and no
    // winner bid above the reserve.
    for (auto w : round.winners) {
      EXPECT_LE(bids[w], round.price_per_reading + 1e-12);
      EXPECT_LE(bids[w], reserve + 1e-12);
    }
    // Total payment is winners x uniform price.
    EXPECT_NEAR(round.total_payment,
                round.price_per_reading *
                    static_cast<double>(round.winners.size()),
                1e-9);
    EXPECT_LE(round.price_per_reading, reserve + 1e-12);
  }
}

TEST_P(SeededFuzz, FieldExtractInsertIdentity) {
  sl::Rng rng(GetParam() ^ 0x5151);
  for (int i = 0; i < 20; ++i) {
    const std::size_t w = 2 + rng.uniform_index(12);
    const std::size_t h = 2 + rng.uniform_index(12);
    sf::SpatialField f(w, h);
    for (double& v : f.flat()) v = rng.gaussian();
    const std::size_t pw = 1 + rng.uniform_index(w);
    const std::size_t ph = 1 + rng.uniform_index(h);
    const std::size_t j0 = rng.uniform_index(w - pw + 1);
    const std::size_t i0 = rng.uniform_index(h - ph + 1);
    auto copy = f;
    const auto patch = f.extract(i0, j0, pw, ph);
    copy.insert(i0, j0, patch);
    EXPECT_DOUBLE_EQ(sf::field_nrmse(copy, f), 0.0);
    // Vectorize round trip too.
    const auto back = sf::SpatialField::from_vector(w, h, f.vectorize());
    EXPECT_DOUBLE_EQ(sf::field_nrmse(back, f), 0.0);
  }
}

TEST_P(SeededFuzz, SimplexOptimaAreFeasible) {
  sl::Rng rng(GetParam() ^ 0x1717);
  for (int i = 0; i < 15; ++i) {
    const std::size_t m = 1 + rng.uniform_index(4);
    const std::size_t n = m + 1 + rng.uniform_index(6);
    sc::LpProblem p;
    p.a = sl::Matrix(m, n);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        p.a(r, c) = rng.gaussian();
      }
    }
    // Make the problem feasible by construction: b = A x0 with x0 >= 0.
    sl::Vector x0(n);
    for (auto& x : x0) x = rng.uniform(0.0, 2.0);
    p.b = p.a * x0;
    p.c.assign(n, 0.0);
    for (auto& c : p.c) c = rng.uniform(0.0, 1.0);  // bounded below by 0

    const auto sol = sc::simplex_solve(p);
    ASSERT_EQ(sol.status, sc::LpStatus::kOptimal) << "instance " << i;
    // Feasibility of the reported optimum.
    const auto ax = p.a * sol.x;
    for (std::size_t r = 0; r < m; ++r) {
      EXPECT_NEAR(ax[r], p.b[r], 1e-6);
    }
    for (double x : sol.x) EXPECT_GE(x, -1e-9);
    // Optimality vs the known feasible point.
    double obj0 = 0.0;
    for (std::size_t c = 0; c < n; ++c) obj0 += p.c[c] * x0[c];
    EXPECT_LE(sol.objective, obj0 + 1e-6);
  }
}

TEST_P(SeededFuzz, OmpResidualNeverExceedsSignal) {
  sl::Rng rng(GetParam() ^ 0x0770);
  for (int i = 0; i < 10; ++i) {
    const std::size_t m = 4 + rng.uniform_index(20);
    const std::size_t n = m + rng.uniform_index(40);
    sl::Matrix a(m, n);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.gaussian();
    }
    const auto y = rng.gaussian_vector(m);
    const auto sol = sc::omp_solve(a, y, {.max_sparsity = m / 2});
    EXPECT_LE(sol.residual_norm, sl::norm2(y) + 1e-9);
    EXPECT_LE(sol.support.size(), m / 2 + 1);
  }
}

TEST_P(SeededFuzz, KernelsPropagateNanAndInf) {
  // The kernels used to skip zero factors (`if (x == 0.0) continue`),
  // which silently masked NaN/Inf operands whose partner was an exact
  // zero: 0 * NaN never reached the accumulator.  IEEE semantics demand
  // the poison propagates; these properties pin exactly the cases the
  // skip branch used to hide.
  sl::Rng rng(GetParam() ^ 0xBADF00D);
  const double poisons[] = {std::nan(""),
                            std::numeric_limits<double>::infinity()};
  for (int i = 0; i < 8; ++i) {
    const std::size_t m = 3 + rng.uniform_index(8);
    const std::size_t n = 3 + rng.uniform_index(8);
    sl::Matrix a(m, n);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.gaussian();
    }
    const std::size_t pr = rng.uniform_index(m);
    const std::size_t pc = rng.uniform_index(n);
    const double poison = poisons[i % 2];

    // transpose_times: poisoned entry multiplied by an exact zero.
    {
      sl::Matrix ap = a;
      ap(pr, pc) = poison;
      sl::Vector v = rng.gaussian_vector(m);
      v[pr] = 0.0;  // the old kernel skipped this row entirely
      const auto out = ap.transpose_times(v);
      EXPECT_TRUE(std::isnan(out[pc]))
          << "0 * " << poison << " must poison column " << pc;
    }

    // operator*(Matrix): exact zero in the lhs against a poisoned rhs row.
    {
      sl::Matrix rhs(n, 4);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < 4; ++c) rhs(r, c) = rng.gaussian();
      }
      sl::Matrix lhs = a;
      lhs(pr, pc) = 0.0;  // the old kernel skipped this product
      rhs(pc, 1) = poison;
      const auto out = lhs * rhs;
      EXPECT_TRUE(std::isnan(out(pr, 1)));
    }

    // gram: a zero paired with a poison inside one row.
    if (n >= 2) {
      sl::Matrix ap = a;
      const std::size_t other = (pc + 1) % n;
      ap(pr, pc) = 0.0;    // the old kernel skipped this factor
      ap(pr, other) = poison;
      const auto g = ap.gram();
      EXPECT_TRUE(std::isnan(g.at(pc, other)));
      EXPECT_TRUE(std::isnan(g.at(other, pc)));
    }

    // reconstruct: a poisoned basis entry on a support atom must reach
    // the output even when that atom's coefficient is exactly zero.
    {
      sl::Matrix basis(m, n);
      for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < n; ++c) basis(r, c) = rng.gaussian();
      }
      basis(pr, pc) = poison;
      sc::SparseSolution sol;
      sol.coefficients.assign(n, 0.0);
      sol.support = {pc};  // on support, coefficient 0.0
      const auto x = sc::reconstruct(basis, sol);
      EXPECT_TRUE(std::isnan(x[pr]));
    }
  }
}

TEST_P(SeededFuzz, CosampTripleStaysSelfConsistent) {
  // The returned (support, coefficients, residual_norm) must describe
  // one solution — the regression guard for the best-iterate mismatch.
  sl::Rng rng(GetParam() ^ 0xC05A);
  for (int i = 0; i < 6; ++i) {
    const std::size_t m = 8 + rng.uniform_index(16);
    const std::size_t n = m + 4 + rng.uniform_index(30);
    const std::size_t k = 1 + rng.uniform_index(m / 3);
    sl::Matrix a(m, n);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.gaussian();
    }
    auto y = rng.gaussian_vector(m);  // pure noise: hard instances
    const auto sol = sc::cosamp_solve(a, y, {.sparsity = k});
    const auto fitted = a * sol.coefficients;
    EXPECT_NEAR(sol.residual_norm,
                sl::norm2(sl::subtract(y, fitted)),
                1e-9 * std::max(1.0, sl::norm2(y)));
    EXPECT_LE(sol.residual_norm, sl::norm2(y) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));
