// Tests for context processing: features, activity, IsDriving, IsIndoor,
// and group contexts.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "context/activity.h"
#include "context/context_engine.h"
#include "context/group_context.h"
#include "context/is_driving.h"
#include "context/is_indoor.h"
#include "linalg/vector_ops.h"
#include "sensing/probe.h"
#include "sensing/signals.h"

namespace sx = sensedroid::context;
namespace sn = sensedroid::sensing;
namespace sl = sensedroid::linalg;

namespace {

// A sensor whose truth replays a fixed trace.
sn::SimulatedSensor trace_sensor(sl::Vector trace, sn::SensorKind kind,
                                 sn::QualityTier tier =
                                     sn::QualityTier::kMidrange) {
  return sn::SimulatedSensor(
      kind, tier,
      [t = std::move(trace)](std::size_t i) { return t[i % t.size()]; }, 11);
}

}  // namespace

// ------------------------------------------------------------ features ----

TEST(Features, PureToneDominantFrequency) {
  const std::size_t n = 256;
  const double fs = 50.0;
  sl::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * 4.0 * static_cast<double>(i) /
                    fs);
  }
  auto f = sx::extract_features(x, fs);
  EXPECT_NEAR(f.dominant_freq_hz, 4.0, 0.3);
  EXPECT_GT(f.band_energy_mid, f.band_energy_high);
  EXPECT_GT(f.band_energy_mid, f.band_energy_low);
}

TEST(Features, ConstantSignalIsQuiet) {
  sl::Vector x(64, 5.0);
  auto f = sx::extract_features(x, 50.0);
  EXPECT_DOUBLE_EQ(f.mean, 5.0);
  EXPECT_NEAR(f.variance, 0.0, 1e-12);
  EXPECT_NEAR(f.zero_crossing_rate, 0.0, 0.05);
}

TEST(Features, ZeroCrossingRateOfAlternatingSignal) {
  sl::Vector x(100);
  for (std::size_t i = 0; i < 100; ++i) x[i] = i % 2 == 0 ? 1.0 : -1.0;
  auto f = sx::extract_features(x, 50.0);
  EXPECT_GT(f.zero_crossing_rate, 0.9);
}

TEST(Features, Validation) {
  sl::Vector x(8, 0.0);
  EXPECT_THROW(sx::extract_features({}, 50.0), std::invalid_argument);
  EXPECT_THROW(sx::extract_features(x, 0.0), std::invalid_argument);
}

// ------------------------------------------------------------ activity ----

TEST(Activity, ClassifiesSyntheticRegimes) {
  sl::Rng rng(1);
  const double fs = 50.0;
  int correct = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    for (auto truth : {sn::Activity::kIdle, sn::Activity::kWalking,
                       sn::Activity::kDriving}) {
      auto x = sn::accelerometer_trace(truth, 256, fs, rng);
      const auto predicted =
          sx::classify_activity(sx::extract_features(x, fs));
      if (predicted == truth) ++correct;
    }
  }
  EXPECT_GE(correct, trials * 3 * 8 / 10);  // >= 80% accuracy
}

TEST(Activity, AccuracyOnLabeledTrace) {
  sl::Rng rng(2);
  auto trace = sn::labeled_activity_trace(12, 256, 50.0, rng);
  const double acc = sx::activity_accuracy(trace, 256, 50.0);
  EXPECT_GT(acc, 0.75);
}

TEST(Activity, AccuracyValidatesWindow) {
  sl::Rng rng(3);
  auto trace = sn::labeled_activity_trace(1, 64, 50.0, rng);
  EXPECT_THROW(sx::activity_accuracy(trace, 128, 50.0),
               std::invalid_argument);
  EXPECT_THROW(sx::activity_accuracy(trace, 0, 50.0), std::invalid_argument);
}

// ------------------------------------------------------ context engine ----

TEST(ContextEngine, ContinuousBatchPassesThrough) {
  sl::Rng rng(4);
  auto trace = sn::accelerometer_trace(sn::Activity::kWalking, 256, 50.0, rng);
  sn::SensingProbe probe(
      trace_sensor(trace, sn::SensorKind::kAccelerometer,
                   sn::QualityTier::kFlagship),
      {.mode = sn::SamplingMode::kContinuous, .window = 256, .budget = 256});
  sx::ContextEngine engine(50.0);
  auto batch = probe.acquire(0);
  auto w = engine.process(batch, 0.0);
  EXPECT_EQ(w.reconstruction.size(), 256u);
  EXPECT_EQ(w.samples_used, 256u);
  EXPECT_GT(w.features.variance, 0.1);
}

TEST(ContextEngine, CompressiveBatchReconstructsClose) {
  sl::Rng rng(5);
  auto trace = sn::accelerometer_trace(sn::Activity::kWalking, 256, 50.0, rng);
  sn::SensingProbe cont(
      trace_sensor(trace, sn::SensorKind::kAccelerometer,
                   sn::QualityTier::kFlagship),
      {.mode = sn::SamplingMode::kContinuous, .window = 256, .budget = 256});
  sn::SensingProbe comp(
      trace_sensor(trace, sn::SensorKind::kAccelerometer,
                   sn::QualityTier::kFlagship),
      {.mode = sn::SamplingMode::kCompressive, .window = 256, .budget = 64,
       .seed = 9});
  sx::ContextEngine engine(50.0);
  auto full = engine.process(cont.acquire(0), 0.0);
  auto rec = engine.process(comp.acquire(0), 0.025);
  EXPECT_EQ(rec.samples_used, 64u);
  EXPECT_LT(rec.sensing_energy_j, full.sensing_energy_j);
  // The walking gait must survive reconstruction.
  EXPECT_NEAR(rec.features.dominant_freq_hz, full.features.dominant_freq_hz,
              0.5);
}

TEST(ContextEngine, ValidatesRate) {
  EXPECT_THROW(sx::ContextEngine(0.0), std::invalid_argument);
}

// ----------------------------------------------------------- IsDriving ----

TEST(IsDriving, DetectsDrivingFromCompressiveWindow) {
  sl::Rng rng(6);
  sx::IsDrivingDetector detector(50.0);
  int correct = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    for (bool driving : {false, true}) {
      auto trace = sn::accelerometer_trace(
          driving ? sn::Activity::kDriving : sn::Activity::kWalking, 256,
          50.0, rng);
      sn::SensingProbe probe(
          trace_sensor(trace, sn::SensorKind::kAccelerometer,
                       sn::QualityTier::kFlagship),
          {.mode = sn::SamplingMode::kCompressive, .window = 256,
           .budget = 64, .seed = static_cast<std::uint64_t>(t * 2 + driving)});
      auto d = detector.decide(probe.acquire(0), 0.025);
      if (d.is_driving == driving) ++correct;
    }
  }
  EXPECT_GE(correct, trials * 2 * 7 / 10);
}

// ------------------------------------------------------------ IsIndoor ----

TEST(IsIndoor, FlagsFuseGpsAndWifi) {
  sl::Vector gps{0.9, 0.1, 0.9, 0.1};
  sl::Vector wifi{1.0, 8.0, 8.0, 1.0};
  auto flags = sx::indoor_flags(gps, wifi);
  EXPECT_FALSE(flags[0]);  // strong fix, no APs: outdoor
  EXPECT_TRUE(flags[1]);   // weak fix, many APs: indoor
  EXPECT_FALSE(flags[2]);  // strong fix wins over APs
  EXPECT_TRUE(flags[3]);   // weak fix wins over no APs
  sl::Vector bad{0.5};
  EXPECT_THROW(sx::indoor_flags(gps, bad), std::invalid_argument);
}

TEST(IsIndoor, CompressiveSavesEnergyAtSimilarAccuracy) {
  // The paper's E7 claim in miniature.
  sl::Rng rng(7);
  const std::size_t day = 1024;
  auto schedule = sn::indoor_schedule(day, 100.0, rng);
  auto gps = sn::gps_quality_trace(schedule, rng);
  auto wifi = sn::wifi_count_trace(schedule, rng);

  auto make_probe = [&](const sl::Vector& trace, sn::SensorKind kind,
                        sn::SamplingMode mode, std::size_t budget) {
    return sn::SensingProbe(
        trace_sensor(trace, kind, sn::QualityTier::kFlagship),
        {.mode = mode, .window = 256, .budget = budget, .seed = 21});
  };

  auto gps_cont = make_probe(gps, sn::SensorKind::kGps,
                             sn::SamplingMode::kContinuous, 256);
  auto wifi_cont = make_probe(wifi, sn::SensorKind::kWifiScanner,
                              sn::SamplingMode::kContinuous, 256);
  auto full = sx::evaluate_indoor_detector(schedule, gps_cont, wifi_cont);

  auto gps_comp = make_probe(gps, sn::SensorKind::kGps,
                             sn::SamplingMode::kCompressive, 48);
  auto wifi_comp = make_probe(wifi, sn::SensorKind::kWifiScanner,
                              sn::SamplingMode::kCompressive, 48);
  auto comp = sx::evaluate_indoor_detector(schedule, gps_comp, wifi_comp);

  EXPECT_GT(full.accuracy, 0.9);
  EXPECT_GT(comp.accuracy, full.accuracy - 0.1);  // similar accuracy
  EXPECT_LT(comp.sensing_energy_j, 0.3 * full.sensing_energy_j);  // big save
}

TEST(IsIndoor, EvaluateValidatesWindows) {
  sl::Rng rng(8);
  auto schedule = sn::indoor_schedule(100, 20.0, rng);
  auto gps = sn::gps_quality_trace(schedule, rng);
  auto wifi = sn::wifi_count_trace(schedule, rng);
  sn::SensingProbe g(trace_sensor(gps, sn::SensorKind::kGps),
                     {.mode = sn::SamplingMode::kCompressive, .window = 64,
                      .budget = 16});
  sn::SensingProbe w(trace_sensor(wifi, sn::SensorKind::kWifiScanner),
                     {.mode = sn::SamplingMode::kCompressive, .window = 32,
                      .budget = 16});
  EXPECT_THROW(sx::evaluate_indoor_detector(schedule, g, w),
               std::invalid_argument);
}

// --------------------------------------------------------------- group ----

TEST(Group, StressQuotientBlendsMeanAndWorst) {
  std::vector<double> calm{0.1, 0.1, 0.1};
  std::vector<double> one_stressed{0.1, 0.1, 0.9};
  const double q_calm = sx::group_stress_quotient(calm);
  const double q_mixed = sx::group_stress_quotient(one_stressed);
  EXPECT_NEAR(q_calm, 0.1, 1e-9);
  EXPECT_GT(q_mixed, (0.1 + 0.1 + 0.9) / 3.0);  // worst member amplifies
  EXPECT_THROW(sx::group_stress_quotient({}), std::invalid_argument);
  std::vector<double> bad{1.5};
  EXPECT_THROW(sx::group_stress_quotient(bad), std::invalid_argument);
}

TEST(Group, HealthIndicatorRange) {
  std::vector<sx::MemberDay> healthy{{0.1, 60.0, 8.0, 0.05},
                                     {0.2, 50.0, 7.5, 0.1}};
  std::vector<sx::MemberDay> unhealthy{{0.9, 5.0, 4.0, 0.8}};
  const double h = sx::family_health_indicator(healthy);
  const double u = sx::family_health_indicator(unhealthy);
  EXPECT_GT(h, 80.0);
  EXPECT_LT(u, 40.0);
  EXPECT_LE(h, 100.0);
  EXPECT_GE(u, 0.0);
  EXPECT_THROW(sx::family_health_indicator({}), std::invalid_argument);
}

TEST(Group, MajorityAndAgreement) {
  std::vector<bool> flags{true, true, false};
  EXPECT_TRUE(sx::majority_context(flags));
  EXPECT_NEAR(sx::context_agreement(flags), 2.0 / 3.0, 1e-12);
  std::vector<bool> tie{true, false};
  EXPECT_FALSE(sx::majority_context(tie));  // ties are false
  EXPECT_THROW(sx::majority_context(std::vector<bool>{}), std::invalid_argument);
  EXPECT_THROW(sx::context_agreement(std::vector<bool>{}), std::invalid_argument);
}
