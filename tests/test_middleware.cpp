// Tests for the middleware services: datastore, pub/sub, privacy,
// discovery, query, node, and broker.
#include <gtest/gtest.h>

#include <stdexcept>

#include "middleware/broker.h"
#include "middleware/datastore.h"
#include "middleware/discovery.h"
#include "middleware/node.h"
#include "middleware/privacy.h"
#include "middleware/pubsub.h"
#include "middleware/query.h"

namespace mw = sensedroid::middleware;
namespace sn = sensedroid::sensing;
namespace ss = sensedroid::sim;
namespace sl = sensedroid::linalg;

namespace {

mw::Record make_record(mw::NodeId node, sn::SensorKind kind, double t,
                       double v) {
  return mw::Record{node, kind, t, v};
}

sn::SimulatedSensor temp_sensor(double value = 21.0,
                                sn::QualityTier tier =
                                    sn::QualityTier::kMidrange) {
  return sn::SimulatedSensor(sn::SensorKind::kTemperature, tier,
                             [value](std::size_t) { return value; }, 99);
}

}  // namespace

// ---------------------------------------------------------- datastore ----

TEST(DataStore, InsertAndQueryByFilter) {
  mw::DataStore db(100);
  db.insert(make_record(1, sn::SensorKind::kTemperature, 1.0, 20.0));
  db.insert(make_record(2, sn::SensorKind::kTemperature, 2.0, 22.0));
  db.insert(make_record(1, sn::SensorKind::kGps, 3.0, 0.8));
  mw::RecordFilter f;
  f.node = 1;
  EXPECT_EQ(db.count(f), 2u);
  f.sensor = sn::SensorKind::kGps;
  auto rows = db.query(f);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].value, 0.8);
}

TEST(DataStore, TimeAndValueRanges) {
  mw::DataStore db(100);
  for (int i = 0; i < 10; ++i) {
    db.insert(make_record(1, sn::SensorKind::kTemperature, i, i * 10.0));
  }
  mw::RecordFilter f;
  f.t_min = 3.0;
  f.t_max = 6.0;
  EXPECT_EQ(db.count(f), 4u);
  f.value_min = 45.0;
  EXPECT_EQ(db.count(f), 2u);  // t=5 (50) and t=6 (60)
  f.value_max = 55.0;
  EXPECT_EQ(db.count(f), 1u);
}

TEST(DataStore, RingBufferEvictsOldest) {
  mw::DataStore db(3);
  for (int i = 0; i < 5; ++i) {
    db.insert(make_record(1, sn::SensorKind::kLight, i, i));
  }
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.evicted(), 2u);
  auto rows = db.query({});
  EXPECT_DOUBLE_EQ(rows.front().value, 2.0);  // 0 and 1 evicted
  EXPECT_THROW(mw::DataStore(0), std::invalid_argument);
}

TEST(DataStore, LatestAndMean) {
  mw::DataStore db(10);
  db.insert(make_record(1, sn::SensorKind::kTemperature, 1.0, 10.0));
  db.insert(make_record(1, sn::SensorKind::kTemperature, 2.0, 20.0));
  auto latest = db.latest({});
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->value, 20.0);
  auto mean = db.mean_value({});
  ASSERT_TRUE(mean.has_value());
  EXPECT_DOUBLE_EQ(*mean, 15.0);
  mw::RecordFilter none;
  none.node = 42;
  EXPECT_FALSE(db.latest(none).has_value());
  EXPECT_FALSE(db.mean_value(none).has_value());
}

TEST(DataStore, ForEachStreams) {
  mw::DataStore db(10);
  for (int i = 0; i < 4; ++i) {
    db.insert(make_record(1, sn::SensorKind::kLight, i, 1.0));
  }
  double total = 0.0;
  db.for_each({}, [&](const mw::Record& r) { total += r.value; });
  EXPECT_DOUBLE_EQ(total, 4.0);
}

// -------------------------------------------------------------- pubsub ----

TEST(PubSub, ExactTopicDelivery) {
  mw::PubSubBus bus;
  int hits = 0;
  bus.subscribe("a/b", [&](const mw::Message&) { ++hits; });
  EXPECT_EQ(bus.publish({"a/b", 1, 0.0, 1.0}), 1u);
  EXPECT_EQ(bus.publish({"a/c", 1, 0.0, 1.0}), 0u);
  EXPECT_EQ(hits, 1);
}

TEST(PubSub, PrefixSubscription) {
  mw::PubSubBus bus;
  int hits = 0;
  bus.subscribe_prefix("sensor/", [&](const mw::Message&) { ++hits; });
  bus.publish({"sensor/gps", 1, 0.0, 0.5});
  bus.publish({"sensor/temperature", 2, 0.0, 21.0});
  bus.publish({"context/indoor", 3, 0.0, 1.0});
  EXPECT_EQ(hits, 2);
}

TEST(PubSub, UnsubscribeStopsDelivery) {
  mw::PubSubBus bus;
  int hits = 0;
  auto id = bus.subscribe("t", [&](const mw::Message&) { ++hits; });
  bus.publish({"t", 1, 0.0, 0.0});
  EXPECT_TRUE(bus.unsubscribe(id));
  EXPECT_FALSE(bus.unsubscribe(id));
  bus.publish({"t", 1, 0.0, 0.0});
  EXPECT_EQ(hits, 1);
}

TEST(PubSub, HandlerMaySubscribeDuringDelivery) {
  mw::PubSubBus bus;
  int second_hits = 0;
  bus.subscribe("t", [&](const mw::Message&) {
    bus.subscribe("t", [&](const mw::Message&) { ++second_hits; });
  });
  EXPECT_NO_THROW(bus.publish({"t", 1, 0.0, 0.0}));
  bus.publish({"t", 1, 0.0, 0.0});
  EXPECT_GE(second_hits, 1);
}

TEST(PubSub, WireSizeReflectsPayload) {
  mw::Message scalar{"t", 1, 0.0, 1.5};
  mw::Message vec{"t", 1, 0.0, sl::Vector(100, 0.0)};
  EXPECT_GT(mw::wire_size(vec), mw::wire_size(scalar) + 700);
  mw::Message text{"t", 1, 0.0, std::string("hello")};
  EXPECT_EQ(mw::wire_size(text), 24u + 1u + 5u);
}

// ------------------------------------------------------------- privacy ----

TEST(Privacy, DefaultSharesEverything) {
  mw::PrivacyPolicy p;
  EXPECT_TRUE(p.sensor_allowed(sn::SensorKind::kGps));
  auto r = p.filter(make_record(1, sn::SensorKind::kGps, 0.0, 1.0));
  EXPECT_TRUE(r.has_value());
}

TEST(Privacy, PerSensorDisable) {
  mw::PrivacyPolicy p;
  p.set_sensor_allowed(sn::SensorKind::kMicrophone, false);
  EXPECT_FALSE(p.sensor_allowed(sn::SensorKind::kMicrophone));
  EXPECT_TRUE(p.sensor_allowed(sn::SensorKind::kTemperature));
  EXPECT_FALSE(
      p.filter(make_record(1, sn::SensorKind::kMicrophone, 0.0, 40.0))
          .has_value());
}

TEST(Privacy, OptOutBlocksAll) {
  auto p = mw::PrivacyPolicy::opt_out();
  EXPECT_TRUE(p.opted_out());
  EXPECT_FALSE(p.sensor_allowed(sn::SensorKind::kTemperature));
}

TEST(Privacy, LocationBlurSnapsToGrid) {
  mw::PrivacyPolicy p;
  p.set_location_granularity_m(100.0);
  auto b = p.blur({149.0, 250.1});
  EXPECT_DOUBLE_EQ(b.x, 100.0);
  EXPECT_DOUBLE_EQ(b.y, 300.0);
  p.set_location_granularity_m(0.0);
  auto exact = p.blur({149.0, 250.1});
  EXPECT_DOUBLE_EQ(exact.x, 149.0);
  EXPECT_THROW(p.set_location_granularity_m(-1.0), std::invalid_argument);
}

// ----------------------------------------------------------- discovery ----

TEST(Discovery, JoinFindLeave) {
  mw::ServiceRegistry reg;
  mw::NodeCapabilities caps;
  caps.node = 7;
  caps.sensors = {sn::SensorKind::kGps};
  reg.join(caps);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.find(7).has_value());
  EXPECT_FALSE(reg.find(8).has_value());
  EXPECT_TRUE(reg.leave(7));
  EXPECT_FALSE(reg.leave(7));
}

TEST(Discovery, WithSensorSortsByDistance) {
  mw::ServiceRegistry reg;
  for (mw::NodeId id = 0; id < 3; ++id) {
    mw::NodeCapabilities caps;
    caps.node = id;
    caps.position = {static_cast<double>(id) * 10.0, 0.0};
    caps.sensors = {sn::SensorKind::kTemperature};
    reg.join(caps);
  }
  auto near = reg.with_sensor(sn::SensorKind::kTemperature,
                              ss::Point{25.0, 0.0});
  ASSERT_EQ(near.size(), 3u);
  EXPECT_EQ(near[0].node, 2u);  // at x=20, closest to 25
  auto by_id = reg.with_sensor(sn::SensorKind::kTemperature);
  EXPECT_EQ(by_id[0].node, 0u);
}

TEST(Discovery, RangeAndInfrastructureFilters) {
  mw::ServiceRegistry reg;
  mw::NodeCapabilities phone;
  phone.node = 1;
  phone.position = {0.0, 0.0};
  phone.sensors = {sn::SensorKind::kTemperature};
  reg.join(phone);
  mw::NodeCapabilities infra;
  infra.node = 2;
  infra.position = {100.0, 0.0};
  infra.sensors = {sn::SensorKind::kTemperature};
  infra.infrastructure = true;
  reg.join(infra);
  auto in_range = reg.with_sensor_in_range(sn::SensorKind::kTemperature,
                                           {0.0, 0.0}, 50.0);
  ASSERT_EQ(in_range.size(), 1u);
  EXPECT_EQ(in_range[0].node, 1u);
  auto infra_only = reg.infrastructure_with(sn::SensorKind::kTemperature);
  ASSERT_EQ(infra_only.size(), 1u);
  EXPECT_EQ(infra_only[0].node, 2u);
}

TEST(Discovery, UpdatePosition) {
  mw::ServiceRegistry reg;
  mw::NodeCapabilities caps;
  caps.node = 1;
  reg.join(caps);
  EXPECT_TRUE(reg.update_position(1, {5.0, 5.0}));
  EXPECT_DOUBLE_EQ(reg.find(1)->position.x, 5.0);
  EXPECT_FALSE(reg.update_position(9, {0.0, 0.0}));
}

// --------------------------------------------------------------- query ----

TEST(Query, ContinuousQueriesFireOnMatch) {
  mw::DataStore db(100);
  mw::QueryService qs(db);
  int hot_alerts = 0;
  mw::RecordFilter hot;
  hot.sensor = sn::SensorKind::kTemperature;
  hot.value_min = 30.0;
  qs.subscribe(hot, [&](const mw::Record&) { ++hot_alerts; });
  EXPECT_EQ(qs.ingest(make_record(1, sn::SensorKind::kTemperature, 1.0, 25.0)),
            0u);
  EXPECT_EQ(qs.ingest(make_record(1, sn::SensorKind::kTemperature, 2.0, 35.0)),
            1u);
  EXPECT_EQ(hot_alerts, 1);
  EXPECT_EQ(db.size(), 2u);  // everything stored regardless of filters
}

TEST(Query, UnsubscribeStopsContinuous) {
  mw::DataStore db(10);
  mw::QueryService qs(db);
  int hits = 0;
  auto id = qs.subscribe({}, [&](const mw::Record&) { ++hits; });
  qs.ingest(make_record(1, sn::SensorKind::kLight, 0.0, 1.0));
  EXPECT_TRUE(qs.unsubscribe(id));
  EXPECT_FALSE(qs.unsubscribe(id));
  qs.ingest(make_record(1, sn::SensorKind::kLight, 1.0, 1.0));
  EXPECT_EQ(hits, 1);
}

TEST(Query, OneShotAggregates) {
  mw::DataStore db(10);
  mw::QueryService qs(db);
  qs.ingest(make_record(1, sn::SensorKind::kLight, 0.0, 2.0));
  qs.ingest(make_record(1, sn::SensorKind::kLight, 1.0, 4.0));
  EXPECT_EQ(qs.count({}), 2u);
  EXPECT_DOUBLE_EQ(*qs.mean({}), 3.0);
  EXPECT_DOUBLE_EQ(qs.latest({})->value, 4.0);
  EXPECT_EQ(qs.query({}).size(), 2u);
}

// ---------------------------------------------------------------- node ----

TEST(Node, MeasureChargesBatteryAndMeter) {
  mw::MobileNode node(1, {0.0, 0.0});
  node.add_sensor(temp_sensor());
  const double before = node.battery().remaining_j();
  auto v = node.measure(sn::SensorKind::kTemperature, 0);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(*v, 21.0, 2.0);
  EXPECT_LT(node.battery().remaining_j(), before);
  EXPECT_GT(node.meter().of(ss::EnergyCategory::kSensing), 0.0);
}

TEST(Node, MeasureRespectsPrivacyAndMissingSensor) {
  mw::MobileNode node(1, {0.0, 0.0});
  node.add_sensor(temp_sensor());
  EXPECT_FALSE(node.measure(sn::SensorKind::kGps, 0).has_value());
  node.policy().set_sensor_allowed(sn::SensorKind::kTemperature, false);
  EXPECT_FALSE(node.measure(sn::SensorKind::kTemperature, 0).has_value());
}

TEST(Node, DeadBatteryRefusesMeasurement) {
  mw::MobileNode node(1, {0.0, 0.0},
                      ss::LinkModel::of(ss::RadioKind::kWiFi),
                      ss::Battery(1e-9));
  node.add_sensor(temp_sensor());
  EXPECT_FALSE(node.measure(sn::SensorKind::kTemperature, 0).has_value());
}

TEST(Node, AdvertiseHonorsPolicy) {
  mw::MobileNode node(3, {123.0, 456.0});
  node.add_sensor(temp_sensor());
  node.add_sensor(sn::SimulatedSensor(sn::SensorKind::kGps,
                                      sn::QualityTier::kFlagship,
                                      [](std::size_t) { return 0.9; }));
  auto caps = node.advertise();
  ASSERT_TRUE(caps.has_value());
  EXPECT_EQ(caps->sensors.size(), 2u);
  node.policy().set_sensor_allowed(sn::SensorKind::kGps, false);
  node.policy().set_location_granularity_m(100.0);
  caps = node.advertise();
  ASSERT_TRUE(caps.has_value());
  EXPECT_EQ(caps->sensors.size(), 1u);
  EXPECT_DOUBLE_EQ(caps->position.x, 100.0);  // blurred
  node.policy().set_opted_out(true);
  EXPECT_FALSE(node.advertise().has_value());
}

TEST(Node, SensorSigmaReflectsTier) {
  mw::MobileNode node(1, {0.0, 0.0});
  node.add_sensor(temp_sensor(21.0, sn::QualityTier::kBudget));
  auto sigma = node.sensor_sigma(sn::SensorKind::kTemperature);
  ASSERT_TRUE(sigma.has_value());
  EXPECT_DOUBLE_EQ(*sigma,
                   sn::nominal_noise_sigma(sn::SensorKind::kTemperature) *
                       sn::tier_noise_factor(sn::QualityTier::kBudget));
  EXPECT_FALSE(node.sensor_sigma(sn::SensorKind::kGps).has_value());
}

// -------------------------------------------------------------- broker ----

TEST(Broker, CollectGathersReadingsAndAccountsEnergy) {
  mw::Broker broker(100, {0.0, 0.0});
  std::vector<mw::MobileNode> nodes;
  for (mw::NodeId id = 0; id < 5; ++id) {
    nodes.emplace_back(id, ss::Point{static_cast<double>(id), 0.0});
    nodes.back().add_sensor(temp_sensor(20.0 + id));
  }
  std::vector<mw::MobileNode*> ptrs;
  for (auto& n : nodes) ptrs.push_back(&n);

  sl::Rng rng(1);
  mw::GatherStats stats;
  auto readings = broker.collect(ptrs, sn::SensorKind::kTemperature, 0, rng,
                                 &stats, 1.0);
  EXPECT_EQ(stats.commands_sent, 5u);
  EXPECT_GE(readings.size(), 4u);  // nodes are close; ~1% loss per leg
  EXPECT_GT(stats.broker_energy_j, 0.0);
  EXPECT_GT(stats.bytes_transferred, 0u);
  EXPECT_EQ(broker.store().size(), readings.size());
  for (const auto& r : readings) {
    EXPECT_NEAR(r.value, 20.0 + r.node, 2.0);
    EXPECT_GT(r.sigma, 0.0);
  }
  // Nodes paid radio + sensing energy.
  EXPECT_GT(nodes[0].meter().total_j(), 0.0);
}

TEST(Broker, CollectSkipsRefusingNodes) {
  mw::Broker broker(100, {0.0, 0.0});
  mw::MobileNode willing(1, {1.0, 0.0});
  willing.add_sensor(temp_sensor());
  mw::MobileNode refusing(2, {2.0, 0.0});
  refusing.add_sensor(temp_sensor());
  refusing.policy().set_sensor_allowed(sn::SensorKind::kTemperature, false);
  std::vector<mw::MobileNode*> ptrs{&willing, &refusing};
  sl::Rng rng(2);
  mw::GatherStats stats;
  auto readings =
      broker.collect(ptrs, sn::SensorKind::kTemperature, 0, rng, &stats);
  EXPECT_EQ(stats.node_refusals, 1u);
  for (const auto& r : readings) EXPECT_NE(r.node, 2u);
}

TEST(Broker, OutOfRangeNodeAlwaysFails) {
  mw::Broker broker(100, {0.0, 0.0});
  mw::MobileNode far(1, {5000.0, 0.0});  // beyond WiFi range
  far.add_sensor(temp_sensor());
  std::vector<mw::MobileNode*> ptrs{&far};
  sl::Rng rng(3);
  mw::GatherStats stats;
  auto readings =
      broker.collect(ptrs, sn::SensorKind::kTemperature, 0, rng, &stats);
  EXPECT_TRUE(readings.empty());
  EXPECT_EQ(stats.radio_failures, 1u);
}

TEST(Broker, EnrollHonorsOptOut) {
  mw::Broker broker(100, {0.0, 0.0});
  mw::MobileNode node(1, {0.0, 0.0});
  node.add_sensor(temp_sensor());
  EXPECT_TRUE(broker.enroll(node));
  mw::MobileNode hermit(2, {0.0, 0.0});
  hermit.add_sensor(temp_sensor());
  hermit.policy().set_opted_out(true);
  EXPECT_FALSE(broker.enroll(hermit));
  EXPECT_EQ(broker.registry().size(), 1u);
}

TEST(Broker, DisseminateFansOutToBus) {
  mw::Broker broker(100, {0.0, 0.0});
  int bus_hits = 0;
  broker.bus().subscribe_prefix("sensor/",
                                [&](const mw::Message&) { ++bus_hits; });
  std::vector<mw::Reading> readings{{1, 20.0, 0.1}, {2, 21.0, 0.1}};
  broker.disseminate(readings, sn::SensorKind::kTemperature, 5.0);
  EXPECT_EQ(bus_hits, 2);
}

TEST(Broker, ContinuousQueriesFireDuringCollect) {
  mw::Broker broker(100, {0.0, 0.0});
  int query_hits = 0;
  mw::RecordFilter f;
  f.sensor = sn::SensorKind::kTemperature;
  broker.queries().subscribe(f, [&](const mw::Record&) { ++query_hits; });
  mw::MobileNode node(1, {1.0, 0.0});
  node.add_sensor(temp_sensor());
  std::vector<mw::MobileNode*> ptrs{&node};
  sl::Rng rng(4);
  const auto readings =
      broker.collect(ptrs, sn::SensorKind::kTemperature, 0, rng);
  EXPECT_EQ(query_hits, static_cast<int>(readings.size()));
}
