// Tests for sparsifying bases (eq. 2) and the vector-ops helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/basis.h"
#include "linalg/matrix.h"
#include "linalg/random.h"
#include "linalg/vector_ops.h"

namespace sl = sensedroid::linalg;

// ----- parameterized orthonormality across all constructible bases -----

struct BasisCase {
  sl::BasisKind kind;
  std::size_t n;
};

class BasisOrthonormality : public ::testing::TestWithParam<BasisCase> {};

TEST_P(BasisOrthonormality, BasisIsOrthonormal) {
  const auto& p = GetParam();
  auto b = sl::make_basis(p.kind, p.n, /*seed=*/99);
  EXPECT_TRUE(sl::is_orthonormal(b))
      << sl::to_string(p.kind) << " n=" << p.n;
}

TEST_P(BasisOrthonormality, AnalyzeSynthesizeRoundTrip) {
  const auto& p = GetParam();
  auto b = sl::make_basis(p.kind, p.n, /*seed=*/99);
  sl::Rng rng(p.n);
  auto x = rng.gaussian_vector(p.n);
  auto alpha = sl::analyze(b, x);
  auto back = sl::synthesize(b, alpha);
  EXPECT_LT(sl::relative_error(back, x), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BasisOrthonormality,
    ::testing::Values(BasisCase{sl::BasisKind::kIdentity, 16},
                      BasisCase{sl::BasisKind::kDct, 16},
                      BasisCase{sl::BasisKind::kDct, 33},
                      BasisCase{sl::BasisKind::kHaar, 16},
                      BasisCase{sl::BasisKind::kHaar, 64},
                      BasisCase{sl::BasisKind::kGaussian, 24}),
    [](const ::testing::TestParamInfo<BasisCase>& info) {
      return sl::to_string(info.param.kind) + "_" +
             std::to_string(info.param.n);
    });

// ----- specific basis behaviours -----

TEST(DctBasis, ConstantSignalIsOneSparse) {
  auto b = sl::dct_basis(32);
  sl::Vector x(32, 3.0);
  auto alpha = sl::analyze(b, x);
  // All energy in the DC coefficient.
  EXPECT_NEAR(std::abs(alpha[0]), 3.0 * std::sqrt(32.0), 1e-10);
  for (std::size_t i = 1; i < 32; ++i) EXPECT_NEAR(alpha[i], 0.0, 1e-10);
}

TEST(DctBasis, PureCosineIsOneSparse) {
  const std::size_t n = 64;
  auto b = sl::dct_basis(n);
  // Column 5 of the synthesis matrix is exactly a DCT atom.
  auto x = b.col(5);
  auto alpha = sl::analyze(b, x);
  EXPECT_EQ(sl::norm0(alpha, 1e-9), 1u);
}

TEST(HaarBasis, RequiresPowerOfTwo) {
  EXPECT_THROW(sl::haar_basis(12), std::invalid_argument);
  EXPECT_THROW(sl::haar_basis(0), std::invalid_argument);
  EXPECT_NO_THROW(sl::haar_basis(8));
}

TEST(HaarBasis, StepSignalIsSparse) {
  const std::size_t n = 64;
  auto b = sl::haar_basis(n);
  sl::Vector x(n, 1.0);
  for (std::size_t i = n / 2; i < n; ++i) x[i] = -1.0;
  auto alpha = sl::analyze(b, x);
  // A half-domain step is exactly one Haar wavelet.
  EXPECT_LE(sl::norm0(alpha, 1e-9), 2u);
}

TEST(GaussianBasis, DeterministicInSeed) {
  auto a = sl::gaussian_basis(12, 7);
  auto b = sl::gaussian_basis(12, 7);
  auto c = sl::gaussian_basis(12, 8);
  EXPECT_TRUE(sl::approx_equal(a, b));
  EXPECT_FALSE(sl::approx_equal(a, c));
}

TEST(PcaBasis, RecoversDominantDirection) {
  // Traces are multiples of one pattern + tiny noise: the first principal
  // direction must align with the pattern.
  const std::size_t n = 10, t = 40;
  sl::Rng rng(3);
  sl::Vector pattern(n);
  for (std::size_t i = 0; i < n; ++i) {
    pattern[i] = std::sin(0.7 * static_cast<double>(i));
  }
  const double pnorm = sl::norm2(pattern);
  for (double& p : pattern) p /= pnorm;
  sl::Matrix traces(t, n);
  for (std::size_t r = 0; r < t; ++r) {
    const double amp = rng.gaussian(0.0, 5.0);
    for (std::size_t c = 0; c < n; ++c) {
      traces(r, c) = amp * pattern[c] + rng.gaussian(0.0, 0.01);
    }
  }
  auto basis = sl::pca_basis(traces);
  EXPECT_TRUE(sl::is_orthonormal(basis));
  auto first = basis.col(0);
  EXPECT_GT(std::abs(sl::dot(first, pattern)), 0.99);
}

TEST(PcaBasis, RejectsEmpty) {
  EXPECT_THROW(sl::pca_basis(sl::Matrix{}), std::invalid_argument);
}

TEST(MakeBasis, PcaThrowsWithoutTraces) {
  EXPECT_THROW(sl::make_basis(sl::BasisKind::kPca, 8),
               std::invalid_argument);
}

TEST(EffectiveSparsity, DetectsExactSparsity) {
  const std::size_t n = 32;
  auto b = sl::dct_basis(n);
  sl::Vector alpha(n, 0.0);
  alpha[2] = 5.0;
  alpha[7] = -3.0;
  alpha[20] = 1.0;
  auto x = sl::synthesize(b, alpha);
  EXPECT_EQ(sl::effective_sparsity(b, x, 1e-8), 3u);
}

TEST(EffectiveSparsity, ZeroSignalIsZeroSparse) {
  auto b = sl::dct_basis(8);
  sl::Vector x(8, 0.0);
  EXPECT_EQ(sl::effective_sparsity(b, x), 0u);
}

// ----- vector ops -----

TEST(VectorOps, Norms) {
  sl::Vector v{3.0, -4.0, 0.0};
  EXPECT_DOUBLE_EQ(sl::norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(sl::norm1(v), 7.0);
  EXPECT_DOUBLE_EQ(sl::norm_inf(v), 4.0);
  EXPECT_EQ(sl::norm0(v), 2u);
}

TEST(VectorOps, DotAndAxpy) {
  sl::Vector a{1.0, 2.0};
  sl::Vector b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(sl::dot(a, b), 11.0);
  sl::axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 5.0);
  EXPECT_DOUBLE_EQ(b[1], 8.0);
  sl::Vector c{1.0};
  EXPECT_THROW(sl::dot(a, c), std::invalid_argument);
}

TEST(VectorOps, NrmseIsScaleFree) {
  sl::Vector truth{1.0, 2.0, 3.0, 4.0};
  sl::Vector est{1.1, 2.1, 3.1, 4.1};
  auto truth10 = sl::scaled(truth, 10.0);
  auto est10 = sl::scaled(est, 10.0);
  EXPECT_NEAR(sl::nrmse(est, truth), sl::nrmse(est10, truth10), 1e-12);
}

TEST(VectorOps, PerfectReconstructionHasZeroError) {
  sl::Vector v{1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(sl::rmse(v, v), 0.0);
  EXPECT_DOUBLE_EQ(sl::nrmse(v, v), 0.0);
  EXPECT_DOUBLE_EQ(sl::relative_error(v, v), 0.0);
}

TEST(VectorOps, PearsonDetectsPerfectCorrelation) {
  sl::Vector a{1.0, 2.0, 3.0};
  sl::Vector b{2.0, 4.0, 6.0};
  EXPECT_NEAR(sl::pearson(a, b), 1.0, 1e-12);
  auto neg = sl::scaled(b, -1.0);
  EXPECT_NEAR(sl::pearson(a, neg), -1.0, 1e-12);
  sl::Vector flat{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(sl::pearson(a, flat), 0.0);
}

TEST(VectorOps, TopKAndHardThreshold) {
  sl::Vector v{0.1, -5.0, 2.0, 0.0, 3.0};
  auto top2 = sl::top_k_by_magnitude(v, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 1u);
  EXPECT_EQ(top2[1], 4u);
  auto t = sl::hard_threshold(v, 2);
  EXPECT_DOUBLE_EQ(t[1], -5.0);
  EXPECT_DOUBLE_EQ(t[4], 3.0);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[2], 0.0);
}

TEST(VectorOps, MeanVariance) {
  sl::Vector v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(sl::mean(v), 5.0);
  EXPECT_DOUBLE_EQ(sl::variance(v), 4.0);
  EXPECT_DOUBLE_EQ(sl::mean(sl::Vector{}), 0.0);
}

// ----- rng -----

TEST(Rng, DeterministicStreams) {
  sl::Rng a(123), b(123), c(124);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  sl::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, SampleWithoutReplacementIsValid) {
  sl::Rng rng(77);
  auto s = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LT(s[i - 1], s[i]);  // sorted + distinct
  }
  EXPECT_LT(s.back(), 100u);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, SampleFullRangeIsPermutationOfAll) {
  sl::Rng rng(5);
  auto s = rng.sample_without_replacement(10, 10);
  ASSERT_EQ(s.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  sl::Rng rng(31);
  const std::size_t n = 20000;
  auto v = rng.gaussian_vector(n);
  EXPECT_NEAR(sl::mean(v), 0.0, 0.05);
  EXPECT_NEAR(sl::variance(v), 1.0, 0.05);
}

TEST(Rng, ExponentialValidatesRate) {
  sl::Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_GT(rng.exponential(2.0), 0.0);
}

TEST(Rng, PermutationContainsAllIndices) {
  sl::Rng rng(8);
  auto p = rng.permutation(20);
  std::vector<bool> seen(20, false);
  for (auto i : p) {
    ASSERT_LT(i, 20u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  sl::Rng a(55);
  sl::Rng child = a.fork();
  // Streams should diverge immediately.
  EXPECT_NE(a.next_u64(), child.next_u64());
}
