// Cross-cutting property suites (parameterized sweeps): invariants that
// must hold across whole parameter grids, not just single cases.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cs/chs.h"
#include "cs/omp.h"
#include "field/zones.h"
#include "hierarchy/nanocloud.h"
#include "field/generators.h"
#include "linalg/basis.h"
#include "linalg/vector_ops.h"
#include "sim/radio.h"

namespace sc = sensedroid::cs;
namespace sf = sensedroid::field;
namespace sh = sensedroid::hierarchy;
namespace sl = sensedroid::linalg;
namespace ss = sensedroid::sim;

// ---- ZoneGrid tiling: zones always partition the field exactly ----

class ZoneTiling : public ::testing::TestWithParam<
                       std::tuple<std::size_t, std::size_t, std::size_t,
                                  std::size_t>> {};

TEST_P(ZoneTiling, ZonesPartitionField) {
  const auto [w, h, rows, cols] = GetParam();
  sf::ZoneGrid grid(w, h, rows, cols);
  // Every cell belongs to exactly one zone, and zone sizes sum to N.
  std::size_t total = 0;
  for (const auto& z : grid.zones()) total += z.size();
  EXPECT_EQ(total, w * h);
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      const auto& z = grid.zone_at(i, j);
      EXPECT_GE(i, z.i0);
      EXPECT_LT(i, z.i0 + z.height);
      EXPECT_GE(j, z.j0);
      EXPECT_LT(j, z.j0 + z.width);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZoneTiling,
    ::testing::Values(std::make_tuple(8, 8, 2, 2),
                      std::make_tuple(13, 7, 3, 4),
                      std::make_tuple(17, 17, 5, 3),
                      std::make_tuple(6, 20, 4, 2),
                      std::make_tuple(9, 9, 9, 9),
                      std::make_tuple(31, 5, 2, 7)));

// ---- CS phase behaviour: recovery rate is monotone in M ----

class RecoveryMonotone
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RecoveryMonotone, MoreMeasurementsNeverHurt) {
  const auto [n, k] = GetParam();
  auto rate_at = [&](std::size_t m) {
    int ok = 0;
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
      sl::Rng rng(4000 + static_cast<std::uint64_t>(t) * 7 + n + m);
      sl::Matrix a(m, n);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
      }
      sl::Vector alpha(n, 0.0);
      for (std::size_t j : rng.sample_without_replacement(n, k)) {
        alpha[j] = rng.uniform(1.0, 2.0);
      }
      const auto y = a * alpha;
      const auto sol = sc::omp_solve(a, y, {.max_sparsity = k});
      if (sl::relative_error(sol.coefficients, alpha) < 1e-6) ++ok;
    }
    return ok;
  };
  // Rates sampled on a coarse M grid must be non-decreasing within slack
  // of 1 trial (finite-sample noise).
  int prev = -1;
  for (std::size_t m = k + 2; m <= n / 2; m += n / 8) {
    const int r = rate_at(m);
    EXPECT_GE(r, prev - 1) << "n=" << n << " k=" << k << " m=" << m;
    prev = std::max(prev, r);
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, RecoveryMonotone,
                         ::testing::Values(std::make_tuple(64u, 3u),
                                           std::make_tuple(96u, 5u),
                                           std::make_tuple(128u, 6u)));

// ---- Energy conservation in a NanoCloud round ----

TEST(EnergyConservation, NodeEnergyMatchesMeterSum) {
  sl::Rng rng(1);
  auto truth = sf::random_plume_field(10, 10, 2, rng, 20.0);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  sh::NanoCloud nc(truth, cfg, rng);
  const double before = nc.total_node_energy_j();
  EXPECT_DOUBLE_EQ(before, 0.0);
  const auto r1 = nc.gather(30, rng);
  // gather's reported delta equals the meter total.
  EXPECT_NEAR(r1.node_energy_j, nc.total_node_energy_j(), 1e-12);
  const auto r2 = nc.gather(30, rng);
  EXPECT_NEAR(r1.node_energy_j + r2.node_energy_j,
              nc.total_node_energy_j(), 1e-12);
}

TEST(EnergyConservation, GatherStatsAccumulateAdditively) {
  sensedroid::middleware::GatherStats a;
  a.commands_sent = 3;
  a.broker_energy_j = 1.5;
  sensedroid::middleware::GatherStats b;
  b.commands_sent = 2;
  b.replies_received = 2;
  b.broker_energy_j = 0.5;
  a += b;
  EXPECT_EQ(a.commands_sent, 5u);
  EXPECT_EQ(a.replies_received, 2u);
  EXPECT_DOUBLE_EQ(a.broker_energy_j, 2.0);
}

// ---- Radio sanity across all kinds ----

class RadioProperties : public ::testing::TestWithParam<ss::RadioKind> {};

TEST_P(RadioProperties, DeliveryProbabilityMonotoneNonIncreasing) {
  const auto link = ss::LinkModel::of(GetParam());
  double prev = 1.1;
  for (double frac = 0.0; frac <= 1.3; frac += 0.05) {
    const double p = link.delivery_probability(frac * link.range_m);
    EXPECT_LE(p, prev + 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST_P(RadioProperties, CostsScaleLinearly) {
  const auto link = ss::LinkModel::of(GetParam());
  EXPECT_NEAR(link.tx_energy_j(2000), 2.0 * link.tx_energy_j(1000), 1e-15);
  EXPECT_GT(link.transfer_time_s(1'000'000), link.transfer_time_s(1000));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RadioProperties,
                         ::testing::Values(ss::RadioKind::kWiFi,
                                           ss::RadioKind::kBluetooth,
                                           ss::RadioKind::kGsm),
                         [](const ::testing::TestParamInfo<ss::RadioKind>&
                                info) { return ss::to_string(info.param); });

// ---- CHS solution invariants across budgets and bases ----

class ChsInvariants
    : public ::testing::TestWithParam<std::tuple<std::size_t, sl::BasisKind>> {
};

TEST_P(ChsInvariants, SolutionIsInternallyConsistent) {
  const auto [m, kind] = GetParam();
  const std::size_t n = 64;
  sl::Rng rng(9000 + m);
  const auto basis = sl::make_basis(kind, n, 5);
  sl::Vector alpha(n, 0.0);
  for (std::size_t j : rng.sample_without_replacement(n / 2, 4)) {
    alpha[j] = rng.uniform(1.0, 2.0);
  }
  const auto x = sl::synthesize(basis, alpha);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  const auto meas = sc::measure_exact(x, plan);
  const auto res = sc::chs_reconstruct(basis, meas);

  // (1) support sorted and within bounds, coefficients zero off-support;
  std::vector<bool> on(n, false);
  for (std::size_t i = 0; i < res.support.size(); ++i) {
    EXPECT_LT(res.support[i], n);
    if (i > 0) EXPECT_LT(res.support[i - 1], res.support[i]);
    on[res.support[i]] = true;
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (!on[j]) EXPECT_DOUBLE_EQ(res.coefficients[j], 0.0);
  }
  // (2) reported residual equals the recomputed one;
  const auto fitted = meas.plan.sample_signal(res.reconstruction);
  const double resid =
      sl::norm2(sl::subtract(fitted, meas.values));
  EXPECT_NEAR(res.residual_norm, resid, 1e-9);
  // (3) reconstruction synthesizes exactly from the coefficients.
  const auto direct = basis * res.coefficients;
  EXPECT_LT(sl::relative_error(res.reconstruction, direct), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChsInvariants,
    ::testing::Combine(::testing::Values(12u, 24u, 48u),
                       ::testing::Values(sl::BasisKind::kDct,
                                         sl::BasisKind::kHaar,
                                         sl::BasisKind::kGaussian)));
