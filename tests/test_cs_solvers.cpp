// Tests for OLS/GLS (eqs. 11-12), OMP (eq. 13), simplex, and basis
// pursuit (eqs. 9-10), including the recovery properties the paper's
// analysis relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "cs/basis_pursuit.h"
#include "cs/least_squares.h"
#include "cs/measurement.h"
#include "cs/omp.h"
#include "cs/simplex.h"
#include "linalg/basis.h"
#include "linalg/random.h"
#include "linalg/vector_ops.h"

namespace sc = sensedroid::cs;
namespace sl = sensedroid::linalg;

namespace {

sl::Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  sl::Rng rng(seed);
  sl::Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
  }
  return a;
}

// A random K-sparse coefficient vector with magnitudes in [1, 2].
sl::Vector random_sparse(std::size_t n, std::size_t k, sl::Rng& rng) {
  sl::Vector alpha(n, 0.0);
  for (std::size_t j : rng.sample_without_replacement(n, k)) {
    const double mag = rng.uniform(1.0, 2.0);
    alpha[j] = rng.bernoulli(0.5) ? mag : -mag;
  }
  return alpha;
}

}  // namespace

// ---------------------------------------------------------- OLS / GLS ----

TEST(Ols, RecoversExactCoefficients) {
  auto a = random_matrix(12, 4, 5);
  sl::Rng rng(6);
  auto ctrue = rng.gaussian_vector(4);
  auto y = a * ctrue;
  auto c = sc::solve_ols(a, y);
  EXPECT_LT(sl::relative_error(c, ctrue), 1e-10);
}

TEST(Gls, MatchesOlsUnderHomogeneousNoiseModel) {
  auto a = random_matrix(15, 5, 7);
  sl::Rng rng(8);
  auto y = rng.gaussian_vector(15);
  auto v = sl::Matrix::identity(15) * 0.25;
  auto c_gls = sc::solve_gls(a, y, v);
  auto c_ols = sc::solve_ols(a, y);
  EXPECT_LT(sl::relative_error(c_gls, c_ols), 1e-9);
}

TEST(Gls, DownweightsNoisySensorCorrectly) {
  // Two unknowns, three sensors; the third sensor is wildly wrong but has
  // huge declared variance — GLS must nearly ignore it, OLS must not.
  sl::Matrix a{{1, 0}, {0, 1}, {1, 1}};
  sl::Vector y{1.0, 2.0, 100.0};
  sl::Vector stddev{0.01, 0.01, 1000.0};
  auto c_gls = sc::solve_gls_diag(a, y, stddev);
  EXPECT_NEAR(c_gls[0], 1.0, 1e-3);
  EXPECT_NEAR(c_gls[1], 2.0, 1e-3);
  auto c_ols = sc::solve_ols(a, y);
  EXPECT_GT(std::abs(c_ols[0] - 1.0), 1.0);  // OLS is pulled far away
}

TEST(Gls, DiagonalPathMatchesDenseCovariance) {
  auto a = random_matrix(10, 3, 21);
  sl::Rng rng(22);
  auto y = rng.gaussian_vector(10);
  sl::Vector stddev(10);
  for (auto& s : stddev) s = rng.uniform(0.1, 2.0);
  sl::Vector var(10);
  for (std::size_t i = 0; i < 10; ++i) var[i] = stddev[i] * stddev[i];
  auto dense = sc::solve_gls(a, y, sl::Matrix::diagonal(var));
  auto diag = sc::solve_gls_diag(a, y, stddev);
  EXPECT_LT(sl::relative_error(diag, dense), 1e-9);
}

TEST(Gls, AllExactSensorsFallsBackToOls) {
  auto a = random_matrix(8, 3, 30);
  sl::Rng rng(31);
  auto y = rng.gaussian_vector(8);
  sl::Vector zeros(8, 0.0);
  auto c1 = sc::solve_gls_diag(a, y, zeros);
  auto c2 = sc::solve_ols(a, y);
  EXPECT_LT(sl::relative_error(c1, c2), 1e-12);
}

TEST(Ridge, ShrinksTowardZero) {
  auto a = random_matrix(10, 4, 33);
  sl::Rng rng(34);
  auto y = rng.gaussian_vector(10);
  auto c0 = sc::solve_ridge(a, y, 0.0);
  auto c_ols = sc::solve_ols(a, y);
  EXPECT_LT(sl::relative_error(c0, c_ols), 1e-8);
  auto c_big = sc::solve_ridge(a, y, 1e6);
  EXPECT_LT(sl::norm2(c_big), 1e-3);
  EXPECT_THROW(sc::solve_ridge(a, y, -1.0), std::invalid_argument);
}

// ----------------------------------------------------------------- OMP ----

TEST(Omp, RecoversSparseSignalExactly) {
  const std::size_t n = 64, m = 24, k = 5;
  sl::Rng rng(40);
  auto a = random_matrix(m, n, 41);
  auto alpha = random_sparse(n, k, rng);
  auto y = a * alpha;
  auto sol = sc::omp_solve(a, y, {.max_sparsity = k});
  EXPECT_LT(sl::relative_error(sol.coefficients, alpha), 1e-8);
  EXPECT_EQ(sol.support.size(), k);
  EXPECT_LT(sol.residual_norm, 1e-8);
}

TEST(Omp, StopsAtResidualTolerance) {
  const std::size_t n = 32, m = 16;
  sl::Rng rng(42);
  auto a = random_matrix(m, n, 43);
  auto alpha = random_sparse(n, 3, rng);
  auto y = a * alpha;
  // Generous budget: must stop once residual dies, not exhaust the budget.
  auto sol = sc::omp_solve(a, y, {.max_sparsity = 10, .residual_tol = 1e-8});
  EXPECT_LE(sol.support.size(), 4u);
}

TEST(Omp, HandlesZeroSignal) {
  auto a = random_matrix(8, 16, 44);
  sl::Vector y(8, 0.0);
  auto sol = sc::omp_solve(a, y);
  EXPECT_TRUE(sol.support.empty());
  EXPECT_DOUBLE_EQ(sol.residual_norm, 0.0);
}

TEST(Omp, ValidatesInputs) {
  sl::Matrix a(4, 8);
  sl::Vector y(3);
  EXPECT_THROW(sc::omp_solve(a, y), std::invalid_argument);
  EXPECT_THROW(sc::omp_solve(sl::Matrix{}, sl::Vector{}),
               std::invalid_argument);
}

TEST(Omp, ReconstructSynthesizesFromSupport) {
  const std::size_t n = 32;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(45);
  auto alpha = random_sparse(n, 4, rng);
  auto x = sl::synthesize(basis, alpha);
  sc::SparseSolution sol;
  sol.coefficients = alpha;
  for (std::size_t j = 0; j < n; ++j) {
    if (alpha[j] != 0.0) sol.support.push_back(j);
  }
  auto back = sc::reconstruct(basis, sol);
  EXPECT_LT(sl::relative_error(back, x), 1e-12);
}

TEST(Omp, MinImprovementGuardsAgainstNoiseFitting) {
  const std::size_t n = 48, m = 24;
  sl::Rng rng(46);
  auto a = random_matrix(m, n, 47);
  auto alpha = random_sparse(n, 3, rng);
  auto y = a * alpha;
  for (double& v : y) v += rng.gaussian(0.0, 0.01);
  auto sol = sc::omp_solve(a, y, {.max_sparsity = 20,
                                  .min_improvement = 0.05});
  // Should find roughly the true support, not 20 atoms of noise.
  EXPECT_LE(sol.support.size(), 6u);
}

// ------------------------------------------------------------- simplex ----

TEST(Simplex, SolvesTextbookProblem) {
  // min -3x - 5y s.t. x + s1 = 4; 2y + s2 = 12; 3x + 2y + s3 = 18.
  // Optimum at x=2, y=6, objective -36.
  sc::LpProblem p;
  p.a = sl::Matrix{{1, 0, 1, 0, 0}, {0, 2, 0, 1, 0}, {3, 2, 0, 0, 1}};
  p.b = {4, 12, 18};
  p.c = {-3, -5, 0, 0, 0};
  auto sol = sc::simplex_solve(p);
  ASSERT_EQ(sol.status, sc::LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x1 + x2 = -1 with x >= 0 is infeasible... but b<0 gets normalized;
  // use x1 = 1, x1 = 2 instead (contradictory equalities).
  sc::LpProblem p;
  p.a = sl::Matrix{{1, 0}, {1, 0}};
  p.b = {1, 2};
  p.c = {1, 1};
  auto sol = sc::simplex_solve(p);
  EXPECT_EQ(sol.status, sc::LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x s.t. x - y = 0: x can grow without bound along x = y.
  sc::LpProblem p;
  p.a = sl::Matrix{{1, -1}};
  p.b = {0};
  p.c = {-1, 0};
  auto sol = sc::simplex_solve(p);
  EXPECT_EQ(sol.status, sc::LpStatus::kUnbounded);
}

TEST(Simplex, HandlesNegativeRhs) {
  // -x = -5 -> x = 5.
  sc::LpProblem p;
  p.a = sl::Matrix{{-1.0}};
  p.b = {-5.0};
  p.c = {1.0};
  auto sol = sc::simplex_solve(p);
  ASSERT_EQ(sol.status, sc::LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 5.0, 1e-9);
}

TEST(Simplex, HandlesRedundantConstraints) {
  // Duplicate rows must not break phase 1.
  sc::LpProblem p;
  p.a = sl::Matrix{{1, 1}, {1, 1}};
  p.b = {2, 2};
  p.c = {1, 2};
  auto sol = sc::simplex_solve(p);
  ASSERT_EQ(sol.status, sc::LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);  // all weight on x1
}

TEST(Simplex, ValidatesShapes) {
  sc::LpProblem p;
  p.a = sl::Matrix(2, 3);
  p.b = {1.0};
  p.c = {1.0, 1.0, 1.0};
  EXPECT_THROW(sc::simplex_solve(p), std::invalid_argument);
}

// ------------------------------------------------------- basis pursuit ----

TEST(BasisPursuit, RecoversSparseSignal) {
  const std::size_t n = 40, m = 20, k = 4;
  sl::Rng rng(50);
  auto a = random_matrix(m, n, 51);
  auto alpha = random_sparse(n, k, rng);
  auto y = a * alpha;
  auto sol = sc::basis_pursuit(a, y);
  EXPECT_LT(sl::relative_error(sol.coefficients, alpha), 1e-6);
  EXPECT_LT(sol.residual_norm, 1e-6);
}

TEST(BasisPursuit, AgreesWithOmpOnEasyInstances) {
  const std::size_t n = 32, m = 16, k = 3;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sl::Rng rng(60 + seed);
    auto a = random_matrix(m, n, 70 + seed);
    auto alpha = random_sparse(n, k, rng);
    auto y = a * alpha;
    auto bp = sc::basis_pursuit(a, y);
    auto omp = sc::omp_solve(a, y, {.max_sparsity = k});
    EXPECT_LT(sl::relative_error(bp.coefficients, omp.coefficients), 1e-5)
        << "seed " << seed;
  }
}

TEST(BasisPursuit, MinimizesL1AmongSolutions) {
  // Underdetermined 1x2 system x1 + 2 x2 = 2: the minimum-L1 solution puts
  // everything on the larger column: x = (0, 1), ||x||_1 = 1.
  sl::Matrix a{{1.0, 2.0}};
  sl::Vector y{2.0};
  auto sol = sc::basis_pursuit(a, y);
  EXPECT_NEAR(sol.coefficients[0], 0.0, 1e-8);
  EXPECT_NEAR(sol.coefficients[1], 1.0, 1e-8);
}

TEST(BasisPursuit, ValidatesInput) {
  sl::Matrix a(3, 6);
  sl::Vector y(2);
  EXPECT_THROW(sc::basis_pursuit(a, y), std::invalid_argument);
}

// Property sweep: exact recovery holds across (n, m, k) shapes where
// m >= ~2 k log(n) — the paper's O(K log N) measurement rule.
class RecoveryPhase
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(RecoveryPhase, OmpRecoveryInTheEasyRegime) {
  const auto [n, m, k] = GetParam();
  int successes = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    sl::Rng rng(900 + static_cast<std::uint64_t>(t) * 13 + n);
    auto a = random_matrix(m, n, 800 + static_cast<std::uint64_t>(t) + n);
    auto alpha = random_sparse(n, k, rng);
    auto y = a * alpha;
    auto sol = sc::omp_solve(a, y, {.max_sparsity = k});
    if (sl::relative_error(sol.coefficients, alpha) < 1e-6) ++successes;
  }
  EXPECT_GE(successes, 9) << "n=" << n << " m=" << m << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    EasyRegime, RecoveryPhase,
    ::testing::Values(std::make_tuple(64, 32, 4),
                      std::make_tuple(128, 48, 5),
                      std::make_tuple(96, 40, 4),
                      std::make_tuple(256, 64, 6)));

// ------------------------------------------- incremental OMP refits ----
//
// omp_solve now refits through linalg::UpdatableQR (append/downdate)
// instead of a from-scratch Householder QR per iteration.  These tests
// pin the rewrite to a reference implementation of the old algorithm:
// supports must match atom for atom and coefficients to 1e-12.

namespace {

// The pre-incremental OMP: select_cols + dense QR refit every iteration,
// full residual recompute, dense re-refit on the min_improvement undo.
sc::SparseSolution reference_omp(const sl::Matrix& a,
                                 std::span<const double> y,
                                 const sc::OmpOptions& opts) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k_max =
      opts.max_sparsity == 0 ? std::min(m, n)
                             : std::min({opts.max_sparsity, m, n});
  sl::Vector col_norm(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) col_norm[j] += a(i, j) * a(i, j);
  }
  for (double& c : col_norm) c = std::sqrt(c);

  sc::SparseSolution sol;
  sol.coefficients.assign(n, 0.0);
  sl::Vector residual(y.begin(), y.end());
  const double y_norm = sl::norm2(y);
  double prev_res = y_norm;
  std::vector<bool> picked(n, false);
  sl::Vector coef;

  while (sol.support.size() < k_max) {
    if (sl::norm2(residual) <= opts.residual_tol * std::max(y_norm, 1e-300)) {
      break;
    }
    const sl::Vector corr = a.transpose_times(residual);
    std::size_t best = n;
    double best_val = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (picked[j] || col_norm[j] == 0.0) continue;
      const double v = std::abs(corr[j]) / col_norm[j];
      if (v > best_val) {
        best_val = v;
        best = j;
      }
    }
    if (best == n || best_val == 0.0) break;
    picked[best] = true;
    sol.support.push_back(best);

    const sl::Matrix a_sub = a.select_cols(sol.support);
    coef = sc::solve_ols(a_sub, y);
    residual.assign(y.begin(), y.end());
    const sl::Vector fitted = a_sub * coef;
    for (std::size_t i = 0; i < m; ++i) residual[i] -= fitted[i];

    const double res = sl::norm2(residual);
    if (opts.min_improvement > 0.0 &&
        prev_res - res < opts.min_improvement * std::max(y_norm, 1e-300)) {
      picked[best] = false;
      sol.support.pop_back();
      if (!sol.support.empty()) {
        const sl::Matrix a_prev = a.select_cols(sol.support);
        coef = sc::solve_ols(a_prev, y);
        residual.assign(y.begin(), y.end());
        const sl::Vector f = a_prev * coef;
        for (std::size_t i = 0; i < m; ++i) residual[i] -= f[i];
      } else {
        coef.clear();
        residual.assign(y.begin(), y.end());
      }
      break;
    }
    prev_res = res;
  }
  for (std::size_t i = 0; i < sol.support.size(); ++i) {
    sol.coefficients[sol.support[i]] = coef[i];
  }
  sol.residual_norm = sl::norm2(residual);
  return sol;
}

void expect_equivalent(const sc::SparseSolution& got,
                       const sc::SparseSolution& ref) {
  ASSERT_EQ(got.support, ref.support);  // bit-identical pick sequence
  ASSERT_EQ(got.coefficients.size(), ref.coefficients.size());
  for (std::size_t j = 0; j < got.coefficients.size(); ++j) {
    EXPECT_NEAR(got.coefficients[j], ref.coefficients[j], 1e-12)
        << "coefficient " << j;
  }
  EXPECT_NEAR(got.residual_norm, ref.residual_norm, 1e-10);
}

}  // namespace

TEST(OmpIncremental, MatchesReferenceOnFig4Fixture) {
  // The paper's Fig. 4 regime: 256-point field, DCT basis, ~30 random
  // point samples, ~10-sparse spectrum.
  const std::size_t n = 256, m = 30, k = 10;
  const auto basis = sl::dct_basis(n);
  sl::Rng rng(404);
  auto alpha = random_sparse(n, k, rng);
  const auto x = basis * alpha;
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  const auto meas = sc::measure_exact(x, std::move(plan));
  const sl::Matrix a = meas.plan.select_rows(basis);
  const sc::OmpOptions opts{.max_sparsity = k};
  expect_equivalent(sc::omp_solve(a, meas.values, opts),
                    reference_omp(a, meas.values, opts));
}

TEST(OmpIncremental, MatchesReferenceOnRandomDictionaries) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t n = 64 + 16 * static_cast<std::size_t>(seed % 4);
    const std::size_t m = n / 3, k = 5;
    const auto a = random_matrix(m, n, 7000 + seed);
    sl::Rng rng(7100 + seed);
    const auto alpha = random_sparse(n, k, rng);
    auto y = a * alpha;
    // Mild noise so the refits are doing real least-squares work.
    for (double& v : y) v += 0.01 * rng.gaussian();
    const sc::OmpOptions opts{.max_sparsity = k};
    SCOPED_TRACE(seed);
    expect_equivalent(sc::omp_solve(a, y, opts), reference_omp(a, y, opts));
  }
}

TEST(OmpIncremental, DowndateAfterUndoMatchesReference) {
  // Noisy observations + a min_improvement floor force the undo branch:
  // the last atom is rejected, the engine downdates, and the returned
  // fit must equal the dense refit on the retained support.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::size_t n = 96, m = 32, k = 4;
    const auto a = random_matrix(m, n, 7300 + seed);
    sl::Rng rng(7400 + seed);
    const auto alpha = random_sparse(n, k, rng);
    auto y = a * alpha;
    for (double& v : y) v += 0.05 * rng.gaussian();
    const sc::OmpOptions opts{.max_sparsity = 3 * k,
                              .min_improvement = 0.05};
    SCOPED_TRACE(seed);
    const auto got = sc::omp_solve(a, y, opts);
    const auto ref = reference_omp(a, y, opts);
    expect_equivalent(got, ref);
    // This regime must actually exercise the undo: fewer atoms accepted
    // than iterations performed.
    EXPECT_LE(got.support.size(), got.iterations);
  }
}

TEST(OmpIncremental, IterationsCountPerformedWork) {
  // Exact recovery, no undo: iterations == accepted atoms.
  const auto a = random_matrix(24, 48, 7700);
  sl::Rng rng(7701);
  const auto alpha = random_sparse(48, 4, rng);
  const auto y = a * alpha;
  const auto sol = sc::omp_solve(a, y, {.max_sparsity = 4});
  EXPECT_EQ(sol.iterations, sol.support.size());

  // Forced undo: the rejected iteration still counts as performed, so
  // iterations exceeds the accepted-atom count by exactly one.
  sl::Rng rng2(7702);
  auto y2 = a * alpha;
  for (double& v : y2) v += 0.05 * rng2.gaussian();
  const auto sol2 =
      sc::omp_solve(a, y2, {.max_sparsity = 12, .min_improvement = 0.2});
  if (sol2.iterations > 0) {
    EXPECT_EQ(sol2.iterations, sol2.support.size() + 1);
  }
}
