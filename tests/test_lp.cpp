// The LP stack introduced with the revised simplex: UpdatableLU's
// Bartels-Golub column updates against from-scratch factorizations, the
// revised engine's status/objective equivalence with the dense-tableau
// oracle, warm-start round-trips through LpSolution::basis, and the BP
// fast paths (paired pricing, crash start) that make l1 refits cheap.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "cs/basis_pursuit.h"
#include "cs/cancel.h"
#include "cs/simplex.h"
#include "linalg/decomposition.h"
#include "linalg/random.h"
#include "linalg/updatable_lu.h"
#include "linalg/vector_ops.h"

namespace {

namespace sc = sensedroid::cs;
namespace sl = sensedroid::linalg;

using sl::Matrix;
using sl::Rng;
using sl::UpdatableLU;
using sl::Vector;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
  }
  return a;
}

Vector random_sparse(std::size_t n, std::size_t k, Rng& rng) {
  Vector alpha(n, 0.0);
  for (std::size_t j : rng.sample_without_replacement(n, k)) {
    alpha[j] = rng.uniform(1.0, 2.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
  }
  return alpha;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// --------------------------------------------------------- UpdatableLU ----

TEST(UpdatableLu, FtranBtranMatchDenseSolves) {
  const std::size_t n = 12;
  const Matrix b = random_matrix(n, n, 11);
  UpdatableLU lu(n);
  ASSERT_TRUE(lu.factor(b));
  ASSERT_TRUE(lu.valid());

  Rng rng(12);
  Vector rhs(n);
  for (double& v : rhs) v = rng.gaussian();

  Vector x(n);
  lu.ftran(rhs, x);
  EXPECT_LT(max_abs_diff(x, sl::lu_solve(b, rhs)), 1e-9);

  // BTRAN solves the transposed system.
  Vector xt(n);
  lu.btran(rhs, xt);
  Matrix bt(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) bt(i, j) = b(j, i);
  }
  EXPECT_LT(max_abs_diff(xt, sl::lu_solve(bt, rhs)), 1e-9);
}

TEST(UpdatableLu, ReplaceColumnTracksFreshFactorization) {
  const std::size_t n = 10;
  Matrix b = random_matrix(n, n, 21);
  UpdatableLU lu(n);
  ASSERT_TRUE(lu.factor(b));

  // A long randomized replacement sequence, checked against a fresh
  // factorization of the mutated matrix after every update.
  Rng rng(22);
  Vector col(n), rhs(n), got(n);
  for (double& v : rhs) v = rng.gaussian();
  for (int step = 0; step < 40; ++step) {
    const std::size_t slot = static_cast<std::size_t>(
        rng.uniform(0.0, 1.0) * static_cast<double>(n));
    for (double& v : col) v = rng.gaussian();
    for (std::size_t i = 0; i < n; ++i) b(i, slot) = col[i];
    ASSERT_TRUE(lu.replace_column(slot, col)) << "step " << step;

    lu.ftran(rhs, got);
    EXPECT_LT(max_abs_diff(got, sl::lu_solve(b, rhs)), 1e-7)
        << "ftran diverged at step " << step;
  }
  EXPECT_EQ(lu.updates_since_factor(), 40u);
}

TEST(UpdatableLu, DetectsSingularFactorAndUpdate) {
  const std::size_t n = 6;
  Matrix singular(n, n);  // all zeros
  UpdatableLU lu(n);
  EXPECT_FALSE(lu.factor(singular));
  EXPECT_FALSE(lu.valid());
  EXPECT_THROW(lu.replace_column(0, Vector(n, 1.0)),
               std::logic_error);

  const Matrix b = random_matrix(n, n, 31);
  ASSERT_TRUE(lu.factor(b));
  // Replacing column 0 with a copy of column 1 makes the basis singular:
  // the update must report failure and invalidate the factorization.
  Vector dup(n);
  for (std::size_t i = 0; i < n; ++i) dup[i] = b(i, 1);
  EXPECT_FALSE(lu.replace_column(0, dup));
  EXPECT_FALSE(lu.valid());
  // factor() recovers.
  ASSERT_TRUE(lu.factor(b));
  EXPECT_TRUE(lu.valid());
  EXPECT_GT(lu.diag_ratio(), 0.0);
}

// ------------------------------------------------------ revised simplex ----

sc::SimplexOptions engine_opts(sc::SimplexEngine e) {
  sc::SimplexOptions o;
  o.engine = e;
  return o;
}

TEST(RevisedSimplex, MatchesTableauOnTextbookProblem) {
  sc::LpProblem p;
  p.a = Matrix{{1, 0, 1, 0, 0}, {0, 2, 0, 1, 0}, {3, 2, 0, 0, 1}};
  p.b = {4, 12, 18};
  p.c = {-3, -5, 0, 0, 0};
  for (const auto engine :
       {sc::SimplexEngine::kRevised, sc::SimplexEngine::kTableau}) {
    const auto sol = sc::simplex_solve(p, engine_opts(engine));
    ASSERT_EQ(sol.status, sc::LpStatus::kOptimal);
    EXPECT_NEAR(sol.objective, -36.0, 1e-9);
    EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
    EXPECT_NEAR(sol.x[1], 6.0, 1e-9);
    ASSERT_EQ(sol.basis.size(), 3u);
  }
}

TEST(RevisedSimplex, DetectsInfeasible) {
  sc::LpProblem p;  // x1 = 1 and x1 = 2 simultaneously
  p.a = Matrix{{1, 0}, {1, 0}};
  p.b = {1, 2};
  p.c = {1, 1};
  const auto sol =
      sc::simplex_solve(p, engine_opts(sc::SimplexEngine::kRevised));
  EXPECT_EQ(sol.status, sc::LpStatus::kInfeasible);
}

TEST(RevisedSimplex, DetectsUnbounded) {
  sc::LpProblem p;  // min -x s.t. x - y = 0
  p.a = Matrix{{1, -1}};
  p.b = {0};
  p.c = {-1, 0};
  const auto sol =
      sc::simplex_solve(p, engine_opts(sc::SimplexEngine::kRevised));
  EXPECT_EQ(sol.status, sc::LpStatus::kUnbounded);
}

TEST(RevisedSimplex, SurvivesDegeneracyViaBlandFallback) {
  // A classic cycling-prone instance (Beale): Dantzig pricing stalls on
  // degenerate pivots until the anti-cycling fallback arms.  The solve
  // must terminate at the optimum either way.
  sc::LpProblem p;
  p.a = Matrix{{0.25, -60.0, -0.04, 9.0, 1.0, 0.0, 0.0},
               {0.5, -90.0, -0.02, 3.0, 0.0, 1.0, 0.0},
               {0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0}};
  p.b = {0.0, 0.0, 1.0};
  p.c = {-0.75, 150.0, -0.02, 6.0, 0.0, 0.0, 0.0};
  for (const auto pricing :
       {sc::SimplexPricing::kDantzig, sc::SimplexPricing::kSteepestEdge,
        sc::SimplexPricing::kBland}) {
    sc::SimplexOptions o;
    o.pricing = pricing;
    const auto sol = sc::simplex_solve(p, o);
    ASSERT_EQ(sol.status, sc::LpStatus::kOptimal);
    EXPECT_NEAR(sol.objective, -0.05, 1e-9);
  }
}

TEST(RevisedSimplex, CancelTokenStopsTheSolve) {
  const std::size_t n = 64, m = 16;
  const Matrix a = random_matrix(m, n, 41);
  Rng rng(42);
  Vector y(m);
  for (double& v : y) v = rng.gaussian();
  sc::CancelToken cancel;
  cancel.cancel();
  for (const auto engine :
       {sc::SimplexEngine::kRevised, sc::SimplexEngine::kTableau}) {
    sc::SimplexOptions o;
    o.engine = engine;
    o.cancel = &cancel;
    const auto sol = sc::simplex_solve_bp(a, y, o);
    EXPECT_EQ(sol.status, sc::LpStatus::kCancelled);
  }
}

TEST(RevisedSimplex, BasisRoundTripResolvesWithoutPivots) {
  const std::size_t n = 48, m = 12, k = 4;
  const Matrix a = random_matrix(m, n, 51);
  Rng rng(52);
  const Vector alpha = random_sparse(n, k, rng);
  const Vector y = a * alpha;

  const auto first = sc::simplex_solve_bp(a, y);
  ASSERT_EQ(first.status, sc::LpStatus::kOptimal);
  ASSERT_EQ(first.basis.size(), m);
  EXPECT_GT(first.iterations, 0u);

  // Re-solving the identical instance from the exported basis must
  // accept it, skip phase 1, and confirm optimality with zero pivots.
  sc::SimplexOptions warm;
  warm.warm_basis = first.basis;
  const auto second = sc::simplex_solve_bp(a, y, warm);
  ASSERT_EQ(second.status, sc::LpStatus::kOptimal);
  EXPECT_EQ(second.iterations, 0u);
  EXPECT_NEAR(second.objective, first.objective, 1e-10);
  EXPECT_EQ(second.basis, first.basis);
}

TEST(RevisedSimplex, RejectsGarbageWarmBasisAndStillSolves) {
  const std::size_t n = 32, m = 8, k = 3;
  const Matrix a = random_matrix(m, n, 61);
  Rng rng(62);
  const Vector y = a * random_sparse(n, k, rng);

  sc::SimplexOptions warm;
  warm.warm_basis.assign(m, 0);  // duplicate ids: must fall back cleanly
  const auto sol = sc::simplex_solve_bp(a, y, warm);
  ASSERT_EQ(sol.status, sc::LpStatus::kOptimal);
  const auto cold = sc::simplex_solve_bp(a, y);
  EXPECT_NEAR(sol.objective, cold.objective, 1e-9);
}

// Randomized equivalence sweep: the revised engine against the dense
// tableau on bounded-feasible LPs (b = A x0 with x0 >= 0 keeps phase 1
// honest; c >= 0 bounds the objective from below).  Statuses must be
// identical and objectives equal to 1e-8 — pivot paths may differ.
TEST(RevisedSimplex, AgreesWithTableauOnRandomFeasibleLps) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(100 + seed);
    const std::size_t m = 3 + static_cast<std::size_t>(seed % 5);
    const std::size_t n = m + 2 + static_cast<std::size_t>(seed % 7);
    sc::LpProblem p;
    p.a = random_matrix(m, n, 200 + seed);
    Vector x0(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      x0[j] = rng.bernoulli(0.5) ? rng.uniform(0.0, 2.0) : 0.0;
    }
    p.b = p.a * x0;
    p.c.assign(n, 0.0);
    for (double& cj : p.c) cj = rng.uniform(0.0, 3.0);

    const auto rev =
        sc::simplex_solve(p, engine_opts(sc::SimplexEngine::kRevised));
    const auto tab =
        sc::simplex_solve(p, engine_opts(sc::SimplexEngine::kTableau));
    ASSERT_EQ(rev.status, tab.status) << "seed " << seed;
    ASSERT_EQ(rev.status, sc::LpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(rev.objective, tab.objective, 1e-8) << "seed " << seed;
  }
}

// Same sweep through the BP front door: the revised engine's paired
// pricing and crash start against the materialized [A, -A] tableau.
TEST(RevisedSimplex, BpEnginesAgreeOnRandomSparseInstances) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::size_t n = 40 + 8 * static_cast<std::size_t>(seed % 3);
    const std::size_t m = n / 2;
    const std::size_t k = 2 + static_cast<std::size_t>(seed % 4);
    const Matrix a = random_matrix(m, n, 300 + seed);
    Rng rng(400 + seed);
    const Vector y = a * random_sparse(n, k, rng);

    const auto rev = sc::simplex_solve_bp(a, y);
    sc::SimplexOptions tab_opts;
    tab_opts.engine = sc::SimplexEngine::kTableau;
    const auto tab = sc::simplex_solve_bp(a, y, tab_opts);
    ASSERT_EQ(rev.status, sc::LpStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(tab.status, sc::LpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(rev.objective, tab.objective, 1e-8) << "seed " << seed;
  }
}

// ------------------------------------------------------------ bp_solve ----

TEST(BpSolve, ExportsBasisAndRecoversSignal) {
  const std::size_t n = 64, m = 24, k = 5;
  const Matrix a = random_matrix(m, n, 71);
  Rng rng(72);
  const Vector alpha = random_sparse(n, k, rng);
  const Vector y = a * alpha;

  const auto sol = sc::bp_solve(a, y);
  ASSERT_EQ(sol.status, sc::LpStatus::kOptimal);
  EXPECT_EQ(sol.basis.size(), m);
  EXPECT_LT(sl::relative_error(sol.solution.coefficients, alpha), 1e-6);
  EXPECT_LT(sol.solution.residual_norm, 1e-6);
}

TEST(BpSolve, ReportsCancellationInsteadOfThrowing) {
  const Matrix a = random_matrix(6, 16, 81);
  Rng rng(82);
  const Vector y = a * random_sparse(16, 2, rng);
  sc::CancelToken cancel;
  cancel.cancel();
  sc::BasisPursuitOptions o;
  o.lp.cancel = &cancel;
  const auto sol = sc::bp_solve(a, y, o);
  EXPECT_EQ(sol.status, sc::LpStatus::kCancelled);
}

}  // namespace
