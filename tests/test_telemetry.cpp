// sensedroid_telemetryd tests: flight-recorder semantics, the per-zone
// health/SLO engine, cross-worker trace propagation (ThreadPool context
// capture + zone-shard merging), and the TelemetryServer — including
// the headline acceptance check: scraping /metrics, /healthz, /report,
// and /spans over loopback WHILE an 8-worker faulted campaign runs must
// succeed and must not change one byte of the campaign's deterministic
// RunReport relative to a 1-worker run with no server at all.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "exec/campaign_runner.h"
#include "exec/thread_pool.h"
#include "fault/fault.h"
#include "field/generators.h"
#include "field/zones.h"
#include "hierarchy/localcloud.h"
#include "linalg/random.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"

namespace se = sensedroid::exec;
namespace sf = sensedroid::field;
namespace sfl = sensedroid::fault;
namespace sh = sensedroid::hierarchy;
namespace sl = sensedroid::linalg;
namespace so = sensedroid::obs;

namespace {

// Detach every global sink and disarm the recorder around each test.
class TelemetryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    so::attach_registry(nullptr);
    so::attach_trace(nullptr);
    so::FlightRecorder::disarm();
    so::FlightRecorder::reset();
  }
};

// ---------------------------------------------------------- flight recorder

TEST_F(TelemetryTest, FlightRecorderIsInertWhileDisarmed) {
  so::FlightRecorder::reset();
  const std::uint64_t before = so::FlightRecorder::total_recorded();
  so::fr_record(so::FrEvent::kMark, 1, 2.0);
  EXPECT_EQ(so::FlightRecorder::total_recorded(), before);
  EXPECT_EQ(so::FlightRecorder::event_count(), 0u);
}

TEST_F(TelemetryTest, FlightRecorderRecordsAndDumpsJsonl) {
  so::FlightRecorder::reset();
  so::FlightRecorder::arm();
  so::fr_record(so::FrEvent::kMark, 7, 0.25);
  so::fr_record(so::FrEvent::kRetryAttempt, 12, 1.0);
  so::fr_record(so::FrEvent::kFailover, 3, 42.0);
  so::FlightRecorder::disarm();

  EXPECT_EQ(so::FlightRecorder::event_count(), 3u);
  const std::string dump = so::FlightRecorder::dump_jsonl();
  EXPECT_NE(dump.find("\"type\":\"mark\",\"arg\":7,\"value\":0.25"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"type\":\"retry_attempt\",\"arg\":12"),
            std::string::npos);
  EXPECT_NE(dump.find("\"type\":\"failover\",\"arg\":3,\"value\":42"),
            std::string::npos);
  // Dumping does not consume events; reset does.
  EXPECT_EQ(so::FlightRecorder::event_count(), 3u);
  so::FlightRecorder::reset();
  EXPECT_EQ(so::FlightRecorder::event_count(), 0u);
  EXPECT_TRUE(so::FlightRecorder::dump_jsonl().empty());
}

TEST_F(TelemetryTest, FlightRecorderOverwritesOldestBeyondCapacity) {
  so::FlightRecorder::reset();
  so::FlightRecorder::arm();
  const std::size_t cap = so::FlightRecorder::ring_capacity();
  const std::uint64_t before = so::FlightRecorder::total_recorded();
  for (std::size_t i = 0; i < cap + 100; ++i) {
    so::fr_record(so::FrEvent::kMark, static_cast<std::uint32_t>(i));
  }
  so::FlightRecorder::disarm();
  EXPECT_EQ(so::FlightRecorder::total_recorded() - before, cap + 100);
  // This thread's ring retains exactly its capacity (other threads'
  // rings are empty after reset()).
  EXPECT_EQ(so::FlightRecorder::event_count(), cap);
  // The retained window is the most recent one: the first surviving arg
  // is 100, the last is cap + 99.
  const std::string dump = so::FlightRecorder::dump_jsonl();
  EXPECT_EQ(dump.find("\"arg\":42,"), std::string::npos);
  EXPECT_NE(dump.find("\"arg\":" + std::to_string(cap + 99) + ","),
            std::string::npos);
}

TEST_F(TelemetryTest, FlightRecorderThreadsGetPrivateRings) {
  so::FlightRecorder::reset();
  so::FlightRecorder::arm();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        so::fr_record(so::FrEvent::kMark, static_cast<std::uint32_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  so::FlightRecorder::disarm();
  EXPECT_EQ(so::FlightRecorder::event_count(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST_F(TelemetryTest, FlightRecorderDumpToFileAppends) {
  const std::string path = ::testing::TempDir() + "fr_dump_test.jsonl";
  std::remove(path.c_str());
  so::FlightRecorder::reset();
  so::FlightRecorder::arm();
  so::fr_record(so::FrEvent::kTopup, 5, 2.0);
  so::FlightRecorder::disarm();
  ASSERT_TRUE(so::FlightRecorder::dump_to_file(path));
  ASSERT_TRUE(so::FlightRecorder::dump_to_file(path));  // appends
  std::ifstream f(path);
  std::string line;
  int topups = 0;
  while (std::getline(f, line)) {
    if (line.find("\"type\":\"topup\"") != std::string::npos) ++topups;
  }
  EXPECT_EQ(topups, 2);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ health engine

TEST_F(TelemetryTest, HealthEngineScoresCleanAndTroubledZones) {
  so::MetricsRegistry reg;
  const so::Labels z0{{"zone", "0"}};
  const so::Labels z1{{"zone", "1"}};
  // Zone 0: 10 clean rounds.  Zone 1: half its rounds degraded and only
  // 1 of 10 retries recovered.
  reg.counter("hier.zone.rounds", z0).add(10.0);
  reg.counter("hier.zone.rounds", z1).add(10.0);
  reg.counter("hier.zone.degraded_rounds", z1).add(5.0);
  reg.counter("hier.zone.retries", z1).add(10.0);
  reg.counter("hier.zone.recovered", z1).add(1.0);

  so::HealthEngine engine(&reg);
  const auto zones = engine.evaluate();
  ASSERT_EQ(zones.size(), 2u);
  EXPECT_EQ(zones[0].zone, 0u);
  EXPECT_EQ(zones[1].zone, 1u);
  EXPECT_DOUBLE_EQ(zones[0].score, 1.0);
  EXPECT_STREQ(zones[0].verdict, "healthy");
  // Zone 1: latency 1, recovery 0.1, availability 0.5, energy 1
  //   -> 0.35 + 0.025 + 0.125 + 0.15 = 0.65 -> degraded.
  EXPECT_NEAR(zones[1].score, 0.65, 1e-12);
  EXPECT_STREQ(zones[1].verdict, "degraded");
  EXPECT_NEAR(engine.worst_score(), 0.65, 1e-12);
  EXPECT_STREQ(engine.verdict(), "degraded");

  // Scores are published as gauges in the engine's own registry.
  EXPECT_DOUBLE_EQ(
      engine.gauges().gauge("health.zone", {{"id", "0"}}).value(), 1.0);
  EXPECT_NEAR(engine.gauges().gauge_value("health.worst"), 0.65, 1e-12);
  // ... and never into the campaign registry (determinism rule).
  EXPECT_DOUBLE_EQ(reg.gauge_value("health.worst"), 0.0);

  const std::string json = engine.to_json();
  EXPECT_NE(json.find("\"verdict\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"zones\":[{\"id\":0"), std::string::npos);
}

TEST_F(TelemetryTest, HealthEngineLatencyBurnRate) {
  so::MetricsRegistry reg;
  const so::Labels z0{{"zone", "0"}};
  reg.counter("hier.zone.rounds", z0).add(20.0);
  // 20 gathers with custom bounds so the over-SLO count is exact: 16
  // fast, 4 above the 50 ms SLO -> violation 0.2, burn 2.0 -> latency 0.
  auto& h = reg.histogram("hier.zone.gather_us", z0, {1000.0, 50000.0});
  for (int i = 0; i < 16; ++i) h.observe(500.0);
  for (int i = 0; i < 4; ++i) h.observe(90000.0);

  so::HealthEngine engine(&reg);
  const auto zones = engine.evaluate();
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_DOUBLE_EQ(zones[0].latency, 0.0);
  // Score = 0.25 + 0.25 + 0.15 = 0.65 with the other components perfect.
  EXPECT_NEAR(zones[0].score, 0.65, 1e-12);

  // A zone with every gather inside the SLO scores latency 1.
  so::MetricsRegistry clean;
  clean.counter("hier.zone.rounds", z0).add(5.0);
  clean.histogram("hier.zone.gather_us", z0, {1000.0, 50000.0})
      .observe(800.0);
  so::HealthEngine engine2(&clean);
  EXPECT_DOUBLE_EQ(engine2.evaluate().at(0).latency, 1.0);
}

TEST_F(TelemetryTest, HealthEngineEnergyFloor) {
  so::MetricsRegistry reg;
  const so::Labels z0{{"zone", "0"}};
  reg.counter("hier.zone.rounds", z0).add(1.0);
  reg.counter("hier.zone.energy_j", z0).add(7.5);
  so::HealthConfig cfg;
  cfg.energy_floor_j = 10.0;
  so::HealthEngine engine(&reg, cfg);
  const auto zones = engine.evaluate();
  EXPECT_NEAR(zones.at(0).energy, 0.25, 1e-12);  // 25% budget left
  // Past the floor the component clamps at 0 and drags the verdict.
  reg.counter("hier.zone.energy_j", z0).add(100.0);
  EXPECT_DOUBLE_EQ(engine.evaluate().at(0).energy, 0.0);
}

TEST_F(TelemetryTest, HealthEngineAutoDumpsOnFaultGrowth) {
  const std::string path = ::testing::TempDir() + "fr_auto_dump.jsonl";
  std::remove(path.c_str());
  so::MetricsRegistry reg;
  so::HealthEngine engine(&reg);
  engine.set_auto_dump(path);

  so::FlightRecorder::reset();
  so::FlightRecorder::arm();
  so::fr_record(so::FrEvent::kFaultLinkDrop, 2);
  so::FlightRecorder::disarm();

  engine.evaluate();  // no fault counters yet: no dump
  EXPECT_FALSE(std::ifstream(path).good());
  reg.counter("fault.link.drops").add(1.0);
  engine.evaluate();  // fault section grew: dump fires
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"type\":\"fault_link_drop\""), std::string::npos);
  std::remove(path.c_str());
}

// ------------------------------------------------------- trace propagation

TEST_F(TelemetryTest, SubmitPropagatesTraceContextAcrossThreads) {
  so::TraceLog log;
  so::attach_trace(&log);
  se::ThreadPool pool(2);
  std::uint64_t parent_id = 0;
  {
    so::ScopedSpan parent("driver.step");
    parent_id = so::TraceContext::current().parent;
    ASSERT_NE(parent_id, 0u);
    pool.submit([] { so::ScopedSpan child("worker.task"); }).get();
  }
  const auto spans = log.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const auto& child =
      spans[0].name == "worker.task" ? spans[0] : spans[1];
  EXPECT_EQ(child.parent, parent_id);
  EXPECT_EQ(child.depth, 1);
}

TEST_F(TelemetryTest, SubmitWithoutOpenSpanYieldsRootSpans) {
  so::TraceLog log;
  so::attach_trace(&log);
  se::ThreadPool pool(2);
  pool.submit([] { so::ScopedSpan s("lone.task"); }).get();
  const auto spans = log.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].depth, 0);
}

TEST_F(TelemetryTest, MergeFromReparentsShardUnderGivenSpan) {
  so::TraceLog main_log;
  so::TraceLog shard;
  const std::uint64_t round = main_log.begin("round");
  {
    // Binding a shard isolates the thread's span stack: even with the
    // main-log "round" span still open on this thread, shard-local
    // parents must never reference main-log ids.
    so::ScopedTraceShard bind(&shard);
    so::ScopedSpan outer("zone.gather");
    so::ScopedSpan inner("zone.solve");
  }
  main_log.end(round);
  main_log.merge_from(shard, round);
  const auto spans = main_log.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].name, "zone.gather");
  EXPECT_EQ(spans[1].parent, round);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "zone.solve");
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[2].depth, 2);
}

// The structural fingerprint of a trace: everything except ids and
// wall-clock times.  Worker-count invariance is stated over this.
std::string trace_shape(const so::TraceLog& log) {
  std::string shape;
  for (const auto& s : log.snapshot()) {
    shape += s.name + "/" + std::to_string(s.parent) + "/" +
             std::to_string(s.depth) + "\n";
  }
  return shape;
}

void run_traced_campaign(std::size_t workers, so::TraceLog& log) {
  sl::Rng field_rng(31);
  const auto truth = sf::random_plume_field(12, 12, 2, field_rng, 10.0);
  const sf::ZoneGrid grid(12, 12, 2, 2);  // 4 zones
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  sl::Rng rng(17);
  sh::LocalCloud cloud(truth, grid, cfg, rng);
  so::attach_trace(&log);
  se::ThreadPool pool(workers);
  se::ParallelCampaignRunner runner(cloud, pool);
  runner.run_round_uniform(10, rng);
  runner.run_round_uniform(10, rng);
  so::attach_trace(nullptr);
}

TEST_F(TelemetryTest, CampaignTraceTreeIsWorkerCountInvariant) {
  so::TraceLog serial;
  so::TraceLog parallel;
  run_traced_campaign(1, serial);
  run_traced_campaign(8, parallel);
  const std::string shape = trace_shape(serial);
  EXPECT_EQ(shape, trace_shape(parallel));
  // And the shape is the intended one: every zone gather is a child of a
  // round span, not a disconnected root.
  const auto spans = serial.snapshot();
  std::uint64_t round_id = 0;
  std::size_t gathers = 0;
  for (const auto& s : spans) {
    if (s.name == "exec.runner.round") round_id = s.id;
    if (s.name == "hier.nanocloud.gather") {
      ++gathers;
      EXPECT_EQ(s.parent, round_id) << "gather not nested under round";
      EXPECT_EQ(s.depth, 1);
    }
  }
  EXPECT_EQ(gathers, 8u);  // 4 zones x 2 rounds
}

// ---------------------------------------------------------- telemetry server

// Minimal loopback HTTP GET; returns status line + headers + body.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST_F(TelemetryTest, HandleRoutesWithoutSockets) {
  so::MetricsRegistry reg;
  reg.counter("cs.omp.solves").add(2.0);
  so::TraceLog log;
  log.instant("ping");
  so::HealthEngine engine(&reg);
  so::TelemetryServer server({&reg, &log, &engine, "unit"});

  auto metrics = server.handle("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("cs_omp_solves 2"), std::string::npos);
  EXPECT_NE(metrics.body.find("health_worst"), std::string::npos);

  auto healthz = server.handle("/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"verdict\":\"healthy\""),
            std::string::npos);

  auto report = server.handle("/report");
  EXPECT_EQ(report.status, 200);
  EXPECT_NE(report.body.find("\"campaign\":\"unit\""), std::string::npos);
  EXPECT_NE(report.body.find("\"schema_version\":"), std::string::npos);

  auto spans = server.handle("/spans");
  EXPECT_EQ(spans.status, 200);
  EXPECT_NE(spans.body.find("\"name\":\"ping\""), std::string::npos);

  EXPECT_EQ(server.handle("/nope").status, 404);
}

TEST_F(TelemetryTest, HealthzReports503WhenUnhealthy) {
  so::MetricsRegistry reg;
  const so::Labels z0{{"zone", "0"}};
  reg.counter("hier.zone.rounds", z0).add(10.0);
  reg.counter("hier.zone.degraded_rounds", z0).add(10.0);  // avail 0
  reg.counter("hier.zone.retries", z0).add(10.0);          // recovery 0
  reg.counter("hier.zone.energy_j", z0).add(1.0);
  so::HealthConfig cfg;
  cfg.energy_floor_j = 1e-9;  // energy 0 too -> score 0.35 < 0.5
  so::HealthEngine engine(&reg, cfg);
  so::TelemetryServer server({&reg, nullptr, &engine, "unit"});
  const auto resp = server.handle("/healthz");
  EXPECT_EQ(resp.status, 503);
  EXPECT_NE(resp.body.find("\"verdict\":\"unhealthy\""), std::string::npos);
}

TEST_F(TelemetryTest, ServesOverLoopbackSockets) {
  so::MetricsRegistry reg;
  reg.counter("cs.omp.solves").add(5.0);
  so::TelemetryServer server({&reg, nullptr, nullptr, "sock"});
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);

  const std::string resp = http_get(server.port(), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Content-Length:"), std::string::npos);
  EXPECT_NE(resp.find("cs_omp_solves 5"), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/nope").find("404"),
            std::string::npos);
  const std::string report = http_get(server.port(), "/report");
  EXPECT_NE(report.find("\"campaign\":\"sock\""), std::string::npos);

  EXPECT_GE(server.requests_served(), 3u);
  server.stop();
  EXPECT_FALSE(server.running());
  // A second stop and a restart both behave.
  server.stop();
  ASSERT_TRUE(server.start());
  EXPECT_NE(http_get(server.port(), "/metrics").find("200"),
            std::string::npos);
  server.stop();
}

// ------------------------------------------ the determinism acceptance test

// The test_exec campaign fixture (faulted, 8 zones), with optional live
// telemetry: when `server` is true, a TelemetryServer serves the
// campaign registry while a scraper thread hammers every endpoint until
// the rounds finish.
struct CampaignOutcome {
  std::string deterministic_report;
  std::size_t scrapes = 0;
  std::size_t scrape_failures = 0;
};

CampaignOutcome run_campaign(std::size_t workers, bool with_server) {
  sfl::FaultPlan plan;
  plan.seed = 77;
  plan.link.p_good_to_bad = 0.1;
  plan.link.p_bad_to_good = 0.3;
  plan.link.loss_bad = 0.8;
  plan.churn.leave_prob = 0.2;
  plan.sensors.spike_prob = 0.05;
  sfl::FaultInjector inj(plan);

  sl::Rng field_rng(101);
  const auto truth = sf::random_plume_field(24, 24, 3, field_rng, 20.0);
  const sf::ZoneGrid grid(24, 24, 2, 4);  // 8 zones

  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  cfg.injector = &inj;
  cfg.retry.max_attempts = 3;
  cfg.topup_rounds = 1;
  cfg.chs.mad_threshold = 5.0;

  so::MetricsRegistry reg;
  so::attach_registry(&reg);
  so::TraceLog trace;
  so::attach_trace(&trace);
  so::FlightRecorder::reset();
  so::FlightRecorder::arm();

  CampaignOutcome out;
  {
    so::HealthEngine engine(&reg);
    so::TelemetryServer server({&reg, &trace, &engine, "live"});
    std::thread scraper;
    std::atomic<bool> done{false};
    if (with_server) {
      EXPECT_TRUE(server.start());
      scraper = std::thread([&] {
        const char* endpoints[] = {"/metrics", "/healthz", "/report",
                                   "/spans", "/flight"};
        std::size_t i = 0;
        while (!done.load(std::memory_order_acquire)) {
          const std::string resp =
              http_get(server.port(), endpoints[i++ % 5]);
          ++out.scrapes;
          if (resp.find("HTTP/1.0 200") == std::string::npos &&
              resp.find("HTTP/1.0 503") == std::string::npos) {
            ++out.scrape_failures;
          }
        }
      });
    }

    sl::Rng rng(7);
    sh::LocalCloud cloud(truth, grid, cfg, rng);
    se::ThreadPool pool(workers);
    se::ParallelCampaignRunner runner(cloud, pool);
    for (int round = 0; round < 3; ++round) {
      runner.run_round_uniform(20, rng);
    }
    done.store(true, std::memory_order_release);
    if (scraper.joinable()) scraper.join();
    server.stop();
  }

  so::FlightRecorder::disarm();
  out.deterministic_report =
      so::RunReport::from_registry(reg, "exec-determinism",
                                   /*include_wall_clock=*/false)
          .to_json();
  so::attach_registry(nullptr);
  so::attach_trace(nullptr);
  return out;
}

TEST_F(TelemetryTest, LiveScrapeDoesNotPerturbDeterministicReport) {
  // Baseline: 1 worker, no server, nothing watching.
  const CampaignOutcome baseline = run_campaign(1, /*with_server=*/false);
  // Under test: 8 workers, recorder armed, scraper hammering every
  // endpoint for the whole campaign.
  const CampaignOutcome live = run_campaign(8, /*with_server=*/true);

  EXPECT_GT(live.scrapes, 0u);
  EXPECT_EQ(live.scrape_failures, 0u);
  // The acceptance bar: byte-identical deterministic RunReport.
  EXPECT_EQ(baseline.deterministic_report, live.deterministic_report);
  // The campaign emitted per-zone health inputs for all 8 zones.
  EXPECT_NE(baseline.deterministic_report.find(
                "\"name\":\"hier.zone.rounds\""),
            std::string::npos);
  EXPECT_NE(
      baseline.deterministic_report.find("\"zone\":\"7\""),
      std::string::npos);
  // And the armed recorder captured solver/fault events.
  EXPECT_GT(so::FlightRecorder::total_recorded(), 0u);
}

}  // namespace
