// Execution-engine tests: the ThreadPool contract (start/stop, results,
// exception propagation), the SolverRegistry round-trip for every
// registered name, cooperative cancellation, and the headline invariant
// of DESIGN.md §9 — a seeded, faulted, multi-zone campaign produces a
// byte-identical deterministic RunReport whether it runs on 1 worker or
// N.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "cs/chs.h"
#include "cs/measurement.h"
#include "cs/solver.h"
#include "exec/campaign_runner.h"
#include "exec/thread_pool.h"
#include "fault/fault.h"
#include "field/generators.h"
#include "field/zones.h"
#include "hierarchy/localcloud.h"
#include "linalg/basis.h"
#include "linalg/random.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace sc = sensedroid::cs;
namespace se = sensedroid::exec;
namespace sf = sensedroid::field;
namespace sfl = sensedroid::fault;
namespace sh = sensedroid::hierarchy;
namespace sl = sensedroid::linalg;
namespace so = sensedroid::obs;

namespace {

using sl::Matrix;
using sl::Vector;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsTasksAndReturnsResults) {
  se::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  long long sum = 0;
  for (auto& f : futures) sum += f.get();
  long long expect = 0;
  for (int i = 0; i < 64; ++i) expect += i * i;
  EXPECT_EQ(sum, expect);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  se::ThreadPool pool;  // 0 = hardware_concurrency, clamped to >= 1
  EXPECT_GE(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, PropagatesTaskExceptionsAndSurvivesThem) {
  se::ThreadPool pool(2);
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("task boom");
  });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.submit([] { return 41 + 1; }).get(), 42);
}

TEST(ThreadPool, ShutdownDrainsQueuedWorkThenRejectsNewWork) {
  std::atomic<int> ran{0};
  se::ThreadPool pool(1);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 16);  // queued tasks finished, not dropped
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_THROW(pool.submit([] { return 0; }), std::runtime_error);
  pool.shutdown();  // idempotent
}

// ---------------------------------------------------------- SolverRegistry

// K-sparse toy problem every solver must nail: identity dictionary, so
// the solution IS the measurement.
struct ToyProblem {
  Matrix a = Matrix::identity(6);
  Vector y = {0.0, 2.0, 0.0, -3.0, 0.0, 0.0};
};

TEST(SolverRegistry, EveryBuiltinNameRoundTripsAndSolves) {
  auto& reg = sc::SolverRegistry::global();
  const std::vector<std::string> names = reg.names();
  // All builtins plus the two aliases must be present.
  for (const char* expect :
       {"omp", "cosamp", "iht", "niht", "bp", "basis_pursuit", "ols", "gls",
        "ridge"}) {
    EXPECT_TRUE(reg.contains(expect)) << expect;
  }

  const ToyProblem p;
  sc::SolveContext ctx;
  ctx.sparsity = 2;
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    const auto solver = reg.create(name);
    ASSERT_NE(solver, nullptr);
    // Aliases resolve to their canonical implementation.
    if (name == "niht") {
      EXPECT_EQ(solver->name(), "iht");
    } else if (name == "basis_pursuit") {
      EXPECT_EQ(solver->name(), "bp");
    } else {
      EXPECT_EQ(solver->name(), name);
    }
    const sc::SparseSolution sol = solver->solve(p.a, p.y, ctx);
    ASSERT_EQ(sol.coefficients.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_NEAR(sol.coefficients[i], p.y[i], 1e-6);
    }
    EXPECT_LT(sol.residual_norm, 1e-6);
  }
}

TEST(SolverRegistry, UnknownNameThrowsWithInventory) {
  auto& reg = sc::SolverRegistry::global();
  try {
    reg.create("no_such_solver");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message must list what IS available, or typos cost minutes.
    EXPECT_NE(std::string(e.what()).find("omp"), std::string::npos);
  }
}

namespace {
class FixedSolver final : public sc::SparseSolver {
 public:
  std::string_view name() const noexcept override { return "fixed"; }
  sc::SparseSolution solve(const Matrix& a, std::span<const double>,
                           const sc::SolveContext&) const override {
    sc::SparseSolution s;
    s.coefficients.assign(a.cols(), 1.5);
    return s;
  }
};
}  // namespace

TEST(SolverRegistry, AcceptsCustomRegistrations) {
  sc::SolverRegistry reg;
  EXPECT_FALSE(reg.contains("fixed"));
  reg.register_solver("fixed", [] { return std::make_unique<FixedSolver>(); });
  EXPECT_TRUE(reg.contains("fixed"));
  const ToyProblem p;
  const auto sol = reg.create("fixed")->solve(p.a, p.y, {});
  EXPECT_EQ(sol.coefficients[0], 1.5);
  EXPECT_THROW(reg.register_solver("", [] {
    return std::make_unique<FixedSolver>();
  }),
               std::invalid_argument);
}

TEST(SolverRegistry, SharedInstanceIsReentrantAcrossWorkers) {
  // One solver instance, many concurrent solves: the statelessness
  // contract of SparseSolver.  The TSan twin of this binary turns any
  // hidden shared mutable state into a hard failure.
  const auto solver = sc::SolverRegistry::global().create("omp");
  const ToyProblem p;
  sc::SolveContext ctx;
  ctx.sparsity = 2;
  se::ThreadPool pool(4);
  std::vector<std::future<sc::SparseSolution>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(
        pool.submit([&] { return solver->solve(p.a, p.y, ctx); }));
  }
  for (auto& f : futures) {
    const auto sol = f.get();
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(sol.coefficients[i], p.y[i]);  // bit-identical every time
    }
  }
}

// ------------------------------------------------------------ cancellation

TEST(CancelToken, PreCancelledTokenStopsSolversImmediately) {
  sc::CancelToken tok;
  tok.cancel();
  const ToyProblem p;

  sc::OmpOptions omp;
  omp.cancel = &tok;
  const auto sol = sc::omp_solve(p.a, p.y, omp);
  EXPECT_EQ(sol.iterations, 0u);
  EXPECT_TRUE(sol.support.empty());

  sc::SolveContext ctx;
  ctx.sparsity = 2;
  ctx.cancel = &tok;
  const auto bp = sc::SolverRegistry::global().create("bp")->solve(
      p.a, p.y, ctx);
  EXPECT_TRUE(bp.support.empty());  // entry check: LP never ran

  tok.reset();
  EXPECT_FALSE(tok.cancelled());
  const auto sol2 = sc::omp_solve(p.a, p.y, omp);
  EXPECT_EQ(sol2.support.size(), 2u);
}

TEST(CancelToken, ChsReturnsPartialResultWhenCancelled) {
  sl::Rng rng(3);
  const std::size_t n = 32;
  const Matrix basis = sl::dct_basis(n);
  Vector alpha(n, 0.0);
  alpha[1] = 4.0;
  alpha[5] = -2.0;
  const Vector x = basis * alpha;
  auto plan = sc::MeasurementPlan::random(n, 16, rng);
  const auto meas = sc::measure_exact(x, std::move(plan));

  sc::CancelToken tok;
  tok.cancel();
  sc::ChsOptions opts;
  opts.cancel = &tok;
  const auto res = sc::chs_reconstruct(basis, meas, opts);
  EXPECT_EQ(res.iterations, 0u);  // cancelled before the first batch
  EXPECT_EQ(res.reconstruction.size(), n);
}

// ------------------------------------------------- parallel reconstruction

TEST(ChsBatch, MatchesSequentialBitForBit) {
  sl::Rng rng(11);
  const std::size_t n = 48;
  const Matrix basis = sl::dct_basis(n);
  std::vector<sc::Measurement> signals;
  for (int s = 0; s < 6; ++s) {
    Vector alpha(n, 0.0);
    alpha[1 + s] = 3.0;
    alpha[7 + s] = -1.5;
    const Vector x = basis * alpha;
    auto plan = sc::MeasurementPlan::random(n, 20, rng);
    signals.push_back(sc::measure_exact(x, std::move(plan)));
  }
  sc::ChsOptions opts;
  opts.max_support = 8;

  std::vector<sc::ChsResult> sequential;
  for (const auto& m : signals) {
    sequential.push_back(sc::chs_reconstruct(basis, m, opts));
  }

  se::ThreadPool pool(4);
  const auto parallel = se::chs_reconstruct_batch(pool, basis, signals, opts);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t s = 0; s < parallel.size(); ++s) {
    SCOPED_TRACE(s);
    EXPECT_EQ(parallel[s].residual_norm, sequential[s].residual_norm);
    EXPECT_EQ(parallel[s].support, sequential[s].support);
    ASSERT_EQ(parallel[s].reconstruction.size(),
              sequential[s].reconstruction.size());
    for (std::size_t i = 0; i < parallel[s].reconstruction.size(); ++i) {
      EXPECT_EQ(parallel[s].reconstruction[i],
                sequential[s].reconstruction[i]);  // bit-identical
    }
  }
}

// ------------------------------------------------- deterministic campaigns

// One faulted 8-zone campaign (the PR-2 replay fixture's fault knobs on
// a LocalCloud), run through the parallel runner with `workers` threads.
// Returns the deterministic RunReport JSON plus the per-round regional
// results.
struct CampaignRun {
  std::string report_json;
  std::vector<double> nrmse;
  std::vector<std::size_t> measurements;
  sensedroid::middleware::GatherStats stats;
};

CampaignRun run_parallel_campaign(std::size_t workers,
                                  const std::string& refit_solver = "") {
  sfl::FaultPlan plan;
  plan.seed = 77;
  plan.link.p_good_to_bad = 0.1;
  plan.link.p_bad_to_good = 0.3;
  plan.link.loss_bad = 0.8;
  plan.churn.leave_prob = 0.2;
  plan.sensors.spike_prob = 0.05;
  sfl::FaultInjector inj(plan);

  sl::Rng field_rng(101);
  const auto truth = sf::random_plume_field(24, 24, 3, field_rng, 20.0);
  const sf::ZoneGrid grid(24, 24, 2, 4);  // 8 zones of 6x12

  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  cfg.injector = &inj;
  cfg.retry.max_attempts = 3;
  cfg.topup_rounds = 1;
  cfg.chs.mad_threshold = 5.0;
  cfg.chs.refit_solver = refit_solver;

  so::MetricsRegistry reg;
  so::attach_registry(&reg);

  sl::Rng rng(7);
  sh::LocalCloud cloud(truth, grid, cfg, rng);
  se::ThreadPool pool(workers);
  se::ParallelCampaignRunner runner(cloud, pool);

  CampaignRun out;
  for (int round = 0; round < 3; ++round) {
    const auto res = runner.run_round_uniform(20, rng);
    out.nrmse.push_back(res.nrmse);
    out.measurements.push_back(res.total_measurements);
    out.stats += res.stats;
  }
  const auto report = so::RunReport::from_registry(
      reg, "exec-determinism", /*include_wall_clock=*/false);
  out.report_json = report.to_json();
  so::attach_registry(nullptr);
  return out;
}

TEST(ParallelCampaign, OneWorkerAndEightWorkersAreByteIdentical) {
  const CampaignRun serial = run_parallel_campaign(1);
  const CampaignRun parallel = run_parallel_campaign(8);

  // Headline invariant: the deterministic RunReport view — every
  // counter, gauge, and histogram except wall-clock timings — is
  // byte-for-byte the same string at any worker count.
  EXPECT_EQ(serial.report_json, parallel.report_json);

  ASSERT_EQ(serial.nrmse.size(), parallel.nrmse.size());
  for (std::size_t i = 0; i < serial.nrmse.size(); ++i) {
    EXPECT_EQ(serial.nrmse[i], parallel.nrmse[i]);  // bit-identical
    EXPECT_EQ(serial.measurements[i], parallel.measurements[i]);
  }
  EXPECT_EQ(serial.stats.commands_sent, parallel.stats.commands_sent);
  EXPECT_EQ(serial.stats.replies_received, parallel.stats.replies_received);
  EXPECT_EQ(serial.stats.radio_failures, parallel.stats.radio_failures);
  EXPECT_EQ(serial.stats.retries, parallel.stats.retries);
  EXPECT_EQ(serial.stats.broker_energy_j, parallel.stats.broker_energy_j);

  // And the campaign genuinely exercised the fault machinery — a quiet
  // fixture would make the invariant vacuous.
  EXPECT_GT(serial.stats.radio_failures, 0u);
  EXPECT_GT(serial.stats.retries, 0u);
}

// Same invariant with the LP refit: the revised simplex (warm-started
// through the CHS basis cache) sits inside every zone's reconstruction,
// so any pivot-order or warm-start nondeterminism would surface here as
// a diverging report or NRMSE.
TEST(ParallelCampaign, BpRefitStaysByteIdenticalAcrossWorkerCounts) {
  const CampaignRun serial = run_parallel_campaign(1, "bp");
  const CampaignRun parallel = run_parallel_campaign(8, "bp");
  EXPECT_EQ(serial.report_json, parallel.report_json);
  ASSERT_EQ(serial.nrmse.size(), parallel.nrmse.size());
  for (std::size_t i = 0; i < serial.nrmse.size(); ++i) {
    EXPECT_EQ(serial.nrmse[i], parallel.nrmse[i]);  // bit-identical
    EXPECT_EQ(serial.measurements[i], parallel.measurements[i]);
  }
}

TEST(ParallelCampaign, ReplaysBitIdenticallyAtTheSameWorkerCount) {
  const CampaignRun a = run_parallel_campaign(4);
  const CampaignRun b = run_parallel_campaign(4);
  EXPECT_EQ(a.report_json, b.report_json);
  ASSERT_EQ(a.nrmse.size(), b.nrmse.size());
  for (std::size_t i = 0; i < a.nrmse.size(); ++i) {
    EXPECT_EQ(a.nrmse[i], b.nrmse[i]);
  }
}

TEST(ParallelCampaign, ValidatesZoneDecisions) {
  sl::Rng field_rng(5);
  const auto truth = sf::random_plume_field(12, 12, 2, field_rng, 10.0);
  const sf::ZoneGrid grid(12, 12, 2, 2);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  sl::Rng rng(9);
  sh::LocalCloud cloud(truth, grid, cfg, rng);
  se::ThreadPool pool(2);
  se::ParallelCampaignRunner runner(cloud, pool);

  std::vector<sh::ZoneDecision> wrong_count(3);
  EXPECT_THROW(runner.run_round(wrong_count, rng), std::invalid_argument);
  std::vector<sh::ZoneDecision> dup(4);
  for (std::size_t i = 0; i < 4; ++i) dup[i].zone_id = 0;  // duplicate ids
  EXPECT_THROW(runner.run_round(dup, rng), std::invalid_argument);
}

}  // namespace
