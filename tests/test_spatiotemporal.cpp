// Tests for CHS warm starting and the sequential spatio-temporal
// reconstructor.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cs/spatiotemporal.h"
#include "field/traces.h"
#include "linalg/basis.h"
#include "linalg/vector_ops.h"

namespace sc = sensedroid::cs;
namespace sf = sensedroid::field;
namespace sl = sensedroid::linalg;

namespace {

// A K-sparse signal whose support is known.
sl::Vector sparse_signal(const sl::Matrix& basis,
                         const std::vector<std::size_t>& support,
                         sl::Rng& rng) {
  sl::Vector alpha(basis.cols(), 0.0);
  for (std::size_t j : support) {
    alpha[j] = rng.uniform(1.0, 2.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
  }
  return sl::synthesize(basis, alpha);
}

}  // namespace

TEST(WarmStart, CorrectPriorConvergesInFewerIterations) {
  const std::size_t n = 128, m = 32;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(1);
  const std::vector<std::size_t> support{3, 11, 27, 40};
  auto x = sparse_signal(basis, support, rng);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  const auto meas = sc::measure_exact(x, plan);

  const auto cold = sc::chs_reconstruct(basis, meas);
  sc::ChsOptions warm_opts;
  warm_opts.initial_support = support;  // oracle prior
  const auto warm = sc::chs_reconstruct(basis, meas, warm_opts);

  EXPECT_LT(sl::nrmse(warm.reconstruction, x), 1e-8);
  EXPECT_LT(warm.iterations, std::max<std::size_t>(cold.iterations, 1));
}

TEST(WarmStart, WrongPriorStillRecovers) {
  // A stale/wrong prior must not poison the solve: CHS keeps iterating
  // and finds the true atoms.
  const std::size_t n = 128, m = 48;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(2);
  auto x = sparse_signal(basis, {5, 17, 33}, rng);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  const auto meas = sc::measure_exact(x, plan);
  sc::ChsOptions opts;
  opts.initial_support = {60, 61, 62};  // all wrong
  const auto res = sc::chs_reconstruct(basis, meas, opts);
  EXPECT_LT(sl::nrmse(res.reconstruction, x), 0.05);
}

TEST(WarmStart, ValidatesSupportIndices) {
  const std::size_t n = 16;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(3);
  sl::Vector x(n, 1.0);
  auto plan = sc::MeasurementPlan::random(n, 8, rng);
  const auto meas = sc::measure_exact(x, plan);
  sc::ChsOptions opts;
  opts.initial_support = {99};
  EXPECT_THROW(sc::chs_reconstruct(basis, meas, opts),
               std::invalid_argument);
}

TEST(WarmStart, DuplicatePriorEntriesAreDeduplicated) {
  const std::size_t n = 64, m = 24;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(4);
  auto x = sparse_signal(basis, {2, 9}, rng);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  const auto meas = sc::measure_exact(x, plan);
  sc::ChsOptions opts;
  opts.initial_support = {2, 2, 9, 9, 2};
  const auto res = sc::chs_reconstruct(basis, meas, opts);
  // Support stays sorted/unique.
  for (std::size_t i = 1; i < res.support.size(); ++i) {
    EXPECT_LT(res.support[i - 1], res.support[i]);
  }
  EXPECT_LT(sl::nrmse(res.reconstruction, x), 1e-8);
}

TEST(Sequential, TracksEvolvingFieldBetterThanColdStart) {
  // Evolving plume frames at a small budget: the warm-started stream
  // should beat independent cold solves on average.
  const std::size_t w = 10, h = 10, m = 22;
  const std::size_t n = w * h;
  sl::Rng rng(5);
  auto traces = sf::evolving_plume_traces(w, h, 2, 12, rng, 0.4);
  auto basis = sl::dct_basis(n);

  sc::SequentialReconstructor::Params params;
  params.chs.interpolation = sc::Interpolation::kLinear;
  sc::SequentialReconstructor seq(params);

  double warm_err = 0.0, cold_err = 0.0;
  for (std::size_t t = 0; t < traces.count(); ++t) {
    const auto x = traces.at(t).vectorize();
    sl::Rng plan_rng(100 + t);
    auto plan = sc::MeasurementPlan::random(n, m, plan_rng);
    auto noise = sc::SensorNoise::homogeneous(m, 0.01);
    const auto meas = sc::measure(x, std::move(plan), std::move(noise),
                                  plan_rng);
    warm_err += sl::nrmse(seq.step(basis, meas).reconstruction, x);
    sc::ChsOptions cold;
    cold.interpolation = sc::Interpolation::kLinear;
    cold_err += sl::nrmse(sc::chs_reconstruct(basis, meas, cold)
                              .reconstruction, x);
  }
  EXPECT_LE(warm_err, cold_err * 1.05);  // at least as good
  EXPECT_EQ(seq.frames_processed(), traces.count());
  EXPECT_FALSE(seq.carried_support().empty());
}

TEST(Sequential, ResetForgetsCarriedSupport) {
  const std::size_t n = 64, m = 24;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(6);
  auto x = sparse_signal(basis, {4, 8}, rng);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  const auto meas = sc::measure_exact(x, plan);
  sc::SequentialReconstructor seq({});
  seq.step(basis, meas);
  EXPECT_FALSE(seq.carried_support().empty());
  seq.reset();
  EXPECT_TRUE(seq.carried_support().empty());
}

TEST(Sequential, CarryCapLimitsState) {
  const std::size_t n = 64, m = 32;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(7);
  auto x = sparse_signal(basis, {1, 5, 9, 13, 17, 21}, rng);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  const auto meas = sc::measure_exact(x, plan);
  sc::SequentialReconstructor::Params params;
  params.max_carry = 3;
  sc::SequentialReconstructor seq(params);
  seq.step(basis, meas);
  EXPECT_LE(seq.carried_support().size(), 3u);
}
