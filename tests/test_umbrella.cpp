// Compile-level test: the umbrella header pulls in the whole public API
// coherently (no ODR/namespace collisions), and a cross-layer smoke
// pipeline works through it alone.
#include "sensedroid.h"

#include <gtest/gtest.h>

TEST(Umbrella, FullStackSmoke) {
  using namespace sensedroid;
  linalg::Rng rng(1);
  const auto truth = field::random_plume_field(8, 8, 2, rng, 21.0);
  hierarchy::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  hierarchy::NanoCloud cloud(truth, cfg, rng);
  const auto res = cloud.gather(24, rng);
  EXPECT_LT(res.nrmse, 0.2);
  EXPECT_GT(res.m_used, 0u);
}
