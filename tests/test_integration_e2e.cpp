// Cross-layer end-to-end scenarios: these tests wire several subsystems
// together the way an application would, and assert on the *outcome* of
// the whole pipeline rather than any single module.
#include <gtest/gtest.h>

#include <algorithm>

#include "context/is_indoor.h"
#include "field/generators.h"
#include "hierarchy/adaptive.h"
#include "hierarchy/localcloud.h"
#include "hierarchy/publiccloud.h"
#include "incentives/auction.h"
#include "incentives/recruitment.h"
#include "scheduling/adaptive_sampling.h"
#include "scheduling/multi_radio.h"

namespace sh = sensedroid::hierarchy;
namespace sf = sensedroid::field;
namespace sl = sensedroid::linalg;
namespace si = sensedroid::incentives;
namespace sd = sensedroid::scheduling;
namespace ss = sensedroid::sim;

TEST(EndToEnd, TwoRegionsAssembleIntoOneGlobalPicture) {
  // Two LocalClouds cover adjacent districts; the PublicCloud must
  // assemble them into one field whose hot spots land where the truth
  // puts them.
  sl::Rng rng(1);
  sf::GaussianSource west_src{8.0, 4.0, 3.0, 10.0};
  auto west = sf::gaussian_plume_field(16, 16, {&west_src, 1}, 20.0);
  auto east = sf::SpatialField(16, 16, 20.0);  // quiet district

  sf::ZoneGrid grid(16, 16, 2, 2);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 0.95;
  cfg.infrastructure_backfill = true;

  sh::LocalCloud lc_west(west, grid, cfg, rng);
  sh::LocalCloud lc_east(east, grid, cfg, rng);
  const auto res_west = lc_west.gather_uniform(40, rng);
  const auto res_east = lc_east.gather_uniform(40, rng);

  sh::PublicCloud cloud(32, 16);
  cloud.integrate({0, 0}, res_west.reconstruction, 1.0);
  cloud.integrate({0, 16}, res_east.reconstruction, 2.0);

  const auto hot = cloud.cells_above(25.0);
  ASSERT_FALSE(hot.empty());
  // Every hotspot must be in the west half (columns < 16).
  for (const auto& h : hot) EXPECT_LT(h.j, 16u);
  // The east mean must read quiet.
  EXPECT_NEAR(cloud.region_mean(0, 16, 16, 16), 20.0, 0.5);
}

TEST(EndToEnd, HotspotDetectionTriggersCriticalityReplanning) {
  // Round 1: uniform budgets.  The application inspects the stitched
  // field, marks the hottest zone critical, and round 2 must cut that
  // zone's error.
  sl::Rng rng(2);
  std::vector<sf::FireRegion> regions{{4.0, 20.0, 3.0, 3.0, 500.0}};
  const auto truth = sf::fire_front_field(24, 24, regions, 20.0, 2.0);
  sf::ZoneGrid grid(24, 24, 3, 3);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;

  sh::LocalCloud lc(truth, grid, cfg, rng);
  const auto round1 = lc.gather_uniform(12, rng);

  // Find the hottest zone in the *reconstruction* (not the truth).
  std::size_t hottest = 0;
  double hottest_mean = -1e18;
  for (std::size_t z = 0; z < grid.zone_count(); ++z) {
    const double m = grid.extract(round1.reconstruction, z).mean();
    if (m > hottest_mean) {
      hottest_mean = m;
      hottest = z;
    }
  }
  // The fire is in zone 2 (NE corner of a 3x3 grid).
  EXPECT_EQ(hottest, 2u);

  std::vector<sh::ZonePolicy> policies(grid.zone_count());
  policies[hottest].criticality = 4.0;
  const auto decisions = sh::decide_budgets_live(
      truth, grid, sl::BasisKind::kDct, policies);
  const auto round2 = lc.gather(decisions, rng);
  EXPECT_LT(round2.zone_nrmse[hottest], round1.zone_nrmse[hottest]);
}

TEST(EndToEnd, AuctionRecruitsThenCloudGathers) {
  // The platform buys participation with RADP-VPC, then fields a
  // gathering round sized by how many sellers it won.
  sl::Rng rng(3);
  auto pop = si::make_population(40, 0.5, 2.0, {0, 0, 100, 100}, rng);
  si::RadpVpc::Params params;
  params.k = 25;
  params.reserve_price = 3.0;
  si::RadpVpc auction(params);
  const auto round = auction.run_round(pop);
  ASSERT_GE(round.winners.size(), 20u);

  const auto truth = sf::random_plume_field(12, 12, 2, rng, 20.0);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  sh::NanoCloud nc(truth, cfg, rng);
  const auto gather = nc.gather(round.winners.size(), rng);
  EXPECT_LT(gather.nrmse, 0.1);
  // Platform economics stay sane: payment covers every winner's cost.
  for (auto id : round.winners) {
    EXPECT_GE(pop[id].utility(), -1e-9);
  }
}

TEST(EndToEnd, AdaptiveBudgetTracksEvolvingField) {
  // A drifting plume sensed round after round; the adaptive sampler
  // must keep the reconstruction under its error target in steady state
  // without pinning the budget at max.
  sl::Rng rng(4);
  auto traces = sf::evolving_plume_traces(10, 10, 2, 20, rng, 0.5);
  sd::AdaptiveSampler sampler({.m_min = 10, .m_max = 80, .m_initial = 20,
                               .target_error = 0.08, .grow = 1.5,
                               .shrink = 4});
  std::size_t budget_sum = 0;
  double settled_err = 0.0;
  std::size_t settled_rounds = 0;
  for (std::size_t t = 0; t < traces.count(); ++t) {
    // Plume deviations ride on a ~20 C ambient, as a real temperature
    // field would (keeps sensor noise small relative to the signal).
    sf::SpatialField truth = traces.at(t);
    truth += sf::SpatialField(truth.width(), truth.height(), 20.0);
    sh::NanoCloudConfig cfg;
    cfg.coverage = 1.0;
    sh::NanoCloud nc(truth, cfg, rng);
    const auto res = nc.gather(sampler.budget(), rng);
    budget_sum += sampler.budget();
    sampler.observe(res.nrmse);
    if (t >= traces.count() / 2) {  // after the controller settles
      settled_err += res.nrmse;
      ++settled_rounds;
    }
  }
  EXPECT_LT(settled_err / static_cast<double>(settled_rounds), 0.15);
  EXPECT_LT(budget_sum, 80u * traces.count());  // never pinned at max
}

TEST(EndToEnd, MultiRadioPicksCheapestLinkPerTier) {
  // The tiers of Fig. 1 map onto radios: node->broker inside a NanoCloud
  // (10 m), broker->LC head across the site (80 m), LC head->public
  // cloud (5 km).  The selector must pick BT / WiFi / GSM respectively.
  const auto radios = sd::standard_phone_radios();
  sd::MessageRequirements node_to_broker{64, 8.0, 1.0, 0.5};
  sd::MessageRequirements broker_to_head{512, 80.0, 1.0, 0.5};
  sd::MessageRequirements head_to_cloud{2048, 5000.0, 5.0, 0.5};
  EXPECT_EQ(sd::choose_radio(radios, node_to_broker)->kind,
            ss::RadioKind::kBluetooth);
  EXPECT_EQ(sd::choose_radio(radios, broker_to_head)->kind,
            ss::RadioKind::kWiFi);
  EXPECT_EQ(sd::choose_radio(radios, head_to_cloud)->kind,
            ss::RadioKind::kGsm);
}
