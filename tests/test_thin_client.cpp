// Tests for the node-side thin client: the full decode -> execute ->
// encode path of Fig. 2's mobile-node middleware.
#include <gtest/gtest.h>

#include "middleware/thin_client.h"

namespace mw = sensedroid::middleware;
namespace sn = sensedroid::sensing;
namespace sl = sensedroid::linalg;
namespace ss = sensedroid::sim;

namespace {

mw::MobileNode make_node(mw::NodeId id = 7) {
  mw::MobileNode node(id, {0.0, 0.0});
  node.add_sensor(sn::SimulatedSensor(
      sn::SensorKind::kTemperature, sn::QualityTier::kFlagship,
      [](std::size_t i) { return 20.0 + static_cast<double>(i); }, 42));
  return node;
}

}  // namespace

TEST(ThinClient, MeasureCommandRoundTrips) {
  auto node = make_node();
  mw::ThinClient client(node);
  const auto frame =
      mw::make_measure_command(sn::SensorKind::kTemperature, 3);
  const auto reply_frame = client.handle(frame, 10.0);
  ASSERT_TRUE(reply_frame.has_value());
  const auto reply = mw::decode_message(*reply_frame);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->topic, "sensor/temperature");
  EXPECT_EQ(reply->sender, 7u);
  const auto& rec = std::get<mw::Record>(reply->payload);
  EXPECT_NEAR(rec.value, 23.0, 1.0);  // truth 20+3 with flagship noise
  EXPECT_EQ(client.commands_handled(), 1u);
}

TEST(ThinClient, CorruptFrameIsDropped) {
  auto node = make_node();
  mw::ThinClient client(node);
  auto frame = mw::make_measure_command(sn::SensorKind::kTemperature, 0);
  frame[2] ^= 0xFF;
  EXPECT_FALSE(client.handle(frame, 0.0).has_value());
  EXPECT_EQ(client.commands_handled(), 0u);
}

TEST(ThinClient, PrivacyRefusalCounted) {
  auto node = make_node();
  node.policy().set_sensor_allowed(sn::SensorKind::kTemperature, false);
  mw::ThinClient client(node);
  const auto frame =
      mw::make_measure_command(sn::SensorKind::kTemperature, 0);
  EXPECT_FALSE(client.handle(frame, 0.0).has_value());
  EXPECT_EQ(client.commands_refused(), 1u);
}

TEST(ThinClient, AdvertiseListsAllowedSensors) {
  auto node = make_node();
  node.add_sensor(sn::SimulatedSensor(
      sn::SensorKind::kGps, sn::QualityTier::kMidrange,
      [](std::size_t) { return 0.8; }));
  node.policy().set_sensor_allowed(sn::SensorKind::kGps, false);
  mw::ThinClient client(node);
  const auto reply_frame =
      client.handle(mw::make_advertise_command(), 1.0);
  ASSERT_TRUE(reply_frame.has_value());
  const auto reply = mw::decode_message(*reply_frame);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->topic, "node/capabilities");
  const auto& kinds = std::get<sl::Vector>(reply->payload);
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(static_cast<sn::SensorKind>(static_cast<int>(kinds[0])),
            sn::SensorKind::kTemperature);
}

TEST(ThinClient, WindowCommandReturnsIndexValuePairs) {
  auto node = make_node();
  mw::ThinClient client(node);
  const auto reply_frame = client.handle(
      mw::make_window_command(sn::SensorKind::kTemperature, 64, 8), 2.0);
  ASSERT_TRUE(reply_frame.has_value());
  const auto reply = mw::decode_message(*reply_frame);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->topic, "window/temperature");
  const auto& pairs = std::get<sl::Vector>(reply->payload);
  ASSERT_EQ(pairs.size(), 16u);  // 8 (index, value) pairs
  for (std::size_t p = 0; p < 8; ++p) {
    const double idx = pairs[2 * p];
    const double val = pairs[2 * p + 1];
    EXPECT_GE(idx, 0.0);
    EXPECT_LT(idx, 64.0);
    EXPECT_NEAR(val, 20.0 + idx, 1.0);
  }
}

TEST(ThinClient, WindowValidatesBudget) {
  auto node = make_node();
  mw::ThinClient client(node);
  EXPECT_FALSE(
      client.handle(mw::make_window_command(sn::SensorKind::kTemperature,
                                            8, 9), 0.0)
          .has_value());
  EXPECT_FALSE(
      client.handle(mw::make_window_command(sn::SensorKind::kTemperature,
                                            0, 0), 0.0)
          .has_value());
}

TEST(ThinClient, UnknownCommandRefused) {
  auto node = make_node();
  mw::ThinClient client(node);
  const auto frame = mw::encode_message({"cmd/reboot", 0, 0.0, 0.0});
  EXPECT_FALSE(client.handle(frame, 0.0).has_value());
  EXPECT_EQ(client.commands_refused(), 1u);
}

TEST(ThinClient, RadioCostsChargedToNode) {
  auto node = make_node();
  mw::ThinClient client(node);
  const double before = node.battery().remaining_j();
  client.handle(mw::make_measure_command(sn::SensorKind::kTemperature, 0),
                0.0);
  EXPECT_LT(node.battery().remaining_j(), before);
  EXPECT_GT(node.meter().of(ss::EnergyCategory::kRx), 0.0);
  EXPECT_GT(node.meter().of(ss::EnergyCategory::kTx), 0.0);
  EXPECT_GT(node.meter().of(ss::EnergyCategory::kSensing), 0.0);
}
