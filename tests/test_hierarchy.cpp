// Tests for the hierarchy tiers (NanoCloud, LocalCloud, PublicCloud,
// adaptive budgeting) and the baselines — including the end-to-end
// integration paths of experiments E2/E4/E10.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "baselines/cdg_luo.h"
#include "baselines/dense_gathering.h"
#include "baselines/solo_sensing.h"
#include "field/generators.h"
#include "field/traces.h"
#include "hierarchy/adaptive.h"
#include "hierarchy/localcloud.h"
#include "hierarchy/nanocloud.h"
#include "hierarchy/publiccloud.h"

namespace sh = sensedroid::hierarchy;
namespace sb = sensedroid::baselines;
namespace sf = sensedroid::field;
namespace sl = sensedroid::linalg;
namespace sn = sensedroid::sensing;

namespace {

sf::SpatialField smooth_zone(std::size_t w, std::size_t h,
                             std::uint64_t seed) {
  sl::Rng rng(seed);
  return sf::random_plume_field(w, h, 2, rng, 20.0);
}

}  // namespace

// ----------------------------------------------------------- NanoCloud ----

TEST(NanoCloud, BuildsNodesPerCoverage) {
  auto zone = smooth_zone(8, 8, 1);
  sl::Rng rng(2);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  sh::NanoCloud nc(zone, cfg, rng);
  EXPECT_EQ(nc.covered_cells(), 64u);
  EXPECT_EQ(nc.node_count(), 64u);
  EXPECT_EQ(nc.broker().registry().size(), 64u);
}

TEST(NanoCloud, PartialCoverageWithBackfill) {
  auto zone = smooth_zone(8, 8, 3);
  sl::Rng rng(4);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 0.5;
  cfg.infrastructure_backfill = true;
  sh::NanoCloud nc(zone, cfg, rng);
  EXPECT_EQ(nc.covered_cells(), 64u);  // crowd + infrastructure fill all
}

TEST(NanoCloud, ValidatesConstruction) {
  auto zone = smooth_zone(4, 4, 5);
  sl::Rng rng(6);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.5;
  EXPECT_THROW(sh::NanoCloud(zone, cfg, rng), std::invalid_argument);
}

TEST(NanoCloud, CompressiveGatherReconstructsSmoothField) {
  auto zone = smooth_zone(12, 12, 7);
  sl::Rng rng(8);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  sh::NanoCloud nc(zone, cfg, rng);
  auto res = nc.gather(60, rng);  // ~40% of 144 cells
  EXPECT_GT(res.m_used, 50u);
  EXPECT_LT(res.nrmse, 0.05);
  EXPECT_GT(res.support_size, 0u);
  EXPECT_GT(res.node_energy_j, 0.0);
  EXPECT_GT(res.stats.commands_sent, 0u);
}

TEST(NanoCloud, GatherClampsBudgetToCoverage) {
  auto zone = smooth_zone(6, 6, 9);
  sl::Rng rng(10);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 0.5;
  sh::NanoCloud nc(zone, cfg, rng);
  auto res = nc.gather(1000, rng);
  EXPECT_LE(res.m_requested, nc.covered_cells());
  EXPECT_THROW(nc.gather(0, rng), std::invalid_argument);
}

TEST(NanoCloud, DenseGatherBeatsTinyBudget) {
  auto zone = smooth_zone(10, 10, 11);
  sl::Rng rng(12);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  sh::NanoCloud nc(zone, cfg, rng);
  auto dense = nc.gather_dense(rng);
  sl::Rng rng2(12);
  auto tiny = nc.gather(4, rng2);
  EXPECT_LT(dense.nrmse, tiny.nrmse + 1e-9);
}

TEST(NanoCloud, MoreMeasurementsReduceError) {
  auto zone = smooth_zone(12, 12, 13);
  double prev = 1e9;
  int improvements = 0;
  for (std::size_t m : {10u, 30u, 70u, 120u}) {
    double err = 0.0;
    for (int t = 0; t < 4; ++t) {
      sl::Rng rng(14 + t);
      sh::NanoCloudConfig cfg;
      cfg.coverage = 1.0;
      sh::NanoCloud nc(zone, cfg, rng);
      err += nc.gather(m, rng).nrmse;
    }
    if (err < prev) ++improvements;
    prev = err;
  }
  EXPECT_GE(improvements, 3);
}

// ------------------------------------------------------------ adaptive ----

TEST(Adaptive, LiveBudgetsFollowZoneDetail) {
  sl::Rng rng(15);
  auto f = sf::quadrant_contrast_field(16, 16, rng);
  sf::ZoneGrid grid(16, 16, 2, 2);
  auto decisions =
      sh::decide_budgets_live(f, grid, sl::BasisKind::kDct);
  ASSERT_EQ(decisions.size(), 4u);
  // The flat quadrant (id 0) must get the smallest budget.
  std::size_t flat_m = decisions[0].measurements;
  std::size_t max_m = 0;
  for (const auto& d : decisions) max_m = std::max(max_m, d.measurements);
  EXPECT_LT(flat_m * 2, max_m + 1);
  for (const auto& d : decisions) {
    EXPECT_GE(d.measurements, 1u);
    EXPECT_LE(d.measurements, grid.zone(d.zone_id).size());
    EXPECT_NEAR(d.compression_ratio,
                static_cast<double>(d.measurements) /
                    static_cast<double>(grid.zone(d.zone_id).size()),
                1e-12);
  }
}

TEST(Adaptive, CriticalityBuysMoreSamples) {
  sl::Rng rng(16);
  auto f = sf::quadrant_contrast_field(16, 16, rng);
  sf::ZoneGrid grid(16, 16, 2, 2);
  std::vector<sh::ZonePolicy> policies(4);
  policies[3].criticality = 3.0;
  auto base = sh::decide_budgets_live(f, grid, sl::BasisKind::kDct);
  auto boosted =
      sh::decide_budgets_live(f, grid, sl::BasisKind::kDct, policies);
  EXPECT_GE(boosted[3].measurements, base[3].measurements);
  EXPECT_EQ(boosted[0].measurements, base[0].measurements);
  policies[0].criticality = -1.0;
  EXPECT_THROW(
      sh::decide_budgets_live(f, grid, sl::BasisKind::kDct, policies),
      std::invalid_argument);
}

TEST(Adaptive, TraceBudgetsMatchLiveOnStationaryFields) {
  sl::Rng rng(17);
  sf::ZoneGrid grid(12, 12, 2, 2);
  auto f = sf::random_plume_field(12, 12, 3, rng, 10.0);
  std::vector<sf::TraceSet> traces(grid.zone_count());
  for (std::size_t id = 0; id < grid.zone_count(); ++id) {
    traces[id].add(grid.extract(f, id));  // history == present
  }
  auto live = sh::decide_budgets_live(f, grid, sl::BasisKind::kDct);
  auto hist =
      sh::decide_budgets_from_traces(traces, grid, sl::BasisKind::kDct);
  for (std::size_t id = 0; id < grid.zone_count(); ++id) {
    EXPECT_EQ(live[id].measurements, hist[id].measurements);
  }
  std::vector<sf::TraceSet> wrong(2);
  EXPECT_THROW(
      sh::decide_budgets_from_traces(wrong, grid, sl::BasisKind::kDct),
      std::invalid_argument);
}

// ---------------------------------------------------------- LocalCloud ----

TEST(LocalCloud, GathersAndStitchesRegion) {
  sl::Rng rng(18);
  auto f = sf::random_plume_field(16, 16, 3, rng, 15.0);
  sf::ZoneGrid grid(16, 16, 2, 2);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  sh::LocalCloud lc(f, grid, cfg, rng);
  EXPECT_EQ(lc.zone_count(), 4u);
  auto res = lc.gather_uniform(40, rng);
  EXPECT_LT(res.nrmse, 0.1);
  EXPECT_GT(res.total_measurements, 100u);
  EXPECT_GT(res.uplink_bytes, 0u);
  EXPECT_GT(res.uplink_energy_j, 0.0);
  EXPECT_EQ(res.zone_nrmse.size(), 4u);
}

TEST(LocalCloud, AdaptiveBeatsUniformAtEqualBudget) {
  // Experiment E2 in miniature: a field with contrasting quadrants, same
  // total measurement budget split uniformly vs by local sparsity.
  sl::Rng field_rng(19);
  auto f = sf::quadrant_contrast_field(16, 16, field_rng);
  sf::ZoneGrid grid(16, 16, 2, 2);

  auto decisions = sh::decide_budgets_live(f, grid, sl::BasisKind::kDct);
  const std::size_t total = sh::total_measurements(decisions);
  const std::size_t per_zone = total / grid.zone_count();

  double adaptive_err = 0.0, uniform_err = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    sl::Rng rng(100 + t);
    sh::NanoCloudConfig cfg;
    cfg.coverage = 1.0;
    sh::LocalCloud lc(f, grid, cfg, rng);
    adaptive_err += lc.gather(decisions, rng).nrmse;
    sl::Rng rng2(100 + t);
    sh::LocalCloud lc2(f, grid, cfg, rng2);
    uniform_err += lc2.gather_uniform(per_zone, rng2).nrmse;
  }
  EXPECT_LT(adaptive_err, uniform_err);
}

TEST(LocalCloud, ValidatesDecisions) {
  sl::Rng rng(20);
  auto f = sf::random_plume_field(8, 8, 2, rng);
  sf::ZoneGrid grid(8, 8, 2, 2);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  sh::LocalCloud lc(f, grid, cfg, rng);
  std::vector<sh::ZoneDecision> bad(3);
  EXPECT_THROW(lc.gather(bad, rng), std::invalid_argument);
  std::vector<sh::ZoneDecision> dup(4);
  for (auto& d : dup) d.zone_id = 0;
  EXPECT_THROW(lc.gather(dup, rng), std::invalid_argument);
}

// --------------------------------------------------------- PublicCloud ----

TEST(PublicCloud, IntegratesRegionsAndAnswersQueries) {
  sh::PublicCloud cloud(16, 16);
  sf::SpatialField region(8, 8, 30.0);
  cloud.integrate({0, 0}, region, 10.0);
  sf::SpatialField region2(8, 8, 10.0);
  cloud.integrate({8, 8}, region2, 20.0);
  EXPECT_EQ(cloud.regions_integrated(), 2u);
  EXPECT_DOUBLE_EQ(cloud.last_update_time(), 20.0);
  EXPECT_DOUBLE_EQ(cloud.value_at(0, 0), 30.0);
  EXPECT_DOUBLE_EQ(cloud.value_at(12, 12), 10.0);
  EXPECT_DOUBLE_EQ(cloud.value_at(0, 12), 0.0);  // never covered
  EXPECT_DOUBLE_EQ(cloud.region_mean(0, 0, 8, 8), 30.0);
  auto hot = cloud.cells_above(25.0);
  EXPECT_EQ(hot.size(), 64u);
  EXPECT_THROW(cloud.value_at(99, 0), std::out_of_range);
  EXPECT_THROW(sh::PublicCloud(0, 4), std::invalid_argument);
}

TEST(PublicCloud, IntegrateRejectsOversizedRegion) {
  sh::PublicCloud cloud(8, 8);
  sf::SpatialField big(9, 9, 1.0);
  EXPECT_THROW(cloud.integrate({0, 0}, big), std::out_of_range);
}

// ----------------------------------------------------------- baselines ----

TEST(Baselines, CdgGlobalGatherReconstructs) {
  sl::Rng rng(21);
  auto f = sf::random_plume_field(12, 12, 2, rng, 5.0);
  auto res = sb::cdg_global_gather(f, 70, sl::BasisKind::kDct, 0.01, rng);
  EXPECT_LT(res.nrmse, 0.1);
  EXPECT_EQ(res.measurements, 70u);
  EXPECT_THROW(sb::cdg_global_gather(f, 0, sl::BasisKind::kDct, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(sb::cdg_global_gather(f, 145, sl::BasisKind::kDct, 0.0, rng),
               std::invalid_argument);
}

TEST(Baselines, TransmissionModelsMatchTheory) {
  EXPECT_EQ(sb::chain_transmissions_naive(10), 55u);
  EXPECT_EQ(sb::chain_transmissions_cdg(10, 3), 30u);
  // Hybrid: 1+2+3+3+...+3 = 1+2+3*8 = 27.
  EXPECT_EQ(sb::chain_transmissions_hybrid(10, 3), 27u);
  EXPECT_EQ(sb::star_transmissions_dense(10), 10u);
  EXPECT_EQ(sb::star_transmissions_compressive(3), 6u);
  // The O(N^2) -> O(NM) reduction the paper cites.
  EXPECT_GT(sb::chain_transmissions_naive(512),
            10 * sb::chain_transmissions_cdg(512, 20) / 4);
}

TEST(Baselines, DenseGatherErrorMatchesNoiseFloor) {
  sl::Rng rng(22);
  sf::SpatialField f(16, 16, 100.0);
  auto clean = sb::dense_gather(f, 0.0, rng);
  EXPECT_DOUBLE_EQ(clean.nrmse, 0.0);
  auto noisy = sb::dense_gather(f, 1.0, rng);
  EXPECT_NEAR(noisy.nrmse, 0.01, 0.005);  // sigma / |field|
  EXPECT_EQ(noisy.measurements, 256u);
}

TEST(Baselines, CollaborationSavesMoreThan80Percent) {
  // E4: the paper's >80% saving claim, with GPS sensing and a 50-phone NC.
  sb::CollaborationScenario s;
  s.n_users = 50;
  s.samples_needed = 64;
  s.m_collaborative = 16;  // compressive budget
  auto cmp = sb::compare_collaboration(s);
  EXPECT_GT(cmp.savings_fraction, 0.8);
  EXPECT_LT(cmp.collab_energy_j, cmp.solo_energy_j);
}

TEST(Baselines, CollaborationSavingsGrowWithGroupSize) {
  double prev = -1.0;
  for (std::size_t users : {2u, 10u, 50u, 200u}) {
    sb::CollaborationScenario s;
    s.n_users = users;
    s.samples_needed = 64;
    s.m_collaborative = 16;
    const auto cmp = sb::compare_collaboration(s);
    EXPECT_GT(cmp.savings_fraction, prev);
    prev = cmp.savings_fraction;
  }
}

TEST(Baselines, CollaborationValidates) {
  sb::CollaborationScenario s;
  s.n_users = 0;
  EXPECT_THROW(sb::compare_collaboration(s), std::invalid_argument);
}

// --------------------------------------------------- E2E integration ----

TEST(Integration, FullStackFieldSenseMaking) {
  // Ground truth -> LocalCloud gather (adaptive) -> PublicCloud assembly
  // -> application query, end to end.
  sl::Rng rng(23);
  auto f = sf::random_plume_field(16, 16, 3, rng, 20.0);
  sf::ZoneGrid grid(16, 16, 2, 2);
  auto decisions = sh::decide_budgets_live(f, grid, sl::BasisKind::kDct);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 0.95;
  cfg.infrastructure_backfill = true;
  sh::LocalCloud lc(f, grid, cfg, rng);
  auto regional = lc.gather(decisions, rng);
  EXPECT_LT(regional.nrmse, 0.15);

  sh::PublicCloud cloud(16, 16);
  cloud.integrate({0, 0}, regional.reconstruction, 1.0);
  // The reconstructed global mean must track the truth.
  EXPECT_NEAR(cloud.global_field().mean(), f.mean(), 0.5);
}
