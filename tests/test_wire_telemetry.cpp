// Wire-level telemetry integration: a broker-side loop drives real
// ThinClients through encoded frames over a lossy link — the Fig. 2
// command/telemeter path at byte granularity — and the collected window
// feeds the CS reconstruction.
#include <gtest/gtest.h>

#include "cs/chs.h"
#include "linalg/basis.h"
#include "linalg/vector_ops.h"
#include "middleware/thin_client.h"
#include "sensing/signals.h"

namespace mw = sensedroid::middleware;
namespace sc = sensedroid::cs;
namespace sn = sensedroid::sensing;
namespace sl = sensedroid::linalg;
namespace ss = sensedroid::sim;

TEST(WireTelemetry, WindowCommandFeedsReconstruction) {
  // One phone carries a 256-sample walking trace; the broker asks for a
  // compressive window over the wire and reconstructs the full signal.
  const std::size_t kWindow = 256;
  sl::Rng rng(1);
  const auto trace =
      sn::accelerometer_trace(sn::Activity::kWalking, kWindow, 50.0, rng);
  mw::MobileNode node(5, {0.0, 0.0});
  node.add_sensor(sn::SimulatedSensor(
      sn::SensorKind::kAccelerometer, sn::QualityTier::kFlagship,
      [&trace](std::size_t i) { return trace[i % trace.size()]; }, 7));
  mw::ThinClient client(node);

  const auto cmd =
      mw::make_window_command(sn::SensorKind::kAccelerometer, kWindow, 64);
  const auto reply_frame = client.handle(cmd, 1.0);
  ASSERT_TRUE(reply_frame.has_value());
  const auto reply = mw::decode_message(*reply_frame);
  ASSERT_TRUE(reply.has_value());
  const auto& pairs = std::get<sl::Vector>(reply->payload);
  ASSERT_EQ(pairs.size(), 128u);

  // Unpack (index, value) pairs into a measurement.
  std::vector<std::size_t> indices;
  sl::Vector values;
  for (std::size_t p = 0; p < pairs.size(); p += 2) {
    indices.push_back(static_cast<std::size_t>(pairs[p]));
    values.push_back(pairs[p + 1]);
  }
  // ThinClient's schedule is sorted (sample_without_replacement).
  auto plan = sc::MeasurementPlan::from_indices(kWindow, indices);
  sc::Measurement meas{std::move(plan), std::move(values),
                       sc::SensorNoise::homogeneous(indices.size(), 0.025)};
  const auto basis = sl::dct_basis(kWindow);
  const auto res = sc::chs_reconstruct(basis, meas);
  // The gait harmonic must survive the wire + reconstruction round trip.
  EXPECT_GT(sl::pearson(res.reconstruction, trace), 0.8);
}

TEST(WireTelemetry, LossyLinkDegradesButNeverCorrupts) {
  // Frames that arrive corrupted are dropped by CRC; frames that arrive
  // intact decode exactly.  Simulate per-frame corruption at 30%.
  sl::Rng rng(2);
  mw::MobileNode node(9, {0.0, 0.0});
  node.add_sensor(sn::SimulatedSensor(
      sn::SensorKind::kTemperature, sn::QualityTier::kMidrange,
      [](std::size_t) { return 21.0; }, 11));
  mw::ThinClient client(node);

  int delivered = 0, dropped = 0;
  for (int i = 0; i < 100; ++i) {
    auto frame = mw::make_measure_command(sn::SensorKind::kTemperature,
                                          static_cast<std::size_t>(i));
    if (rng.bernoulli(0.3)) {
      frame[rng.uniform_index(frame.size())] ^= 0xFF;  // bit rot
    }
    const auto reply = client.handle(frame, static_cast<double>(i));
    if (!reply.has_value()) {
      ++dropped;
      continue;
    }
    const auto msg = mw::decode_message(*reply);
    ASSERT_TRUE(msg.has_value());
    const auto& rec = std::get<mw::Record>(msg->payload);
    EXPECT_NEAR(rec.value, 21.0, 2.0);  // intact or absent, never garbage
    ++delivered;
  }
  EXPECT_GT(delivered, 50);
  EXPECT_GT(dropped, 10);
  EXPECT_EQ(delivered + dropped, 100);
}
