// UpdatableQR / SupportQrCache: the incremental factorization engine the
// greedy solvers refit through.  The contract under test: appends and
// downdates must track a from-scratch factorization of the same columns
// to ~machine precision, rejections must leave state untouched, and the
// cache must reuse exactly the common prefix between successive supports.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/decomposition.h"
#include "linalg/random.h"
#include "linalg/updatable_qr.h"
#include "linalg/vector_ops.h"

namespace {

using sensedroid::linalg::Matrix;
using sensedroid::linalg::QR;
using sensedroid::linalg::Rng;
using sensedroid::linalg::SupportQrCache;
using sensedroid::linalg::UpdatableQR;
using sensedroid::linalg::Vector;

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
  }
  return a;
}

// Reference: dense Householder solve on the first k columns of a.
Vector dense_solve(const Matrix& a, std::size_t k,
                   std::span<const double> y) {
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  return QR(a.select_cols(idx)).solve(y);
}

void expect_close(const Vector& a, const Vector& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "component " << i;
  }
}

TEST(UpdatableQr, AppendTracksFreshFactorization) {
  const std::size_t m = 24;
  const Matrix a = random_matrix(m, 10, 101);
  Rng rng(102);
  const Vector y = rng.gaussian_vector(m);

  UpdatableQR qr(m, 10);
  Vector col(m);
  for (std::size_t k = 1; k <= 10; ++k) {
    a.col_into(k - 1, col);
    ASSERT_TRUE(qr.append_column(col));
    ASSERT_EQ(qr.size(), k);
    expect_close(qr.solve(y), dense_solve(a, k, y), 1e-12);
  }
}

TEST(UpdatableQr, RemoveLastDowndatesExactly) {
  const std::size_t m = 18;
  const Matrix a = random_matrix(m, 8, 201);
  Rng rng(202);
  const Vector y = rng.gaussian_vector(m);

  UpdatableQR qr(m, 8);
  Vector col(m);
  for (std::size_t j = 0; j < 6; ++j) {
    a.col_into(j, col);
    ASSERT_TRUE(qr.append_column(col));
  }
  qr.remove_last();
  qr.remove_last();
  ASSERT_EQ(qr.size(), 4u);
  expect_close(qr.solve(y), dense_solve(a, 4, y), 1e-12);

  // Re-growing after a downdate must behave like a fresh prefix.
  a.col_into(7, col);
  ASSERT_TRUE(qr.append_column(col));
  std::vector<std::size_t> idx = {0, 1, 2, 3, 7};
  expect_close(qr.solve(y), QR(a.select_cols(idx)).solve(y), 1e-12);
}

TEST(UpdatableQr, RejectsDependentColumnWithoutStateChange) {
  const std::size_t m = 12;
  const Matrix a = random_matrix(m, 3, 301);
  Rng rng(302);
  const Vector y = rng.gaussian_vector(m);

  UpdatableQR qr(m, 4);
  Vector col(m);
  for (std::size_t j = 0; j < 3; ++j) {
    a.col_into(j, col);
    ASSERT_TRUE(qr.append_column(col));
  }
  const Vector before = qr.solve(y);

  // 2*col0 - col1 lies exactly in the current span.
  Vector dep(m);
  for (std::size_t i = 0; i < m; ++i) dep[i] = 2.0 * a(i, 0) - a(i, 1);
  EXPECT_FALSE(qr.append_column(dep));
  EXPECT_EQ(qr.size(), 3u);
  expect_close(qr.solve(y), before, 0.0);

  // The zero column is dependent on anything (including the empty set).
  UpdatableQR empty_qr(m, 2);
  const Vector zero(m, 0.0);
  EXPECT_FALSE(empty_qr.append_column(zero));
  EXPECT_EQ(empty_qr.size(), 0u);
}

TEST(UpdatableQr, QColumnsStayOrthonormal) {
  const std::size_t m = 30;
  const Matrix a = random_matrix(m, 12, 401);
  UpdatableQR qr(m, 12);
  Vector col(m);
  for (std::size_t j = 0; j < 12; ++j) {
    a.col_into(j, col);
    ASSERT_TRUE(qr.append_column(col));
  }
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      const double g =
          sensedroid::linalg::dot(qr.q_column(i), qr.q_column(j));
      EXPECT_NEAR(g, i == j ? 1.0 : 0.0, 1e-13);
    }
  }
}

TEST(UpdatableQr, SolveFromQtyMatchesSolve) {
  const std::size_t m = 16;
  const Matrix a = random_matrix(m, 5, 501);
  Rng rng(502);
  const Vector y = rng.gaussian_vector(m);
  UpdatableQR qr(m, 5);
  Vector col(m);
  for (std::size_t j = 0; j < 5; ++j) {
    a.col_into(j, col);
    ASSERT_TRUE(qr.append_column(col));
  }
  Vector qty(5);
  for (std::size_t j = 0; j < 5; ++j) {
    qty[j] = sensedroid::linalg::dot(qr.q_column(j), y);
  }
  // solve() forms Q^T y with its own (multi-chain) reduction order, so
  // the agreement is to the last few ulps, not bit-exact.
  expect_close(qr.solve_from_qty(qty), qr.solve(y), 1e-14);
}

TEST(UpdatableQr, ValidatesArguments) {
  UpdatableQR qr(6, 3);
  const Vector wrong(5, 1.0);
  EXPECT_THROW(qr.append_column(wrong), std::invalid_argument);
  EXPECT_THROW(qr.remove_last(), std::logic_error);
  EXPECT_THROW(qr.q_column(0), std::out_of_range);
  const Vector y(5, 1.0);
  EXPECT_THROW(qr.solve(y), std::invalid_argument);
  // Empty factorization solves to the empty coefficient vector.
  const Vector y6(6, 1.0);
  EXPECT_TRUE(qr.solve(y6).empty());
}

TEST(SupportQrCacheTest, ReusesLongestCommonPrefix) {
  const std::size_t m = 20;
  const Matrix a = random_matrix(m, 15, 601);
  Rng rng(602);
  const Vector y = rng.gaussian_vector(m);

  SupportQrCache cache(a);
  std::vector<std::size_t> s1 = {1, 4, 7};
  ASSERT_TRUE(cache.refit(s1));
  EXPECT_EQ(cache.reused_columns(), 0u);
  expect_close(cache.solve(y), QR(a.select_cols(s1)).solve(y), 1e-12);

  // Shares the prefix {1, 4}: exactly two columns reused.
  std::vector<std::size_t> s2 = {1, 4, 9, 12};
  ASSERT_TRUE(cache.refit(s2));
  EXPECT_EQ(cache.reused_columns(), 2u);
  expect_close(cache.solve(y), QR(a.select_cols(s2)).solve(y), 1e-12);

  // Pure extension: everything previous is reused.
  std::vector<std::size_t> s3 = {1, 4, 9, 12, 14};
  ASSERT_TRUE(cache.refit(s3));
  EXPECT_EQ(cache.reused_columns(), 4u);
  expect_close(cache.solve(y), QR(a.select_cols(s3)).solve(y), 1e-12);

  // Disjoint support: full rebuild, still correct.
  std::vector<std::size_t> s4 = {0, 2};
  ASSERT_TRUE(cache.refit(s4));
  EXPECT_EQ(cache.reused_columns(), 0u);
  expect_close(cache.solve(y), QR(a.select_cols(s4)).solve(y), 1e-12);
}

TEST(SupportQrCacheTest, DependentSupportReportsFailureAndRecovers) {
  const std::size_t m = 10;
  Matrix a = random_matrix(m, 6, 701);
  for (std::size_t i = 0; i < m; ++i) a(i, 5) = a(i, 0);  // duplicate col
  Rng rng(702);
  const Vector y = rng.gaussian_vector(m);

  SupportQrCache cache(a);
  std::vector<std::size_t> bad = {0, 2, 5};
  EXPECT_FALSE(cache.refit(bad));

  // The cache must be usable again after a rejection.
  std::vector<std::size_t> good = {0, 2, 3};
  ASSERT_TRUE(cache.refit(good));
  expect_close(cache.solve(y), QR(a.select_cols(good)).solve(y), 1e-12);
}

}  // namespace
