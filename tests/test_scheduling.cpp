// Tests for scheduling: node-selection policies, the adaptive sampler,
// hysteresis duty cycling, and multi-radio selection.
#include <gtest/gtest.h>

#include <stdexcept>

#include "scheduling/adaptive_sampling.h"
#include "scheduling/multi_radio.h"
#include "scheduling/node_selection.h"

namespace sd = sensedroid::scheduling;
namespace sl = sensedroid::linalg;
namespace ss = sensedroid::sim;

namespace {

std::vector<sd::Candidate> make_candidates(std::size_t n) {
  std::vector<sd::Candidate> c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c[i].id = static_cast<std::uint32_t>(i);
    c[i].state_of_charge = 1.0;
    c[i].reputation = 1.0;
  }
  return c;
}

}  // namespace

// ------------------------------------------------------ node selection ----

TEST(NodeSelection, SelectsDistinctSortedAlive) {
  auto cands = make_candidates(10);
  cands[3].state_of_charge = 0.0;  // dead
  sl::Rng rng(1);
  for (auto policy : {sd::SelectionPolicy::kRandom,
                      sd::SelectionPolicy::kBatteryAware,
                      sd::SelectionPolicy::kRoundRobin,
                      sd::SelectionPolicy::kReputationWeighted}) {
    auto cc = cands;
    auto sel = sd::select_nodes(cc, 5, policy, rng);
    ASSERT_EQ(sel.size(), 5u) << sd::to_string(policy);
    for (std::size_t i = 1; i < sel.size(); ++i) {
      EXPECT_LT(sel[i - 1], sel[i]);
    }
    for (auto i : sel) EXPECT_NE(i, 3u);  // dead node never selected
  }
}

TEST(NodeSelection, ClampsToAliveCount) {
  auto cands = make_candidates(4);
  cands[0].state_of_charge = 0.0;
  sl::Rng rng(2);
  auto sel = sd::select_nodes(cands, 10, sd::SelectionPolicy::kRandom, rng);
  EXPECT_EQ(sel.size(), 3u);
}

TEST(NodeSelection, BatteryAwarePrefersCharged) {
  auto cands = make_candidates(2);
  cands[0].state_of_charge = 0.05;
  cands[1].state_of_charge = 1.0;
  sl::Rng rng(3);
  int picked_low = 0;
  for (int t = 0; t < 500; ++t) {
    auto cc = cands;
    auto sel =
        sd::select_nodes(cc, 1, sd::SelectionPolicy::kBatteryAware, rng);
    if (sel[0] == 0) ++picked_low;
  }
  EXPECT_LT(picked_low, 50);  // ~0.25% expected with squared weights
}

TEST(NodeSelection, RoundRobinBalancesLoad) {
  auto cands = make_candidates(6);
  sl::Rng rng(4);
  for (int round = 0; round < 12; ++round) {
    sd::select_nodes(cands, 2, sd::SelectionPolicy::kRoundRobin, rng);
  }
  // 24 selections over 6 nodes -> exactly 4 each.
  for (const auto& c : cands) EXPECT_EQ(c.times_selected, 4u);
}

TEST(NodeSelection, ReputationWeightedPrefersGoodNodes) {
  auto cands = make_candidates(2);
  cands[0].reputation = 0.01;
  cands[1].reputation = 1.0;
  sl::Rng rng(5);
  int picked_bad = 0;
  for (int t = 0; t < 500; ++t) {
    auto cc = cands;
    auto sel = sd::select_nodes(cc, 1,
                                sd::SelectionPolicy::kReputationWeighted,
                                rng);
    if (sel[0] == 0) ++picked_bad;
  }
  EXPECT_LT(picked_bad, 30);
}

TEST(NodeSelection, SelectionCountsUpdate) {
  auto cands = make_candidates(3);
  sl::Rng rng(6);
  sd::select_nodes(cands, 3, sd::SelectionPolicy::kRandom, rng);
  for (const auto& c : cands) EXPECT_EQ(c.times_selected, 1u);
}

// ---------------------------------------------------- adaptive sampler ----

TEST(AdaptiveSampler, GrowsOnHighErrorShrinksOnLow) {
  sd::AdaptiveSampler s({.m_min = 8, .m_max = 256, .m_initial = 64,
                         .target_error = 0.1});
  EXPECT_EQ(s.budget(), 64u);
  const auto grown = s.observe(0.5);
  EXPECT_GT(grown, 64u);
  // Repeated quiet windows shrink additively.
  std::size_t prev = grown;
  for (int i = 0; i < 5; ++i) {
    const auto next = s.observe(0.01);
    EXPECT_LE(next, prev);
    prev = next;
  }
}

TEST(AdaptiveSampler, RespectsBounds) {
  sd::AdaptiveSampler s({.m_min = 8, .m_max = 64, .m_initial = 32,
                         .target_error = 0.1});
  for (int i = 0; i < 20; ++i) s.observe(10.0);
  EXPECT_EQ(s.budget(), 64u);
  for (int i = 0; i < 100; ++i) s.observe(0.0);
  EXPECT_EQ(s.budget(), 8u);
}

TEST(AdaptiveSampler, DeadbandHoldsBudget) {
  sd::AdaptiveSampler s({.m_min = 8, .m_max = 256, .m_initial = 64,
                         .target_error = 0.1, .deadband = 0.5});
  // Error between 0.05 and 0.1: inside the deadband, hold.
  EXPECT_EQ(s.observe(0.07), 64u);
  EXPECT_EQ(s.observe(0.09), 64u);
}

TEST(AdaptiveSampler, Validation) {
  EXPECT_THROW(sd::AdaptiveSampler({.m_min = 0}), std::invalid_argument);
  EXPECT_THROW(sd::AdaptiveSampler({.m_min = 64, .m_max = 8}),
               std::invalid_argument);
  EXPECT_THROW(sd::AdaptiveSampler({.m_initial = 1000}),
               std::invalid_argument);
  sd::AdaptiveSampler ok({});
  EXPECT_THROW(ok.observe(-1.0), std::invalid_argument);
}

// -------------------------------------------------- hysteresis cycler ----

TEST(Hysteresis, TurnsOffAfterStreakAndBackOnQuickly) {
  sd::HysteresisDutyCycler h({.lower = 0.4, .upper = 0.8, .on_streak = 3});
  EXPECT_TRUE(h.is_on());
  EXPECT_TRUE(h.update(0.9));
  EXPECT_TRUE(h.update(0.9));
  EXPECT_FALSE(h.update(0.9));  // third confident window: off
  EXPECT_FALSE(h.update(0.6));  // in the band: stays off
  EXPECT_TRUE(h.update(0.2));   // confidence collapsed: back on at once
}

TEST(Hysteresis, BandPreventsFlapping) {
  sd::HysteresisDutyCycler h({.lower = 0.4, .upper = 0.8, .on_streak = 1});
  h.update(0.9);  // off
  // Oscillation within the band must not toggle the state.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(h.update(i % 2 == 0 ? 0.5 : 0.7));
  }
}

TEST(Hysteresis, Validation) {
  EXPECT_THROW(sd::HysteresisDutyCycler({.lower = 0.8, .upper = 0.4}),
               std::invalid_argument);
  EXPECT_THROW(sd::HysteresisDutyCycler({.lower = -0.1, .upper = 0.5}),
               std::invalid_argument);
}

// --------------------------------------------------------- multi-radio ----

TEST(MultiRadio, PicksBluetoothAtShortRange) {
  auto radios = sd::standard_phone_radios();
  sd::MessageRequirements req;
  req.bytes = 64;
  req.distance_m = 5.0;
  req.max_latency_s = 1.0;
  auto choice = sd::choose_radio(radios, req);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->kind, ss::RadioKind::kBluetooth);
}

TEST(MultiRadio, FallsBackToWifiBeyondBtRange) {
  auto radios = sd::standard_phone_radios();
  sd::MessageRequirements req;
  req.distance_m = 50.0;
  auto choice = sd::choose_radio(radios, req);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->kind, ss::RadioKind::kWiFi);
}

TEST(MultiRadio, GsmForWideArea) {
  auto radios = sd::standard_phone_radios();
  sd::MessageRequirements req;
  req.distance_m = 2000.0;
  req.max_latency_s = 5.0;
  auto choice = sd::choose_radio(radios, req);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->kind, ss::RadioKind::kGsm);
}

TEST(MultiRadio, NoneQualifies) {
  auto radios = sd::standard_phone_radios();
  sd::MessageRequirements req;
  req.distance_m = 50000.0;  // beyond even GSM
  EXPECT_FALSE(sd::choose_radio(radios, req).has_value());
  sd::MessageRequirements tight;
  tight.distance_m = 2000.0;
  tight.max_latency_s = 0.001;  // GSM latency alone exceeds this
  EXPECT_FALSE(sd::choose_radio(radios, tight).has_value());
}

TEST(MultiRadio, LatencyConstraintOverridesEnergy) {
  auto radios = sd::standard_phone_radios();
  // Large payload at short range: BT is cheapest but too slow.
  sd::MessageRequirements req;
  req.bytes = 4'000'000;  // 4 MB: 16 s over BT, ~1.6 s over WiFi
  req.distance_m = 5.0;
  req.max_latency_s = 3.0;
  auto choice = sd::choose_radio(radios, req);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->kind, ss::RadioKind::kWiFi);
}
