// Unit tests for the dense matrix substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace sl = sensedroid::linalg;

TEST(Matrix, DefaultConstructedIsEmpty) {
  sl::Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  sl::Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 1.5);
  }
}

TEST(Matrix, InitializerListRejectsRagged) {
  EXPECT_THROW((sl::Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  auto i3 = sl::Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i3(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, FromRowsValidatesSize) {
  const double buf[] = {1, 2, 3, 4, 5, 6};
  auto m = sl::Matrix::from_rows(2, 3, buf);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_THROW(sl::Matrix::from_rows(2, 2, buf), std::invalid_argument);
}

TEST(Matrix, DiagonalBuildsDiagonal) {
  const double d[] = {2.0, -1.0};
  auto m = sl::Matrix::diagonal(d);
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  sl::Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, TransposeRoundTrip) {
  sl::Matrix m{{1, 2, 3}, {4, 5, 6}};
  auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(sl::approx_equal(t.transpose(), m));
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  sl::Matrix a{{1, 2}, {3, 4}};
  sl::Matrix b{{5, 6}, {7, 8}};
  auto c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyRejectsMismatch) {
  sl::Matrix a(2, 3);
  sl::Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
  sl::Matrix a{{1, 0, 2}, {0, 3, 0}};
  sl::Vector v{1.0, 2.0, 3.0};
  auto y = a * v;
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, TransposeTimesAgreesWithExplicitTranspose) {
  sl::Matrix a{{1, 2}, {3, 4}, {5, 6}};
  sl::Vector v{1.0, -1.0, 2.0};
  auto direct = a.transpose_times(v);
  auto explicit_t = a.transpose() * v;
  ASSERT_EQ(direct.size(), explicit_t.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct[i], explicit_t[i]);
  }
}

TEST(Matrix, GramAgreesWithAtA) {
  sl::Matrix a{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_TRUE(sl::approx_equal(a.gram(), a.transpose() * a));
}

TEST(Matrix, ColSqnormsMatchPerColumnDots) {
  // 31 rows exercises the 8/4/2/1-row block tails of the fused sweeps.
  sl::Matrix a(31, 7);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = static_cast<double>((i * 7 + j * 3) % 11) - 5.0;
    }
  }
  sl::Vector sq(a.cols());
  a.col_sqnorms_into(sq);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const auto c = a.col(j);
    EXPECT_NEAR(sq[j], sl::dot(c, c), 1e-12) << "column " << j;
  }
  sl::Vector wrong(a.cols() + 1);
  EXPECT_THROW(a.col_sqnorms_into(wrong), std::invalid_argument);
}

TEST(Matrix, FusedTransposeTimesSqnormsMatchesSeparatePasses) {
  sl::Matrix a(30, 9);
  sl::Vector v(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    v[i] = 0.25 * static_cast<double>(i) - 3.0;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = static_cast<double>((i * 5 + j) % 13) - 6.0;
    }
  }
  sl::Vector out(a.cols()), sq(a.cols());
  a.transpose_times_sqnorms_into(v, out, sq);
  sl::Vector out_ref(a.cols()), sq_ref(a.cols());
  a.transpose_times_into(v, out_ref);
  a.col_sqnorms_into(sq_ref);
  for (std::size_t j = 0; j < a.cols(); ++j) {
    EXPECT_NEAR(out[j], out_ref[j], 1e-12) << "corr " << j;
    EXPECT_NEAR(sq[j], sq_ref[j], 1e-12) << "sqnorm " << j;
  }

  // A NaN entry must poison both outputs for its column — the fused
  // sweep is straight-line, no zero-skip masking.
  a(17, 4) = std::numeric_limits<double>::quiet_NaN();
  v[17] = 0.0;
  a.transpose_times_sqnorms_into(v, out, sq);
  EXPECT_TRUE(std::isnan(out[4]));
  EXPECT_TRUE(std::isnan(sq[4]));
  EXPECT_FALSE(std::isnan(out[3]));
  EXPECT_FALSE(std::isnan(sq[3]));
}

TEST(Matrix, SelectRowsPicksInOrder) {
  sl::Matrix a{{1, 2}, {3, 4}, {5, 6}};
  const std::size_t idx[] = {2, 0};
  auto s = a.select_rows(idx);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 2.0);
}

TEST(Matrix, SelectColsPicksInOrder) {
  sl::Matrix a{{1, 2, 3}, {4, 5, 6}};
  const std::size_t idx[] = {2, 1};
  auto s = a.select_cols(idx);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
}

TEST(Matrix, SelectThrowsOnBadIndex) {
  sl::Matrix a(2, 2);
  const std::size_t bad[] = {5};
  EXPECT_THROW(a.select_rows(bad), std::out_of_range);
  EXPECT_THROW(a.select_cols(bad), std::out_of_range);
}

TEST(Matrix, ArithmeticOperators) {
  sl::Matrix a{{1, 2}, {3, 4}};
  sl::Matrix b{{4, 3}, {2, 1}};
  auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  auto diff = a - b;
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  auto scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  auto scaled2 = 2.0 * a;
  EXPECT_TRUE(sl::approx_equal(scaled, scaled2));
}

TEST(Matrix, AdditionRejectsShapeMismatch) {
  sl::Matrix a(2, 2);
  sl::Matrix b(2, 3);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a - b, std::invalid_argument);
}

TEST(Matrix, FrobeniusNormAndMaxAbs) {
  sl::Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(Matrix, ColExtractsColumn) {
  sl::Matrix a{{1, 2}, {3, 4}, {5, 6}};
  auto c = a.col(1);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 6.0);
  EXPECT_THROW(a.col(2), std::out_of_range);
}

TEST(Matrix, ApproxEqualRespectsTolerance) {
  sl::Matrix a{{1.0}};
  sl::Matrix b{{1.0 + 1e-13}};
  EXPECT_TRUE(sl::approx_equal(a, b, 1e-12));
  EXPECT_FALSE(sl::approx_equal(a, b, 1e-14));
}
