// Tests for reading-vs-consensus reputation tracking.
#include <gtest/gtest.h>

#include "linalg/random.h"
#include "middleware/reputation.h"
#include "scheduling/node_selection.h"

namespace mw = sensedroid::middleware;
namespace sd = sensedroid::scheduling;
namespace sl = sensedroid::linalg;

TEST(Reputation, UnseenNodesGetBenefitOfTheDoubt) {
  mw::ReputationTracker rep;
  EXPECT_DOUBLE_EQ(rep.score(42), 1.0);
  EXPECT_EQ(rep.observed_nodes(), 0u);
  EXPECT_TRUE(rep.flagged().empty());
}

TEST(Reputation, ConsistentReadingsKeepHighScore) {
  mw::ReputationTracker rep;
  sl::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    rep.update(1, 20.0 + rng.gaussian(0.0, 0.1), 20.0, 0.1);
  }
  EXPECT_GT(rep.score(1), 0.7);
  EXPECT_TRUE(rep.flagged().empty());
}

TEST(Reputation, BiasedSensorDropsAndGetsFlagged) {
  mw::ReputationTracker rep;
  for (int i = 0; i < 50; ++i) {
    rep.update(2, 30.0, 20.0, 0.1);  // 100-sigma bias every round
  }
  EXPECT_LT(rep.score(2), 0.1);
  const auto flagged = rep.flagged();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 2u);
}

TEST(Reputation, RecoveryAfterRepair) {
  mw::ReputationTracker rep({.memory = 0.8, .tolerance = 3.0,
                             .flag_threshold = 0.3});
  for (int i = 0; i < 30; ++i) rep.update(3, 40.0, 20.0, 0.1);
  EXPECT_LT(rep.score(3), 0.3);
  for (int i = 0; i < 30; ++i) rep.update(3, 20.0, 20.0, 0.1);
  EXPECT_GT(rep.score(3), 0.7);  // forgiveness after sustained honesty
  EXPECT_TRUE(rep.flagged().empty());
}

TEST(Reputation, FlaggedSortsWorstFirst) {
  mw::ReputationTracker rep;
  for (int i = 0; i < 50; ++i) {
    rep.update(10, 25.0, 20.0, 0.1);   // bad
    rep.update(11, 100.0, 20.0, 0.1);  // worse
  }
  const auto flagged = rep.flagged();
  ASSERT_EQ(flagged.size(), 2u);
  EXPECT_EQ(flagged[0], 11u);
  EXPECT_EQ(flagged[1], 10u);
}

TEST(Reputation, ZeroSigmaIsClamped) {
  mw::ReputationTracker rep;
  EXPECT_NO_THROW(rep.update(1, 20.0, 20.0, 0.0));
  EXPECT_GT(rep.score(1), 0.9);  // exact agreement stays near 1
}

TEST(Reputation, ScoresSteerReputationWeightedSelection) {
  // The closed loop: a faulty phone's falling reputation starves it of
  // selections.
  mw::ReputationTracker rep;
  for (int i = 0; i < 60; ++i) {
    rep.update(0, 90.0, 20.0, 0.1);  // node 0 is broken
    rep.update(1, 20.0, 20.0, 0.1);
  }
  std::vector<sd::Candidate> cands(2);
  for (std::size_t i = 0; i < 2; ++i) {
    cands[i].id = static_cast<std::uint32_t>(i);
    cands[i].state_of_charge = 1.0;
    cands[i].reputation = rep.score(static_cast<mw::NodeId>(i));
  }
  sl::Rng rng(9);
  int picked_broken = 0;
  for (int t = 0; t < 300; ++t) {
    auto cc = cands;
    const auto sel = sd::select_nodes(
        cc, 1, sd::SelectionPolicy::kReputationWeighted, rng);
    if (sel[0] == 0) ++picked_broken;
  }
  EXPECT_LT(picked_broken, 30);
}
