// Tests for the sensor-sharing service and the wire codec.
#include <gtest/gtest.h>

#include <stdexcept>

#include "middleware/collaboration.h"
#include "middleware/wire.h"

namespace mw = sensedroid::middleware;
namespace sn = sensedroid::sensing;
namespace sl = sensedroid::linalg;
namespace ss = sensedroid::sim;

namespace {

// A broker pre-loaded with three temperature reporters on a line.
mw::Broker seeded_broker() {
  mw::Broker broker(100, {0.0, 0.0});
  for (mw::NodeId id = 1; id <= 3; ++id) {
    mw::NodeCapabilities caps;
    caps.node = id;
    caps.position = {static_cast<double>(id) * 10.0, 0.0};
    caps.sensors = {sn::SensorKind::kTemperature};
    broker.registry().join(caps);
    broker.store().insert(mw::Record{id, sn::SensorKind::kTemperature,
                                     10.0, 20.0 + id});
  }
  return broker;
}

}  // namespace

// ------------------------------------------------------- collaboration ----

TEST(SensorSharing, BlendsNearestReadings) {
  auto broker = seeded_broker();
  mw::SensorSharingService sharing(broker);
  const auto reading = sharing.borrow(sn::SensorKind::kTemperature,
                                      {12.0, 0.0}, 11.0);
  ASSERT_TRUE(reading.has_value());
  EXPECT_EQ(reading->contributors, 3u);
  // Weighted toward node 1 (value 21) at distance 2.
  EXPECT_GT(reading->value, 20.9);
  EXPECT_LT(reading->value, 22.5);
  EXPECT_NEAR(reading->reliability, 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(reading->newest_timestamp, 10.0);
}

TEST(SensorSharing, StaleRecordsIgnored) {
  auto broker = seeded_broker();
  mw::SensorSharingService sharing(broker, {.max_age_s = 5.0});
  // Records are at t=10; asking at t=100 makes them stale.
  EXPECT_FALSE(sharing.borrow(sn::SensorKind::kTemperature, {12.0, 0.0},
                              100.0)
                   .has_value());
}

TEST(SensorSharing, RangeLimitApplies) {
  auto broker = seeded_broker();
  mw::SensorSharingService sharing(broker, {.max_range_m = 5.0});
  EXPECT_FALSE(sharing.borrow(sn::SensorKind::kTemperature,
                              {100.0, 0.0}, 11.0)
                   .has_value());
}

TEST(SensorSharing, UsesFreshestRecordPerNode) {
  auto broker = seeded_broker();
  // Node 1 reports again with a new value.
  broker.store().insert(
      mw::Record{1, sn::SensorKind::kTemperature, 12.0, 30.0});
  mw::SensorSharingService sharing(broker, {.k_nearest = 1});
  const auto reading =
      sharing.borrow(sn::SensorKind::kTemperature, {10.0, 0.0}, 13.0);
  ASSERT_TRUE(reading.has_value());
  EXPECT_DOUBLE_EQ(reading->value, 30.0);
  EXPECT_DOUBLE_EQ(reading->newest_timestamp, 12.0);
}

TEST(SensorSharing, MissingSensorKindGivesNothing) {
  auto broker = seeded_broker();
  mw::SensorSharingService sharing(broker);
  EXPECT_FALSE(
      sharing.borrow(sn::SensorKind::kGps, {12.0, 0.0}, 11.0).has_value());
}

TEST(SensorSharing, DepartedNodesAreSkipped) {
  auto broker = seeded_broker();
  broker.registry().leave(1);
  broker.registry().leave(2);
  mw::SensorSharingService sharing(broker);
  const auto reading =
      sharing.borrow(sn::SensorKind::kTemperature, {12.0, 0.0}, 11.0);
  ASSERT_TRUE(reading.has_value());
  EXPECT_EQ(reading->contributors, 1u);  // only node 3 remains
  EXPECT_DOUBLE_EQ(reading->value, 23.0);
}

// --------------------------------------------------------------- wire ----

TEST(Wire, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (the classic check value).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(mw::crc32(data), 0xCBF43926u);
}

TEST(Wire, RoundTripsEveryPayloadKind) {
  const mw::Message scalar{"t/scalar", 7, 1.5, 42.0};
  const mw::Message vec{"t/vec", 8, 2.5, sl::Vector{1.0, -2.0, 3.5}};
  const mw::Message text{"t/str", 9, 3.5, std::string("hello")};
  const mw::Message rec{"t/rec", 10, 4.5,
                        mw::Record{5, sn::SensorKind::kGps, 4.0, 0.9}};
  for (const auto& msg : {scalar, vec, text, rec}) {
    const auto frame = mw::encode_message(msg);
    const auto back = mw::decode_message(frame);
    ASSERT_TRUE(back.has_value()) << msg.topic;
    EXPECT_EQ(back->topic, msg.topic);
    EXPECT_EQ(back->sender, msg.sender);
    EXPECT_DOUBLE_EQ(back->timestamp, msg.timestamp);
    EXPECT_EQ(back->payload.index(), msg.payload.index());
  }
}

TEST(Wire, VectorPayloadValuesSurvive) {
  sl::Vector v{3.14159, -2.71828, 0.0, 1e-12, 1e12};
  const auto frame = mw::encode_message({"v", 1, 0.0, v});
  const auto back = mw::decode_message(frame);
  ASSERT_TRUE(back.has_value());
  const auto& got = std::get<sl::Vector>(back->payload);
  ASSERT_EQ(got.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], v[i]);
  }
}

TEST(Wire, DetectsSingleBitCorruption) {
  const auto frame = mw::encode_message(
      {"sensor/temperature", 3, 9.0,
       mw::Record{3, sn::SensorKind::kTemperature, 9.0, 21.5}});
  for (std::size_t byte = 0; byte < frame.size(); byte += 3) {
    auto corrupted = frame;
    corrupted[byte] ^= 0x10;
    EXPECT_FALSE(mw::decode_message(corrupted).has_value())
        << "flip at byte " << byte;
  }
}

TEST(Wire, RejectsTruncatedFrames) {
  const auto frame = mw::encode_message({"t", 1, 0.0, 1.0});
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(
        mw::decode_message(std::span(frame.data(), len)).has_value());
  }
}

TEST(Wire, RejectsBadSensorTagAndTrailingBytes) {
  auto frame = mw::encode_message(
      {"t", 1, 0.0, mw::Record{1, sn::SensorKind::kGps, 0.0, 1.0}});
  // Append a stray byte and refresh the CRC so only the length is wrong.
  frame.resize(frame.size() - 4);
  frame.push_back(0xAB);
  const auto crc = mw::crc32(frame);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  EXPECT_FALSE(mw::decode_message(frame).has_value());
}

TEST(Wire, ExhaustiveSingleBitCorpusNeverYieldsAMessage) {
  // Every single-bit flip anywhere in the frame: CRC-32 detects all of
  // them, so not one corrupt frame may parse into a fabricated reading.
  const auto frame = mw::encode_message(
      {"sensor/temperature", 3, 9.0,
       mw::Record{3, sn::SensorKind::kTemperature, 9.0, 21.5}});
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = frame;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(mw::decode_message(corrupted).has_value())
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Wire, RejectsFramesOutsideTheSizeEnvelope) {
  // Below the minimum well-formed frame: rejected before any parsing.
  std::vector<std::uint8_t> runt(mw::kMinFrameBytes - 1, 0x00);
  EXPECT_FALSE(mw::decode_message(runt).has_value());
  // Above the ceiling: rejected before the CRC pass touches 16 MiB.
  std::vector<std::uint8_t> giant(mw::kMaxFrameBytes + 1, 0x5A);
  EXPECT_FALSE(mw::decode_message(giant).has_value());
}

TEST(Wire, TruncationWithRefreshedCrcStillRejected) {
  // An adversarially re-CRC'd truncation passes the checksum but must
  // fall to the structural checks (reader bounds + exact-length rule).
  const auto frame = mw::encode_message(
      {"sensor/light", 4, 2.0, sl::Vector{1.0, 2.0, 3.0, 4.0}});
  for (std::size_t cut = mw::kMinFrameBytes; cut < frame.size(); ++cut) {
    std::vector<std::uint8_t> body(frame.begin(),
                                   frame.begin() + (cut - 4));
    const auto crc = mw::crc32(body);
    for (int i = 0; i < 4; ++i) {
      body.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
    EXPECT_FALSE(mw::decode_message(body).has_value())
        << "refreshed-CRC truncation at " << cut;
  }
}

TEST(Wire, LengthFieldTamperingCannotOverRead) {
  // Inflate the vector count field and refresh the CRC: the payload
  // guard must catch the over-claim instead of reading past the frame.
  auto frame = mw::encode_message({"v", 1, 0.0, sl::Vector{1.0, 2.0}});
  // Layout: 2 (len) + 1 (topic "v") + 4 + 8 + 1 (tag) = count at offset 16.
  frame[16] = 0xFF;
  frame[17] = 0xFF;
  std::vector<std::uint8_t> body(frame.begin(), frame.end() - 4);
  const auto crc = mw::crc32(body);
  for (int i = 0; i < 4; ++i) {
    body.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  EXPECT_FALSE(mw::decode_message(body).has_value());
}

TEST(Wire, EncodedSizeIsDeterministic) {
  const mw::Message msg{"abc", 1, 0.0, 2.0};
  EXPECT_EQ(mw::encode_message(msg).size(), mw::encode_message(msg).size());
  // 2 (len) + 3 (topic) + 4 (sender) + 8 (ts) + 1 (tag) + 8 (f64) + 4 (crc).
  EXPECT_EQ(mw::encode_message(msg).size(), 30u);
}
