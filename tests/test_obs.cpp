// sensedroid_obs unit tests: concurrent counter increments, histogram
// quantile correctness against a known distribution, span nesting,
// exporter output validity, the cardinality guard, Prometheus escaping
// conformance (golden file), and the RunReport schema golden.
// Deliberately depends only on the obs library so the sanitizer twin
// binaries stay small.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

#ifndef SENSEDROID_TESTS_DIR
#define SENSEDROID_TESTS_DIR "."
#endif

using namespace sensedroid;

namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON syntax checker: enough to prove the
// exporters emit well-formed JSON (objects, arrays, strings, numbers,
// literals), which is the round-trip contract downstream tooling needs.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') ++pos_;
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < s_.size() && std::isdigit(
                 static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (peek() == '.') {
      ++pos_;
      eat_digits();
    }
    if (digits && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (peek() == '-' || peek() == '+') ++pos_;
      eat_digits();
    }
    return digits && pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

// Detach global sinks around every test so instrumented code elsewhere
// in the process never leaks into assertions.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::attach_registry(nullptr);
    obs::attach_trace(nullptr);
    obs::set_virtual_now(0.0);
  }
};

TEST_F(ObsTest, CounterConcurrentIncrements) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      auto& c = reg.counter("test.concurrent");
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(reg.counter("test.concurrent").value(),
                   static_cast<double>(kThreads * kPerThread));
}

TEST_F(ObsTest, CounterConcurrentViaGlobalHelpers) {
  obs::MetricsRegistry reg;
  obs::attach_registry(&reg);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::add_counter("test.global");
        // Series creation raced across threads as well.
        obs::add_counter("test.labelled",
                         {{"thread", std::to_string(t % 3)}}, 1.0);
        obs::observe("test.hist", static_cast<double>(i % 100));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(reg.counter_sum("test.global"),
                   static_cast<double>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(reg.counter_sum("test.labelled"),
                   static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(reg.find_histogram("test.hist")->count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, DetachedHelpersAreInert) {
  ASSERT_FALSE(obs::attached());
  obs::add_counter("nobody.home");
  obs::set_gauge("nobody.home", 3.0);
  obs::observe("nobody.home", 1.0);
  { obs::ScopedTimer t("nobody.home_us"); }
  { obs::ScopedSpan s("nobody.home.span"); }
  obs::MetricsRegistry reg;
  obs::attach_registry(&reg);
  obs::add_counter("somebody.home");
  EXPECT_EQ(reg.series_count(), 1u);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  obs::MetricsRegistry reg;
  auto& g = reg.gauge("test.depth");
  g.set(10.0);
  g.add(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("test.depth"), 7.0);
}

TEST_F(ObsTest, LabelOrderAddressesSameSeries) {
  obs::MetricsRegistry reg;
  reg.counter("test.multi", {{"a", "1"}, {"b", "2"}}).add(1.0);
  reg.counter("test.multi", {{"b", "2"}, {"a", "1"}}).add(2.0);
  reg.counter("test.multi", {{"a", "9"}}).add(4.0);
  EXPECT_DOUBLE_EQ(
      reg.counter_value("test.multi", {{"b", "2"}, {"a", "1"}}), 3.0);
  EXPECT_DOUBLE_EQ(reg.counter_sum("test.multi"), 7.0);
}

TEST_F(ObsTest, HistogramQuantilesOfUniformDistribution) {
  obs::Histogram h;
  // 1..1000 uniformly: true quantile q is ~1000q.  Default bounds have
  // decade/2.5/5 spacing, so linear interpolation inside a bucket keeps
  // the estimate within the bucket width.
  for (int v = 1; v <= 1000; ++v) h.observe(static_cast<double>(v));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.sum(), 500500.0, 1e-6);
  EXPECT_NEAR(h.quantile(0.50), 500.0, 50.0);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 50.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST_F(ObsTest, HistogramCustomBoundsAndOverflow) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(3.0);
  h.observe(100.0);  // overflow bucket
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // p99 lands in the overflow bucket, which is capped at max().
  EXPECT_LE(h.quantile(0.99), 100.0);
}

TEST_F(ObsTest, SpanNestingTracksParentAndDepth) {
  obs::TraceLog log;
  obs::attach_trace(&log);
  obs::set_virtual_now(10.0);
  {
    obs::ScopedSpan outer("outer");
    obs::set_virtual_now(11.0);
    {
      obs::ScopedSpan inner("inner");
      obs::set_virtual_now(12.0);
      { obs::ScopedSpan leaf("leaf"); }
    }
    { obs::ScopedSpan sibling("sibling"); }
  }
  const auto spans = log.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  const auto& outer = spans[0];
  const auto& inner = spans[1];
  const auto& leaf = spans[2];
  const auto& sibling = spans[3];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(leaf.parent, inner.id);
  EXPECT_EQ(leaf.depth, 2);
  EXPECT_EQ(sibling.parent, outer.id);
  EXPECT_EQ(sibling.depth, 1);
  // Virtual time: outer opened at vt=10, closed after it advanced to 12.
  EXPECT_DOUBLE_EQ(outer.virtual_start, 10.0);
  EXPECT_DOUBLE_EQ(outer.virtual_end, 12.0);
  EXPECT_DOUBLE_EQ(inner.virtual_start, 11.0);
  // Wall clock is monotone and closed.
  EXPECT_GE(outer.wall_end_us, outer.wall_start_us);
  EXPECT_GE(leaf.wall_start_us, inner.wall_start_us);
}

TEST_F(ObsTest, TraceJsonlEveryLineParses) {
  obs::TraceLog log;
  obs::attach_trace(&log);
  {
    obs::ScopedSpan a("round \"1\"");  // name needing escaping
    obs::ScopedSpan b("inner");
  }
  log.instant("marker");
  const std::string jsonl = log.to_jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = jsonl.substr(start, end - start);
    EXPECT_TRUE(JsonChecker(line).valid()) << "bad JSONL line: " << line;
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
}

TEST_F(ObsTest, JsonExporterParsesCleanly) {
  obs::MetricsRegistry reg;
  reg.counter("cs.omp.iterations").add(42.0);
  reg.counter("sim.radio.tx_bytes", {{"radio", "wifi"}}).add(1024.0);
  reg.gauge("mw.broker.queue_depth").set(7.0);
  auto& h = reg.histogram("cs.chs.residual_rel");
  h.observe(0.01);
  h.observe(0.5);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("cs.omp.iterations"), std::string::npos);
  EXPECT_NE(json.find("\"radio\":\"wifi\""), std::string::npos);
  EXPECT_NE(json.find("mw.broker.queue_depth"), std::string::npos);
  EXPECT_NE(json.find("cs.chs.residual_rel"), std::string::npos);
}

TEST_F(ObsTest, PrometheusExporterWellFormed) {
  obs::MetricsRegistry reg;
  reg.counter("cs.omp.iterations").add(42.0);
  reg.counter("sim.radio.tx_bytes", {{"radio", "wifi"}}).add(1024.0);
  reg.gauge("sim.events.pending").set(3.0);
  reg.histogram("cs.chs.solve_us").observe(120.0);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE cs_omp_iterations counter"),
            std::string::npos);
  EXPECT_NE(text.find("cs_omp_iterations 42"), std::string::npos);
  EXPECT_NE(text.find("sim_radio_tx_bytes{radio=\"wifi\"} 1024"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sim_events_pending gauge"),
            std::string::npos);
  EXPECT_NE(text.find("cs_chs_solve_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = text.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      const std::size_t sp = line.rfind(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      EXPECT_GT(sp, 0u) << line;
      EXPECT_LT(sp + 1, line.size()) << line;
    }
    start = end + 1;
  }
}

TEST_F(ObsTest, RunReportAggregatesWellKnownNames) {
  obs::MetricsRegistry reg;
  reg.counter("sim.energy.joules", {{"category", "tx"}}).add(1.5);
  reg.counter("sim.energy.joules", {{"category", "sensing"}}).add(0.5);
  reg.counter("mw.broker.commands_sent").add(20.0);
  reg.counter("mw.broker.replies_received").add(18.0);
  reg.counter("cs.chs.solves").add(2.0);
  reg.counter("cs.chs.iterations").add(9.0);
  reg.counter("hier.nanocloud.rounds").add(2.0);
  reg.histogram("cs.chs.residual_rel").observe(0.05);

  auto report = obs::RunReport::from_registry(reg, "unit-test");
  report.reconstruction_error = 0.07;
  EXPECT_DOUBLE_EQ(report.energy_total_j, 2.0);
  EXPECT_DOUBLE_EQ(report.energy_tx_j, 1.5);
  EXPECT_DOUBLE_EQ(report.energy_sensing_j, 0.5);
  EXPECT_DOUBLE_EQ(report.broker_commands, 20.0);
  EXPECT_DOUBLE_EQ(report.broker_replies, 18.0);
  EXPECT_DOUBLE_EQ(report.chs_solves, 2.0);
  EXPECT_DOUBLE_EQ(report.chs_iterations, 9.0);
  EXPECT_DOUBLE_EQ(report.gather_rounds, 2.0);
  EXPECT_EQ(report.chs_residual.count, 1u);

  const std::string json = report.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"campaign\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"reconstruction_error\":0.07"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_FALSE(report.summary().empty());
}

TEST_F(ObsTest, RegistryClearDropsSeries) {
  obs::MetricsRegistry reg;
  reg.counter("a").inc();
  reg.gauge("b").set(1.0);
  reg.histogram("c").observe(1.0);
  EXPECT_EQ(reg.series_count(), 3u);
  reg.clear();
  EXPECT_EQ(reg.series_count(), 0u);
  EXPECT_TRUE(JsonChecker(reg.to_json()).valid());
}

// ------------------------------------------------------ cardinality guard

TEST_F(ObsTest, CardinalityGuardCapsSeriesPerFamily) {
  obs::MetricsRegistry reg;
  reg.set_series_limit(3);
  for (int i = 0; i < 5; ++i) {
    reg.counter("test.burst", {{"node", std::to_string(i)}}).add(1.0);
  }
  // Three series admitted, two refused; refusals are counted per family.
  EXPECT_DOUBLE_EQ(reg.counter_sum("test.burst"), 3.0);
  EXPECT_DOUBLE_EQ(reg.dropped_series(), 2.0);
  EXPECT_DOUBLE_EQ(
      reg.counter_value("obs.dropped_series", {{"metric", "test.burst"}}),
      2.0);
  // Writes to a refused series land in the sink, never crash, and stay
  // out of the export.
  reg.counter("test.burst", {{"node", "99"}}).add(100.0);
  EXPECT_DOUBLE_EQ(reg.counter_sum("test.burst"), 3.0);
  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_EQ(json.find("\"node\":\"99\""), std::string::npos);
}

TEST_F(ObsTest, CardinalityGuardCoversGaugesAndHistograms) {
  obs::MetricsRegistry reg;
  reg.set_series_limit(2);
  for (int i = 0; i < 4; ++i) {
    reg.gauge("test.g", {{"z", std::to_string(i)}}).set(1.0);
    reg.histogram("test.h", {{"z", std::to_string(i)}}).observe(1.0);
  }
  EXPECT_DOUBLE_EQ(reg.dropped_series(), 4.0);  // 2 gauges + 2 histograms
  // An existing series is never evicted and stays writable after the cap.
  reg.gauge("test.g", {{"z", "0"}}).set(7.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("test.g"), 7.0);
  // Distinct families have independent budgets.
  reg.counter("test.other", {{"z", "0"}}).add(1.0);
  EXPECT_DOUBLE_EQ(reg.counter_sum("test.other"), 1.0);
}

TEST_F(ObsTest, CardinalityGuardResetsOnClear) {
  obs::MetricsRegistry reg;
  reg.set_series_limit(1);
  reg.counter("test.c", {{"a", "1"}}).add(1.0);
  reg.counter("test.c", {{"a", "2"}}).add(1.0);  // refused
  EXPECT_DOUBLE_EQ(reg.dropped_series(), 1.0);
  reg.clear();
  EXPECT_DOUBLE_EQ(reg.dropped_series(), 0.0);
  reg.counter("test.c", {{"a", "2"}}).add(1.0);  // budget is fresh
  EXPECT_DOUBLE_EQ(reg.counter_sum("test.c"), 1.0);
}

// --------------------------------------------- helper fast path / stamping

TEST_F(ObsTest, HelperFastPathSurvivesClearAndRegistrySwap) {
  obs::MetricsRegistry a;
  obs::attach_registry(&a);
  obs::add_counter("test.fast");
  obs::add_counter("test.fast");
  EXPECT_DOUBLE_EQ(a.counter_sum("test.fast"), 2.0);

  // clear() re-stamps: the cached pointer must not resurrect the old
  // series storage.
  a.clear();
  obs::add_counter("test.fast");
  EXPECT_DOUBLE_EQ(a.counter_sum("test.fast"), 1.0);

  // Swapping the attached registry must redirect the same metric name.
  obs::MetricsRegistry b;
  obs::attach_registry(&b);
  obs::add_counter("test.fast");
  obs::set_gauge("test.fast.g", 5.0);
  obs::observe("test.fast.h", 2.0);
  EXPECT_DOUBLE_EQ(b.counter_sum("test.fast"), 1.0);
  EXPECT_DOUBLE_EQ(b.gauge_value("test.fast.g"), 5.0);
  EXPECT_EQ(b.find_histogram("test.fast.h")->count(), 1u);
  EXPECT_DOUBLE_EQ(a.counter_sum("test.fast"), 1.0);  // untouched

  // Names longer than the inline cache slot still work (slow path).
  const std::string long_name(80, 'x');
  obs::add_counter(long_name);
  obs::add_counter(long_name);
  EXPECT_DOUBLE_EQ(b.counter_sum(long_name), 2.0);
}

// --------------------------------------------------- exporter conformance

TEST_F(ObsTest, PrometheusEscapesLabelValues) {
  obs::MetricsRegistry reg;
  reg.counter("test.esc", {{"path", "a\\b\"c\nd"}}).add(1.0);
  const std::string text = reg.to_prometheus();
  // Spec: label values escape backslash, double-quote, and newline (and
  // nothing else) — the escaped form is the literal two-character
  // sequences below, with no raw newline inside the quotes.
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos)
      << text;
}

namespace {

// Builds the fixed registry both golden-file tests snapshot.  Everything
// here is deterministic: counters, a labelled gauge, one histogram with
// custom bounds (so the bucket lines are stable), label escaping.
obs::MetricsRegistry& golden_registry(obs::MetricsRegistry& reg) {
  reg.counter("cs.omp.solves").add(3.0);
  reg.counter("sim.radio.tx_bytes", {{"radio", "wifi"}}).add(2048.0);
  reg.counter("sim.radio.tx_bytes", {{"radio", "ble"}}).add(64.0);
  reg.counter("test.escaped", {{"v", "q\"b\\s\nn"}}).add(1.0);
  reg.gauge("mw.broker.queue_depth").set(4.0);
  auto& h = reg.histogram("cs.chs.residual_rel", {}, {0.1, 1.0, 10.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(100.0);  // overflow bucket -> +Inf line
  return reg;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace

TEST_F(ObsTest, PrometheusGoldenRoundTrip) {
  obs::MetricsRegistry reg;
  const std::string text = golden_registry(reg).to_prometheus();
  const std::string golden =
      read_file(std::string(SENSEDROID_TESTS_DIR) +
                "/golden/prometheus_conformance.txt");
  ASSERT_FALSE(golden.empty()) << "missing golden file";
  EXPECT_EQ(text, golden) << "--- actual ---\n" << text;
}

TEST_F(ObsTest, RunReportSchemaGolden) {
  obs::MetricsRegistry reg;
  const auto report = obs::RunReport::from_registry(
      golden_registry(reg), "schema-golden", /*include_wall_clock=*/false);
  const std::string json = report.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"schema_version\":" +
                      std::to_string(obs::RunReport::kSchemaVersion)),
            std::string::npos);
  const std::string golden = read_file(
      std::string(SENSEDROID_TESTS_DIR) + "/golden/run_report_schema.json");
  ASSERT_FALSE(golden.empty()) << "missing golden file";
  EXPECT_EQ(json + "\n", golden) << "--- actual ---\n" << json;
}

TEST_F(ObsTest, ConcurrentSpansFromManyThreads) {
  obs::TraceLog log;
  obs::attach_trace(&log);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::ScopedSpan outer("outer");
        obs::ScopedSpan inner("inner");
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto spans = log.snapshot();
  ASSERT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kPerThread * 2);
  for (const auto& s : spans) {
    EXPECT_NE(s.wall_end_us, 0.0);  // everything closed
    if (s.name == "inner") {
      EXPECT_EQ(s.depth, 1);
    }
  }
}

}  // namespace
