// Tests for incentive mechanisms: auctions (truthfulness, clearing),
// RADP-VPC participation dynamics, and coverage-aware recruitment.
#include <gtest/gtest.h>

#include <stdexcept>

#include "incentives/auction.h"
#include "incentives/participant.h"
#include "incentives/recruitment.h"

namespace si = sensedroid::incentives;
namespace sl = sensedroid::linalg;
namespace ss = sensedroid::sim;

namespace {
const ss::Rect kRegion{0.0, 0.0, 100.0, 100.0};
}

// --------------------------------------------------------- population ----

TEST(Population, GeneratedWithinBounds) {
  sl::Rng rng(1);
  auto pop = si::make_population(50, 0.5, 2.0, kRegion, rng);
  ASSERT_EQ(pop.size(), 50u);
  for (const auto& p : pop) {
    EXPECT_GE(p.true_cost, 0.5);
    EXPECT_LT(p.true_cost, 2.0);
    EXPECT_TRUE(kRegion.contains(p.position));
    EXPECT_GE(p.reputation, 0.5);
    EXPECT_TRUE(p.active);
    EXPECT_DOUBLE_EQ(p.utility(), 0.0);
  }
  EXPECT_THROW(si::make_population(5, 2.0, 1.0, kRegion, rng),
               std::invalid_argument);
}

// ------------------------------------------------------------ auction ----

TEST(Auction, SecondPriceSelectsLowestAndPaysClearing) {
  std::vector<double> bids{3.0, 1.0, 2.0, 5.0};
  auto round = si::second_price_auction(bids, 2, 100.0);
  ASSERT_EQ(round.winners.size(), 2u);
  EXPECT_EQ(round.winners[0], 1u);  // bid 1.0
  EXPECT_EQ(round.winners[1], 2u);  // bid 2.0
  // Clearing price = first losing bid = 3.0.
  EXPECT_DOUBLE_EQ(round.price_per_reading, 3.0);
  EXPECT_DOUBLE_EQ(round.total_payment, 6.0);
}

TEST(Auction, ReserveCapsClearingPrice) {
  std::vector<double> bids{1.0, 2.0, 50.0};
  auto round = si::second_price_auction(bids, 2, 10.0);
  EXPECT_DOUBLE_EQ(round.price_per_reading, 10.0);  // 50 capped by reserve
}

TEST(Auction, AllWinnersClearAtReserveWhenNoLoser) {
  std::vector<double> bids{1.0, 2.0};
  auto round = si::second_price_auction(bids, 5, 4.0);
  ASSERT_EQ(round.winners.size(), 2u);
  EXPECT_DOUBLE_EQ(round.price_per_reading, 4.0);
}

TEST(Auction, EmptyAndInvalidInputs) {
  auto round = si::second_price_auction({}, 3, 1.0);
  EXPECT_TRUE(round.winners.empty());
  EXPECT_THROW(si::second_price_auction({1.0}, 0, 1.0),
               std::invalid_argument);
}

// Truthfulness property: on random instances, misreporting never improves
// a bidder's utility under the (k+1)-price rule.
TEST(Auction, TruthfulnessProperty) {
  sl::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 8, k = 3;
    std::vector<double> costs(n);
    for (auto& c : costs) c = rng.uniform(0.5, 3.0);
    const std::size_t subject = rng.uniform_index(n);

    auto utility_when_bidding = [&](double bid) {
      std::vector<double> bids = costs;
      bids[subject] = bid;
      const auto round = si::second_price_auction(bids, k, 100.0);
      for (auto w : round.winners) {
        if (w == subject) return round.price_per_reading - costs[subject];
      }
      return 0.0;
    };

    const double truthful = utility_when_bidding(costs[subject]);
    for (double factor : {0.3, 0.7, 1.3, 2.0}) {
      const double lied = utility_when_bidding(costs[subject] * factor);
      EXPECT_LE(lied, truthful + 1e-9)
          << "trial " << trial << " factor " << factor;
    }
  }
}

// ------------------------------------------------------------ radpvpc ----

TEST(RadpVpc, WinnersEarnAndLosersAccrueCredit) {
  sl::Rng rng(2);
  auto pop = si::make_population(20, 0.5, 2.0, kRegion, rng);
  si::RadpVpc::Params params;
  params.k = 5;
  params.patience = 1000;  // no dropouts in this test
  si::RadpVpc mech(params);
  auto round = mech.run_round(pop);
  EXPECT_EQ(round.winners.size(), 5u);
  double earned = 0.0;
  for (const auto& p : pop) earned += p.earned;
  EXPECT_NEAR(earned, round.total_payment, 1e-9);
  // Winners have non-negative utility (clearing >= their cost).
  for (auto id : round.winners) {
    EXPECT_GE(pop[id].utility(), -1e-9);
  }
}

TEST(RadpVpc, CreditEventuallyLetsExpensiveBiddersWin) {
  // Two-tier population: with VPC the expensive tier's effective bids
  // fall each losing round until they win occasionally.
  sl::Rng rng(3);
  std::vector<si::Participant> pop(6);
  for (std::size_t i = 0; i < 6; ++i) {
    pop[i].id = static_cast<std::uint32_t>(i);
    pop[i].true_cost = i < 3 ? 1.0 : 2.0;  // cheap vs expensive tier
  }
  si::RadpVpc::Params params;
  params.k = 3;
  params.vpc = 0.25;
  params.patience = 1000;
  si::RadpVpc mech(params);
  bool expensive_won = false;
  for (int r = 0; r < 10 && !expensive_won; ++r) {
    const auto round = mech.run_round(pop);
    for (auto id : round.winners) {
      if (id >= 3) expensive_won = true;
    }
  }
  EXPECT_TRUE(expensive_won);
}

TEST(RadpVpc, WithoutCreditLosersDropOut) {
  sl::Rng rng(4);
  auto pop = si::make_population(30, 0.5, 3.0, kRegion, rng);
  si::RadpVpc::Params no_vpc;
  no_vpc.k = 5;
  no_vpc.vpc = 0.0;  // plain repeated reverse auction
  no_vpc.patience = 3;
  si::RadpVpc plain(no_vpc);
  for (int r = 0; r < 10; ++r) plain.run_round(pop);
  std::size_t still_active_plain = 0;
  for (const auto& p : pop) {
    if (p.active) ++still_active_plain;
  }

  sl::Rng rng2(4);
  auto pop2 = si::make_population(30, 0.5, 3.0, kRegion, rng2);
  auto with_vpc = no_vpc;
  with_vpc.vpc = 0.3;
  si::RadpVpc vpc(with_vpc);
  for (int r = 0; r < 10; ++r) vpc.run_round(pop2);
  std::size_t still_active_vpc = 0;
  for (const auto& p : pop2) {
    if (p.active) ++still_active_vpc;
  }
  // VPC's whole point: it retains participation.
  EXPECT_GT(still_active_vpc, still_active_plain);
}

TEST(RadpVpc, ValidatesParams) {
  si::RadpVpc::Params bad;
  bad.k = 0;
  EXPECT_THROW(si::RadpVpc{bad}, std::invalid_argument);
}

// -------------------------------------------------------- fixed price ----

TEST(FixedPrice, OnlyCheapParticipantsJoin) {
  sl::Rng rng(5);
  auto pop = si::make_population(20, 0.5, 2.0, kRegion, rng);
  auto round = si::fixed_price_round(pop, 1.0, 100);
  for (auto id : round.winners) {
    EXPECT_LE(pop[id].true_cost, 1.0);
    EXPECT_GT(pop[id].utility(), -1e-9);
  }
  EXPECT_THROW(si::fixed_price_round(pop, 1.0, 0), std::invalid_argument);
}

// -------------------------------------------------------- recruitment ----

TEST(Recruitment, GridCellMapping) {
  si::CoverageGrid grid{kRegion, 2, 2};
  EXPECT_EQ(grid.cell_of({10.0, 10.0}), 0u);
  EXPECT_EQ(grid.cell_of({90.0, 10.0}), 1u);
  EXPECT_EQ(grid.cell_of({10.0, 90.0}), 2u);
  EXPECT_EQ(grid.cell_of({90.0, 90.0}), 3u);
  EXPECT_EQ(grid.cell_of({-5.0, 200.0}), 2u);  // clamped
}

TEST(Recruitment, GreedyCoversMoreThanArrivalOrder) {
  sl::Rng rng(6);
  auto pop = si::make_population(80, 0.5, 2.0, kRegion, rng);
  si::CoverageGrid grid{kRegion, 4, 4};
  const double budget = 12.0;
  auto greedy = si::recruit_greedy(pop, grid, budget);
  auto arrival = si::recruit_arrival_order(pop, grid, budget);
  EXPECT_GE(greedy.cells_covered, arrival.cells_covered);
  EXPECT_LE(greedy.total_cost, budget + 1e-9);
  EXPECT_LE(arrival.total_cost, budget + 1e-9);
  EXPECT_GT(greedy.cells_covered, 8u);  // most of the 16 cells
}

TEST(Recruitment, RespectsBudgetAndActivity) {
  sl::Rng rng(8);
  auto pop = si::make_population(10, 1.0, 1.0001, kRegion, rng);
  pop[0].active = false;
  si::CoverageGrid grid{kRegion, 2, 2};
  auto res = si::recruit_greedy(pop, grid, 3.5);
  EXPECT_LE(res.selected.size(), 3u);
  for (auto id : res.selected) EXPECT_NE(id, 0u);
}

TEST(Recruitment, ValidatesGrid) {
  sl::Rng rng(9);
  auto pop = si::make_population(5, 1.0, 2.0, kRegion, rng);
  si::CoverageGrid bad{kRegion, 0, 4};
  EXPECT_THROW(si::recruit_greedy(pop, bad, 10.0), std::invalid_argument);
  EXPECT_THROW(si::recruit_arrival_order(pop, bad, 10.0),
               std::invalid_argument);
}
