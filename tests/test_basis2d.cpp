// Tests for the Kronecker product, separable 2-D DCT, and 2-D Upsilon
// interpolation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cs/chs.h"
#include "field/generators.h"
#include "field/spatial_field.h"
#include "linalg/basis.h"
#include "linalg/vector_ops.h"

namespace sc = sensedroid::cs;
namespace sf = sensedroid::field;
namespace sl = sensedroid::linalg;

// ----------------------------------------------------------- kronecker ----

TEST(Kronecker, MatchesHandComputation) {
  sl::Matrix a{{1, 2}, {3, 4}};
  sl::Matrix b{{0, 5}, {6, 7}};
  auto k = sl::kronecker(a, b);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 1), 5.0);         // a00*b01
  EXPECT_DOUBLE_EQ(k(1, 0), 6.0);         // a00*b10
  EXPECT_DOUBLE_EQ(k(0, 3), 2.0 * 5.0);   // a01*b01
  EXPECT_DOUBLE_EQ(k(2, 3), 4.0 * 5.0);   // a11*b01
  EXPECT_DOUBLE_EQ(k(3, 3), 4.0 * 7.0);   // a11*b11
}

TEST(Kronecker, MixedProductProperty) {
  // (A (x) B)(x (x) y) == (A x) (x) (B y).
  sl::Matrix a{{1, -1}, {2, 0}};
  sl::Matrix b{{3, 1}, {0, 2}};
  sl::Vector x{1.0, 2.0};
  sl::Vector y{-1.0, 3.0};
  sl::Vector xy(4);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 2; ++k) xy[i * 2 + k] = x[i] * y[k];
  }
  const auto lhs = sl::kronecker(a, b) * xy;
  const auto ax = a * x;
  const auto by = b * y;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      EXPECT_NEAR(lhs[i * 2 + k], ax[i] * by[k], 1e-12);
    }
  }
}

// ------------------------------------------------------------- dct2 ----

TEST(Dct2, IsOrthonormal) {
  EXPECT_TRUE(sl::is_orthonormal(sl::dct2_basis(6, 4)));
  EXPECT_TRUE(sl::is_orthonormal(sl::dct2_basis(5, 5)));
  EXPECT_THROW(sl::dct2_basis(0, 4), std::invalid_argument);
}

TEST(Dct2, ConstantFieldIsOneSparse) {
  sf::SpatialField f(6, 4, 2.5);
  const auto basis = sl::dct2_basis(6, 4);
  const auto alpha = sl::analyze(basis, f.vectorize());
  EXPECT_EQ(sl::norm0(alpha, 1e-10), 1u);
}

TEST(Dct2, SeparableFieldIsOneSparse) {
  // f(i,j) = cos_w(j) * cos_h(i) with on-grid atoms: exactly one 2-D atom.
  const std::size_t w = 8, h = 6;
  const auto dw = sl::dct_basis(w);
  const auto dh = sl::dct_basis(h);
  sf::SpatialField f(w, h);
  for (std::size_t j = 0; j < w; ++j) {
    for (std::size_t i = 0; i < h; ++i) f(i, j) = dw(j, 2) * dh(i, 1);
  }
  const auto basis = sl::dct2_basis(w, h);
  const auto alpha = sl::analyze(basis, f.vectorize());
  EXPECT_EQ(sl::norm0(alpha, 1e-10), 1u);
}

TEST(Dct2, SmootherSparsityThan1dOnPlumes) {
  // The whole point: physical 2-D fields compress better in the 2-D DCT.
  sl::Rng rng(3);
  const auto f = sf::random_plume_field(12, 12, 3, rng, 0.0);
  const auto b1 = sl::dct_basis(144);
  const auto b2 = sl::dct2_basis(12, 12);
  const auto k1 = sl::effective_sparsity(b1, f.flat(), 0.05);
  const auto k2 = sl::effective_sparsity(b2, f.flat(), 0.05);
  EXPECT_LT(k2, k1);
}

// --------------------------------------------------- 2-D interpolation ----

TEST(Interp2d, NearestCopiesEuclideanNearest) {
  // 4x4 grid (h=4), samples at (0,0)=1 and (3,3)=9.
  sl::Vector v{1.0, 9.0};
  std::vector<std::size_t> loc{0, 15};
  auto g = sc::interpolate_to_grid_2d(v, loc, 16, 4,
                                      sc::Interpolation::kNearest);
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[15], 9.0);
  EXPECT_DOUBLE_EQ(g[1], 1.0);   // (1,0) nearer to (0,0)
  EXPECT_DOUBLE_EQ(g[14], 9.0);  // (2,3) nearer to (3,3)
}

TEST(Interp2d, LinearReproducesSampleValues) {
  sl::Vector v{2.0, 8.0, 5.0};
  std::vector<std::size_t> loc{0, 7, 12};
  auto g = sc::interpolate_to_grid_2d(v, loc, 16, 4,
                                      sc::Interpolation::kLinear);
  EXPECT_DOUBLE_EQ(g[0], 2.0);
  EXPECT_DOUBLE_EQ(g[7], 8.0);
  EXPECT_DOUBLE_EQ(g[12], 5.0);
  // Every interpolated value lies within the sample range.
  for (double x : g) {
    EXPECT_GE(x, 2.0 - 1e-12);
    EXPECT_LE(x, 8.0 + 1e-12);
  }
}

TEST(Interp2d, Validation) {
  sl::Vector v{1.0};
  std::vector<std::size_t> loc{0};
  EXPECT_THROW(sc::interpolate_to_grid_2d(v, loc, 16, 3,
                                          sc::Interpolation::kNearest),
               std::invalid_argument);
  sl::Vector bad{1.0, 2.0};
  EXPECT_THROW(sc::interpolate_to_grid_2d(bad, loc, 16, 4,
                                          sc::Interpolation::kNearest),
               std::invalid_argument);
}

TEST(Interp2d, ChsWith2dGeometryRecoversPlume) {
  const std::size_t w = 12, h = 12, n = w * h, m = 40;
  sl::Rng rng(5);
  const auto f = sf::random_plume_field(w, h, 2, rng, 10.0);
  const auto basis = sl::dct2_basis(w, h);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  const auto meas = sc::measure_exact(f.vectorize(), plan);

  sc::ChsOptions opts;
  opts.interpolation = sc::Interpolation::kLinear;
  opts.grid_height = h;
  const auto res2d = sc::chs_reconstruct(basis, meas, opts);
  EXPECT_LT(sl::nrmse(res2d.reconstruction, f.vectorize()), 0.02);
}

TEST(Interp2d, TwoDGeometryBeatsOneDOnAverage) {
  const std::size_t w = 12, h = 12, n = w * h, m = 30;
  double err1 = 0.0, err2 = 0.0;
  for (int t = 0; t < 6; ++t) {
    sl::Rng rng(50 + t);
    const auto f = sf::random_plume_field(w, h, 2, rng, 10.0);
    const auto basis = sl::dct2_basis(w, h);
    auto plan = sc::MeasurementPlan::random(n, m, rng);
    const auto meas = sc::measure_exact(f.vectorize(), plan);
    sc::ChsOptions o1;
    o1.interpolation = sc::Interpolation::kLinear;  // 1-D Upsilon
    sc::ChsOptions o2 = o1;
    o2.grid_height = h;  // 2-D Upsilon
    err1 += sl::nrmse(sc::chs_reconstruct(basis, meas, o1).reconstruction,
                      f.vectorize());
    err2 += sl::nrmse(sc::chs_reconstruct(basis, meas, o2).reconstruction,
                      f.vectorize());
  }
  EXPECT_LE(err2, err1 * 1.05);
}
