// Tests for spatial fields, zones, traces, generators, and sparsity
// budgeting.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "field/generators.h"
#include "field/sparsity.h"
#include "field/spatial_field.h"
#include "field/traces.h"
#include "field/zones.h"
#include "linalg/vector_ops.h"

namespace sf = sensedroid::field;
namespace sl = sensedroid::linalg;

// ------------------------------------------------------ SpatialField ----

TEST(SpatialField, VectorizeIsColumnStacking) {
  // Eq. 1: x[k] = f[k mod H, floor(k/H)].
  sf::SpatialField f(3, 2);  // W=3, H=2
  // f = [a b c; d e f] laid out with rows i, cols j.
  f(0, 0) = 1;
  f(1, 0) = 2;
  f(0, 1) = 3;
  f(1, 1) = 4;
  f(0, 2) = 5;
  f(1, 2) = 6;
  auto x = f.vectorize();
  ASSERT_EQ(x.size(), 6u);
  EXPECT_DOUBLE_EQ(x[0], 1.0);  // col 0 first
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);  // then col 1
  EXPECT_DOUBLE_EQ(x[3], 4.0);
  EXPECT_DOUBLE_EQ(x[4], 5.0);
  EXPECT_DOUBLE_EQ(x[5], 6.0);
}

TEST(SpatialField, FromVectorRoundTrip) {
  sl::Rng rng(1);
  sf::SpatialField f(5, 7);
  for (std::size_t j = 0; j < 5; ++j) {
    for (std::size_t i = 0; i < 7; ++i) f(i, j) = rng.gaussian();
  }
  auto x = f.vectorize();
  auto g = sf::SpatialField::from_vector(5, 7, x);
  EXPECT_DOUBLE_EQ(sf::field_nrmse(g, f), 0.0);
  EXPECT_THROW(sf::SpatialField::from_vector(5, 6, x),
               std::invalid_argument);
}

TEST(SpatialField, IndexCoordAreInverse) {
  sf::SpatialField f(4, 6);
  for (std::size_t k = 0; k < f.size(); ++k) {
    const auto c = f.coord_of(k);
    EXPECT_EQ(f.index_of(c.i, c.j), k);
    EXPECT_LT(c.i, 6u);
    EXPECT_LT(c.j, 4u);
  }
}

TEST(SpatialField, AtChecksBounds) {
  sf::SpatialField f(3, 2);
  EXPECT_THROW(f.at(2, 0), std::out_of_range);
  EXPECT_THROW(f.at(0, 3), std::out_of_range);
  EXPECT_NO_THROW(f.at(1, 2));
}

TEST(SpatialField, ExtractInsertRoundTrip) {
  sl::Rng rng(2);
  sf::SpatialField f(8, 8);
  for (double& v : f.flat()) v = rng.gaussian();
  auto patch = f.extract(2, 3, 4, 5);
  EXPECT_EQ(patch.width(), 4u);
  EXPECT_EQ(patch.height(), 5u);
  EXPECT_DOUBLE_EQ(patch(0, 0), f(2, 3));
  sf::SpatialField g(8, 8);
  g.insert(2, 3, patch);
  EXPECT_DOUBLE_EQ(g(2, 3), f(2, 3));
  EXPECT_DOUBLE_EQ(g(6, 6), f(6, 6));
  EXPECT_THROW(f.extract(5, 5, 4, 4), std::out_of_range);
}

TEST(SpatialField, Statistics) {
  sf::SpatialField f(2, 2);
  f(0, 0) = 1;
  f(1, 0) = 2;
  f(0, 1) = 3;
  f(1, 1) = 6;
  EXPECT_DOUBLE_EQ(f.min(), 1.0);
  EXPECT_DOUBLE_EQ(f.max(), 6.0);
  EXPECT_DOUBLE_EQ(f.mean(), 3.0);
}

TEST(SpatialField, ArithmeticAndErrors) {
  sf::SpatialField a(2, 2, 1.0);
  sf::SpatialField b(2, 2, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 0), 3.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a(0, 1), 4.0);
  sf::SpatialField c(3, 2);
  EXPECT_THROW(a += c, std::invalid_argument);
  EXPECT_THROW(sf::field_nrmse(a, c), std::invalid_argument);
}

// ------------------------------------------------------------- zones ----

TEST(ZoneGrid, TilesFieldExactly) {
  sf::ZoneGrid grid(10, 7, 2, 3);  // 7 rows, 10 cols -> 2x3 zones
  EXPECT_EQ(grid.zone_count(), 6u);
  std::size_t total = 0;
  for (const auto& z : grid.zones()) total += z.size();
  EXPECT_EQ(total, 70u);
  // Remainders go to the last row/column of zones.
  EXPECT_EQ(grid.zone(5).width, 10u - 2 * (10 / 3));
  EXPECT_EQ(grid.zone(5).height, 7u - (7 / 2));
}

TEST(ZoneGrid, ZoneAtFindsContainingZone) {
  sf::ZoneGrid grid(8, 8, 2, 2);
  EXPECT_EQ(grid.zone_at(0, 0).id, 0u);
  EXPECT_EQ(grid.zone_at(0, 7).id, 1u);
  EXPECT_EQ(grid.zone_at(7, 0).id, 2u);
  EXPECT_EQ(grid.zone_at(7, 7).id, 3u);
  EXPECT_THROW(grid.zone_at(8, 0), std::out_of_range);
}

TEST(ZoneGrid, ValidatesConstruction) {
  EXPECT_THROW(sf::ZoneGrid(4, 4, 0, 2), std::invalid_argument);
  EXPECT_THROW(sf::ZoneGrid(4, 4, 5, 2), std::invalid_argument);
}

TEST(ZoneGrid, ExtractStitchRoundTrip) {
  sl::Rng rng(3);
  sf::SpatialField f(12, 9);
  for (double& v : f.flat()) v = rng.gaussian();
  sf::ZoneGrid grid(12, 9, 3, 4);
  std::vector<sf::SpatialField> patches;
  for (std::size_t id = 0; id < grid.zone_count(); ++id) {
    patches.push_back(grid.extract(f, id));
  }
  auto back = sf::stitch(grid, patches);
  EXPECT_DOUBLE_EQ(sf::field_nrmse(back, f), 0.0);
}

TEST(ZoneGrid, InsertValidatesPatchShape) {
  sf::ZoneGrid grid(8, 8, 2, 2);
  sf::SpatialField f(8, 8);
  sf::SpatialField bad(3, 3);
  EXPECT_THROW(grid.insert(f, 0, bad), std::invalid_argument);
}

// -------------------------------------------------------- generators ----

TEST(Generators, PlumePeaksAtSource) {
  sf::GaussianSource s{8.0, 8.0, 3.0, 5.0};
  auto f = sf::gaussian_plume_field(16, 16, {&s, 1}, 1.0);
  EXPECT_NEAR(f(8, 8), 6.0, 1e-9);     // ambient + amplitude
  EXPECT_LT(f(0, 0), f(8, 8));         // decays away from source
  EXPECT_GT(f(0, 0), 0.99);            // but stays above ambient
}

TEST(Generators, FireFrontIsPiecewise) {
  sf::FireRegion r{8.0, 8.0, 3.0, 3.0, 600.0};
  auto f = sf::fire_front_field(16, 16, {&r, 1}, 20.0, 1.0);
  EXPECT_NEAR(f(8, 8), 620.0, 1e-9);   // burning core
  EXPECT_NEAR(f(0, 0), 20.0, 1e-9);    // cool far field
}

TEST(Generators, UrbanFieldWithinPlausibleRange) {
  sl::Rng rng(4);
  auto f = sf::urban_temperature_field(24, 24, rng);
  EXPECT_GT(f.min(), 15.0);
  EXPECT_LT(f.max(), 45.0);
  EXPECT_GT(f.max() - f.min(), 1.0);  // has structure
}

TEST(Generators, SparseDctFieldHasRequestedSparsity) {
  sl::Rng rng(5);
  auto f = sf::sparse_dct_field(8, 8, 5, rng);
  const auto basis = sl::dct_basis(64);
  EXPECT_EQ(sl::effective_sparsity(basis, f.flat(), 1e-8), 5u);
}

TEST(Generators, AddNoisePerturbsField) {
  sl::Rng rng(6);
  sf::SpatialField f(8, 8, 1.0);
  sf::add_noise(f, 0.1, rng);
  double dev = 0.0;
  for (double v : f.flat()) dev += std::abs(v - 1.0);
  EXPECT_GT(dev, 0.0);
  sf::SpatialField g(8, 8, 1.0);
  sf::add_noise(g, 0.0, rng);  // sigma 0 is a no-op
  EXPECT_DOUBLE_EQ(g.min(), 1.0);
}

TEST(Generators, QuadrantContrastHasVariedSparsity) {
  sl::Rng rng(7);
  auto f = sf::quadrant_contrast_field(16, 16, rng);
  sf::ZoneGrid grid(16, 16, 2, 2);
  auto ks = sf::zone_sparsities(f, grid, sl::BasisKind::kDct, 0.05);
  // The flat quadrant must be much sparser than the busy one.
  const auto [mn, mx] = std::minmax_element(ks.begin(), ks.end());
  EXPECT_LT(*mn * 3, *mx);
}

// ------------------------------------------------------------ traces ----

TEST(Traces, MatrixLayoutMatchesVectorize) {
  sl::Rng rng(8);
  auto set = sf::evolving_plume_traces(6, 5, 2, 4, rng);
  EXPECT_EQ(set.count(), 4u);
  auto x = set.to_matrix();
  EXPECT_EQ(x.rows(), 4u);
  EXPECT_EQ(x.cols(), 30u);
  auto v = set.at(2).vectorize();
  for (std::size_t c = 0; c < 30; ++c) EXPECT_DOUBLE_EQ(x(2, c), v[c]);
}

TEST(Traces, AddValidatesShape) {
  sf::TraceSet set;
  set.add(sf::SpatialField(4, 4));
  EXPECT_THROW(set.add(sf::SpatialField(4, 5)), std::invalid_argument);
  sf::TraceSet empty;
  EXPECT_THROW(empty.to_matrix(), std::logic_error);
}

TEST(Traces, EvolvingTracesActuallyEvolve) {
  sl::Rng rng(9);
  auto set = sf::evolving_plume_traces(8, 8, 3, 5, rng, 2.0, 0.2);
  sf::SpatialField diff = set.at(4);
  diff -= set.at(0);
  double change = 0.0;
  for (double v : diff.flat()) change += std::abs(v);
  EXPECT_GT(change, 0.1);
}

// ---------------------------------------------------------- sparsity ----

TEST(Sparsity, FlatFieldIsOneSparse) {
  sf::SpatialField f(8, 8, 3.0);
  EXPECT_EQ(sf::field_sparsity(f, sl::BasisKind::kDct, 0.01), 1u);
}

TEST(Sparsity, FromTracesIsConservativeMax) {
  sl::Rng rng(10);
  sf::TraceSet set;
  set.add(sf::SpatialField(4, 4, 1.0));          // K = 1
  set.add(sf::sparse_dct_field(4, 4, 6, rng, 1.0));  // K = 6
  EXPECT_GE(sf::sparsity_from_traces(set, sl::BasisKind::kDct, 1e-8), 6u);
}

TEST(Sparsity, MeasurementRuleScalesLogarithmically) {
  const auto m1 = sf::measurements_for_sparsity(4, 256);
  const auto m2 = sf::measurements_for_sparsity(4, 65536);
  // N grew 256x but M only ~2x (log scaling).
  EXPECT_LT(m2, m1 * 3);
  EXPECT_GT(m2, m1);
  // Clamps: K+1 lower bound, N upper bound.
  EXPECT_GE(sf::measurements_for_sparsity(0, 16), 1u);
  EXPECT_LE(sf::measurements_for_sparsity(100, 16), 16u);
}

TEST(Sparsity, AdaptiveBudgetFollowsDemand) {
  std::vector<std::size_t> ks{1, 10};
  std::vector<std::size_t> sizes{64, 64};
  auto alloc = sf::allocate_budget(ks, sizes, 44, 4);
  ASSERT_EQ(alloc.size(), 2u);
  EXPECT_GT(alloc[1].measurements, 3 * alloc[0].measurements);
  EXPECT_GE(alloc[0].measurements, 4u);  // floor respected
}

TEST(Sparsity, UniformBudgetIgnoresDemand) {
  std::vector<std::size_t> sizes{64, 64};
  auto alloc = sf::allocate_uniform(sizes, 40, 4);
  EXPECT_EQ(alloc[0].measurements, alloc[1].measurements);
}

TEST(Sparsity, BudgetsNeverExceedZoneSize) {
  std::vector<std::size_t> ks{50};
  std::vector<std::size_t> sizes{16};
  auto alloc = sf::allocate_budget(ks, sizes, 1000, 4);
  EXPECT_LE(alloc[0].measurements, 16u);
  auto unif = sf::allocate_uniform(sizes, 1000, 4);
  EXPECT_LE(unif[0].measurements, 16u);
}

TEST(Sparsity, AllocateBudgetValidates) {
  std::vector<std::size_t> ks{1};
  std::vector<std::size_t> sizes{16, 16};
  EXPECT_THROW(sf::allocate_budget(ks, sizes, 10), std::invalid_argument);
}
