// Tests for the Compressive Heterogeneous Sensing loop (Fig. 6) and the
// error decomposition of Section 4.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cs/chs.h"
#include "cs/error_model.h"
#include "linalg/basis.h"
#include "linalg/random.h"
#include "linalg/vector_ops.h"

namespace sc = sensedroid::cs;
namespace sl = sensedroid::linalg;

namespace {

// Sparse-in-DCT test signal of size n with k active coefficients.
sl::Vector sparse_dct_signal(std::size_t n, std::size_t k, sl::Rng& rng,
                             const sl::Matrix& basis) {
  sl::Vector alpha(n, 0.0);
  for (std::size_t j : rng.sample_without_replacement(n / 2, k)) {
    // Concentrate support in the low frequencies like physical fields do.
    alpha[j] = rng.uniform(1.0, 3.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
  }
  return sl::synthesize(basis, alpha);
}

}  // namespace

// ----------------------------------------------------- interpolation ----

TEST(Interpolation, ZeroFillPlacesValuesOnly) {
  sl::Vector v{1.0, 2.0};
  std::vector<std::size_t> loc{1, 3};
  auto g = sc::interpolate_to_grid(v, loc, 5, sc::Interpolation::kZeroFill);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[1], 1.0);
  EXPECT_DOUBLE_EQ(g[2], 0.0);
  EXPECT_DOUBLE_EQ(g[3], 2.0);
  EXPECT_DOUBLE_EQ(g[4], 0.0);
}

TEST(Interpolation, NearestCopiesClosestSample) {
  sl::Vector v{1.0, 5.0};
  std::vector<std::size_t> loc{0, 4};
  auto g = sc::interpolate_to_grid(v, loc, 5, sc::Interpolation::kNearest);
  EXPECT_DOUBLE_EQ(g[0], 1.0);
  EXPECT_DOUBLE_EQ(g[1], 1.0);
  EXPECT_DOUBLE_EQ(g[3], 5.0);
  EXPECT_DOUBLE_EQ(g[4], 5.0);
}

TEST(Interpolation, LinearInterpolatesBetweenSamples) {
  sl::Vector v{0.0, 4.0};
  std::vector<std::size_t> loc{0, 4};
  auto g = sc::interpolate_to_grid(v, loc, 5, sc::Interpolation::kLinear);
  EXPECT_DOUBLE_EQ(g[1], 1.0);
  EXPECT_DOUBLE_EQ(g[2], 2.0);
  EXPECT_DOUBLE_EQ(g[3], 3.0);
}

TEST(Interpolation, LinearExtrapolatesFlat) {
  sl::Vector v{2.0, 6.0};
  std::vector<std::size_t> loc{2, 4};
  auto g = sc::interpolate_to_grid(v, loc, 8, sc::Interpolation::kLinear);
  EXPECT_DOUBLE_EQ(g[0], 2.0);
  EXPECT_DOUBLE_EQ(g[1], 2.0);
  EXPECT_DOUBLE_EQ(g[7], 6.0);
}

TEST(Interpolation, ValidatesSizes) {
  sl::Vector v{1.0};
  std::vector<std::size_t> loc{1, 2};
  EXPECT_THROW(
      sc::interpolate_to_grid(v, loc, 5, sc::Interpolation::kLinear),
      std::invalid_argument);
}

// --------------------------------------------------------------- CHS ----

TEST(Chs, RecoversSparseSignalNoiseFree) {
  const std::size_t n = 128, m = 40, k = 5;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(100);
  auto x = sparse_dct_signal(n, k, rng, basis);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  auto meas = sc::measure_exact(x, plan);
  auto res = sc::chs_reconstruct(basis, meas);
  EXPECT_LT(sl::nrmse(res.reconstruction, x), 1e-6);
  EXPECT_GE(res.iterations, 1u);
}

TEST(Chs, AccuracyImprovesWithMeasurements) {
  // The monotone trend behind Fig. 4.
  const std::size_t n = 256, k = 8;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(101);
  auto x = sparse_dct_signal(n, k, rng, basis);
  double prev_err = 1e9;
  int improvements = 0;
  for (std::size_t m : {12u, 24u, 48u, 96u}) {
    sl::Rng plan_rng(300 + m);
    auto plan = sc::MeasurementPlan::random(n, m, plan_rng);
    auto meas = sc::measure_exact(x, plan);
    auto res = sc::chs_reconstruct(basis, meas);
    const double err = sl::nrmse(res.reconstruction, x);
    if (err < prev_err) ++improvements;
    prev_err = err;
  }
  EXPECT_GE(improvements, 3);
}

TEST(Chs, GlsBeatsOlsUnderHeterogeneousNoise) {
  const std::size_t n = 128, m = 48, k = 4;
  auto basis = sl::dct_basis(n);
  double ols_total = 0.0, gls_total = 0.0;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    sl::Rng rng(200 + trial);
    auto x = sparse_dct_signal(n, k, rng, basis);
    auto plan = sc::MeasurementPlan::random(n, m, rng);
    // Wildly heterogeneous phone quality.
    auto noise = sc::SensorNoise::heterogeneous(m, 0.001, 1.0, rng);
    auto meas = sc::measure(x, plan, noise, rng);
    sc::ChsOptions ols_opts{.max_support = k, .refit = sc::Refit::kOls};
    sc::ChsOptions gls_opts{.max_support = k, .refit = sc::Refit::kGls};
    ols_total += sl::nrmse(sc::chs_reconstruct(basis, meas, ols_opts)
                               .reconstruction, x);
    gls_total += sl::nrmse(sc::chs_reconstruct(basis, meas, gls_opts)
                               .reconstruction, x);
  }
  EXPECT_LT(gls_total, ols_total);
}

TEST(Chs, RespectsSupportBudget) {
  const std::size_t n = 64, m = 32;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(110);
  auto x = sparse_dct_signal(n, 10, rng, basis);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  auto meas = sc::measure_exact(x, plan);
  auto res = sc::chs_reconstruct(basis, meas, {.max_support = 3});
  EXPECT_LE(res.support.size(), 3u);
}

TEST(Chs, SupportIsSortedAndCoefficientsConsistent) {
  const std::size_t n = 64, m = 24;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(111);
  auto x = sparse_dct_signal(n, 4, rng, basis);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  auto meas = sc::measure_exact(x, plan);
  auto res = sc::chs_reconstruct(basis, meas);
  for (std::size_t i = 1; i < res.support.size(); ++i) {
    EXPECT_LT(res.support[i - 1], res.support[i]);
  }
  // Off-support coefficients must be zero.
  std::vector<bool> on(n, false);
  for (auto j : res.support) on[j] = true;
  for (std::size_t j = 0; j < n; ++j) {
    if (!on[j]) EXPECT_DOUBLE_EQ(res.coefficients[j], 0.0);
  }
}

TEST(Chs, ZeroSignalGivesZeroReconstruction) {
  const std::size_t n = 32, m = 8;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(112);
  sl::Vector x(n, 0.0);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  auto meas = sc::measure_exact(x, plan);
  auto res = sc::chs_reconstruct(basis, meas);
  EXPECT_LT(sl::norm2(res.reconstruction), 1e-12);
}

TEST(Chs, ValidatesDimensions) {
  auto basis = sl::dct_basis(16);
  sl::Rng rng(113);
  sl::Vector x(8, 1.0);
  auto plan = sc::MeasurementPlan::random(8, 4, rng);
  auto meas = sc::measure_exact(x, plan);
  EXPECT_THROW(sc::chs_reconstruct(basis, meas), std::invalid_argument);
}

TEST(Chs, InterpolationChoicesAllRecoverSmoothFields) {
  // Nearest/linear Upsilon pre-smooth the residual, so they are only exact
  // on smooth (low-frequency) fields — the paper's spatial-field case.
  const std::size_t n = 128, m = 48, k = 4;
  auto basis = sl::dct_basis(n);
  for (auto kind : {sc::Interpolation::kZeroFill, sc::Interpolation::kNearest,
                    sc::Interpolation::kLinear}) {
    sl::Rng rng(120);
    sl::Vector alpha(n, 0.0);
    for (std::size_t j : rng.sample_without_replacement(n / 8, k)) {
      alpha[j] = rng.uniform(1.0, 3.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    }
    auto x = sl::synthesize(basis, alpha);
    auto plan = sc::MeasurementPlan::random(n, m, rng);
    auto meas = sc::measure_exact(x, plan);
    auto res = sc::chs_reconstruct(basis, meas, {.interpolation = kind});
    EXPECT_LT(sl::nrmse(res.reconstruction, x), 0.05)
        << "interpolation kind " << static_cast<int>(kind);
  }
}

// ------------------------------------------------------- error model ----

TEST(ErrorModel, ApproximationErrorDecreasesWithK) {
  const std::size_t n = 64, m = 32;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(130);
  // A compressible (not exactly sparse) signal: decaying spectrum.
  sl::Vector alpha(n);
  for (std::size_t j = 0; j < n; ++j) {
    alpha[j] = std::pow(0.7, static_cast<double>(j)) *
               (rng.bernoulli(0.5) ? 1.0 : -1.0);
  }
  auto x = sl::synthesize(basis, alpha);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  double prev = 1e18;
  for (std::size_t k = 1; k <= 16; k += 3) {
    auto b = sc::decompose_error(basis, x, plan, 0.0, k);
    EXPECT_LE(b.approximation, prev + 1e-12);
    prev = b.approximation;
  }
}

TEST(ErrorModel, NoiseTermScalesWithSigma) {
  const std::size_t n = 64, m = 24;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(131);
  auto x = sparse_dct_signal(n, 5, rng, basis);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  auto b1 = sc::decompose_error(basis, x, plan, 0.1, 5);
  auto b2 = sc::decompose_error(basis, x, plan, 0.2, 5);
  EXPECT_NEAR(b2.noise, 2.0 * b1.noise, 1e-9);
  EXPECT_DOUBLE_EQ(b1.approximation, b2.approximation);
}

TEST(ErrorModel, ExactlySparseSignalHasZeroApproxAtTrueK) {
  const std::size_t n = 64, m = 32, k = 5;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(132);
  auto x = sparse_dct_signal(n, k, rng, basis);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  auto b = sc::decompose_error(basis, x, plan, 0.0, k);
  EXPECT_LT(b.approximation, 1e-10);
  EXPECT_LT(b.conditioning, 1e-8);
}

TEST(ErrorModel, KappaGrowsTowardM) {
  const std::size_t n = 64, m = 16;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(133);
  auto x = sparse_dct_signal(n, 4, rng, basis);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  auto small = sc::decompose_error(basis, x, plan, 0.0, 2);
  auto big = sc::decompose_error(basis, x, plan, 0.0, m);
  EXPECT_GE(big.kappa, small.kappa);
}

TEST(ErrorModel, ValidatesArguments) {
  const std::size_t n = 16;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(134);
  sl::Vector x(n, 1.0);
  auto plan = sc::MeasurementPlan::random(n, 8, rng);
  EXPECT_THROW(sc::decompose_error(basis, x, plan, 0.0, 0),
               std::invalid_argument);
  EXPECT_THROW(sc::decompose_error(basis, x, plan, 0.0, 9),
               std::invalid_argument);
}

TEST(ErrorModel, OptimalKBalancesTerms) {
  // Compressible signal + noise: optimal K should be interior (neither 1
  // nor M), demonstrating the U-shaped total of Section 4.
  const std::size_t n = 128, m = 32;
  auto basis = sl::dct_basis(n);
  sl::Rng rng(135);
  sl::Vector alpha(n);
  for (std::size_t j = 0; j < n; ++j) {
    alpha[j] = 4.0 * std::pow(0.75, static_cast<double>(j));
  }
  auto x = sl::synthesize(basis, alpha);
  auto plan = sc::MeasurementPlan::random(n, m, rng);
  auto best = sc::optimal_k(basis, x, plan, 0.05);
  EXPECT_GT(best.k, 1u);
  EXPECT_LT(best.k, m);
}
