// Tests for continuous sensing campaigns on the event simulator.
#include <gtest/gtest.h>

#include <stdexcept>

#include "field/generators.h"
#include "hierarchy/campaign.h"

namespace sh = sensedroid::hierarchy;
namespace sf = sensedroid::field;
namespace sl = sensedroid::linalg;
namespace ss = sensedroid::sim;

namespace {

sh::NanoCloud make_cloud(sl::Rng& rng, double battery_j = 36000.0) {
  static sf::SpatialField truth = [] {
    sl::Rng frng(1);
    return sf::random_plume_field(10, 10, 2, frng, 20.0);
  }();
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  cfg.battery_capacity_j = battery_j;
  return sh::NanoCloud(truth, cfg, rng);
}

}  // namespace

TEST(Campaign, RunsAllRoundsOnSchedule) {
  sl::Rng rng(2);
  auto cloud = make_cloud(rng);
  ss::Simulator sim;
  sh::SensingCampaign::Config cfg;
  cfg.period_s = 30.0;
  cfg.rounds = 5;
  cfg.initial_budget = 40;
  sh::SensingCampaign campaign(cloud, sim, cfg);
  const auto reports = campaign.run(rng);
  ASSERT_EQ(reports.size(), 5u);
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(reports[r].time_s, 30.0 * r);
    EXPECT_EQ(reports[r].budget, 40u);
    EXPECT_GT(reports[r].m_used, 30u);
    EXPECT_LT(reports[r].nrmse, 0.2);
  }
  // Fleet energy is cumulative and non-decreasing.
  for (std::size_t r = 1; r < 5; ++r) {
    EXPECT_GE(reports[r].fleet_energy_j, reports[r - 1].fleet_energy_j);
  }
  EXPECT_DOUBLE_EQ(sim.now(), 120.0);
}

TEST(Campaign, AdaptiveBudgetReactsToError) {
  sl::Rng rng(3);
  auto cloud = make_cloud(rng);
  ss::Simulator sim;
  sh::SensingCampaign::Config cfg;
  cfg.rounds = 8;
  cfg.initial_budget = 60;
  cfg.adaptive = true;
  cfg.sampler.m_min = 8;
  cfg.sampler.m_max = 90;
  cfg.sampler.target_error = 0.2;  // loose: the budget should shrink
  sh::SensingCampaign campaign(cloud, sim, cfg);
  const auto reports = campaign.run(rng);
  ASSERT_EQ(reports.size(), 8u);
  EXPECT_LT(reports.back().budget, reports.front().budget);
}

TEST(Campaign, ValidatesConfig) {
  sl::Rng rng(4);
  auto cloud = make_cloud(rng);
  ss::Simulator sim;
  sh::SensingCampaign::Config cfg;
  cfg.rounds = 0;
  EXPECT_THROW(sh::SensingCampaign(cloud, sim, cfg), std::invalid_argument);
  cfg.rounds = 1;
  cfg.period_s = 0.0;
  EXPECT_THROW(sh::SensingCampaign(cloud, sim, cfg), std::invalid_argument);
  cfg.period_s = 1.0;
  cfg.initial_budget = 0;
  EXPECT_THROW(sh::SensingCampaign(cloud, sim, cfg), std::invalid_argument);
}

TEST(Campaign, TinyBatteriesDecayAcrossRounds) {
  sl::Rng rng(5);
  // ~12 reading+radio cycles per phone before death.
  auto cloud = make_cloud(rng, 12 * (0.0002 + 5e-5));
  ss::Simulator sim;
  sh::SensingCampaign::Config cfg;
  cfg.rounds = 30;
  cfg.initial_budget = 60;
  sh::SensingCampaign campaign(cloud, sim, cfg);
  const auto reports = campaign.run(rng);
  EXPECT_LT(reports.back().m_used, reports.front().m_used);
}
