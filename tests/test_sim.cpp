// Tests for the discrete-event engine, radio models, mobility, and energy
// accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/energy.h"
#include "sim/event_sim.h"
#include "sim/geometry.h"
#include "sim/mobility.h"
#include "sim/radio.h"

namespace ss = sensedroid::sim;
namespace sl = sensedroid::linalg;

// ---------------------------------------------------------- geometry ----

TEST(Geometry, DistanceAndRect) {
  ss::Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(ss::distance(a, b), 5.0);
  ss::Rect r{0, 0, 10, 20};
  EXPECT_DOUBLE_EQ(r.width(), 10.0);
  EXPECT_DOUBLE_EQ(r.height(), 20.0);
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_FALSE(r.contains({-1, 5}));
  auto c = r.clamp({-5, 25});
  EXPECT_DOUBLE_EQ(c.x, 0.0);
  EXPECT_DOUBLE_EQ(c.y, 20.0);
  EXPECT_DOUBLE_EQ(r.center().x, 5.0);
}

// ----------------------------------------------------------- eventsim ----

TEST(Simulator, ExecutesInTimeOrder) {
  ss::Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  ss::Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingWorks) {
  ss::Simulator sim;
  double fired_at = -1.0;
  sim.schedule(1.0, [&] {
    sim.schedule(2.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  ss::Simulator sim;
  int count = 0;
  sim.schedule(1.0, [&] { ++count; });
  sim.schedule(5.0, [&] { ++count; });
  EXPECT_EQ(sim.run_until(2.0), 1u);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  ss::Simulator sim;
  int count = 0;
  auto id = sim.schedule(1.0, [&] { ++count; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel
  sim.run();
  EXPECT_EQ(count, 0);
  EXPECT_FALSE(sim.cancel(999));  // unknown id
}

TEST(Simulator, RejectsPastScheduling) {
  ss::Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), std::invalid_argument);
}

TEST(Simulator, StepExecutesBoundedCount) {
  ss::Simulator sim;
  int count = 0;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0 * i, [&] { ++count; });
  EXPECT_EQ(sim.step(2), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.step(10), 3u);  // only 3 left
}

// -------------------------------------------------------------- radio ----

TEST(Radio, KindsHaveDistinctCharacter) {
  auto wifi = ss::LinkModel::of(ss::RadioKind::kWiFi);
  auto bt = ss::LinkModel::of(ss::RadioKind::kBluetooth);
  auto gsm = ss::LinkModel::of(ss::RadioKind::kGsm);
  // Bluetooth cheapest per byte, GSM most expensive.
  EXPECT_LT(bt.tx_energy_per_byte_j, wifi.tx_energy_per_byte_j);
  EXPECT_LT(wifi.tx_energy_per_byte_j, gsm.tx_energy_per_byte_j);
  // GSM reaches furthest, Bluetooth shortest.
  EXPECT_LT(bt.range_m, wifi.range_m);
  EXPECT_LT(wifi.range_m, gsm.range_m);
}

TEST(Radio, TransferTimeIncludesLatencyAndSerialization) {
  auto wifi = ss::LinkModel::of(ss::RadioKind::kWiFi);
  const double t0 = wifi.transfer_time_s(0);
  EXPECT_DOUBLE_EQ(t0, wifi.base_latency_s);
  const double t1 = wifi.transfer_time_s(20'000'000 / 8);  // 1 s of payload
  EXPECT_NEAR(t1 - t0, 1.0, 1e-9);
}

TEST(Radio, EnergyLinearInBytes) {
  auto bt = ss::LinkModel::of(ss::RadioKind::kBluetooth);
  EXPECT_DOUBLE_EQ(bt.tx_energy_j(1000), 1000 * bt.tx_energy_per_byte_j);
  EXPECT_DOUBLE_EQ(bt.rx_energy_j(1000), 1000 * bt.rx_energy_per_byte_j);
  EXPECT_DOUBLE_EQ(bt.tx_energy_j(0), 0.0);
}

TEST(Radio, DeliveryProbabilityDecaysWithDistance) {
  auto wifi = ss::LinkModel::of(ss::RadioKind::kWiFi);
  const double near = wifi.delivery_probability(1.0);
  const double mid = wifi.delivery_probability(50.0);
  const double edge = wifi.delivery_probability(99.0);
  const double out = wifi.delivery_probability(150.0);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, edge);
  EXPECT_DOUBLE_EQ(out, 0.0);
  EXPECT_NEAR(near, 1.0 - wifi.base_loss, 0.01);
}

TEST(Radio, RangeEdgeIsInclusiveAndMonotone) {
  // The boundary is pinned, not implied by the ramp: delivery probability
  // is exactly 0 at dist == range_m, at the next representable double
  // below it the ramp has already collapsed to ~0, and everywhere beyond
  // it stays 0.
  auto wifi = ss::LinkModel::of(ss::RadioKind::kWiFi);
  EXPECT_DOUBLE_EQ(wifi.delivery_probability(wifi.range_m), 0.0);
  const double just_inside =
      std::nextafter(wifi.range_m, 0.0);
  EXPECT_GE(wifi.delivery_probability(just_inside), 0.0);
  EXPECT_LE(wifi.delivery_probability(just_inside), 1e-9);
  EXPECT_DOUBLE_EQ(wifi.delivery_probability(wifi.range_m + 1e-9), 0.0);
  EXPECT_DOUBLE_EQ(wifi.delivery_probability(1e18), 0.0);
  // Monotone non-increasing across the whole domain, including the edge.
  double prev = 1.0;
  for (double d = 0.0; d <= wifi.range_m + 10.0; d += 0.5) {
    const double p = wifi.delivery_probability(d);
    EXPECT_LE(p, prev + 1e-15) << "at dist " << d;
    prev = p;
  }
}

TEST(Radio, DeliveryAtAndBeyondRangeAlwaysFailsButStillDraws) {
  // At the inclusive edge and beyond, delivery never succeeds — but the
  // draw still consumes exactly one Bernoulli so campaigns that include
  // out-of-range nodes remain replayable.
  auto wifi = ss::LinkModel::of(ss::RadioKind::kWiFi);
  sl::Rng a(7), b(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(wifi.delivery_succeeds(wifi.range_m, a));
    EXPECT_FALSE(wifi.delivery_succeeds(wifi.range_m * 2.0, a));
  }
  // Same number of draws from an identical twin keeps the streams level.
  for (int i = 0; i < 400; ++i) b.bernoulli(0.5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Radio, ZeroOrNegativeRangeNeverDelivers) {
  auto dead = ss::LinkModel::of(ss::RadioKind::kWiFi);
  dead.range_m = 0.0;
  EXPECT_DOUBLE_EQ(dead.delivery_probability(0.0), 0.0);
  sl::Rng rng(3);
  EXPECT_FALSE(dead.delivery_succeeds(0.0, rng));
}

TEST(Radio, DeliverySucceedsMatchesProbability) {
  auto wifi = ss::LinkModel::of(ss::RadioKind::kWiFi);
  sl::Rng rng(1);
  int ok = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    if (wifi.delivery_succeeds(50.0, rng)) ++ok;
  }
  const double expected = wifi.delivery_probability(50.0);
  EXPECT_NEAR(static_cast<double>(ok) / trials, expected, 0.03);
}

// ----------------------------------------------------------- mobility ----

TEST(Mobility, RandomWaypointStaysInRegion) {
  sl::Rng rng(2);
  ss::RandomWaypoint::Params p;
  p.region = {0, 0, 50, 50};
  ss::RandomWaypoint w(p, rng);
  for (int i = 0; i < 200; ++i) {
    w.step(1.0, rng);
    EXPECT_TRUE(p.region.contains(w.position()));
  }
}

TEST(Mobility, RandomWaypointRespectsSpeedLimit) {
  sl::Rng rng(3);
  ss::RandomWaypoint::Params p;
  p.region = {0, 0, 1000, 1000};
  p.min_speed_mps = 1.0;
  p.max_speed_mps = 2.0;
  p.pause_s = 0.0;
  ss::RandomWaypoint w(p, rng);
  for (int i = 0; i < 100; ++i) {
    auto before = w.position();
    w.step(1.0, rng);
    EXPECT_LE(ss::distance(before, w.position()), 2.0 + 1e-9);
  }
}

TEST(Mobility, RandomWaypointActuallyMoves) {
  sl::Rng rng(4);
  ss::RandomWaypoint::Params p;
  p.pause_s = 0.0;
  ss::RandomWaypoint w(p, rng);
  auto start = w.position();
  w.step(10.0, rng);
  EXPECT_GT(ss::distance(start, w.position()), 0.1);
}

TEST(Mobility, PauseHoldsPosition) {
  sl::Rng rng(5);
  ss::RandomWaypoint::Params p;
  p.region = {0, 0, 10, 10};
  p.pause_s = 1000.0;
  p.min_speed_mps = p.max_speed_mps = 100.0;  // reach waypoint instantly
  ss::RandomWaypoint w(p, rng);
  w.step(1.0, rng);  // arrives somewhere, starts pausing
  auto held = w.position();
  w.step(5.0, rng);
  EXPECT_DOUBLE_EQ(ss::distance(held, w.position()), 0.0);
}

TEST(Mobility, PedestrianStaysOnGridAndInRegion) {
  sl::Rng rng(6);
  ss::PedestrianGrid::Params p;
  p.region = {0, 0, 400, 400};
  p.block_m = 100.0;
  ss::PedestrianGrid w(p, rng);
  for (int i = 0; i < 300; ++i) {
    w.step(7.0, rng);
    const auto pos = w.position();
    EXPECT_TRUE(p.region.contains(pos));
    // On a street: x or y is a multiple of the block size.
    const double fx = std::fmod(pos.x, p.block_m);
    const double fy = std::fmod(pos.y, p.block_m);
    const bool on_street = std::min(fx, p.block_m - fx) < 1e-6 ||
                           std::min(fy, p.block_m - fy) < 1e-6;
    EXPECT_TRUE(on_street) << "at (" << pos.x << ", " << pos.y << ")";
  }
}

TEST(Mobility, CrowdStepsAllWalkers) {
  sl::Rng rng(7);
  ss::RandomWaypoint::Params p;
  p.pause_s = 0.0;
  ss::Crowd crowd(10, p, rng);
  EXPECT_EQ(crowd.size(), 10u);
  auto before = crowd.positions();
  crowd.step(10.0, rng);
  auto after = crowd.positions();
  int moved = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (ss::distance(before[i], after[i]) > 0.01) ++moved;
  }
  EXPECT_GE(moved, 8);
}

TEST(Mobility, NegativeDtRejected) {
  sl::Rng rng(8);
  ss::RandomWaypoint w({}, rng);
  EXPECT_THROW(w.step(-1.0, rng), std::invalid_argument);
  ss::PedestrianGrid g({}, rng);
  EXPECT_THROW(g.step(-1.0, rng), std::invalid_argument);
}

// -------------------------------------------------------------- energy ----

TEST(Energy, MeterAccumulatesByCategory) {
  ss::EnergyMeter m;
  m.add(ss::EnergyCategory::kSensing, 1.0);
  m.add(ss::EnergyCategory::kSensing, 2.0);
  m.add(ss::EnergyCategory::kTx, 0.5);
  EXPECT_DOUBLE_EQ(m.of(ss::EnergyCategory::kSensing), 3.0);
  EXPECT_DOUBLE_EQ(m.of(ss::EnergyCategory::kTx), 0.5);
  EXPECT_DOUBLE_EQ(m.total_j(), 3.5);
  EXPECT_THROW(m.add(ss::EnergyCategory::kRx, -1.0), std::invalid_argument);
}

TEST(Energy, MeterMergeAndReset) {
  ss::EnergyMeter a, b;
  a.add(ss::EnergyCategory::kTx, 1.0);
  b.add(ss::EnergyCategory::kTx, 2.0);
  b.add(ss::EnergyCategory::kRx, 1.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.of(ss::EnergyCategory::kTx), 3.0);
  EXPECT_DOUBLE_EQ(a.total_j(), 4.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.total_j(), 0.0);
}

TEST(Energy, BatteryDrainsAndClamps) {
  ss::Battery b(10.0);
  EXPECT_TRUE(b.draw(4.0));
  EXPECT_DOUBLE_EQ(b.remaining_j(), 6.0);
  EXPECT_NEAR(b.state_of_charge(), 0.6, 1e-12);
  EXPECT_FALSE(b.depleted());
  EXPECT_FALSE(b.draw(100.0));  // over-draw clamps to empty
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining_j(), 0.0);
  EXPECT_THROW(b.draw(-1.0), std::invalid_argument);
  EXPECT_THROW(ss::Battery(-5.0), std::invalid_argument);
}

TEST(Energy, SensingCostsOrdering) {
  const auto& c = ss::SensingCosts::defaults();
  // The paper's energy argument rests on GPS/WiFi >> inertial sensors.
  EXPECT_GT(c.gps_j, 100 * c.accelerometer_j);
  EXPECT_GT(c.wifi_scan_j, 100 * c.accelerometer_j);
  EXPECT_GT(c.microphone_j, c.accelerometer_j);
}

TEST(Energy, CategoryNames) {
  EXPECT_EQ(ss::to_string(ss::EnergyCategory::kSensing), "sensing");
  EXPECT_EQ(ss::to_string(ss::EnergyCategory::kIdle), "idle");
}
