// Tests for CoSaMP and IHT, and the non-CS interpolation baselines.
#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/interpolation.h"
#include "cs/greedy_variants.h"
#include "field/generators.h"
#include "linalg/basis.h"
#include "linalg/random.h"
#include "linalg/vector_ops.h"

namespace sc = sensedroid::cs;
namespace sb = sensedroid::baselines;
namespace sf = sensedroid::field;
namespace sl = sensedroid::linalg;

namespace {

sl::Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  sl::Rng rng(seed);
  sl::Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
  }
  return a;
}

sl::Vector random_sparse(std::size_t n, std::size_t k, sl::Rng& rng) {
  sl::Vector alpha(n, 0.0);
  for (std::size_t j : rng.sample_without_replacement(n, k)) {
    alpha[j] = rng.uniform(1.0, 2.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
  }
  return alpha;
}

}  // namespace

// -------------------------------------------------------------- CoSaMP ----

TEST(Cosamp, RecoversSparseSignalExactly) {
  const std::size_t n = 96, m = 40, k = 5;
  sl::Rng rng(1);
  const auto a = random_matrix(m, n, 2);
  const auto alpha = random_sparse(n, k, rng);
  const auto y = a * alpha;
  const auto sol = sc::cosamp_solve(a, y, {.sparsity = k});
  EXPECT_LT(sl::relative_error(sol.coefficients, alpha), 1e-7);
  EXPECT_EQ(sol.support.size(), k);
}

TEST(Cosamp, RobustToModerateNoise) {
  const std::size_t n = 96, m = 48, k = 4;
  sl::Rng rng(3);
  const auto a = random_matrix(m, n, 4);
  const auto alpha = random_sparse(n, k, rng);
  auto y = a * alpha;
  for (double& v : y) v += rng.gaussian(0.0, 0.05);
  const auto sol = sc::cosamp_solve(a, y, {.sparsity = k});
  EXPECT_LT(sl::relative_error(sol.coefficients, alpha), 0.15);
}

TEST(Cosamp, Validation) {
  sl::Matrix a(4, 8);
  sl::Vector y(4);
  EXPECT_THROW(sc::cosamp_solve(a, y, {.sparsity = 0}),
               std::invalid_argument);
  sl::Vector bad(3);
  EXPECT_THROW(sc::cosamp_solve(a, bad, {.sparsity = 1}),
               std::invalid_argument);
}

TEST(Cosamp, ZeroSignal) {
  const auto a = random_matrix(8, 16, 5);
  sl::Vector y(8, 0.0);
  const auto sol = sc::cosamp_solve(a, y, {.sparsity = 2});
  EXPECT_LT(sl::norm2(sol.coefficients), 1e-12);
}

// ----------------------------------------------------------------- IHT ----

TEST(Iht, RecoversSparseSignal) {
  const std::size_t n = 96, m = 48, k = 4;
  sl::Rng rng(6);
  const auto a = random_matrix(m, n, 7);
  const auto alpha = random_sparse(n, k, rng);
  const auto y = a * alpha;
  const auto sol = sc::iht_solve(a, y, {.sparsity = k});
  EXPECT_LT(sl::relative_error(sol.coefficients, alpha), 1e-3);
  EXPECT_LE(sol.support.size(), k);
}

TEST(Iht, RespectsSparsityBudget) {
  const std::size_t n = 64, m = 32;
  sl::Rng rng(8);
  const auto a = random_matrix(m, n, 9);
  const auto y = a * random_sparse(n, 10, rng);
  const auto sol = sc::iht_solve(a, y, {.sparsity = 3});
  EXPECT_LE(sl::norm0(sol.coefficients), 3u);
}

TEST(Iht, ExplicitStepWorks) {
  const std::size_t n = 64, m = 32, k = 3;
  sl::Rng rng(10);
  const auto a = random_matrix(m, n, 11);
  const auto alpha = random_sparse(n, k, rng);
  const auto y = a * alpha;
  // A deliberately small (safe) step still converges, just slower.
  const auto sol = sc::iht_solve(a, y, {.sparsity = k,
                                        .max_iterations = 2000,
                                        .step = 1e-3});
  EXPECT_LT(sl::relative_error(sol.coefficients, alpha), 0.05);
}

TEST(Iht, Validation) {
  sl::Matrix a(4, 8);
  sl::Vector y(4);
  EXPECT_THROW(sc::iht_solve(a, y, {.sparsity = 0}), std::invalid_argument);
}

// ----------------------------------- solver agreement on easy instances ----

TEST(SolverAgreement, AllGreedyVariantsAgreeWhenEasy) {
  const std::size_t n = 80, m = 40, k = 4;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sl::Rng rng(100 + seed);
    const auto a = random_matrix(m, n, 200 + seed);
    const auto alpha = random_sparse(n, k, rng);
    const auto y = a * alpha;
    const auto omp = sc::omp_solve(a, y, {.max_sparsity = k});
    const auto cosamp = sc::cosamp_solve(a, y, {.sparsity = k});
    const auto iht = sc::iht_solve(a, y, {.sparsity = k});
    EXPECT_LT(sl::relative_error(omp.coefficients, alpha), 1e-6);
    EXPECT_LT(sl::relative_error(cosamp.coefficients, alpha), 1e-6);
    EXPECT_LT(sl::relative_error(iht.coefficients, alpha), 1e-2);
  }
}

// ------------------------------------------------ interpolation baselines ----

TEST(Interpolation, IdwReproducesSamples) {
  sl::Rng rng(20);
  const auto truth = sf::random_plume_field(10, 10, 2, rng, 5.0);
  const auto locations = rng.sample_without_replacement(100, 30);
  sl::Vector values;
  for (std::size_t l : locations) values.push_back(truth.flat()[l]);
  const auto rec = sb::idw_reconstruct(values, locations, 10, 10);
  for (std::size_t s = 0; s < locations.size(); ++s) {
    EXPECT_NEAR(rec.flat()[locations[s]], values[s], 1e-9);
  }
  // Smooth field: IDW should be a decent reconstruction.
  EXPECT_LT(sf::field_nrmse(rec, truth), 0.1);
}

TEST(Interpolation, RbfInterpolatesExactlyAtSamples) {
  sl::Rng rng(21);
  const auto truth = sf::random_plume_field(8, 8, 2, rng, 3.0);
  const auto locations = rng.sample_without_replacement(64, 20);
  sl::Vector values;
  for (std::size_t l : locations) values.push_back(truth.flat()[l]);
  const auto rec = sb::rbf_reconstruct(values, locations, 8, 8);
  for (std::size_t s = 0; s < locations.size(); ++s) {
    EXPECT_NEAR(rec.flat()[locations[s]], values[s], 1e-3);
  }
}

TEST(Interpolation, RbfBeatsIdwOnSmoothFields) {
  double idw_err = 0.0, rbf_err = 0.0;
  for (int t = 0; t < 5; ++t) {
    sl::Rng rng(30 + t);
    const auto truth = sf::random_plume_field(12, 12, 2, rng, 3.0);
    const auto locations = rng.sample_without_replacement(144, 36);
    sl::Vector values;
    for (std::size_t l : locations) values.push_back(truth.flat()[l]);
    idw_err +=
        sf::field_nrmse(sb::idw_reconstruct(values, locations, 12, 12),
                        truth);
    rbf_err +=
        sf::field_nrmse(sb::rbf_reconstruct(values, locations, 12, 12),
                        truth);
  }
  EXPECT_LT(rbf_err, idw_err);
}

TEST(Interpolation, Validation) {
  sl::Vector values{1.0};
  std::vector<std::size_t> loc{99};
  EXPECT_THROW(sb::idw_reconstruct(values, loc, 4, 4),
               std::invalid_argument);
  EXPECT_THROW(sb::rbf_reconstruct({}, {}, 4, 4), std::invalid_argument);
  std::vector<std::size_t> ok{1};
  sl::Vector two(2);
  EXPECT_THROW(sb::idw_reconstruct(two, ok, 4, 4), std::invalid_argument);
}

// ------------------------------------ greedy-solver correctness fixes ----

TEST(Cosamp, ReturnsConsistentTripleWhenNothingImproves) {
  // Every dictionary column lives in span{e1, e2}; the signal lives in
  // span{e3, e4}, so A^T y == 0 exactly and no iterate can beat the zero
  // solution.  The old code returned the last iterate's support and
  // coefficients paired with the *initial* residual norm — an
  // inconsistent triple.  The fix returns the best iterate whole: the
  // zero solution with residual ||y||.
  const std::size_t m = 4, n = 6;
  sl::Matrix a(m, n, 0.0);
  sl::Rng rng(31);
  for (std::size_t j = 0; j < n; ++j) {
    a(0, j) = rng.gaussian();
    a(1, j) = rng.gaussian();
  }
  sl::Vector y(m, 0.0);
  y[2] = 3.0;
  y[3] = 4.0;

  const auto sol = sc::cosamp_solve(a, y, {.sparsity = 2});
  EXPECT_TRUE(sol.support.empty());
  EXPECT_NEAR(sol.residual_norm, 5.0, 1e-12);
  for (double c : sol.coefficients) EXPECT_EQ(c, 0.0);
  // Self-consistency: residual_norm matches y - A * coefficients.
  const auto fitted = a * sol.coefficients;
  EXPECT_NEAR(sol.residual_norm, sl::norm2(sl::subtract(y, fitted)), 1e-12);
}

TEST(Cosamp, ResidualNormAlwaysMatchesReturnedCoefficients) {
  // Property form of the same contract across noisy random instances.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::size_t n = 48, m = 20, k = 4;
    const auto a = random_matrix(m, n, 4000 + seed);
    sl::Rng rng(4100 + seed);
    const auto alpha = random_sparse(n, k, rng);
    auto y = a * alpha;
    for (double& v : y) v += 0.3 * rng.gaussian();
    const auto sol = sc::cosamp_solve(a, y, {.sparsity = k});
    const auto fitted = a * sol.coefficients;
    SCOPED_TRACE(seed);
    EXPECT_NEAR(sol.residual_norm, sl::norm2(sl::subtract(y, fitted)),
                1e-9 * sl::norm2(y));
    EXPECT_EQ(sol.support.size(), sl::norm0(sol.coefficients));
  }
}

TEST(Cosamp, CandidateTruncationKeepsStrongestProxies) {
  // 10 candidates, room for 4: the survivors must be the largest |proxy|
  // values, not the lowest indices.
  const sl::Vector proxy = {0.1, -9.0, 0.2, 3.0,  -0.3, 8.0,
                            0.4, -2.0, 7.0, -0.5, 0.6,  0.7};
  std::vector<std::size_t> cand = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto kept = sc::clamp_candidates_by_proxy(cand, proxy, 4);
  const std::vector<std::size_t> want = {1, 3, 5, 8};  // |.|: 9, 3, 8, 7
  EXPECT_EQ(kept, want);

  // Ties break toward the lower index, result stays sorted.
  const sl::Vector tied = {1.0, 2.0, 2.0, 2.0, 0.5};
  std::vector<std::size_t> cand2 = {0, 1, 2, 3, 4};
  const auto kept2 = sc::clamp_candidates_by_proxy(cand2, tied, 2);
  const std::vector<std::size_t> want2 = {1, 2};
  EXPECT_EQ(kept2, want2);

  // Under the cap: unchanged.
  std::vector<std::size_t> cand3 = {7, 3};
  EXPECT_EQ(sc::clamp_candidates_by_proxy(cand3, proxy, 4), cand3);
}

// ------------------------------------------------- IHT debias refit ----

TEST(Iht, DebiasRefitsSupportWithoutChangingIt) {
  const std::size_t n = 96, m = 40, k = 5;
  sl::Rng rng(51);
  const auto a = random_matrix(m, n, 52);
  const auto alpha = random_sparse(n, k, rng);
  auto y = a * alpha;
  for (double& v : y) v += 0.05 * rng.gaussian();

  const auto biased =
      sc::iht_solve(a, y, {.sparsity = k, .debias = false});
  const auto debiased =
      sc::iht_solve(a, y, {.sparsity = k, .debias = true});
  EXPECT_EQ(biased.support, debiased.support);
  // A least-squares refit on the same support can only tighten the fit.
  EXPECT_LE(debiased.residual_norm, biased.residual_norm + 1e-12);
}
