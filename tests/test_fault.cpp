// Fault-injection tests: the deterministic fault plan must reproduce
// bit-identically, the resilience machinery (retry, top-up, failover,
// MAD screening) must measurably recover what the faults take away, and
// a benign injector must be behaviorally invisible.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "fault/fault.h"
#include "fault/retry.h"
#include "field/generators.h"
#include "hierarchy/localcloud.h"
#include "hierarchy/nanocloud.h"
#include "middleware/broker.h"
#include "middleware/node.h"
#include "sensing/sensor.h"

namespace sfl = sensedroid::fault;
namespace sh = sensedroid::hierarchy;
namespace sf = sensedroid::field;
namespace sl = sensedroid::linalg;
namespace mw = sensedroid::middleware;
namespace sn = sensedroid::sensing;
namespace ss = sensedroid::sim;

namespace {

sf::SpatialField zone(std::uint64_t seed, std::size_t side = 12) {
  sl::Rng rng(seed);
  return sf::random_plume_field(side, side, 2, rng, 20.0);
}

void expect_stats_eq(const mw::GatherStats& a, const mw::GatherStats& b) {
  EXPECT_EQ(a.commands_sent, b.commands_sent);
  EXPECT_EQ(a.replies_received, b.replies_received);
  EXPECT_EQ(a.radio_failures, b.radio_failures);
  EXPECT_EQ(a.node_refusals, b.node_refusals);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retry_recovered, b.retry_recovered);
  EXPECT_EQ(a.deadline_skips, b.deadline_skips);
  EXPECT_EQ(a.battery_skips, b.battery_skips);
  EXPECT_EQ(a.topup_requests, b.topup_requests);
  EXPECT_EQ(a.topup_replies, b.topup_replies);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  EXPECT_EQ(a.broker_energy_j, b.broker_energy_j);
}

// One three-round campaign against a fixed fleet; everything seeded.
struct CampaignOutcome {
  mw::GatherStats stats;
  std::vector<double> nrmse;
  std::size_t m_used = 0;
};

CampaignOutcome run_campaign(sh::NanoCloudConfig cfg,
                             sfl::FaultInjector* inj) {
  auto truth = zone(101);
  sl::Rng rng(7);
  cfg.coverage = 1.0;
  cfg.injector = inj;
  sh::NanoCloud nc(truth, cfg, rng);
  CampaignOutcome out;
  for (int round = 0; round < 3; ++round) {
    if (inj != nullptr) inj->begin_round();
    const auto res = nc.gather(60, rng);
    out.stats += res.stats;
    out.nrmse.push_back(res.nrmse);
    out.m_used += res.m_used;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- plans

TEST(FaultPlan, ValidatesProbabilitiesAndWindows) {
  sfl::FaultPlan plan;
  plan.link.p_good_to_bad = 1.5;
  EXPECT_THROW(sfl::FaultInjector{plan}, std::invalid_argument);
  plan.link.p_good_to_bad = 0.0;
  plan.sensors.stuck_fraction = 0.7;
  plan.sensors.drift_fraction = 0.7;  // sums past 1
  EXPECT_THROW(sfl::FaultInjector{plan}, std::invalid_argument);
  plan.sensors.drift_fraction = 0.0;
  plan.broker_crashes.push_back({0, 5, 2});  // inverted window
  EXPECT_THROW(sfl::FaultInjector{plan}, std::invalid_argument);
}

TEST(FaultPlan, GilbertElliottClosedForms) {
  sfl::GilbertElliott ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.20;
  ge.loss_bad = 0.9;
  ge.loss_good = 0.02;
  EXPECT_NEAR(ge.bad_occupancy(), 0.2, 1e-12);
  EXPECT_NEAR(ge.mean_loss(), 0.2 * 0.9 + 0.8 * 0.02, 1e-12);
}

TEST(FaultInjector, GilbertElliottMatchesStationaryLossAndIsBursty) {
  sfl::FaultPlan plan;
  plan.seed = 42;
  plan.link.p_good_to_bad = 0.05;
  plan.link.p_bad_to_good = 0.20;
  plan.link.loss_bad = 0.9;
  plan.link.loss_good = 0.02;
  sfl::FaultInjector inj(plan);

  const int kAttempts = 200000;
  int drops = 0, pairs = 0, drop_after_drop = 0;
  bool prev = false;
  for (int i = 0; i < kAttempts; ++i) {
    const bool d = inj.link_attempt_drops();
    if (d) ++drops;
    if (i > 0) {
      ++pairs;
      if (prev && d) ++drop_after_drop;
    }
    prev = d;
  }
  const double rate = static_cast<double>(drops) / kAttempts;
  EXPECT_NEAR(rate, plan.link.mean_loss(), 0.02);
  // Burstiness: a drop is far more likely right after a drop than
  // unconditionally — the signature that separates GE from i.i.d. loss.
  const double cond =
      static_cast<double>(drop_after_drop) / std::max(1, drops);
  EXPECT_GT(cond, 2.0 * rate);
  EXPECT_EQ(inj.tally().link_drops, static_cast<std::size_t>(drops));
  EXPECT_GT(inj.tally().link_bursts, 0u);
}

TEST(FaultInjector, ChurnPresenceIsStableWithinARoundAndOrderIndependent) {
  sfl::FaultPlan plan;
  plan.seed = 9;
  plan.churn.leave_prob = 0.4;
  plan.churn.rejoin_prob = 0.3;
  sfl::FaultInjector a(plan);
  sfl::FaultInjector b(plan);

  for (int round = 1; round <= 20; ++round) {
    a.begin_round();
    b.begin_round();
    // a queries ascending, b descending and repeatedly: presence per
    // (node, round) must agree regardless.
    std::vector<bool> pa, pb;
    for (std::uint32_t n = 1; n <= 8; ++n) pa.push_back(a.node_present(n));
    for (std::uint32_t n = 8; n >= 1; --n) {
      const bool first = b.node_present(n);
      EXPECT_EQ(first, b.node_present(n));  // stable within the round
      pb.insert(pb.begin(), first);
    }
    EXPECT_EQ(pa, pb);
  }
  EXPECT_GT(a.tally().churn_leaves + a.tally().churn_rejoins, 0u);
}

TEST(FaultInjector, StuckSensorFreezesAndDriftAccumulates) {
  sfl::FaultPlan plan;
  plan.sensors.stuck_fraction = 1.0;
  sfl::FaultInjector stuck_inj(plan);
  sn::SimulatedSensor stuck(sn::SensorKind::kTemperature,
                            sn::QualityTier::kFlagship,
                            [](std::size_t i) { return 20.0 + i; }, 5);
  stuck.set_read_hook(stuck_inj.sensor_hook(1, stuck.noise_sigma()));
  const double first = stuck.read(0);
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(stuck.read(i), first);  // frozen at first read
  }
  EXPECT_EQ(stuck_inj.tally().stuck_nodes, 1u);

  sfl::FaultPlan dplan;
  dplan.sensors.drift_fraction = 1.0;
  dplan.sensors.drift_per_read = 0.5;
  sfl::FaultInjector drift_inj(dplan);
  sn::SimulatedSensor drifty(sn::SensorKind::kTemperature,
                             sn::QualityTier::kFlagship,
                             [](std::size_t) { return 20.0; }, 6);
  drifty.set_read_hook(drift_inj.sensor_hook(2, drifty.noise_sigma()));
  const double d0 = drifty.read(0);
  double d9 = 0.0;
  for (std::size_t i = 1; i < 10; ++i) d9 = drifty.read(i);
  // 9 extra reads at +0.5 bias each dwarf the flagship noise.
  EXPECT_GT(d9 - d0, 3.0);
  EXPECT_EQ(drift_inj.tally().drift_nodes, 1u);
}

// ----------------------------------------------------- retry policy unit

TEST(RetryPolicy, ValidatesAndBoundsBackoff) {
  sfl::RetryPolicy bad;
  bad.max_attempts = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.max_backoff_s = 0.001;  // below base
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.min_retry_soc = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  sfl::RetryPolicy p;
  p.max_attempts = 4;
  p.base_backoff_s = 0.01;
  p.max_backoff_s = 0.5;
  sl::Rng rng(3);
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    prev = p.next_backoff_s(prev, rng);
    EXPECT_GE(prev, p.base_backoff_s);
    EXPECT_LE(prev, p.max_backoff_s);
  }
}

TEST(Broker, RejectsInvalidRetryPolicy) {
  mw::Broker broker(1, {0.0, 0.0});
  sfl::RetryPolicy bad;
  bad.max_attempts = 0;
  EXPECT_THROW(broker.set_retry_policy(bad), std::invalid_argument);
}

TEST(Broker, DeadlineSkipsRemainingNodes) {
  mw::Broker broker(1, {0.0, 0.0});
  sfl::RetryPolicy p;
  p.round_deadline_s = 1e-6;  // shorter than one command transfer
  broker.set_retry_policy(p);
  std::vector<mw::MobileNode> nodes;
  for (mw::NodeId id = 1; id <= 5; ++id) {
    nodes.emplace_back(id, ss::Point{1.0, 1.0});
    nodes.back().add_sensor(sn::SimulatedSensor(
        sn::SensorKind::kTemperature, sn::QualityTier::kMidrange,
        [](std::size_t) { return 20.0; }));
  }
  std::vector<mw::MobileNode*> ptrs;
  for (auto& n : nodes) ptrs.push_back(&n);
  sl::Rng rng(4);
  mw::GatherStats stats;
  broker.collect(ptrs, sn::SensorKind::kTemperature, 0, rng, &stats);
  EXPECT_EQ(stats.commands_sent, 1u);   // only the first node fit
  EXPECT_EQ(stats.deadline_skips, 4u);
  EXPECT_GT(broker.last_round_virtual_s(), p.round_deadline_s);
}

TEST(Broker, BatterySkipWithholdsRetriesFromLowSocNodes) {
  // A permanently-bad GE channel forces every attempt to fail; the
  // energy-aware guard must then refuse to burn retries on half-drained
  // batteries.
  sfl::FaultPlan plan;
  plan.link.p_good_to_bad = 1.0;
  plan.link.p_bad_to_good = 0.0;
  plan.link.loss_bad = 1.0;
  sfl::FaultInjector inj(plan);

  mw::Broker broker(1, {0.0, 0.0});
  sfl::RetryPolicy p;
  p.max_attempts = 3;
  p.min_retry_soc = 0.5;
  broker.set_retry_policy(p);
  broker.set_fault_injector(&inj);

  std::vector<mw::MobileNode> nodes;
  for (mw::NodeId id = 1; id <= 4; ++id) {
    nodes.emplace_back(id, ss::Point{1.0, 1.0},
                       ss::LinkModel::of(ss::RadioKind::kWiFi),
                       ss::Battery(0.01));
    nodes.back().pay_tx(10000);  // drain to ~0.4 state of charge
    EXPECT_LT(nodes.back().battery().state_of_charge(), 0.5);
    nodes.back().add_sensor(sn::SimulatedSensor(
        sn::SensorKind::kTemperature, sn::QualityTier::kMidrange,
        [](std::size_t) { return 20.0; }));
  }
  std::vector<mw::MobileNode*> ptrs;
  for (auto& n : nodes) ptrs.push_back(&n);
  sl::Rng rng(5);
  mw::GatherStats stats;
  const auto readings =
      broker.collect(ptrs, sn::SensorKind::kTemperature, 0, rng, &stats);
  EXPECT_TRUE(readings.empty());
  EXPECT_EQ(stats.battery_skips, 4u);  // one withheld retry per node
  EXPECT_EQ(stats.retries, 0u);
}

// --------------------------------------------------- campaign invariants

TEST(FaultCampaign, BenignInjectorIsBitIdenticalToNoInjector) {
  sh::NanoCloudConfig cfg;
  const auto bare = run_campaign(cfg, nullptr);

  sfl::FaultInjector benign(sfl::FaultPlan{});  // every knob at zero
  const auto injected = run_campaign(cfg, &benign);

  expect_stats_eq(bare.stats, injected.stats);
  ASSERT_EQ(bare.nrmse.size(), injected.nrmse.size());
  for (std::size_t i = 0; i < bare.nrmse.size(); ++i) {
    EXPECT_EQ(bare.nrmse[i], injected.nrmse[i]);  // bit-identical
  }
  EXPECT_EQ(benign.tally().total_injected(), 0u);
}

TEST(FaultCampaign, SameSeedAndPlanReplaysBitIdentically) {
  sfl::FaultPlan plan;
  plan.seed = 77;
  plan.link.p_good_to_bad = 0.1;
  plan.link.p_bad_to_good = 0.3;
  plan.link.loss_bad = 0.8;
  plan.churn.leave_prob = 0.2;
  plan.sensors.spike_prob = 0.05;
  sh::NanoCloudConfig cfg;
  cfg.retry.max_attempts = 3;
  cfg.topup_rounds = 1;
  cfg.chs.mad_threshold = 5.0;

  sfl::FaultInjector inj1(plan);
  const auto run1 = run_campaign(cfg, &inj1);
  sfl::FaultInjector inj2(plan);
  const auto run2 = run_campaign(cfg, &inj2);

  expect_stats_eq(run1.stats, run2.stats);
  ASSERT_EQ(run1.nrmse.size(), run2.nrmse.size());
  for (std::size_t i = 0; i < run1.nrmse.size(); ++i) {
    EXPECT_EQ(run1.nrmse[i], run2.nrmse[i]);
  }
  EXPECT_EQ(inj1.tally().total_injected(), inj2.tally().total_injected());
  EXPECT_GT(inj1.tally().total_injected(), 0u);
}

TEST(FaultCampaign, ChurnShrinksRepliesWithoutCrashing) {
  sfl::FaultPlan plan;
  plan.churn.leave_prob = 0.5;
  plan.churn.rejoin_prob = 0.1;
  sfl::FaultInjector inj(plan);
  sh::NanoCloudConfig cfg;
  const auto out = run_campaign(cfg, &inj);

  EXPECT_GT(inj.tally().churn_absences, 0u);
  EXPECT_LT(out.stats.replies_received, out.stats.commands_sent);
  EXPECT_GT(out.m_used, 0u);  // survivors still produce a field
}

TEST(FaultCampaign, RetryRecoversRepliesUnderBurstyLoss) {
  sfl::FaultPlan plan;
  plan.seed = 13;
  plan.link.p_good_to_bad = 0.15;
  plan.link.p_bad_to_good = 0.25;
  plan.link.loss_bad = 0.9;
  plan.link.loss_good = 0.02;

  sh::NanoCloudConfig one_shot;
  sfl::FaultInjector inj_a(plan);
  const auto no_retry = run_campaign(one_shot, &inj_a);

  sh::NanoCloudConfig with_retry;
  with_retry.retry.max_attempts = 4;
  sfl::FaultInjector inj_b(plan);
  const auto retry = run_campaign(with_retry, &inj_b);

  EXPECT_GT(retry.stats.retries, 0u);
  EXPECT_GT(retry.stats.retry_recovered, 0u);
  EXPECT_GT(retry.stats.replies_received, no_retry.stats.replies_received);
}

TEST(FaultCampaign, TopUpRefillsTheMeasurementBudget) {
  sfl::FaultPlan plan;
  plan.seed = 21;
  plan.link.p_good_to_bad = 0.15;
  plan.link.p_bad_to_good = 0.25;
  plan.link.loss_bad = 0.9;

  sh::NanoCloudConfig plain;
  sfl::FaultInjector inj_a(plan);
  const auto without = run_campaign(plain, &inj_a);

  sh::NanoCloudConfig topped;
  topped.topup_rounds = 2;
  sfl::FaultInjector inj_b(plan);
  const auto with = run_campaign(topped, &inj_b);

  EXPECT_GT(with.stats.topup_requests, 0u);
  EXPECT_GT(with.stats.topup_replies, 0u);
  EXPECT_GT(with.m_used, without.m_used);
}

TEST(FaultCampaign, MadScreeningRejectsSpikesAndFlagsDegraded) {
  sfl::FaultPlan plan;
  plan.seed = 31;
  plan.sensors.spike_prob = 0.15;
  plan.sensors.spike_sigmas = 60.0;

  auto truth = zone(202);
  double nrmse_raw = 0.0, nrmse_screened = 0.0;
  std::size_t rejected = 0;
  bool degraded = false;
  for (int arm = 0; arm < 2; ++arm) {
    sl::Rng rng(11);
    sfl::FaultInjector inj(plan);
    sh::NanoCloudConfig cfg;
    cfg.coverage = 1.0;
    cfg.injector = &inj;
    if (arm == 1) cfg.chs.mad_threshold = 5.0;
    sh::NanoCloud nc(truth, cfg, rng);
    inj.begin_round();
    const auto res = nc.gather(80, rng);
    if (arm == 0) {
      nrmse_raw = res.nrmse;
      EXPECT_EQ(res.outliers_rejected, 0u);
    } else {
      nrmse_screened = res.nrmse;
      rejected = res.outliers_rejected;
      degraded = res.degraded;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_TRUE(degraded);
  EXPECT_LT(nrmse_screened, nrmse_raw);  // screening pays for itself
}

TEST(FaultCampaign, BrokerCrashFailsOverToAPromotedMember) {
  sfl::FaultPlan plan;
  plan.broker_crashes.push_back({/*zone=*/0, /*from=*/1, /*to=*/2});
  sfl::FaultInjector inj(plan);

  auto truth = zone(303);
  sl::Rng rng(17);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  cfg.injector = &inj;
  sh::NanoCloud nc(truth, cfg, rng);

  inj.begin_round();  // round 1: inside the window
  const auto crashed = nc.gather(40, rng);
  EXPECT_TRUE(crashed.failed_over);
  EXPECT_TRUE(crashed.degraded);
  EXPECT_GT(crashed.m_used, 0u);  // the stand-in still gathered
  EXPECT_TRUE(std::isfinite(crashed.nrmse));

  inj.begin_round();  // round 2: still down
  EXPECT_TRUE(nc.gather(40, rng).failed_over);

  inj.begin_round();  // round 3: broker is back
  const auto healthy = nc.gather(40, rng);
  EXPECT_FALSE(healthy.failed_over);
  EXPECT_FALSE(healthy.degraded);
  EXPECT_EQ(inj.tally().crashed_broker_rounds, 2u);
}

TEST(FaultCampaign, FailoverWithNoWillingSurvivorYieldsEmptyRound) {
  sfl::FaultPlan plan;
  plan.broker_crashes.push_back({0, 1, 1});
  sfl::FaultInjector inj(plan);

  auto truth = zone(404);
  sl::Rng rng(19);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  cfg.opt_out_fraction = 1.0;  // nobody volunteers for promotion
  cfg.injector = &inj;
  sh::NanoCloud nc(truth, cfg, rng);

  inj.begin_round();
  const auto res = nc.gather(40, rng);
  EXPECT_EQ(res.m_used, 0u);
  EXPECT_FALSE(res.failed_over);  // no stand-in existed
  EXPECT_DOUBLE_EQ(res.reconstruction.max(), 0.0);  // zero field, not junk
}

TEST(FaultCampaign, BatteryPlanStarvesTheFleetLikeTheAdHocScenario) {
  // Port of FailureInjection.BatteryDeathMidCampaignShrinksReplies onto
  // the injector: the plan's capacity override — not a doctored config —
  // sizes batteries for ~10 reading cycles.
  sfl::FaultPlan plan;
  plan.battery.capacity_override_j = 10 * (0.0002 + 5e-5);
  sfl::FaultInjector inj(plan);

  auto truth = zone(505, 10);
  sl::Rng rng(2);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  cfg.battery_capacity_j = 36000.0;  // the override must win over this
  cfg.injector = &inj;
  sh::NanoCloud nc(truth, cfg, rng);

  std::size_t last_used = 100;
  bool shrank = false;
  for (int round = 0; round < 40; ++round) {
    inj.begin_round();
    const auto res = nc.gather(40, rng);
    EXPECT_LE(res.m_used, res.m_requested);
    if (res.m_used < last_used) shrank = true;
    last_used = res.m_used;
  }
  EXPECT_TRUE(shrank);
  EXPECT_LT(last_used, 40u);
}

TEST(FaultCampaign, LocalCloudRoutesCrashWindowsByZoneAndAggregates) {
  sfl::FaultPlan plan;
  plan.broker_crashes.push_back({/*zone=*/2, /*from=*/1, /*to=*/1});
  sfl::FaultInjector inj(plan);

  sl::Rng rng(23);
  auto f = zone(606, 16);
  sf::ZoneGrid grid(16, 16, 2, 2);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  cfg.injector = &inj;
  sh::LocalCloud lc(f, grid, cfg, rng);

  // LocalCloud::gather advances the injector itself: round 1 crashes
  // zone 2 only.
  const auto r1 = lc.gather_uniform(30, rng);
  EXPECT_EQ(r1.failovers, 1u);
  EXPECT_EQ(r1.degraded_zones, 1u);
  const auto r2 = lc.gather_uniform(30, rng);
  EXPECT_EQ(r2.failovers, 0u);
  EXPECT_TRUE(std::isfinite(r1.nrmse));
}
