// Unit + property tests for QR, Cholesky, Jacobi eigen/SVD, pinv, LU.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/decomposition.h"
#include "linalg/matrix.h"
#include "linalg/random.h"
#include "linalg/vector_ops.h"

namespace sl = sensedroid::linalg;

namespace {

sl::Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  sl::Rng rng(seed);
  sl::Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.gaussian();
  }
  return a;
}

sl::Matrix random_spd(std::size_t n, std::uint64_t seed) {
  sl::Matrix a = random_matrix(n + 4, n, seed);
  sl::Matrix g = a.gram();
  for (std::size_t i = 0; i < n; ++i) g(i, i) += 0.5;
  return g;
}

}  // namespace

TEST(QR, SolvesSquareSystemExactly) {
  sl::Matrix a{{4, 1}, {1, 3}};
  sl::Vector b{1.0, 2.0};
  sl::QR qr(a);
  auto x = qr.solve(b);
  auto r = sl::subtract(a * x, b);
  EXPECT_LT(sl::norm2(r), 1e-12);
}

TEST(QR, LeastSquaresResidualOrthogonalToColumns) {
  auto a = random_matrix(20, 5, 42);
  sl::Rng rng(7);
  auto b = rng.gaussian_vector(20);
  sl::QR qr(a);
  auto x = qr.solve(b);
  auto r = sl::subtract(a * x, b);
  // Normal equations: A^T r == 0 at the least-squares solution.
  auto atr = a.transpose_times(r);
  EXPECT_LT(sl::norm_inf(atr), 1e-10);
}

TEST(QR, RejectsWideMatrix) {
  sl::Matrix a(2, 3);
  EXPECT_THROW(sl::QR{a}, std::invalid_argument);
}

TEST(QR, DetectsRankDeficiency) {
  sl::Matrix a{{1, 2}, {2, 4}, {3, 6}};  // second column = 2x first
  sl::QR qr(a);
  EXPECT_FALSE(qr.full_rank());
  sl::Vector b{1, 1, 1};
  EXPECT_THROW(qr.solve(b), std::runtime_error);
}

TEST(QR, SolveRejectsWrongSize) {
  auto a = random_matrix(4, 2, 1);
  sl::QR qr(a);
  sl::Vector b{1.0, 2.0};
  EXPECT_THROW(qr.solve(b), std::invalid_argument);
}

TEST(Cholesky, ReconstructsLLt) {
  auto a = random_spd(6, 11);
  sl::Cholesky chol(a);
  const auto& l = chol.lower();
  EXPECT_TRUE(sl::approx_equal(l * l.transpose(), a, 1e-9));
}

TEST(Cholesky, SolvesSystem) {
  auto a = random_spd(8, 3);
  sl::Rng rng(5);
  auto xtrue = rng.gaussian_vector(8);
  auto b = a * xtrue;
  sl::Cholesky chol(a);
  auto x = chol.solve(b);
  EXPECT_LT(sl::relative_error(x, xtrue), 1e-8);
}

TEST(Cholesky, RejectsNonSpd) {
  sl::Matrix a{{1, 2}, {2, 1}};  // indefinite
  EXPECT_THROW(sl::Cholesky{a}, std::runtime_error);
}

TEST(Cholesky, RejectsNonSquare) {
  sl::Matrix a(2, 3);
  EXPECT_THROW(sl::Cholesky{a}, std::invalid_argument);
}

TEST(JacobiEigen, DiagonalizesKnownMatrix) {
  sl::Matrix a{{2, 1}, {1, 2}};  // eigenvalues 3 and 1
  auto eig = sl::jacobi_eigen(a);
  ASSERT_EQ(eig.eigenvalues.size(), 2u);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
}

TEST(JacobiEigen, ReconstructsMatrix) {
  auto a = random_spd(7, 23);
  auto eig = sl::jacobi_eigen(a);
  // A == V diag(w) V^T
  auto d = sl::Matrix::diagonal(eig.eigenvalues);
  auto rec = eig.eigenvectors * d * eig.eigenvectors.transpose();
  EXPECT_TRUE(sl::approx_equal(rec, a, 1e-8));
}

TEST(JacobiEigen, EigenvectorsOrthonormal) {
  auto a = random_spd(9, 31);
  auto eig = sl::jacobi_eigen(a);
  auto g = eig.eigenvectors.gram();
  EXPECT_TRUE(sl::approx_equal(g, sl::Matrix::identity(9), 1e-9));
}

TEST(JacobiSvd, ReconstructsTallMatrix) {
  auto a = random_matrix(10, 4, 17);
  auto svd = sl::jacobi_svd(a);
  auto rec = svd.u * sl::Matrix::diagonal(svd.s) * svd.v.transpose();
  EXPECT_TRUE(sl::approx_equal(rec, a, 1e-9));
}

TEST(JacobiSvd, SingularValuesSortedDescending) {
  auto a = random_matrix(12, 6, 29);
  auto svd = sl::jacobi_svd(a);
  for (std::size_t i = 1; i < svd.s.size(); ++i) {
    EXPECT_GE(svd.s[i - 1], svd.s[i]);
  }
}

TEST(PseudoInverse, SatisfiesMoorePenroseForTall) {
  auto a = random_matrix(8, 3, 41);
  auto p = sl::pseudo_inverse(a);
  // A pinv(A) A == A and pinv(A) A pinv(A) == pinv(A).
  EXPECT_TRUE(sl::approx_equal(a * p * a, a, 1e-8));
  EXPECT_TRUE(sl::approx_equal(p * a * p, p, 1e-8));
}

TEST(PseudoInverse, HandlesWideMatrix) {
  auto a = random_matrix(3, 8, 43);
  auto p = sl::pseudo_inverse(a);
  EXPECT_EQ(p.rows(), 8u);
  EXPECT_EQ(p.cols(), 3u);
  EXPECT_TRUE(sl::approx_equal(a * p * a, a, 1e-8));
}

TEST(PseudoInverse, RegularizesSingularMatrix) {
  sl::Matrix a{{1, 2}, {2, 4}};  // rank 1
  auto p = sl::pseudo_inverse(a);
  EXPECT_TRUE(sl::approx_equal(a * p * a, a, 1e-8));
}

TEST(ConditionNumber, IdentityIsOne) {
  EXPECT_NEAR(sl::condition_number(sl::Matrix::identity(5)), 1.0, 1e-10);
}

TEST(ConditionNumber, ScalesWithDiagonalSpread) {
  const double d[] = {100.0, 1.0};
  auto a = sl::Matrix::diagonal(d);
  EXPECT_NEAR(sl::condition_number(a), 100.0, 1e-8);
}

TEST(ConditionNumber, SingularIsInfinite) {
  sl::Matrix a{{1, 1}, {1, 1}};
  EXPECT_TRUE(std::isinf(sl::condition_number(a)));
}

TEST(LuSolve, SolvesGeneralSquareSystem) {
  sl::Matrix a{{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}};
  sl::Vector xtrue{2.0, -1.0, 3.0};
  auto b = a * xtrue;
  auto x = sl::lu_solve(a, b);
  EXPECT_LT(sl::relative_error(x, xtrue), 1e-10);
}

TEST(LuSolve, ThrowsOnSingular) {
  sl::Matrix a{{1, 2}, {2, 4}};
  sl::Vector b{1.0, 2.0};
  EXPECT_THROW(sl::lu_solve(a, b), std::runtime_error);
}

TEST(Orthonormalize, ProducesOrthonormalColumns) {
  auto a = random_matrix(10, 6, 53);
  std::size_t rank = 0;
  auto q = sl::orthonormalize_columns(a, 1e-10, &rank);
  EXPECT_EQ(rank, 6u);
  EXPECT_TRUE(sl::approx_equal(q.gram(), sl::Matrix::identity(6), 1e-9));
}

TEST(Orthonormalize, DropsDependentColumns) {
  sl::Matrix a(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // dependent
    a(i, 2) = i == 0 ? 1.0 : 0.0;
  }
  std::size_t rank = 0;
  auto q = sl::orthonormalize_columns(a, 1e-10, &rank);
  EXPECT_EQ(rank, 2u);
  EXPECT_EQ(q.cols(), 2u);
}

// Property sweep: QR least squares matches pinv-based solution on random
// overdetermined systems of several shapes.
class QrPinvAgreement
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(QrPinvAgreement, QrMatchesPinv) {
  const auto [m, n] = GetParam();
  auto a = random_matrix(m, n, 1000 + m * 31 + n);
  sl::Rng rng(m * 7 + n);
  auto b = rng.gaussian_vector(m);
  sl::QR qr(a);
  auto x_qr = qr.solve(b);
  auto x_pinv = sl::pseudo_inverse(a) * b;
  EXPECT_LT(sl::relative_error(x_qr, x_pinv), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrPinvAgreement,
    ::testing::Values(std::make_tuple(6, 3), std::make_tuple(12, 5),
                      std::make_tuple(25, 10), std::make_tuple(40, 8),
                      std::make_tuple(9, 9)));
