// Tests for measurement plans and sensor-noise models.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cs/measurement.h"
#include "linalg/basis.h"
#include "linalg/vector_ops.h"

namespace sc = sensedroid::cs;
namespace sl = sensedroid::linalg;

TEST(SensorNoise, HomogeneousFillsStddev) {
  auto n = sc::SensorNoise::homogeneous(4, 0.5);
  ASSERT_EQ(n.size(), 4u);
  for (double s : n.stddev) EXPECT_DOUBLE_EQ(s, 0.5);
  EXPECT_THROW(sc::SensorNoise::homogeneous(3, -1.0), std::invalid_argument);
}

TEST(SensorNoise, HeterogeneousWithinBounds) {
  sl::Rng rng(1);
  auto n = sc::SensorNoise::heterogeneous(100, 0.1, 0.9, rng);
  for (double s : n.stddev) {
    EXPECT_GE(s, 0.1);
    EXPECT_LT(s, 0.9);
  }
  EXPECT_THROW(sc::SensorNoise::heterogeneous(5, 0.9, 0.1, rng),
               std::invalid_argument);
}

TEST(SensorNoise, CovarianceIsDiagonalOfVariances) {
  auto n = sc::SensorNoise::homogeneous(3, 2.0);
  auto v = n.covariance();
  EXPECT_DOUBLE_EQ(v(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(v(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(v(0, 1), 0.0);
}

TEST(SensorNoise, SampleRespectsZeroStddev) {
  auto n = sc::SensorNoise::homogeneous(5, 0.0);
  sl::Rng rng(2);
  auto w = n.sample(rng);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(SensorNoise, SampleMomentsMatch) {
  auto n = sc::SensorNoise::homogeneous(20000, 0.7);
  sl::Rng rng(3);
  auto w = n.sample(rng);
  EXPECT_NEAR(sl::mean(w), 0.0, 0.02);
  EXPECT_NEAR(std::sqrt(sl::variance(w)), 0.7, 0.02);
}

TEST(MeasurementPlan, RandomPlanIsSortedDistinct) {
  sl::Rng rng(4);
  auto p = sc::MeasurementPlan::random(100, 25, rng);
  EXPECT_EQ(p.signal_size(), 100u);
  EXPECT_EQ(p.measurement_count(), 25u);
  auto idx = p.indices();
  for (std::size_t i = 1; i < idx.size(); ++i) {
    EXPECT_LT(idx[i - 1], idx[i]);
  }
  EXPECT_LT(idx.back(), 100u);
}

TEST(MeasurementPlan, FromIndicesValidates) {
  EXPECT_NO_THROW(sc::MeasurementPlan::from_indices(10, {1, 3, 7}));
  EXPECT_THROW(sc::MeasurementPlan::from_indices(10, {3, 1}),
               std::invalid_argument);
  EXPECT_THROW(sc::MeasurementPlan::from_indices(10, {1, 1}),
               std::invalid_argument);
  EXPECT_THROW(sc::MeasurementPlan::from_indices(10, {10}),
               std::invalid_argument);
}

TEST(MeasurementPlan, UniformGridEvenlySpaced) {
  auto p = sc::MeasurementPlan::uniform_grid(100, 10);
  auto idx = p.indices();
  ASSERT_EQ(idx.size(), 10u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[5], 50u);
  EXPECT_THROW(sc::MeasurementPlan::uniform_grid(5, 6), std::invalid_argument);
}

TEST(MeasurementPlan, UniformGridFullCoverage) {
  auto p = sc::MeasurementPlan::uniform_grid(8, 8);
  auto idx = p.indices();
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(idx[i], i);
}

TEST(MeasurementPlan, SampleSignalPicksValues) {
  auto p = sc::MeasurementPlan::from_indices(5, {0, 2, 4});
  sl::Vector x{10, 11, 12, 13, 14};
  auto s = p.sample_signal(x);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[0], 10.0);
  EXPECT_DOUBLE_EQ(s[1], 12.0);
  EXPECT_DOUBLE_EQ(s[2], 14.0);
  sl::Vector bad(4);
  EXPECT_THROW(p.sample_signal(bad), std::invalid_argument);
}

TEST(MeasurementPlan, SelectRowsMatchesManualSelection) {
  auto basis = sl::dct_basis(6);
  auto p = sc::MeasurementPlan::from_indices(6, {1, 4});
  auto sel = p.select_rows(basis);
  EXPECT_EQ(sel.rows(), 2u);
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_DOUBLE_EQ(sel(0, c), basis(1, c));
    EXPECT_DOUBLE_EQ(sel(1, c), basis(4, c));
  }
  auto small = sl::dct_basis(5);
  EXPECT_THROW(p.select_rows(small), std::invalid_argument);
}

TEST(Measure, ExactMeasurementIsNoiseFree) {
  sl::Vector x{1, 2, 3, 4};
  auto p = sc::MeasurementPlan::from_indices(4, {1, 3});
  auto m = sc::measure_exact(x, p);
  EXPECT_DOUBLE_EQ(m.values[0], 2.0);
  EXPECT_DOUBLE_EQ(m.values[1], 4.0);
  for (double s : m.noise.stddev) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(Measure, NoisyMeasurementPerturbsValues) {
  sl::Rng rng(9);
  sl::Vector x(50, 1.0);
  auto p = sc::MeasurementPlan::random(50, 20, rng);
  auto noise = sc::SensorNoise::homogeneous(20, 0.1);
  auto m = sc::measure(x, p, noise, rng);
  ASSERT_EQ(m.values.size(), 20u);
  double dev = 0.0;
  for (double v : m.values) dev += std::abs(v - 1.0);
  EXPECT_GT(dev, 0.0);   // noise actually applied
  EXPECT_LT(dev, 20.0);  // but bounded
}

TEST(Measure, RejectsMismatchedNoise) {
  sl::Rng rng(9);
  sl::Vector x(10, 0.0);
  auto p = sc::MeasurementPlan::from_indices(10, {0, 5});
  auto noise = sc::SensorNoise::homogeneous(3, 0.1);
  EXPECT_THROW(sc::measure(x, p, noise, rng), std::invalid_argument);
}
