// Failure-injection tests: the middleware must degrade gracefully — not
// crash, not fabricate data — when batteries die mid-round, radios fail,
// users opt out, or coverage collapses.
#include <gtest/gtest.h>

#include <stdexcept>

#include "field/generators.h"
#include "hierarchy/localcloud.h"
#include "hierarchy/nanocloud.h"
#include "middleware/broker.h"
#include "middleware/node.h"

namespace sh = sensedroid::hierarchy;
namespace sf = sensedroid::field;
namespace sl = sensedroid::linalg;
namespace mw = sensedroid::middleware;
namespace sn = sensedroid::sensing;
namespace ss = sensedroid::sim;

namespace {

sf::SpatialField zone(std::uint64_t seed) {
  sl::Rng rng(seed);
  return sf::random_plume_field(10, 10, 2, rng, 20.0);
}

}  // namespace

TEST(FailureInjection, BatteryDeathMidCampaignShrinksReplies) {
  // Batteries sized for only a few readings: repeated rounds must drain
  // the fleet and shrink m_used, never crash.
  auto truth = zone(1);
  sl::Rng rng(2);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  // A temperature reading costs 0.0002 J; radio legs cost ~2e-5 J.
  // ~10 reading+reply cycles per phone.
  cfg.battery_capacity_j = 10 * (0.0002 + 5e-5);
  sh::NanoCloud nc(truth, cfg, rng);

  std::size_t last_used = 100;
  bool shrank = false;
  for (int round = 0; round < 40; ++round) {
    const auto res = nc.gather(40, rng);
    EXPECT_LE(res.m_used, res.m_requested);
    if (res.m_used < last_used) shrank = true;
    last_used = res.m_used;
  }
  EXPECT_TRUE(shrank);           // the fleet visibly decayed
  EXPECT_LT(last_used, 40u);     // and cannot field full rounds anymore
}

TEST(FailureInjection, TotalBatteryDepletionYieldsEmptyRound) {
  auto truth = zone(3);
  sl::Rng rng(4);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 1.0;
  cfg.battery_capacity_j = 1e-9;  // born dead
  sh::NanoCloud nc(truth, cfg, rng);
  const auto res = nc.gather(20, rng);
  EXPECT_EQ(res.m_used, 0u);
  // Zero-information rounds produce the zero field, not garbage.
  EXPECT_DOUBLE_EQ(res.reconstruction.max(), 0.0);
  EXPECT_GT(res.stats.node_refusals + res.stats.radio_failures, 0u);
}

TEST(FailureInjection, OptOutFractionReducesYieldGracefully) {
  auto truth = zone(5);
  double err_none = 0.0, err_heavy = 0.0;
  std::size_t used_none = 0, used_heavy = 0;
  for (int t = 0; t < 5; ++t) {
    sl::Rng rng(10 + t);
    sh::NanoCloudConfig cfg;
    cfg.coverage = 1.0;
    sh::NanoCloud open(truth, cfg, rng);
    const auto r1 = open.gather(50, rng);
    err_none += r1.nrmse;
    used_none += r1.m_used;

    sl::Rng rng2(10 + t);
    cfg.opt_out_fraction = 0.6;
    sh::NanoCloud private_crowd(truth, cfg, rng2);
    const auto r2 = private_crowd.gather(50, rng2);
    err_heavy += r2.nrmse;
    used_heavy += r2.m_used;
  }
  EXPECT_LT(used_heavy, used_none);   // fewer phones answer
  EXPECT_GE(err_heavy, err_none);     // accuracy pays for privacy
  EXPECT_LT(err_heavy / 5.0, 1.0);    // but reconstruction still works
}

TEST(FailureInjection, ValidatesNewConfigFields) {
  auto truth = zone(6);
  sl::Rng rng(7);
  sh::NanoCloudConfig cfg;
  cfg.opt_out_fraction = 1.5;
  EXPECT_THROW(sh::NanoCloud(truth, cfg, rng), std::invalid_argument);
  cfg.opt_out_fraction = 0.0;
  cfg.battery_capacity_j = -1.0;
  EXPECT_THROW(sh::NanoCloud(truth, cfg, rng), std::invalid_argument);
}

TEST(FailureInjection, BrokerSurvivesAllNodesOutOfRange) {
  mw::Broker broker(1, {0.0, 0.0});
  std::vector<mw::MobileNode> nodes;
  for (mw::NodeId id = 0; id < 5; ++id) {
    nodes.emplace_back(id, ss::Point{1e6, 1e6});  // unreachable
    nodes.back().add_sensor(sn::SimulatedSensor(
        sn::SensorKind::kTemperature, sn::QualityTier::kMidrange,
        [](std::size_t) { return 20.0; }));
  }
  std::vector<mw::MobileNode*> ptrs;
  for (auto& n : nodes) ptrs.push_back(&n);
  sl::Rng rng(8);
  mw::GatherStats stats;
  const auto readings =
      broker.collect(ptrs, sn::SensorKind::kTemperature, 0, rng, &stats);
  EXPECT_TRUE(readings.empty());
  EXPECT_EQ(stats.radio_failures, 5u);
  EXPECT_EQ(broker.store().size(), 0u);
}

TEST(FailureInjection, CollectToleratesNullNodePointers) {
  mw::Broker broker(1, {0.0, 0.0});
  std::vector<mw::MobileNode*> ptrs{nullptr, nullptr};
  sl::Rng rng(9);
  const auto readings =
      broker.collect(ptrs, sn::SensorKind::kTemperature, 0, rng);
  EXPECT_TRUE(readings.empty());
}

TEST(FailureInjection, LocalCloudSurvivesZoneWithLowCoverage) {
  // One zone ends up nearly empty of phones: the regional gather still
  // completes and reports a sane (if degraded) stitched field.
  sl::Rng rng(11);
  auto f = sf::random_plume_field(16, 16, 3, rng, 15.0);
  sf::ZoneGrid grid(16, 16, 2, 2);
  sh::NanoCloudConfig cfg;
  cfg.coverage = 0.15;  // sparse crowd everywhere
  sh::LocalCloud lc(f, grid, cfg, rng);
  const auto res = lc.gather_uniform(30, rng);
  EXPECT_EQ(res.zone_nrmse.size(), 4u);
  for (double e : res.zone_nrmse) {
    EXPECT_TRUE(std::isfinite(e));
  }
  EXPECT_TRUE(std::isfinite(res.nrmse));
}

TEST(FailureInjection, DeadBatteryNodePaysNothingFurther) {
  mw::MobileNode node(1, {0.0, 0.0},
                      ss::LinkModel::of(ss::RadioKind::kWiFi),
                      ss::Battery(1e-7));
  node.add_sensor(sn::SimulatedSensor(
      sn::SensorKind::kGps, sn::QualityTier::kMidrange,
      [](std::size_t) { return 0.5; }));
  // GPS costs 0.35 J: the first measure() kills the battery (clamped),
  // every later one refuses.
  EXPECT_FALSE(node.measure(sn::SensorKind::kGps, 0).has_value());
  EXPECT_TRUE(node.battery().depleted());
  EXPECT_FALSE(node.measure(sn::SensorKind::kGps, 1).has_value());
}
