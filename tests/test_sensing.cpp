// Tests for signal generators, simulated sensors, probes, and fusion
// virtual sensors.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/basis.h"
#include "linalg/vector_ops.h"
#include "sensing/fusion.h"
#include "sensing/probe.h"
#include "sensing/sensor.h"
#include "sensing/signals.h"

namespace sn = sensedroid::sensing;
namespace sl = sensedroid::linalg;
namespace ss = sensedroid::sim;

// ------------------------------------------------------------ signals ----

TEST(Signals, ActivitiesHaveDistinctEnergy) {
  sl::Rng rng(1);
  auto idle = sn::accelerometer_trace(sn::Activity::kIdle, 512, 50.0, rng);
  auto walk = sn::accelerometer_trace(sn::Activity::kWalking, 512, 50.0, rng);
  auto drive = sn::accelerometer_trace(sn::Activity::kDriving, 512, 50.0, rng);
  EXPECT_LT(sl::variance(idle) * 50.0, sl::variance(walk));
  EXPECT_LT(sl::variance(idle) * 5.0, sl::variance(drive));
}

TEST(Signals, AccelerometerIsDctCompressible) {
  // The premise of Fig. 4: ~256-sample accelerometer windows reconstruct
  // from ~30 random samples, i.e. they are very sparse in DCT.
  sl::Rng rng(2);
  auto x = sn::accelerometer_trace(sn::Activity::kWalking, 256, 50.0, rng);
  auto basis = sl::dct_basis(256);
  EXPECT_LT(sl::effective_sparsity(basis, x, 0.15), 40u);
}

TEST(Signals, RejectsBadRate) {
  sl::Rng rng(3);
  EXPECT_THROW(sn::accelerometer_trace(sn::Activity::kIdle, 10, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(sn::temperature_trace(10, -1.0, rng), std::invalid_argument);
}

TEST(Signals, LabeledTraceShapesMatch) {
  sl::Rng rng(4);
  auto t = sn::labeled_activity_trace(5, 100, 50.0, rng);
  EXPECT_EQ(t.samples.size(), 500u);
  EXPECT_EQ(t.labels.size(), 500u);
  // Labels constant within segments.
  for (std::size_t s = 0; s < 5; ++s) {
    for (std::size_t i = 1; i < 100; ++i) {
      EXPECT_EQ(t.labels[s * 100], t.labels[s * 100 + i]);
    }
  }
}

TEST(Signals, IndoorScheduleAlternates) {
  sl::Rng rng(5);
  auto sched = sn::indoor_schedule(1000, 50.0, rng);
  ASSERT_EQ(sched.size(), 1000u);
  int transitions = 0;
  for (std::size_t i = 1; i < sched.size(); ++i) {
    if (sched[i] != sched[i - 1]) ++transitions;
  }
  EXPECT_GT(transitions, 3);
  EXPECT_LT(transitions, 200);
  EXPECT_THROW(sn::indoor_schedule(10, 0.0, rng), std::invalid_argument);
}

TEST(Signals, GpsAndWifiSeparateIndoorOutdoor) {
  sl::Rng rng(6);
  std::vector<bool> indoor(200, false);
  for (std::size_t i = 100; i < 200; ++i) indoor[i] = true;
  auto gps = sn::gps_quality_trace(indoor, rng);
  auto wifi = sn::wifi_count_trace(indoor, rng);
  const auto out_gps = sl::mean(std::span(gps).first(100));
  const auto in_gps = sl::mean(std::span(gps).last(100));
  EXPECT_GT(out_gps, in_gps + 0.5);
  const auto out_wifi = sl::mean(std::span(wifi).first(100));
  const auto in_wifi = sl::mean(std::span(wifi).last(100));
  EXPECT_GT(in_wifi, out_wifi + 3.0);
}

TEST(Signals, TemperatureHasDiurnalSwing) {
  sl::Rng rng(7);
  // One sample per hour over 2 days.
  auto t = sn::temperature_trace(48, 1.0 / 3600.0, rng, 20.0, 5.0);
  const double swing = *std::max_element(t.begin(), t.end()) -
                       *std::min_element(t.begin(), t.end());
  EXPECT_GT(swing, 5.0);
  EXPECT_LT(swing, 15.0);
}

TEST(Signals, MicrophoneBurstsAboveFloor) {
  sl::Rng rng(8);
  auto spl = sn::microphone_spl_trace(2000, rng, 35.0, 75.0, 0.05);
  int loud = 0;
  for (double v : spl) {
    if (v > 60.0) ++loud;
  }
  EXPECT_GT(loud, 10);       // bursts happen
  EXPECT_LT(loud, 1500);     // but are not the norm
}

// ------------------------------------------------------------- sensor ----

TEST(Sensor, TierScalesNoise) {
  EXPECT_LT(sn::tier_noise_factor(sn::QualityTier::kFlagship),
            sn::tier_noise_factor(sn::QualityTier::kMidrange));
  EXPECT_LT(sn::tier_noise_factor(sn::QualityTier::kMidrange),
            sn::tier_noise_factor(sn::QualityTier::kBudget));
}

TEST(Sensor, ReadAddsBoundedNoiseAndChargesEnergy) {
  sn::SimulatedSensor s(sn::SensorKind::kTemperature,
                        sn::QualityTier::kMidrange,
                        [](std::size_t) { return 20.0; }, 42);
  ss::EnergyMeter meter;
  double dev = 0.0;
  for (std::size_t i = 0; i < 200; ++i) {
    dev += std::abs(s.read(i, &meter) - 20.0);
  }
  EXPECT_GT(dev, 0.0);
  EXPECT_LT(dev / 200.0, 5.0 * s.noise_sigma());
  EXPECT_NEAR(meter.of(ss::EnergyCategory::kSensing),
              200.0 * sn::sample_cost_j(sn::SensorKind::kTemperature),
              1e-12);
}

TEST(Sensor, ReadWithoutMeterIsAllowed) {
  sn::SimulatedSensor s(sn::SensorKind::kLight, sn::QualityTier::kBudget,
                        [](std::size_t i) { return double(i); });
  EXPECT_NO_THROW(s.read(3));
  EXPECT_DOUBLE_EQ(s.truth(3), 3.0);
}

TEST(Sensor, RejectsEmptyTruth) {
  EXPECT_THROW(sn::SimulatedSensor(sn::SensorKind::kGps,
                                   sn::QualityTier::kMidrange, nullptr),
               std::invalid_argument);
}

TEST(Sensor, SampleCostsMatchEnergyTable) {
  EXPECT_DOUBLE_EQ(sn::sample_cost_j(sn::SensorKind::kGps),
                   ss::SensingCosts::defaults().gps_j);
  EXPECT_DOUBLE_EQ(sn::sample_cost_j(sn::SensorKind::kWifiScanner),
                   ss::SensingCosts::defaults().wifi_scan_j);
}

// -------------------------------------------------------------- probe ----

namespace {
sn::SimulatedSensor ramp_sensor() {
  return sn::SimulatedSensor(
      sn::SensorKind::kTemperature, sn::QualityTier::kFlagship,
      [](std::size_t i) { return static_cast<double>(i); }, 7);
}
}  // namespace

TEST(Probe, ContinuousReadsWholeWindow) {
  sn::SensingProbe p(ramp_sensor(), {.mode = sn::SamplingMode::kContinuous,
                                     .window = 16, .budget = 16});
  auto b = p.acquire(100);
  EXPECT_EQ(b.indices.size(), 16u);
  EXPECT_EQ(b.values.size(), 16u);
  EXPECT_EQ(b.window, 16u);
  // First reading near truth at absolute index 100.
  EXPECT_NEAR(b.values[0], 100.0, 1.0);
}

TEST(Probe, CompressiveReadsBudgetRandomSamples) {
  sn::SensingProbe p(ramp_sensor(), {.mode = sn::SamplingMode::kCompressive,
                                     .window = 64, .budget = 8, .seed = 3});
  auto b1 = p.acquire(0);
  EXPECT_EQ(b1.indices.size(), 8u);
  for (std::size_t i = 1; i < b1.indices.size(); ++i) {
    EXPECT_LT(b1.indices[i - 1], b1.indices[i]);
  }
  auto b2 = p.acquire(0);
  EXPECT_NE(b1.indices, b2.indices);  // fresh schedule each window
}

TEST(Probe, UniformModeIsEvenlySpaced) {
  sn::SensingProbe p(ramp_sensor(), {.mode = sn::SamplingMode::kUniform,
                                     .window = 100, .budget = 10});
  auto b = p.acquire(0);
  ASSERT_EQ(b.indices.size(), 10u);
  EXPECT_EQ(b.indices[0], 0u);
  EXPECT_EQ(b.indices[5], 50u);
}

TEST(Probe, EnergyScalesWithBudget) {
  sn::SensingProbe cont(ramp_sensor(), {.mode = sn::SamplingMode::kContinuous,
                                        .window = 256, .budget = 256});
  sn::SensingProbe comp(ramp_sensor(),
                        {.mode = sn::SamplingMode::kCompressive,
                         .window = 256, .budget = 32});
  EXPECT_NEAR(comp.window_energy_j() / cont.window_energy_j(), 32.0 / 256.0,
              1e-9);
  ss::EnergyMeter m;
  auto b = comp.acquire(0, &m);
  EXPECT_NEAR(b.energy_j, comp.window_energy_j(), 1e-12);
  EXPECT_NEAR(m.total_j(), b.energy_j, 1e-12);
}

TEST(Probe, ValidatesConfig) {
  EXPECT_THROW(sn::SensingProbe(ramp_sensor(), {.window = 0, .budget = 1}),
               std::invalid_argument);
  EXPECT_THROW(sn::SensingProbe(ramp_sensor(), {.window = 8, .budget = 9}),
               std::invalid_argument);
  EXPECT_THROW(sn::SensingProbe(ramp_sensor(), {.window = 8, .budget = 0}),
               std::invalid_argument);
}

TEST(Probe, BatchConvertsToMeasurement) {
  sn::SensingProbe p(ramp_sensor(), {.mode = sn::SamplingMode::kCompressive,
                                     .window = 32, .budget = 8, .seed = 5});
  auto b = p.acquire(0);
  auto m = b.to_measurement(0.1);
  EXPECT_EQ(m.plan.signal_size(), 32u);
  EXPECT_EQ(m.plan.measurement_count(), 8u);
  EXPECT_EQ(m.noise.size(), 8u);
  EXPECT_DOUBLE_EQ(m.noise.stddev[0], 0.1);
}

// -------------------------------------------------------------- fusion ----

TEST(Fusion, FlatDeviceHasZeroAttitude) {
  auto o = sn::attitude_from_gravity({0.0, 0.0, 9.81});
  EXPECT_NEAR(o.pitch, 0.0, 1e-12);
  EXPECT_NEAR(o.roll, 0.0, 1e-12);
}

TEST(Fusion, KnownTiltsRecovered) {
  const double g = 9.81;
  // 30-degree pitch: gravity rotates into +y.
  const double s = std::sin(std::numbers::pi / 6.0);
  const double c = std::cos(std::numbers::pi / 6.0);
  auto o = sn::attitude_from_gravity({0.0, g * s, g * c});
  EXPECT_NEAR(o.pitch, std::numbers::pi / 6.0, 1e-9);
  EXPECT_NEAR(o.roll, 0.0, 1e-9);
}

TEST(Fusion, ZeroGravityIsSafe) {
  auto o = sn::attitude_from_gravity({0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(o.pitch, 0.0);
  EXPECT_DOUBLE_EQ(sn::inclination({0.0, 0.0, 0.0}), 0.0);
}

TEST(Fusion, InclinationOfTiltedDevice) {
  EXPECT_NEAR(sn::inclination({0.0, 0.0, 1.0}), 0.0, 1e-12);
  EXPECT_NEAR(sn::inclination({1.0, 0.0, 0.0}), std::numbers::pi / 2.0,
              1e-12);
  EXPECT_NEAR(sn::inclination({0.0, 0.0, -1.0}), std::numbers::pi, 1e-12);
}

TEST(Fusion, HeadingFlatNorthIsZero) {
  // Device flat, magnetic field pointing +x (north in device frame).
  const double h =
      sn::tilt_compensated_heading({0, 0, 9.81}, {30.0, 0.0, -20.0});
  EXPECT_NEAR(h, 0.0, 1e-9);
}

TEST(Fusion, HeadingFlatEastIsQuarterTurn) {
  // Field along -y in device frame: device faces east of north.
  const double h =
      sn::tilt_compensated_heading({0, 0, 9.81}, {0.0, -30.0, -20.0});
  EXPECT_NEAR(h, std::numbers::pi / 2.0, 1e-9);
}

TEST(Fusion, ComplementaryFilterTracksStaticAttitude) {
  sn::ComplementaryFilter f(0.9);
  sn::TriAxial accel{0.0, 9.81 * 0.5, 9.81 * std::sqrt(3.0) / 2.0};
  sn::TriAxial mag{25.0, 0.0, -30.0};
  sn::Orientation o;
  for (int i = 0; i < 100; ++i) {
    o = f.update({0, 0, 0}, accel, mag, 0.02);
  }
  EXPECT_NEAR(o.pitch, std::numbers::pi / 6.0, 0.01);
}

TEST(Fusion, ComplementaryFilterSmoothsGyroNoise) {
  sl::Rng rng(9);
  sn::ComplementaryFilter f(0.95);
  sn::TriAxial accel{0.0, 0.0, 9.81};
  sn::TriAxial mag{30.0, 0.0, -20.0};
  double worst = 0.0;
  for (int i = 0; i < 500; ++i) {
    auto o = f.update({rng.gaussian(0.0, 0.05), rng.gaussian(0.0, 0.05), 0.0},
                      accel, mag, 0.02);
    worst = std::max(worst, std::abs(o.pitch));
  }
  EXPECT_LT(worst, 0.15);  // bounded drift despite noisy gyro
}

TEST(Fusion, FilterValidatesParameters) {
  EXPECT_THROW(sn::ComplementaryFilter(1.0), std::invalid_argument);
  EXPECT_THROW(sn::ComplementaryFilter(-0.1), std::invalid_argument);
  sn::ComplementaryFilter f(0.9);
  EXPECT_THROW(f.update({0, 0, 0}, {0, 0, 9.81}, {30, 0, -20}, -1.0),
               std::invalid_argument);
}
