file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_hier.dir/adaptive.cpp.o"
  "CMakeFiles/sensedroid_hier.dir/adaptive.cpp.o.d"
  "CMakeFiles/sensedroid_hier.dir/campaign.cpp.o"
  "CMakeFiles/sensedroid_hier.dir/campaign.cpp.o.d"
  "CMakeFiles/sensedroid_hier.dir/localcloud.cpp.o"
  "CMakeFiles/sensedroid_hier.dir/localcloud.cpp.o.d"
  "CMakeFiles/sensedroid_hier.dir/nanocloud.cpp.o"
  "CMakeFiles/sensedroid_hier.dir/nanocloud.cpp.o.d"
  "CMakeFiles/sensedroid_hier.dir/publiccloud.cpp.o"
  "CMakeFiles/sensedroid_hier.dir/publiccloud.cpp.o.d"
  "libsensedroid_hier.a"
  "libsensedroid_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
