# Empty compiler generated dependencies file for sensedroid_hier.
# This may be replaced when dependencies are built.
