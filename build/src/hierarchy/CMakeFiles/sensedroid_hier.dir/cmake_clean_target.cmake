file(REMOVE_RECURSE
  "libsensedroid_hier.a"
)
