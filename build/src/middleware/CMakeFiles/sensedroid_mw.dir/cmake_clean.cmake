file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_mw.dir/broker.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/broker.cpp.o.d"
  "CMakeFiles/sensedroid_mw.dir/collaboration.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/collaboration.cpp.o.d"
  "CMakeFiles/sensedroid_mw.dir/datastore.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/datastore.cpp.o.d"
  "CMakeFiles/sensedroid_mw.dir/discovery.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/discovery.cpp.o.d"
  "CMakeFiles/sensedroid_mw.dir/node.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/node.cpp.o.d"
  "CMakeFiles/sensedroid_mw.dir/privacy.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/privacy.cpp.o.d"
  "CMakeFiles/sensedroid_mw.dir/pubsub.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/pubsub.cpp.o.d"
  "CMakeFiles/sensedroid_mw.dir/query.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/query.cpp.o.d"
  "CMakeFiles/sensedroid_mw.dir/reputation.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/reputation.cpp.o.d"
  "CMakeFiles/sensedroid_mw.dir/thin_client.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/thin_client.cpp.o.d"
  "CMakeFiles/sensedroid_mw.dir/wire.cpp.o"
  "CMakeFiles/sensedroid_mw.dir/wire.cpp.o.d"
  "libsensedroid_mw.a"
  "libsensedroid_mw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_mw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
