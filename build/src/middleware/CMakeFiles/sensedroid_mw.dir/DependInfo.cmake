
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middleware/broker.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/broker.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/broker.cpp.o.d"
  "/root/repo/src/middleware/collaboration.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/collaboration.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/collaboration.cpp.o.d"
  "/root/repo/src/middleware/datastore.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/datastore.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/datastore.cpp.o.d"
  "/root/repo/src/middleware/discovery.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/discovery.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/discovery.cpp.o.d"
  "/root/repo/src/middleware/node.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/node.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/node.cpp.o.d"
  "/root/repo/src/middleware/privacy.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/privacy.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/privacy.cpp.o.d"
  "/root/repo/src/middleware/pubsub.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/pubsub.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/pubsub.cpp.o.d"
  "/root/repo/src/middleware/query.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/query.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/query.cpp.o.d"
  "/root/repo/src/middleware/reputation.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/reputation.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/reputation.cpp.o.d"
  "/root/repo/src/middleware/thin_client.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/thin_client.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/thin_client.cpp.o.d"
  "/root/repo/src/middleware/wire.cpp" "src/middleware/CMakeFiles/sensedroid_mw.dir/wire.cpp.o" "gcc" "src/middleware/CMakeFiles/sensedroid_mw.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sensedroid_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/cs/CMakeFiles/sensedroid_cs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sensedroid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/sensedroid_sensing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
