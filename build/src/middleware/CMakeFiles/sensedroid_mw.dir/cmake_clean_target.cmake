file(REMOVE_RECURSE
  "libsensedroid_mw.a"
)
