# Empty dependencies file for sensedroid_mw.
# This may be replaced when dependencies are built.
