# CMake generated Testfile for 
# Source directory: /root/repo/src/incentives
# Build directory: /root/repo/build/src/incentives
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
