
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/incentives/auction.cpp" "src/incentives/CMakeFiles/sensedroid_incentives.dir/auction.cpp.o" "gcc" "src/incentives/CMakeFiles/sensedroid_incentives.dir/auction.cpp.o.d"
  "/root/repo/src/incentives/participant.cpp" "src/incentives/CMakeFiles/sensedroid_incentives.dir/participant.cpp.o" "gcc" "src/incentives/CMakeFiles/sensedroid_incentives.dir/participant.cpp.o.d"
  "/root/repo/src/incentives/recruitment.cpp" "src/incentives/CMakeFiles/sensedroid_incentives.dir/recruitment.cpp.o" "gcc" "src/incentives/CMakeFiles/sensedroid_incentives.dir/recruitment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sensedroid_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
