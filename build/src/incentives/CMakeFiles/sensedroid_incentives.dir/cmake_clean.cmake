file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_incentives.dir/auction.cpp.o"
  "CMakeFiles/sensedroid_incentives.dir/auction.cpp.o.d"
  "CMakeFiles/sensedroid_incentives.dir/participant.cpp.o"
  "CMakeFiles/sensedroid_incentives.dir/participant.cpp.o.d"
  "CMakeFiles/sensedroid_incentives.dir/recruitment.cpp.o"
  "CMakeFiles/sensedroid_incentives.dir/recruitment.cpp.o.d"
  "libsensedroid_incentives.a"
  "libsensedroid_incentives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
