# Empty dependencies file for sensedroid_incentives.
# This may be replaced when dependencies are built.
