file(REMOVE_RECURSE
  "libsensedroid_incentives.a"
)
