file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_linalg.dir/basis.cpp.o"
  "CMakeFiles/sensedroid_linalg.dir/basis.cpp.o.d"
  "CMakeFiles/sensedroid_linalg.dir/decomposition.cpp.o"
  "CMakeFiles/sensedroid_linalg.dir/decomposition.cpp.o.d"
  "CMakeFiles/sensedroid_linalg.dir/matrix.cpp.o"
  "CMakeFiles/sensedroid_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/sensedroid_linalg.dir/random.cpp.o"
  "CMakeFiles/sensedroid_linalg.dir/random.cpp.o.d"
  "CMakeFiles/sensedroid_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/sensedroid_linalg.dir/vector_ops.cpp.o.d"
  "libsensedroid_linalg.a"
  "libsensedroid_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
