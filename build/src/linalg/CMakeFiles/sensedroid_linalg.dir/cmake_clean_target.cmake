file(REMOVE_RECURSE
  "libsensedroid_linalg.a"
)
