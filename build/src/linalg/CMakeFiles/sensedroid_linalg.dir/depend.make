# Empty dependencies file for sensedroid_linalg.
# This may be replaced when dependencies are built.
