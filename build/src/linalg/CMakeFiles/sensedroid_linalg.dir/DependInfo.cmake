
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/basis.cpp" "src/linalg/CMakeFiles/sensedroid_linalg.dir/basis.cpp.o" "gcc" "src/linalg/CMakeFiles/sensedroid_linalg.dir/basis.cpp.o.d"
  "/root/repo/src/linalg/decomposition.cpp" "src/linalg/CMakeFiles/sensedroid_linalg.dir/decomposition.cpp.o" "gcc" "src/linalg/CMakeFiles/sensedroid_linalg.dir/decomposition.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/sensedroid_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/sensedroid_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/linalg/random.cpp" "src/linalg/CMakeFiles/sensedroid_linalg.dir/random.cpp.o" "gcc" "src/linalg/CMakeFiles/sensedroid_linalg.dir/random.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/linalg/CMakeFiles/sensedroid_linalg.dir/vector_ops.cpp.o" "gcc" "src/linalg/CMakeFiles/sensedroid_linalg.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
