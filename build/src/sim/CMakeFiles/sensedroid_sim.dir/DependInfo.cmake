
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/energy.cpp" "src/sim/CMakeFiles/sensedroid_sim.dir/energy.cpp.o" "gcc" "src/sim/CMakeFiles/sensedroid_sim.dir/energy.cpp.o.d"
  "/root/repo/src/sim/event_sim.cpp" "src/sim/CMakeFiles/sensedroid_sim.dir/event_sim.cpp.o" "gcc" "src/sim/CMakeFiles/sensedroid_sim.dir/event_sim.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/sim/CMakeFiles/sensedroid_sim.dir/mobility.cpp.o" "gcc" "src/sim/CMakeFiles/sensedroid_sim.dir/mobility.cpp.o.d"
  "/root/repo/src/sim/radio.cpp" "src/sim/CMakeFiles/sensedroid_sim.dir/radio.cpp.o" "gcc" "src/sim/CMakeFiles/sensedroid_sim.dir/radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sensedroid_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
