file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_sim.dir/energy.cpp.o"
  "CMakeFiles/sensedroid_sim.dir/energy.cpp.o.d"
  "CMakeFiles/sensedroid_sim.dir/event_sim.cpp.o"
  "CMakeFiles/sensedroid_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/sensedroid_sim.dir/mobility.cpp.o"
  "CMakeFiles/sensedroid_sim.dir/mobility.cpp.o.d"
  "CMakeFiles/sensedroid_sim.dir/radio.cpp.o"
  "CMakeFiles/sensedroid_sim.dir/radio.cpp.o.d"
  "libsensedroid_sim.a"
  "libsensedroid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
