# Empty compiler generated dependencies file for sensedroid_sim.
# This may be replaced when dependencies are built.
