file(REMOVE_RECURSE
  "libsensedroid_sim.a"
)
