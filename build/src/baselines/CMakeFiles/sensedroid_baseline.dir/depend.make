# Empty dependencies file for sensedroid_baseline.
# This may be replaced when dependencies are built.
