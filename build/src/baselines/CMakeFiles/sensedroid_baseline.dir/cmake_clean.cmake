file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_baseline.dir/cdg_luo.cpp.o"
  "CMakeFiles/sensedroid_baseline.dir/cdg_luo.cpp.o.d"
  "CMakeFiles/sensedroid_baseline.dir/dense_gathering.cpp.o"
  "CMakeFiles/sensedroid_baseline.dir/dense_gathering.cpp.o.d"
  "CMakeFiles/sensedroid_baseline.dir/interpolation.cpp.o"
  "CMakeFiles/sensedroid_baseline.dir/interpolation.cpp.o.d"
  "CMakeFiles/sensedroid_baseline.dir/solo_sensing.cpp.o"
  "CMakeFiles/sensedroid_baseline.dir/solo_sensing.cpp.o.d"
  "libsensedroid_baseline.a"
  "libsensedroid_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
