
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cdg_luo.cpp" "src/baselines/CMakeFiles/sensedroid_baseline.dir/cdg_luo.cpp.o" "gcc" "src/baselines/CMakeFiles/sensedroid_baseline.dir/cdg_luo.cpp.o.d"
  "/root/repo/src/baselines/dense_gathering.cpp" "src/baselines/CMakeFiles/sensedroid_baseline.dir/dense_gathering.cpp.o" "gcc" "src/baselines/CMakeFiles/sensedroid_baseline.dir/dense_gathering.cpp.o.d"
  "/root/repo/src/baselines/interpolation.cpp" "src/baselines/CMakeFiles/sensedroid_baseline.dir/interpolation.cpp.o" "gcc" "src/baselines/CMakeFiles/sensedroid_baseline.dir/interpolation.cpp.o.d"
  "/root/repo/src/baselines/solo_sensing.cpp" "src/baselines/CMakeFiles/sensedroid_baseline.dir/solo_sensing.cpp.o" "gcc" "src/baselines/CMakeFiles/sensedroid_baseline.dir/solo_sensing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sensedroid_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/cs/CMakeFiles/sensedroid_cs.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/sensedroid_field.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sensedroid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/sensedroid_sensing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
