file(REMOVE_RECURSE
  "libsensedroid_baseline.a"
)
