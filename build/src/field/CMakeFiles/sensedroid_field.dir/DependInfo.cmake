
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/field/generators.cpp" "src/field/CMakeFiles/sensedroid_field.dir/generators.cpp.o" "gcc" "src/field/CMakeFiles/sensedroid_field.dir/generators.cpp.o.d"
  "/root/repo/src/field/sparsity.cpp" "src/field/CMakeFiles/sensedroid_field.dir/sparsity.cpp.o" "gcc" "src/field/CMakeFiles/sensedroid_field.dir/sparsity.cpp.o.d"
  "/root/repo/src/field/spatial_field.cpp" "src/field/CMakeFiles/sensedroid_field.dir/spatial_field.cpp.o" "gcc" "src/field/CMakeFiles/sensedroid_field.dir/spatial_field.cpp.o.d"
  "/root/repo/src/field/traces.cpp" "src/field/CMakeFiles/sensedroid_field.dir/traces.cpp.o" "gcc" "src/field/CMakeFiles/sensedroid_field.dir/traces.cpp.o.d"
  "/root/repo/src/field/zones.cpp" "src/field/CMakeFiles/sensedroid_field.dir/zones.cpp.o" "gcc" "src/field/CMakeFiles/sensedroid_field.dir/zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sensedroid_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
