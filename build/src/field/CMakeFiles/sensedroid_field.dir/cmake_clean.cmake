file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_field.dir/generators.cpp.o"
  "CMakeFiles/sensedroid_field.dir/generators.cpp.o.d"
  "CMakeFiles/sensedroid_field.dir/sparsity.cpp.o"
  "CMakeFiles/sensedroid_field.dir/sparsity.cpp.o.d"
  "CMakeFiles/sensedroid_field.dir/spatial_field.cpp.o"
  "CMakeFiles/sensedroid_field.dir/spatial_field.cpp.o.d"
  "CMakeFiles/sensedroid_field.dir/traces.cpp.o"
  "CMakeFiles/sensedroid_field.dir/traces.cpp.o.d"
  "CMakeFiles/sensedroid_field.dir/zones.cpp.o"
  "CMakeFiles/sensedroid_field.dir/zones.cpp.o.d"
  "libsensedroid_field.a"
  "libsensedroid_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
