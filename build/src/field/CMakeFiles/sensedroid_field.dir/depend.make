# Empty dependencies file for sensedroid_field.
# This may be replaced when dependencies are built.
