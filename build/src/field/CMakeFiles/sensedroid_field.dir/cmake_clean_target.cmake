file(REMOVE_RECURSE
  "libsensedroid_field.a"
)
