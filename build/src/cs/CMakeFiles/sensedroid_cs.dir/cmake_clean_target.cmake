file(REMOVE_RECURSE
  "libsensedroid_cs.a"
)
