# Empty compiler generated dependencies file for sensedroid_cs.
# This may be replaced when dependencies are built.
