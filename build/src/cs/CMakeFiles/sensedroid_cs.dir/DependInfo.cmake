
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cs/basis_pursuit.cpp" "src/cs/CMakeFiles/sensedroid_cs.dir/basis_pursuit.cpp.o" "gcc" "src/cs/CMakeFiles/sensedroid_cs.dir/basis_pursuit.cpp.o.d"
  "/root/repo/src/cs/chs.cpp" "src/cs/CMakeFiles/sensedroid_cs.dir/chs.cpp.o" "gcc" "src/cs/CMakeFiles/sensedroid_cs.dir/chs.cpp.o.d"
  "/root/repo/src/cs/error_model.cpp" "src/cs/CMakeFiles/sensedroid_cs.dir/error_model.cpp.o" "gcc" "src/cs/CMakeFiles/sensedroid_cs.dir/error_model.cpp.o.d"
  "/root/repo/src/cs/greedy_variants.cpp" "src/cs/CMakeFiles/sensedroid_cs.dir/greedy_variants.cpp.o" "gcc" "src/cs/CMakeFiles/sensedroid_cs.dir/greedy_variants.cpp.o.d"
  "/root/repo/src/cs/least_squares.cpp" "src/cs/CMakeFiles/sensedroid_cs.dir/least_squares.cpp.o" "gcc" "src/cs/CMakeFiles/sensedroid_cs.dir/least_squares.cpp.o.d"
  "/root/repo/src/cs/measurement.cpp" "src/cs/CMakeFiles/sensedroid_cs.dir/measurement.cpp.o" "gcc" "src/cs/CMakeFiles/sensedroid_cs.dir/measurement.cpp.o.d"
  "/root/repo/src/cs/omp.cpp" "src/cs/CMakeFiles/sensedroid_cs.dir/omp.cpp.o" "gcc" "src/cs/CMakeFiles/sensedroid_cs.dir/omp.cpp.o.d"
  "/root/repo/src/cs/simplex.cpp" "src/cs/CMakeFiles/sensedroid_cs.dir/simplex.cpp.o" "gcc" "src/cs/CMakeFiles/sensedroid_cs.dir/simplex.cpp.o.d"
  "/root/repo/src/cs/spatiotemporal.cpp" "src/cs/CMakeFiles/sensedroid_cs.dir/spatiotemporal.cpp.o" "gcc" "src/cs/CMakeFiles/sensedroid_cs.dir/spatiotemporal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sensedroid_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
