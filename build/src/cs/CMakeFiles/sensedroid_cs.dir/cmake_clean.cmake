file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_cs.dir/basis_pursuit.cpp.o"
  "CMakeFiles/sensedroid_cs.dir/basis_pursuit.cpp.o.d"
  "CMakeFiles/sensedroid_cs.dir/chs.cpp.o"
  "CMakeFiles/sensedroid_cs.dir/chs.cpp.o.d"
  "CMakeFiles/sensedroid_cs.dir/error_model.cpp.o"
  "CMakeFiles/sensedroid_cs.dir/error_model.cpp.o.d"
  "CMakeFiles/sensedroid_cs.dir/greedy_variants.cpp.o"
  "CMakeFiles/sensedroid_cs.dir/greedy_variants.cpp.o.d"
  "CMakeFiles/sensedroid_cs.dir/least_squares.cpp.o"
  "CMakeFiles/sensedroid_cs.dir/least_squares.cpp.o.d"
  "CMakeFiles/sensedroid_cs.dir/measurement.cpp.o"
  "CMakeFiles/sensedroid_cs.dir/measurement.cpp.o.d"
  "CMakeFiles/sensedroid_cs.dir/omp.cpp.o"
  "CMakeFiles/sensedroid_cs.dir/omp.cpp.o.d"
  "CMakeFiles/sensedroid_cs.dir/simplex.cpp.o"
  "CMakeFiles/sensedroid_cs.dir/simplex.cpp.o.d"
  "CMakeFiles/sensedroid_cs.dir/spatiotemporal.cpp.o"
  "CMakeFiles/sensedroid_cs.dir/spatiotemporal.cpp.o.d"
  "libsensedroid_cs.a"
  "libsensedroid_cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
