file(REMOVE_RECURSE
  "libsensedroid_context.a"
)
