# Empty compiler generated dependencies file for sensedroid_context.
# This may be replaced when dependencies are built.
