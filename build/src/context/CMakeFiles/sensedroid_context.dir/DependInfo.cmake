
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/context/activity.cpp" "src/context/CMakeFiles/sensedroid_context.dir/activity.cpp.o" "gcc" "src/context/CMakeFiles/sensedroid_context.dir/activity.cpp.o.d"
  "/root/repo/src/context/context_engine.cpp" "src/context/CMakeFiles/sensedroid_context.dir/context_engine.cpp.o" "gcc" "src/context/CMakeFiles/sensedroid_context.dir/context_engine.cpp.o.d"
  "/root/repo/src/context/group_context.cpp" "src/context/CMakeFiles/sensedroid_context.dir/group_context.cpp.o" "gcc" "src/context/CMakeFiles/sensedroid_context.dir/group_context.cpp.o.d"
  "/root/repo/src/context/is_driving.cpp" "src/context/CMakeFiles/sensedroid_context.dir/is_driving.cpp.o" "gcc" "src/context/CMakeFiles/sensedroid_context.dir/is_driving.cpp.o.d"
  "/root/repo/src/context/is_indoor.cpp" "src/context/CMakeFiles/sensedroid_context.dir/is_indoor.cpp.o" "gcc" "src/context/CMakeFiles/sensedroid_context.dir/is_indoor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sensedroid_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/cs/CMakeFiles/sensedroid_cs.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/sensedroid_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sensedroid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
