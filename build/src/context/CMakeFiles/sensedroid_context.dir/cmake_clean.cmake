file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_context.dir/activity.cpp.o"
  "CMakeFiles/sensedroid_context.dir/activity.cpp.o.d"
  "CMakeFiles/sensedroid_context.dir/context_engine.cpp.o"
  "CMakeFiles/sensedroid_context.dir/context_engine.cpp.o.d"
  "CMakeFiles/sensedroid_context.dir/group_context.cpp.o"
  "CMakeFiles/sensedroid_context.dir/group_context.cpp.o.d"
  "CMakeFiles/sensedroid_context.dir/is_driving.cpp.o"
  "CMakeFiles/sensedroid_context.dir/is_driving.cpp.o.d"
  "CMakeFiles/sensedroid_context.dir/is_indoor.cpp.o"
  "CMakeFiles/sensedroid_context.dir/is_indoor.cpp.o.d"
  "libsensedroid_context.a"
  "libsensedroid_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
