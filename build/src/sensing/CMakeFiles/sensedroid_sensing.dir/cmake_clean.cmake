file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_sensing.dir/fusion.cpp.o"
  "CMakeFiles/sensedroid_sensing.dir/fusion.cpp.o.d"
  "CMakeFiles/sensedroid_sensing.dir/probe.cpp.o"
  "CMakeFiles/sensedroid_sensing.dir/probe.cpp.o.d"
  "CMakeFiles/sensedroid_sensing.dir/sensor.cpp.o"
  "CMakeFiles/sensedroid_sensing.dir/sensor.cpp.o.d"
  "CMakeFiles/sensedroid_sensing.dir/signals.cpp.o"
  "CMakeFiles/sensedroid_sensing.dir/signals.cpp.o.d"
  "libsensedroid_sensing.a"
  "libsensedroid_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
