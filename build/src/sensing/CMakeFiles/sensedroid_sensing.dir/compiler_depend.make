# Empty compiler generated dependencies file for sensedroid_sensing.
# This may be replaced when dependencies are built.
