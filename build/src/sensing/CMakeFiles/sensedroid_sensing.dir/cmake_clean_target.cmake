file(REMOVE_RECURSE
  "libsensedroid_sensing.a"
)
