
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensing/fusion.cpp" "src/sensing/CMakeFiles/sensedroid_sensing.dir/fusion.cpp.o" "gcc" "src/sensing/CMakeFiles/sensedroid_sensing.dir/fusion.cpp.o.d"
  "/root/repo/src/sensing/probe.cpp" "src/sensing/CMakeFiles/sensedroid_sensing.dir/probe.cpp.o" "gcc" "src/sensing/CMakeFiles/sensedroid_sensing.dir/probe.cpp.o.d"
  "/root/repo/src/sensing/sensor.cpp" "src/sensing/CMakeFiles/sensedroid_sensing.dir/sensor.cpp.o" "gcc" "src/sensing/CMakeFiles/sensedroid_sensing.dir/sensor.cpp.o.d"
  "/root/repo/src/sensing/signals.cpp" "src/sensing/CMakeFiles/sensedroid_sensing.dir/signals.cpp.o" "gcc" "src/sensing/CMakeFiles/sensedroid_sensing.dir/signals.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sensedroid_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/cs/CMakeFiles/sensedroid_cs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sensedroid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
