file(REMOVE_RECURSE
  "libsensedroid_sched.a"
)
