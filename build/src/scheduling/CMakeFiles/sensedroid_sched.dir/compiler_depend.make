# Empty compiler generated dependencies file for sensedroid_sched.
# This may be replaced when dependencies are built.
