
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduling/adaptive_sampling.cpp" "src/scheduling/CMakeFiles/sensedroid_sched.dir/adaptive_sampling.cpp.o" "gcc" "src/scheduling/CMakeFiles/sensedroid_sched.dir/adaptive_sampling.cpp.o.d"
  "/root/repo/src/scheduling/multi_radio.cpp" "src/scheduling/CMakeFiles/sensedroid_sched.dir/multi_radio.cpp.o" "gcc" "src/scheduling/CMakeFiles/sensedroid_sched.dir/multi_radio.cpp.o.d"
  "/root/repo/src/scheduling/node_selection.cpp" "src/scheduling/CMakeFiles/sensedroid_sched.dir/node_selection.cpp.o" "gcc" "src/scheduling/CMakeFiles/sensedroid_sched.dir/node_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sensedroid_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sensedroid_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
