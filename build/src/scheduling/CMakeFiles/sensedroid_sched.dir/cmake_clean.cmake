file(REMOVE_RECURSE
  "CMakeFiles/sensedroid_sched.dir/adaptive_sampling.cpp.o"
  "CMakeFiles/sensedroid_sched.dir/adaptive_sampling.cpp.o.d"
  "CMakeFiles/sensedroid_sched.dir/multi_radio.cpp.o"
  "CMakeFiles/sensedroid_sched.dir/multi_radio.cpp.o.d"
  "CMakeFiles/sensedroid_sched.dir/node_selection.cpp.o"
  "CMakeFiles/sensedroid_sched.dir/node_selection.cpp.o.d"
  "libsensedroid_sched.a"
  "libsensedroid_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensedroid_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
