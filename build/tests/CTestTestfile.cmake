# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_linalg_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_linalg_decomposition[1]_include.cmake")
include("/root/repo/build/tests/test_linalg_basis[1]_include.cmake")
include("/root/repo/build/tests/test_cs_measurement[1]_include.cmake")
include("/root/repo/build/tests/test_cs_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_cs_chs[1]_include.cmake")
include("/root/repo/build/tests/test_field[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sensing[1]_include.cmake")
include("/root/repo/build/tests/test_middleware[1]_include.cmake")
include("/root/repo/build/tests/test_context[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_incentives[1]_include.cmake")
include("/root/repo/build/tests/test_scheduling[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_integration_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_spatiotemporal[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_collaboration_wire[1]_include.cmake")
include("/root/repo/build/tests/test_campaign[1]_include.cmake")
include("/root/repo/build/tests/test_basis2d[1]_include.cmake")
include("/root/repo/build/tests/test_thin_client[1]_include.cmake")
include("/root/repo/build/tests/test_umbrella[1]_include.cmake")
include("/root/repo/build/tests/test_greedy_variants[1]_include.cmake")
include("/root/repo/build/tests/test_wire_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_properties[1]_include.cmake")
include("/root/repo/build/tests/test_reputation[1]_include.cmake")
