# Empty dependencies file for test_greedy_variants.
# This may be replaced when dependencies are built.
