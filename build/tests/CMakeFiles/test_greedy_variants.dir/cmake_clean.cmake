file(REMOVE_RECURSE
  "CMakeFiles/test_greedy_variants.dir/test_greedy_variants.cpp.o"
  "CMakeFiles/test_greedy_variants.dir/test_greedy_variants.cpp.o.d"
  "test_greedy_variants"
  "test_greedy_variants.pdb"
  "test_greedy_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greedy_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
