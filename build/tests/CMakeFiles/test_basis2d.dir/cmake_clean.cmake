file(REMOVE_RECURSE
  "CMakeFiles/test_basis2d.dir/test_basis2d.cpp.o"
  "CMakeFiles/test_basis2d.dir/test_basis2d.cpp.o.d"
  "test_basis2d"
  "test_basis2d.pdb"
  "test_basis2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basis2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
