# Empty dependencies file for test_basis2d.
# This may be replaced when dependencies are built.
