# Empty dependencies file for test_linalg_decomposition.
# This may be replaced when dependencies are built.
