file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_decomposition.dir/test_linalg_decomposition.cpp.o"
  "CMakeFiles/test_linalg_decomposition.dir/test_linalg_decomposition.cpp.o.d"
  "test_linalg_decomposition"
  "test_linalg_decomposition.pdb"
  "test_linalg_decomposition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
