file(REMOVE_RECURSE
  "CMakeFiles/test_collaboration_wire.dir/test_collaboration_wire.cpp.o"
  "CMakeFiles/test_collaboration_wire.dir/test_collaboration_wire.cpp.o.d"
  "test_collaboration_wire"
  "test_collaboration_wire.pdb"
  "test_collaboration_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collaboration_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
