# Empty dependencies file for test_collaboration_wire.
# This may be replaced when dependencies are built.
