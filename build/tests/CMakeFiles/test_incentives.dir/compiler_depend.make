# Empty compiler generated dependencies file for test_incentives.
# This may be replaced when dependencies are built.
