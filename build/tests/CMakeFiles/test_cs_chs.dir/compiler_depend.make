# Empty compiler generated dependencies file for test_cs_chs.
# This may be replaced when dependencies are built.
