file(REMOVE_RECURSE
  "CMakeFiles/test_cs_chs.dir/test_cs_chs.cpp.o"
  "CMakeFiles/test_cs_chs.dir/test_cs_chs.cpp.o.d"
  "test_cs_chs"
  "test_cs_chs.pdb"
  "test_cs_chs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cs_chs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
