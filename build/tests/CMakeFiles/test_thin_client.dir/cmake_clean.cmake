file(REMOVE_RECURSE
  "CMakeFiles/test_thin_client.dir/test_thin_client.cpp.o"
  "CMakeFiles/test_thin_client.dir/test_thin_client.cpp.o.d"
  "test_thin_client"
  "test_thin_client.pdb"
  "test_thin_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thin_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
