# Empty dependencies file for test_thin_client.
# This may be replaced when dependencies are built.
