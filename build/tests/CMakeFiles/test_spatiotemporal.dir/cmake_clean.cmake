file(REMOVE_RECURSE
  "CMakeFiles/test_spatiotemporal.dir/test_spatiotemporal.cpp.o"
  "CMakeFiles/test_spatiotemporal.dir/test_spatiotemporal.cpp.o.d"
  "test_spatiotemporal"
  "test_spatiotemporal.pdb"
  "test_spatiotemporal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatiotemporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
