
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/test_failure_injection.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/test_failure_injection.dir/test_failure_injection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hierarchy/CMakeFiles/sensedroid_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/field/CMakeFiles/sensedroid_field.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/sensedroid_mw.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/sensedroid_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/cs/CMakeFiles/sensedroid_cs.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduling/CMakeFiles/sensedroid_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sensedroid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sensedroid_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
