# Empty compiler generated dependencies file for test_wire_telemetry.
# This may be replaced when dependencies are built.
