file(REMOVE_RECURSE
  "CMakeFiles/test_wire_telemetry.dir/test_wire_telemetry.cpp.o"
  "CMakeFiles/test_wire_telemetry.dir/test_wire_telemetry.cpp.o.d"
  "test_wire_telemetry"
  "test_wire_telemetry.pdb"
  "test_wire_telemetry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
