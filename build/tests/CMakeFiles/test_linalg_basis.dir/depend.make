# Empty dependencies file for test_linalg_basis.
# This may be replaced when dependencies are built.
