file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_basis.dir/test_linalg_basis.cpp.o"
  "CMakeFiles/test_linalg_basis.dir/test_linalg_basis.cpp.o.d"
  "test_linalg_basis"
  "test_linalg_basis.pdb"
  "test_linalg_basis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
