file(REMOVE_RECURSE
  "CMakeFiles/test_cs_measurement.dir/test_cs_measurement.cpp.o"
  "CMakeFiles/test_cs_measurement.dir/test_cs_measurement.cpp.o.d"
  "test_cs_measurement"
  "test_cs_measurement.pdb"
  "test_cs_measurement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cs_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
