file(REMOVE_RECURSE
  "CMakeFiles/test_scheduling.dir/test_scheduling.cpp.o"
  "CMakeFiles/test_scheduling.dir/test_scheduling.cpp.o.d"
  "test_scheduling"
  "test_scheduling.pdb"
  "test_scheduling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
