# Empty compiler generated dependencies file for test_scheduling.
# This may be replaced when dependencies are built.
