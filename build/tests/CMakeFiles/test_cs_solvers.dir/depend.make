# Empty dependencies file for test_cs_solvers.
# This may be replaced when dependencies are built.
