file(REMOVE_RECURSE
  "CMakeFiles/test_cs_solvers.dir/test_cs_solvers.cpp.o"
  "CMakeFiles/test_cs_solvers.dir/test_cs_solvers.cpp.o.d"
  "test_cs_solvers"
  "test_cs_solvers.pdb"
  "test_cs_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cs_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
