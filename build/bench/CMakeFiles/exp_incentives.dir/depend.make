# Empty dependencies file for exp_incentives.
# This may be replaced when dependencies are built.
