file(REMOVE_RECURSE
  "CMakeFiles/exp_incentives.dir/exp_incentives.cpp.o"
  "CMakeFiles/exp_incentives.dir/exp_incentives.cpp.o.d"
  "exp_incentives"
  "exp_incentives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
