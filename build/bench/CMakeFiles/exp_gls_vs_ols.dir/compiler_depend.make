# Empty compiler generated dependencies file for exp_gls_vs_ols.
# This may be replaced when dependencies are built.
