file(REMOVE_RECURSE
  "CMakeFiles/exp_gls_vs_ols.dir/exp_gls_vs_ols.cpp.o"
  "CMakeFiles/exp_gls_vs_ols.dir/exp_gls_vs_ols.cpp.o.d"
  "exp_gls_vs_ols"
  "exp_gls_vs_ols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_gls_vs_ols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
