file(REMOVE_RECURSE
  "CMakeFiles/exp_cs_vs_interpolation.dir/exp_cs_vs_interpolation.cpp.o"
  "CMakeFiles/exp_cs_vs_interpolation.dir/exp_cs_vs_interpolation.cpp.o.d"
  "exp_cs_vs_interpolation"
  "exp_cs_vs_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_cs_vs_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
