# Empty compiler generated dependencies file for exp_cs_vs_interpolation.
# This may be replaced when dependencies are built.
